// Benchmarks regenerating the measurements behind every table and figure
// of the evaluation (Section 5), plus ablations of the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cable"
	"repro/internal/concept"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fa"
	"repro/internal/learn"
	"repro/internal/mine"
	"repro/internal/prog"
	"repro/internal/specs"
	"repro/internal/strategy"
	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/workspace"
	"repro/internal/xtrace"
)

func benchCfg() exp.Config {
	cfg := exp.DefaultConfig()
	cfg.RandomTrials = 64
	return cfg
}

// mustPrepare prepares a spec experiment or fails the benchmark.
func mustPrepare(b *testing.B, name string) *exp.Experiment {
	b.Helper()
	spec, ok := specs.ByName(name)
	if !ok {
		b.Fatalf("unknown spec %q", name)
	}
	e, err := exp.Prepare(spec, benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// representative specs spanning the evaluation's size range.
var benchSpecs = []string{"XGetSelOwner", "XInternAtom", "XFreeGC", "RegionsBig", "XtFree"}

// BenchmarkTable1_DeriveFAs measures deriving all seventeen correct
// specification automata (the content of Table 1).
func BenchmarkTable1_DeriveFAs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := exp.Table1(); len(rows) != 17 {
			b.Fatal("wrong corpus")
		}
	}
}

// BenchmarkTable2_Lattice measures concept-lattice construction per
// specification — the "cost of concept analysis" that Table 2 reports
// (the paper's maximum was ~22 s on 1998 hardware).
func BenchmarkTable2_Lattice(b *testing.B) {
	for _, name := range benchSpecs {
		e := mustPrepare(b, name)
		reps := e.Set.Representatives()
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := concept.BuildFromTraces(reps, e.Ref); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLatticeOps measures the byIntent-backed lattice queries (Meet,
// Join, Find, ObjectConcept, AttributeConcept) on a real specification
// lattice. These back the strategy loops and Cable navigation; since the
// intent-index optimization they are hash/table lookups, not linear scans.
func BenchmarkLatticeOps(b *testing.B) {
	e := mustPrepare(b, "XtFree")
	l := e.Lattice
	n := l.Len()
	ctx := l.Context()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := i%n, (i*13+5)%n
		l.Meet(x, y)
		l.Join(x, y)
		l.ObjectConcept(i % ctx.NumObjects())
		l.AttributeConcept(i % ctx.NumAttributes())
	}
}

// BenchmarkTable3 measures each labeling strategy per specification — the
// rows of Table 3 (the benchmark time is the simulation cost; the reported
// metric in the table is operation counts).
func BenchmarkTable3(b *testing.B) {
	for _, name := range benchSpecs {
		e := mustPrepare(b, name)
		b.Run(name+"/TopDown", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := strategy.TopDown(e.Lattice, e.Truth); !ok {
					b.Fatal("strategy failed")
				}
			}
		})
		b.Run(name+"/BottomUp", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := strategy.BottomUp(e.Lattice, e.Truth); !ok {
					b.Fatal("strategy failed")
				}
			}
		})
		b.Run(name+"/Expert", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := strategy.Expert(e.Lattice, e.Truth); !ok {
					b.Fatal("strategy failed")
				}
			}
		})
		b.Run(name+"/Random", func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				if _, ok := strategy.Random(e.Lattice, e.Truth, rng, 0); !ok {
					b.Fatal("strategy failed")
				}
			}
		})
		b.Run(name+"/Optimal", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				strategy.Optimal(e.Lattice, e.Truth, 0)
			}
		})
	}
}

// BenchmarkFigure1to6_StdioPipeline measures the full Section 2.1 pipeline
// behind Figures 1-6: verify, learn a reference, build the lattice, label,
// and fix.
func BenchmarkFigure1to6_StdioPipeline(b *testing.B) {
	stdio := specs.Stdio()
	gen := xtrace.Generator{Model: stdio.Model, Seed: 42}
	scenarios, truth := gen.ScenarioSet(150)
	buggy := specs.FigureOneFA()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		session, _, err := core.DebugViolations(buggy, scenarios)
		if err != nil || session == nil {
			b.Fatal(err)
		}
		for j := 0; j < session.NumTraces(); j++ {
			if truth[must(session.Trace(j)).Key()] {
				session.LabelTrace(j, cable.Good)
			} else {
				session.LabelTrace(j, cable.Bad)
			}
		}
		if _, err := core.FixSpec(buggy, session); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7_Mining measures the Strauss pipeline of Figure 7:
// front-end extraction plus back-end learning over whole-program runs.
func BenchmarkFigure7_Mining(b *testing.B) {
	stdio := specs.Stdio()
	gen := xtrace.Generator{Model: stdio.Model, Seed: 7}
	runs, _ := gen.Runs(50, 3)
	miner := mine.Miner{FrontEnd: mine.FrontEnd{Seeds: stdio.Model.SeedOps(), FollowDerived: true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := miner.Mine("stdio-mined", runs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9and10_Animals measures the introductory FCA example.
func BenchmarkFigure9and10_Animals(b *testing.B) {
	ctx := exp.AnimalsContext()
	for i := 0; i < b.N; i++ {
		l := concept.Build(ctx)
		if l.Len() == 0 {
			b.Fatal("empty lattice")
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblation_LatticeBuilders compares the incremental (Godin-style)
// construction against the naive closure-enumeration oracle.
func BenchmarkAblation_LatticeBuilders(b *testing.B) {
	e := mustPrepare(b, "XtFree")
	ctx, err := concept.TraceContext(e.Set.Representatives(), e.Ref)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			concept.Build(ctx)
		}
	})
	b.Run("Naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			concept.BuildNaive(ctx)
		}
	})
}

// BenchmarkAblation_ReferenceFA compares lattice construction under the
// three reference choices of Step 1a: the mined FA, the unordered
// template, and the PTA.
func BenchmarkAblation_ReferenceFA(b *testing.B) {
	e := mustPrepare(b, "XFreeGC")
	reps := e.Set.Representatives()
	all := make([]trace.Trace, 0, e.Set.Total())
	for _, c := range e.Set.Classes() {
		for j := 0; j < c.Count; j++ {
			all = append(all, c.Rep)
		}
	}
	unordered := fa.Unordered(e.Set.Alphabet())
	pta, err := learn.PTA("pta", all)
	if err != nil {
		b.Fatal(err)
	}
	ktails := learn.KTails{K: 2}.MustLearn("ktails", all)
	for _, ref := range []struct {
		name string
		fa   *fa.FA
	}{{"Mined", e.Ref}, {"Unordered", unordered}, {"PTA", pta.FA}, {"KTails", ktails.FA}} {
		b.Run(ref.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := concept.BuildFromTraces(reps, ref.fa); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Dedup compares building the lattice from class
// representatives (what Section 5.2 does) against building from every
// duplicate trace.
func BenchmarkAblation_Dedup(b *testing.B) {
	e := mustPrepare(b, "XFreeGC")
	reps := e.Set.Representatives()
	var raw []trace.Trace
	for _, c := range e.Set.Classes() {
		for j := 0; j < c.Count; j++ {
			raw = append(raw, c.Rep)
		}
	}
	b.Run("Representatives", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := concept.BuildFromTraces(reps, e.Ref); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("AllDuplicates", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := concept.BuildFromTraces(raw, e.Ref); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_Learner measures sk-strings learning as the training
// multiset grows, and the AND/OR agreement variants.
func BenchmarkAblation_Learner(b *testing.B) {
	stdio := specs.Stdio()
	for _, n := range []int{50, 200, 800} {
		gen := xtrace.Generator{Model: stdio.Model, Seed: 9}
		set, _ := gen.ScenarioSet(n)
		var all []trace.Trace
		for _, c := range set.Classes() {
			for j := 0; j < c.Count; j++ {
				all = append(all, c.Rep)
			}
		}
		b.Run(sizeName(n)+"/AND", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := learn.DefaultLearner.Learn("x", all); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sizeName(n)+"/OR", func(b *testing.B) {
			l := learn.Learner{K: 2, S: 0.5, Agreement: learn.Or}
			for i := 0; i < b.N; i++ {
				if _, err := l.Learn("x", all); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Executed measures the context-relation computation
// (Section 3.2's R) per trace.
func BenchmarkAblation_Executed(b *testing.B) {
	e := mustPrepare(b, "XtFree")
	reps := e.Set.Representatives()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := reps[i%len(reps)]
		if _, ok := e.Ref.Executed(t); !ok {
			b.Fatal("reference rejects scenario")
		}
	}
}

func sizeName(n int) string {
	switch n {
	case 50:
		return "n50"
	case 200:
		return "n200"
	default:
		return "n800"
	}
}

// BenchmarkStaticVerify measures product-based static checking of the full
// stdio program model against the correct specification (the Section 2.1
// verifier's job).
func BenchmarkStaticVerify(b *testing.B) {
	stdio := specs.Stdio()
	program, err := specs.ProgramFA("stdio", stdio.Model)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := verify.Static(program, stdio.FA, 8, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProgCompile measures parsing plus CFG-to-FA compilation of a
// program model.
func BenchmarkProgCompile(b *testing.B) {
	src := `
prog editor {
  X := fopen();
  loop { fread(X); }
  opt  { fwrite(X); }
  choice { fclose(X); } or { skip; }
  Y := popen();
  fread(Y);
  choice { pclose(Y); } or { fclose(Y); }
}`
	for i := 0; i < b.N; i++ {
		p, err := prog.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Compile(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegexCompile measures the event-regex compiler on the stdio
// specification pattern.
func BenchmarkRegexCompile(b *testing.B) {
	const pattern = "X = fopen() (fread(X)|fwrite(X))* fclose(X) | X = popen() (fread(X)|fwrite(X))* pclose(X)"
	for i := 0; i < b.N; i++ {
		if _, err := fa.Compile("stdio", pattern); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkspaceRoundTrip measures saving and reloading a full session.
func BenchmarkWorkspaceRoundTrip(b *testing.B) {
	e := mustPrepare(b, "XFreeGC")
	session, err := cable.NewSession(e.Set, e.Ref)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf strings.Builder
		if err := workspace.Save(&buf, session); err != nil {
			b.Fatal(err)
		}
		if _, err := workspace.Load(strings.NewReader(buf.String())); err != nil {
			b.Fatal(err)
		}
	}
}

// must unwraps a (value, error) pair, panicking on error; these tests only
// use IDs the checked accessors accept.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
