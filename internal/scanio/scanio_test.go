package scanio

import (
	"bufio"
	"errors"
	"strings"
	"testing"
)

func TestScannerUnderLimit(t *testing.T) {
	long := strings.Repeat("a", MaxLineBytes-1)
	sc := NewScanner(strings.NewReader(long + "\n"))
	if !sc.Scan() {
		t.Fatalf("scan failed on line just under limit: %v", sc.Err())
	}
	if len(sc.Text()) != MaxLineBytes-1 {
		t.Errorf("got %d bytes", len(sc.Text()))
	}
	if sc.Err() != nil {
		t.Errorf("unexpected error: %v", sc.Err())
	}
}

func TestScannerOverLimit(t *testing.T) {
	long := strings.Repeat("a", MaxLineBytes+1)
	sc := NewScanner(strings.NewReader(long + "\n"))
	for sc.Scan() {
	}
	if !errors.Is(sc.Err(), bufio.ErrTooLong) {
		t.Fatalf("err = %v, want bufio.ErrTooLong", sc.Err())
	}
	wrapped := LineError("trace", 1, sc.Err())
	if !strings.Contains(wrapped.Error(), "trace: line 1:") {
		t.Errorf("wrapped = %q, missing subsystem/line prefix", wrapped)
	}
	if !strings.Contains(wrapped.Error(), "4194304-byte limit") {
		t.Errorf("wrapped = %q, limit not spelled out", wrapped)
	}
	if !errors.Is(wrapped, bufio.ErrTooLong) {
		t.Error("wrapped error lost the bufio.ErrTooLong cause")
	}
}

func TestLineErrorNil(t *testing.T) {
	if LineError("x", 3, nil) != nil {
		t.Error("LineError(nil) != nil")
	}
}

func TestLineErrorGeneric(t *testing.T) {
	cause := errors.New("disk on fire")
	got := LineError("fa", 12, cause)
	if got.Error() != "fa: line 12: disk on fire" {
		t.Errorf("got %q", got)
	}
	if !errors.Is(got, cause) {
		t.Error("cause not wrapped")
	}
}
