// Package scanio centralizes the line-scanning policy shared by every
// text reader in the repo (trace, fa, concept, cable labels, workspace).
//
// Before this package existed each reader sized its own bufio.Scanner
// buffer — some at 1 MiB, some at 4 MiB — and surfaced oversized-line
// failures as a bare "bufio.Scanner: token too long" with no file or
// line context. scanio fixes both: one limit, and one error-wrapping
// helper that always names the line.
package scanio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// MaxLineBytes is the single line-length cap for every line-oriented
// reader in the repo. Event lines in traces are the longest inputs we
// see in practice; 4 MiB leaves ample headroom while still bounding
// memory for adversarial inputs.
const MaxLineBytes = 4 << 20

// initialBufBytes is the scanner's starting buffer; it grows on demand
// up to MaxLineBytes, so short-line files never pay for the cap.
const initialBufBytes = 64 * 1024

// NewScanner returns a line scanner over r configured with the shared
// buffer policy. Callers should report scanner failures via LineError
// so oversized lines are diagnosed consistently.
func NewScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, initialBufBytes), MaxLineBytes)
	return sc
}

// Error is a read failure located at a specific line. LineError returns
// this type, so callers that need the structure — e.g. a service mapping
// parse failures into a machine-readable error envelope with a line
// field — can recover it with errors.As; everything else keeps seeing
// the same rendered message LineError has always produced.
type Error struct {
	// Subsystem names the reader, e.g. "trace" or "fa".
	Subsystem string
	// Line is the 1-based line number where the failure occurred.
	Line int
	// Err is the underlying error.
	Err error
}

// Error renders the located failure; bufio.ErrTooLong is translated into
// a message that spells out the shared limit instead of the opaque
// "token too long".
func (e *Error) Error() string {
	if errors.Is(e.Err, bufio.ErrTooLong) {
		return fmt.Sprintf("%s: line %d: line exceeds %d-byte limit: %v",
			e.Subsystem, e.Line, MaxLineBytes, e.Err)
	}
	return fmt.Sprintf("%s: line %d: %v", e.Subsystem, e.Line, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Err }

// LineError wraps a scanner (or other read) error with the 1-based line
// number where it occurred, prefixed by the subsystem name (e.g.
// "trace", "fa"). A nil err returns nil, so callers can wrap sc.Err()
// unconditionally. The returned error is a *Error.
func LineError(subsystem string, line int, err error) error {
	if err == nil {
		return nil
	}
	return &Error{Subsystem: subsystem, Line: line, Err: err}
}
