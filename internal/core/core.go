// Package core is the top-level public API of the library: it ties traces,
// reference automata, concept analysis, and Cable sessions together into
// the paper's two debugging workflows.
//
// Workflow 1 — debugging by testing (Section 2.1): a specification is
// checked against scenario traces; the rejected traces (violations) are
// clustered and labeled, and the specification is fixed to accept the
// traces labeled good:
//
//	session, violations, err := core.DebugViolations(spec, scenarios)
//	... label concepts via session ...
//	fixed, err := core.FixSpec(spec, session)
//
// Workflow 2 — debugging a mined specification (Section 2.2): the miner's
// scenario traces are clustered using the mined FA itself as the reference,
// labeled, and the miner's back end is rerun on the good traces:
//
//	session, err := core.DebugMined(minedFA, scenarios)
//	... label concepts ...
//	fixed, err := core.RelearnGood(session, miner)
package core

import (
	"fmt"
	"strings"

	"repro/internal/cable"
	"repro/internal/concept"
	"repro/internal/fa"
	"repro/internal/learn"
	"repro/internal/mine"
	"repro/internal/trace"
	"repro/internal/verify"
)

// Session re-exports the Cable session type; see internal/cable for the
// labeling and summary operations.
type Session = cable.Session

// DebugViolations runs Step 1 of the testing workflow: check the
// specification against the scenario multiset, learn a reference FA from
// the violation traces (Step 1a notes a great learner is not essential),
// and build the concept-lattice session over the violations. When the
// specification rejects nothing, it returns (nil, nil, nil).
func DebugViolations(spec *fa.FA, scenarios *trace.Set) (*Session, []verify.Violation, error) {
	violations, raw := verify.CheckSet(spec, scenarios)
	if violations.Total() == 0 {
		return nil, nil, nil
	}
	ref := ReferenceFA(violations)
	session, err := cable.NewSession(violations, ref)
	if err != nil {
		return nil, nil, err
	}
	return session, raw, nil
}

// DebugProgram runs the static variant of the testing workflow: check a
// program model against the specification with the product-based verifier
// (verify.Static), and build the debugging session over the reported
// violation traces (bounded by maxLen events per trace and limit traces).
// When the program conforms up to the bound, it returns (nil, nil, nil).
func DebugProgram(program, spec *fa.FA, maxLen, limit int) (*Session, []verify.Violation, error) {
	violations, err := verify.Static(program, spec, maxLen, limit)
	if err != nil {
		return nil, nil, err
	}
	if len(violations) == 0 {
		return nil, nil, nil
	}
	set := &trace.Set{}
	for _, v := range violations {
		set.Add(v.Trace)
	}
	session, err := cable.NewSession(set, ReferenceFA(set))
	if err != nil {
		return nil, nil, err
	}
	return session, violations, nil
}

// DebugMined builds a session for a mined specification's scenario traces,
// using the mined FA itself as the reference (the expert "already has one:
// the FA from the miner's buggy specification"). If the mined FA rejects
// some scenario (possible after coring), a learned reference over the
// scenarios is used instead.
func DebugMined(mined *fa.FA, scenarios *trace.Set) (*Session, error) {
	ref := mined
	sim := mined.Sim()
	for _, c := range scenarios.Classes() {
		if !sim.Accepts(c.Rep) {
			ref = ReferenceFA(scenarios)
			break
		}
	}
	return cable.NewSession(scenarios, ref)
}

// ReferenceFA learns a reference automaton that accepts every trace of the
// set, suitable for defining trace similarity (Step 1a). The sk-strings
// learner guarantees the training set is accepted.
func ReferenceFA(set *trace.Set) *fa.FA {
	var all []trace.Trace
	for _, c := range set.Classes() {
		for j := 0; j < c.Count; j++ {
			t := c.Rep
			t.ID = c.IDs[j]
			all = append(all, t)
		}
	}
	return learn.DefaultLearner.MustLearn("reference", all).FA
}

// BuildLattice is the one-call Step 1 for callers that manage labeling
// themselves: the concept lattice over a trace set's class representatives
// and a reference FA.
func BuildLattice(set *trace.Set, ref *fa.FA) (*concept.Lattice, error) {
	return concept.BuildFromTraces(set.Representatives(), ref)
}

// FixSpec performs Step 3 of the testing workflow: extend the specification
// to accept the traces labeled good while continuing to reject the traces
// labeled bad. The repaired specification is the minimized union of the old
// language with an FA learned from the good traces. An error is returned if
// some bad-labeled trace would be accepted (a labeling mistake, caught as
// in Step 2b).
func FixSpec(spec *fa.FA, session *Session) (*fa.FA, error) {
	good := session.TracesWith(cable.Good)
	if good.Total() == 0 {
		return spec, nil
	}
	goodFA := ReferenceFA(good).WithName(spec.Name() + "+good")
	fixed, err := fa.Union(spec, goodFA).Minimize()
	if err != nil {
		return nil, err
	}
	fixed = fixed.WithName(spec.Name() + "-fixed")
	for _, c := range session.TracesWith(cable.Bad).Classes() {
		if fixed.Accepts(c.Rep) {
			return nil, fmt.Errorf("core: fixed specification accepts bad-labeled trace %q; recheck the labeling", c.Rep.Key())
		}
	}
	return fixed, nil
}

// RelearnGood performs Step 3 of the mining workflow: rerun the miner's
// back end on every trace labeled good. Labels beginning with "good" are
// relearned separately and unioned — the multiple-good-label idiom that
// fights overgeneralization (Section 2.2).
func RelearnGood(session *Session, miner mine.Miner) (*fa.FA, error) {
	var out *fa.FA
	for _, label := range session.UsedLabels() {
		if !IsGoodLabel(label) {
			continue
		}
		part, err := miner.Relearn("relearned:"+string(label), session.TracesWith(label))
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = part
		} else {
			out = fa.Union(out, part)
		}
	}
	if out == nil {
		return nil, fmt.Errorf("core: no traces labeled good")
	}
	min, err := out.Minimize()
	if err != nil {
		return nil, err
	}
	return min.WithName("relearned"), nil
}

// IsGoodLabel reports whether the label marks correct traces: "good" or any
// label beginning with "good" (e.g. "good fopen").
func IsGoodLabel(l cable.Label) bool {
	return strings.HasPrefix(string(l), string(cable.Good))
}
