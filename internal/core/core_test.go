package core

import (
	"strings"
	"testing"

	"repro/internal/cable"
	"repro/internal/mine"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/xtrace"
)

// labelByTruth replays the generator's ground truth onto the session,
// standing in for the human labeler.
func labelByTruth(s *Session, truth xtrace.Labeling) {
	for i := 0; i < s.NumTraces(); i++ {
		if truth[must(s.Trace(i)).Key()] {
			s.LabelTrace(i, cable.Good)
		} else {
			s.LabelTrace(i, cable.Bad)
		}
	}
}

func TestDebugViolationsFlow(t *testing.T) {
	// Section 2.1 end to end: Figure 1 spec against the stdio workload,
	// label violations by ground truth, fix, and compare with the correct
	// specification's verdicts.
	spec := specs.Stdio()
	gen := xtrace.Generator{Model: spec.Model, Seed: 21}
	scenarios, truth := gen.ScenarioSet(150)
	session, violations, err := DebugViolations(specs.FigureOneFA(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if session == nil || len(violations) == 0 {
		t.Fatal("no violations against the buggy spec")
	}
	// The violations must include correct popen/pclose traces (spec bug)
	// and erroneous leaks (program bugs).
	sawGood, sawBad := false, false
	for i := 0; i < session.NumTraces(); i++ {
		if truth[must(session.Trace(i)).Key()] {
			sawGood = true
		} else {
			sawBad = true
		}
	}
	if !sawGood || !sawBad {
		t.Fatalf("violations lack both kinds: good=%v bad=%v", sawGood, sawBad)
	}

	labelByTruth(session, truth)
	if !session.Done() {
		t.Fatal("session not fully labeled")
	}
	fixed, err := FixSpec(specs.FigureOneFA(), session)
	if err != nil {
		t.Fatal(err)
	}
	// The fixed spec accepts all good scenarios.
	for _, c := range scenarios.Classes() {
		if truth[c.Rep.Key()] && !fixed.Accepts(c.Rep) {
			t.Errorf("fixed spec rejects good trace %q", c.Rep.Key())
		}
	}
	// And it now accepts popen;pclose, which Figure 1 rejected.
	pp := trace.ParseEvents("", "X = popen()", "pclose(X)")
	if !fixed.Accepts(pp) {
		t.Error("fixed spec still rejects popen;pclose")
	}
}

func TestDebugViolationsCleanSpec(t *testing.T) {
	spec := specs.Stdio()
	// Only good scenarios: the correct spec yields no violations.
	goodOnly := xtrace.Model{Scenarios: nil}
	for _, sc := range spec.Model.Scenarios {
		if sc.Good {
			goodOnly.Scenarios = append(goodOnly.Scenarios, sc)
		}
	}
	gen := xtrace.Generator{Model: goodOnly, Seed: 3}
	scenarios, _ := gen.ScenarioSet(50)
	session, violations, err := DebugViolations(spec.FA, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if session != nil || violations != nil {
		t.Error("clean run produced violations")
	}
}

func TestDebugMinedFlow(t *testing.T) {
	// Section 2.2 end to end: mine a (buggy) spec from runs containing
	// errors, debug the scenarios, relearn from good labels, and check the
	// result against the correct specification.
	spec := specs.Stdio()
	gen := xtrace.Generator{Model: spec.Model, Seed: 77}
	runs, truth := gen.Runs(40, 3)
	miner := mine.Miner{FrontEnd: mine.FrontEnd{Seeds: spec.Model.SeedOps(), FollowDerived: true}}
	mined, scenarios, err := miner.Mine("stdio-mined", runs)
	if err != nil {
		t.Fatal(err)
	}
	// The mined spec accepts erroneous scenarios (it was trained on them).
	buggy := false
	for _, c := range scenarios.Classes() {
		if !truth[c.Rep.Key()] && mined.Accepts(c.Rep) {
			buggy = true
		}
	}
	if !buggy {
		t.Fatal("mined spec is not buggy; workload has no errors?")
	}

	session, err := DebugMined(mined, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	labelByTruth(session, truth)
	if !session.Done() {
		t.Fatal("labeling incomplete")
	}
	fixed, err := RelearnGood(session, miner)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range scenarios.Classes() {
		if truth[c.Rep.Key()] && !fixed.Accepts(c.Rep) {
			t.Errorf("relearned spec rejects good scenario %q", c.Rep.Key())
		}
		if !truth[c.Rep.Key()] && fixed.Accepts(c.Rep) {
			t.Errorf("relearned spec still accepts bad scenario %q", c.Rep.Key())
		}
	}
}

func TestFixSpecDetectsMislabeling(t *testing.T) {
	// A trace labeled bad that the (already fixed) specification accepts is
	// a labeling contradiction FixSpec must report. Arrange it directly:
	// the spec accepts t2, and the user labels t2 bad.
	spec := specs.FigureOneFA() // accepts "X = fopen(); fclose(X)" etc.
	set := trace.NewSet(
		trace.ParseEvents("v1", "X = popen()", "pclose(X)"), // genuine spec gap
		trace.ParseEvents("v2", "X = fopen()", "fclose(X)"), // accepted by spec!
	)
	// v2 is not really a violation of spec, but a confused user could have
	// assembled such a session; build it directly.
	session, err := cable.NewSession(set, ReferenceFA(set))
	if err != nil {
		t.Fatal(err)
	}
	session.LabelTrace(0, cable.Good)
	session.LabelTrace(1, cable.Bad)
	if _, err := FixSpec(spec, session); err == nil {
		t.Error("FixSpec accepted a labeling contradicted by the specification")
	}
	// With the labels the right way round, fixing succeeds and repairs the
	// popen gap.
	session.LabelTrace(0, cable.Good)
	session.LabelTrace(1, cable.Good)
	fixed, err := FixSpec(spec, session)
	if err != nil {
		t.Fatal(err)
	}
	if !fixed.Accepts(trace.ParseEvents("", "X = popen()", "pclose(X)")) {
		t.Error("fixed spec rejects the good popen trace")
	}
}

func TestRelearnGoodMultipleLabels(t *testing.T) {
	spec := specs.Stdio()
	gen := xtrace.Generator{Model: spec.Model, Seed: 5}
	runs, truth := gen.Runs(30, 3)
	miner := mine.Miner{FrontEnd: mine.FrontEnd{Seeds: spec.Model.SeedOps(), FollowDerived: true}}
	mined, scenarios, err := miner.Mine("stdio-mined", runs)
	if err != nil {
		t.Fatal(err)
	}
	session, err := DebugMined(mined, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	// Assign split good labels by protocol, bad otherwise.
	for i := 0; i < session.NumTraces(); i++ {
		key := must(session.Trace(i)).Key()
		switch {
		case !truth[key]:
			session.LabelTrace(i, cable.Bad)
		case strings.HasPrefix(key, "X = fopen"):
			session.LabelTrace(i, cable.Label("good fopen"))
		default:
			session.LabelTrace(i, cable.Label("good popen"))
		}
	}
	fixed, err := RelearnGood(session, miner)
	if err != nil {
		t.Fatal(err)
	}
	// Split learning prevents fopen/popen cross-generalization.
	if fixed.Accepts(trace.ParseEvents("", "X = popen()", "fclose(X)")) {
		t.Error("split relearning still crosses protocols")
	}
}

func TestIsGoodLabel(t *testing.T) {
	for label, want := range map[cable.Label]bool{
		cable.Good:        true,
		"good fopen":      true,
		cable.Bad:         false,
		cable.Mixed:       false,
		cable.Unlabeled:   false,
		"verygood... not": false,
	} {
		if got := IsGoodLabel(label); got != want {
			t.Errorf("IsGoodLabel(%q) = %v", label, got)
		}
	}
}

func TestDebugProgramStatic(t *testing.T) {
	// Static flavor of Section 2.1: the buggy spec against the full stdio
	// program model.
	stdio := specs.Stdio()
	program, err := specs.ProgramFA("stdio", stdio.Model)
	if err != nil {
		t.Fatal(err)
	}
	session, violations, err := DebugProgram(program, specs.FigureOneFA(), 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if session == nil || len(violations) == 0 {
		t.Fatal("no static violations")
	}
	// Label by the correct spec's verdict and fix; the fixed spec then
	// accepts strictly more of the program's good behaviour.
	for i := 0; i < session.NumTraces(); i++ {
		if stdio.FA.Accepts(must(session.Trace(i))) {
			session.LabelTrace(i, cable.Good)
		} else {
			session.LabelTrace(i, cable.Bad)
		}
	}
	fixed, err := FixSpec(specs.FigureOneFA(), session)
	if err != nil {
		t.Fatal(err)
	}
	if !fixed.Accepts(trace.ParseEvents("", "X = popen()", "pclose(X)")) {
		t.Error("static debugging did not repair the popen gap")
	}
	// A conforming program yields no session.
	good, err := specs.DeriveFA("good", stdio.Model)
	if err != nil {
		t.Fatal(err)
	}
	session, violations, err = DebugProgram(good, stdio.FA, 8, 100)
	if err != nil || session != nil || violations != nil {
		t.Errorf("conforming program produced a session: %v %v %v", session, violations, err)
	}
}

// must unwraps a (value, error) pair, panicking on error; these tests only
// use IDs the checked accessors accept.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
