package core_test

import (
	"fmt"

	"repro/internal/cable"
	"repro/internal/core"
	"repro/internal/specs"
	"repro/internal/trace"
)

// Example walks the Section 2.1 workflow: verify, cluster, label, fix.
func Example() {
	// Scenario traces a verifier would check: two correct popen protocols
	// the buggy spec rejects, and one genuine leak.
	scenarios := trace.NewSet(
		trace.ParseEvents("s1", "X = popen()", "pclose(X)"),
		trace.ParseEvents("s2", "X = popen()", "fread(X)", "pclose(X)"),
		trace.ParseEvents("s3", "X = fopen()", "fread(X)"),
	)
	session, violations, err := core.DebugViolations(specs.FigureOneFA(), scenarios)
	if err != nil {
		panic(err)
	}
	fmt.Println("violations:", len(violations))

	// Label through the lattice: the traces executing pclose are good.
	for _, id := range session.Lattice().TopDownOrder() {
		for _, t := range must(session.ShowTransitions(id, cable.SelectUnlabeled())) {
			if t.Label.Op == "pclose" {
				session.LabelTraces(id, cable.SelectUnlabeled(), cable.Good)
			}
		}
	}
	session.LabelTraces(session.Lattice().Top(), cable.SelectUnlabeled(), cable.Bad)

	fixed, err := core.FixSpec(specs.FigureOneFA(), session)
	if err != nil {
		panic(err)
	}
	fmt.Println("fixed accepts popen;pclose:",
		fixed.Accepts(trace.ParseEvents("", "X = popen()", "pclose(X)")))
	fmt.Println("fixed rejects the leak:",
		!fixed.Accepts(trace.ParseEvents("", "X = fopen()", "fread(X)")))
	// Output:
	// violations: 3
	// fixed accepts popen;pclose: true
	// fixed rejects the leak: true
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
