// Package server hosts concurrent Cable debugging sessions behind a
// stdlib-only HTTP/JSON service. Each session wraps a cable.Session keyed
// by an opaque ID; per-session mutexes serialize labeling on one session
// while distinct sessions proceed in parallel. Built lattices are cached
// in an LRU keyed by the (trace set, reference FA) fingerprint, so
// re-uploading known inputs skips concept.Build. Request deadlines are
// enforced with context.Context and propagate into the lattice build, so
// a cancelled upload or a server shutdown abandons its build between
// work items instead of running it to completion.
//
// The wire types live in the versioned internal/server/apiv1 package;
// this package contains only transport and lifecycle.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cable"
	"repro/internal/fa"
	"repro/internal/obs"
	"repro/internal/scanio"
	"repro/internal/server/apiv1"
	"repro/internal/trace"
)

// Config sizes and paces the service.
type Config struct {
	// RequestTimeout bounds each request, including lattice builds;
	// 0 means no per-request deadline.
	RequestTimeout time.Duration
	// IdleTimeout evicts sessions untouched for this long; 0 disables
	// eviction.
	IdleTimeout time.Duration
	// CacheSize is the lattice LRU capacity; 0 disables the cache.
	CacheSize int
	// Workers caps lattice-build parallelism for requests that do not
	// set their own; 0 uses GOMAXPROCS.
	Workers int
	// SnapshotDir, when non-empty, enables crash-safe session
	// persistence: a snapshot per session plus a write-ahead log of
	// labeling actions (see persist.go). Empty disables persistence.
	SnapshotDir string
	// Metrics receives instrumentation; nil uses the process default
	// registry (which may itself be nil — all instruments no-op then).
	Metrics *obs.Metrics
}

// Server is the cabled service: construct with New, mount Handler on an
// http.Server, and run Janitor alongside if idle eviction is wanted.
type Server struct {
	cfg     Config
	metrics *obs.Metrics
	store   *store
	cache   *latticeCache
	persist *persister // nil when persistence is disabled
	mux     *http.ServeMux
}

// New builds a Server with its routes mounted. A bad SnapshotDir is
// reported on first use (LoadSnapshots/SaveSnapshots), not here, so New
// stays infallible for callers without persistence.
func New(cfg Config) *Server {
	m := cfg.Metrics
	if m == nil {
		m = obs.Default()
	}
	s := &Server{
		cfg:     cfg,
		metrics: m,
		store:   newStore(m),
		cache:   newLatticeCache(cfg.CacheSize, m),
	}
	if p, err := newPersister(cfg.SnapshotDir, m); err == nil && p != nil {
		s.persist = p
		s.store.onEvict = p.removeFiles
	} else if err != nil {
		m.Counter("server.snapshot.errors").Inc()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.instrument("create_session", s.handleCreateSession))
	mux.HandleFunc("GET /v1/sessions", s.instrument("list_sessions", s.handleListSessions))
	mux.HandleFunc("GET /v1/sessions/{id}", s.instrument("get_session", s.handleGetSession))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("delete_session", s.handleDeleteSession))
	mux.HandleFunc("GET /v1/sessions/{id}/concepts", s.instrument("list_concepts", s.handleListConcepts))
	mux.HandleFunc("GET /v1/sessions/{id}/concepts/{cid}", s.instrument("get_concept", s.handleGetConcept))
	mux.HandleFunc("GET /v1/sessions/{id}/traces", s.instrument("list_traces", s.handleListTraces))
	mux.HandleFunc("POST /v1/sessions/{id}/traces", s.instrument("add_traces", s.handleAddTraces))
	mux.HandleFunc("POST /v1/sessions/{id}/label", s.instrument("label", s.handleLabel))
	mux.HandleFunc("POST /v1/sessions/{id}/suggest", s.instrument("suggest", s.handleSuggest))
	mux.HandleFunc("POST /v1/sessions/{id}/focus", s.instrument("focus", s.handleFocus))
	mux.HandleFunc("POST /v1/sessions/{id}/end", s.instrument("end_focus", s.handleEndFocus))
	mux.HandleFunc("GET /v1/sessions/{id}/labels", s.instrument("export_labels", s.handleExportLabels))
	mux.HandleFunc("POST /v1/streams", s.instrument("open_stream", s.handleOpenStream))
	mux.HandleFunc("GET /v1/streams", s.instrument("list_streams", s.handleListStreams))
	mux.HandleFunc("GET /v1/streams/{id}", s.instrument("get_stream", s.handleGetStream))
	mux.HandleFunc("POST /v1/streams/{id}/events", s.instrument("stream_events", s.handleStreamEvents))
	mux.HandleFunc("DELETE /v1/streams/{id}", s.instrument("close_stream", s.handleCloseStream))
	mux.HandleFunc("POST /v1/lint", s.instrument("lint", s.handleLint))
	mux.HandleFunc("GET /v1/metrics", s.instrument("metrics", s.handleMetrics))
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Janitor evicts idle sessions every interval until ctx is done. It is a
// no-op loop when idle eviction is disabled.
func (s *Server) Janitor(ctx context.Context, interval time.Duration) {
	if s.cfg.IdleTimeout <= 0 {
		return
	}
	if interval <= 0 {
		interval = s.cfg.IdleTimeout / 4
		if interval < time.Second {
			interval = time.Second
		}
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.store.evictIdle(s.cfg.IdleTimeout)
		}
	}
}

// EvictIdleNow runs one eviction sweep immediately; exported for tests
// and operational tooling.
func (s *Server) EvictIdleNow() int { return s.store.evictIdle(s.cfg.IdleTimeout) }

// handlerFunc is an endpoint body: it gets the request-scoped context
// (with the per-request deadline applied) and returns an error already
// classified by the http* helpers, or nil after writing a response.
type handlerFunc func(ctx context.Context, w http.ResponseWriter, r *http.Request) error

// instrument wraps an endpoint with the per-endpoint counter, latency
// span, deadline, and the uniform error envelope.
func (s *Server) instrument(name string, h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.Counter("server.req." + name).Inc()
		sp := s.metrics.StartSpan("server.latency." + name)
		defer sp.End()
		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		if err := h(ctx, w, r); err != nil {
			s.metrics.Counter("server.err." + name).Inc()
			s.writeError(w, err)
		}
	}
}

// httpError carries a status and a stable code through handler returns.
type httpError struct {
	status int
	code   string
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func badRequest(err error) error {
	return &httpError{status: http.StatusBadRequest, code: "bad_request", err: err}
}

func notFound(err error) error {
	return &httpError{status: http.StatusNotFound, code: "not_found", err: err}
}

// sessionBusy marks work refused because of the session's current state
// (e.g. suggesting a focus for a concept that is not mixed).
func sessionBusy(err error) error {
	return &httpError{status: http.StatusConflict, code: "session_busy", err: err}
}

// validationFailed marks inputs that parsed fine but were rejected by
// the session's reference FA.
func validationFailed(err error) error {
	return &httpError{status: http.StatusUnprocessableEntity, code: "validation_failed", err: err}
}

// classify maps domain errors that handlers pass through untouched:
// cable's sentinel errors to 404, context errors to deadline/drain
// statuses, everything else to 500. The codes are the stable v1 set
// documented on apiv1.Error.
func classify(err error) (status int, code string) {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status, he.code
	case errors.Is(err, cable.ErrBadConcept), errors.Is(err, cable.ErrBadTrace):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "draining"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// errorEnvelope renders a classified handler error into the uniform
// envelope, anchoring line-located failures (scanio.Error anywhere in
// the chain) to their input line.
func errorEnvelope(code string, err error) apiv1.Error {
	env := apiv1.Error{Code: code, Message: err.Error()}
	var se *scanio.Error
	if errors.As(err, &se) {
		env.Line = se.Line
		env.Detail = se.Subsystem
	}
	return env
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, code := classify(err)
	writeJSON(w, status, errorEnvelope(code, err))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// decodeJSON reads a request body into v, rejecting unknown fields so
// typos in client payloads fail loudly instead of silently defaulting.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest(fmt.Errorf("decoding request: %w", err))
	}
	return nil
}

// withSession resolves the {id} path value (session or focus-session ID),
// locks its entry, and runs fn with the target session. The entry lock
// spans fn, so handler bodies never race on one session — but only fn:
// fn returns the status and payload to send, and the response is
// serialized and written after the lock is released, so a slow client
// cannot stall the session's other callers. The lockheld analyzer
// enforces this split.
func (s *Server) withSession(w http.ResponseWriter, r *http.Request, fn func(e *entry, sess *cable.Session) (int, any, error)) error {
	id := r.PathValue("id")
	res, ok := s.store.resolve(id)
	if !ok {
		return notFound(fmt.Errorf("no session %q", id))
	}
	status, payload, err := func() (int, any, error) {
		res.entry.mu.Lock()
		defer res.entry.mu.Unlock()
		sess := res.session
		if res.focusID != "" {
			f, ok := res.entry.focuses[res.focusID]
			if !ok {
				return 0, nil, notFound(fmt.Errorf("focus session %q has ended", id))
			}
			sess = f.Session()
		}
		return fn(res.entry, sess)
	}()
	// Stamp the idle clock again now the work is done: resolve stamped at
	// request start, so a request that outlived the idle window would
	// otherwise hand its session straight to the janitor.
	s.store.touch(res.entry)
	if err != nil {
		return err
	}
	writeJSON(w, status, payload)
	return nil
}

func parseSelector(sel *apiv1.Selector) (cable.Selector, error) {
	if sel == nil {
		return cable.SelectAll(), nil
	}
	switch sel.Mode {
	case "", "all":
		return cable.SelectAll(), nil
	case "unlabeled":
		return cable.SelectUnlabeled(), nil
	case "label":
		if sel.Label == "" {
			return cable.Selector{}, badRequest(errors.New(`selector mode "label" needs a label`))
		}
		return cable.SelectLabel(cable.Label(sel.Label)), nil
	default:
		return cable.Selector{}, badRequest(fmt.Errorf("unknown selector mode %q", sel.Mode))
	}
}

func (s *Server) handleCreateSession(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req apiv1.CreateSessionRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	set, err := trace.Read(strings.NewReader(req.Traces))
	if err != nil {
		return badRequest(fmt.Errorf("traces: %w", err))
	}
	if set.NumClasses() == 0 {
		return badRequest(errors.New("traces: empty trace set"))
	}
	ref, err := fa.Read(strings.NewReader(req.RefFA))
	if err != nil {
		return badRequest(fmt.Errorf("ref_fa: %w", err))
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	key := cacheKey(set, ref)
	opts := []cable.Option{
		cable.WithContext(ctx),
		cable.WithObs(s.metrics),
		cable.WithWorkers(workers),
	}
	hit := false
	if l := s.cache.Get(key); l != nil {
		opts = append(opts, cable.WithLattice(l))
		hit = true
	}
	sess, err := cable.NewSession(set, ref, opts...)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return badRequest(err)
	}
	// After Put, the cache and the session reference one lattice; either
	// way an enabled cache means this session must copy-on-write before
	// its first incremental mutation (see handleAddTraces).
	shared := hit
	if !hit && s.cache.Enabled() {
		s.cache.Put(key, sess.Lattice())
		shared = true
	}
	id, err := s.store.add(sess, shared, hit)
	if err != nil {
		return err
	}
	if s.persist != nil {
		// Persist the newborn session before the client learns its ID, so
		// a crash at any later point can restore it. Failure is counted,
		// not fatal: the in-memory session still serves.
		if err := s.persist.writeSnap(id, sess); err != nil {
			s.metrics.Counter("server.snapshot.errors").Inc()
		}
	}
	writeJSON(w, http.StatusCreated, apiv1.CreateSessionResponse{
		SessionID:   id,
		NumTraces:   sess.NumTraces(),
		NumConcepts: sess.Lattice().Len(),
		Top:         sess.Lattice().Top(),
		CacheHit:    hit,
	})
	return nil
}

func (s *Server) sessionInfo(e *entry, sess *cable.Session, focus bool, id string) apiv1.SessionInfo {
	labeled := 0
	for _, l := range sess.Labels() {
		if l != cable.Unlabeled {
			labeled++
		}
	}
	info := apiv1.SessionInfo{
		SessionID:   id,
		NumTraces:   sess.NumTraces(),
		NumConcepts: sess.Lattice().Len(),
		Labeled:     labeled,
		Done:        sess.Done(),
		Focus:       focus,
		Created:     e.created.UTC().Format(time.RFC3339),
		CacheHit:    e.cacheHit,
	}
	if focus {
		info.Parent = e.id
	} else {
		info.Streams = len(s.store.streamsOf(e.id))
		if s.persist != nil {
			info.Snapshot = s.persist.state(e.id)
		}
	}
	return info
}

// pageParams parses the shared ?cursor= / ?limit= pagination query
// parameters. cursor is the last ID of the previous page (exclusive);
// limit 0 means no cap.
func pageParams(r *http.Request) (cursor string, limit int, err error) {
	q := r.URL.Query()
	cursor = q.Get("cursor")
	if ls := q.Get("limit"); ls != "" {
		limit, err = strconv.Atoi(ls)
		if err != nil || limit < 0 {
			return "", 0, badRequest(fmt.Errorf("limit: not a non-negative integer: %q", ls))
		}
	}
	return cursor, limit, nil
}

// page applies cursor+limit to an ID-sorted slice and returns the page
// plus the next cursor ("" on the last page).
func page[T any](items []T, id func(T) string, cursor string, limit int) ([]T, string) {
	start := 0
	if cursor != "" {
		for start < len(items) && id(items[start]) <= cursor {
			start++
		}
	}
	items = items[start:]
	if limit > 0 && len(items) > limit {
		return items[:limit:limit], id(items[limit-1])
	}
	return items, ""
}

func (s *Server) handleListSessions(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	cursor, limit, err := pageParams(r)
	if err != nil {
		return err
	}
	entries := s.store.list()
	infos := make([]apiv1.SessionInfo, 0, len(entries))
	for _, e := range entries {
		e.mu.Lock()
		infos = append(infos, s.sessionInfo(e, e.session, false, e.id))
		e.mu.Unlock()
	}
	// Map iteration order is random; pin a stable listing before paging.
	sortSessions(infos)
	pageInfos, next := page(infos, func(i apiv1.SessionInfo) string { return i.SessionID }, cursor, limit)
	writeJSON(w, http.StatusOK, apiv1.SessionList{Sessions: pageInfos, NextCursor: next})
	return nil
}

func sortSessions(ss []apiv1.SessionInfo) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].SessionID < ss[j-1].SessionID; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

func (s *Server) handleGetSession(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	return s.withSession(w, r, func(e *entry, sess *cable.Session) (int, any, error) {
		focus := sess != e.session
		return http.StatusOK, s.sessionInfo(e, sess, focus, r.PathValue("id")), nil
	})
}

func (s *Server) handleDeleteSession(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	if !s.store.remove(id) {
		return notFound(fmt.Errorf("no session %q (focus sessions are ended, not deleted)", id))
	}
	w.WriteHeader(http.StatusNoContent)
	return nil
}

// stateSlug maps a concept state to its stable wire form, without the
// display-color suffix cable.State.String carries for the terminal UI.
func stateSlug(st cable.State) string {
	switch st {
	case cable.StateUnlabeled:
		return "Unlabeled"
	case cable.StatePartlyLabeled:
		return "PartlyLabeled"
	default:
		return "FullyLabeled"
	}
}

// conceptDTO renders one concept; transitions are optional because the
// list view would otherwise be quadratic in lattice size.
func conceptDTO(sess *cable.Session, id int, withTransitions bool) (apiv1.Concept, error) {
	state, err := sess.ConceptState(id)
	if err != nil {
		return apiv1.Concept{}, err
	}
	objs, err := sess.Select(id, cable.SelectAll())
	if err != nil {
		return apiv1.Concept{}, err
	}
	total := 0
	for _, o := range objs {
		n, err := sess.Multiplicity(o)
		if err != nil {
			return apiv1.Concept{}, err
		}
		total += n
	}
	l := sess.Lattice()
	c := l.Concept(id)
	dto := apiv1.Concept{
		ID:          id,
		State:       stateSlug(state),
		NumClasses:  c.Extent.Len(),
		TotalTraces: total,
		Similarity:  c.Intent.Len(),
		Parents:     append([]int{}, l.Parents(id)...),
		Children:    append([]int{}, l.Children(id)...),
	}
	if withTransitions {
		trans, err := sess.ShowTransitions(id, cable.SelectAll())
		if err != nil {
			return apiv1.Concept{}, err
		}
		dto.Transitions = make([]string, len(trans))
		for i, t := range trans {
			dto.Transitions[i] = t.String()
		}
	}
	return dto, nil
}

func (s *Server) handleListConcepts(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	return s.withSession(w, r, func(e *entry, sess *cable.Session) (int, any, error) {
		list := apiv1.ConceptList{Concepts: []apiv1.Concept{}}
		for _, id := range sess.Lattice().TopDownOrder() {
			dto, err := conceptDTO(sess, id, false)
			if err != nil {
				return 0, nil, err
			}
			list.Concepts = append(list.Concepts, dto)
		}
		return http.StatusOK, list, nil
	})
}

func (s *Server) handleGetConcept(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	cid, err := strconv.Atoi(r.PathValue("cid"))
	if err != nil {
		return badRequest(fmt.Errorf("concept id: %w", err))
	}
	return s.withSession(w, r, func(e *entry, sess *cable.Session) (int, any, error) {
		dto, err := conceptDTO(sess, cid, true)
		if err != nil {
			return 0, nil, err
		}
		return http.StatusOK, dto, nil
	})
}

func (s *Server) handleListTraces(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	return s.withSession(w, r, func(e *entry, sess *cable.Session) (int, any, error) {
		list := apiv1.TraceList{Traces: []apiv1.TraceClass{}}
		labels := sess.Labels()
		for i, t := range sess.Representatives() {
			count, err := sess.Multiplicity(i)
			if err != nil {
				return 0, nil, err
			}
			tc := apiv1.TraceClass{Index: i, Key: t.Key(), Count: count}
			if labels[i] != cable.Unlabeled {
				tc.Label = string(labels[i])
			}
			list.Traces = append(list.Traces, tc)
		}
		return http.StatusOK, list, nil
	})
}

func (s *Server) handleLabel(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req apiv1.LabelRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	if req.Label == "" {
		return badRequest(errors.New("label must be non-empty"))
	}
	if (req.Trace == nil) == (req.Concept == nil) {
		return badRequest(errors.New(`set exactly one of "trace" or "concept"`))
	}
	return s.withSession(w, r, func(e *entry, sess *cable.Session) (int, any, error) {
		// Log top-level label changes to the session's WAL. Focus labels
		// are scratch state until the focus ends (the merge rewrites the
		// snapshot), so only the parent session is diffed.
		var before []cable.Label
		if s.persist != nil && sess == e.session {
			before = sess.Labels()
		}
		if req.Trace != nil {
			if err := sess.LabelTrace(*req.Trace, cable.Label(req.Label)); err != nil {
				return 0, nil, err
			}
			s.walLabelDiff(e.id, sess, before)
			return http.StatusOK, apiv1.LabelResponse{Labeled: 1}, nil
		}
		sel, err := parseSelector(req.Selector)
		if err != nil {
			return 0, nil, err
		}
		n, err := sess.LabelTraces(*req.Concept, sel, cable.Label(req.Label))
		if err != nil {
			return 0, nil, err
		}
		s.walLabelDiff(e.id, sess, before)
		return http.StatusOK, apiv1.LabelResponse{Labeled: n}, nil
	})
}

// walLabelDiff appends one WAL record per class whose label changed
// between the before snapshot and the session's current labeling. A nil
// before (persistence off, or a focus session) is a no-op.
func (s *Server) walLabelDiff(id string, sess *cable.Session, before []cable.Label) {
	if before == nil {
		return
	}
	after := sess.Labels()
	reps := sess.Representatives()
	var recs [][]byte
	for i := range after {
		if i < len(before) && before[i] == after[i] {
			continue
		}
		recs = append(recs, walLabelRecord(reps[i].Key(), string(after[i])))
	}
	if err := s.persist.appendWAL(id, recs); err != nil {
		s.metrics.Counter("server.snapshot.errors").Inc()
	}
}

// handleAddTraces ingests additional traces into a live session without
// rebuilding its lattice: duplicates bump class multiplicities, novel
// traces run the incremental lattice-maintenance path. The batch is
// validated up front so a rejected trace leaves the session unchanged.
func (s *Server) handleAddTraces(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req apiv1.AddTracesRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	in, err := trace.Read(strings.NewReader(req.Traces))
	if err != nil {
		return badRequest(fmt.Errorf("traces: %w", err))
	}
	if in.Total() == 0 {
		return badRequest(errors.New("traces: empty trace set"))
	}
	return s.withSession(w, r, func(e *entry, sess *cable.Session) (int, any, error) {
		if sess != e.session {
			return 0, nil, badRequest(errors.New("cannot add traces to a focus session; add them to the parent"))
		}
		ref := sess.Ref()
		for _, cl := range in.Classes() {
			if _, ok := ref.Executed(cl.Rep); !ok {
				return 0, nil, validationFailed(fmt.Errorf("reference FA %q rejects trace %q", ref.Name(), cl.Rep.ID))
			}
		}
		if e.latticeShared {
			// Copy-on-write: the cache may still serve this lattice to a
			// re-upload of the original corpus, so mutate a private copy.
			sess.DetachLattice()
			e.latticeShared = false
		}
		added, newClasses := 0, 0
		var walRecs [][]byte
		for _, cl := range in.Classes() {
			for j := 0; j < cl.Count; j++ {
				t := cl.Rep
				t.ID = cl.IDs[j]
				_, isNew, err := sess.AddTraceCtx(ctx, t)
				if err != nil {
					return 0, nil, err
				}
				added++
				if isNew {
					newClasses++
				}
				if s.persist != nil {
					rec, err := walAddRecord(t)
					if err != nil {
						return 0, nil, err
					}
					walRecs = append(walRecs, rec)
				}
			}
		}
		if s.persist != nil {
			if err := s.persist.appendWAL(e.id, walRecs); err != nil {
				s.metrics.Counter("server.snapshot.errors").Inc()
			}
		}
		return http.StatusOK, apiv1.AddTracesResponse{
			Added:       added,
			NewClasses:  newClasses,
			NumTraces:   sess.NumTraces(),
			NumConcepts: sess.Lattice().Len(),
		}, nil
	})
}

func (s *Server) handleSuggest(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req apiv1.SuggestRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	return s.withSession(w, r, func(e *entry, sess *cable.Session) (int, any, error) {
		sug, err := sess.SuggestFocus(req.Concept)
		if err != nil {
			if errors.Is(err, cable.ErrBadConcept) {
				return 0, nil, err
			}
			return 0, nil, sessionBusy(err)
		}
		var b strings.Builder
		if err := fa.Write(&b, sug.Ref); err != nil {
			return 0, nil, err
		}
		return http.StatusOK, apiv1.SuggestResponse{Template: sug.Template, RefFA: b.String()}, nil
	})
}

func (s *Server) handleFocus(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req apiv1.FocusRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	ref, err := fa.Read(strings.NewReader(req.RefFA))
	if err != nil {
		return badRequest(fmt.Errorf("ref_fa: %w", err))
	}
	sel, err := parseSelector(req.Selector)
	if err != nil {
		return err
	}
	return s.withSession(w, r, func(e *entry, sess *cable.Session) (int, any, error) {
		if sess != e.session {
			return 0, nil, badRequest(errors.New("nested focus is not supported over the API; end the current focus first"))
		}
		// The focus sub-lattice is deliberately built under the entry
		// lock: the focus registry lives in the parent entry, and
		// concurrent Focus/End on one session are serialized by design.
		//cablevet:ignore lockheld focus build is serialized with its session by design
		f, err := sess.Focus(req.Concept, sel, ref, cable.WithContext(ctx))
		if err != nil {
			if errors.Is(err, cable.ErrBadConcept) || ctx.Err() != nil {
				return 0, nil, err
			}
			return 0, nil, badRequest(err)
		}
		fid, err := s.store.addFocus(e, f)
		if err != nil {
			return 0, nil, err
		}
		return http.StatusCreated, apiv1.FocusResponse{
			SessionID:   fid,
			NumTraces:   f.Session().NumTraces(),
			NumConcepts: f.Session().Lattice().Len(),
		}, nil
	})
}

func (s *Server) handleEndFocus(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	res, ok := s.store.resolve(id)
	if !ok || res.focusID == "" {
		return notFound(fmt.Errorf("no focus session %q", id))
	}
	resp, err := func() (apiv1.EndFocusResponse, error) {
		res.entry.mu.Lock()
		defer res.entry.mu.Unlock()
		f, ok := res.entry.focuses[res.focusID]
		if !ok {
			return apiv1.EndFocusResponse{}, notFound(fmt.Errorf("focus session %q has already ended", id))
		}
		merged, err := f.End()
		if err != nil {
			return apiv1.EndFocusResponse{}, err
		}
		s.store.dropFocus(res.entry, res.focusID)
		if s.persist != nil {
			// The merge changed parent labels outside the WAL's record
			// vocabulary only in bulk; a fresh snapshot (which also
			// truncates the WAL) is the simplest durable form. Stream
			// records ride along so truncation doesn't lose them.
			if err := s.snapshotSession(res.entry); err != nil {
				s.metrics.Counter("server.snapshot.errors").Inc()
			}
		}
		return apiv1.EndFocusResponse{Merged: merged}, nil
	}()
	s.store.touch(res.entry)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

func (s *Server) handleExportLabels(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	return s.withSession(w, r, func(e *entry, sess *cable.Session) (int, any, error) {
		export := apiv1.LabelsExport{Labels: []apiv1.LabelLine{}}
		reps := sess.Representatives()
		for i, l := range sess.Labels() {
			if l != cable.Unlabeled {
				export.Labels = append(export.Labels, apiv1.LabelLine{Label: string(l), Key: reps[i].Key()})
			}
		}
		return http.StatusOK, export, nil
	})
}

func (s *Server) handleMetrics(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	if s.metrics == nil {
		writeJSON(w, http.StatusOK, struct{}{})
		return nil
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	return s.metrics.WriteText(w)
}
