package server

import (
	"net/http"
	"runtime"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/server/apiv1"
	"repro/internal/xtrace"
)

// soakModel is the stdio workload the stream soak drives: the two good
// protocol instances stdioSpec accepts, plus the misuse and leak error
// modes that make streams violate online.
func soakModel() xtrace.Model {
	return xtrace.Model{
		Scenarios: []xtrace.Scenario{
			{Name: "pipe", Good: true, Weight: 8, Events: []xtrace.Event{
				xtrace.Ev("X = popen()"),
				xtrace.Rep("fread(X)", 0, 2),
				xtrace.Rep("fwrite(X)", 0, 1),
				xtrace.Ev("pclose(X)"),
			}},
			{Name: "pipe-fclose", Good: false, Kind: xtrace.Misuse, Weight: 2, Events: []xtrace.Event{
				xtrace.Ev("X = popen()"),
				xtrace.Rep("fread(X)", 0, 1),
				xtrace.Ev("fclose(X)"),
			}},
			{Name: "pipe-leak", Good: false, Kind: xtrace.Leak, Weight: 1, Events: []xtrace.Event{
				xtrace.Ev("X = popen()"),
				xtrace.Rep("fread(X)", 1, 2),
			}},
		},
	}
}

// fanOut runs fn(i) for i in [0, n) across a bounded worker pool — the
// soak's stand-in for n independent stream producers.
func fanOut(n, workers int, fn func(int)) {
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// heapInUse forces a full collection and returns the live heap.
func heapInUse() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestStreamSoak is the acceptance soak: ≥1000 concurrent streams
// through the full HTTP surface (it runs under -race in the stream-smoke
// CI lane). Phase one pumps generated workloads with known-bad instances
// and checks the violations landed in the owning session; phase two
// pumps a much larger volume of clean protocol traffic and pins the
// bounded-memory property — the live heap must not grow with events,
// because per-stream state is just the frontier and the violation ring.
func TestStreamSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run skipped in -short mode")
	}
	const (
		nStreams = 1000
		workers  = 32
	)
	m := obs.New()
	_, c := newTestServer(t, Config{CacheSize: 4, Metrics: m})
	created := c.mustCreate(violationFixture(t))
	sid := created.SessionID

	scripts, _ := xtrace.Generator{Model: soakModel(), Seed: 42}.Streams(nStreams, 3)
	wantBad := 0
	for _, s := range scripts {
		if s.Bad > 0 {
			wantBad++
		}
	}
	if wantBad == 0 {
		t.Fatal("generator produced no bad instances; enlarge the batch")
	}

	// Phase 1: open every stream and feed its generated script.
	ids := make([]string, nStreams)
	fanOut(nStreams, workers, func(i int) {
		ids[i] = c.openStream(sid, stdioSpec, 0).StreamID
		var resp apiv1.StreamEventsResponse
		if code := c.postRaw("/v1/streams/"+ids[i]+"/events", string(scripts[i].NDJSON()), &resp); code != http.StatusOK {
			t.Errorf("stream %d: events: status %d", i, code)
		}
	})
	if got := m.Gauge("server.streams.live").Value(); got != nStreams {
		t.Fatalf("server.streams.live = %d, want %d", got, nStreams)
	}
	if got := m.Counter("server.stream.violations").Value(); got < int64(wantBad) {
		t.Errorf("server.stream.violations = %d, want >= %d (scripts with bad instances)", got, wantBad)
	}
	var info apiv1.SessionInfo
	if code := c.do("GET", "/v1/sessions/"+sid, nil, &info); code != http.StatusOK {
		t.Fatalf("session info: %d", code)
	}
	if info.NumTraces <= created.NumTraces {
		t.Errorf("no violation classes reached the session: %d traces, started with %d", info.NumTraces, created.NumTraces)
	}

	// Phase 2: clean protocol traffic only — no violations, no lattice
	// growth — at ~200k events. Retained memory must stay flat. A
	// one-event flush runs first: pclose either completes a mid-protocol
	// instance (trailing leak) or violates and resets, so every checker
	// sits at the accept state and the measured rounds see identical,
	// violation-free work.
	batch := []string{"X = popen()"}
	for i := 0; i < 68; i++ {
		batch = append(batch, "fread(X)")
	}
	batch = append(batch, "pclose(X)")
	body := ndjson(batch...)
	fanOut(nStreams, workers, func(i int) {
		var resp apiv1.StreamEventsResponse
		if code := c.postRaw("/v1/streams/"+ids[i]+"/events", ndjson("pclose(X)"), &resp); code != http.StatusOK {
			t.Errorf("stream %d: flush: status %d", i, code)
		}
	})
	base := heapInUse()
	const rounds = 3
	for r := 0; r < rounds; r++ {
		fanOut(nStreams, workers, func(i int) {
			var resp apiv1.StreamEventsResponse
			if code := c.postRaw("/v1/streams/"+ids[i]+"/events", body, &resp); code != http.StatusOK {
				t.Errorf("stream %d: events: status %d", i, code)
			} else if len(resp.Violations) != 0 {
				t.Errorf("stream %d: clean traffic violated: %+v", i, resp.Violations)
			}
		})
	}
	grew := int64(heapInUse()) - int64(base)
	events := int64(nStreams) * rounds * int64(len(batch))
	const maxGrowth = 8 << 20
	if grew > maxGrowth {
		t.Errorf("live heap grew %d bytes over %d steady-state events (limit %d): per-event retention", grew, events, maxGrowth)
	}
	t.Logf("soak: %d streams, %d steady-state events, heap delta %+d bytes", nStreams, events, grew)

	// Drain: every stream closes cleanly (phase 2 left them all at the
	// accept state unless a trailing leak was pending from phase 1 — those
	// finalize with an incomplete violation, which is fine).
	fanOut(nStreams, workers, func(i int) {
		var resp apiv1.CloseStreamResponse
		if code := c.do("DELETE", "/v1/streams/"+ids[i], nil, &resp); code != http.StatusOK {
			t.Errorf("stream %d: close: status %d", i, code)
		}
	})
	if got := m.Gauge("server.streams.live").Value(); got != 0 {
		t.Errorf("server.streams.live = %d after drain, want 0", got)
	}
}

// BenchmarkStreamPump measures end-to-end NDJSON ingest — HTTP handler,
// scanio, online check — with 1000 streams open on one session. One
// iteration is one xtrace-generated clean-protocol batch on the next
// stream round-robin, the steady state a production deployment pays
// per batch.
func BenchmarkStreamPump(b *testing.B) {
	const nStreams = 1000
	_, c := newTestServer(b, Config{CacheSize: 4})
	created := c.mustCreate(violationFixture(b))

	good := soakModel()
	good.Scenarios = good.Scenarios[:1]
	scripts, _ := xtrace.Generator{Model: good, Seed: 1}.Streams(nStreams, 8)
	ids := make([]string, nStreams)
	bodies := make([]string, nStreams)
	fanOut(nStreams, 32, func(i int) {
		ids[i] = c.openStream(created.SessionID, stdioSpec, 0).StreamID
		bodies[i] = string(scripts[i].NDJSON())
	})

	events := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % nStreams
		var resp apiv1.StreamEventsResponse
		if code := c.postRaw("/v1/streams/"+ids[j]+"/events", bodies[j], &resp); code != http.StatusOK {
			b.Fatalf("events: status %d", code)
		}
		if len(resp.Violations) != 0 {
			b.Fatalf("clean batch violated: %+v", resp.Violations)
		}
		events += len(scripts[j].Events)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}
