package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strings"
	"sync"

	"repro/internal/concept"
	"repro/internal/fa"
	"repro/internal/obs"
	"repro/internal/trace"
)

// latticeCache is an LRU of built concept lattices keyed by the (trace
// multiset, reference FA) pair. Lattices are immutable once finalized and
// carry no labels — labeling state lives in cable.Session — so a cached
// lattice is safely shared by any number of concurrent sessions over the
// same inputs. Re-uploading a trace set the server has already analyzed
// therefore skips concept.Build entirely, which is the dominant cost of
// session creation.
type latticeCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // key -> element holding *cacheEntry
	metrics *obs.Metrics
}

type cacheEntry struct {
	key     string
	lattice *concept.Lattice
}

// newLatticeCache returns a cache holding at most capacity lattices;
// capacity <= 0 disables caching (every Get misses, Put drops).
func newLatticeCache(capacity int, m *obs.Metrics) *latticeCache {
	return &latticeCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
		metrics: m,
	}
}

// cacheKey fingerprints the inputs that determine a lattice: the ordered
// class keys of the trace set (order fixes the object numbering, so a
// permuted upload builds a different — if isomorphic — lattice) and the
// reference FA's text serialization. Multiplicities are deliberately
// excluded: the lattice is built over class representatives, so the same
// classes with different counts share a lattice.
func cacheKey(set *trace.Set, ref *fa.FA) string {
	h := sha256.New()
	var b strings.Builder
	if err := fa.Write(&b, ref); err == nil {
		h.Write([]byte(b.String()))
	}
	var n [8]byte
	for _, t := range set.Representatives() {
		k := t.Key()
		binary.LittleEndian.PutUint64(n[:], uint64(len(k)))
		h.Write(n[:])
		h.Write([]byte(k))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Enabled reports whether the cache stores anything at all; sessions only
// need copy-on-write lattice handling when it does.
func (c *latticeCache) Enabled() bool { return c.cap > 0 }

// Get returns the cached lattice for key, promoting it to most recently
// used, or nil on a miss.
func (c *latticeCache) Get(key string) *concept.Lattice {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.metrics.Counter("server.cache.hits").Inc()
		return el.Value.(*cacheEntry).lattice
	}
	c.metrics.Counter("server.cache.misses").Inc()
	return nil
}

// Put stores a freshly built lattice, evicting the least recently used
// entry when over capacity. Storing an existing key promotes it.
func (c *latticeCache) Put(key string, l *concept.Lattice) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).lattice = l
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, lattice: l})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.order.Remove(back)
		c.metrics.Counter("server.cache.evictions").Inc()
	}
	c.metrics.Gauge("server.cache.size").Set(int64(c.order.Len()))
}

// Len reports the number of cached lattices.
func (c *latticeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
