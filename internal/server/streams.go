// Stream endpoints: online runtime verification over live sessions.
//
// A stream binds an internal/stream.Checker to a spec FA — the owning
// session's reference FA by default, or an explicit (usually stricter)
// spec supplied at open time, with the session's reference FA serving as
// the lattice vocabulary the violation windows land in.
// Event batches arrive as NDJSON; the checker advances its frontier with
// bounded memory, and every violation's windowed counterexample is
// appended into the owning session via Session.AddTraceCtx — the lattice
// and labels stay live while streams run.
//
// Concurrency: each batch holds only the stream's own lock while it
// feeds events (so one slow stream never blocks another, nor any session
// endpoint), then releases it and takes the owning session's entry lock
// to append violations and persist. Neither lock is held while acquiring
// the other on this path; the only sanctioned nesting is entry → stream,
// used by snapshotSession.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/fa"
	"repro/internal/server/apiv1"
	"repro/internal/speclint"
	"repro/internal/stream"
)

// maxStreamBatch bounds one NDJSON batch body.
const maxStreamBatch = 64 << 20

func (s *Server) handleOpenStream(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req apiv1.OpenStreamRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	if req.SessionID == "" {
		return badRequest(errors.New(`"session_id" is required`))
	}
	if req.Window < 0 {
		return badRequest(fmt.Errorf("window: negative size %d", req.Window))
	}
	res, ok := s.store.resolve(req.SessionID)
	if !ok {
		return notFound(fmt.Errorf("no session %q", req.SessionID))
	}
	if res.focusID != "" {
		return badRequest(errors.New("streams bind to top-level sessions, not focus sessions"))
	}
	// With no explicit spec the stream verifies the session's reference
	// FA, reusing its compiled plan — opening a stream never recompiles.
	// An explicit spec compiles once here and is shared by every event
	// batch on this stream.
	sim := res.session.Ref().Sim()
	specName := res.session.Ref().Name()
	specText := ""
	var warnings []apiv1.LintFinding
	if req.Spec != "" {
		spec, err := fa.Read(strings.NewReader(req.Spec))
		if err != nil {
			return badRequest(fmt.Errorf("spec: %w", err))
		}
		var canon strings.Builder
		if err := fa.Write(&canon, spec); err != nil {
			return badRequest(fmt.Errorf("spec: %w", err))
		}
		sim = spec.Sim()
		specName = spec.Name()
		specText = canon.String()
		// A defective spec still opens — maybe the caller wants exactly
		// that automaton — but a vacuous or ambiguous one verifies
		// uselessly, so speclint's findings ride along as warnings.
		warnings = lintFindings(speclint.LintAll(spec))
	}
	chk := stream.New(sim, stream.Config{Window: req.Window})
	se, err := s.store.addStream(req.SessionID, specText, specName, chk)
	if err != nil {
		return notFound(err)
	}
	if s.persist != nil {
		res.entry.mu.Lock()
		perr := s.persist.appendWAL(res.entry.id, [][]byte{walStreamRecord(se.id, se.spec, false, chk.State())})
		res.entry.mu.Unlock()
		if perr != nil {
			s.metrics.Counter("server.snapshot.errors").Inc()
		}
	}
	writeJSON(w, http.StatusCreated, apiv1.OpenStreamResponse{
		StreamID:  se.id,
		SessionID: req.SessionID,
		Window:    chk.Window(),
		Warnings:  warnings,
	})
	return nil
}

// streamInfo snapshots one stream's DTO under its lock.
func streamInfo(se *streamEntry) apiv1.StreamInfo {
	se.mu.Lock()
	defer se.mu.Unlock()
	return apiv1.StreamInfo{
		StreamID:    se.id,
		SessionID:   se.ownerID,
		Created:     se.created.UTC().Format(time.RFC3339),
		Spec:        se.specName,
		Window:      se.checker.Window(),
		Events:      se.checker.Events(),
		Violations:  se.checker.Violations(),
		Truncations: se.checker.Truncations(),
		Accepting:   se.checker.Accepting(),
	}
}

func (s *Server) handleListStreams(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	cursor, limit, err := pageParams(r)
	if err != nil {
		return err
	}
	all := s.store.listStreams()
	if sid := r.URL.Query().Get("session"); sid != "" {
		filtered := all[:0:0]
		for _, se := range all {
			if se.ownerID == sid {
				filtered = append(filtered, se)
			}
		}
		all = filtered
	}
	pageStreams, next := page(all, func(se *streamEntry) string { return se.id }, cursor, limit)
	list := apiv1.StreamList{Streams: make([]apiv1.StreamInfo, 0, len(pageStreams)), NextCursor: next}
	for _, se := range pageStreams {
		list.Streams = append(list.Streams, streamInfo(se))
	}
	writeJSON(w, http.StatusOK, list)
	return nil
}

func (s *Server) handleGetStream(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	se, ok := s.store.resolveStream(id)
	if !ok {
		return notFound(fmt.Errorf("no stream %q", id))
	}
	writeJSON(w, http.StatusOK, streamInfo(se))
	return nil
}

// violationDTO renders one stream violation for the wire.
func violationDTO(v stream.Violation) apiv1.StreamViolation {
	return apiv1.StreamViolation{
		Offset:     v.Offset,
		At:         v.At,
		Trace:      v.Trace.Key(),
		Truncated:  v.Truncated,
		Incomplete: v.Incomplete(),
	}
}

// appendViolations pushes a batch's violation traces into the owning
// session (entry lock held inside), returning how many started new
// lattice classes. Violation trace IDs carry provenance:
// "<streamID>@<offset>". The stream's current state rides along into
// the session's WAL so a crash resumes the stream where it left off.
func (s *Server) appendViolations(ctx context.Context, se *streamEntry, violations []stream.Violation, state stream.State, closed bool) (int, error) {
	if len(violations) == 0 && s.persist == nil {
		return 0, nil
	}
	res, ok := s.store.resolve(se.ownerID)
	if !ok {
		// Session deleted while the batch was in flight: the stream is
		// doomed (closeStreamsOf marks it), the violations have nowhere
		// to go.
		s.metrics.Counter("server.stream.orphan_violations").Add(int64(len(violations)))
		return 0, nil
	}
	newClasses := 0
	err := func() error {
		res.entry.mu.Lock()
		defer res.entry.mu.Unlock()
		e, sess := res.entry, res.session
		if len(violations) > 0 && e.latticeShared {
			// Copy-on-write, as in handleAddTraces: the cache may still
			// serve this lattice to re-uploads of the original corpus.
			sess.DetachLattice()
			e.latticeShared = false
		}
		var walRecs [][]byte
		for _, v := range violations {
			t := v.Trace
			t.ID = fmt.Sprintf("%s@%d", se.id, v.Offset)
			_, isNew, err := sess.AddTraceCtx(ctx, t)
			if err != nil {
				if ctx.Err() != nil {
					return err
				}
				// The session's reference FA rejects the window — it can
				// happen when the stream checks the reference FA itself, or
				// when the window carries events outside the session
				// alphabet. The violation still reaches the client; it just
				// cannot become a lattice object.
				s.metrics.Counter("server.stream.append_rejected").Inc()
				continue
			}
			if isNew {
				newClasses++
			}
			if s.persist != nil {
				rec, err := walAddRecord(t)
				if err != nil {
					return err
				}
				walRecs = append(walRecs, rec)
			}
		}
		if s.persist != nil {
			walRecs = append(walRecs, walStreamRecord(se.id, se.spec, closed, state))
			if err := s.persist.appendWAL(e.id, walRecs); err != nil {
				s.metrics.Counter("server.snapshot.errors").Inc()
			}
		}
		return nil
	}()
	s.store.touch(res.entry)
	return newClasses, err
}

func (s *Server) handleStreamEvents(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	se, ok := s.store.resolveStream(id)
	if !ok {
		return notFound(fmt.Errorf("no stream %q", id))
	}
	var violations []stream.Violation
	var state stream.State
	accepted, issues, fatal := 0, []stream.LineIssue(nil), error(nil)
	func() {
		se.mu.Lock()
		defer se.mu.Unlock()
		if se.closed {
			fatal = notFound(fmt.Errorf("stream %q: owning session is gone", id))
			return
		}
		// The body is consumed under the stream lock on purpose: events
		// must apply in arrival order per stream, and the lock scopes to
		// this one stream only.
		accepted, issues, fatal = stream.Ingest(se.checker, io.LimitReader(r.Body, maxStreamBatch),
			func(v stream.Violation) { violations = append(violations, v) })
		state = se.checker.State()
	}()
	var he *httpError
	if fatal != nil && errors.As(fatal, &he) {
		return fatal // closed-stream rejection, nothing was fed
	}
	s.metrics.Counter("server.stream.events").Add(int64(accepted))
	s.metrics.Counter("server.stream.violations").Add(int64(len(violations)))
	newClasses, err := s.appendViolations(ctx, se, violations, state, false)
	if err != nil {
		return err
	}
	resp := apiv1.StreamEventsResponse{
		Accepted:   accepted,
		Events:     state.Events,
		NewClasses: newClasses,
	}
	for _, v := range violations {
		resp.Violations = append(resp.Violations, violationDTO(v))
	}
	for _, iss := range issues {
		resp.Errors = append(resp.Errors, errorEnvelope("bad_request", iss.Err))
	}
	if fatal != nil {
		// Unreadable remainder (oversized line, transport failure): the
		// lines fed so far are applied; report the failure as a final
		// line error so the client sees the partial progress.
		resp.Errors = append(resp.Errors, errorEnvelope("bad_request", fatal))
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

func (s *Server) handleCloseStream(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	se, ok := s.store.removeStream(id)
	if !ok {
		return notFound(fmt.Errorf("no stream %q", id))
	}
	var v stream.Violation
	var fired bool
	var state stream.State
	se.mu.Lock()
	v, fired = se.checker.Finalize()
	state = se.checker.State()
	se.mu.Unlock()
	var violations []stream.Violation
	if fired {
		s.metrics.Counter("server.stream.violations").Inc()
		violations = append(violations, v)
	}
	if _, err := s.appendViolations(ctx, se, violations, state, true); err != nil {
		return err
	}
	resp := apiv1.CloseStreamResponse{
		Events:         state.Events,
		ViolationTotal: state.Violations,
	}
	if fired {
		dto := violationDTO(v)
		resp.Violation = &dto
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}
