package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cable"
	"repro/internal/obs"
	"repro/internal/stream"
)

// entry is one hosted debugging session plus its open Focus sub-sessions.
// All mutation of the session — labeling, focusing, ending a focus — runs
// under the entry's mutex, so concurrent requests against one session
// serialize while requests against different sessions proceed in
// parallel. Focus sub-sessions live inside their parent's entry rather
// than as peers in the store: ending a focus touches both the sub-session
// and the parent's labels, and keeping them under a single lock removes
// any lock-ordering concern.
type entry struct {
	mu      sync.Mutex
	id      string
	session *cable.Session
	// focuses maps focus-session IDs to their live Focus handles.
	focuses map[string]*cable.Focus
	// latticeShared marks a session whose lattice is also held by the
	// server's cache (either served from it or just stored into it). A
	// mutating request must DetachLattice first and clear this flag, so
	// the cache keeps serving the pristine lattice to later uploads of
	// the same corpus. Guarded by mu.
	latticeShared bool
	// created and cacheHit are immutable after insert: the session's
	// creation time and whether its lattice came from the server cache.
	created  time.Time
	cacheHit bool

	// lastUsed is guarded by the store's mutex (not the entry's): the
	// janitor must read it without taking every session lock, and touch
	// happens on the store-locked resolve path anyway.
	lastUsed time.Time
}

// streamEntry is one open online-verification stream bound to a session.
// Its own mutex serializes event batches per stream; distinct streams
// (even on one session) ingest in parallel. Lock nesting order is
// entry.mu → streamEntry.mu (snapshotting holds a session's entry lock
// while reading its streams' states); the ingest path holds neither lock
// while acquiring the other, so the one-way order is never inverted.
type streamEntry struct {
	mu      sync.Mutex
	id      string
	ownerID string // owning top-level session's ID; immutable
	created time.Time
	// spec is the checked FA's serialized text when the stream verifies a
	// spec other than the owning session's reference FA, "" otherwise;
	// specName is the checked FA's name either way. Both immutable.
	spec     string
	specName string
	checker  *stream.Checker
	// closed marks a stream whose owning session was deleted or evicted
	// out from under it; later batches fail instead of checking against
	// a session that no longer exists. Guarded by mu.
	closed bool
}

// store owns the session table. Its RWMutex guards only the table and the
// lastUsed stamps; per-session work holds the entry mutex instead.
type store struct {
	mu      sync.RWMutex
	entries map[string]*entry
	// focusParent maps a focus-session ID to its parent entry, so focus
	// IDs resolve through the same lookup as top-level sessions.
	focusParent map[string]*entry
	// streams maps stream IDs to their entries. Streams live and die
	// with their owning session: deleting or evicting a session closes
	// its streams.
	streams map[string]*streamEntry
	metrics *obs.Metrics
	now     func() time.Time // injectable for eviction tests
	// onEvict, when set, runs with the ID of every session that leaves
	// the table (delete or idle eviction), outside all locks; the server
	// uses it to delete the session's snapshot and WAL files.
	onEvict func(id string)
}

func newStore(m *obs.Metrics) *store {
	return &store{
		entries:     make(map[string]*entry),
		focusParent: make(map[string]*entry),
		streams:     make(map[string]*streamEntry),
		metrics:     m,
		now:         time.Now,
	}
}

// newID returns an opaque 128-bit hex session ID.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: generating session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// add registers a session and returns its new ID. latticeShared records
// whether the session's lattice is also referenced by the lattice cache
// (see entry.latticeShared); cacheHit whether the lattice was served
// from that cache.
func (st *store) add(s *cable.Session, latticeShared, cacheHit bool) (string, error) {
	id, err := newID()
	if err != nil {
		return "", err
	}
	st.insert(&entry{
		id:            id,
		session:       s,
		latticeShared: latticeShared,
		cacheHit:      cacheHit,
		created:       st.now(),
		focuses:       make(map[string]*cable.Focus),
	})
	st.metrics.Counter("server.sessions.created").Inc()
	return id, nil
}

// restore registers a session under a pre-existing ID — the snapshot
// loader re-homes sessions from disk with the IDs their clients already
// hold. A duplicate ID is an error rather than a silent overwrite.
func (st *store) restore(id string, s *cable.Session) error {
	st.mu.Lock()
	_, dup := st.entries[id]
	st.mu.Unlock()
	if dup {
		return fmt.Errorf("server: restoring session %q: ID already live", id)
	}
	st.insert(&entry{id: id, session: s, created: st.now(), focuses: make(map[string]*cable.Focus)})
	return nil
}

func (st *store) insert(e *entry) {
	st.mu.Lock()
	e.lastUsed = st.now()
	st.entries[e.id] = e
	st.metrics.Gauge("server.sessions.live").Set(int64(len(st.entries)))
	st.mu.Unlock()
}

// touch stamps an entry's idle clock. resolve already stamps at request
// start; handlers touch again at request completion so a session is never
// considered idle while (or right after) a slow request runs against it.
func (st *store) touch(e *entry) {
	st.mu.Lock()
	e.lastUsed = st.now()
	st.mu.Unlock()
}

// addFocus registers a focus sub-session under its parent entry and
// returns the focus-session ID. Callers must hold e.mu.
func (st *store) addFocus(e *entry, f *cable.Focus) (string, error) {
	id, err := newID()
	if err != nil {
		return "", err
	}
	e.focuses[id] = f
	st.mu.Lock()
	st.focusParent[id] = e
	st.mu.Unlock()
	st.metrics.Counter("server.focuses.created").Inc()
	return id, nil
}

// resolved is the result of looking up a session ID: the entry to lock,
// the session to operate on (the sub-session for focus IDs), and the
// Focus handle when the ID names one.
type resolved struct {
	entry   *entry
	session *cable.Session
	focus   *cable.Focus
	focusID string
}

// resolve maps a session or focus-session ID to its entry, bumping the
// idle clock. The caller locks res.entry.mu before using res.session.
func (st *store) resolve(id string) (resolved, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.entries[id]; ok {
		e.lastUsed = st.now()
		return resolved{entry: e, session: e.session}, true
	}
	if e, ok := st.focusParent[id]; ok {
		e.lastUsed = st.now()
		// The focus handle itself is read under the entry lock by the
		// caller; only record the indirection here.
		return resolved{entry: e, focusID: id}, true
	}
	return resolved{}, false
}

// remove deletes a session and all its focus sub-sessions. It returns
// false if the ID is unknown or names a focus (focuses end, they are not
// deleted).
func (st *store) remove(id string) bool {
	st.mu.Lock()
	e, ok := st.entries[id]
	if ok {
		delete(st.entries, id)
		st.metrics.Gauge("server.sessions.live").Set(int64(len(st.entries)))
	}
	st.mu.Unlock()
	if !ok {
		return false
	}
	e.mu.Lock()
	ids := make([]string, 0, len(e.focuses))
	for fid := range e.focuses {
		ids = append(ids, fid)
	}
	e.focuses = make(map[string]*cable.Focus)
	e.mu.Unlock()
	st.mu.Lock()
	for _, fid := range ids {
		delete(st.focusParent, fid)
	}
	st.mu.Unlock()
	st.metrics.Counter("server.sessions.deleted").Inc()
	st.closeStreamsOf(id)
	if st.onEvict != nil {
		st.onEvict(id)
	}
	return true
}

// dropFocus unregisters an ended focus ID. Callers must hold e.mu.
func (st *store) dropFocus(e *entry, fid string) {
	delete(e.focuses, fid)
	st.mu.Lock()
	delete(st.focusParent, fid)
	st.mu.Unlock()
}

// addStream registers an open stream under a fresh ID. The owner must be
// a live top-level session.
func (st *store) addStream(ownerID, spec, specName string, c *stream.Checker) (*streamEntry, error) {
	id, err := newID()
	if err != nil {
		return nil, err
	}
	se := &streamEntry{id: id, ownerID: ownerID, spec: spec, specName: specName, checker: c}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.entries[ownerID]; !ok {
		return nil, fmt.Errorf("server: no session %q", ownerID)
	}
	se.created = st.now()
	st.streams[id] = se
	st.metrics.Counter("server.streams.opened").Inc()
	st.metrics.Gauge("server.streams.live").Set(int64(len(st.streams)))
	return se, nil
}

// restoreStream re-registers a stream under its pre-crash ID.
func (st *store) restoreStream(id, ownerID, spec, specName string, c *stream.Checker) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.streams[id]; dup {
		return fmt.Errorf("server: restoring stream %q: ID already live", id)
	}
	if _, ok := st.entries[ownerID]; !ok {
		return fmt.Errorf("server: restoring stream %q: no session %q", id, ownerID)
	}
	st.streams[id] = &streamEntry{id: id, ownerID: ownerID, spec: spec, specName: specName, created: st.now(), checker: c}
	st.metrics.Gauge("server.streams.live").Set(int64(len(st.streams)))
	return nil
}

// resolveStream looks up a stream and bumps its owning session's idle
// clock — a session with active streams is in use even if no session
// endpoint is being called.
func (st *store) resolveStream(id string) (*streamEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	se, ok := st.streams[id]
	if !ok {
		return nil, false
	}
	if e, ok := st.entries[se.ownerID]; ok {
		e.lastUsed = st.now()
	}
	return se, true
}

// removeStream unregisters a stream (finalize). The caller finalizes the
// checker; the entry is returned so it can.
func (st *store) removeStream(id string) (*streamEntry, bool) {
	st.mu.Lock()
	se, ok := st.streams[id]
	if ok {
		delete(st.streams, id)
		st.metrics.Gauge("server.streams.live").Set(int64(len(st.streams)))
	}
	st.mu.Unlock()
	if ok {
		st.metrics.Counter("server.streams.finalized").Inc()
	}
	return se, ok
}

// streamsOf snapshots the streams owned by one session, ordered by ID.
// Safe to call while holding the owner's entry lock (order entry→store).
func (st *store) streamsOf(ownerID string) []*streamEntry {
	st.mu.RLock()
	var out []*streamEntry
	for _, se := range st.streams {
		if se.ownerID == ownerID {
			out = append(out, se)
		}
	}
	st.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// listStreams snapshots all open streams, ordered by ID.
func (st *store) listStreams() []*streamEntry {
	st.mu.RLock()
	out := make([]*streamEntry, 0, len(st.streams))
	for _, se := range st.streams {
		out = append(out, se)
	}
	st.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// closeStreamsOf unregisters and closes every stream of a dead session.
// Runs outside all other locks (after the session left the table); a
// batch in flight on one of these streams finishes its feed and then
// finds the owner gone.
func (st *store) closeStreamsOf(ownerID string) {
	st.mu.Lock()
	var dead []*streamEntry
	for id, se := range st.streams {
		if se.ownerID == ownerID {
			dead = append(dead, se)
			delete(st.streams, id)
		}
	}
	st.metrics.Gauge("server.streams.live").Set(int64(len(st.streams)))
	st.mu.Unlock()
	for _, se := range dead {
		se.mu.Lock()
		se.closed = true
		se.mu.Unlock()
	}
}

// list snapshots the live top-level session IDs with their entries.
func (st *store) list() []*entry {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]*entry, 0, len(st.entries))
	for _, e := range st.entries {
		out = append(out, e)
	}
	return out
}

// evictIdle removes sessions untouched for longer than maxIdle and
// returns how many were evicted.
//
// The sweep must not race with in-flight requests: a handler that holds
// the entry lock past the idle horizon (a slow label batch, a focus
// build) would previously see its session deleted out from under it, and
// the completed work silently discarded. The janitor therefore claims
// each candidate with TryLock — an entry whose lock is contended is in
// use by definition, so it is skipped and retried on the next sweep —
// and re-verifies staleness under the store lock before deleting, since
// the request that held the lock touched the entry at completion.
func (st *store) evictIdle(maxIdle time.Duration) int {
	if maxIdle <= 0 {
		return 0
	}
	cutoff := st.now().Add(-maxIdle)
	st.mu.RLock()
	var stale []*entry
	for _, e := range st.entries {
		if e.lastUsed.Before(cutoff) {
			stale = append(stale, e)
		}
	}
	st.mu.RUnlock()
	var evicted []string
	for _, e := range stale {
		if !e.mu.TryLock() {
			continue // in use right now; next sweep retries
		}
		// Lock order entry → store, as in addFocus. remove() cannot be
		// reused here: it takes the locks sequentially and would re-lock
		// the entry mutex this goroutine already holds.
		st.mu.Lock()
		if cur, ok := st.entries[e.id]; !ok || cur != e || !e.lastUsed.Before(cutoff) {
			st.mu.Unlock()
			e.mu.Unlock()
			continue
		}
		delete(st.entries, e.id)
		for fid := range e.focuses {
			delete(st.focusParent, fid)
		}
		st.metrics.Gauge("server.sessions.live").Set(int64(len(st.entries)))
		st.mu.Unlock()
		e.focuses = make(map[string]*cable.Focus)
		e.mu.Unlock()
		evicted = append(evicted, e.id)
	}
	if len(evicted) > 0 {
		st.metrics.Counter("server.sessions.evicted").Add(int64(len(evicted)))
	}
	// Stream closure and file cleanup run outside every lock.
	for _, id := range evicted {
		st.closeStreamsOf(id)
	}
	if st.onEvict != nil {
		for _, id := range evicted {
			st.onEvict(id)
		}
	}
	return len(evicted)
}
