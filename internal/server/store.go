package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"repro/internal/cable"
	"repro/internal/obs"
)

// entry is one hosted debugging session plus its open Focus sub-sessions.
// All mutation of the session — labeling, focusing, ending a focus — runs
// under the entry's mutex, so concurrent requests against one session
// serialize while requests against different sessions proceed in
// parallel. Focus sub-sessions live inside their parent's entry rather
// than as peers in the store: ending a focus touches both the sub-session
// and the parent's labels, and keeping them under a single lock removes
// any lock-ordering concern.
type entry struct {
	mu      sync.Mutex
	id      string
	session *cable.Session
	// focuses maps focus-session IDs to their live Focus handles.
	focuses map[string]*cable.Focus

	// lastUsed is guarded by the store's mutex (not the entry's): the
	// janitor must read it without taking every session lock, and touch
	// happens on the store-locked resolve path anyway.
	lastUsed time.Time
}

// store owns the session table. Its RWMutex guards only the table and the
// lastUsed stamps; per-session work holds the entry mutex instead.
type store struct {
	mu      sync.RWMutex
	entries map[string]*entry
	// focusParent maps a focus-session ID to its parent entry, so focus
	// IDs resolve through the same lookup as top-level sessions.
	focusParent map[string]*entry
	metrics     *obs.Metrics
	now         func() time.Time // injectable for eviction tests
}

func newStore(m *obs.Metrics) *store {
	return &store{
		entries:     make(map[string]*entry),
		focusParent: make(map[string]*entry),
		metrics:     m,
		now:         time.Now,
	}
}

// newID returns an opaque 128-bit hex session ID.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: generating session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// add registers a session and returns its new ID.
func (st *store) add(s *cable.Session) (string, error) {
	id, err := newID()
	if err != nil {
		return "", err
	}
	e := &entry{id: id, session: s, focuses: make(map[string]*cable.Focus)}
	st.mu.Lock()
	e.lastUsed = st.now()
	st.entries[id] = e
	st.metrics.Gauge("server.sessions.live").Set(int64(len(st.entries)))
	st.mu.Unlock()
	st.metrics.Counter("server.sessions.created").Inc()
	return id, nil
}

// addFocus registers a focus sub-session under its parent entry and
// returns the focus-session ID. Callers must hold e.mu.
func (st *store) addFocus(e *entry, f *cable.Focus) (string, error) {
	id, err := newID()
	if err != nil {
		return "", err
	}
	e.focuses[id] = f
	st.mu.Lock()
	st.focusParent[id] = e
	st.mu.Unlock()
	st.metrics.Counter("server.focuses.created").Inc()
	return id, nil
}

// resolved is the result of looking up a session ID: the entry to lock,
// the session to operate on (the sub-session for focus IDs), and the
// Focus handle when the ID names one.
type resolved struct {
	entry   *entry
	session *cable.Session
	focus   *cable.Focus
	focusID string
}

// resolve maps a session or focus-session ID to its entry, bumping the
// idle clock. The caller locks res.entry.mu before using res.session.
func (st *store) resolve(id string) (resolved, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.entries[id]; ok {
		e.lastUsed = st.now()
		return resolved{entry: e, session: e.session}, true
	}
	if e, ok := st.focusParent[id]; ok {
		e.lastUsed = st.now()
		// The focus handle itself is read under the entry lock by the
		// caller; only record the indirection here.
		return resolved{entry: e, focusID: id}, true
	}
	return resolved{}, false
}

// remove deletes a session and all its focus sub-sessions. It returns
// false if the ID is unknown or names a focus (focuses end, they are not
// deleted).
func (st *store) remove(id string) bool {
	st.mu.Lock()
	e, ok := st.entries[id]
	if ok {
		delete(st.entries, id)
		st.metrics.Gauge("server.sessions.live").Set(int64(len(st.entries)))
	}
	st.mu.Unlock()
	if !ok {
		return false
	}
	e.mu.Lock()
	ids := make([]string, 0, len(e.focuses))
	for fid := range e.focuses {
		ids = append(ids, fid)
	}
	e.focuses = make(map[string]*cable.Focus)
	e.mu.Unlock()
	st.mu.Lock()
	for _, fid := range ids {
		delete(st.focusParent, fid)
	}
	st.mu.Unlock()
	st.metrics.Counter("server.sessions.deleted").Inc()
	return true
}

// dropFocus unregisters an ended focus ID. Callers must hold e.mu.
func (st *store) dropFocus(e *entry, fid string) {
	delete(e.focuses, fid)
	st.mu.Lock()
	delete(st.focusParent, fid)
	st.mu.Unlock()
}

// list snapshots the live top-level session IDs with their entries.
func (st *store) list() []*entry {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]*entry, 0, len(st.entries))
	for _, e := range st.entries {
		out = append(out, e)
	}
	return out
}

// evictIdle removes sessions untouched for longer than maxIdle and
// returns how many were evicted.
func (st *store) evictIdle(maxIdle time.Duration) int {
	if maxIdle <= 0 {
		return 0
	}
	cutoff := st.now().Add(-maxIdle)
	st.mu.RLock()
	var stale []string
	for id, e := range st.entries {
		if e.lastUsed.Before(cutoff) {
			stale = append(stale, id)
		}
	}
	st.mu.RUnlock()
	n := 0
	for _, id := range stale {
		// Re-check under remove's lock via lastUsed: a request that
		// touched the session between the scan and now wins.
		st.mu.RLock()
		e, ok := st.entries[id]
		fresh := ok && !e.lastUsed.Before(cutoff)
		st.mu.RUnlock()
		if !ok || fresh {
			continue
		}
		if st.remove(id) {
			n++
		}
	}
	if n > 0 {
		st.metrics.Counter("server.sessions.evicted").Add(int64(n))
	}
	return n
}
