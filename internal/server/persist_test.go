package server

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server/apiv1"
	"repro/internal/trace"
)

// restartServer simulates a crash-and-restart: a brand-new Server over the
// same snapshot directory, with LoadSnapshots run at boot. Nothing is
// carried over in memory — exactly the SIGKILL scenario.
func restartServer(t *testing.T, dir string, m *obs.Metrics) (*Server, *client) {
	t.Helper()
	srv, c := newTestServer(t, Config{CacheSize: 4, SnapshotDir: dir, Metrics: m})
	if _, err := srv.LoadSnapshots(context.Background()); err != nil {
		t.Fatal(err)
	}
	return srv, c
}

func TestSessionPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := obs.New()
	_, c := newTestServer(t, Config{CacheSize: 4, SnapshotDir: dir, Metrics: m})
	created := c.mustCreate(violationFixture(t))
	sid := created.SessionID

	// Label two classes (WAL records) and add a trace (another record).
	zero, one := 0, 1
	var lr apiv1.LabelResponse
	if code := c.do("POST", "/v1/sessions/"+sid+"/label", apiv1.LabelRequest{Trace: &zero, Label: "bad"}, &lr); code != 200 {
		t.Fatalf("label: %d", code)
	}
	if code := c.do("POST", "/v1/sessions/"+sid+"/label", apiv1.LabelRequest{Trace: &one, Label: "good"}, &lr); code != 200 {
		t.Fatalf("label: %d", code)
	}
	added := c.addTraces(sid, trace.NewSet(trace.ParseEvents("v8", "X = fopen()", "fwrite(X)", "pclose(X)")))

	if saves := m.Counter("server.snapshot.save").Value(); saves != 1 {
		t.Errorf("server.snapshot.save = %d, want 1 (create only)", saves)
	}

	// "Crash": no graceful save. Restart over the same directory.
	m2 := obs.New()
	_, c2 := restartServer(t, dir, m2)
	if loads := m2.Counter("server.snapshot.load").Value(); loads != 1 {
		t.Fatalf("server.snapshot.load = %d, want 1", loads)
	}
	if rep := m2.Counter("server.snapshot.replay").Value(); rep != 3 {
		t.Errorf("server.snapshot.replay = %d, want 3 (two labels, one add)", rep)
	}

	// Same ID, same labels, same grown corpus, same lattice size.
	var info apiv1.SessionInfo
	if code := c2.do("GET", "/v1/sessions/"+sid, nil, &info); code != 200 {
		t.Fatalf("restored session not resolvable: %d", code)
	}
	if info.NumTraces != added.NumTraces || info.NumConcepts != added.NumConcepts {
		t.Fatalf("restored shape %+v, want %d classes / %d concepts", info, added.NumTraces, added.NumConcepts)
	}
	if info.Labeled != 2 {
		t.Fatalf("restored session has %d labels, want 2", info.Labeled)
	}
	var traces apiv1.TraceList
	if code := c2.do("GET", "/v1/sessions/"+sid+"/traces", nil, &traces); code != 200 {
		t.Fatal("list traces")
	}
	if traces.Traces[0].Label != "bad" || traces.Traces[1].Label != "good" {
		t.Fatalf("restored labels = %q, %q; want bad, good", traces.Traces[0].Label, traces.Traces[1].Label)
	}

	// The restored session stays fully usable: label the added class.
	idx := added.NumTraces - 1
	if code := c2.do("POST", "/v1/sessions/"+sid+"/label", apiv1.LabelRequest{Trace: &idx, Label: "good"}, &lr); code != 200 {
		t.Fatalf("label after restore: %d", code)
	}
}

func TestSnapshotFilesFollowSessionLifecycle(t *testing.T) {
	dir := t.TempDir()
	srv, c := newTestServer(t, Config{CacheSize: 4, SnapshotDir: dir, IdleTimeout: time.Minute})
	a := c.mustCreate(violationFixture(t))
	b := c.mustCreate(fixtureFrom(t, trace.NewSet(trace.ParseEvents("w0", "a()"))))

	snap := func(id string) string { return filepath.Join(dir, id+".snap") }
	for _, id := range []string{a.SessionID, b.SessionID} {
		if _, err := os.Stat(snap(id)); err != nil {
			t.Fatalf("no snapshot for %s: %v", id, err)
		}
	}

	// DELETE removes the files.
	if code := c.do("DELETE", "/v1/sessions/"+a.SessionID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if _, err := os.Stat(snap(a.SessionID)); !os.IsNotExist(err) {
		t.Errorf("deleted session's snapshot survived: %v", err)
	}

	// Idle eviction removes them too.
	base := time.Now()
	srv.store.now = func() time.Time { return base.Add(2 * time.Minute) }
	if n := srv.EvictIdleNow(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if _, err := os.Stat(snap(b.SessionID)); !os.IsNotExist(err) {
		t.Errorf("evicted session's snapshot survived: %v", err)
	}
}

func TestWALTornTailRestoresPrefix(t *testing.T) {
	dir := t.TempDir()
	_, c := newTestServer(t, Config{CacheSize: 4, SnapshotDir: dir})
	created := c.mustCreate(violationFixture(t))
	sid := created.SessionID
	zero, one := 0, 1
	var lr apiv1.LabelResponse
	if code := c.do("POST", "/v1/sessions/"+sid+"/label", apiv1.LabelRequest{Trace: &zero, Label: "good"}, &lr); code != 200 {
		t.Fatal("label")
	}
	if code := c.do("POST", "/v1/sessions/"+sid+"/label", apiv1.LabelRequest{Trace: &one, Label: "bad"}, &lr); code != 200 {
		t.Fatal("label")
	}

	// Tear the WAL mid-record, as a crash during a write would.
	walPath := filepath.Join(dir, sid+".wal")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	_, c2 := restartServer(t, dir, obs.New())
	var traces apiv1.TraceList
	if code := c2.do("GET", "/v1/sessions/"+sid+"/traces", nil, &traces); code != 200 {
		t.Fatalf("restore after torn WAL: %d", code)
	}
	if traces.Traces[0].Label != "good" {
		t.Errorf("first (durable) record lost: label %q", traces.Traces[0].Label)
	}
	if traces.Traces[1].Label != "" {
		t.Errorf("torn record was applied: label %q", traces.Traces[1].Label)
	}
}

func TestCorruptSnapshotSkippedOnBoot(t *testing.T) {
	dir := t.TempDir()
	_, c := newTestServer(t, Config{CacheSize: 4, SnapshotDir: dir})
	good := c.mustCreate(violationFixture(t))
	bad := c.mustCreate(fixtureFrom(t, trace.NewSet(trace.ParseEvents("w0", "a()"))))

	// Flip a byte in the middle of one snapshot.
	path := filepath.Join(dir, bad.SessionID+".snap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x41
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m := obs.New()
	srv2, c2 := restartServer(t, dir, m)
	if n := len(srv2.store.list()); n != 1 {
		t.Fatalf("%d sessions restored, want 1 (corrupt one skipped)", n)
	}
	if code := c2.do("GET", "/v1/sessions/"+good.SessionID, nil, nil); code != 200 {
		t.Errorf("intact session did not restore: %d", code)
	}
	if errs := m.Counter("server.snapshot.load_errors").Value(); errs != 1 {
		t.Errorf("server.snapshot.load_errors = %d, want 1", errs)
	}
}

// TestEvictionSkipsBusySession is the idle-eviction race regression test:
// a session whose entry lock is held (an in-flight request) must never be
// evicted out from under the request, even when its idle stamp is stale.
func TestEvictionSkipsBusySession(t *testing.T) {
	srv, c := newTestServer(t, Config{CacheSize: 4, IdleTimeout: time.Minute})
	created := c.mustCreate(violationFixture(t))
	e := srv.store.list()[0]

	// Simulate an in-flight request: the handler holds the entry lock
	// while the idle horizon passes.
	e.mu.Lock()
	base := time.Now()
	srv.store.now = func() time.Time { return base.Add(2 * time.Minute) }
	if n := srv.EvictIdleNow(); n != 0 {
		t.Fatalf("evicted %d sessions while one was locked, want 0", n)
	}
	e.mu.Unlock()

	// The request completed — and touched the entry — so the session is
	// fresh again and still must not be evicted.
	srv.store.touch(e)
	if n := srv.EvictIdleNow(); n != 0 {
		t.Fatalf("evicted a session touched at request completion")
	}
	if code := c.do("GET", "/v1/sessions/"+created.SessionID, nil, nil); code != 200 {
		t.Fatalf("busy session was evicted: %d", code)
	}

	// Once genuinely idle past the horizon, it goes.
	srv.store.now = func() time.Time { return base.Add(10 * time.Minute) }
	// The GET above re-stamped lastUsed under the 2-minute clock; advance
	// past that too.
	if n := srv.EvictIdleNow(); n != 1 {
		t.Fatalf("idle session not evicted: %d", n)
	}
}

// TestEvictionConcurrentWithRequests hammers one session with labelers
// while the janitor sweeps under an aggressively advanced clock; run with
// -race this is the lock-discipline check for the eviction path. Every
// response must be a clean 200 or 404 — never a hang, panic, or torn
// state.
func TestEvictionConcurrentWithRequests(t *testing.T) {
	srv, c := newTestServer(t, Config{CacheSize: 4, IdleTimeout: time.Millisecond})
	created := c.mustCreate(violationFixture(t))

	var mu sync.Mutex
	skew := time.Duration(0)
	base := time.Now()
	srv.store.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return base.Add(skew)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				idx := i % created.NumTraces
				var lr apiv1.LabelResponse
				code := c.do("POST", "/v1/sessions/"+created.SessionID+"/label", apiv1.LabelRequest{Trace: &idx, Label: "good"}, &lr)
				if code != 200 && code != http.StatusNotFound {
					t.Errorf("labeler %d: status %d", g, code)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			mu.Lock()
			skew += time.Millisecond
			mu.Unlock()
			srv.EvictIdleNow()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}
