package server

import (
	"net/http"
	"testing"

	"repro/internal/server/apiv1"
)

func TestLintEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{})

	// A seeded vacuous spec: the endpoint reports the exact speclint
	// diagnostic and Clean=false.
	var resp apiv1.LintResponse
	status := c.do("POST", "/v1/lint", apiv1.LintRequest{
		FA: "fa vacuous\nstates 1\nstart 0\naccept 0\nedge 0 0 f()\nend\n",
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("lint status = %d", status)
	}
	if resp.Clean || len(resp.Findings) != 1 {
		t.Fatalf("lint response = %+v, want one finding", resp)
	}
	f := resp.Findings[0]
	if f.Spec != "vacuous" || f.Rule != "vacuous-acceptance" ||
		f.Message != "spec accepts every trace over its alphabet" {
		t.Fatalf("finding = %+v", f)
	}

	// With traces attached, the alphabet-mismatch rule fires too.
	resp = apiv1.LintResponse{}
	status = c.do("POST", "/v1/lint", apiv1.LintRequest{
		FA:     "fa m\nstates 2\nstart 0\naccept 1\nedge 0 1 f()\nend\n",
		Traces: "trace t0\n  g()\nend\n",
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("lint status = %d", status)
	}
	rules := map[string]int{}
	for _, f := range resp.Findings {
		rules[f.Rule]++
	}
	if rules["alphabet-mismatch"] != 2 {
		t.Fatalf("findings = %+v, want both alphabet-mismatch directions", resp.Findings)
	}

	// A clean spec yields Clean=true and an empty (non-null) list.
	resp = apiv1.LintResponse{}
	status = c.do("POST", "/v1/lint", apiv1.LintRequest{
		FA: "fa ok\nstates 2\nstart 0\naccept 1\nedge 0 1 f()\nend\n",
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("lint status = %d", status)
	}
	if !resp.Clean || resp.Findings == nil || len(resp.Findings) != 0 {
		t.Fatalf("clean lint response = %+v", resp)
	}

	// A malformed FA is a bad request with the uniform error envelope.
	if status := c.do("POST", "/v1/lint", apiv1.LintRequest{FA: "bogus\n"}, nil); status != http.StatusBadRequest {
		t.Fatalf("malformed fa status = %d, want 400", status)
	}
	if status := c.do("POST", "/v1/lint", apiv1.LintRequest{
		FA:     "fa ok\nstates 1\nstart 0\naccept 0\nend\n",
		Traces: "not a trace file \x00",
	}, nil); status != http.StatusBadRequest {
		t.Fatalf("malformed traces status = %d, want 400", status)
	}
	if status := c.do("POST", "/v1/lint", apiv1.LintRequest{
		FA:    "fa ok\nstates 1\nstart 0\naccept 0\nend\n",
		RefFA: "bogus\n",
	}, nil); status != http.StatusBadRequest {
		t.Fatalf("malformed ref_fa status = %d, want 400", status)
	}
}

// With a reference FA, the endpoint diffs languages and each direction of
// disagreement carries a concrete witness trace.
func TestLintEndpointDiff(t *testing.T) {
	_, c := newTestServer(t, Config{})

	// Spec accepts {f}, reference accepts {f, f g}: the spec is too strict
	// in exactly one direction.
	var resp apiv1.LintResponse
	status := c.do("POST", "/v1/lint", apiv1.LintRequest{
		FA:    "fa spec\nstates 2\nstart 0\naccept 1\nedge 0 1 f()\nend\n",
		RefFA: "fa ref\nstates 3\nstart 0\naccept 1\naccept 2\nedge 0 1 f()\nedge 1 2 g()\nend\n",
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("lint status = %d", status)
	}
	if resp.Clean || len(resp.Findings) != 1 {
		t.Fatalf("lint response = %+v, want one language-diff finding", resp)
	}
	f := resp.Findings[0]
	if f.Rule != "language-diff" || f.Message != `spec rejects a trace the reference "ref" accepts` {
		t.Fatalf("finding = %+v", f)
	}
	if f.Witness != "f(); g()" {
		t.Fatalf("witness = %q, want %q", f.Witness, "f(); g()")
	}

	// Identical languages: the diff stays silent and the response is clean.
	resp = apiv1.LintResponse{}
	status = c.do("POST", "/v1/lint", apiv1.LintRequest{
		FA:    "fa spec\nstates 2\nstart 0\naccept 1\nedge 0 1 f()\nend\n",
		RefFA: "fa ref\nstates 2\nstart 0\naccept 1\nedge 0 1 f()\nend\n",
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("lint status = %d", status)
	}
	if !resp.Clean || len(resp.Findings) != 0 {
		t.Fatalf("equivalent-spec response = %+v, want clean", resp)
	}
}
