package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cable"
	"repro/internal/concept"
	"repro/internal/obs"
	"repro/internal/server/apiv1"
	"repro/internal/trace"
)

// stdioSpec is a strict two-state protocol FA over (a subset of) the
// violationFixture alphabet: popen opens, fread/fwrite use, pclose
// closes. "X = fopen()" has no edge anywhere, so it kills the frontier.
const stdioSpec = "fa stdio\n" +
	"states 2\n" +
	"start 0\n" +
	"accept 0\n" +
	"edge 0 1 X = popen()\n" +
	"edge 1 1 fread(X)\n" +
	"edge 1 1 fwrite(X)\n" +
	"edge 1 0 pclose(X)\n" +
	"end\n"

// ndjson turns event texts into an NDJSON batch body.
func ndjson(events ...string) string {
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "{\"event\": %q}\n", e)
	}
	return b.String()
}

// postRaw sends a non-JSON body (NDJSON batches) and decodes the reply.
func (c *client) postRaw(path, body string, out any) int {
	c.t.Helper()
	resp, err := c.http.Post(c.base+path, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			c.t.Fatalf("POST %s: decoding %q: %v", path, data, err)
		}
	}
	return resp.StatusCode
}

func (c *client) openStream(sid, spec string, window int) apiv1.OpenStreamResponse {
	c.t.Helper()
	var resp apiv1.OpenStreamResponse
	if code := c.do("POST", "/v1/streams", apiv1.OpenStreamRequest{
		SessionID: sid, Spec: spec, Window: window,
	}, &resp); code != http.StatusCreated {
		c.t.Fatalf("open stream: status %d", code)
	}
	return resp
}

// An explicit spec is speclinted at open time: findings come back as
// non-fatal warnings, and the stream opens regardless. A stream bound to
// the session's own reference FA is never linted.
func TestStreamOpenWarnings(t *testing.T) {
	_, c := newTestServer(t, Config{})
	sid := c.mustCreate(violationFixture(t)).SessionID

	// A vacuous spec (accepts everything over its alphabet) is the classic
	// useless verifier; the open succeeds but says so.
	vacuous := "fa allpopen\nstates 1\nstart 0\naccept 0\nedge 0 0 X = popen()\nend\n"
	opened := c.openStream(sid, vacuous, 8)
	if len(opened.Warnings) != 1 {
		t.Fatalf("warnings = %+v, want the vacuous-acceptance finding", opened.Warnings)
	}
	w := opened.Warnings[0]
	if w.Spec != "allpopen" || w.Rule != "vacuous-acceptance" {
		t.Fatalf("warning = %+v", w)
	}
	if code := c.do("GET", "/v1/streams/"+opened.StreamID, nil, nil); code != http.StatusOK {
		t.Fatalf("warned stream not open: %d", code)
	}

	// No explicit spec: the session's reference FA is trusted as-is.
	opened = c.openStream(sid, "", 8)
	if len(opened.Warnings) != 0 {
		t.Fatalf("default-spec warnings = %+v, want none", opened.Warnings)
	}
}

func TestStreamLifecycle(t *testing.T) {
	m := obs.New()
	_, c := newTestServer(t, Config{CacheSize: 4, Metrics: m})
	created := c.mustCreate(violationFixture(t))
	sid := created.SessionID

	opened := c.openStream(sid, stdioSpec, 8)
	if opened.Window != 8 || opened.SessionID != sid {
		t.Fatalf("open = %+v", opened)
	}
	if len(opened.Warnings) != 0 {
		t.Fatalf("clean spec produced warnings: %+v", opened.Warnings)
	}
	stid := opened.StreamID

	// Session info counts its streams.
	var sinfo apiv1.SessionInfo
	if code := c.do("GET", "/v1/sessions/"+sid, nil, &sinfo); code != 200 || sinfo.Streams != 1 {
		t.Fatalf("session info: code %d, streams %d, want 1", code, sinfo.Streams)
	}

	// First batch: a clean protocol round, then fopen kills the frontier.
	var ev apiv1.StreamEventsResponse
	if code := c.postRaw("/v1/streams/"+stid+"/events",
		ndjson("X = popen()", "fread(X)", "pclose(X)", "X = popen()", "X = fopen()"), &ev); code != 200 {
		t.Fatalf("events: %d", code)
	}
	if ev.Accepted != 5 || ev.Events != 5 || len(ev.Errors) != 0 {
		t.Fatalf("events response = %+v", ev)
	}
	if len(ev.Violations) != 1 {
		t.Fatalf("violations = %+v, want 1", ev.Violations)
	}
	v := ev.Violations[0]
	wantTrace := "X = popen(); fread(X); pclose(X); X = popen(); X = fopen()"
	if v.Trace != wantTrace || v.At != 4 || v.Offset != 4 || v.Incomplete || v.Truncated {
		t.Fatalf("violation = %+v, want trace %q at 4", v, wantTrace)
	}
	// The windowed counterexample became a new lattice class in the
	// owning session.
	if ev.NewClasses != 1 {
		t.Fatalf("NewClasses = %d, want 1", ev.NewClasses)
	}
	var traces apiv1.TraceList
	if code := c.do("GET", "/v1/sessions/"+sid+"/traces", nil, &traces); code != 200 {
		t.Fatal("list traces")
	}
	last := traces.Traces[len(traces.Traces)-1]
	if last.Key != wantTrace {
		t.Fatalf("appended class = %q, want %q", last.Key, wantTrace)
	}
	if last.Count != 1 {
		t.Fatalf("appended class count = %d", last.Count)
	}

	// Stream introspection after the violation: the checker reset to the
	// start states, which are accepting.
	var info apiv1.StreamInfo
	if code := c.do("GET", "/v1/streams/"+stid, nil, &info); code != 200 {
		t.Fatalf("get stream: %d", code)
	}
	if info.Events != 5 || info.Violations != 1 || info.Spec != "stdio" || !info.Accepting {
		t.Fatalf("stream info = %+v", info)
	}
	if info.Created == "" {
		t.Error("stream info missing created stamp")
	}

	// Partial progress: bad lines are reported with their line numbers,
	// good lines around them still apply.
	if code := c.postRaw("/v1/streams/"+stid+"/events",
		"{\"event\": \"X = popen()\"}\n"+
			"{\"evnt\": \"oops\"}\n"+
			"not json at all\n"+
			"{\"event\": \"fread(X)\"}\n", &ev); code != 200 {
		t.Fatalf("partial batch: %d", code)
	}
	if ev.Accepted != 2 || len(ev.Errors) != 2 {
		t.Fatalf("partial response = %+v", ev)
	}
	if ev.Errors[0].Line != 2 || ev.Errors[1].Line != 3 {
		t.Fatalf("error lines = %d, %d, want 2, 3", ev.Errors[0].Line, ev.Errors[1].Line)
	}
	for _, e := range ev.Errors {
		if e.Code != "bad_request" || e.Detail != "stream" {
			t.Fatalf("line error envelope = %+v", e)
		}
	}

	// Finalize mid-protocol: popen+fread left the spec in its non-accepting
	// use state, so DELETE raises an incomplete violation whose window is
	// everything since the last reset.
	var closed apiv1.CloseStreamResponse
	if code := c.do("DELETE", "/v1/streams/"+stid, nil, &closed); code != 200 {
		t.Fatalf("close: %d", code)
	}
	if closed.Events != 7 || closed.ViolationTotal != 2 {
		t.Fatalf("close = %+v", closed)
	}
	if closed.Violation == nil || !closed.Violation.Incomplete || closed.Violation.Trace != "X = popen(); fread(X)" {
		t.Fatalf("close violation = %+v", closed.Violation)
	}
	if code := c.do("GET", "/v1/streams/"+stid, nil, nil); code != http.StatusNotFound {
		t.Errorf("closed stream still resolves: %d", code)
	}
	if code := c.do("DELETE", "/v1/streams/"+stid, nil, nil); code != http.StatusNotFound {
		t.Errorf("double close: %d, want 404", code)
	}

	// Both violations are lattice classes now; the incomplete one too.
	if code := c.do("GET", "/v1/sessions/"+sid+"/traces", nil, &traces); code != 200 {
		t.Fatal("list traces")
	}
	keys := map[string]bool{}
	for _, tc := range traces.Traces {
		keys[tc.Key] = true
	}
	if !keys[wantTrace] || !keys["X = popen(); fread(X)"] {
		t.Fatalf("violation classes missing from session: %v", keys)
	}

	if got := m.Counter("server.stream.events").Value(); got != 7 {
		t.Errorf("server.stream.events = %d, want 7", got)
	}
	if got := m.Counter("server.streams.opened").Value(); got != 1 {
		t.Errorf("server.streams.opened = %d, want 1", got)
	}
	if got := m.Counter("server.streams.finalized").Value(); got != 1 {
		t.Errorf("server.streams.finalized = %d, want 1", got)
	}
	if got := m.Counter("server.stream.violations").Value(); got != 2 {
		t.Errorf("server.stream.violations = %d, want 2", got)
	}
}

// TestStreamDefaultSpec: with no explicit spec the stream checks the
// session's reference FA. Violations of the reference FA itself cannot
// become lattice objects (the reference rejects them by definition) —
// they surface to the client and bump the append_rejected counter.
func TestStreamDefaultSpec(t *testing.T) {
	m := obs.New()
	_, c := newTestServer(t, Config{CacheSize: 4, Metrics: m})
	created := c.mustCreate(violationFixture(t))
	opened := c.openStream(created.SessionID, "", 0)

	var info apiv1.StreamInfo
	if code := c.do("GET", "/v1/streams/"+opened.StreamID, nil, &info); code != 200 {
		t.Fatal("get stream")
	}
	if info.Spec != "all-traces" {
		t.Fatalf("default spec = %q, want the session reference FA", info.Spec)
	}

	// An out-of-alphabet event is the only way to violate the permissive
	// reference FA.
	var ev apiv1.StreamEventsResponse
	if code := c.postRaw("/v1/streams/"+opened.StreamID+"/events",
		ndjson("X = popen()", "launch_missiles(X)"), &ev); code != 200 {
		t.Fatalf("events: %d", code)
	}
	if len(ev.Violations) != 1 || ev.NewClasses != 0 {
		t.Fatalf("response = %+v, want 1 violation, 0 new classes", ev)
	}
	if got := m.Counter("server.stream.append_rejected").Value(); got != 1 {
		t.Errorf("append_rejected = %d, want 1", got)
	}
	var sinfo apiv1.SessionInfo
	if code := c.do("GET", "/v1/sessions/"+created.SessionID, nil, &sinfo); code != 200 {
		t.Fatal("info")
	}
	if sinfo.NumTraces != created.NumTraces {
		t.Errorf("rejected window mutated the session: %d classes", sinfo.NumTraces)
	}
}

func TestStreamValidation(t *testing.T) {
	_, c := newTestServer(t, Config{CacheSize: 4})
	created := c.mustCreate(violationFixture(t))

	var apiErr apiv1.Error
	if code := c.do("POST", "/v1/streams", apiv1.OpenStreamRequest{
		SessionID: created.SessionID, Spec: "gibberish",
	}, &apiErr); code != 400 || apiErr.Code != "bad_request" {
		t.Errorf("bad spec: %d %q", code, apiErr.Code)
	}
	if code := c.do("POST", "/v1/streams", apiv1.OpenStreamRequest{
		SessionID: created.SessionID, Window: -1,
	}, &apiErr); code != 400 {
		t.Errorf("negative window: %d", code)
	}

	// Streams bind to top-level sessions, not focus sub-sessions.
	var focus apiv1.FocusResponse
	if code := c.do("POST", "/v1/sessions/"+created.SessionID+"/focus", apiv1.FocusRequest{
		Concept: created.Top, RefFA: violationFixture(t).RefFA,
	}, &focus); code != http.StatusCreated {
		t.Fatalf("focus: %d", code)
	}
	if code := c.do("POST", "/v1/streams", apiv1.OpenStreamRequest{
		SessionID: focus.SessionID,
	}, &apiErr); code != 400 {
		t.Errorf("stream on focus session: %d, want 400", code)
	}
}

func TestStreamListPagination(t *testing.T) {
	_, c := newTestServer(t, Config{CacheSize: 4})
	a := c.mustCreate(violationFixture(t))
	b := c.mustCreate(fixtureFrom(t, trace.NewSet(trace.ParseEvents("w0", "a()"))))
	for i := 0; i < 3; i++ {
		c.openStream(a.SessionID, "", 0)
	}
	c.openStream(b.SessionID, "", 0)

	var ids []string
	cursor := ""
	for {
		path := "/v1/streams?limit=2"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		var list apiv1.StreamList
		if code := c.do("GET", path, nil, &list); code != 200 {
			t.Fatalf("list: %d", code)
		}
		if len(list.Streams) > 2 {
			t.Fatalf("page of %d, limit 2", len(list.Streams))
		}
		for _, si := range list.Streams {
			ids = append(ids, si.StreamID)
		}
		if list.NextCursor == "" {
			break
		}
		cursor = list.NextCursor
	}
	if len(ids) != 4 {
		t.Fatalf("paginated walk saw %d streams, want 4", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("stream IDs not strictly ascending: %v", ids)
		}
	}

	// Owner filter.
	var list apiv1.StreamList
	if code := c.do("GET", "/v1/streams?session="+b.SessionID, nil, &list); code != 200 {
		t.Fatal("filtered list")
	}
	if len(list.Streams) != 1 || list.Streams[0].SessionID != b.SessionID {
		t.Fatalf("filtered list = %+v", list.Streams)
	}

	// Session pagination mirrors stream pagination.
	var sl apiv1.SessionList
	if code := c.do("GET", "/v1/sessions?limit=1", nil, &sl); code != 200 {
		t.Fatal("list sessions")
	}
	if len(sl.Sessions) != 1 || sl.NextCursor == "" {
		t.Fatalf("session page = %d entries, cursor %q", len(sl.Sessions), sl.NextCursor)
	}
	var sl2 apiv1.SessionList
	if code := c.do("GET", "/v1/sessions?limit=1&cursor="+sl.NextCursor, nil, &sl2); code != 200 {
		t.Fatal("list sessions page 2")
	}
	if len(sl2.Sessions) != 1 || sl2.NextCursor != "" {
		t.Fatalf("session page 2 = %d entries, cursor %q", len(sl2.Sessions), sl2.NextCursor)
	}
	if sl.Sessions[0].SessionID == sl2.Sessions[0].SessionID {
		t.Fatal("pagination repeated a session")
	}
}

func TestStreamsDieWithSession(t *testing.T) {
	srv, c := newTestServer(t, Config{CacheSize: 4, IdleTimeout: time.Minute})
	a := c.mustCreate(violationFixture(t))
	b := c.mustCreate(fixtureFrom(t, trace.NewSet(trace.ParseEvents("w0", "a()"))))
	onA := c.openStream(a.SessionID, stdioSpec, 0)
	onB := c.openStream(b.SessionID, "", 0)

	// DELETE session → its streams are gone.
	if code := c.do("DELETE", "/v1/sessions/"+a.SessionID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code := c.postRaw("/v1/streams/"+onA.StreamID+"/events", ndjson("X = popen()"), nil); code != http.StatusNotFound {
		t.Errorf("feed after owner delete: %d, want 404", code)
	}

	// Idle eviction closes streams too — but a session with live streams
	// is touched by its stream traffic (resolveStream bumps the owner).
	base := time.Now()
	srv.store.now = func() time.Time { return base.Add(2 * time.Minute) }
	if n := srv.EvictIdleNow(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if code := c.postRaw("/v1/streams/"+onB.StreamID+"/events", ndjson("a()"), nil); code != http.StatusNotFound {
		t.Errorf("feed after owner eviction: %d, want 404", code)
	}
	var list apiv1.StreamList
	if code := c.do("GET", "/v1/streams", nil, &list); code != 200 || len(list.Streams) != 0 {
		t.Errorf("streams survived their owners: %+v", list.Streams)
	}
}

// TestConcurrentStreamsLatticeMatchesBatch is the acceptance check for
// the streaming tentpole, run under -race in the race lane: many
// concurrent streams feed one session while labeling requests interleave,
// and when the dust settles the incrementally-grown lattice must be
// byte-identical (concept.WriteSnapshot) to a from-scratch batch build
// over the same final trace corpus.
func TestConcurrentStreamsLatticeMatchesBatch(t *testing.T) {
	const nStreams = 48
	srv, c := newTestServer(t, Config{CacheSize: 4})
	created := c.mustCreate(violationFixture(t))
	sid := created.SessionID

	// Each stream runs a scripted scenario with two violations: a
	// stream-distinct poisoned window (distinct class per stream) plus a
	// shared incomplete tail (one class, multiplicity nStreams).
	var wg sync.WaitGroup
	errs := make(chan error, nStreams*2)
	for g := 0; g < nStreams; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opened := c.openStream(sid, stdioSpec, 8)
			reads := make([]string, 0, g%4+2)
			reads = append(reads, "X = popen()")
			for r := 0; r < g%4; r++ {
				reads = append(reads, "fread(X)")
			}
			reads = append(reads, "X = fopen()") // violation: window differs per g%4
			var ev apiv1.StreamEventsResponse
			if code := c.postRaw("/v1/streams/"+opened.StreamID+"/events", ndjson(reads...), &ev); code != 200 {
				errs <- fmt.Errorf("stream %d: events status %d", g, code)
				return
			}
			if len(ev.Violations) != 1 {
				errs <- fmt.Errorf("stream %d: %d violations, want 1", g, len(ev.Violations))
				return
			}
			// Leave the protocol open: finalize raises the shared
			// incomplete violation "X = popen(); fwrite(X)".
			if code := c.postRaw("/v1/streams/"+opened.StreamID+"/events", ndjson("X = popen()", "fwrite(X)"), &ev); code != 200 {
				errs <- fmt.Errorf("stream %d: second batch status %d", g, code)
				return
			}
			var closed apiv1.CloseStreamResponse
			if code := c.do("DELETE", "/v1/streams/"+opened.StreamID, nil, &closed); code != 200 {
				errs <- fmt.Errorf("stream %d: close status %d", g, code)
				return
			}
			if closed.Violation == nil || !closed.Violation.Incomplete {
				errs <- fmt.Errorf("stream %d: close violation = %+v", g, closed.Violation)
			}
		}(g)
	}
	// Labeling traffic interleaves with the violation appends.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3*created.NumTraces; i++ {
				idx := i % created.NumTraces
				label := "good"
				if g%2 == 1 {
					label = "bad"
				}
				var lr apiv1.LabelResponse
				if code := c.do("POST", "/v1/sessions/"+sid+"/label", apiv1.LabelRequest{Trace: &idx, Label: label}, &lr); code != 200 {
					errs <- fmt.Errorf("labeler %d: status %d", g, code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// 4 distinct poisoned-window classes + 1 shared incomplete class.
	var info apiv1.SessionInfo
	if code := c.do("GET", "/v1/sessions/"+sid, nil, &info); code != 200 {
		t.Fatal("info")
	}
	if info.NumTraces != created.NumTraces+5 {
		t.Fatalf("session has %d classes, want %d", info.NumTraces, created.NumTraces+5)
	}

	// Byte-identity: serialize the streamed session's corpus, rebuild a
	// batch session over it from scratch, compare lattice snapshots.
	res, ok := srv.store.resolve(sid)
	if !ok {
		t.Fatal("session vanished")
	}
	res.entry.mu.Lock()
	sess := res.entry.session
	var corpus strings.Builder
	if err := trace.Write(&corpus, sess.Set()); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	if err := concept.WriteSnapshot(&streamed, sess.Lattice()); err != nil {
		t.Fatal(err)
	}
	ref := sess.Ref()
	res.entry.mu.Unlock()

	set, err := trace.Read(strings.NewReader(corpus.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Multiplicities carried over: the shared incomplete class counts one
	// trace per stream.
	shared := set.ClassOfKey("X = popen(); fwrite(X)")
	if shared < 0 || set.Class(shared).Count != nStreams {
		t.Fatalf("shared violation class count = %d, want %d", set.Class(shared).Count, nStreams)
	}
	batch, err := cable.NewSession(set, ref)
	if err != nil {
		t.Fatal(err)
	}
	var rebuilt bytes.Buffer
	if err := concept.WriteSnapshot(&rebuilt, batch.Lattice()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), rebuilt.Bytes()) {
		t.Fatalf("streamed lattice differs from batch rebuild: %d vs %d bytes",
			streamed.Len(), rebuilt.Len())
	}
}

// TestStreamPersistRestart: open streams ride the WAL (record type 3) and
// a crash-restart resumes them mid-protocol — frontier, window, counters,
// and spec binding intact — while closed streams stay closed (tombstone).
func TestStreamPersistRestart(t *testing.T) {
	dir := t.TempDir()
	srv, c := newTestServer(t, Config{CacheSize: 4, SnapshotDir: dir})
	created := c.mustCreate(violationFixture(t))
	sid := created.SessionID

	a := c.openStream(sid, stdioSpec, 8)
	b := c.openStream(sid, "", 0)

	// Stream A: one violation, then stop mid-protocol (state 1, window
	// holding the two events since the reset).
	var ev apiv1.StreamEventsResponse
	if code := c.postRaw("/v1/streams/"+a.StreamID+"/events",
		ndjson("X = popen()", "X = fopen()", "X = popen()", "fread(X)"), &ev); code != 200 {
		t.Fatalf("feed: %d", code)
	}
	if len(ev.Violations) != 1 {
		t.Fatalf("violations = %+v", ev.Violations)
	}
	// Stream B closes before the crash: its tombstone must win on replay.
	if code := c.do("DELETE", "/v1/streams/"+b.StreamID, nil, nil); code != 200 {
		t.Fatalf("close b: %d", code)
	}
	// Snapshot-then-crash is the adversarial order: writeSnap truncates
	// the WAL, so A's frontier survives only if the snapshot path
	// re-appends stream records.
	if _, err := srv.SaveSnapshots(); err != nil {
		t.Fatal(err)
	}

	_, c2 := restartServer(t, dir, obs.New())
	var info apiv1.StreamInfo
	if code := c2.do("GET", "/v1/streams/"+a.StreamID, nil, &info); code != 200 {
		t.Fatalf("stream not restored: %d", code)
	}
	if info.Events != 4 || info.Violations != 1 || info.Spec != "stdio" || info.Accepting {
		t.Fatalf("restored stream = %+v", info)
	}
	if code := c2.do("GET", "/v1/streams/"+b.StreamID, nil, nil); code != http.StatusNotFound {
		t.Errorf("closed stream resurrected: %d", code)
	}

	// The pre-crash violation is a class in the restored session.
	var traces apiv1.TraceList
	if code := c2.do("GET", "/v1/sessions/"+sid+"/traces", nil, &traces); code != 200 {
		t.Fatal("traces")
	}
	found := false
	for _, tc := range traces.Traces {
		found = found || tc.Key == "X = popen(); X = fopen()"
	}
	if !found {
		t.Fatal("pre-crash violation class missing after restore")
	}

	// The restored frontier is live: pclose completes the protocol, so a
	// finalize right after is clean.
	if code := c2.postRaw("/v1/streams/"+a.StreamID+"/events", ndjson("pclose(X)"), &ev); code != 200 {
		t.Fatalf("feed after restore: %d", code)
	}
	var closed apiv1.CloseStreamResponse
	if code := c2.do("DELETE", "/v1/streams/"+a.StreamID, nil, &closed); code != 200 {
		t.Fatalf("close after restore: %d", code)
	}
	if closed.Violation != nil || closed.Events != 5 || closed.ViolationTotal != 1 {
		t.Fatalf("close after restore = %+v (violation %+v)", closed, closed.Violation)
	}
}
