package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fa"
	"repro/internal/obs"
	"repro/internal/server/apiv1"
	"repro/internal/trace"
)

// violationFixture serializes the Section 2.1 violation traces and a
// one-state reference FA into the text formats the API accepts.
func violationFixture(t testing.TB) apiv1.CreateSessionRequest {
	t.Helper()
	set := trace.NewSet(
		trace.ParseEvents("v0", "X = popen()", "pclose(X)"),
		trace.ParseEvents("v1", "X = popen()", "fread(X)", "pclose(X)"),
		trace.ParseEvents("v2", "X = popen()", "fwrite(X)", "pclose(X)"),
		trace.ParseEvents("v3", "X = popen()", "fread(X)"),
		trace.ParseEvents("v4", "X = fopen()", "fread(X)"),
		trace.ParseEvents("v5", "X = fopen()", "pclose(X)"),
		trace.ParseEvents("v6", "X = popen()", "pclose(X)"),
	)
	return fixtureFrom(t, set)
}

func fixtureFrom(t testing.TB, set *trace.Set) apiv1.CreateSessionRequest {
	t.Helper()
	var traces, ref strings.Builder
	if err := trace.Write(&traces, set); err != nil {
		t.Fatal(err)
	}
	if err := fa.Write(&ref, fa.FromTraces(set.Alphabet())); err != nil {
		t.Fatal(err)
	}
	return apiv1.CreateSessionRequest{Traces: traces.String(), RefFA: ref.String()}
}

// client wraps an httptest server with JSON helpers.
type client struct {
	t    testing.TB
	base string
	http *http.Client
}

func newTestServer(t testing.TB, cfg Config) (*Server, *client) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, &client{t: t, base: ts.URL, http: ts.Client()}
}

// do issues a request and decodes the response into out (unless nil),
// returning the status code.
func (c *client) do(method, path string, body, out any) int {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			c.t.Fatalf("%s %s: decoding %q: %v", method, path, data, err)
		}
	}
	if out != nil && resp.StatusCode >= 300 {
		if e, ok := out.(*apiv1.Error); ok {
			_ = json.Unmarshal(data, e)
		}
	}
	return resp.StatusCode
}

func (c *client) mustCreate(req apiv1.CreateSessionRequest) apiv1.CreateSessionResponse {
	c.t.Helper()
	var resp apiv1.CreateSessionResponse
	if code := c.do("POST", "/v1/sessions", req, &resp); code != http.StatusCreated {
		c.t.Fatalf("create session: status %d", code)
	}
	return resp
}

func TestHappyPath(t *testing.T) {
	// The full Section 2.1 walkthrough over the wire: create, explore the
	// lattice, label, focus, merge back, export.
	_, c := newTestServer(t, Config{CacheSize: 4})
	created := c.mustCreate(violationFixture(t))
	if created.NumTraces != 6 {
		t.Fatalf("NumTraces = %d, want 6 (v0/v6 collapse)", created.NumTraces)
	}
	if created.CacheHit {
		t.Error("first build reported a cache hit")
	}

	var concepts apiv1.ConceptList
	if code := c.do("GET", "/v1/sessions/"+created.SessionID+"/concepts", nil, &concepts); code != 200 {
		t.Fatalf("list concepts: %d", code)
	}
	if len(concepts.Concepts) != created.NumConcepts {
		t.Fatalf("concept list has %d entries, lattice has %d", len(concepts.Concepts), created.NumConcepts)
	}
	if concepts.Concepts[0].ID != created.Top {
		t.Errorf("top-down order starts at c%d, top is c%d", concepts.Concepts[0].ID, created.Top)
	}

	// Single-concept view includes transitions.
	var top apiv1.Concept
	if code := c.do("GET", fmt.Sprintf("/v1/sessions/%s/concepts/%d", created.SessionID, created.Top), nil, &top); code != 200 {
		t.Fatalf("get concept: %d", code)
	}
	if top.State != "Unlabeled" {
		t.Errorf("fresh top state = %q", top.State)
	}

	// Label everything good via the top concept.
	var labeled apiv1.LabelResponse
	topID := created.Top
	if code := c.do("POST", "/v1/sessions/"+created.SessionID+"/label", apiv1.LabelRequest{
		Concept: &topID, Selector: &apiv1.Selector{Mode: "unlabeled"}, Label: "good",
	}, &labeled); code != 200 {
		t.Fatalf("label: %d", code)
	}
	if labeled.Labeled != 6 {
		t.Fatalf("labeled %d classes, want 6", labeled.Labeled)
	}

	// Relabel one trace bad, then focus the whole session and flip it back
	// through the sub-session.
	zero := 0
	if code := c.do("POST", "/v1/sessions/"+created.SessionID+"/label", apiv1.LabelRequest{
		Trace: &zero, Label: "bad",
	}, &labeled); code != 200 {
		t.Fatalf("label trace: %d", code)
	}
	fx := violationFixture(t)
	var focus apiv1.FocusResponse
	if code := c.do("POST", "/v1/sessions/"+created.SessionID+"/focus", apiv1.FocusRequest{
		Concept: created.Top, RefFA: fx.RefFA,
	}, &focus); code != http.StatusCreated {
		t.Fatalf("focus: %d", code)
	}
	var fInfo apiv1.SessionInfo
	if code := c.do("GET", "/v1/sessions/"+focus.SessionID, nil, &fInfo); code != 200 || !fInfo.Focus {
		t.Fatalf("focus session info: code %d, focus %v", code, fInfo.Focus)
	}
	fTop := findTop(t, c, focus.SessionID)
	if code := c.do("POST", "/v1/sessions/"+focus.SessionID+"/label", apiv1.LabelRequest{
		Concept: &fTop, Selector: &apiv1.Selector{Mode: "all"}, Label: "good",
	}, &labeled); code != 200 {
		t.Fatalf("label in focus: %d", code)
	}
	var ended apiv1.EndFocusResponse
	if code := c.do("POST", "/v1/sessions/"+focus.SessionID+"/end", nil, &ended); code != 200 {
		t.Fatalf("end focus: %d", code)
	}
	if ended.Merged != 1 {
		t.Fatalf("merged %d labels, want 1 (only v0 disagreed)", ended.Merged)
	}
	// The ended focus ID is gone.
	if code := c.do("GET", "/v1/sessions/"+focus.SessionID, nil, nil); code != http.StatusNotFound {
		t.Errorf("ended focus still resolves: %d", code)
	}

	var export apiv1.LabelsExport
	if code := c.do("GET", "/v1/sessions/"+created.SessionID+"/labels", nil, &export); code != 200 {
		t.Fatalf("export: %d", code)
	}
	if len(export.Labels) != 6 {
		t.Fatalf("exported %d labels, want 6", len(export.Labels))
	}
	for _, l := range export.Labels {
		if l.Label != "good" {
			t.Errorf("label %q on %q, want good everywhere after merge", l.Label, l.Key)
		}
	}

	var info apiv1.SessionInfo
	if code := c.do("GET", "/v1/sessions/"+created.SessionID, nil, &info); code != 200 {
		t.Fatalf("get session: %d", code)
	}
	if !info.Done || info.Labeled != 6 {
		t.Errorf("session info = %+v, want done with 6 labeled", info)
	}

	if code := c.do("DELETE", "/v1/sessions/"+created.SessionID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code := c.do("GET", "/v1/sessions/"+created.SessionID, nil, nil); code != http.StatusNotFound {
		t.Errorf("deleted session still resolves: %d", code)
	}
}

func findTop(t *testing.T, c *client, sid string) int {
	t.Helper()
	var concepts apiv1.ConceptList
	if code := c.do("GET", "/v1/sessions/"+sid+"/concepts", nil, &concepts); code != 200 {
		t.Fatalf("list concepts: %d", code)
	}
	return concepts.Concepts[0].ID
}

func TestConcurrentLabeling(t *testing.T) {
	// Many goroutines hammer one session (plus a second session alongside)
	// with labels; run under -race this is the data-race acceptance check,
	// and the final export must account for every class exactly once.
	_, c := newTestServer(t, Config{CacheSize: 4})
	created := c.mustCreate(violationFixture(t))
	other := c.mustCreate(fixtureFrom(t, trace.NewSet(
		trace.ParseEvents("w0", "a()", "b()"),
		trace.ParseEvents("w1", "a()"),
	)))

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			label := "good"
			if g%2 == 1 {
				label = "bad"
			}
			for i := 0; i < created.NumTraces; i++ {
				idx := (i + g) % created.NumTraces
				var resp apiv1.LabelResponse
				code := c.do("POST", "/v1/sessions/"+created.SessionID+"/label", apiv1.LabelRequest{
					Trace: &idx, Label: label,
				}, &resp)
				if code != 200 {
					t.Errorf("goroutine %d: label trace %d: status %d", g, idx, code)
				}
			}
			oTop := findTop(t, c, other.SessionID)
			var resp apiv1.LabelResponse
			if code := c.do("POST", "/v1/sessions/"+other.SessionID+"/label", apiv1.LabelRequest{
				Concept: &oTop, Selector: &apiv1.Selector{Mode: "all"}, Label: label,
			}, &resp); code != 200 {
				t.Errorf("goroutine %d: label other session: status %d", g, code)
			}
		}(g)
	}
	wg.Wait()

	var export apiv1.LabelsExport
	if code := c.do("GET", "/v1/sessions/"+created.SessionID+"/labels", nil, &export); code != 200 {
		t.Fatalf("export: %d", code)
	}
	if len(export.Labels) != created.NumTraces {
		t.Fatalf("exported %d labels, want %d: every class labeled exactly once", len(export.Labels), created.NumTraces)
	}
	for _, l := range export.Labels {
		if l.Label != "good" && l.Label != "bad" {
			t.Errorf("class %q has corrupted label %q", l.Key, l.Label)
		}
	}
}

// addTraces posts a batch of traces to a session and requires success.
func (c *client) addTraces(sid string, set *trace.Set) apiv1.AddTracesResponse {
	c.t.Helper()
	var text strings.Builder
	if err := trace.Write(&text, set); err != nil {
		c.t.Fatal(err)
	}
	var resp apiv1.AddTracesResponse
	if code := c.do("POST", "/v1/sessions/"+sid+"/traces", apiv1.AddTracesRequest{Traces: text.String()}, &resp); code != 200 {
		c.t.Fatalf("add traces: status %d", code)
	}
	return resp
}

func TestAddTraces(t *testing.T) {
	_, c := newTestServer(t, Config{CacheSize: 4})
	created := c.mustCreate(violationFixture(t))
	sid := created.SessionID

	// A duplicate of an existing class only bumps its multiplicity.
	dup := c.addTraces(sid, trace.NewSet(trace.ParseEvents("v7", "X = popen()", "pclose(X)")))
	if dup.Added != 1 || dup.NewClasses != 0 || dup.NumTraces != created.NumTraces {
		t.Fatalf("duplicate add = %+v, want 1 added, 0 new classes, %d classes", dup, created.NumTraces)
	}

	// A novel trace becomes a new, unlabeled class and grows the lattice
	// incrementally.
	novel := c.addTraces(sid, trace.NewSet(trace.ParseEvents("v8", "X = fopen()", "fwrite(X)", "pclose(X)")))
	if novel.NewClasses != 1 || novel.NumTraces != created.NumTraces+1 {
		t.Fatalf("novel add = %+v, want a new class", novel)
	}
	if novel.NumConcepts < created.NumConcepts {
		t.Fatalf("lattice shrank on add: %d -> %d", created.NumConcepts, novel.NumConcepts)
	}
	var traces apiv1.TraceList
	if code := c.do("GET", "/v1/sessions/"+sid+"/traces", nil, &traces); code != 200 {
		t.Fatalf("list traces: %d", code)
	}
	last := traces.Traces[len(traces.Traces)-1]
	if last.Key != "X = fopen(); fwrite(X); pclose(X)" || last.Label != "" {
		t.Fatalf("new class = %+v, want the added trace, unlabeled", last)
	}

	// The lattice over the grown context must match a from-scratch build
	// of the same corpus: create a second session over (fixture + v8).
	grown := trace.NewSet(
		trace.ParseEvents("v0", "X = popen()", "pclose(X)"),
		trace.ParseEvents("v1", "X = popen()", "fread(X)", "pclose(X)"),
		trace.ParseEvents("v2", "X = popen()", "fwrite(X)", "pclose(X)"),
		trace.ParseEvents("v3", "X = popen()", "fread(X)"),
		trace.ParseEvents("v4", "X = fopen()", "fread(X)"),
		trace.ParseEvents("v5", "X = fopen()", "pclose(X)"),
		trace.ParseEvents("v8", "X = fopen()", "fwrite(X)", "pclose(X)"),
	)
	var fx2 apiv1.CreateSessionRequest
	fx2.RefFA = violationFixture(t).RefFA
	var text strings.Builder
	if err := trace.Write(&text, grown); err != nil {
		t.Fatal(err)
	}
	fx2.Traces = text.String()
	rebuilt := c.mustCreate(fx2)
	if rebuilt.NumConcepts != novel.NumConcepts {
		t.Fatalf("incremental lattice has %d concepts, rebuild has %d", novel.NumConcepts, rebuilt.NumConcepts)
	}

	// A trace the reference FA rejects fails the whole batch atomically:
	// well-formed input, semantically invalid → validation_failed.
	var apiErr apiv1.Error
	bad := trace.NewSet(
		trace.ParseEvents("ok", "X = popen()"),
		trace.ParseEvents("nope", "launch_missiles(X)"),
	)
	text.Reset()
	if err := trace.Write(&text, bad); err != nil {
		t.Fatal(err)
	}
	if code := c.do("POST", "/v1/sessions/"+sid+"/traces", apiv1.AddTracesRequest{Traces: text.String()}, &apiErr); code != 422 {
		t.Fatalf("rejected trace: status %d, want 422", code)
	}
	if apiErr.Code != "validation_failed" {
		t.Fatalf("rejected trace: code %q, want validation_failed", apiErr.Code)
	}
	var info apiv1.SessionInfo
	if code := c.do("GET", "/v1/sessions/"+sid, nil, &info); code != 200 {
		t.Fatal("info")
	}
	if info.NumTraces != novel.NumTraces {
		t.Fatalf("failed batch mutated the session: %d classes, want %d", info.NumTraces, novel.NumTraces)
	}

	// Adds target top-level sessions only.
	var focus apiv1.FocusResponse
	if code := c.do("POST", "/v1/sessions/"+sid+"/focus", apiv1.FocusRequest{
		Concept: findTop(t, c, sid), RefFA: violationFixture(t).RefFA,
	}, &focus); code != http.StatusCreated {
		t.Fatalf("focus: %d", code)
	}
	text.Reset()
	if err := trace.Write(&text, trace.NewSet(trace.ParseEvents("v9", "X = popen()"))); err != nil {
		t.Fatal(err)
	}
	if code := c.do("POST", "/v1/sessions/"+focus.SessionID+"/traces", apiv1.AddTracesRequest{Traces: text.String()}, &apiErr); code != 400 {
		t.Fatalf("add to focus session: status %d, want 400", code)
	}
}

// TestCacheNotPoisonedByIncrementalAdd is the staleness regression test:
// growing one session incrementally must not mutate the lattice the cache
// serves, so a re-upload of the original corpus still gets the original
// lattice (and still hits the cache).
func TestCacheNotPoisonedByIncrementalAdd(t *testing.T) {
	m := obs.New()
	srv, c := newTestServer(t, Config{CacheSize: 4, Metrics: m})
	fx := violationFixture(t)
	first := c.mustCreate(fx)

	// Mutate the first session: its lattice was just stored in the cache,
	// so this must detach a private copy before touching anything.
	grown := c.addTraces(first.SessionID, trace.NewSet(
		trace.ParseEvents("v8", "X = fopen()", "fwrite(X)", "pclose(X)")))
	if grown.NumTraces != first.NumTraces+1 {
		t.Fatalf("add: %+v", grown)
	}

	// Re-upload of the pristine corpus: must hit the cache AND see the
	// unmutated lattice.
	second := c.mustCreate(fx)
	if !second.CacheHit {
		t.Error("re-upload after incremental add missed the cache")
	}
	if second.NumTraces != first.NumTraces || second.NumConcepts != first.NumConcepts {
		t.Fatalf("cache served a mutated lattice: %+v, want the original %+v", second, first)
	}
	if hits := m.Counter("server.cache.hits").Value(); hits != 1 {
		t.Errorf("server.cache.hits = %d, want 1", hits)
	}
	if ev := m.Counter("server.cache.evictions").Value(); ev != 0 {
		t.Errorf("server.cache.evictions = %d, want 0 (mutation must not evict)", ev)
	}
	if srv.cache.Len() != 1 {
		t.Errorf("cache holds %d lattices, want 1", srv.cache.Len())
	}

	// And the mutated session keeps its own private growth.
	var info apiv1.SessionInfo
	if code := c.do("GET", "/v1/sessions/"+first.SessionID, nil, &info); code != 200 {
		t.Fatal("info")
	}
	if info.NumTraces != first.NumTraces+1 {
		t.Errorf("mutated session lost its added class: %d", info.NumTraces)
	}
}

func TestLatticeCacheHit(t *testing.T) {
	m := obs.New()
	srv, c := newTestServer(t, Config{CacheSize: 4, Metrics: m})
	fx := violationFixture(t)
	first := c.mustCreate(fx)
	second := c.mustCreate(fx)
	if first.CacheHit {
		t.Error("first create hit the cache")
	}
	if !second.CacheHit {
		t.Error("identical re-upload missed the cache")
	}
	if first.NumConcepts != second.NumConcepts || first.Top != second.Top {
		t.Errorf("cached lattice differs: %+v vs %+v", first, second)
	}
	if srv.cache.Len() != 1 {
		t.Errorf("cache holds %d lattices, want 1", srv.cache.Len())
	}
	if hits := m.Counter("server.cache.hits").Value(); hits != 1 {
		t.Errorf("server.cache.hits = %d, want 1", hits)
	}
	// The two sessions share a lattice but label independently.
	top := first.Top
	var resp apiv1.LabelResponse
	if code := c.do("POST", "/v1/sessions/"+first.SessionID+"/label", apiv1.LabelRequest{
		Concept: &top, Selector: &apiv1.Selector{Mode: "all"}, Label: "bad",
	}, &resp); code != 200 {
		t.Fatalf("label first: %d", code)
	}
	var info apiv1.SessionInfo
	if code := c.do("GET", "/v1/sessions/"+second.SessionID, nil, &info); code != 200 {
		t.Fatalf("info second: %d", code)
	}
	if info.Labeled != 0 {
		t.Errorf("labeling session 1 leaked %d labels into session 2", info.Labeled)
	}

	// A different reference FA over the same traces is a different key.
	var refB strings.Builder
	b := fa.NewBuilder("other")
	st := b.State()
	b.Start(st)
	b.Accept(st)
	b.WildcardEdge(st, st)
	if err := fa.Write(&refB, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	third := c.mustCreate(apiv1.CreateSessionRequest{Traces: fx.Traces, RefFA: refB.String()})
	if third.CacheHit {
		t.Error("different reference FA hit the cache")
	}
}

func TestCacheEviction(t *testing.T) {
	m := obs.New()
	srv, c := newTestServer(t, Config{CacheSize: 1, Metrics: m})
	fxA := violationFixture(t)
	fxB := fixtureFrom(t, trace.NewSet(
		trace.ParseEvents("w0", "a()", "b()"),
		trace.ParseEvents("w1", "b()"),
	))
	c.mustCreate(fxA)
	c.mustCreate(fxB) // evicts A
	if srv.cache.Len() != 1 {
		t.Fatalf("cache size %d, want 1", srv.cache.Len())
	}
	if ev := m.Counter("server.cache.evictions").Value(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	if again := c.mustCreate(fxA); again.CacheHit {
		t.Error("evicted lattice reported a cache hit")
	}
}

// combinatorialSet builds all 3-element subsets of n distinct events as
// traces: with n=26 that is 2600 classes and a ~2950-concept lattice, a
// build measured in tens of milliseconds — long enough to cancel
// mid-flight even with the compiled FA simulator on the fast path, small
// enough to keep the test quick when it runs to completion on a slow day.
func combinatorialSet(n int) *trace.Set {
	var traces []trace.Trace
	id := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				traces = append(traces, trace.ParseEvents(
					fmt.Sprintf("t%d", id),
					fmt.Sprintf("e%d()", i), fmt.Sprintf("e%d()", j), fmt.Sprintf("e%d()", k)))
				id++
			}
		}
	}
	return trace.NewSet(traces...)
}

func TestMidBuildCancellation(t *testing.T) {
	// A request deadline far shorter than the lattice build must abort the
	// build between work items and surface the timeout envelope, leaving no
	// half-registered session behind.
	fx := fixtureFrom(t, combinatorialSet(26))

	srv, c := newTestServer(t, Config{RequestTimeout: time.Millisecond, CacheSize: 4})
	var apiErr apiv1.Error
	code := c.do("POST", "/v1/sessions", fx, &apiErr)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (build too fast? grow the fixture)", code)
	}
	if apiErr.Code != "deadline" {
		t.Errorf("error code = %q, want deadline", apiErr.Code)
	}
	if n := len(srv.store.list()); n != 0 {
		t.Errorf("%d sessions registered after cancelled build", n)
	}
	if srv.cache.Len() != 0 {
		t.Errorf("cancelled build populated the cache")
	}
}

// TestErrorMapping pins the v1 error contract: each failure mode maps to
// a stable (status, code) pair. Codes are API surface — changing one is a
// breaking change, so every stable code gets a row here. The deadline
// (504) mapping is exercised by TestMidBuildCancellation, which needs a
// slow build to trigger it.
func TestErrorMapping(t *testing.T) {
	_, c := newTestServer(t, Config{CacheSize: 4})
	created := c.mustCreate(violationFixture(t))
	sid := created.SessionID
	bad := 9999

	rejected := apiv1.AddTracesRequest{
		Traces: "trace nope\n  launch_missiles(X)\nend\n",
	}
	cases := []struct {
		name     string
		method   string
		path     string
		body     any
		status   int
		code     string
		wantLine int
	}{
		{"unknown session", "GET", "/v1/sessions/deadbeef", nil, 404, "not_found", 0},
		{"bad concept id", "GET", "/v1/sessions/" + sid + "/concepts/9999", nil, 404, "not_found", 0},
		{"label bad trace", "POST", "/v1/sessions/" + sid + "/label",
			apiv1.LabelRequest{Trace: &bad, Label: "good"}, 404, "not_found", 0},
		{"label without target", "POST", "/v1/sessions/" + sid + "/label",
			apiv1.LabelRequest{Label: "good"}, 400, "bad_request", 0},
		{"malformed traces", "POST", "/v1/sessions",
			apiv1.CreateSessionRequest{Traces: "trace x\nnot an event\nend\n", RefFA: "gibberish"}, 400, "bad_request", 2},
		{"bad selector", "POST", "/v1/sessions/" + sid + "/label",
			apiv1.LabelRequest{Concept: &created.Top, Selector: &apiv1.Selector{Mode: "sideways"}, Label: "good"}, 400, "bad_request", 0},
		{"end non-focus", "POST", "/v1/sessions/" + sid + "/end", nil, 404, "not_found", 0},
		{"suggest unmixed concept", "POST", "/v1/sessions/" + sid + "/suggest",
			apiv1.SuggestRequest{Concept: created.Top}, 409, "session_busy", 0},
		{"ref-rejected trace", "POST", "/v1/sessions/" + sid + "/traces",
			rejected, 422, "validation_failed", 0},
		{"unknown stream", "GET", "/v1/streams/deadbeef", nil, 404, "not_found", 0},
		{"stream on unknown session", "POST", "/v1/streams",
			apiv1.OpenStreamRequest{SessionID: "deadbeef"}, 404, "not_found", 0},
		{"stream without session", "POST", "/v1/streams",
			apiv1.OpenStreamRequest{}, 400, "bad_request", 0},
		{"bad pagination limit", "GET", "/v1/sessions?limit=-1", nil, 400, "bad_request", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var apiErr apiv1.Error
			got := c.do(tc.method, tc.path, tc.body, &apiErr)
			if got != tc.status || apiErr.Code != tc.code {
				t.Errorf("status %d code %q, want %d %q", got, apiErr.Code, tc.status, tc.code)
			}
			if apiErr.Line != tc.wantLine {
				t.Errorf("line = %d, want %d (message %q)", apiErr.Line, tc.wantLine, apiErr.Message)
			}
			if apiErr.Message == "" {
				t.Error("empty error message")
			}
		})
	}
}

func TestSuggestRoundTrip(t *testing.T) {
	// Label a mixed concept good/bad, ask for a template, and feed the
	// suggested FA straight back into a focus request.
	_, c := newTestServer(t, Config{CacheSize: 4})
	created := c.mustCreate(fixtureFrom(t, trace.NewSet(
		trace.ParseEvents("t0", "open()", "read()", "close()"),
		trace.ParseEvents("t1", "open()", "close()", "read()"),
	)))
	zero, one := 0, 1
	var lr apiv1.LabelResponse
	if code := c.do("POST", "/v1/sessions/"+created.SessionID+"/label", apiv1.LabelRequest{Trace: &zero, Label: "good"}, &lr); code != 200 {
		t.Fatalf("label: %d", code)
	}
	if code := c.do("POST", "/v1/sessions/"+created.SessionID+"/label", apiv1.LabelRequest{Trace: &one, Label: "bad"}, &lr); code != 200 {
		t.Fatalf("label: %d", code)
	}
	var sug apiv1.SuggestResponse
	if code := c.do("POST", "/v1/sessions/"+created.SessionID+"/suggest", apiv1.SuggestRequest{Concept: created.Top}, &sug); code != 200 {
		t.Fatalf("suggest: %d", code)
	}
	if sug.Template == "" || sug.RefFA == "" {
		t.Fatalf("empty suggestion: %+v", sug)
	}
	var focus apiv1.FocusResponse
	if code := c.do("POST", "/v1/sessions/"+created.SessionID+"/focus", apiv1.FocusRequest{
		Concept: created.Top, RefFA: sug.RefFA,
	}, &focus); code != http.StatusCreated {
		t.Fatalf("focus on suggested FA: %d", code)
	}
}

func TestIdleEviction(t *testing.T) {
	srv, c := newTestServer(t, Config{CacheSize: 4, IdleTimeout: time.Minute})
	created := c.mustCreate(violationFixture(t))
	kept := c.mustCreate(fixtureFrom(t, trace.NewSet(trace.ParseEvents("w0", "a()"))))

	// Rewind the first session's clock past the idle horizon; the second
	// stays fresh via a touch under the advanced clock.
	base := time.Now()
	srv.store.now = func() time.Time { return base.Add(2 * time.Minute) }
	if code := c.do("GET", "/v1/sessions/"+kept.SessionID, nil, nil); code != 200 {
		t.Fatalf("touch: %d", code)
	}
	if n := srv.EvictIdleNow(); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	if code := c.do("GET", "/v1/sessions/"+created.SessionID, nil, nil); code != http.StatusNotFound {
		t.Errorf("idle session survived eviction: %d", code)
	}
	if code := c.do("GET", "/v1/sessions/"+kept.SessionID, nil, nil); code != 200 {
		t.Errorf("fresh session was evicted: %d", code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	m := obs.New()
	_, c := newTestServer(t, Config{CacheSize: 4, Metrics: m})
	c.mustCreate(violationFixture(t))
	c.mustCreate(violationFixture(t)) // cache hit

	resp, err := c.http.Get(c.base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"server.req.create_session", "server.latency.create_session",
		"server.cache.hits", "server.sessions.live",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics snapshot missing %q:\n%s", want, text)
		}
	}
}
