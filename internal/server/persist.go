// Session persistence: crash-safe snapshots plus a write-ahead log of
// labeling actions, so a killed or restarted cabled process restores its
// live sessions with every label intact.
//
// Each session owns two files under the snapshot directory:
//
//	<id>.snap — full session state, written atomically (temp + rename):
//
//	    "CSNP" | ver u8 |
//	    str sessionID | str traces | str refFA |
//	    u32 numLabels | numLabels × str label |
//	    u64 latticeLen | lattice bytes (concept.WriteSnapshot) |
//	    u32 crc32(IEEE, everything before the trailer)
//
//	<id>.wal — actions since the snapshot, append-only:
//
//	    "CWAL" | ver u8 | record*
//	    record := u8 type | u32 len | payload[len] |
//	              u32 crc32(IEEE, type|len|payload)
//	    type 1 (label):      payload = str classKey | str label
//	    type 2 (add-trace):  payload = str traceText (one trace record)
//	    type 3 (stream):     payload = str streamID | str specFA | u8 closed |
//	                         u32 window | u64 events | u64 sinceReset |
//	                         u64 truncations | u32 violations | u8 truncated |
//	                         u32 nFrontier × u32 stateID |
//	                         u32 nRing × str eventText
//	                         (specFA is the checked FA's serialized text,
//	                         or "" when the stream checks the session's
//	                         reference FA)
//
// str is u32 length + bytes, little-endian throughout. The snapshot is
// rewritten — and the WAL truncated — whenever the full labeling changes
// shape outside the WAL's vocabulary (focus merges, graceful drain); WAL
// records carry trace-class *keys*, not indices, so replay stays correct
// even though adds change the class numbering. Replay stops at the first
// record whose CRC or structure fails: a torn tail loses that record
// only, never the session. Open focus sub-sessions are deliberately not
// persisted — a crash mid-focus restores the parent as of the last
// snapshot plus WAL; the focus's unmerged labels are lost, matching the
// paper's model of focus sessions as scratch workspaces.
//
// Stream records externalize an open online-verification stream's
// checker (internal/stream.State): every ingest batch appends one, the
// latest record per stream ID wins on replay, and closed=1 is a
// tombstone. Because writing a snapshot truncates the WAL, the server
// re-appends one stream record per open stream right after every
// snapshot, so open frontiers survive snapshot-then-crash.
package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cable"
	"repro/internal/concept"
	"repro/internal/event"
	"repro/internal/fa"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/trace"
)

const (
	snapMagic     = "CSNP"
	walMagic      = "CWAL"
	persistVer    = 1
	walTypeLbl    = 1
	walTypeAdd    = 2
	walTypeStream = 3
	maxPersistStr = 256 << 20 // matches the request-body ceiling with headroom
)

// persister owns the snapshot directory. A nil *persister (no -snapshot-dir)
// turns every method into a cheap no-op check at the call sites.
type persister struct {
	dir     string
	metrics *obs.Metrics
}

func newPersister(dir string, m *obs.Metrics) (*persister, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: snapshot dir: %w", err)
	}
	return &persister{dir: dir, metrics: m}, nil
}

func (p *persister) snapPath(id string) string { return filepath.Join(p.dir, id+".snap") }
func (p *persister) walPath(id string) string  { return filepath.Join(p.dir, id+".wal") }

// --- little-endian primitives over an in-memory buffer ---

func putU32(b *bytes.Buffer, v uint32) {
	var x [4]byte
	binary.LittleEndian.PutUint32(x[:], v)
	b.Write(x[:])
}

func putU64(b *bytes.Buffer, v uint64) {
	var x [8]byte
	binary.LittleEndian.PutUint64(x[:], v)
	b.Write(x[:])
}

func putStr(b *bytes.Buffer, s string) {
	putU32(b, uint32(len(s)))
	b.WriteString(s)
}

// byteCursor reads the primitives back, failing on truncation instead of
// panicking — snapshot files are trusted less than the process that wrote
// them (partial writes, disk corruption).
type byteCursor struct {
	data []byte
	off  int
}

func (c *byteCursor) take(n int) ([]byte, error) {
	if n < 0 || c.off+n > len(c.data) {
		return nil, errors.New("truncated")
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *byteCursor) u8() (byte, error) {
	b, err := c.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *byteCursor) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *byteCursor) u64() (uint64, error) {
	b, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (c *byteCursor) str() (string, error) {
	n, err := c.u32()
	if err != nil {
		return "", err
	}
	if n > maxPersistStr {
		return "", fmt.Errorf("string of %d bytes exceeds limit", n)
	}
	b, err := c.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// --- snapshot files ---

// snapData is a parsed .snap file, still in wire form: the caller turns
// the text payloads back into a live session.
type snapData struct {
	id      string
	traces  string
	ref     string
	labels  []string
	lattice []byte
}

// writeSnap atomically persists the session's full state and truncates
// its WAL (the snapshot now subsumes every logged action). Callers hold
// the session's entry lock.
func (p *persister) writeSnap(id string, sess *cable.Session) error {
	var body bytes.Buffer
	body.WriteString(snapMagic)
	body.WriteByte(persistVer)
	putStr(&body, id)
	var traces, ref strings.Builder
	if err := trace.Write(&traces, sess.Set()); err != nil {
		return fmt.Errorf("server: snapshot %s: traces: %w", id, err)
	}
	if err := fa.Write(&ref, sess.Ref()); err != nil {
		return fmt.Errorf("server: snapshot %s: ref fa: %w", id, err)
	}
	putStr(&body, traces.String())
	putStr(&body, ref.String())
	labels := sess.Labels()
	putU32(&body, uint32(len(labels)))
	for _, l := range labels {
		putStr(&body, string(l))
	}
	var lat bytes.Buffer
	if err := concept.WriteSnapshot(&lat, sess.Lattice()); err != nil {
		return fmt.Errorf("server: snapshot %s: lattice: %w", id, err)
	}
	putU64(&body, uint64(lat.Len()))
	body.Write(lat.Bytes())
	putU32(&body, crc32.ChecksumIEEE(body.Bytes()))

	tmp := p.snapPath(id) + ".tmp"
	if err := os.WriteFile(tmp, body.Bytes(), 0o644); err != nil {
		return fmt.Errorf("server: snapshot %s: %w", id, err)
	}
	if err := os.Rename(tmp, p.snapPath(id)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: snapshot %s: %w", id, err)
	}
	// The snapshot includes everything; the log starts over.
	if err := os.Remove(p.walPath(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("server: snapshot %s: truncating wal: %w", id, err)
	}
	p.metrics.Counter("server.snapshot.save").Inc()
	return nil
}

// parseSnap validates and decodes a .snap file.
func parseSnap(data []byte) (snapData, error) {
	var sd snapData
	if len(data) < len(snapMagic)+1+4 {
		return sd, errors.New("server: snapshot: truncated")
	}
	stored := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(data[:len(data)-4]) != stored {
		return sd, errors.New("server: snapshot: checksum mismatch")
	}
	c := &byteCursor{data: data[:len(data)-4]}
	magic, err := c.take(len(snapMagic))
	if err != nil || string(magic) != snapMagic {
		return sd, errors.New("server: snapshot: bad magic")
	}
	ver, err := c.u8()
	if err != nil || ver != persistVer {
		return sd, fmt.Errorf("server: snapshot: unsupported version %d", ver)
	}
	if sd.id, err = c.str(); err != nil {
		return sd, fmt.Errorf("server: snapshot: id: %w", err)
	}
	if sd.traces, err = c.str(); err != nil {
		return sd, fmt.Errorf("server: snapshot: traces: %w", err)
	}
	if sd.ref, err = c.str(); err != nil {
		return sd, fmt.Errorf("server: snapshot: ref fa: %w", err)
	}
	n, err := c.u32()
	if err != nil {
		return sd, fmt.Errorf("server: snapshot: labels: %w", err)
	}
	sd.labels = make([]string, 0, min(int(n), 4096))
	for i := 0; i < int(n); i++ {
		l, err := c.str()
		if err != nil {
			return sd, fmt.Errorf("server: snapshot: label %d: %w", i, err)
		}
		sd.labels = append(sd.labels, l)
	}
	latLen, err := c.u64()
	if err != nil {
		return sd, fmt.Errorf("server: snapshot: lattice: %w", err)
	}
	lat, err := c.take(int(latLen))
	if err != nil {
		return sd, fmt.Errorf("server: snapshot: lattice: %w", err)
	}
	sd.lattice = lat
	if c.off != len(c.data) {
		return sd, fmt.Errorf("server: snapshot: %d trailing bytes", len(c.data)-c.off)
	}
	return sd, nil
}

// --- write-ahead log ---

// walRecord frames one action with its type, length, and CRC.
func walRecord(typ byte, payload []byte) []byte {
	var b bytes.Buffer
	b.WriteByte(typ)
	putU32(&b, uint32(len(payload)))
	b.Write(payload)
	putU32(&b, crc32.ChecksumIEEE(b.Bytes()))
	return b.Bytes()
}

// walLabelRecord logs "class <key> now carries <label>".
func walLabelRecord(key, label string) []byte {
	var p bytes.Buffer
	putStr(&p, key)
	putStr(&p, label)
	return walRecord(walTypeLbl, p.Bytes())
}

// walAddRecord logs one ingested trace in the trace text format.
func walAddRecord(t trace.Trace) ([]byte, error) {
	var text strings.Builder
	if err := trace.WriteTrace(&text, t); err != nil {
		return nil, err
	}
	var p bytes.Buffer
	putStr(&p, text.String())
	return walRecord(walTypeAdd, p.Bytes()), nil
}

// walStreamRecord externalizes one open stream's checker state (or its
// tombstone when closed).
func walStreamRecord(streamID, spec string, closed bool, st stream.State) []byte {
	var p bytes.Buffer
	putStr(&p, streamID)
	putStr(&p, spec)
	if closed {
		p.WriteByte(1)
	} else {
		p.WriteByte(0)
	}
	putU32(&p, uint32(st.Window))
	putU64(&p, st.Events)
	putU64(&p, st.SinceReset)
	putU64(&p, st.Truncations)
	putU32(&p, uint32(st.Violations))
	if st.Truncated {
		p.WriteByte(1)
	} else {
		p.WriteByte(0)
	}
	putU32(&p, uint32(len(st.Frontier)))
	for _, q := range st.Frontier {
		putU32(&p, uint32(q))
	}
	putU32(&p, uint32(len(st.Ring)))
	for _, e := range st.Ring {
		putStr(&p, e.String())
	}
	return walRecord(walTypeStream, p.Bytes())
}

// parseStreamPayload decodes a type-3 payload back into checker state.
func parseStreamPayload(pc *byteCursor) (streamID, spec string, closed bool, st stream.State, err error) {
	fail := func(e error) (string, string, bool, stream.State, error) {
		return "", "", false, stream.State{}, e
	}
	if streamID, err = pc.str(); err != nil {
		return fail(err)
	}
	if spec, err = pc.str(); err != nil {
		return fail(err)
	}
	cb, err := pc.u8()
	if err != nil {
		return fail(err)
	}
	closed = cb != 0
	w, err := pc.u32()
	if err != nil {
		return fail(err)
	}
	st.Window = int(w)
	if st.Events, err = pc.u64(); err != nil {
		return fail(err)
	}
	if st.SinceReset, err = pc.u64(); err != nil {
		return fail(err)
	}
	if st.Truncations, err = pc.u64(); err != nil {
		return fail(err)
	}
	v, err := pc.u32()
	if err != nil {
		return fail(err)
	}
	st.Violations = int(v)
	tb, err := pc.u8()
	if err != nil {
		return fail(err)
	}
	st.Truncated = tb != 0
	nf, err := pc.u32()
	if err != nil || nf > uint32(stream.MaxWindow)*1024 {
		return fail(errors.New("bad frontier count"))
	}
	st.Frontier = make([]int, 0, min(int(nf), 4096))
	for i := 0; i < int(nf); i++ {
		q, err := pc.u32()
		if err != nil {
			return fail(err)
		}
		st.Frontier = append(st.Frontier, int(q))
	}
	nr, err := pc.u32()
	if err != nil || nr > uint32(stream.MaxWindow) {
		return fail(errors.New("bad ring count"))
	}
	st.Ring = make([]event.Event, 0, int(nr))
	for i := 0; i < int(nr); i++ {
		text, err := pc.str()
		if err != nil {
			return fail(err)
		}
		ev, err := event.Parse(text)
		if err != nil {
			return fail(err)
		}
		st.Ring = append(st.Ring, ev)
	}
	return streamID, spec, closed, st, nil
}

// appendWAL appends framed records to the session's log, creating it
// (with its header) on first use. Callers hold the session's entry lock,
// which serializes appends per session.
func (p *persister) appendWAL(id string, recs [][]byte) error {
	if len(recs) == 0 {
		return nil
	}
	f, err := os.OpenFile(p.walPath(id), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: wal %s: %w", id, err)
	}
	defer f.Close()
	if st, err := f.Stat(); err == nil && st.Size() == 0 {
		if _, err := f.Write(append([]byte(walMagic), persistVer)); err != nil {
			return fmt.Errorf("server: wal %s: header: %w", id, err)
		}
	}
	for _, rec := range recs {
		if _, err := f.Write(rec); err != nil {
			return fmt.Errorf("server: wal %s: %w", id, err)
		}
	}
	return nil
}

// walAction is one decoded WAL record.
type walAction struct {
	typ   byte
	key   string // label records
	label string // label records
	text  string // add records

	// stream records
	streamID     string
	streamSpec   string
	streamClosed bool
	streamState  stream.State
}

// parseWAL decodes records until the data ends or a record fails its CRC
// or structure check; a torn tail yields the valid prefix, never an
// error — the session restores to the last durable action.
func parseWAL(data []byte) []walAction {
	c := &byteCursor{data: data}
	magic, err := c.take(len(walMagic))
	if err != nil || string(magic) != walMagic {
		return nil
	}
	if ver, err := c.u8(); err != nil || ver != persistVer {
		return nil
	}
	var out []walAction
	for c.off < len(c.data) {
		start := c.off
		typ, err := c.u8()
		if err != nil {
			break
		}
		n, err := c.u32()
		if err != nil || n > maxPersistStr {
			break
		}
		payload, err := c.take(int(n))
		if err != nil {
			break
		}
		stored, err := c.u32()
		if err != nil || crc32.ChecksumIEEE(c.data[start:start+5+int(n)]) != stored {
			break
		}
		pc := &byteCursor{data: payload}
		switch typ {
		case walTypeLbl:
			key, err1 := pc.str()
			label, err2 := pc.str()
			if err1 != nil || err2 != nil || pc.off != len(payload) {
				return out
			}
			out = append(out, walAction{typ: typ, key: key, label: label})
		case walTypeAdd:
			text, err := pc.str()
			if err != nil || pc.off != len(payload) {
				return out
			}
			out = append(out, walAction{typ: typ, text: text})
		case walTypeStream:
			sid, spec, closed, sst, err := parseStreamPayload(pc)
			if err != nil || pc.off != len(payload) {
				return out
			}
			out = append(out, walAction{typ: typ, streamID: sid, streamSpec: spec, streamClosed: closed, streamState: sst})
		default:
			// Unknown record type: written by a newer version; stop
			// rather than misinterpret what follows.
			return out
		}
	}
	return out
}

// removeFiles deletes a session's snapshot and WAL; called after the
// session leaves the store (delete or idle eviction).
func (p *persister) removeFiles(id string) {
	_ = os.Remove(p.snapPath(id))
	_ = os.Remove(p.walPath(id))
}

// state reports a session's durability form for introspection: "wal"
// (snapshot plus a write-ahead tail), "snapshot" (snapshot only), or
// "none".
func (p *persister) state(id string) string {
	if _, err := os.Stat(p.walPath(id)); err == nil {
		return "wal"
	}
	if _, err := os.Stat(p.snapPath(id)); err == nil {
		return "snapshot"
	}
	return "none"
}

// --- server lifecycle hooks ---

// LoadSnapshots restores every persisted session from the snapshot
// directory: parse the .snap, rebuild the cable session around the
// restored lattice (no concept.Build — that is the point), reapply the
// snapshotted labels, then replay the WAL. It returns how many sessions
// came back. A corrupt snapshot is skipped (counted in
// server.snapshot.load_errors) so one bad file cannot hold the whole
// service down; a torn WAL tail replays its valid prefix.
func (s *Server) LoadSnapshots(ctx context.Context) (int, error) {
	if s.persist == nil {
		return 0, nil
	}
	des, err := os.ReadDir(s.persist.dir)
	if err != nil {
		return 0, fmt.Errorf("server: snapshot dir: %w", err)
	}
	loaded := 0
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".snap") {
			continue
		}
		id := strings.TrimSuffix(name, ".snap")
		if err := s.loadOne(ctx, id); err != nil {
			s.metrics.Counter("server.snapshot.load_errors").Inc()
			continue
		}
		s.metrics.Counter("server.snapshot.load").Inc()
		loaded++
	}
	return loaded, nil
}

// loadOne restores a single session from <id>.snap (+ optional WAL).
func (s *Server) loadOne(ctx context.Context, id string) error {
	data, err := os.ReadFile(s.persist.snapPath(id))
	if err != nil {
		return err
	}
	sd, err := parseSnap(data)
	if err != nil {
		return err
	}
	if sd.id != id {
		return fmt.Errorf("server: snapshot %s claims ID %q", id, sd.id)
	}
	set, err := trace.Read(strings.NewReader(sd.traces))
	if err != nil {
		return fmt.Errorf("server: snapshot %s: traces: %w", id, err)
	}
	ref, err := fa.Read(strings.NewReader(sd.ref))
	if err != nil {
		return fmt.Errorf("server: snapshot %s: ref fa: %w", id, err)
	}
	lattice, err := concept.ReadSnapshot(bytes.NewReader(sd.lattice))
	if err != nil {
		return fmt.Errorf("server: snapshot %s: lattice: %w", id, err)
	}
	if len(sd.labels) != set.NumClasses() {
		return fmt.Errorf("server: snapshot %s: %d labels for %d classes", id, len(sd.labels), set.NumClasses())
	}
	sess, err := cable.NewSession(set, ref,
		cable.WithContext(ctx),
		cable.WithObs(s.metrics),
		cable.WithWorkers(s.cfg.Workers),
		cable.WithLattice(lattice))
	if err != nil {
		return fmt.Errorf("server: snapshot %s: %w", id, err)
	}
	for i, l := range sd.labels {
		if l == "" {
			continue
		}
		if err := sess.LabelTrace(i, cable.Label(l)); err != nil {
			return fmt.Errorf("server: snapshot %s: %w", id, err)
		}
	}
	var actions []walAction
	if wdata, err := os.ReadFile(s.persist.walPath(id)); err == nil {
		actions = parseWAL(wdata)
		replayed, err := replayWAL(ctx, sess, actions)
		if err != nil {
			return fmt.Errorf("server: snapshot %s: wal: %w", id, err)
		}
		s.metrics.Counter("server.snapshot.replay").Add(int64(replayed))
	}
	if err := s.store.restore(id, sess); err != nil {
		return err
	}
	// Re-open the session's streams from their latest stream records
	// (closed records are tombstones). A record that no longer matches
	// the reference FA — e.g. a frontier state out of range — loses that
	// stream only, not the session.
	latest := map[string]walAction{}
	for _, a := range actions {
		if a.typ == walTypeStream {
			latest[a.streamID] = a
		}
	}
	for sid, a := range latest {
		if a.streamClosed {
			continue
		}
		sim := sess.Ref().Sim()
		specName := sess.Ref().Name()
		if a.streamSpec != "" {
			spec, err := fa.Read(strings.NewReader(a.streamSpec))
			if err != nil {
				s.metrics.Counter("server.snapshot.load_errors").Inc()
				continue
			}
			sim = spec.Sim()
			specName = spec.Name()
		}
		chk, err := stream.Restore(sim, a.streamState)
		if err != nil {
			s.metrics.Counter("server.snapshot.load_errors").Inc()
			continue
		}
		if err := s.store.restoreStream(sid, id, a.streamSpec, specName, chk); err != nil {
			s.metrics.Counter("server.snapshot.load_errors").Inc()
		}
	}
	return nil
}

// replayWAL applies logged actions to a restored session, in order.
// Class keys that no longer resolve, or traces the reference FA rejects,
// abort the replay — they mean the WAL does not belong to this snapshot.
func replayWAL(ctx context.Context, sess *cable.Session, actions []walAction) (int, error) {
	n := 0
	for _, a := range actions {
		switch a.typ {
		case walTypeLbl:
			i := sess.Set().ClassOfKey(a.key)
			if i < 0 {
				return n, fmt.Errorf("label record for unknown class %q", a.key)
			}
			if err := sess.LabelTrace(i, cable.Label(a.label)); err != nil {
				return n, err
			}
		case walTypeStream:
			// Stream state is restored separately (loadOne): the record
			// describes a checker, not a session action.
			continue
		case walTypeAdd:
			ts, err := trace.Read(strings.NewReader(a.text))
			if err != nil {
				return n, fmt.Errorf("add record: %w", err)
			}
			for _, cl := range ts.Classes() {
				for j := 0; j < cl.Count; j++ {
					t := cl.Rep
					t.ID = cl.IDs[j]
					if _, _, err := sess.AddTraceCtx(ctx, t); err != nil {
						return n, fmt.Errorf("add record: %w", err)
					}
				}
			}
		}
		n++
	}
	return n, nil
}

// snapshotSession persists a session's full snapshot and then re-appends
// one stream record per open stream: writeSnap truncates the WAL, which
// would otherwise lose the open frontiers. Callers hold e.mu (lock order
// entry → stream is the sanctioned nesting; see streamEntry).
func (s *Server) snapshotSession(e *entry) error {
	if err := s.persist.writeSnap(e.id, e.session); err != nil {
		return err
	}
	var recs [][]byte
	for _, se := range s.store.streamsOf(e.id) {
		se.mu.Lock()
		if !se.closed {
			recs = append(recs, walStreamRecord(se.id, se.spec, false, se.checker.State()))
		}
		se.mu.Unlock()
	}
	return s.persist.appendWAL(e.id, recs)
}

// SaveSnapshots writes a fresh snapshot for every live session — the
// graceful-drain counterpart of LoadSnapshots — and returns how many it
// saved. Idle-evicted and deleted sessions have no files left to write.
// Open streams ride along as WAL stream records, so a restart resumes
// them mid-protocol.
func (s *Server) SaveSnapshots() (int, error) {
	if s.persist == nil {
		return 0, nil
	}
	saved := 0
	var firstErr error
	for _, e := range s.store.list() {
		e.mu.Lock()
		err := s.snapshotSession(e)
		e.mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		saved++
	}
	return saved, firstErr
}
