// Package apiv1 defines the versioned JSON request and response types of
// the cabled session service. The wire format is the compatibility
// surface: handlers and clients marshal exactly these structs, and the
// golden files under testdata/ pin every shape so accidental field
// renames fail tests rather than remote tools.
//
// Traces and finite automata cross the wire in the repository's existing
// text formats (internal/trace and internal/fa), not as JSON trees: the
// formats are line-oriented, diffable, and already produced by the miner
// and the REPL's save command, so a curl invocation can lift a file
// straight into a request body.
package apiv1

// CreateSessionRequest starts a debugging session from a trace multiset
// and a reference FA, both in their text serializations.
type CreateSessionRequest struct {
	// Traces is the internal/trace text format: one "count<TAB>events"
	// class per line.
	Traces string `json:"traces"`
	// RefFA is the internal/fa text format of the reference automaton
	// whose executed-transition rows form the concept context.
	RefFA string `json:"ref_fa"`
	// Workers bounds lattice-build parallelism; 0 uses GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// CreateSessionResponse reports the new session and its lattice size.
type CreateSessionResponse struct {
	// SessionID is the opaque handle for all later calls.
	SessionID string `json:"session_id"`
	// NumTraces is the number of distinct trace classes.
	NumTraces int `json:"num_traces"`
	// NumConcepts is the size of the built concept lattice.
	NumConcepts int `json:"num_concepts"`
	// Top is the concept ID of the lattice's top element.
	Top int `json:"top"`
	// CacheHit reports whether the lattice came from the server's cache
	// instead of a fresh build (same traces and reference FA as an
	// earlier session).
	CacheHit bool `json:"cache_hit"`
}

// SessionInfo summarizes one live session for list/describe calls.
type SessionInfo struct {
	SessionID   string `json:"session_id"`
	NumTraces   int    `json:"num_traces"`
	NumConcepts int    `json:"num_concepts"`
	// Labeled counts trace classes that currently carry a label.
	Labeled int `json:"labeled"`
	// Done reports whether every trace class is labeled.
	Done bool `json:"done"`
	// Focus reports whether this is a Focus sub-session; its labels merge
	// into the parent when the focus ends.
	Focus bool `json:"focus,omitempty"`
	// Parent is the owning session's ID when Focus is true.
	Parent string `json:"parent,omitempty"`
}

// SessionList is the list-sessions response.
type SessionList struct {
	Sessions []SessionInfo `json:"sessions"`
}

// Selector picks a subset of a concept's traces, mirroring
// cable.Selector. Mode is "all", "unlabeled", or "label"; Label is
// consulted only when Mode is "label".
type Selector struct {
	Mode  string `json:"mode"`
	Label string `json:"label,omitempty"`
}

// Concept is one lattice element's summary: the Cable "list"/"info" views.
type Concept struct {
	ID int `json:"id"`
	// State is "Unlabeled", "PartlyLabeled", or "FullyLabeled".
	State string `json:"state"`
	// NumClasses is the extent size (distinct trace classes).
	NumClasses int `json:"num_classes"`
	// TotalTraces sums the classes' multiplicities.
	TotalTraces int `json:"total_traces"`
	// Similarity is the intent size — shared executed transitions.
	Similarity int   `json:"similarity"`
	Parents    []int `json:"parents"`
	Children   []int `json:"children"`
	// Transitions renders the shared reference-FA transitions; present
	// only in the single-concept view.
	Transitions []string `json:"transitions,omitempty"`
}

// ConceptList is the list-concepts response, in top-down lattice order.
type ConceptList struct {
	Concepts []Concept `json:"concepts"`
}

// LabelRequest labels traces. Either Trace names one trace class, or
// Concept plus Selector names a concept subset (the Cable "label c5 good
// unlabeled" command).
type LabelRequest struct {
	Trace    *int      `json:"trace,omitempty"`
	Concept  *int      `json:"concept,omitempty"`
	Selector *Selector `json:"selector,omitempty"`
	Label    string    `json:"label"`
}

// LabelResponse reports how many trace classes changed label.
type LabelResponse struct {
	Labeled int `json:"labeled"`
}

// TraceClass is one trace class with its current label.
type TraceClass struct {
	Index int    `json:"index"`
	Key   string `json:"key"`
	Count int    `json:"count"`
	Label string `json:"label,omitempty"`
}

// TraceList is the list-traces response.
type TraceList struct {
	Traces []TraceClass `json:"traces"`
}

// AddTracesRequest appends traces to an existing session without
// rebuilding it: the lattice is maintained incrementally. Traces whose
// event sequence matches an existing class only raise that class's
// multiplicity; novel traces become new classes (and new lattice objects)
// that start unlabeled. The whole batch is validated against the session's
// reference FA before anything is applied, so a rejected trace leaves the
// session unchanged.
type AddTracesRequest struct {
	// Traces is the internal/trace text format, as in create-session.
	Traces string `json:"traces"`
}

// AddTracesResponse reports the incremental ingestion.
type AddTracesResponse struct {
	// Added is the number of traces ingested (including duplicates).
	Added int `json:"added"`
	// NewClasses is how many of them started a new trace class.
	NewClasses int `json:"new_classes"`
	// NumTraces is the session's class count after the ingestion.
	NumTraces int `json:"num_traces"`
	// NumConcepts is the lattice size after the ingestion.
	NumConcepts int `json:"num_concepts"`
}

// SuggestRequest asks for a Focus template separating a mixed concept.
type SuggestRequest struct {
	Concept int `json:"concept"`
}

// SuggestResponse carries the winning template and its reference FA.
type SuggestResponse struct {
	// Template names the Section 4.1 template: "unordered",
	// "project <name>", or "seed <event>".
	Template string `json:"template"`
	// RefFA is the suggested automaton in the internal/fa text format,
	// ready to feed back into a focus request.
	RefFA string `json:"ref_fa"`
}

// FocusRequest opens a Focus sub-session over a concept subset with a
// different reference FA.
type FocusRequest struct {
	Concept  int       `json:"concept"`
	Selector *Selector `json:"selector,omitempty"`
	// RefFA is the focus automaton in the internal/fa text format.
	RefFA string `json:"ref_fa"`
}

// FocusResponse hands back the sub-session, usable with every session
// endpoint plus end-focus.
type FocusResponse struct {
	SessionID   string `json:"session_id"`
	NumTraces   int    `json:"num_traces"`
	NumConcepts int    `json:"num_concepts"`
}

// EndFocusResponse reports the merge when a focus sub-session ends.
type EndFocusResponse struct {
	// Merged counts the labels copied back into the parent session.
	Merged int `json:"merged"`
}

// LabelsExport is the saved-labels view: the same "<label>\t<key>" lines
// the REPL's save command writes, one entry per labeled class.
type LabelsExport struct {
	Labels []LabelLine `json:"labels"`
}

// LabelLine is one exported label.
type LabelLine struct {
	Label string `json:"label"`
	Key   string `json:"key"`
}

// LintRequest asks for a structural analysis of a specification FA
// (internal/speclint), optionally against a trace corpus.
type LintRequest struct {
	// FA is the internal/fa text format of the spec to lint.
	FA string `json:"fa"`
	// Traces optionally carries the internal/trace text format; when
	// present the alphabet-mismatch rule runs in both directions.
	Traces string `json:"traces,omitempty"`
}

// LintFinding is one speclint diagnostic.
type LintFinding struct {
	// Spec is the automaton's name.
	Spec string `json:"spec"`
	// Rule is the stable rule slug, e.g. "unreachable-state".
	Rule string `json:"rule"`
	// Message is the human-readable diagnostic.
	Message string `json:"message"`
}

// LintResponse lists the findings; Clean mirrors len(Findings) == 0 so
// shell scripts can test one boolean.
type LintResponse struct {
	Findings []LintFinding `json:"findings"`
	Clean    bool          `json:"clean"`
}

// Error is the uniform failure envelope; every non-2xx response body is
// one of these.
type Error struct {
	// Code is a stable machine-readable slug: "bad_request", "not_found",
	// "conflict", "timeout", or "internal".
	Code string `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
}
