// Package apiv1 defines the versioned JSON request and response types of
// the cabled session service. The wire format is the compatibility
// surface: handlers and clients marshal exactly these structs, and the
// golden files under testdata/ pin every shape so accidental field
// renames fail tests rather than remote tools.
//
// Traces and finite automata cross the wire in the repository's existing
// text formats (internal/trace and internal/fa), not as JSON trees: the
// formats are line-oriented, diffable, and already produced by the miner
// and the REPL's save command, so a curl invocation can lift a file
// straight into a request body.
package apiv1

// CreateSessionRequest starts a debugging session from a trace multiset
// and a reference FA, both in their text serializations.
type CreateSessionRequest struct {
	// Traces is the internal/trace text format: one "count<TAB>events"
	// class per line.
	Traces string `json:"traces"`
	// RefFA is the internal/fa text format of the reference automaton
	// whose executed-transition rows form the concept context.
	RefFA string `json:"ref_fa"`
	// Workers bounds lattice-build parallelism; 0 uses GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// CreateSessionResponse reports the new session and its lattice size.
type CreateSessionResponse struct {
	// SessionID is the opaque handle for all later calls.
	SessionID string `json:"session_id"`
	// NumTraces is the number of distinct trace classes.
	NumTraces int `json:"num_traces"`
	// NumConcepts is the size of the built concept lattice.
	NumConcepts int `json:"num_concepts"`
	// Top is the concept ID of the lattice's top element.
	Top int `json:"top"`
	// CacheHit reports whether the lattice came from the server's cache
	// instead of a fresh build (same traces and reference FA as an
	// earlier session).
	CacheHit bool `json:"cache_hit"`
}

// SessionInfo summarizes one live session for list/describe calls. The
// shape is stable so a router tier can discover and place sessions
// without scraping: identity, creation time, class/label counts, cache
// provenance, and durability state.
type SessionInfo struct {
	SessionID   string `json:"session_id"`
	NumTraces   int    `json:"num_traces"`
	NumConcepts int    `json:"num_concepts"`
	// Labeled counts trace classes that currently carry a label.
	Labeled int `json:"labeled"`
	// Done reports whether every trace class is labeled.
	Done bool `json:"done"`
	// Focus reports whether this is a Focus sub-session; its labels merge
	// into the parent when the focus ends.
	Focus bool `json:"focus,omitempty"`
	// Parent is the owning session's ID when Focus is true.
	Parent string `json:"parent,omitempty"`
	// Created is the session's creation time, RFC 3339 UTC.
	Created string `json:"created,omitempty"`
	// CacheHit reports whether the session's lattice came from the
	// server's cache rather than a fresh build.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Snapshot is the session's durability state: "none" (nothing on
	// disk), "snapshot" (snapshot current), or "wal" (snapshot plus
	// write-ahead tail to replay). Empty when persistence is disabled.
	Snapshot string `json:"snapshot,omitempty"`
	// Streams counts the open event streams bound to this session.
	Streams int `json:"streams,omitempty"`
}

// SessionList is the list-sessions response, ordered by session ID.
type SessionList struct {
	Sessions []SessionInfo `json:"sessions"`
	// NextCursor resumes a paginated listing: pass it as ?cursor= to get
	// the next page. Empty on the last page.
	NextCursor string `json:"next_cursor,omitempty"`
}

// Selector picks a subset of a concept's traces, mirroring
// cable.Selector. Mode is "all", "unlabeled", or "label"; Label is
// consulted only when Mode is "label".
type Selector struct {
	Mode  string `json:"mode"`
	Label string `json:"label,omitempty"`
}

// Concept is one lattice element's summary: the Cable "list"/"info" views.
type Concept struct {
	ID int `json:"id"`
	// State is "Unlabeled", "PartlyLabeled", or "FullyLabeled".
	State string `json:"state"`
	// NumClasses is the extent size (distinct trace classes).
	NumClasses int `json:"num_classes"`
	// TotalTraces sums the classes' multiplicities.
	TotalTraces int `json:"total_traces"`
	// Similarity is the intent size — shared executed transitions.
	Similarity int   `json:"similarity"`
	Parents    []int `json:"parents"`
	Children   []int `json:"children"`
	// Transitions renders the shared reference-FA transitions; present
	// only in the single-concept view.
	Transitions []string `json:"transitions,omitempty"`
}

// ConceptList is the list-concepts response, in top-down lattice order.
type ConceptList struct {
	Concepts []Concept `json:"concepts"`
}

// LabelRequest labels traces. Either Trace names one trace class, or
// Concept plus Selector names a concept subset (the Cable "label c5 good
// unlabeled" command).
type LabelRequest struct {
	Trace    *int      `json:"trace,omitempty"`
	Concept  *int      `json:"concept,omitempty"`
	Selector *Selector `json:"selector,omitempty"`
	Label    string    `json:"label"`
}

// LabelResponse reports how many trace classes changed label.
type LabelResponse struct {
	Labeled int `json:"labeled"`
}

// TraceClass is one trace class with its current label.
type TraceClass struct {
	Index int    `json:"index"`
	Key   string `json:"key"`
	Count int    `json:"count"`
	Label string `json:"label,omitempty"`
}

// TraceList is the list-traces response.
type TraceList struct {
	Traces []TraceClass `json:"traces"`
}

// AddTracesRequest appends traces to an existing session without
// rebuilding it: the lattice is maintained incrementally. Traces whose
// event sequence matches an existing class only raise that class's
// multiplicity; novel traces become new classes (and new lattice objects)
// that start unlabeled. The whole batch is validated against the session's
// reference FA before anything is applied, so a rejected trace leaves the
// session unchanged.
type AddTracesRequest struct {
	// Traces is the internal/trace text format, as in create-session.
	Traces string `json:"traces"`
}

// AddTracesResponse reports the incremental ingestion.
type AddTracesResponse struct {
	// Added is the number of traces ingested (including duplicates).
	Added int `json:"added"`
	// NewClasses is how many of them started a new trace class.
	NewClasses int `json:"new_classes"`
	// NumTraces is the session's class count after the ingestion.
	NumTraces int `json:"num_traces"`
	// NumConcepts is the lattice size after the ingestion.
	NumConcepts int `json:"num_concepts"`
}

// SuggestRequest asks for a Focus template separating a mixed concept.
type SuggestRequest struct {
	Concept int `json:"concept"`
}

// SuggestResponse carries the winning template and its reference FA.
type SuggestResponse struct {
	// Template names the Section 4.1 template: "unordered",
	// "project <name>", or "seed <event>".
	Template string `json:"template"`
	// RefFA is the suggested automaton in the internal/fa text format,
	// ready to feed back into a focus request.
	RefFA string `json:"ref_fa"`
}

// FocusRequest opens a Focus sub-session over a concept subset with a
// different reference FA.
type FocusRequest struct {
	Concept  int       `json:"concept"`
	Selector *Selector `json:"selector,omitempty"`
	// RefFA is the focus automaton in the internal/fa text format.
	RefFA string `json:"ref_fa"`
}

// FocusResponse hands back the sub-session, usable with every session
// endpoint plus end-focus.
type FocusResponse struct {
	SessionID   string `json:"session_id"`
	NumTraces   int    `json:"num_traces"`
	NumConcepts int    `json:"num_concepts"`
}

// EndFocusResponse reports the merge when a focus sub-session ends.
type EndFocusResponse struct {
	// Merged counts the labels copied back into the parent session.
	Merged int `json:"merged"`
}

// LabelsExport is the saved-labels view: the same "<label>\t<key>" lines
// the REPL's save command writes, one entry per labeled class.
type LabelsExport struct {
	Labels []LabelLine `json:"labels"`
}

// LabelLine is one exported label.
type LabelLine struct {
	Label string `json:"label"`
	Key   string `json:"key"`
}

// LintRequest asks for an analysis of a specification FA
// (internal/speclint): the structural rules, the semantic rules
// (redundant transitions, mergeable states), optionally the
// alphabet-mismatch rule against a trace corpus, and optionally a
// language diff against a reference automaton.
type LintRequest struct {
	// FA is the internal/fa text format of the spec to lint.
	FA string `json:"fa"`
	// Traces optionally carries the internal/trace text format; when
	// present the alphabet-mismatch rule runs in both directions.
	Traces string `json:"traces,omitempty"`
	// RefFA optionally carries a reference automaton in the fa text
	// format; when present the spec is diffed against it by language, and
	// each direction of disagreement yields a language-diff finding with a
	// concrete witness trace.
	RefFA string `json:"ref_fa,omitempty"`
}

// LintFinding is one speclint diagnostic.
type LintFinding struct {
	// Spec is the automaton's name.
	Spec string `json:"spec"`
	// Rule is the stable rule slug, e.g. "unreachable-state".
	Rule string `json:"rule"`
	// Message is the human-readable diagnostic.
	Message string `json:"message"`
	// Witness, when set, is the trace key of a concrete counterexample
	// backing the finding, e.g. a trace the spec accepts but the reference
	// rejects. Witness traces are re-executed through the simulator before
	// they are reported.
	Witness string `json:"witness,omitempty"`
}

// LintResponse lists the findings; Clean mirrors len(Findings) == 0 so
// shell scripts can test one boolean.
type LintResponse struct {
	Findings []LintFinding `json:"findings"`
	Clean    bool          `json:"clean"`
}

// OpenStreamRequest opens an online-verification stream bound to a
// session: events fed to the stream are checked online, and violation
// traces append into the session's lattice live.
type OpenStreamRequest struct {
	// SessionID names the owning session.
	SessionID string `json:"session_id"`
	// Spec is the FA to verify against, in the fa text format. Empty
	// binds the stream to the session's reference FA. The usual shape is
	// a session whose reference FA is the permissive alphabet automaton
	// (the lattice vocabulary) with streams checking a stricter candidate
	// spec — then every violation window is a valid lattice object.
	Spec string `json:"spec,omitempty"`
	// Window sizes the violation ring buffer (trailing events retained
	// for counterexamples). 0 picks the server default.
	Window int `json:"window,omitempty"`
}

// OpenStreamResponse reports the new stream.
type OpenStreamResponse struct {
	// StreamID is the opaque handle for event batches and finalize.
	StreamID  string `json:"stream_id"`
	SessionID string `json:"session_id"`
	// Window is the effective ring capacity after defaulting/clamping.
	Window int `json:"window"`
	// Warnings carries non-fatal speclint findings about an explicit Spec:
	// the stream opens regardless, but a vacuous or ambiguous spec will
	// verify uselessly, so the diagnostics ride along in the response.
	Warnings []LintFinding `json:"warnings,omitempty"`
}

// StreamInfo summarizes one open stream for list/describe calls.
type StreamInfo struct {
	StreamID  string `json:"stream_id"`
	SessionID string `json:"session_id"`
	// Created is the stream's open time, RFC 3339 UTC.
	Created string `json:"created,omitempty"`
	// Spec names the FA this stream verifies against.
	Spec   string `json:"spec,omitempty"`
	Window int    `json:"window"`
	// Events is the total number of events the stream has consumed.
	Events uint64 `json:"events"`
	// Violations counts the violations detected so far.
	Violations int `json:"violations"`
	// Truncations counts events evicted from violation windows.
	Truncations uint64 `json:"truncations,omitempty"`
	// Accepting reports whether the events consumed since the last
	// violation currently form a word the specification accepts — i.e.
	// finalizing now would be clean.
	Accepting bool `json:"accepting"`
}

// StreamList is the list-streams response, ordered by stream ID.
type StreamList struct {
	Streams []StreamInfo `json:"streams"`
	// NextCursor resumes a paginated listing, as in SessionList.
	NextCursor string `json:"next_cursor,omitempty"`
}

// StreamViolation is one violation surfaced over the stream API. The
// same trace, labeled with the stream's ID, appears as a class in the
// owning session's lattice.
type StreamViolation struct {
	// Offset is the offending event's 0-based position in the stream (or
	// the stream's event count for incomplete finalizations).
	Offset uint64 `json:"offset"`
	// At is the offending event's index within Trace, or the window
	// length when the stream finalized mid-protocol.
	At int `json:"at"`
	// Trace is the windowed counterexample in trace-key form
	// ("e1; e2; ...").
	Trace string `json:"trace"`
	// Truncated reports the window overflowed: Trace is a suffix of the
	// violating behaviour.
	Truncated bool `json:"truncated,omitempty"`
	// Incomplete marks a finalize-time violation (stream ended without
	// reaching an accepting state).
	Incomplete bool `json:"incomplete,omitempty"`
}

// StreamEventsResponse reports one NDJSON batch with partial-progress
// semantics: well-formed lines are applied even when others fail, and
// each failing line comes back as an Error with its line number.
type StreamEventsResponse struct {
	// Accepted is the number of events applied from this batch.
	Accepted int `json:"accepted"`
	// Events is the stream's total consumed count after the batch.
	Events uint64 `json:"events"`
	// Violations lists the violations this batch triggered, in stream
	// order.
	Violations []StreamViolation `json:"violations,omitempty"`
	// NewClasses is how many violation traces started a new class in the
	// owning session's lattice.
	NewClasses int `json:"new_classes,omitempty"`
	// Errors lists the rejected lines (code "bad_request", line set).
	Errors []Error `json:"errors,omitempty"`
}

// CloseStreamResponse reports a stream's finalization.
type CloseStreamResponse struct {
	// Events and ViolationTotal are the stream's lifetime counts.
	Events uint64 `json:"events"`
	// ViolationTotal includes a final incomplete-stream violation, if any.
	ViolationTotal int `json:"violation_total"`
	// Violation is the finalize-time violation when the stream ended
	// mid-protocol; nil when the stream closed clean.
	Violation *StreamViolation `json:"violation,omitempty"`
}

// Error is the uniform failure envelope; every non-2xx response body on
// every v1 endpoint is exactly one of these, and the stream ingest
// endpoint reuses it for per-line errors.
type Error struct {
	// Code is a stable machine-readable slug: "bad_request", "not_found",
	// "session_busy", "deadline", "draining", "validation_failed", or
	// "internal". Codes are API surface — new failures may add codes, but
	// existing codes never change meaning.
	Code string `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
	// Line is the 1-based input line the failure is anchored to, for
	// line-oriented request bodies (traces, FAs, NDJSON events). 0 when
	// the failure has no line.
	Line int `json:"line,omitempty"`
	// Detail carries optional machine-readable context beyond the code,
	// e.g. the subsystem that rejected a line.
	Detail string `json:"detail,omitempty"`
}
