package apiv1

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldens pins the wire shape of every DTO: marshalling a populated value
// must reproduce the checked-in JSON byte for byte. A failing case means
// the v1 contract changed — that needs a v2, not a golden refresh.
var goldens = []struct {
	name string
	v    any
}{
	{"create_session_request", CreateSessionRequest{
		Traces:  "trace v0\n  X = popen()\n  pclose(X)\nend\n",
		RefFA:   "fa ref\nstates 1\nstart 0\naccept 0\nedge 0 0 *()\nend\n",
		Workers: 4,
	}},
	{"create_session_response", CreateSessionResponse{
		SessionID:   "f00dfeedf00dfeedf00dfeedf00dfeed",
		NumTraces:   6,
		NumConcepts: 9,
		Top:         8,
		CacheHit:    true,
	}},
	{"session_info", SessionInfo{
		SessionID:   "f00dfeedf00dfeedf00dfeedf00dfeed",
		NumTraces:   6,
		NumConcepts: 9,
		Labeled:     4,
		Done:        false,
		Focus:       true,
		Parent:      "0123456789abcdef0123456789abcdef",
		Created:     "2026-08-08T12:00:00Z",
		CacheHit:    true,
		Snapshot:    "wal",
		Streams:     2,
	}},
	{"session_list", SessionList{
		Sessions: []SessionInfo{{
			SessionID:   "f00dfeedf00dfeedf00dfeedf00dfeed",
			NumTraces:   6,
			NumConcepts: 9,
			Created:     "2026-08-08T12:00:00Z",
		}},
		NextCursor: "f00dfeedf00dfeedf00dfeedf00dfeed",
	}},
	{"concept", Concept{
		ID:          3,
		State:       "PartlyLabeled",
		NumClasses:  4,
		TotalTraces: 5,
		Similarity:  2,
		Parents:     []int{8},
		Children:    []int{1, 2},
		Transitions: []string{"0 -> 0 on X = popen()", "0 -> 0 on pclose(X)"},
	}},
	{"concept_list", ConceptList{Concepts: []Concept{{
		ID:         8,
		State:      "Unlabeled",
		NumClasses: 6,
		Similarity: 0,
		Parents:    []int{},
		Children:   []int{3, 5},
	}}}},
	{"label_request_concept", LabelRequest{
		Concept:  ptr(3),
		Selector: &Selector{Mode: "label", Label: "good"},
		Label:    "bad",
	}},
	{"label_request_trace", LabelRequest{Trace: ptr(0), Label: "good"}},
	{"label_response", LabelResponse{Labeled: 3}},
	{"trace_list", TraceList{Traces: []TraceClass{
		{Index: 0, Key: "X = popen(); pclose(X)", Count: 2, Label: "good"},
		{Index: 1, Key: "X = popen(); fread(X)", Count: 1},
	}}},
	{"add_traces_request", AddTracesRequest{
		Traces: "trace v7\n  X = popen()\n  fread(X)\n  pclose(X)\nend\n",
	}},
	{"add_traces_response", AddTracesResponse{
		Added:       3,
		NewClasses:  1,
		NumTraces:   7,
		NumConcepts: 11,
	}},
	{"suggest_request", SuggestRequest{Concept: 3}},
	{"suggest_response", SuggestResponse{
		Template: "project X",
		RefFA:    "fa project-X\nstates 2\nstart 0\naccept 1\nend\n",
	}},
	{"focus_request", FocusRequest{
		Concept:  3,
		Selector: &Selector{Mode: "unlabeled"},
		RefFA:    "fa focus\nstates 1\nstart 0\naccept 0\nend\n",
	}},
	{"focus_response", FocusResponse{
		SessionID:   "abadcafeabadcafeabadcafeabadcafe",
		NumTraces:   3,
		NumConcepts: 4,
	}},
	{"end_focus_response", EndFocusResponse{Merged: 2}},
	{"labels_export", LabelsExport{Labels: []LabelLine{
		{Label: "good", Key: "X = popen(); pclose(X)"},
		{Label: "bad", Key: "X = popen(); fread(X)"},
	}}},
	{"lint_request", LintRequest{
		FA:     "fa vacuous\nstates 1\nstart 0\naccept 0\nedge 0 0 f()\nend\n",
		Traces: "trace t0\n  f()\nend\n",
		RefFA:  "fa ref\nstates 2\nstart 0\naccept 1\nedge 0 1 f()\nend\n",
	}},
	{"lint_response", LintResponse{
		Findings: []LintFinding{{
			Spec:    "vacuous",
			Rule:    "vacuous-acceptance",
			Message: "spec accepts every trace over its alphabet",
		}, {
			Spec:    "vacuous",
			Rule:    "language-diff",
			Message: `spec accepts a trace the reference "ref" rejects`,
			Witness: "f(); f()",
		}},
		Clean: false,
	}},
	{"open_stream_request", OpenStreamRequest{
		SessionID: "f00dfeedf00dfeedf00dfeedf00dfeed",
		Spec:      "fa stdio\nstates 2\nstart 0\naccept 0\nedge 0 1 X = popen()\nedge 1 0 pclose(X)\nend\n",
		Window:    64,
	}},
	{"open_stream_response", OpenStreamResponse{
		StreamID:  "deadbeefdeadbeefdeadbeefdeadbeef",
		SessionID: "f00dfeedf00dfeedf00dfeedf00dfeed",
		Window:    64,
		Warnings: []LintFinding{{
			Spec:    "stdio",
			Rule:    "mergeable-states",
			Message: "states s1 and s2 accept the same residual language and can be merged",
		}},
	}},
	{"stream_info", StreamInfo{
		StreamID:    "deadbeefdeadbeefdeadbeefdeadbeef",
		SessionID:   "f00dfeedf00dfeedf00dfeedf00dfeed",
		Created:     "2026-08-08T12:00:00Z",
		Spec:        "stdio",
		Window:      64,
		Events:      1024,
		Violations:  3,
		Truncations: 960,
		Accepting:   true,
	}},
	{"stream_list", StreamList{
		Streams: []StreamInfo{{
			StreamID:  "deadbeefdeadbeefdeadbeefdeadbeef",
			SessionID: "f00dfeedf00dfeedf00dfeedf00dfeed",
			Window:    32,
			Events:    2,
			Accepting: false,
		}},
		NextCursor: "deadbeefdeadbeefdeadbeefdeadbeef",
	}},
	{"stream_events_response", StreamEventsResponse{
		Accepted: 5,
		Events:   7,
		Violations: []StreamViolation{{
			Offset:    6,
			At:        2,
			Trace:     "X = popen(); fread(X); fclose(X)",
			Truncated: true,
		}},
		NewClasses: 1,
		Errors: []Error{{
			Code:    "bad_request",
			Message: `stream: line 3: decoding event line: missing "event" field`,
			Line:    3,
			Detail:  "stream",
		}},
	}},
	{"close_stream_response", CloseStreamResponse{
		Events:         7,
		ViolationTotal: 2,
		Violation: &StreamViolation{
			Offset:     7,
			At:         1,
			Trace:      "X = popen()",
			Incomplete: true,
		},
	}},
	{"error", Error{
		Code:    "validation_failed",
		Message: `trace t3 rejected by reference FA at event 2`,
		Line:    9,
		Detail:  "trace",
	}},
}

func TestGoldens(t *testing.T) {
	for _, g := range goldens {
		t.Run(g.name, func(t *testing.T) {
			got, err := json.MarshalIndent(g.v, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", g.name+".json")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire format drifted from golden %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestGoldenRoundTrip re-decodes each golden into its zero type and
// re-encodes, catching asymmetric tags (a field that marshals but cannot
// unmarshal back to the same bytes).
func TestGoldenRoundTrip(t *testing.T) {
	for _, g := range goldens {
		t.Run(g.name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", g.name+".json"))
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			fresh := newZero(g.v)
			if err := json.Unmarshal(data, fresh); err != nil {
				t.Fatal(err)
			}
			again, err := json.MarshalIndent(fresh, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			again = append(again, '\n')
			if !bytes.Equal(again, data) {
				t.Errorf("decode/encode round trip not stable:\n--- again ---\n%s--- golden ---\n%s", again, data)
			}
		})
	}
}

// newZero returns a pointer to a fresh zero value of v's type, via a
// marshal of the type's nil pointer — no reflection import needed beyond
// encoding/json's own.
func newZero(v any) any {
	switch v.(type) {
	case CreateSessionRequest:
		return &CreateSessionRequest{}
	case CreateSessionResponse:
		return &CreateSessionResponse{}
	case SessionInfo:
		return &SessionInfo{}
	case SessionList:
		return &SessionList{}
	case Concept:
		return &Concept{}
	case ConceptList:
		return &ConceptList{}
	case LabelRequest:
		return &LabelRequest{}
	case LabelResponse:
		return &LabelResponse{}
	case TraceList:
		return &TraceList{}
	case AddTracesRequest:
		return &AddTracesRequest{}
	case AddTracesResponse:
		return &AddTracesResponse{}
	case SuggestRequest:
		return &SuggestRequest{}
	case SuggestResponse:
		return &SuggestResponse{}
	case FocusRequest:
		return &FocusRequest{}
	case FocusResponse:
		return &FocusResponse{}
	case EndFocusResponse:
		return &EndFocusResponse{}
	case LabelsExport:
		return &LabelsExport{}
	case LintRequest:
		return &LintRequest{}
	case LintResponse:
		return &LintResponse{}
	case OpenStreamRequest:
		return &OpenStreamRequest{}
	case OpenStreamResponse:
		return &OpenStreamResponse{}
	case StreamInfo:
		return &StreamInfo{}
	case StreamList:
		return &StreamList{}
	case StreamEventsResponse:
		return &StreamEventsResponse{}
	case CloseStreamResponse:
		return &CloseStreamResponse{}
	case Error:
		return &Error{}
	default:
		panic("add the new DTO to newZero")
	}
}

func ptr(i int) *int { return &i }
