package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/fa"
	"repro/internal/server/apiv1"
	"repro/internal/speclint"
	"repro/internal/trace"
)

// handleLint runs speclint over a posted specification FA: the
// structural and semantic rules always, the alphabet-mismatch rule when
// a trace corpus rides along, and a language diff with concrete witness
// traces when a reference FA does. It is stateless — no session is
// created — so spec authors can vet an automaton before spending a
// lattice build on it.
func (s *Server) handleLint(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req apiv1.LintRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	spec, err := fa.Read(strings.NewReader(req.FA))
	if err != nil {
		return badRequest(fmt.Errorf("fa: %w", err))
	}
	findings := speclint.LintAll(spec)
	if req.Traces != "" {
		set, err := trace.Read(strings.NewReader(req.Traces))
		if err != nil {
			return badRequest(fmt.Errorf("traces: %w", err))
		}
		findings = append(findings, speclint.AlphabetFindings(spec, set.Representatives())...)
	}
	if req.RefFA != "" {
		ref, err := fa.Read(strings.NewReader(req.RefFA))
		if err != nil {
			return badRequest(fmt.Errorf("ref_fa: %w", err))
		}
		diff, err := speclint.Diff(spec, ref)
		if err != nil {
			return badRequest(fmt.Errorf("diff: %w", err))
		}
		findings = append(findings, diff...)
	}
	resp := apiv1.LintResponse{
		Findings: lintFindings(findings),
		Clean:    len(findings) == 0,
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// lintFindings converts speclint findings into their wire form.
func lintFindings(findings []speclint.Finding) []apiv1.LintFinding {
	out := make([]apiv1.LintFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, apiv1.LintFinding{
			Spec: f.Spec, Rule: f.Rule, Message: f.Message, Witness: f.Witness,
		})
	}
	return out
}
