package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/fa"
	"repro/internal/server/apiv1"
	"repro/internal/speclint"
	"repro/internal/trace"
)

// handleLint runs speclint over a posted specification FA, optionally
// with a trace corpus for alphabet checking. It is stateless — no
// session is created — so spec authors can vet an automaton before
// spending a lattice build on it.
func (s *Server) handleLint(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	var req apiv1.LintRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	spec, err := fa.Read(strings.NewReader(req.FA))
	if err != nil {
		return badRequest(fmt.Errorf("fa: %w", err))
	}
	var findings []speclint.Finding
	if req.Traces != "" {
		set, err := trace.Read(strings.NewReader(req.Traces))
		if err != nil {
			return badRequest(fmt.Errorf("traces: %w", err))
		}
		findings = speclint.LintWithTraces(spec, set.Representatives())
	} else {
		findings = speclint.Lint(spec)
	}
	resp := apiv1.LintResponse{
		Findings: make([]apiv1.LintFinding, 0, len(findings)),
		Clean:    len(findings) == 0,
	}
	for _, f := range findings {
		resp.Findings = append(resp.Findings, apiv1.LintFinding{
			Spec: f.Spec, Rule: f.Rule, Message: f.Message,
		})
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}
