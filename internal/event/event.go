// Package event models the program events that temporal specifications talk
// about.
//
// The paper's specifications are finite automata whose transition labels are
// parameterized call events such as
//
//	X = fopen()     a call to fopen whose return value is bound to X
//	fclose(X)       a call to fclose taking X as an argument
//	Y = XCreateGC(D)
//
// Two representations are used:
//
//   - Event is the symbolic form appearing in specifications and in scenario
//     traces, where arguments are variable names (X, Y, ...).
//   - Concrete is the form appearing in whole-program execution traces, where
//     arguments are runtime object identities. The Strauss front end
//     (internal/mine) abstracts Concrete events into Events by renaming
//     object identities to canonical variable names.
package event

import (
	"fmt"
	"sort"
	"strings"
)

// Event is a symbolic program event: an operation with an optional name bound
// to its result and a (possibly empty) list of argument names.
//
// The zero Event is invalid; construct events with Call or Parse.
type Event struct {
	// Op is the operation name, e.g. "fopen" or "XtAddTimeOut".
	Op string
	// Def is the variable bound to the operation's result, or "" when the
	// result is unused or the operation returns nothing.
	Def string
	// Uses lists the variables passed as arguments, in call order.
	Uses []string
}

// Call constructs an event with no bound result: op(uses...).
func Call(op string, uses ...string) Event {
	return Event{Op: op, Uses: uses}
}

// Bind constructs an event whose result is bound to def: def = op(uses...).
func Bind(def, op string, uses ...string) Event {
	return Event{Op: op, Def: def, Uses: uses}
}

// String renders the event in the paper's syntax: "X = fopen()" or
// "fclose(X)". The rendering is canonical: Parse(e.String()) == e for every
// valid event, and two events are equal iff their strings are equal.
func (e Event) String() string {
	return string(e.AppendString(make([]byte, 0, 24)))
}

// Equal reports whether two events are identical.
func (e Event) Equal(f Event) bool {
	if e.Op != f.Op || e.Def != f.Def || len(e.Uses) != len(f.Uses) {
		return false
	}
	for i := range e.Uses {
		if e.Uses[i] != f.Uses[i] {
			return false
		}
	}
	return true
}

// Names returns the sorted set of distinct variable names the event mentions.
func (e Event) Names() []string {
	set := map[string]bool{}
	if e.Def != "" {
		set[e.Def] = true
	}
	for _, u := range e.Uses {
		if u != "" {
			set[u] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Mentions reports whether the event defines or uses the given name.
func (e Event) Mentions(name string) bool {
	if name == "" {
		return false
	}
	if e.Def == name {
		return true
	}
	for _, u := range e.Uses {
		if u == name {
			return true
		}
	}
	return false
}

// Rename returns a copy of the event with every variable name mapped through
// subst; names absent from subst are kept unchanged.
func (e Event) Rename(subst map[string]string) Event {
	out := Event{Op: e.Op, Def: e.Def}
	if n, ok := subst[e.Def]; ok {
		out.Def = n
	}
	if len(e.Uses) > 0 {
		out.Uses = make([]string, len(e.Uses))
		for i, u := range e.Uses {
			if n, ok := subst[u]; ok {
				out.Uses[i] = n
			} else {
				out.Uses[i] = u
			}
		}
	}
	return out
}

// Parse parses the canonical rendering produced by String:
//
//	[def =] op ( [use {, use}] )
//
// Whitespace around tokens is ignored. Parse returns an error for malformed
// input rather than guessing.
func Parse(s string) (Event, error) {
	var e Event
	rest := strings.TrimSpace(s)
	if eq := strings.Index(rest, "="); eq >= 0 {
		def := strings.TrimSpace(rest[:eq])
		if def == "" || strings.ContainsAny(def, "(), \t\n\r") {
			return e, fmt.Errorf("event: bad result binding in %q", s)
		}
		e.Def = def
		rest = strings.TrimSpace(rest[eq+1:])
	}
	open := strings.Index(rest, "(")
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return e, fmt.Errorf("event: missing argument list in %q", s)
	}
	op := strings.TrimSpace(rest[:open])
	if op == "" || strings.ContainsAny(op, "(), \t\n\r") {
		return e, fmt.Errorf("event: bad operation name in %q", s)
	}
	e.Op = op
	args := strings.TrimSpace(rest[open+1 : len(rest)-1])
	if args != "" {
		for _, a := range strings.Split(args, ",") {
			a = strings.TrimSpace(a)
			if a == "" || strings.ContainsAny(a, "() \t\n\r") {
				return e, fmt.Errorf("event: bad argument in %q", s)
			}
			e.Uses = append(e.Uses, a)
		}
	}
	return e, nil
}

// MustParse is Parse that panics on error; it is intended for literals in
// tests and spec tables.
func MustParse(s string) Event {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

// ParseAll parses a list of events, one per element.
func ParseAll(ss ...string) ([]Event, error) {
	out := make([]Event, 0, len(ss))
	for _, s := range ss {
		e, err := Parse(s)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// ObjID identifies a runtime object in a concrete execution trace. Zero
// means "no object" (e.g. an unused return value).
type ObjID int

// Concrete is an event from a whole-program execution trace: the operation
// together with the runtime identities of its result and arguments.
type Concrete struct {
	Op   string
	Def  ObjID
	Uses []ObjID
}

// String renders the concrete event with object identities as #n.
func (c Concrete) String() string {
	var b strings.Builder
	if c.Def != 0 {
		fmt.Fprintf(&b, "#%d = ", int(c.Def))
	}
	b.WriteString(c.Op)
	b.WriteByte('(')
	for i, u := range c.Uses {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "#%d", int(u))
	}
	b.WriteByte(')')
	return b.String()
}

// Objects returns the distinct non-zero object identities the event touches,
// in first-appearance order (result first).
func (c Concrete) Objects() []ObjID {
	seen := map[ObjID]bool{}
	var out []ObjID
	add := func(id ObjID) {
		if id != 0 && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	add(c.Def)
	for _, u := range c.Uses {
		add(u)
	}
	return out
}

// Touches reports whether the event defines or uses the given object.
func (c Concrete) Touches(id ObjID) bool {
	if id == 0 {
		return false
	}
	if c.Def == id {
		return true
	}
	for _, u := range c.Uses {
		if u == id {
			return true
		}
	}
	return false
}

// Abstract converts the concrete event to a symbolic one by renaming each
// object identity through names; identities missing from names are rendered
// as "_" (an anonymous, ignored object).
func (c Concrete) Abstract(names map[ObjID]string) Event {
	name := func(id ObjID) string {
		if id == 0 {
			return ""
		}
		if n, ok := names[id]; ok {
			return n
		}
		return "_"
	}
	e := Event{Op: c.Op, Def: name(c.Def)}
	if len(c.Uses) > 0 {
		e.Uses = make([]string, len(c.Uses))
		for i, u := range c.Uses {
			e.Uses[i] = name(u)
		}
	}
	return e
}
