package event

import "testing"

// FuzzParse checks that Parse never panics and that successful parses
// round-trip through the canonical rendering.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"X = fopen()",
		"fclose(X)",
		"Y = XCreateGC(D, W)",
		"XFlush()",
		"*()",
		"",
		"= f()",
		"f(a,,b)",
		"f(((",
		"a = b = c()",
		"  spaced   (  x , y )  ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		e, err := Parse(s)
		if err != nil {
			return
		}
		again, err := Parse(e.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", e.String(), s, err)
		}
		if !again.Equal(e) {
			t.Fatalf("round trip changed %q -> %q", e.String(), again.String())
		}
	})
}
