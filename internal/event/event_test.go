package event

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStringForms(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Bind("X", "fopen"), "X = fopen()"},
		{Call("fclose", "X"), "fclose(X)"},
		{Bind("Y", "XCreateGC", "D", "W"), "Y = XCreateGC(D, W)"},
		{Call("XFlush"), "XFlush()"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"X = fopen()",
		"fclose(X)",
		"Y = XCreateGC(D, W)",
		"XFlush()",
		"  X =  popen( )  ",
		"g(a, b, c)",
	} {
		e, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		again, err := Parse(e.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", e.String(), err)
		}
		if !e.Equal(again) {
			t.Errorf("round trip changed %q -> %q", s, again)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"fopen",      // no argument list
		"= fopen()",  // empty binding
		"X = ()",     // no op
		"f(a,,b)",    // empty argument
		"x y = f()",  // space in binding
		"f(a b)",     // space in argument
		"f(a))",      // op contains ')' after split? malformed
		"(a)",        // missing op
		"X = fopen(", // unterminated
		"fclose(X",   // unterminated
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse("not an event")
}

func TestParseAll(t *testing.T) {
	es, err := ParseAll("X = fopen()", "fclose(X)")
	if err != nil || len(es) != 2 || es[0].Op != "fopen" || es[1].Op != "fclose" {
		t.Fatalf("ParseAll = %v, %v", es, err)
	}
	if _, err := ParseAll("X = fopen()", "bogus"); err == nil {
		t.Fatal("ParseAll accepted bad event")
	}
}

func TestNamesAndMentions(t *testing.T) {
	e := MustParse("Y = draw(X, Y, Z)")
	if got := e.Names(); strings.Join(got, ",") != "X,Y,Z" {
		t.Errorf("Names = %v", got)
	}
	for _, n := range []string{"X", "Y", "Z"} {
		if !e.Mentions(n) {
			t.Errorf("Mentions(%q) = false", n)
		}
	}
	if e.Mentions("W") || e.Mentions("") {
		t.Error("Mentions matched absent name")
	}
	if got := Call("XFlush").Names(); len(got) != 0 {
		t.Errorf("Names of nullary call = %v", got)
	}
}

func TestRename(t *testing.T) {
	e := MustParse("Y = draw(X, Y)")
	r := e.Rename(map[string]string{"Y": "A", "X": "B"})
	if r.String() != "A = draw(B, A)" {
		t.Errorf("Rename = %q", r)
	}
	// Unmapped names survive; original untouched.
	r2 := e.Rename(map[string]string{"X": "Q"})
	if r2.String() != "Y = draw(Q, Y)" || e.String() != "Y = draw(X, Y)" {
		t.Errorf("Rename partial = %q, orig = %q", r2, e)
	}
}

func TestConcrete(t *testing.T) {
	c := Concrete{Op: "XCreateGC", Def: 7, Uses: []ObjID{3, 7}}
	if got := c.String(); got != "#7 = XCreateGC(#3, #7)" {
		t.Errorf("String = %q", got)
	}
	objs := c.Objects()
	if len(objs) != 2 || objs[0] != 7 || objs[1] != 3 {
		t.Errorf("Objects = %v", objs)
	}
	if !c.Touches(3) || !c.Touches(7) || c.Touches(9) || c.Touches(0) {
		t.Error("Touches wrong")
	}
}

func TestAbstract(t *testing.T) {
	c := Concrete{Op: "XCreateGC", Def: 7, Uses: []ObjID{3, 9}}
	e := c.Abstract(map[ObjID]string{7: "G", 3: "D"})
	if e.String() != "G = XCreateGC(D, _)" {
		t.Errorf("Abstract = %q", e)
	}
	// No result object.
	c2 := Concrete{Op: "XFlush", Uses: []ObjID{3}}
	if got := c2.Abstract(map[ObjID]string{3: "D"}).String(); got != "XFlush(D)" {
		t.Errorf("Abstract = %q", got)
	}
}

// Property: String/Parse is a bijection on generated events.
func TestQuickStringParse(t *testing.T) {
	names := []string{"X", "Y", "Z", "D", "W"}
	ops := []string{"fopen", "fclose", "popen", "XCreateGC", "XFreeGC"}
	err := quick.Check(func(opIdx, defIdx uint8, useIdxs []uint8) bool {
		e := Event{Op: ops[int(opIdx)%len(ops)]}
		if defIdx%2 == 0 {
			e.Def = names[int(defIdx)%len(names)]
		}
		for i, u := range useIdxs {
			if i >= 4 {
				break
			}
			e.Uses = append(e.Uses, names[int(u)%len(names)])
		}
		got, err := Parse(e.String())
		return err == nil && got.Equal(e)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
