package event

// AppendString appends the event's canonical rendering (exactly what String
// returns) to dst and returns the extended slice. Hot paths that need an
// event's rendering as a lookup key can reuse one buffer across calls and
// index maps with string(buf), which the compiler optimizes to an
// allocation-free lookup.
func (e Event) AppendString(dst []byte) []byte {
	if e.Def != "" {
		dst = append(dst, e.Def...)
		dst = append(dst, " = "...)
	}
	dst = append(dst, e.Op...)
	dst = append(dst, '(')
	for i, u := range e.Uses {
		if i > 0 {
			dst = append(dst, ", "...)
		}
		dst = append(dst, u...)
	}
	dst = append(dst, ')')
	return dst
}

// Interner assigns dense integer symbols to events, identified by their
// canonical rendering: two events map to the same symbol iff their String
// renderings are equal. Compiled automaton simulators use an Interner to
// replace per-step string comparison of transition labels with integer
// symbol IDs.
//
// An Interner is safe for concurrent readers once interning is complete;
// Intern itself must not race with other calls.
type Interner struct {
	ids    map[string]int
	events []Event
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int)}
}

// Intern returns the symbol for e, assigning the next dense ID (0, 1, ...)
// on first sight.
func (in *Interner) Intern(e Event) int {
	key := e.String()
	if id, ok := in.ids[key]; ok {
		return id
	}
	id := len(in.events)
	in.ids[key] = id
	in.events = append(in.events, e)
	return id
}

// Lookup returns the symbol for e, or ok=false if e was never interned.
func (in *Interner) Lookup(e Event) (id int, ok bool) {
	id, ok = in.ids[e.String()]
	return id, ok
}

// LookupKey is Lookup keyed by the bytes of the event's canonical rendering
// (see AppendString). The []byte-keyed map access compiles to an
// allocation-free lookup, so simulators can map trace events to symbols
// with zero steady-state allocations.
func (in *Interner) LookupKey(key []byte) (id int, ok bool) {
	id, ok = in.ids[string(key)]
	return id, ok
}

// Len returns the number of distinct symbols interned.
func (in *Interner) Len() int { return len(in.events) }

// Event returns the event assigned symbol id.
func (in *Interner) Event(id int) Event { return in.events[id] }
