// Package xtrace generates synthetic X11-style workloads: whole-program
// execution traces and scenario-trace multisets drawn from per-specification
// usage models.
//
// The paper's evaluation instruments 72 X11 programs and collects 90 full
// execution traces; those programs and traces are unavailable, so this
// package substitutes stochastic models (see DESIGN.md): each specification
// gets a set of scenario templates — correct protocol instances and the
// error modes the paper reports (leaks, mismatched releases, double frees,
// races) — with relative weights and bounded repetition. The debugging
// method only ever sees the resulting multiset of scenario traces, so a
// generator that reproduces the kinds and proportions of scenarios
// exercises the same code paths end to end.
//
// Generation is deterministic for a given seed.
package xtrace

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/event"
	"repro/internal/mine"
	"repro/internal/trace"
)

// Event is one step of a scenario template: a symbolic event over scenario
// names (X, Y, ...) with repetition bounds. Min = Max = 1 is a plain event;
// Min = 0 makes the event optional.
type Event struct {
	// Sym is the event in event.Parse syntax, e.g. "fread(X)".
	Sym string
	// Min and Max bound the number of consecutive occurrences (inclusive).
	Min, Max int
}

// Ev returns a template event occurring exactly once.
func Ev(sym string) Event { return Event{Sym: sym, Min: 1, Max: 1} }

// Rep returns a template event occurring between min and max times.
func Rep(sym string, min, max int) Event { return Event{Sym: sym, Min: min, Max: max} }

// Opt returns a template event occurring zero or one time.
func Opt(sym string) Event { return Event{Sym: sym, Min: 0, Max: 1} }

// BugKind classifies an erroneous scenario, following the paper's census
// of the 199 bugs the debugged specifications found: "resource leaks,
// potential races, and performance bugs".
type BugKind string

const (
	// NotABug marks good scenarios.
	NotABug BugKind = ""
	// Leak: a resource acquired and never released.
	Leak BugKind = "leak"
	// Race: an ordering the protocol forbids (e.g. removing a timeout
	// after it fired).
	Race BugKind = "race"
	// Perf: a correctness-preserving but wasteful pattern (e.g. repeated
	// atom interning).
	Perf BugKind = "perf"
	// Misuse: any other protocol violation (double frees, mismatched or
	// premature releases, use-after-free).
	Misuse BugKind = "misuse"
)

// Scenario is a usage pattern: a template, whether it is correct behaviour
// (belongs in the debugged specification), and its relative weight in the
// workload.
type Scenario struct {
	// Name identifies the pattern, e.g. "ok" or "double-free".
	Name string
	// Good marks scenarios the correct specification should accept; !Good
	// scenarios are program errors.
	Good bool
	// Kind classifies erroneous scenarios; it must be NotABug for good
	// ones and set for bad ones.
	Kind BugKind
	// Weight is the relative sampling frequency (≥ 1).
	Weight int
	// Events is the template.
	Events []Event
}

// Model is the workload model of one specification.
type Model struct {
	// Scenarios are the usage patterns; at least one must be Good.
	Scenarios []Scenario
	// Noise lists object-free operations (e.g. "XFlush()") interleaved into
	// whole-program runs; noise never enters scenario traces.
	Noise []string
}

// Validate checks the model for the mistakes that would poison experiments:
// unparsable templates, non-positive weights, and good/bad ambiguity (a
// trace expansion reachable from both a good and a bad template).
func (m Model) Validate() error {
	if len(m.Scenarios) == 0 {
		return fmt.Errorf("xtrace: model has no scenarios")
	}
	hasGood := false
	for _, sc := range m.Scenarios {
		if sc.Good {
			hasGood = true
			if sc.Kind != NotABug {
				return fmt.Errorf("xtrace: good scenario %q carries bug kind %q", sc.Name, sc.Kind)
			}
		} else if sc.Kind == NotABug {
			return fmt.Errorf("xtrace: bad scenario %q lacks a bug kind", sc.Name)
		}
		if sc.Weight <= 0 {
			return fmt.Errorf("xtrace: scenario %q has weight %d", sc.Name, sc.Weight)
		}
		if len(sc.Events) == 0 {
			return fmt.Errorf("xtrace: scenario %q is empty", sc.Name)
		}
		for _, ev := range sc.Events {
			if _, err := event.Parse(ev.Sym); err != nil {
				return fmt.Errorf("xtrace: scenario %q: %v", sc.Name, err)
			}
			if ev.Min < 0 || ev.Max < ev.Min {
				return fmt.Errorf("xtrace: scenario %q: bad repetition [%d,%d] for %s", sc.Name, ev.Min, ev.Max, ev.Sym)
			}
		}
	}
	if !hasGood {
		return fmt.Errorf("xtrace: model has no good scenario")
	}
	for _, n := range m.Noise {
		e, err := event.Parse(n)
		if err != nil {
			return fmt.Errorf("xtrace: noise: %v", err)
		}
		if e.Def != "" || len(e.Uses) != 0 {
			return fmt.Errorf("xtrace: noise event %q must not touch objects", n)
		}
	}
	return m.checkAmbiguity()
}

// checkAmbiguity verifies no short expansion is generable from both a good
// and a bad template (which would make the reference labeling ill-defined).
func (m Model) checkAmbiguity() error {
	seen := map[string]string{} // expansion key -> scenario name
	good := map[string]bool{}
	for _, sc := range m.Scenarios {
		for _, key := range sc.boundedExpansions(64) {
			if prev, ok := seen[key]; ok && good[key] != sc.Good {
				return fmt.Errorf("xtrace: trace %q generable from %q (good=%v) and %q (good=%v)",
					key, prev, good[key], sc.Name, sc.Good)
			}
			seen[key] = sc.Name
			good[key] = sc.Good
		}
	}
	return nil
}

// boundedExpansions enumerates up to limit distinct expansions of the
// template, capping each repetition at min+2 — enough to catch overlaps
// without blowing up.
func (sc Scenario) boundedExpansions(limit int) []string {
	return sc.expansions(limit, true)
}

// Expansions enumerates up to limit distinct expansions of the scenario
// template with its full repetition ranges; experiments use it to map
// generated traces back to their generating scenario.
func Expansions(sc Scenario, limit int) []string {
	return sc.expansions(limit, false)
}

func (sc Scenario) expansions(limit int, capRepeats bool) []string {
	expansions := []string{""}
	for _, ev := range sc.Events {
		max := ev.Max
		if capRepeats && max > ev.Min+2 {
			max = ev.Min + 2
		}
		var next []string
		for _, prefix := range expansions {
			for n := ev.Min; n <= max; n++ {
				s := prefix
				for i := 0; i < n; i++ {
					if s != "" {
						s += "; "
					}
					s += event.MustParse(ev.Sym).String()
				}
				next = append(next, s)
			}
			if len(next) > limit {
				return next[:limit]
			}
		}
		expansions = next
	}
	return expansions
}

// expand instantiates the template with concrete repetition counts.
func (sc Scenario) expand(rng *rand.Rand) []event.Event {
	var out []event.Event
	for _, ev := range sc.Events {
		n := ev.Min
		if ev.Max > ev.Min {
			n += rng.Intn(ev.Max - ev.Min + 1)
		}
		e := event.MustParse(ev.Sym)
		for i := 0; i < n; i++ {
			out = append(out, e)
		}
	}
	return out
}

// pick samples a scenario index by weight.
func (m Model) pick(rng *rand.Rand) int {
	total := 0
	for _, sc := range m.Scenarios {
		total += sc.Weight
	}
	r := rng.Intn(total)
	for i, sc := range m.Scenarios {
		r -= sc.Weight
		if r < 0 {
			return i
		}
	}
	return len(m.Scenarios) - 1
}

// Generator draws workloads from a model.
type Generator struct {
	Model Model
	Seed  int64
}

// Labeling maps a scenario-trace key (trace.Trace.Key) to whether the trace
// is correct. It is the ground truth against which labeling strategies are
// costed.
type Labeling map[string]bool

// ScenarioSet generates n scenario traces directly (as the Strauss front
// end would extract them), returning the multiset and the ground-truth
// labeling of every generated class.
func (g Generator) ScenarioSet(n int) (*trace.Set, Labeling) {
	rng := rand.New(rand.NewSource(g.Seed))
	set := &trace.Set{}
	labels := Labeling{}
	for i := 0; i < n; i++ {
		sc := g.Model.Scenarios[g.Model.pick(rng)]
		tr := trace.Trace{ID: fmt.Sprintf("%s#%d", sc.Name, i), Events: sc.expand(rng)}
		set.Add(tr)
		labels[tr.Key()] = sc.Good
	}
	return set, labels
}

// Runs generates whole-program runs: each run interleaves several scenario
// instances over distinct objects, with noise events sprinkled in. The
// returned labeling covers the scenario traces a front end with
// FollowDerived should extract.
func (g Generator) Runs(numRuns, scenariosPerRun int) ([]mine.Run, Labeling) {
	rng := rand.New(rand.NewSource(g.Seed))
	labels := Labeling{}
	runs := make([]mine.Run, 0, numRuns)
	nextObj := event.ObjID(1)
	for r := 0; r < numRuns; r++ {
		type pending struct {
			events []event.Concrete
			next   int
		}
		var lanes []*pending
		for s := 0; s < scenariosPerRun; s++ {
			sc := g.Model.Scenarios[g.Model.pick(rng)]
			symbolic := sc.expand(rng)
			labels[trace.Trace{Events: symbolic}.Key()] = sc.Good
			concrete, used := concretize(symbolic, nextObj)
			nextObj += event.ObjID(used)
			lanes = append(lanes, &pending{events: concrete})
		}
		var all []event.Concrete
		for {
			var ready []*pending
			for _, l := range lanes {
				if l.next < len(l.events) {
					ready = append(ready, l)
				}
			}
			if len(ready) == 0 {
				break
			}
			if len(g.Model.Noise) > 0 && rng.Intn(4) == 0 {
				all = append(all, event.Concrete{Op: event.MustParse(g.Model.Noise[rng.Intn(len(g.Model.Noise))]).Op})
			}
			lane := ready[rng.Intn(len(ready))]
			all = append(all, lane.events[lane.next])
			lane.next++
		}
		runs = append(runs, mine.Run{ID: fmt.Sprintf("sim:run%d", r), Events: all})
	}
	return runs, labels
}

// concretize maps the symbolic events to concrete ones with fresh object
// identities per scenario name; it returns the events and how many objects
// were allocated.
func concretize(symbolic []event.Event, base event.ObjID) ([]event.Concrete, int) {
	objs := map[string]event.ObjID{}
	alloc := func(name string) event.ObjID {
		if name == "" {
			return 0
		}
		if id, ok := objs[name]; ok {
			return id
		}
		id := base + event.ObjID(len(objs))
		objs[name] = id
		return id
	}
	out := make([]event.Concrete, len(symbolic))
	for i, e := range symbolic {
		c := event.Concrete{Op: e.Op, Def: alloc(e.Def)}
		for _, u := range e.Uses {
			c.Uses = append(c.Uses, alloc(u))
		}
		out[i] = c
	}
	return out, len(objs)
}

// SeedOps returns the operations that define the first-mentioned name of
// each scenario — the natural front-end seeds for the model.
func (m Model) SeedOps() []string {
	seen := map[string]bool{}
	var out []string
	for _, sc := range m.Scenarios {
		e := event.MustParse(sc.Events[0].Sym)
		if e.Def != "" && !seen[e.Op] {
			seen[e.Op] = true
			out = append(out, e.Op)
		}
	}
	return out
}

// Describe renders the model for documentation: one line per scenario.
func (m Model) Describe() string {
	var b strings.Builder
	for _, sc := range m.Scenarios {
		status := "good"
		if !sc.Good {
			status = "bad "
		}
		fmt.Fprintf(&b, "  [%s w=%-2d] %s:", status, sc.Weight, sc.Name)
		for _, ev := range sc.Events {
			if ev.Min == 1 && ev.Max == 1 {
				fmt.Fprintf(&b, " %s", ev.Sym)
			} else {
				fmt.Fprintf(&b, " %s{%d,%d}", ev.Sym, ev.Min, ev.Max)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
