package xtrace

import (
	"strings"
	"testing"

	"repro/internal/mine"
	"repro/internal/trace"
)

func model() Model {
	return Model{
		Scenarios: []Scenario{
			{Name: "ok", Good: true, Weight: 8, Events: []Event{
				Ev("X = fopen()"),
				Rep("fread(X)", 0, 2),
				Ev("fclose(X)"),
			}},
			{Name: "leak", Good: false, Kind: Leak, Weight: 2, Events: []Event{
				Ev("X = fopen()"),
				Rep("fread(X)", 1, 2),
			}},
		},
		Noise: []string{"puts()"},
	}
}

func TestValidate(t *testing.T) {
	if err := model().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := model()
	bad.Scenarios[0].Weight = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero weight accepted")
	}
	bad = model()
	bad.Scenarios[0].Events[0].Sym = "not an event"
	if err := bad.Validate(); err == nil {
		t.Error("unparsable template accepted")
	}
	bad = model()
	bad.Scenarios = bad.Scenarios[1:] // no good scenario
	if err := bad.Validate(); err == nil {
		t.Error("all-bad model accepted")
	}
	bad = model()
	bad.Noise = []string{"touch(X)"}
	if err := bad.Validate(); err == nil {
		t.Error("object-touching noise accepted")
	}
	bad = model()
	bad.Scenarios[0].Events[1].Max = 0 // max < min
	bad.Scenarios[0].Events[1].Min = 2
	if err := bad.Validate(); err == nil {
		t.Error("inverted repetition bounds accepted")
	}
	bad = model()
	bad.Scenarios[1].Kind = NotABug // bad scenario without a bug kind
	if err := bad.Validate(); err == nil {
		t.Error("bad scenario without bug kind accepted")
	}
	bad = model()
	bad.Scenarios[0].Kind = Leak // good scenario with a bug kind
	if err := bad.Validate(); err == nil {
		t.Error("good scenario with bug kind accepted")
	}
}

func TestValidateAmbiguity(t *testing.T) {
	m := Model{Scenarios: []Scenario{
		{Name: "good", Good: true, Weight: 1, Events: []Event{Ev("X = f()"), Rep("g(X)", 0, 2)}},
		{Name: "bad", Good: false, Kind: Misuse, Weight: 1, Events: []Event{Ev("X = f()"), Ev("g(X)")}},
	}}
	if err := m.Validate(); err == nil {
		t.Fatal("overlapping good/bad templates accepted")
	}
}

func TestScenarioSetDeterministic(t *testing.T) {
	g := Generator{Model: model(), Seed: 42}
	a, la := g.ScenarioSet(100)
	b, lb := g.ScenarioSet(100)
	if a.Total() != 100 || b.Total() != 100 || a.NumClasses() != b.NumClasses() {
		t.Fatalf("non-deterministic generation: %d vs %d classes", a.NumClasses(), b.NumClasses())
	}
	for i := range a.Classes() {
		if a.Class(i).Rep.Key() != b.Class(i).Rep.Key() {
			t.Fatalf("class %d differs between runs", i)
		}
	}
	if len(la) != len(lb) {
		t.Fatal("labelings differ")
	}
	// Different seeds give (almost surely) different draws.
	c, _ := Generator{Model: model(), Seed: 43}.ScenarioSet(100)
	same := true
	for i := 0; i < a.NumClasses() && i < c.NumClasses(); i++ {
		if a.Class(i).Count != c.Class(i).Count {
			same = false
		}
	}
	if a.NumClasses() == c.NumClasses() && same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestScenarioSetLabelsComplete(t *testing.T) {
	g := Generator{Model: model(), Seed: 7}
	set, labels := g.ScenarioSet(200)
	good, bad := 0, 0
	for _, c := range set.Classes() {
		isGood, ok := labels[c.Rep.Key()]
		if !ok {
			t.Fatalf("class %q unlabeled", c.Rep.Key())
		}
		if isGood {
			good += c.Count
		} else {
			bad += c.Count
		}
	}
	if good+bad != 200 {
		t.Fatalf("labels cover %d of 200", good+bad)
	}
	// Weight 8:2 — the majority must be good.
	if good <= bad {
		t.Errorf("good=%d bad=%d; weights not respected", good, bad)
	}
}

func TestWeightsRespected(t *testing.T) {
	g := Generator{Model: model(), Seed: 11}
	set, labels := g.ScenarioSet(2000)
	bad := 0
	for _, c := range set.Classes() {
		if !labels[c.Rep.Key()] {
			bad += c.Count
		}
	}
	// Expected 20%; allow generous slack.
	if bad < 250 || bad > 550 {
		t.Errorf("bad fraction %d/2000 far from weight 2/10", bad)
	}
}

func TestRunsRoundTripThroughFrontEnd(t *testing.T) {
	// The crucial generator/front-end contract: extracting scenarios from
	// generated whole-program runs recovers exactly the labeled symbolic
	// traces, despite interleaving and noise.
	g := Generator{Model: model(), Seed: 5}
	runs, labels := g.Runs(20, 4)
	if len(runs) != 20 {
		t.Fatalf("got %d runs", len(runs))
	}
	fe := mine.FrontEnd{Seeds: g.Model.SeedOps(), FollowDerived: true}
	set := fe.ExtractAll(runs)
	if set.Total() != 20*4 {
		t.Fatalf("extracted %d scenarios, want 80", set.Total())
	}
	for _, c := range set.Classes() {
		if _, ok := labels[c.Rep.Key()]; !ok {
			t.Errorf("extracted scenario %q not in generated labeling", c.Rep.Key())
		}
	}
}

func TestRunsContainNoise(t *testing.T) {
	g := Generator{Model: model(), Seed: 3}
	runs, _ := g.Runs(10, 3)
	foundNoise := false
	for _, r := range runs {
		for _, e := range r.Events {
			if e.Op == "puts" {
				foundNoise = true
			}
		}
	}
	if !foundNoise {
		t.Error("no noise events generated")
	}
}

func TestRunsDistinctObjects(t *testing.T) {
	// Scenario instances must use disjoint object identities, or the front
	// end would merge unrelated lifecycles.
	g := Generator{Model: model(), Seed: 9}
	runs, _ := g.Runs(5, 5)
	seenDef := map[int]bool{}
	for _, r := range runs {
		for _, e := range r.Events {
			if e.Def != 0 {
				if seenDef[int(e.Def)] {
					t.Fatalf("object #%d defined twice", int(e.Def))
				}
				seenDef[int(e.Def)] = true
			}
		}
	}
}

func TestSeedOpsAndDescribe(t *testing.T) {
	m := model()
	ops := m.SeedOps()
	if len(ops) != 1 || ops[0] != "fopen" {
		t.Errorf("SeedOps = %v", ops)
	}
	desc := m.Describe()
	for _, want := range []string{"ok", "leak", "good", "bad", "fread(X){0,2}"} {
		if !containsStr(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
}

func TestMultiNameScenario(t *testing.T) {
	m := Model{Scenarios: []Scenario{
		{Name: "pair", Good: true, Weight: 1, Events: []Event{
			Ev("X = create()"),
			Ev("Y = copy(X)"),
			Ev("merge(X, Y)"),
			Ev("destroy(Y)"),
			Ev("destroy(X)"),
		}},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	g := Generator{Model: m, Seed: 2}
	runs, labels := g.Runs(3, 2)
	fe := mine.FrontEnd{Seeds: []string{"create"}, FollowDerived: true}
	set := fe.ExtractAll(runs)
	want := trace.ParseEvents("", "X = create()", "Y = copy(X)", "merge(X, Y)", "destroy(Y)", "destroy(X)").Key()
	if set.NumClasses() != 1 || set.Class(0).Rep.Key() != want {
		t.Fatalf("multi-name extraction = %q", set.Class(0).Rep.Key())
	}
	if !labels[want] {
		t.Error("labeling missing multi-name trace")
	}
}

func containsStr(s, sub string) bool { return strings.Contains(s, sub) }
