// Stream-workload generation: scripted per-stream event sequences for
// driving the online checker (internal/stream) and cabled's /v1/streams
// endpoints. A stream script is a concatenation of scenario instances
// drawn from the model by weight, so a looping specification (one whose
// accept state is also its start) sees back-to-back protocol instances
// the way a long-lived production stream would.
//
// Ground truth is looser online than in batch: a misuse scenario fires a
// violation at its offending event, but a leak only surfaces when the
// next instance begins (the acquire finds no surviving run) or when the
// stream finalizes mid-protocol — and the checker's post-violation reset
// can then reject the remainder of that instance too. Scripts therefore
// carry the count of erroneous instances as a lower-bound expectation,
// not an exact violation count.
package xtrace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/event"
	"repro/internal/stream"
	"repro/internal/trace"
)

// StreamScript is one generated stream: an ordered event sequence to
// feed a checker, with the ground-truth count of erroneous scenario
// instances it contains.
type StreamScript struct {
	// ID names the stream within its generated batch.
	ID string
	// Events is the full event sequence, scenario instances concatenated
	// in order.
	Events []event.Event
	// Bad counts the erroneous scenario instances in the script. Online
	// checking reports at least one violation per script with Bad > 0
	// (counting the finalization violation); see the package comment for
	// why the count is a lower bound.
	Bad int
}

// NDJSON renders the script in the wire format of cabled's
// /v1/streams/{id}/events endpoint and the cable CLI's offline mode:
// one {"event": ...} object per line.
func (s StreamScript) NDJSON() []byte {
	var b bytes.Buffer
	for _, e := range s.Events {
		line, err := json.Marshal(stream.Line{Event: e.String()})
		if err != nil {
			panic(fmt.Sprintf("xtrace: marshalling event line: %v", err)) // cannot fail: Line is a string field
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// Streams generates n stream scripts of scenariosPerStream scenario
// instances each, sampling by weight, and the ground-truth labeling of
// every instance's trace class. Generation is deterministic for a given
// seed and independent of the other generator methods.
func (g Generator) Streams(n, scenariosPerStream int) ([]StreamScript, Labeling) {
	rng := rand.New(rand.NewSource(g.Seed))
	labels := Labeling{}
	scripts := make([]StreamScript, 0, n)
	for i := 0; i < n; i++ {
		s := StreamScript{ID: fmt.Sprintf("stream%d", i)}
		for j := 0; j < scenariosPerStream; j++ {
			sc := g.Model.Scenarios[g.Model.pick(rng)]
			symbolic := sc.expand(rng)
			labels[trace.Trace{Events: symbolic}.Key()] = sc.Good
			if !sc.Good {
				s.Bad++
			}
			s.Events = append(s.Events, symbolic...)
		}
		scripts = append(scripts, s)
	}
	return scripts, labels
}
