package xtrace

import (
	"bytes"
	"testing"

	"repro/internal/fa"
	"repro/internal/stream"
)

// streamModel mirrors the stdio corpus model: two good protocol
// instances and the error modes an online checker should flag.
func streamModel() Model {
	return Model{
		Scenarios: []Scenario{
			{Name: "file", Good: true, Weight: 8, Events: []Event{
				Ev("X = fopen()"),
				Rep("fread(X)", 0, 2),
				Rep("fwrite(X)", 0, 2),
				Ev("fclose(X)"),
			}},
			{Name: "pipe", Good: true, Weight: 6, Events: []Event{
				Ev("X = popen()"),
				Rep("fread(X)", 0, 2),
				Ev("pclose(X)"),
			}},
			{Name: "pipe-fclose", Good: false, Kind: Misuse, Weight: 2, Events: []Event{
				Ev("X = popen()"),
				Rep("fread(X)", 0, 1),
				Ev("fclose(X)"),
			}},
			{Name: "file-leak", Good: false, Kind: Leak, Weight: 1, Events: []Event{
				Ev("X = fopen()"),
				Rep("fread(X)", 1, 2),
			}},
		},
	}
}

// loopingStdioFA is the streaming form of the stdio specification: the
// start state is accepting and every good protocol instance returns to
// it, so a stream of back-to-back instances is accepted end to end.
func loopingStdioFA(t *testing.T) *fa.FA {
	t.Helper()
	b := fa.NewBuilder("stdio-stream")
	s := b.States(3)
	b.Start(s[0])
	b.Accept(s[0])
	b.EdgeStr(s[0], "X = fopen()", s[1])
	b.EdgeStr(s[1], "fread(X)", s[1])
	b.EdgeStr(s[1], "fwrite(X)", s[1])
	b.EdgeStr(s[1], "fclose(X)", s[0])
	b.EdgeStr(s[0], "X = popen()", s[2])
	b.EdgeStr(s[2], "fread(X)", s[2])
	b.EdgeStr(s[2], "fwrite(X)", s[2])
	b.EdgeStr(s[2], "pclose(X)", s[0])
	return b.MustBuild()
}

func TestStreamsDeterministic(t *testing.T) {
	g := Generator{Model: streamModel(), Seed: 7}
	a, labelsA := g.Streams(20, 5)
	b, labelsB := g.Streams(20, 5)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("got %d and %d scripts, want 20", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Bad != b[i].Bad || !bytes.Equal(a[i].NDJSON(), b[i].NDJSON()) {
			t.Fatalf("script %d differs between identically seeded generators", i)
		}
		if len(a[i].Events) == 0 {
			t.Fatalf("script %d is empty", i)
		}
		if a[i].Bad < 0 || a[i].Bad > 5 {
			t.Fatalf("script %d: Bad = %d out of range", i, a[i].Bad)
		}
	}
	if len(labelsA) != len(labelsB) {
		t.Fatalf("labelings differ: %d vs %d classes", len(labelsA), len(labelsB))
	}
	for k, v := range labelsA {
		if labelsB[k] != v {
			t.Fatalf("labeling differs for %q", k)
		}
	}
}

// TestStreamsOnline feeds every generated script through an online
// checker against the looping stdio specification: scripts made only of
// good instances check clean end to end, and every script carrying an
// erroneous instance yields at least one violation (counting the
// finalization one — a trailing leak only surfaces at close).
func TestStreamsOnline(t *testing.T) {
	sim := loopingStdioFA(t).Sim()

	good := streamModel()
	good.Scenarios = good.Scenarios[:2]
	gg, _ := Generator{Model: good, Seed: 3}.Streams(30, 6)
	for _, s := range gg {
		c := stream.New(sim, stream.Config{})
		accepted, issues, err := stream.Ingest(c, bytes.NewReader(s.NDJSON()), func(stream.Violation) {
			t.Errorf("%s: violation on an all-good script", s.ID)
		})
		if err != nil || len(issues) != 0 {
			t.Fatalf("%s: ingest: err=%v issues=%v", s.ID, err, issues)
		}
		if accepted != len(s.Events) {
			t.Fatalf("%s: accepted %d of %d events", s.ID, accepted, len(s.Events))
		}
		if _, fired := c.Finalize(); fired {
			t.Errorf("%s: all-good script finalized mid-protocol", s.ID)
		}
	}

	mixed, _ := Generator{Model: streamModel(), Seed: 11}.Streams(40, 4)
	sawBad := false
	for _, s := range mixed {
		c := stream.New(sim, stream.Config{})
		violations := 0
		if _, _, err := stream.Ingest(c, bytes.NewReader(s.NDJSON()), func(stream.Violation) { violations++ }); err != nil {
			t.Fatalf("%s: ingest: %v", s.ID, err)
		}
		if _, fired := c.Finalize(); fired {
			violations++
		}
		if s.Bad == 0 && violations != 0 {
			t.Errorf("%s: %d violations on a script with no bad instances", s.ID, violations)
		}
		if s.Bad > 0 {
			sawBad = true
			if violations == 0 {
				t.Errorf("%s: %d bad instances but no violations", s.ID, s.Bad)
			}
		}
	}
	if !sawBad {
		t.Fatal("no script carried a bad instance; enlarge the batch")
	}
}
