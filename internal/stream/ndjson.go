package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/event"
	"repro/internal/fa"
	"repro/internal/scanio"
)

// Line is the NDJSON wire shape for one stream event, shared by cabled's
// /v1/streams/{id}/events ingest and the cable CLI's offline mode:
//
//	{"event": "fclose(X)"}
//
// One JSON object per line; blank lines are skipped.
type Line struct {
	Event string `json:"event"`
}

// DecodeLine parses one NDJSON line into an event. It rejects JSON that
// isn't a single {"event": ...} object and event text the trace grammar
// refuses.
func DecodeLine(data []byte) (event.Event, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var ln Line
	if err := dec.Decode(&ln); err != nil {
		return event.Event{}, fmt.Errorf("decoding event line: %w", err)
	}
	if dec.More() {
		return event.Event{}, fmt.Errorf("decoding event line: trailing data after object")
	}
	if ln.Event == "" {
		return event.Event{}, fmt.Errorf("decoding event line: missing %q field", "event")
	}
	ev, err := event.Parse(ln.Event)
	if err != nil {
		return event.Event{}, err
	}
	return ev, nil
}

// decodeLineFast is the allocation-free decode path for the overwhelmingly
// common wire shape: a single-field {"event":"..."} object whose string has
// no escapes and whose text is the canonical rendering of an event the
// checker's plan already interned. On a hit it returns the interned Event
// (shared strings, zero allocations); any deviation — extra fields, escape
// sequences, malformed JSON, an event outside the plan's alphabet or in a
// non-canonical spelling — reports ok=false and the caller falls back to
// DecodeLine, whose json.Decoder + event.Parse semantics (and exact errors)
// remain authoritative.
func decodeLineFast(sim *fa.Sim, raw []byte) (ev event.Event, ok bool) {
	i, n := 0, len(raw)
	skip := func() {
		for i < n && (raw[i] == ' ' || raw[i] == '\t' || raw[i] == '\r' || raw[i] == '\n') {
			i++
		}
	}
	skip()
	if i >= n || raw[i] != '{' {
		return event.Event{}, false
	}
	i++
	skip()
	const field = `"event"`
	if n-i < len(field) || string(raw[i:i+len(field)]) != field {
		return event.Event{}, false
	}
	i += len(field)
	skip()
	if i >= n || raw[i] != ':' {
		return event.Event{}, false
	}
	i++
	skip()
	if i >= n || raw[i] != '"' {
		return event.Event{}, false
	}
	i++
	start := i
	for i < n && raw[i] != '"' {
		if c := raw[i]; c == '\\' || c < 0x20 {
			return event.Event{}, false
		}
		i++
	}
	if i >= n || i == start {
		return event.Event{}, false // unterminated, or empty (slow path owns that error)
	}
	text := raw[start:i]
	i++
	skip()
	if i >= n || raw[i] != '}' {
		return event.Event{}, false
	}
	i++
	skip()
	if i != n {
		return event.Event{}, false
	}
	return sim.CanonicalEvent(text)
}

// LineIssue is one rejected NDJSON line. Err is wrapped with
// scanio.LineError, so errors.As recovers the *scanio.Error and its line
// number for machine-readable envelopes.
type LineIssue struct {
	Line int
	Err  error
}

// Ingest pumps NDJSON lines from r into the checker with
// partial-progress semantics: malformed lines are reported as issues and
// skipped, well-formed lines are fed, and violations are delivered to
// onViolation (which may be nil) in stream order as they fire. It
// returns the number of events accepted. The error return is fatal-only
// — an unreadable source (oversized line, transport failure) or a feed
// into a finalized checker; in both cases the counts and issues up to
// that point are still meaningful.
func Ingest(c *Checker, r io.Reader, onViolation func(Violation)) (accepted int, issues []LineIssue, err error) {
	const subsystem = "stream"
	sim := c.cur.Sim()
	sc := scanio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		ev, ok := decodeLineFast(sim, raw)
		if !ok {
			var derr error
			ev, derr = DecodeLine(raw)
			if derr != nil {
				issues = append(issues, LineIssue{Line: line, Err: scanio.LineError(subsystem, line, derr)})
				continue
			}
		}
		v, fired, ferr := c.Feed(ev)
		if ferr != nil {
			return accepted, issues, scanio.LineError(subsystem, line, ferr)
		}
		accepted++
		if fired && onViolation != nil {
			onViolation(v)
		}
	}
	if serr := sc.Err(); serr != nil {
		return accepted, issues, scanio.LineError(subsystem, line+1, serr)
	}
	return accepted, issues, nil
}
