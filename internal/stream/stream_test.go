package stream

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/fa"
	"repro/internal/scanio"
)

// protocolFA builds the open/use*/close resource protocol used across the
// stream tests: open leads to a use-loop, close is the only accepting exit.
func protocolFA(t testing.TB) *fa.FA {
	t.Helper()
	b := fa.NewBuilder("proto")
	s := b.States(3)
	b.Start(s[0])
	b.Accept(s[2])
	b.EdgeStr(s[0], "X = open()", s[1])
	b.EdgeStr(s[1], "use(X)", s[1])
	b.EdgeStr(s[1], "close(X)", s[2])
	return b.MustBuild()
}

func feedAll(t *testing.T, c *Checker, evs ...string) []Violation {
	t.Helper()
	var out []Violation
	for _, s := range evs {
		v, fired, err := c.Feed(event.MustParse(s))
		if err != nil {
			t.Fatalf("Feed(%s): %v", s, err)
		}
		if fired {
			out = append(out, v)
		}
	}
	return out
}

func TestCheckerViolationAtReject(t *testing.T) {
	c := New(protocolFA(t).Sim(), Config{})
	vs := feedAll(t, c, "X = open()", "use(X)", "fclose(X)")
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1", len(vs))
	}
	v := vs[0]
	if v.At != 2 || v.Offset != 2 || v.Truncated || v.Incomplete() {
		t.Fatalf("violation shape: %+v", v)
	}
	if got := v.Trace.Key(); got != "X = open(); use(X); fclose(X)" {
		t.Fatalf("window trace = %q", got)
	}
	if !strings.Contains(v.String(), "violates at event 2") {
		t.Fatalf("String() = %q", v.String())
	}
	// The checker reset: a clean protocol instance now runs to acceptance.
	if more := feedAll(t, c, "X = open()", "close(X)"); len(more) != 0 {
		t.Fatalf("post-reset violations: %v", more)
	}
	if _, fired := c.Finalize(); fired {
		t.Fatal("clean finalize reported a violation")
	}
	if c.Events() != 5 || c.Violations() != 1 {
		t.Fatalf("counters: events=%d violations=%d", c.Events(), c.Violations())
	}
}

func TestCheckerIncompleteAtFinalize(t *testing.T) {
	c := New(protocolFA(t).Sim(), Config{})
	if vs := feedAll(t, c, "X = open()", "use(X)"); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
	v, fired := c.Finalize()
	if !fired {
		t.Fatal("incomplete stream finalized cleanly")
	}
	if !v.Incomplete() || v.At != 2 || v.Offset != 2 {
		t.Fatalf("violation shape: %+v", v)
	}
	if !strings.Contains(v.String(), "incomplete at end") {
		t.Fatalf("String() = %q", v.String())
	}
	if _, _, err := c.Feed(event.MustParse("use(X)")); err == nil {
		t.Fatal("Feed after Finalize succeeded")
	}
}

func TestCheckerEmptyStreamFinalizesClean(t *testing.T) {
	// A stream that was opened and closed without traffic is not a
	// protocol instance at all — no violation, even though the start
	// frontier is not accepting.
	c := New(protocolFA(t).Sim(), Config{})
	if v, fired := c.Finalize(); fired {
		t.Fatalf("empty stream violated: %+v", v)
	}
}

func TestCheckerWindowTruncation(t *testing.T) {
	c := New(protocolFA(t).Sim(), Config{Window: 4})
	evs := []string{"X = open()"}
	for i := 0; i < 10; i++ {
		evs = append(evs, "use(X)")
	}
	evs = append(evs, "fclose(X)")
	vs := feedAll(t, c, evs...)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1", len(vs))
	}
	v := vs[0]
	if !v.Truncated {
		t.Fatal("overflowed window not flagged truncated")
	}
	if len(v.Trace.Events) != 4 || v.At != 3 || v.Offset != 11 {
		t.Fatalf("violation shape: %+v", v)
	}
	if got := v.Trace.Key(); got != "use(X); use(X); use(X); fclose(X)" {
		t.Fatalf("window trace = %q", got)
	}
	if !strings.Contains(v.String(), "window truncated") {
		t.Fatalf("String() = %q", v.String())
	}
	if c.Truncations() != 8 {
		t.Fatalf("Truncations() = %d, want 8", c.Truncations())
	}
	// The reset cleared the truncation flag for the next window.
	feedAll(t, c, "X = open()")
	if v, fired := c.Finalize(); !fired || v.Truncated {
		t.Fatalf("post-reset finalize: fired=%v violation=%+v", fired, v)
	}
}

func TestCheckerMultipleViolations(t *testing.T) {
	c := New(protocolFA(t).Sim(), Config{})
	vs := feedAll(t, c,
		"fclose(X)",                         // violation 1: dies immediately
		"X = open()", "use(X)", "fclose(X)", // violation 2
		"X = open()", "close(X)", // clean instance
	)
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2", len(vs))
	}
	if vs[0].At != 0 || vs[0].Offset != 0 {
		t.Fatalf("first violation shape: %+v", vs[0])
	}
	// The second window must not leak events from before the first reset.
	if got := vs[1].Trace.Key(); got != "X = open(); use(X); fclose(X)" {
		t.Fatalf("second window trace = %q", got)
	}
	if vs[1].At != 2 || vs[1].Offset != 3 {
		t.Fatalf("second violation shape: %+v", vs[1])
	}
	if _, fired := c.Finalize(); fired {
		t.Fatal("clean tail still violated at finalize")
	}
	if c.Violations() != 2 {
		t.Fatalf("Violations() = %d", c.Violations())
	}
}

func TestStateRestoreRoundTrip(t *testing.T) {
	sim := protocolFA(t).Sim()
	orig := New(sim, Config{Window: 8})
	feedAll(t, orig, "fclose(X)", "X = open()", "use(X)")
	st := orig.State()
	if st.Events != 3 || st.SinceReset != 2 || st.Violations != 1 || len(st.Ring) != 2 {
		t.Fatalf("state shape: %+v", st)
	}

	restored, err := Restore(sim, st)
	if err != nil {
		t.Fatal(err)
	}
	// Both checkers must agree on everything that follows.
	for _, c := range []*Checker{orig, restored} {
		if vs := feedAll(t, c, "close(X)"); len(vs) != 0 {
			t.Fatalf("close after restore violated: %v", vs)
		}
		if _, fired := c.Finalize(); fired {
			t.Fatal("accepting stream violated at finalize")
		}
		if c.Events() != 4 || c.Violations() != 1 {
			t.Fatalf("counters after restore: events=%d violations=%d", c.Events(), c.Violations())
		}
	}

	bad := st
	bad.Frontier = []int{99}
	if _, err := Restore(sim, bad); err == nil {
		t.Fatal("out-of-range frontier restored")
	}
	bad = st
	bad.Window = 1 // smaller than the ring contents
	if _, err := Restore(sim, bad); err == nil {
		t.Fatal("ring larger than window restored")
	}
}

func TestIngestPartialProgress(t *testing.T) {
	c := New(protocolFA(t).Sim(), Config{})
	src := strings.Join([]string{
		`{"event": "X = open()"}`,
		``,
		`not json`,
		`{"event": "use(X)"}`,
		`{"unknown": "field"}`,
		`{"event": "fclose(X)"}`,
		`{"event": "X = open()"}`,
		`{"event": "close(X)"}`,
	}, "\n")
	var fired []Violation
	accepted, issues, err := Ingest(c, strings.NewReader(src), func(v Violation) { fired = append(fired, v) })
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 5 {
		t.Fatalf("accepted = %d, want 5", accepted)
	}
	if len(issues) != 2 || issues[0].Line != 3 || issues[1].Line != 5 {
		t.Fatalf("issues = %+v", issues)
	}
	var se *scanio.Error
	if !errors.As(issues[0].Err, &se) || se.Line != 3 || se.Subsystem != "stream" {
		t.Fatalf("issue error not a located scanio.Error: %v", issues[0].Err)
	}
	if len(fired) != 1 || fired[0].Trace.Key() != "X = open(); use(X); fclose(X)" {
		t.Fatalf("violations = %+v", fired)
	}
	if _, fired := c.Finalize(); fired {
		t.Fatal("clean tail violated at finalize")
	}
}

func TestIngestFatalAfterFinalize(t *testing.T) {
	c := New(protocolFA(t).Sim(), Config{})
	c.Finalize()
	accepted, _, err := Ingest(c, strings.NewReader(`{"event": "use(X)"}`), nil)
	if err == nil || accepted != 0 {
		t.Fatalf("ingest into finalized checker: accepted=%d err=%v", accepted, err)
	}
}

func TestDecodeLineRejects(t *testing.T) {
	for _, bad := range []string{
		`not json`,
		`{"event": 42}`,
		`{"other": "use(X)"}`,
		`{"event": ""}`,
		`{"event": "use(X)"} trailing`,
		`{"event": "((("}`,
	} {
		if _, err := DecodeLine([]byte(bad)); err == nil {
			t.Errorf("DecodeLine(%q) accepted", bad)
		}
	}
	ev, err := DecodeLine([]byte(` {"event": "Y = open()"} `))
	if err != nil {
		t.Fatal(err)
	}
	if ev.String() != "Y = open()" {
		t.Fatalf("decoded %q", ev.String())
	}
}

func TestFeedZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts unreliable under the race detector")
	}
	c := New(protocolFA(t).Sim(), Config{Window: 4})
	open := event.MustParse("X = open()")
	use := event.MustParse("use(X)")
	if _, _, err := c.Feed(open); err != nil {
		t.Fatal(err)
	}
	// Steady state includes ring eviction (the window stays full).
	allocs := testing.AllocsPerRun(500, func() {
		if _, fired, err := c.Feed(use); fired || err != nil {
			t.Fatal("steady-state feed fired or failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("Feed allocates %v per call, want 0", allocs)
	}
}
