package stream

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestDecodeLineFastMatchesSlow pins the fast NDJSON path differentially
// against DecodeLine: on every probe the fast path either declines (ok
// false — the slow path then owns both the result and the error) or
// returns exactly the event DecodeLine parses. It must never accept a line
// the slow path rejects.
func TestDecodeLineFastMatchesSlow(t *testing.T) {
	sim := protocolFA(t).Sim()
	for _, line := range []string{
		// Canonical interned events, with and without JSON whitespace.
		`{"event":"X = open()"}`,
		`{"event": "use(X)"}`,
		` { "event" : "close(X)" } `,
		"\t{\"event\":\"use(X)\"}\r",
		// Valid JSON the fast path declines: non-canonical spellings,
		// events outside the plan's alphabet, escapes.
		`{"event": "use( X )"}`,
		`{"event": "fclose(X)"}`,
		`{"event": "use(X)"}`,
		`{"event": "a\\b()"}`,
		// Malformed shapes the slow path must reject.
		`not json`,
		`{"event": 42}`,
		`{"other": "use(X)"}`,
		`{"event": ""}`,
		`{"event": "use(X)"} trailing`,
		`{"event": "((("}`,
		`{"event": "use(X)", "extra": 1}`,
		`{"event": "use(X)"`,
		`{"event": "use(X)}`,
		``,
	} {
		fast, ok := decodeLineFast(sim, []byte(line))
		slow, err := DecodeLine([]byte(line))
		if !ok {
			continue // slow path owns the outcome, whatever it is
		}
		if err != nil {
			t.Errorf("fast path accepted %q, DecodeLine rejects it: %v", line, err)
			continue
		}
		if fast.String() != slow.String() {
			t.Errorf("decode %q: fast %q, slow %q", line, fast, slow)
		}
	}
}

// TestIngestAllocSteadyState is the Ingest analogue of
// TestFeedZeroAllocSteadyState: pumping canonical NDJSON lines through a
// live checker must cost O(1) allocations per Ingest call (scanner state),
// not O(lines) — the regression pin for the pooled fast decode path. The
// pre-fast-path decoder cost ~11 allocations per line.
func TestIngestAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts unreliable under the race detector")
	}
	const lines = 200
	var sb strings.Builder
	sb.WriteString(`{"event": "X = open()"}` + "\n")
	for i := 0; i < lines-1; i++ {
		sb.WriteString(`{"event": "use(X)"}` + "\n")
	}
	src := []byte(sb.String())
	sim := protocolFA(t).Sim()
	r := bytes.NewReader(nil)
	allocs := testing.AllocsPerRun(20, func() {
		c := New(sim, Config{Window: 4})
		r.Reset(src)
		n, issues, err := Ingest(c, r, nil)
		if n != lines || len(issues) != 0 || err != nil {
			t.Fatalf("ingest: n=%d issues=%v err=%v", n, issues, err)
		}
	})
	if perLine := allocs / lines; perLine > 0.1 {
		t.Fatalf("Ingest allocates %v per %d-line call (%.2f/line), want O(1) per call", allocs, lines, perLine)
	}
}

// TestIngestFastSlowAgree feeds the same mixed stream (canonical lines,
// non-canonical spellings, junk) through Ingest and through a hand loop
// using only DecodeLine, and requires identical accept counts, issue
// lines, and violations.
func TestIngestFastSlowAgree(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"event": "X = open()"}` + "\n")
	sb.WriteString(`{"event": "use(X)"}` + "\n")
	sb.WriteString(`{"event": "use( X )"}` + "\n") // non-canonical: slow path parses it
	sb.WriteString(`junk` + "\n")
	sb.WriteString(`{"event": "fclose(X)"}` + "\n") // violation: outside the protocol
	sb.WriteString(`{"event": "close(X)"}` + "\n")
	src := sb.String()

	var fastViol []int
	c := New(protocolFA(t).Sim(), Config{})
	n, issues, err := Ingest(c, strings.NewReader(src), func(v Violation) { fastViol = append(fastViol, int(v.Offset)) })
	if err != nil {
		t.Fatal(err)
	}

	c2 := New(protocolFA(t).Sim(), Config{})
	var slowN int
	var slowIssues []int
	var slowViol []int
	for i, line := range strings.Split(strings.TrimSuffix(src, "\n"), "\n") {
		ev, derr := DecodeLine([]byte(line))
		if derr != nil {
			slowIssues = append(slowIssues, i+1)
			continue
		}
		v, fired, ferr := c2.Feed(ev)
		if ferr != nil {
			t.Fatal(ferr)
		}
		slowN++
		if fired {
			slowViol = append(slowViol, int(v.Offset))
		}
	}
	if n != slowN {
		t.Fatalf("accepted %d, slow loop %d", n, slowN)
	}
	gotIssues := make([]int, len(issues))
	for i, is := range issues {
		gotIssues[i] = is.Line
	}
	if fmt.Sprint(gotIssues) != fmt.Sprint(slowIssues) {
		t.Fatalf("issue lines %v, slow loop %v", gotIssues, slowIssues)
	}
	if fmt.Sprint(fastViol) != fmt.Sprint(slowViol) {
		t.Fatalf("violations %v, slow loop %v", fastViol, slowViol)
	}
}
