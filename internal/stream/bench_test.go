package stream

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/event"
)

// BenchmarkFeed measures the per-event cost of the steady-state online
// check: full ring, live frontier, no violations.
func BenchmarkFeed(b *testing.B) {
	c := New(protocolFA(b).Sim(), Config{Window: 32})
	open := event.MustParse("X = open()")
	use := event.MustParse("use(X)")
	if _, _, err := c.Feed(open); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, fired, err := c.Feed(use); fired || err != nil {
			b.Fatal("steady-state feed fired or failed")
		}
	}
}

// BenchmarkFeedViolations measures the violation path: every fourth event
// kills the frontier, materializing a windowed counterexample and
// resetting.
func BenchmarkFeedViolations(b *testing.B) {
	c := New(protocolFA(b).Sim(), Config{Window: 8})
	evs := []event.Event{
		event.MustParse("X = open()"),
		event.MustParse("use(X)"),
		event.MustParse("use(X)"),
		event.MustParse("fclose(X)"), // dies here
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Feed(evs[i%len(evs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkManyStreams interleaves events round-robin across 1000
// checkers sharing one compiled plan — the cabled concurrency shape, in
// miniature.
func BenchmarkManyStreams(b *testing.B) {
	const streams = 1000
	sim := protocolFA(b).Sim()
	cs := make([]*Checker, streams)
	for i := range cs {
		cs[i] = New(sim, Config{})
		if _, _, err := cs[i].Feed(event.MustParse("X = open()")); err != nil {
			b.Fatal(err)
		}
	}
	use := event.MustParse("use(X)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, fired, err := cs[i%streams].Feed(use); fired || err != nil {
			b.Fatal("steady-state feed fired or failed")
		}
	}
}

// BenchmarkIngest measures NDJSON decode + feed throughput end to end.
func BenchmarkIngest(b *testing.B) {
	var sb strings.Builder
	sb.WriteString(`{"event": "X = open()"}` + "\n")
	for i := 0; i < 98; i++ {
		fmt.Fprintf(&sb, `{"event": "use(X)"}`+"\n")
	}
	sb.WriteString(`{"event": "close(X)"}` + "\n")
	src := sb.String()
	sim := protocolFA(b).Sim()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(sim, Config{})
		if n, issues, err := Ingest(c, strings.NewReader(src), nil); n != 100 || len(issues) != 0 || err != nil {
			b.Fatalf("ingest: n=%d issues=%v err=%v", n, issues, err)
		}
	}
}
