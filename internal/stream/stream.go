// Package stream implements online (runtime) verification of temporal
// specifications: a Checker consumes one event at a time from a live
// stream and reports a Violation the moment no run of the specification
// automaton survives — the streaming counterpart of internal/verify's
// batch checker.
//
// The paper debugs specifications against batch trace corpora; the
// production workload this package serves is the runtime one (latency
// SLAs, ordering, eventual-consistency properties checked against live
// event streams). Memory per stream is bounded and independent of stream
// length: the checker retains only the automaton frontier (a bitset over
// states, via fa.Cursor) plus a configurable violation-window ring buffer
// of recent events. When a violation fires, the ring's contents become
// the windowed counterexample trace — enough context to debug with, never
// the whole stream. Violation traces feed straight into live Cable
// sessions (cabled's /v1/streams endpoints), so the concept lattice stays
// current while streams run.
//
// After a violation the checker resets to the automaton's start states
// and keeps checking, so one long-lived stream can surface many
// violations. Finalize closes the stream: a stream with consumed events
// whose frontier holds no accepting state is an incomplete protocol
// instance (e.g. a resource never released) and yields one final
// violation.
package stream

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/fa"
	"repro/internal/trace"
)

// DefaultWindow is the violation ring-buffer capacity when Config leaves
// Window unset: large enough to show a protocol instance around the
// offending event, small enough that thousands of idle streams stay
// cheap.
const DefaultWindow = 32

// MaxWindow caps per-stream memory against misconfigured clients.
const MaxWindow = 4096

// Config sizes one checker.
type Config struct {
	// Window is the ring-buffer capacity: the maximum number of trailing
	// events retained for the counterexample trace. 0 means
	// DefaultWindow; values above MaxWindow are clamped.
	Window int
}

// window resolves the configured ring capacity.
func (c Config) window() int {
	switch {
	case c.Window <= 0:
		return DefaultWindow
	case c.Window > MaxWindow:
		return MaxWindow
	default:
		return c.Window
	}
}

// Violation is one detected specification violation on a stream.
type Violation struct {
	// Trace is the windowed counterexample: the last ≤Window events up to
	// and including the offending one (or up to the end of the stream for
	// incomplete finalizations). Its ID is left empty; callers stamp
	// provenance.
	Trace trace.Trace
	// At is the offending event's index within Trace.Events, or
	// len(Trace.Events) when the stream finalized without reaching an
	// accepting state (an incomplete protocol instance).
	At int
	// Offset is the offending event's 0-based position in the whole
	// stream (or the stream's event count for incomplete finalizations).
	Offset uint64
	// Truncated reports that the window overflowed since the last reset,
	// so Trace is a suffix of the violating behaviour rather than all of
	// it.
	Truncated bool
}

// Incomplete reports whether this is a finalization violation (the stream
// ended mid-protocol) rather than a dead-frontier rejection.
func (v Violation) Incomplete() bool { return v.At >= len(v.Trace.Events) }

// String renders the violation like verify.Violation does, flagging
// truncated windows.
func (v Violation) String() string {
	suffix := ""
	if v.Truncated {
		suffix = " (window truncated)"
	}
	if v.Incomplete() {
		return fmt.Sprintf("%s <incomplete at end>%s", v.Trace.Key(), suffix)
	}
	return fmt.Sprintf("%s <violates at event %d: %s>%s", v.Trace.Key(), v.At, v.Trace.Events[v.At], suffix)
}

// Checker is one stream's online verifier. It is not goroutine-safe:
// each stream owns its checker and serializes Feed/Finalize itself; the
// compiled fa.Sim underneath is shared and immutable, so any number of
// checkers can wrap one plan.
type Checker struct {
	cur    *fa.Cursor
	window int

	// ring is the violation window: a circular buffer of the most recent
	// events since the last reset. start indexes the oldest retained
	// event; n is the number retained.
	ring  []event.Event
	start int
	n     int

	events      uint64 // total events consumed
	sinceReset  uint64 // events consumed since open or the last violation
	truncated   bool   // ring overflowed since the last reset
	truncations uint64 // total events evicted from the ring
	violations  int
	finalized   bool
}

// New returns a checker positioned at the specification's start states.
func New(sim *fa.Sim, cfg Config) *Checker {
	w := cfg.window()
	return &Checker{
		cur:    sim.NewCursor(),
		window: w,
		ring:   make([]event.Event, w),
	}
}

// Window returns the configured ring capacity.
func (c *Checker) Window() int { return c.window }

// Events returns the total number of events consumed.
func (c *Checker) Events() uint64 { return c.events }

// Violations returns how many violations the checker has emitted,
// including a final incomplete-stream violation.
func (c *Checker) Violations() int { return c.violations }

// Truncations returns how many events have been evicted from violation
// windows over the checker's lifetime.
func (c *Checker) Truncations() uint64 { return c.truncations }

// Finalized reports whether Finalize has run; a finalized checker
// accepts no further events.
func (c *Checker) Finalized() bool { return c.finalized }

// Accepting reports whether the current frontier contains an accepting
// state — closing the stream right now would not raise an
// incomplete-protocol violation.
func (c *Checker) Accepting() bool { return c.cur.Accepting() }

// push appends an event to the ring, evicting the oldest when full.
func (c *Checker) push(e event.Event) {
	if c.n == c.window {
		c.ring[c.start] = e
		c.start = (c.start + 1) % c.window
		c.truncated = true
		c.truncations++
		return
	}
	c.ring[(c.start+c.n)%c.window] = e
	c.n++
}

// snapshotWindow copies the ring's contents in stream order.
func (c *Checker) snapshotWindow() []event.Event {
	out := make([]event.Event, c.n)
	for i := 0; i < c.n; i++ {
		out[i] = c.ring[(c.start+i)%c.window]
	}
	return out
}

// reset returns the checker to the start states with an empty window;
// called after each violation so checking continues.
func (c *Checker) reset() {
	c.cur.Reset()
	c.start, c.n = 0, 0
	c.sinceReset = 0
	c.truncated = false
}

// Feed consumes one event. It returns a violation (and true) the moment
// the specification's frontier empties — no run of the automaton can
// extend the consumed events — with the windowed counterexample ending at
// the offending event. After a violation the checker resets to the start
// states, so later events keep being checked. Steady-state accepting
// calls allocate nothing; a Feed after Finalize returns an error.
func (c *Checker) Feed(e event.Event) (Violation, bool, error) {
	if c.finalized {
		return Violation{}, false, fmt.Errorf("stream: feed after finalize")
	}
	c.push(e)
	c.events++
	c.sinceReset++
	if c.cur.Step(e) {
		return Violation{}, false, nil
	}
	v := Violation{
		Trace:     trace.Trace{Events: c.snapshotWindow()},
		At:        c.n - 1,
		Offset:    c.events - 1,
		Truncated: c.truncated,
	}
	c.violations++
	c.reset()
	return v, true, nil
}

// Finalize closes the stream. A stream that has consumed events since
// its last reset but whose surviving runs include no accepting state is
// an incomplete protocol instance and yields one final violation whose
// At is the window length (mirroring verify.Violation's
// incomplete-at-end convention). Finalize is idempotent in effect but
// may only be called once; the checker accepts no events afterwards.
func (c *Checker) Finalize() (Violation, bool) {
	c.finalized = true
	if c.sinceReset == 0 || c.cur.Accepting() {
		return Violation{}, false
	}
	v := Violation{
		Trace:     trace.Trace{Events: c.snapshotWindow()},
		At:        c.n,
		Offset:    c.events,
		Truncated: c.truncated,
	}
	c.violations++
	return v, true
}

// State is a checker's externalized form: everything needed to restore
// an open stream after a crash (cabled persists one of these per open
// stream in the session's write-ahead log).
type State struct {
	// Window is the configured ring capacity.
	Window int
	// Events, SinceReset, Truncations and Violations mirror the
	// checker's counters.
	Events      uint64
	SinceReset  uint64
	Truncations uint64
	Violations  int
	// Truncated mirrors the current window's overflow flag.
	Truncated bool
	// Frontier is the automaton frontier as ascending state IDs.
	Frontier []int
	// Ring is the violation window's contents in stream order.
	Ring []event.Event
}

// State externalizes the checker. The returned slices are copies.
func (c *Checker) State() State {
	return State{
		Window:      c.window,
		Events:      c.events,
		SinceReset:  c.sinceReset,
		Truncations: c.truncations,
		Violations:  c.violations,
		Truncated:   c.truncated,
		Frontier:    c.cur.States(nil),
		Ring:        c.snapshotWindow(),
	}
}

// Restore rebuilds a checker from an externalized state against the same
// specification plan. It validates shape (frontier states in range, ring
// within the window) so a corrupt or mismatched record fails loudly
// instead of resurrecting a nonsense stream.
func Restore(sim *fa.Sim, st State) (*Checker, error) {
	c := New(sim, Config{Window: st.Window})
	if len(st.Ring) > c.window {
		return nil, fmt.Errorf("stream: restoring: %d ring events exceed window %d", len(st.Ring), c.window)
	}
	if err := c.cur.SetStates(st.Frontier); err != nil {
		return nil, fmt.Errorf("stream: restoring: %w", err)
	}
	copy(c.ring, st.Ring)
	c.n = len(st.Ring)
	c.events = st.Events
	c.sinceReset = st.SinceReset
	c.truncations = st.Truncations
	c.violations = st.Violations
	c.truncated = st.Truncated
	return c, nil
}
