package fa

import (
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/event"
	"repro/internal/trace"
)

// Enumerate returns up to limit accepted traces of length at most maxLen, in
// breadth-first (shortest-first) order with deterministic tie-breaking. It is
// used by tests and by summaries that show sample sentences of a language.
// Wildcard transitions contribute the wildcard label itself, which renders
// as "*()".
func (f *FA) Enumerate(maxLen, limit int) []trace.Trace {
	type node struct {
		states *bitset.Set
		events []event.Event
	}
	var out []trace.Trace
	if limit <= 0 {
		return out
	}
	frontier := []node{{states: f.start.Clone()}}
	labelOrder := f.sortedLabels()
	for depth := 0; depth <= maxLen && len(frontier) > 0; depth++ {
		var next []node
		for _, n := range frontier {
			if n.states.Intersects(f.accept) {
				out = append(out, trace.Trace{Events: append([]event.Event(nil), n.events...)})
				if len(out) >= limit {
					return out
				}
			}
			if depth == maxLen {
				continue
			}
			for _, label := range labelOrder {
				succ := bitset.New(f.numStates)
				n.states.Range(func(s int) bool {
					for _, ti := range f.byFrom[s] {
						t := f.trans[ti]
						if t.Label.String() == label.String() {
							succ.Add(int(t.To))
						}
					}
					return true
				})
				if !succ.Empty() {
					next = append(next, node{states: succ, events: append(append([]event.Event(nil), n.events...), label)})
				}
			}
		}
		frontier = next
	}
	return out
}

// Sample returns a uniformly-random-walk accepted trace of length at most
// maxLen, or ok=false if the walk dies or fails to reach acceptance. Used by
// property tests and the workload generator to draw sentences from a
// specification's language.
func (f *FA) Sample(rng *rand.Rand, maxLen int) (trace.Trace, bool) {
	// Precompute states that can reach acceptance so the walk never strays
	// into dead states.
	live := bitset.New(f.numStates)
	var stack []int
	f.accept.Range(func(s int) bool {
		live.Add(s)
		stack = append(stack, s)
		return true
	})
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ti := range f.byTo[s] {
			from := int(f.trans[ti].From)
			if !live.Has(from) {
				live.Add(from)
				stack = append(stack, from)
			}
		}
	}
	starts := []int{}
	f.start.Range(func(s int) bool {
		if live.Has(s) {
			starts = append(starts, s)
		}
		return true
	})
	if len(starts) == 0 {
		return trace.Trace{}, false
	}
	cur := starts[rng.Intn(len(starts))]
	var events []event.Event
	for step := 0; step <= maxLen; step++ {
		canStop := f.accept.Has(cur)
		var outs []int
		for _, ti := range f.byFrom[cur] {
			if live.Has(int(f.trans[ti].To)) && !IsWildcard(f.trans[ti].Label) {
				outs = append(outs, ti)
			}
		}
		if canStop && (len(outs) == 0 || len(events) >= maxLen || rng.Intn(3) == 0) {
			return trace.Trace{Events: events}, true
		}
		if len(outs) == 0 || len(events) >= maxLen {
			return trace.Trace{}, false
		}
		t := f.trans[outs[rng.Intn(len(outs))]]
		events = append(events, t.Label)
		cur = int(t.To)
	}
	return trace.Trace{}, false
}

func (f *FA) sortedLabels() []event.Event {
	out := append([]event.Event(nil), f.labels...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].String() < out[j-1].String(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
