package fa

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/event"
	"repro/internal/trace"
)

// randomFA generates a small random NFA over a fixed alphabet.
func randomFA(rng *rand.Rand) *FA {
	alpha := []event.Event{
		event.MustParse("a()"),
		event.MustParse("b()"),
		event.MustParse("c()"),
	}
	n := 2 + rng.Intn(5)
	b := NewBuilder("rand")
	states := b.States(n)
	b.Start(states[0])
	if rng.Intn(3) == 0 && n > 1 {
		b.Start(states[1])
	}
	for _, s := range states {
		if rng.Intn(3) == 0 {
			b.Accept(s)
		}
	}
	// Guarantee at least one accepting state so languages are non-trivial
	// more often.
	b.Accept(states[n-1])
	edges := 1 + rng.Intn(2*n)
	for i := 0; i < edges; i++ {
		b.Edge(states[rng.Intn(n)], alpha[rng.Intn(len(alpha))], states[rng.Intn(n)])
	}
	return b.MustBuild()
}

func randomTrace(rng *rand.Rand, maxLen int) trace.Trace {
	alpha := []string{"a()", "b()", "c()"}
	n := rng.Intn(maxLen + 1)
	events := make([]string, n)
	for i := range events {
		events[i] = alpha[rng.Intn(len(alpha))]
	}
	return trace.ParseEvents("", events...)
}

func TestPropDeterminizeMinimizePreserveLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 150; iter++ {
		f := randomFA(rng)
		d, err := f.Determinize()
		if err != nil {
			t.Fatal(err)
		}
		m, err := f.Minimize()
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 20; k++ {
			tc := randomTrace(rng, 6)
			want := f.Accepts(tc)
			if d.Accepts(tc) != want {
				t.Fatalf("iter %d: determinize changed acceptance of %q on\n%s", iter, tc.Key(), f)
			}
			if m.Accepts(tc) != want {
				t.Fatalf("iter %d: minimize changed acceptance of %q on\n%s", iter, tc.Key(), f)
			}
		}
	}
}

func TestPropBooleanOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alpha, _ := event.ParseAll("a()", "b()", "c()")
	for iter := 0; iter < 100; iter++ {
		f, g := randomFA(rng), randomFA(rng)
		comp, err := f.Complement(alpha)
		if err != nil {
			t.Fatal(err)
		}
		inter := Intersect(f, g)
		uni := Union(f, g)
		for k := 0; k < 20; k++ {
			tc := randomTrace(rng, 6)
			af, ag := f.Accepts(tc), g.Accepts(tc)
			if comp.Accepts(tc) == af {
				t.Fatalf("iter %d: complement agrees on %q", iter, tc.Key())
			}
			if inter.Accepts(tc) != (af && ag) {
				t.Fatalf("iter %d: intersect wrong on %q", iter, tc.Key())
			}
			if uni.Accepts(tc) != (af || ag) {
				t.Fatalf("iter %d: union wrong on %q", iter, tc.Key())
			}
		}
	}
}

func TestPropMinimalIsMinimal(t *testing.T) {
	// Minimizing twice changes nothing, and the result of Minimize is never
	// larger than the result of Determinize.
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 80; iter++ {
		f := randomFA(rng)
		m1, err := f.Minimize()
		if err != nil {
			t.Fatal(err)
		}
		m2, err := m1.Minimize()
		if err != nil {
			t.Fatal(err)
		}
		if m2.NumStates() != m1.NumStates() {
			t.Fatalf("iter %d: re-minimization changed size %d -> %d", iter, m1.NumStates(), m2.NumStates())
		}
		d, err := f.Determinize()
		if err != nil {
			t.Fatal(err)
		}
		if m1.NumStates() > d.NumStates() {
			t.Fatalf("iter %d: minimal (%d) bigger than determinized (%d)", iter, m1.NumStates(), d.NumStates())
		}
	}
}

func TestPropEquivalenceIsLanguageEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 60; iter++ {
		f, g := randomFA(rng), randomFA(rng)
		eq, err := Equivalent(f, g)
		if err != nil {
			t.Fatal(err)
		}
		// Spot-check with bounded enumeration both ways.
		disagree := false
		for _, tc := range f.Enumerate(5, 100) {
			if !g.Accepts(tc) {
				disagree = true
				break
			}
		}
		if !disagree {
			for _, tc := range g.Enumerate(5, 100) {
				if !f.Accepts(tc) {
					disagree = true
					break
				}
			}
		}
		if eq && disagree {
			t.Fatalf("iter %d: Equivalent=true but languages differ", iter)
		}
		// The converse direction (disagree=false but eq=false) can be a
		// difference beyond length 5, so it is not checked.
	}
}

// bruteExecuted enumerates all accepting runs via DFS and unions their
// transitions — an oracle for Executed on short traces.
func bruteExecuted(f *FA, t trace.Trace) (*bitset.Set, bool) {
	out := bitset.New(f.NumTransitions())
	accepted := false
	var dfs func(state State, i int, path []int)
	dfs = func(state State, i int, path []int) {
		if i == len(t.Events) {
			if f.IsAccept(state) {
				accepted = true
				for _, ti := range path {
					out.Add(ti)
				}
			}
			return
		}
		key := t.Events[i].String()
		for _, ti := range f.byFrom[state] {
			tr := f.trans[ti]
			if IsWildcard(tr.Label) || tr.Label.String() == key {
				dfs(tr.To, i+1, append(path, ti))
			}
		}
	}
	for _, s := range f.StartStates() {
		dfs(s, 0, nil)
	}
	return out, accepted
}

func TestPropExecutedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		f := randomFA(rng)
		var tc trace.Trace
		// Half the time, sample from the language to exercise acceptance.
		if s, ok := f.Sample(rng, 5); ok && rng.Intn(2) == 0 {
			tc = s
		} else {
			tc = randomTrace(rng, 5)
		}
		got, gotOK := f.Executed(tc)
		want, wantOK := bruteExecuted(f, tc)
		if gotOK != wantOK || !got.Equal(want) {
			t.Fatalf("iter %d: Executed(%q) = %s/%v, brute force %s/%v on\n%s",
				iter, tc.Key(), got, gotOK, want, wantOK, f)
		}
		if gotOK != f.Accepts(tc) {
			t.Fatalf("iter %d: Executed ok disagrees with Accepts", iter)
		}
	}
}

func TestPropEnumerateSound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 60; iter++ {
		f := randomFA(rng)
		for _, tc := range f.Enumerate(4, 60) {
			if !f.Accepts(tc) {
				t.Fatalf("iter %d: enumerated trace %q rejected", iter, tc.Key())
			}
		}
	}
}

func TestPropEnumerateComplete(t *testing.T) {
	// Every accepted trace up to the bound appears in an unlimited
	// enumeration: cross-check by generating all traces up to length 3.
	rng := rand.New(rand.NewSource(31))
	alpha := []string{"a()", "b()", "c()"}
	var all []trace.Trace
	var gen func(prefix []string)
	gen = func(prefix []string) {
		all = append(all, trace.ParseEvents("", prefix...))
		if len(prefix) == 3 {
			return
		}
		for _, a := range alpha {
			gen(append(prefix, a))
		}
	}
	gen(nil)
	for iter := 0; iter < 40; iter++ {
		f := randomFA(rng)
		enum := map[string]bool{}
		for _, tc := range f.Enumerate(3, 1<<20) {
			enum[tc.Key()] = true
		}
		for _, tc := range all {
			if f.Accepts(tc) && !enum[tc.Key()] {
				t.Fatalf("iter %d: accepted trace %q missing from enumeration", iter, tc.Key())
			}
		}
	}
}
