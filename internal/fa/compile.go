package fa

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Sim is a compiled simulation plan for one automaton: the structure every
// call to Accepts/RejectsAt/Executed needs is computed once so the per-trace
// inner loop touches only dense integer tables.
//
//   - Transition labels are interned to dense symbol IDs (event.Interner),
//     so matching a trace event against a transition is an integer compare
//     instead of a string render + compare per (state, event) pair.
//   - The transition relation is stored in CSR-style flat rows: row
//     (state, symbol) lists the outgoing (successor, transition) pairs, with
//     a separate per-state wildcard row appended to every match. A mirrored
//     backward CSR (predecessors per (state, symbol)) drives the backward
//     pass of Executed.
//   - Scratch state (frontier bitsets, the per-position forward frontiers,
//     symbol and key buffers) lives in a sync.Pool, so steady-state
//     simulation allocates nothing and one Sim can be shared by a worker
//     pool.
//   - Executed results are memoized per identical-event trace class (keyed
//     by trace.Trace.AppendKey), so a class is simulated exactly once no
//     matter how many duplicate traces replay it; ExecutedAll batches that
//     dedup over a whole trace slice.
//
// A Sim is immutable after compilation apart from the scratch pool and the
// memo table, both of which are safe for concurrent use: all methods may be
// called from multiple goroutines.
//
// Obtain a Sim with FA.Sim(), which compiles on first use and caches the
// plan for the automaton's lifetime.
type Sim struct {
	fa        *FA
	numStates int
	numSyms   int
	interner  *event.Interner
	start     *bitset.Set // read-only
	accept    *bitset.Set // read-only

	// Forward CSR: row state*numSyms+sym holds entries k in
	// [fwdOff[row], fwdOff[row+1]) with successor fwdTo[k] via transition
	// fwdT[k].
	fwdOff []int32
	fwdTo  []int32
	fwdT   []int32
	// Forward wildcard row per state (matches any event).
	wfOff []int32
	wfTo  []int32
	wfT   []int32

	// Backward CSR: row state*numSyms+sym holds the predecessors of state
	// via transitions labeled sym.
	bwdOff  []int32
	bwdFrom []int32
	bwdT    []int32
	// Backward wildcard row per state.
	wbOff  []int32
	wbFrom []int32
	wbT    []int32

	pool sync.Pool // *simScratch

	mu   sync.RWMutex
	memo map[string]memoEntry // trace class key -> executed set
}

// memoEntry is one memoized Executed result. The set is shared by every
// caller and must be treated as read-only.
type memoEntry struct {
	set *bitset.Set
	ok  bool
}

// simScratch is the reusable per-simulation state. One scratch is checked
// out of the pool per call, so a shared Sim stays goroutine-safe while the
// steady state allocates nothing.
type simScratch struct {
	syms   []int32       // per-event symbol IDs of the current trace (-1 = unknown)
	evBuf  []byte        // event rendering buffer for symbol lookup
	keyBuf []byte        // trace class key buffer for memo lookup
	cur    *bitset.Set   // rolling frontier
	nxt    *bitset.Set   // rolling frontier
	bwdCur *bitset.Set   // rolling backward frontier
	bwdNxt *bitset.Set   // rolling backward frontier
	fwd    []*bitset.Set // per-position forward frontiers for Executed
}

// simCache lazily holds an FA's compiled plan behind a pointer so FA values
// can be copied shallowly (WithName) without copying the sync.Once.
type simCache struct {
	once sync.Once
	sim  *Sim
}

// Sim returns the automaton's compiled simulation plan, compiling it on
// first use. The plan is cached for the automaton's lifetime and is safe to
// share across goroutines; callers running many traces should grab it once
// instead of going through the per-call FA methods.
func (f *FA) Sim() *Sim {
	c := f.simc
	if c == nil {
		// Zero-value FA (never produced by Build); compile uncached.
		return newSim(f)
	}
	c.once.Do(func() { c.sim = newSim(f) })
	return c.sim
}

// newSim compiles the automaton into CSR transition tables.
func newSim(f *FA) *Sim {
	sp := obs.StartSpan("fa.compile")
	defer sp.End()
	s := &Sim{
		fa:        f,
		numStates: f.numStates,
		interner:  event.NewInterner(),
		start:     f.start,
		accept:    f.accept,
		memo:      make(map[string]memoEntry),
	}
	// Intern every non-wildcard label; symOf maps the FA's label IDs to
	// dense symbol IDs, with -1 marking the wildcard.
	symOf := make([]int, len(f.labels))
	for i, l := range f.labels {
		if IsWildcard(l) {
			symOf[i] = -1
		} else {
			symOf[i] = s.interner.Intern(l)
		}
	}
	s.numSyms = s.interner.Len()

	n, m := s.numStates, s.numSyms
	s.fwdOff = make([]int32, n*m+1)
	s.bwdOff = make([]int32, n*m+1)
	s.wfOff = make([]int32, n+1)
	s.wbOff = make([]int32, n+1)
	for ti, t := range f.trans {
		if sym := symOf[f.labelOf[ti]]; sym < 0 {
			s.wfOff[t.From+1]++
			s.wbOff[t.To+1]++
		} else {
			s.fwdOff[int(t.From)*m+sym+1]++
			s.bwdOff[int(t.To)*m+sym+1]++
		}
	}
	for i := 1; i < len(s.fwdOff); i++ {
		s.fwdOff[i] += s.fwdOff[i-1]
		s.bwdOff[i] += s.bwdOff[i-1]
	}
	for i := 1; i < len(s.wfOff); i++ {
		s.wfOff[i] += s.wfOff[i-1]
		s.wbOff[i] += s.wbOff[i-1]
	}
	nt := len(f.trans)
	wild := int(s.wfOff[n])
	s.fwdTo = make([]int32, nt-wild)
	s.fwdT = make([]int32, nt-wild)
	s.bwdFrom = make([]int32, nt-wild)
	s.bwdT = make([]int32, nt-wild)
	s.wfTo = make([]int32, wild)
	s.wfT = make([]int32, wild)
	s.wbFrom = make([]int32, wild)
	s.wbT = make([]int32, wild)
	fill := make([]int32, n*m)
	bfill := make([]int32, n*m)
	wfill := make([]int32, n)
	wbfill := make([]int32, n)
	for ti, t := range f.trans {
		if sym := symOf[f.labelOf[ti]]; sym < 0 {
			k := s.wfOff[t.From] + wfill[t.From]
			s.wfTo[k], s.wfT[k] = int32(t.To), int32(ti)
			wfill[t.From]++
			k = s.wbOff[t.To] + wbfill[t.To]
			s.wbFrom[k], s.wbT[k] = int32(t.From), int32(ti)
			wbfill[t.To]++
		} else {
			row := int(t.From)*m + sym
			k := s.fwdOff[row] + fill[row]
			s.fwdTo[k], s.fwdT[k] = int32(t.To), int32(ti)
			fill[row]++
			row = int(t.To)*m + sym
			k = s.bwdOff[row] + bfill[row]
			s.bwdFrom[k], s.bwdT[k] = int32(t.From), int32(ti)
			bfill[row]++
		}
	}
	s.pool.New = func() any {
		return &simScratch{
			cur:    bitset.New(s.numStates),
			nxt:    bitset.New(s.numStates),
			bwdCur: bitset.New(s.numStates),
			bwdNxt: bitset.New(s.numStates),
		}
	}
	obs.Count("fa.compile.plans", 1)
	return s
}

func (s *Sim) get() *simScratch   { return s.pool.Get().(*simScratch) }
func (s *Sim) put(sc *simScratch) { s.pool.Put(sc) }

// NumSymbols returns the number of distinct non-wildcard transition labels.
func (s *Sim) NumSymbols() int { return s.numSyms }

// FA returns the automaton this plan was compiled from.
func (s *Sim) FA() *FA { return s.fa }

// CanonicalEvent returns the interned event whose canonical rendering
// (event.AppendString) is exactly key, or ok=false when the bytes name no
// transition label of this plan. Decoders that already hold the rendering
// bytes of a candidate event use it to reuse the interned Event — shared
// strings, no per-event parse allocations.
func (s *Sim) CanonicalEvent(key []byte) (event.Event, bool) {
	id, ok := s.interner.LookupKey(key)
	if !ok {
		return event.Event{}, false
	}
	return s.interner.Event(id), true
}

// mapSyms renders each trace event once and resolves it to a dense symbol
// ID (-1 for events outside the automaton's alphabet, which only wildcard
// rows can match). The rendering buffer and symbol slice are scratch-owned,
// so the steady state is allocation-free.
func (s *Sim) mapSyms(sc *simScratch, events []event.Event) {
	if cap(sc.syms) < len(events) {
		sc.syms = make([]int32, 0, len(events))
	}
	sc.syms = sc.syms[:0]
	for _, e := range events {
		sc.evBuf = e.AppendString(sc.evBuf[:0])
		id, ok := s.interner.LookupKey(sc.evBuf)
		if !ok {
			id = -1
		}
		sc.syms = append(sc.syms, int32(id))
	}
}

// stepInto sets next to the successor frontier of cur under symbol sym.
func (s *Sim) stepInto(next, cur *bitset.Set, sym int32) {
	next.Clear()
	m := s.numSyms
	cur.Range(func(p int) bool {
		if sym >= 0 {
			row := p*m + int(sym)
			for k := s.fwdOff[row]; k < s.fwdOff[row+1]; k++ {
				next.Add(int(s.fwdTo[k]))
			}
		}
		for k := s.wfOff[p]; k < s.wfOff[p+1]; k++ {
			next.Add(int(s.wfTo[k]))
		}
		return true
	})
}

// Accepts reports whether some run of the automaton accepts the trace.
// Steady-state calls allocate nothing.
func (s *Sim) Accepts(t trace.Trace) bool {
	sp := obs.StartSpan("fa.accepts")
	defer sp.End()
	obs.Count("fa.accepts.events", int64(len(t.Events)))
	sc := s.get()
	defer s.put(sc)
	s.mapSyms(sc, t.Events)
	cur, next := sc.cur.CopyFrom(s.start), sc.nxt
	for _, sym := range sc.syms {
		s.stepInto(next, cur, sym)
		if next.Empty() {
			return false
		}
		cur, next = next, cur
	}
	return cur.Intersects(s.accept)
}

// RejectsAt returns the index of the first event at which every run of the
// automaton is dead, len(t.Events) if the trace completes without reaching
// an accepting state, or -1 if the trace is accepted (see FA.RejectsAt).
// Steady-state calls allocate nothing.
func (s *Sim) RejectsAt(t trace.Trace) int {
	sp := obs.StartSpan("fa.rejectsat")
	defer sp.End()
	obs.Count("fa.rejectsat.events", int64(len(t.Events)))
	sc := s.get()
	defer s.put(sc)
	s.mapSyms(sc, t.Events)
	cur, next := sc.cur.CopyFrom(s.start), sc.nxt
	for i, sym := range sc.syms {
		s.stepInto(next, cur, sym)
		if next.Empty() {
			return i
		}
		cur, next = next, cur
	}
	if cur.Intersects(s.accept) {
		return -1
	}
	return len(t.Events)
}

// Executed returns the set of transition indices on at least one accepting
// run of the automaton on the trace — the relation R of Section 3.2 (see
// FA.Executed). The returned set is fresh and owned by the caller; apart
// from it, steady-state calls allocate nothing. Callers replaying many
// duplicate traces should prefer ExecutedShared or ExecutedAll, which
// memoize per identical-event class.
func (s *Sim) Executed(t trace.Trace) (*bitset.Set, bool) {
	sp := obs.StartSpan("fa.executed")
	defer sp.End()
	obs.Count("fa.executed.events", int64(len(t.Events)))
	sc := s.get()
	defer s.put(sc)
	out := bitset.New(len(s.fa.trans))
	ok := s.executedInto(sc, t, out)
	if !ok {
		obs.Count("fa.executed.rejected", 1)
	}
	return out, ok
}

// ExecutedShared is Executed with class-level memoization: the first call
// for an identical-event trace class simulates it, and every later call —
// from any goroutine — returns the same cached set with zero allocations.
// The returned set is shared and must be treated as read-only.
func (s *Sim) ExecutedShared(t trace.Trace) (*bitset.Set, bool) {
	sc := s.get()
	sc.keyBuf = t.AppendKey(sc.keyBuf[:0])
	s.mu.RLock()
	e, hit := s.memo[string(sc.keyBuf)]
	s.mu.RUnlock()
	if hit {
		s.put(sc)
		obs.Count("fa.executed.memo_hits", 1)
		return e.set, e.ok
	}
	sp := obs.StartSpan("fa.executed")
	obs.Count("fa.executed.events", int64(len(t.Events)))
	out := bitset.New(len(s.fa.trans))
	ok := s.executedInto(sc, t, out)
	sp.End()
	if !ok {
		obs.Count("fa.executed.rejected", 1)
	}
	s.mu.Lock()
	if e, again := s.memo[string(sc.keyBuf)]; again {
		// A racing caller computed the class first; adopt its canonical set
		// so every member of a class shares one pointer.
		out, ok = e.set, e.ok
	} else {
		s.memo[string(sc.keyBuf)] = memoEntry{set: out, ok: ok}
	}
	s.mu.Unlock()
	s.put(sc)
	return out, ok
}

// executedInto computes the executed-transition relation for t into out
// (sized for the automaton's transitions) and reports acceptance. It is
// the forward/backward product of FA.Executed over the CSR tables, with
// the backward pass rolled into two scratch frontiers and the per-position
// transition sweep fused into it.
func (s *Sim) executedInto(sc *simScratch, t trace.Trace, out *bitset.Set) bool {
	n := len(t.Events)
	s.mapSyms(sc, t.Events)
	for len(sc.fwd) < n+1 {
		sc.fwd = append(sc.fwd, bitset.New(s.numStates))
	}
	fwd := sc.fwd
	fwd[0].CopyFrom(s.start)
	for i, sym := range sc.syms {
		s.stepInto(fwd[i+1], fwd[i], sym)
		if fwd[i+1].Empty() {
			return false
		}
	}
	if !fwd[n].Intersects(s.accept) {
		return false
	}
	m := s.numSyms
	bwdNext := bitset.IntersectInto(sc.bwdNxt, fwd[n], s.accept)
	bwdCur := sc.bwdCur
	for i := n - 1; i >= 0; i-- {
		sym := sc.syms[i]
		from := fwd[i]
		// A transition (p --sym--> q) is executed at position i iff
		// p ∈ fwd[i] and q ∈ bwd[i+1]; those p are exactly bwd[i].
		bwdCur.Clear()
		bwdNext.Range(func(q int) bool {
			if sym >= 0 {
				row := q*m + int(sym)
				for k := s.bwdOff[row]; k < s.bwdOff[row+1]; k++ {
					if p := int(s.bwdFrom[k]); from.Has(p) {
						bwdCur.Add(p)
						out.Add(int(s.bwdT[k]))
					}
				}
			}
			for k := s.wbOff[q]; k < s.wbOff[q+1]; k++ {
				if p := int(s.wbFrom[k]); from.Has(p) {
					bwdCur.Add(p)
					out.Add(int(s.wbT[k]))
				}
			}
			return true
		})
		bwdCur, bwdNext = bwdNext, bwdCur
	}
	return true
}

// ExecutedAll simulates every trace, memoizing per identical-event class so
// each class is simulated exactly once: result i is the executed set and
// acceptance of traces[i], and identical traces share one set pointer. The
// sets are memo-backed and must be treated as read-only.
func (s *Sim) ExecutedAll(traces []trace.Trace) ([]*bitset.Set, []bool) {
	sets, oks, _ := s.ExecutedAllCtx(context.Background(), traces, 1)
	return sets, oks
}

// ExecutedAllCtx is ExecutedAll fanned out over a bounded worker pool
// (workers 0 means GOMAXPROCS, 1 is serial). Only one representative per
// identical-event class is simulated; class members share the resulting
// set. Cancellation is checked between classes; once ctx is done no new
// simulation starts and ctx.Err() is returned.
func (s *Sim) ExecutedAllCtx(ctx context.Context, traces []trace.Trace, workers int) ([]*bitset.Set, []bool, error) {
	sp := obs.StartSpan("fa.executedall")
	defer sp.End()
	classOf := make([]int, len(traces))
	var reps []int // index into traces of each class representative
	seen := make(map[string]int, len(traces))
	var buf []byte
	// The dedup pass hashes every trace key; on huge batches that is real
	// work, so honor cancellation on a stride like the simulation loop.
	done := ctx.Done()
	for i, t := range traces {
		if i&1023 == 0 {
			select {
			case <-done:
				return nil, nil, ctx.Err()
			default:
			}
		}
		buf = t.AppendKey(buf[:0])
		if c, ok := seen[string(buf)]; ok {
			classOf[i] = c
			continue
		}
		c := len(reps)
		seen[string(buf)] = c
		reps = append(reps, i)
		classOf[i] = c
	}
	obs.Count("fa.executedall.traces", int64(len(traces)))
	obs.Count("fa.executedall.classes", int64(len(reps)))
	repSets := make([]*bitset.Set, len(reps))
	repOks := make([]bool, len(reps))
	if err := forEachPar(ctx, len(reps), workers, func(c int) {
		repSets[c], repOks[c] = s.ExecutedShared(traces[reps[c]])
	}); err != nil {
		return nil, nil, err
	}
	sets := make([]*bitset.Set, len(traces))
	oks := make([]bool, len(traces))
	for i, c := range classOf {
		if i&8191 == 0 {
			select {
			case <-done:
				return nil, nil, ctx.Err()
			default:
			}
		}
		sets[i], oks[i] = repSets[c], repOks[c]
	}
	return sets, oks, nil
}

// forEachPar runs f(i) for i in [0, n) over up to `workers` goroutines
// (0 means GOMAXPROCS, bounded by n). Cancellation is checked before each
// item; once ctx is done no new item is claimed and ctx.Err() is returned
// after in-flight items finish.
func forEachPar(ctx context.Context, n, workers int, f func(i int)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			f(i)
		}
		return nil
	}
	var next int64 = -1
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					cancelled.Store(true)
					return
				default:
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}
