package fa

import (
	"bufio"
	"errors"
	"strings"
	"testing"

	"repro/internal/scanio"
)

// TestReadErrorsCarryLineNumbers pins the errwrapline dogfood fix: parse
// failures name the offending 1-based line via scanio.LineError and wrap
// the underlying cause so errors.Unwrap reaches it.
func TestReadErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string // substring of the error, including "line N"
	}{
		{"bad edge", "fa x\nstates 2\nstart 0\naccept 1\nedge nope\nend\n", "fa: line 5: bad edge line"},
		{"bad state count", "fa x\nstates many\nend\n", "fa: line 2: bad state count"},
		// An absurd declared count must be a parse error, not a panic in
		// the builder's state allocation.
		{"huge state count", "fa x\nstates 7000000000000000000\nend\n", "fa: line 2: bad state count"},
		{"start outside record", "start 0\n", "fa: line 1: start outside record"},
		{"unknown directive", "fa x\nstates 1\nwobble\nend\n", "fa: line 3: unknown directive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("Read accepted malformed input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
			if errors.Unwrap(err) == nil {
				t.Fatalf("error %q is not wrapped (errors.Unwrap == nil)", err)
			}
		})
	}
}

// TestReadOversizedLine pins the shared scanner policy: a line over
// scanio.MaxLineBytes fails with bufio.ErrTooLong in the chain and a
// message that spells out the limit instead of "token too long".
func TestReadOversizedLine(t *testing.T) {
	long := "fa " + strings.Repeat("x", scanio.MaxLineBytes+1) + "\n"
	_, err := Read(strings.NewReader(long))
	if err == nil {
		t.Fatal("Read accepted an oversized line")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("error %q does not wrap bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "byte limit") {
		t.Fatalf("error %q does not spell out the line limit", err)
	}
}
