//go:build race

package fa

// raceEnabled reports that the race detector is active: it randomly
// defeats sync.Pool caching, so allocation-count tests over the pooled
// scratch path are skipped under -race.
const raceEnabled = true
