package fa

import (
	"repro/internal/event"
)

// This file implements the three Focus templates of Section 4.1. Each
// template produces a reference FA used to re-cluster the traces of a mixed
// concept:
//
//   - Unordered distinguishes traces only by which events occur, ignoring
//     order entirely: (event0 | event1 | ... | eventN)*.
//   - NameProjection distinguishes traces by the events that mention a
//     single name X, with a wildcard absorbing everything else:
//     (event0(..X..) | ... | eventN(..X..) | wildcard)*.
//   - SeedOrder distinguishes traces by which events occur before versus
//     after a designated seed event:
//     (event0|...|eventN)* ; seed ; (event0|...|eventN)*.

// Unordered returns the unordered template over the alphabet: one accepting
// start state with a self-loop per event. Every trace over the alphabet is
// accepted, and a trace executes exactly the loops of the events it contains,
// so the induced concept lattice clusters traces by event occurrence.
func Unordered(alphabet []event.Event) *FA {
	b := NewBuilder("unordered")
	s := b.State()
	b.Start(s)
	b.Accept(s)
	for _, e := range alphabet {
		b.Edge(s, e, s)
	}
	return b.MustBuild()
}

// NameProjection returns the name-projection template for the given name:
// self-loops for each alphabet event that mentions the name, plus a wildcard
// self-loop matching all other events. Traces are distinguished only by
// which name-relevant events they contain. The alphabet is typically the
// label set of an inferred FA that mentions several names; projecting lets
// the user check correctness with respect to one name at a time.
func NameProjection(alphabet []event.Event, name string) *FA {
	b := NewBuilder("project:" + name)
	s := b.State()
	b.Start(s)
	b.Accept(s)
	for _, e := range alphabet {
		if e.Mentions(name) {
			b.Edge(s, e, s)
		}
	}
	b.WildcardEdge(s, s)
	return b.MustBuild()
}

// SeedOrder returns the seed-order template: traces must contain the seed
// event, and the template distinguishes events occurring before the first
// seed from events occurring after it. Non-seed alphabet events self-loop on
// both sides; the seed moves from the "before" state to the "after" state,
// where it may also recur. Ordering is tracked only relative to the seed, so
// the induced lattice stays small (Section 4.1).
func SeedOrder(alphabet []event.Event, seed event.Event) *FA {
	b := NewBuilder("seed:" + seed.String())
	before := b.State()
	after := b.State()
	b.Start(before)
	b.Accept(after)
	seedKey := seed.String()
	for _, e := range alphabet {
		if e.String() == seedKey {
			continue
		}
		b.Edge(before, e, before)
		b.Edge(after, e, after)
	}
	b.Edge(before, seed, after)
	b.Edge(after, seed, after)
	return b.MustBuild()
}

// FromTraces returns the coarsest useful reference FA for a trace set: the
// unordered template over the set's alphabet. Step 1a of the method notes
// that "a great FA learning algorithm is not essential; we have had success
// with FAs that recognize all possible traces" — this is that FA.
func FromTraces(alphabet []event.Event) *FA {
	return Unordered(alphabet).WithName("all-traces")
}
