package fa

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot emits the automaton in Graphviz DOT format, in the visual style
// of the paper's figures: circles for states, double circles for accepting
// states, an arrow from nowhere into each start state, and event renderings
// as edge labels. Parallel edges between the same pair of states are merged
// into one edge with a multi-line label.
func (f *FA) WriteDot(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", f.name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle, fontsize=11];\n")
	b.WriteString("  edge [fontsize=10];\n")
	for s := 0; s < f.numStates; s++ {
		shape := "circle"
		if f.accept.Has(s) {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  s%d [shape=%s, label=\"%d\"];\n", s, shape, s)
	}
	for i, s := range f.StartStates() {
		fmt.Fprintf(&b, "  _start%d [shape=point, style=invis];\n", i)
		fmt.Fprintf(&b, "  _start%d -> s%d;\n", i, int(s))
	}
	merged := map[[2]State][]string{}
	var order [][2]State
	for _, t := range f.trans {
		key := [2]State{t.From, t.To}
		if _, ok := merged[key]; !ok {
			order = append(order, key)
		}
		merged[key] = append(merged[key], t.Label.String())
	}
	for _, key := range order {
		label := strings.Join(merged[key], "\\n")
		label = strings.ReplaceAll(label, `"`, `\"`)
		fmt.Fprintf(&b, "  s%d -> s%d [label=\"%s\"];\n", int(key[0]), int(key[1]), label)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Dot returns the DOT rendering as a string.
func (f *FA) Dot() string {
	var b strings.Builder
	_ = f.WriteDot(&b) // strings.Builder writes cannot fail
	return b.String()
}
