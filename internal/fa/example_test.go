package fa_test

import (
	"fmt"

	"repro/internal/fa"
	"repro/internal/trace"
)

// Example builds the corrected stdio specification with the Builder API
// and simulates traces against it.
func Example() {
	b := fa.NewBuilder("stdio")
	s := b.States(3)
	b.Start(s[0])
	b.Accept(s[2])
	b.EdgeStr(s[0], "X = fopen()", s[1])
	b.EdgeStr(s[1], "fread(X)", s[1])
	b.EdgeStr(s[1], "fclose(X)", s[2])
	spec := b.MustBuild()

	ok := trace.ParseEvents("", "X = fopen()", "fread(X)", "fclose(X)")
	leak := trace.ParseEvents("", "X = fopen()", "fread(X)")
	fmt.Println(spec.Accepts(ok), spec.Accepts(leak))
	// Output:
	// true false
}

// ExampleCompile writes a specification as a regular expression over
// events, the notation the paper's Focus templates use.
func ExampleCompile() {
	spec, err := fa.Compile("stdio", "X = fopen() (fread(X)|fwrite(X))* fclose(X)")
	if err != nil {
		panic(err)
	}
	fmt.Println(spec.Accepts(trace.ParseEvents("", "X = fopen()", "fwrite(X)", "fclose(X)")))
	fmt.Println(spec.Accepts(trace.ParseEvents("", "X = fopen()")))
	// Output:
	// true
	// false
}

// ExampleFA_Executed computes the relation R of Section 3.2: which
// transitions lie on an accepting run of a trace.
func ExampleFA_Executed() {
	b := fa.NewBuilder("ref")
	s := b.State()
	b.Start(s)
	b.Accept(s)
	b.EdgeStr(s, "open()", s)  // transition 0
	b.EdgeStr(s, "close()", s) // transition 1
	b.EdgeStr(s, "read()", s)  // transition 2
	ref := b.MustBuild()

	executed, ok := ref.Executed(trace.ParseEvents("", "open()", "close()"))
	fmt.Println(ok, executed)
	// Output:
	// true {0, 1}
}
