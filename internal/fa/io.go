package fa

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/event"
	"repro/internal/scanio"
)

// The text format for automaton files:
//
//	fa <name>
//	states <n>
//	start <s> [<s>...]
//	accept [<s>...]
//	edge <from> <to> <event>
//	...
//	end
//
// Blank lines and lines beginning with # are ignored. The wildcard label is
// written "*()".

// Write serializes the automaton.
func Write(w io.Writer, f *FA) error {
	bw := bufio.NewWriter(w)
	name := f.name
	if strings.ContainsAny(name, "\n") {
		return fmt.Errorf("fa: name %q contains newline", name)
	}
	fmt.Fprintf(bw, "fa %s\n", name)
	fmt.Fprintf(bw, "states %d\n", f.numStates)
	fmt.Fprint(bw, "start")
	for _, s := range f.StartStates() {
		fmt.Fprintf(bw, " %d", int(s))
	}
	fmt.Fprintln(bw)
	fmt.Fprint(bw, "accept")
	for _, s := range f.AcceptStates() {
		fmt.Fprintf(bw, " %d", int(s))
	}
	fmt.Fprintln(bw)
	for _, t := range f.trans {
		fmt.Fprintf(bw, "edge %d %d %s\n", int(t.From), int(t.To), t.Label)
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// Read parses one automaton from r.
func Read(r io.Reader) (*FA, error) {
	sc := scanio.NewScanner(r)
	var (
		b       *Builder
		states  int
		haveEnd bool
		lineno  int
	)
	parseStates := func(fields []string) ([]State, error) {
		out := make([]State, 0, len(fields))
		for _, fstr := range fields {
			n, err := strconv.Atoi(fstr)
			if err != nil {
				return nil, err
			}
			out = append(out, State(n))
		}
		return out, nil
	}
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if haveEnd {
			return nil, scanio.LineError("fa", lineno, fmt.Errorf("content after end"))
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "fa":
			if b != nil {
				return nil, scanio.LineError("fa", lineno, fmt.Errorf("nested fa record"))
			}
			name := ""
			if len(fields) > 1 {
				name = strings.TrimSpace(strings.TrimPrefix(line, "fa"))
			}
			b = NewBuilder(name)
		case "states":
			if b == nil || len(fields) != 2 {
				return nil, scanio.LineError("fa", lineno, fmt.Errorf("bad states line"))
			}
			// maxStates bounds the declared count before States
			// allocates: an absurd value would otherwise panic in make
			// instead of returning a parse error.
			const maxStates = 1 << 24
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 || n > maxStates {
				return nil, scanio.LineError("fa", lineno, fmt.Errorf("bad state count %q", fields[1]))
			}
			states = n
			b.States(n)
		case "start":
			if b == nil {
				return nil, scanio.LineError("fa", lineno, fmt.Errorf("start outside record"))
			}
			ss, err := parseStates(fields[1:])
			if err != nil {
				return nil, scanio.LineError("fa", lineno, err)
			}
			b.Start(ss...)
		case "accept":
			if b == nil {
				return nil, scanio.LineError("fa", lineno, fmt.Errorf("accept outside record"))
			}
			ss, err := parseStates(fields[1:])
			if err != nil {
				return nil, scanio.LineError("fa", lineno, err)
			}
			b.Accept(ss...)
		case "edge":
			if b == nil || len(fields) < 4 {
				return nil, scanio.LineError("fa", lineno, fmt.Errorf("bad edge line"))
			}
			rest := strings.TrimSpace(strings.TrimPrefix(line, "edge"))
			fromTok, rest := nextToken(rest)
			toTok, labelText := nextToken(rest)
			from, err1 := strconv.Atoi(fromTok)
			to, err2 := strconv.Atoi(toTok)
			if err1 != nil || err2 != nil {
				return nil, scanio.LineError("fa", lineno, fmt.Errorf("bad edge endpoints"))
			}
			label, err := event.Parse(labelText)
			if err != nil {
				return nil, scanio.LineError("fa", lineno, err)
			}
			b.Edge(State(from), label, State(to))
		case "end":
			if b == nil {
				return nil, scanio.LineError("fa", lineno, fmt.Errorf("end outside record"))
			}
			haveEnd = true
		default:
			return nil, scanio.LineError("fa", lineno, fmt.Errorf("unknown directive %q", fields[0]))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, scanio.LineError("fa", lineno+1, err)
	}
	if b == nil {
		return nil, fmt.Errorf("fa: no automaton in input") //cablevet:ignore errwrapline whole-input error, no line to blame
	}
	if !haveEnd {
		return nil, fmt.Errorf("fa: missing end") //cablevet:ignore errwrapline whole-input error, no line to blame
	}
	_ = states
	return b.Build()
}

// nextToken splits off the first whitespace-delimited token and returns it
// with the trimmed remainder.
func nextToken(s string) (tok, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i:])
}
