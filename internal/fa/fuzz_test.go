package fa

import (
	"strings"
	"testing"
)

// FuzzCompile checks that the regex compiler never panics and that
// compiled automata survive serialization (when wildcard-free).
func FuzzCompile(f *testing.F) {
	for _, seed := range []string{
		"a() b()",
		"(a()|b())* c()",
		"X = fopen() (fread(X)|fwrite(X))* fclose(X)",
		". . .",
		"a()+|b()?",
		"((((",
		"*",
		"",
		"|",
		"a() ; ; b()",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, pattern string) {
		if len(pattern) > 200 {
			return // bound automaton size
		}
		compiled, err := Compile("fuzz", pattern)
		if err != nil {
			return
		}
		// Serialization round trip preserves the language.
		var buf strings.Builder
		if err := Write(&buf, compiled); err != nil {
			t.Fatalf("Write failed: %v", err)
		}
		again, err := Read(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip does not reparse: %v\n%s", err, buf.String())
		}
		if again.NumStates() != compiled.NumStates() || again.NumTransitions() != compiled.NumTransitions() {
			t.Fatalf("round trip changed shape")
		}
	})
}

// FuzzFAIO mirrors trace.FuzzTraceRoundTrip for the automaton format in
// depth: any FA Read accepts must serialize and reparse to the same
// machine — name, state count, transition count — and the serialization
// must be a fixpoint (writing the reparse yields identical bytes), which
// pins start/accept sets and transition order too. Seeds cover
// wildcards, multi-start machines, comments, and the empty-name header.
func FuzzFAIO(f *testing.F) {
	for _, seed := range []string{
		"fa t\nstates 2\nstart 0\naccept 1\nedge 0 1 f()\nend\n",
		"fa\nstates 1\nstart 0\naccept 0\nend\n", // empty name
		"fa w\nstates 2\nstart 0\naccept 1\nedge 0 1 *()\nedge 1 1 *()\nend\n",
		"# header\nfa multi\nstates 3\nstart 0 1\naccept 1 2\nedge 0 2 X = fopen()\nedge 1 2 fclose(X)\nend\n",
		"fa loop\nstates 1\nstart 0\naccept 0\nedge 0 0 f()\nedge 0 0 g()\nend\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := Read(strings.NewReader(s))
		if err != nil {
			return
		}
		if strings.Contains(m.Name(), "\n") {
			return
		}
		var buf strings.Builder
		if err := Write(&buf, m); err != nil {
			t.Fatalf("Write of parsed FA failed: %v", err)
		}
		first := buf.String()
		again, err := Read(strings.NewReader(first))
		if err != nil {
			t.Fatalf("round trip does not reparse: %v\n%s", err, first)
		}
		if again.Name() != m.Name() || again.NumStates() != m.NumStates() ||
			again.NumTransitions() != m.NumTransitions() {
			t.Fatalf("round trip changed shape: %q %d/%d -> %q %d/%d",
				m.Name(), m.NumStates(), m.NumTransitions(),
				again.Name(), again.NumStates(), again.NumTransitions())
		}
		var buf2 strings.Builder
		if err := Write(&buf2, again); err != nil {
			t.Fatalf("Write of reparsed FA failed: %v", err)
		}
		if buf2.String() != first {
			t.Fatalf("serialization is not a fixpoint:\n%s\nvs\n%s", first, buf2.String())
		}
	})
}

// FuzzRead checks the FA file parser on arbitrary input.
func FuzzRead(f *testing.F) {
	var buf strings.Builder
	_ = Write(&buf, Unordered(nil))
	f.Add(buf.String())
	f.Add("fa x\nstates 2\nstart 0\naccept 1\nedge 0 1 f()\nend\n")
	f.Add("fa\nstates 0\nend\n")
	f.Add("bogus\n")
	f.Fuzz(func(t *testing.T, s string) {
		g, err := Read(strings.NewReader(s))
		if err != nil {
			return
		}
		var out strings.Builder
		if strings.Contains(g.Name(), "\n") {
			return
		}
		if err := Write(&out, g); err != nil {
			t.Fatalf("Write of parsed FA failed: %v", err)
		}
		if _, err := Read(strings.NewReader(out.String())); err != nil {
			t.Fatalf("round trip does not reparse: %v", err)
		}
	})
}
