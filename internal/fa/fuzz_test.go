package fa

import (
	"strings"
	"testing"
)

// FuzzCompile checks that the regex compiler never panics and that
// compiled automata survive serialization (when wildcard-free).
func FuzzCompile(f *testing.F) {
	for _, seed := range []string{
		"a() b()",
		"(a()|b())* c()",
		"X = fopen() (fread(X)|fwrite(X))* fclose(X)",
		". . .",
		"a()+|b()?",
		"((((",
		"*",
		"",
		"|",
		"a() ; ; b()",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, pattern string) {
		if len(pattern) > 200 {
			return // bound automaton size
		}
		compiled, err := Compile("fuzz", pattern)
		if err != nil {
			return
		}
		// Serialization round trip preserves the language.
		var buf strings.Builder
		if err := Write(&buf, compiled); err != nil {
			t.Fatalf("Write failed: %v", err)
		}
		again, err := Read(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip does not reparse: %v\n%s", err, buf.String())
		}
		if again.NumStates() != compiled.NumStates() || again.NumTransitions() != compiled.NumTransitions() {
			t.Fatalf("round trip changed shape")
		}
	})
}

// FuzzRead checks the FA file parser on arbitrary input.
func FuzzRead(f *testing.F) {
	var buf strings.Builder
	_ = Write(&buf, Unordered(nil))
	f.Add(buf.String())
	f.Add("fa x\nstates 2\nstart 0\naccept 1\nedge 0 1 f()\nend\n")
	f.Add("fa\nstates 0\nend\n")
	f.Add("bogus\n")
	f.Fuzz(func(t *testing.T, s string) {
		g, err := Read(strings.NewReader(s))
		if err != nil {
			return
		}
		var out strings.Builder
		if strings.Contains(g.Name(), "\n") {
			return
		}
		if err := Write(&out, g); err != nil {
			t.Fatalf("Write of parsed FA failed: %v", err)
		}
		if _, err := Read(strings.NewReader(out.String())); err != nil {
			t.Fatalf("round trip does not reparse: %v", err)
		}
	})
}
