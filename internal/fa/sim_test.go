package fa

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/trace"
)

// randomWildFA is randomFA with a sprinkling of wildcard edges, so the
// differential tests cover the separate wildcard row of the compiled plan.
func randomWildFA(rng *rand.Rand) *FA {
	alpha := []event.Event{
		event.MustParse("a()"),
		event.MustParse("b()"),
		event.MustParse("c()"),
	}
	n := 2 + rng.Intn(5)
	b := NewBuilder("randwild")
	states := b.States(n)
	b.Start(states[0])
	for _, s := range states {
		if rng.Intn(3) == 0 {
			b.Accept(s)
		}
	}
	b.Accept(states[n-1])
	edges := 1 + rng.Intn(2*n)
	for i := 0; i < edges; i++ {
		if rng.Intn(4) == 0 {
			b.WildcardEdge(states[rng.Intn(n)], states[rng.Intn(n)])
		} else {
			b.Edge(states[rng.Intn(n)], alpha[rng.Intn(len(alpha))], states[rng.Intn(n)])
		}
	}
	return b.MustBuild()
}

// randomTraceUnknown is randomTrace over an alphabet that includes events
// the automata never mention, exercising the unknown-symbol (-1) path.
func randomTraceUnknown(rng *rand.Rand, maxLen int) trace.Trace {
	alpha := []string{"a()", "b()", "c()", "zzz()", "X = d(Y)"}
	n := rng.Intn(maxLen + 1)
	events := make([]string, n)
	for i := range events {
		events[i] = alpha[rng.Intn(len(alpha))]
	}
	return trace.ParseEvents("", events...)
}

// checkSimAgainstLegacy pins every compiled entry point to the legacy loops
// on one (FA, trace) pair.
func checkSimAgainstLegacy(t *testing.T, f *FA, tc trace.Trace) {
	t.Helper()
	sim := f.Sim()
	if got, want := sim.Accepts(tc), f.legacyAccepts(tc); got != want {
		t.Fatalf("Sim.Accepts(%q) = %v, legacy %v on\n%s", tc.Key(), got, want, f)
	}
	if got, want := sim.RejectsAt(tc), f.legacyRejectsAt(tc); got != want {
		t.Fatalf("Sim.RejectsAt(%q) = %d, legacy %d on\n%s", tc.Key(), got, want, f)
	}
	wantEx, wantOK := f.legacyExecuted(tc)
	gotEx, gotOK := sim.Executed(tc)
	if gotOK != wantOK || !gotEx.Equal(wantEx) {
		t.Fatalf("Sim.Executed(%q) = %s/%v, legacy %s/%v on\n%s", tc.Key(), gotEx, gotOK, wantEx, wantOK, f)
	}
	shEx, shOK := sim.ExecutedShared(tc)
	if shOK != wantOK || !shEx.Equal(wantEx) {
		t.Fatalf("Sim.ExecutedShared(%q) = %s/%v, legacy %s/%v on\n%s", tc.Key(), shEx, shOK, wantEx, wantOK, f)
	}
}

// TestPropSimMatchesLegacy runs the compiled simulator differentially
// against the legacy per-call loops on random FAs (with and without
// wildcards) and random traces (including out-of-alphabet events).
func TestPropSimMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 300; iter++ {
		var f *FA
		if iter%2 == 0 {
			f = randomFA(rng)
		} else {
			f = randomWildFA(rng)
		}
		for k := 0; k < 15; k++ {
			var tc trace.Trace
			switch k % 3 {
			case 0:
				tc = randomTrace(rng, 6)
			case 1:
				tc = randomTraceUnknown(rng, 6)
			default:
				// Sample from the language when possible so the accepting
				// (full forward/backward) path is exercised often.
				if s, ok := f.Sample(rng, 6); ok {
					tc = s
				} else {
					tc = randomTrace(rng, 6)
				}
			}
			checkSimAgainstLegacy(t, f, tc)
		}
	}
}

// TestSimExecutedMatchesBruteForce pins the compiled Executed directly to
// the accepting-run DFS oracle, independent of the legacy implementation.
func TestSimExecutedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 150; iter++ {
		f := randomWildFA(rng)
		sim := f.Sim()
		var tc trace.Trace
		if s, ok := f.Sample(rng, 5); ok && rng.Intn(2) == 0 {
			tc = s
		} else {
			tc = randomTrace(rng, 5)
		}
		got, gotOK := sim.Executed(tc)
		want, wantOK := bruteExecuted(f, tc)
		if gotOK != wantOK || !got.Equal(want) {
			t.Fatalf("iter %d: Sim.Executed(%q) = %s/%v, brute force %s/%v on\n%s",
				iter, tc.Key(), got, gotOK, want, wantOK, f)
		}
	}
}

// FuzzSimDifferential drives the compiled simulator and the legacy loops
// from fuzzed bytes: the input encodes a small automaton and a trace, and
// the two paths must agree on Accepts, RejectsAt, and Executed.
func FuzzSimDifferential(f *testing.F) {
	f.Add([]byte{3, 1, 0, 1, 2, 0x12, 0x21, 0x0a}, []byte{0, 1, 2, 0})
	f.Add([]byte{2, 0, 0, 0}, []byte{3, 3, 3})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, faBytes, trBytes []byte) {
		if len(faBytes) > 64 || len(trBytes) > 32 {
			return
		}
		alpha := []event.Event{
			event.MustParse("a()"),
			event.MustParse("b()"),
			event.MustParse("X = c(Y)"),
		}
		b := NewBuilder("fuzz")
		n := 1
		if len(faBytes) > 0 {
			n = 1 + int(faBytes[0]%6)
		}
		states := b.States(n)
		b.Start(states[0])
		if len(faBytes) > 1 {
			b.Accept(states[int(faBytes[1])%n])
		} else {
			b.Accept(states[n-1])
		}
		var edgeBytes []byte
		if len(faBytes) > 2 {
			edgeBytes = faBytes[2:]
		}
		// Each edge byte encodes: from = high nibble % n, to = low nibble
		// % n, label cycles through alphabet + wildcard.
		for i, x := range edgeBytes {
			from := states[int(x>>4)%n]
			to := states[int(x&0xf)%n]
			switch i % 4 {
			case 3:
				b.WildcardEdge(from, to)
			default:
				b.Edge(from, alpha[i%4], to)
			}
		}
		fa := b.MustBuild()
		events := make([]event.Event, 0, len(trBytes))
		for _, x := range trBytes {
			if int(x)%4 == 3 {
				events = append(events, event.MustParse("unknown()"))
			} else {
				events = append(events, alpha[int(x)%4])
			}
		}
		tc := trace.Trace{Events: events}
		checkSimAgainstLegacy(t, fa, tc)
	})
}

// TestSimExecutedAllSharesClassSets checks the batch entry point: results
// line up with per-trace simulation and identical traces share one set
// pointer (the class representative's), simulated exactly once.
func TestSimExecutedAllSharesClassSets(t *testing.T) {
	f := stdioFixtureFA(t)
	sim := f.Sim()
	a := trace.ParseEvents("a", "X = fopen()", "fread(X)", "fclose(X)")
	b := trace.ParseEvents("b", "X = fopen()", "fclose(X)")
	dup := trace.ParseEvents("dup", "X = fopen()", "fread(X)", "fclose(X)") // same class as a
	rejected := trace.ParseEvents("r", "fread(X)")
	traces := []trace.Trace{a, b, dup, rejected, a}
	sets, oks, err := sim.ExecutedAllCtx(context.Background(), traces, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range traces {
		wantSet, wantOK := f.legacyExecuted(tr)
		if oks[i] != wantOK || !sets[i].Equal(wantSet) {
			t.Fatalf("trace %d (%q): ExecutedAll %s/%v, legacy %s/%v", i, tr.Key(), sets[i], oks[i], wantSet, wantOK)
		}
	}
	if sets[0] != sets[2] || sets[0] != sets[4] {
		t.Error("identical traces do not share one executed set pointer")
	}
	if sets[0] == sets[1] {
		t.Error("distinct classes share a set pointer")
	}
}

// TestSimExecutedAllCancellation checks that a done context aborts the
// batch between classes.
func TestSimExecutedAllCancellation(t *testing.T) {
	f := stdioFixtureFA(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	traces := []trace.Trace{trace.ParseEvents("", "X = fopen()", "fclose(X)")}
	if _, _, err := f.Sim().ExecutedAllCtx(ctx, traces, 1); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// stdioFixtureFA builds the small fopen/fread/fclose automaton used by the
// fixture tests.
func stdioFixtureFA(t testing.TB) *FA {
	t.Helper()
	b := NewBuilder("stdio-fixture")
	s := b.States(3)
	b.Start(s[0])
	b.Accept(s[2])
	b.EdgeStr(s[0], "X = fopen()", s[1])
	b.EdgeStr(s[1], "fread(X)", s[1])
	b.EdgeStr(s[1], "fwrite(X)", s[1])
	b.EdgeStr(s[1], "fclose(X)", s[2])
	return b.MustBuild()
}

// TestSimSteadyStateZeroAlloc guards the pooled-scratch fast path: once the
// plan is compiled and warm, Accepts and RejectsAt allocate nothing, and a
// memoized ExecutedShared hit allocates nothing. This is the compiled
// analogue of TestExecutedObsZeroAllocOverhead.
func TestSimSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool caching; alloc counts unreliable")
	}
	obs.Disable()
	f := stdioFixtureFA(t)
	sim := f.Sim()
	tr := trace.ParseEvents("t", "X = fopen()", "fread(X)", "fwrite(X)", "fread(X)", "fclose(X)")
	bad := trace.ParseEvents("t", "X = fopen()", "fread(X)", "pclose(X)")

	if n := testing.AllocsPerRun(200, func() {
		if !sim.Accepts(tr) {
			t.Fatal("trace unexpectedly rejected")
		}
	}); n != 0 {
		t.Errorf("Sim.Accepts allocates %.1f per run in steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if sim.RejectsAt(bad) != 2 {
			t.Fatal("unexpected rejection index")
		}
	}); n != 0 {
		t.Errorf("Sim.RejectsAt allocates %.1f per run in steady state, want 0", n)
	}
	if _, ok := sim.ExecutedShared(tr); !ok { // prime the memo
		t.Fatal("trace unexpectedly rejected")
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := sim.ExecutedShared(tr); !ok {
			t.Fatal("trace unexpectedly rejected")
		}
	}); n != 0 {
		t.Errorf("Sim.ExecutedShared memo hit allocates %.1f per run, want 0", n)
	}
}

// TestSimObsZeroAllocOverhead mirrors TestExecutedObsZeroAllocOverhead for
// the compiled path: enabling obs must not change the allocation count of
// a steady-state simulation.
func TestSimObsZeroAllocOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool caching; alloc counts unreliable")
	}
	f := stdioFixtureFA(t)
	sim := f.Sim()
	tr := trace.ParseEvents("t", "X = fopen()", "fread(X)", "fclose(X)")

	obs.Disable()
	disabled := testing.AllocsPerRun(200, func() { sim.Accepts(tr) })

	m := obs.Enable()
	defer obs.Disable()
	m.Histogram("fa.accepts")
	m.Counter("fa.accepts.events")
	enabled := testing.AllocsPerRun(200, func() { sim.Accepts(tr) })

	if enabled != disabled {
		t.Errorf("obs hooks change Sim.Accepts allocations: disabled=%.1f enabled=%.1f", disabled, enabled)
	}
}

// TestSimSharedAcrossGoroutines exercises one compiled plan from 8
// goroutines mixing every entry point; `make race` runs it under the race
// detector. Each goroutine checks results against precomputed expectations.
func TestSimSharedAcrossGoroutines(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := randomWildFA(rng)
	sim := f.Sim()
	traces := make([]trace.Trace, 24)
	for i := range traces {
		if s, ok := f.Sample(rng, 6); ok && i%2 == 0 {
			traces[i] = s
		} else {
			traces[i] = randomTrace(rng, 6)
		}
	}
	type expect struct {
		accepts   bool
		rejectsAt int
		executed  string
		ok        bool
	}
	want := make([]expect, len(traces))
	for i, tc := range traces {
		ex, ok := f.legacyExecuted(tc)
		want[i] = expect{f.legacyAccepts(tc), f.legacyRejectsAt(tc), ex.String(), ok}
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 30; round++ {
				i := (w + round) % len(traces)
				tc := traces[i]
				if got := sim.Accepts(tc); got != want[i].accepts {
					errs <- "Accepts mismatch"
					return
				}
				if got := sim.RejectsAt(tc); got != want[i].rejectsAt {
					errs <- "RejectsAt mismatch"
					return
				}
				ex, ok := sim.ExecutedShared(tc)
				if ok != want[i].ok || ex.String() != want[i].executed {
					errs <- "ExecutedShared mismatch"
					return
				}
				if round%10 == 0 {
					sets, oks, err := sim.ExecutedAllCtx(context.Background(), traces, 2)
					if err != nil {
						errs <- err.Error()
						return
					}
					for j := range traces {
						if oks[j] != want[j].ok || sets[j].String() != want[j].executed {
							errs <- "ExecutedAll mismatch"
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestSimPlanCachedPerFA checks that the plan compiles once per automaton
// and is shared by shallow copies (WithName), while the wrapper methods
// stay correct.
func TestSimPlanCachedPerFA(t *testing.T) {
	f := stdioFixtureFA(t)
	if f.Sim() != f.Sim() {
		t.Error("Sim() recompiles on every call")
	}
	renamed := f.WithName("other")
	if renamed.Sim() != f.Sim() {
		t.Error("WithName copy does not share the compiled plan")
	}
	tr := trace.ParseEvents("t", "X = fopen()", "fclose(X)")
	if !f.Accepts(tr) || f.RejectsAt(tr) != -1 {
		t.Error("wrapper methods disagree with acceptance")
	}
	if ex, ok := f.Executed(tr); !ok || ex.Len() != 2 {
		t.Errorf("Executed via wrapper = %v len %d, want ok len 2", ok, ex.Len())
	}
}

// TestSimInternerExposesAlphabet sanity-checks the symbol table: every
// non-wildcard label resolves to a distinct dense symbol.
func TestSimInternerExposesAlphabet(t *testing.T) {
	f := stdioFixtureFA(t)
	sim := f.Sim()
	if got, want := sim.NumSymbols(), 4; got != want {
		t.Fatalf("NumSymbols = %d, want %d", got, want)
	}
	if sim.FA() != f {
		t.Error("Sim.FA does not return the source automaton")
	}
}
