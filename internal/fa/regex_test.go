package fa

import (
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/trace"
)

func TestCompileBasics(t *testing.T) {
	cases := []struct {
		pattern string
		accept  []trace.Trace
		reject  []trace.Trace
	}{
		{
			pattern: "a() b()",
			accept:  []trace.Trace{tr("a()", "b()")},
			reject:  []trace.Trace{tr("a()"), tr("b()", "a()"), tr()},
		},
		{
			pattern: "a() ; b()", // explicit concatenation separator
			accept:  []trace.Trace{tr("a()", "b()")},
			reject:  []trace.Trace{tr("a()")},
		},
		{
			pattern: "a() | b()",
			accept:  []trace.Trace{tr("a()"), tr("b()")},
			reject:  []trace.Trace{tr("a()", "b()"), tr()},
		},
		{
			pattern: "a()*",
			accept:  []trace.Trace{tr(), tr("a()"), tr("a()", "a()", "a()")},
			reject:  []trace.Trace{tr("b()")},
		},
		{
			pattern: "a()+",
			accept:  []trace.Trace{tr("a()"), tr("a()", "a()")},
			reject:  []trace.Trace{tr()},
		},
		{
			pattern: "a()?b()",
			accept:  []trace.Trace{tr("b()"), tr("a()", "b()")},
			reject:  []trace.Trace{tr("a()"), tr("a()", "a()", "b()")},
		},
		{
			pattern: "(a()|b())* c()",
			accept:  []trace.Trace{tr("c()"), tr("a()", "b()", "a()", "c()")},
			reject:  []trace.Trace{tr("a()", "c()", "c()")},
		},
	}
	for _, c := range cases {
		f, err := Compile("t", c.pattern)
		if err != nil {
			t.Fatalf("Compile(%q): %v", c.pattern, err)
		}
		for _, a := range c.accept {
			if !f.Accepts(a) {
				t.Errorf("Compile(%q) rejects %q", c.pattern, a.Key())
			}
		}
		for _, r := range c.reject {
			if f.Accepts(r) {
				t.Errorf("Compile(%q) accepts %q", c.pattern, r.Key())
			}
		}
	}
}

func TestCompileEventLiterals(t *testing.T) {
	f := MustCompile("stdio", "X = fopen() (fread(X) | fwrite(X))* fclose(X)")
	if !f.Accepts(tr("X = fopen()", "fread(X)", "fwrite(X)", "fclose(X)")) {
		t.Error("rejects valid stdio trace")
	}
	if f.Accepts(tr("X = fopen()", "fread(X)")) {
		t.Error("accepts leaky trace")
	}
}

func TestCompileEquivalentToTemplates(t *testing.T) {
	// The paper's seed-order template written as a regex equals the
	// SeedOrder constructor's language.
	alphabet, _ := event.ParseAll("a()", "b()", "s()")
	tmpl := SeedOrder(alphabet, event.MustParse("s()"))
	rx := MustCompile("seed-rx", "(a()|b())* s() (a()|b()|s())*")
	eq, err := Equivalent(tmpl, rx)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("seed-order regex differs from SeedOrder template")
	}
	// Unordered template as a regex.
	un := Unordered(alphabet)
	rxu := MustCompile("unordered-rx", "(a()|b()|s())*")
	eq, err = Equivalent(un, rxu)
	if err != nil || !eq {
		t.Errorf("unordered regex differs: %v %v", eq, err)
	}
}

func TestCompileWildcard(t *testing.T) {
	f := MustCompile("w", "a() . b()")
	if !f.HasWildcard() {
		t.Fatal("wildcard lost")
	}
	if !f.Accepts(tr("a()", "zzz()", "b()")) || f.Accepts(tr("a()", "b()")) {
		t.Error("wildcard matching wrong")
	}
	// Name-projection template as a regex.
	p := MustCompile("proj", "(open(X) | close(X) | .)*")
	if !p.Accepts(tr("open(X)", "noise()", "close(X)")) {
		t.Error("projection regex rejects")
	}
}

func TestCompileEmptyAndEpsilon(t *testing.T) {
	f := MustCompile("eps", "")
	if !f.Accepts(tr()) || f.Accepts(tr("a()")) {
		t.Error("empty pattern should accept exactly ε")
	}
	f = MustCompile("opt", "a()?")
	if !f.Accepts(tr()) || !f.Accepts(tr("a()")) {
		t.Error("a()? wrong")
	}
}

func TestCompileErrors(t *testing.T) {
	for _, pattern := range []string{
		"(a()",    // missing )
		"a() )",   // stray )
		"a( b()",  // unterminated literal... parses as op "a( b" -> error
		"*",       // operator without atom
		"|a()",    // leading alternation is fine? expr->term(ε)|term: actually valid (ε|a()); skip
		"a() | (", // dangling group
		"= f()",   // bad event literal
	} {
		if pattern == "|a()" {
			continue
		}
		if _, err := Compile("bad", pattern); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", pattern)
		}
	}
}

func TestCompileLeadingAlternationIsEpsilon(t *testing.T) {
	// "|a()" parses as (ε | a()): both ε and a() accepted.
	f, err := Compile("eps-alt", "|a()")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !f.Accepts(tr()) || !f.Accepts(tr("a()")) || f.Accepts(tr("a()", "a()")) {
		t.Error("ε-alternation language wrong")
	}
}

func TestPropCompileAgainstDerivative(t *testing.T) {
	// Cross-check the compiler against a direct regex matcher (Brzozowski
	// derivative evaluation on the AST) over random patterns and traces.
	rng := rand.New(rand.NewSource(77))
	alphabet := []string{"a()", "b()", "c()"}
	for iter := 0; iter < 300; iter++ {
		ast := randomRx(rng, 0)
		pattern := renderRx(ast)
		f, err := Compile("rand", pattern)
		if err != nil {
			t.Fatalf("Compile(%q): %v", pattern, err)
		}
		for k := 0; k < 15; k++ {
			tc := randomTrace(rng, 5)
			want := matchRx(ast, tc.Events)
			if got := f.Accepts(tc); got != want {
				t.Fatalf("iter %d: Compile(%q).Accepts(%q) = %v, matcher says %v",
					iter, pattern, tc.Key(), got, want)
			}
		}
		_ = alphabet
	}
}

// randomRx generates a random AST of bounded depth.
func randomRx(rng *rand.Rand, depth int) rxNode {
	events := []string{"a()", "b()", "c()"}
	if depth >= 3 || rng.Intn(3) == 0 {
		return rxEvent{e: event.MustParse(events[rng.Intn(len(events))])}
	}
	switch rng.Intn(5) {
	case 0:
		return rxSeq{parts: []rxNode{randomRx(rng, depth+1), randomRx(rng, depth+1)}}
	case 1:
		return rxAlt{parts: []rxNode{randomRx(rng, depth+1), randomRx(rng, depth+1)}}
	case 2:
		return rxStar{sub: randomRx(rng, depth+1)}
	case 3:
		return rxPlus{sub: randomRx(rng, depth+1)}
	default:
		return rxOpt{sub: randomRx(rng, depth+1)}
	}
}

func renderRx(n rxNode) string {
	switch n := n.(type) {
	case rxEvent:
		return n.e.String()
	case rxWild:
		return "."
	case rxSeq:
		out := "("
		for i, p := range n.parts {
			if i > 0 {
				out += " "
			}
			out += renderRx(p)
		}
		return out + ")"
	case rxAlt:
		out := "("
		for i, p := range n.parts {
			if i > 0 {
				out += "|"
			}
			out += renderRx(p)
		}
		return out + ")"
	case rxStar:
		return "(" + renderRx(n.sub) + ")*"
	case rxPlus:
		return "(" + renderRx(n.sub) + ")+"
	case rxOpt:
		return "(" + renderRx(n.sub) + ")?"
	}
	panic("unknown node")
}

// matchRx is a direct matcher: nullability and Brzozowski derivatives.
func matchRx(n rxNode, events []event.Event) bool {
	cur := n
	for _, e := range events {
		cur = deriveRx(cur, e)
	}
	return nullableRx(cur)
}

func nullableRx(n rxNode) bool {
	switch n := n.(type) {
	case rxNever, rxEvent, rxWild:
		return false
	case rxSeq:
		for _, p := range n.parts {
			if !nullableRx(p) {
				return false
			}
		}
		return true
	case rxAlt:
		for _, p := range n.parts {
			if nullableRx(p) {
				return true
			}
		}
		return false
	case rxStar, rxOpt:
		return true
	case rxPlus:
		return nullableRx(n.sub)
	}
	panic("unknown node")
}

// rxNever is an unmatchable node used as the zero of derivation.
type rxNever struct{}

func (rxNever) rx() {}

func deriveRx(n rxNode, e event.Event) rxNode {
	switch n := n.(type) {
	case rxNever:
		return n
	case rxEvent:
		if n.e.Equal(e) {
			return rxSeq{} // ε
		}
		return rxNever{}
	case rxWild:
		return rxSeq{}
	case rxSeq:
		if len(n.parts) == 0 {
			return rxNever{}
		}
		head, tail := n.parts[0], rxSeq{parts: n.parts[1:]}
		d := rxSeq{parts: []rxNode{deriveRx(head, e), tail}}
		if nullableRx(head) {
			return rxAlt{parts: []rxNode{d, deriveRx(tail, e)}}
		}
		return d
	case rxAlt:
		var parts []rxNode
		for _, p := range n.parts {
			parts = append(parts, deriveRx(p, e))
		}
		return rxAlt{parts: parts}
	case rxStar:
		return rxSeq{parts: []rxNode{deriveRx(n.sub, e), n}}
	case rxPlus:
		return rxSeq{parts: []rxNode{deriveRx(n.sub, e), rxStar{sub: n.sub}}}
	case rxOpt:
		return deriveRx(n.sub, e)
	}
	panic("unknown node")
}
