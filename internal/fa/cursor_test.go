package fa

import (
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/trace"
)

// TestCursorMatchesRejectsAt pins the online cursor against the batch
// simulator: feeding a trace event by event must die at exactly the index
// RejectsAt reports, and end accepting iff Accepts accepts.
func TestCursorMatchesRejectsAt(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for iter := 0; iter < 200; iter++ {
		f := randomFA(rng)
		sim := f.Sim()
		cur := sim.NewCursor()
		for tr := 0; tr < 20; tr++ {
			tt := randomTrace(rng, 8)
			want := sim.RejectsAt(tt)
			cur.Reset()
			died := -1
			for i, e := range tt.Events {
				if !cur.Step(e) {
					died = i
					break
				}
			}
			switch {
			case want == -1:
				if died != -1 || !cur.Accepting() {
					t.Fatalf("accepted trace %q: cursor died at %d accepting=%v", tt.Key(), died, cur.Accepting())
				}
			case want == len(tt.Events):
				if died != -1 || cur.Accepting() {
					t.Fatalf("incomplete trace %q: cursor died at %d accepting=%v", tt.Key(), died, cur.Accepting())
				}
			default:
				if died != want {
					t.Fatalf("trace %q: cursor died at %d, RejectsAt = %d", tt.Key(), died, want)
				}
				if cur.Alive() {
					t.Fatalf("trace %q: cursor alive after dead Step", tt.Key())
				}
			}
		}
	}
}

func TestCursorStatesRoundTrip(t *testing.T) {
	f := protocolFA(t)
	sim := f.Sim()
	cur := sim.NewCursor()
	tt := trace.ParseEvents("t", "X = open()", "use(X)")
	for _, e := range tt.Events {
		if !cur.Step(e) {
			t.Fatal("protocol prefix died")
		}
	}
	states := cur.States(nil)
	if len(states) == 0 {
		t.Fatal("live cursor exported no states")
	}
	fresh := sim.NewCursor()
	if err := fresh.SetStates(states); err != nil {
		t.Fatal(err)
	}
	// The restored cursor must behave exactly like the original.
	if !fresh.Step(event.MustParse("close(X)")) || !fresh.Accepting() {
		t.Fatal("restored cursor did not accept the protocol suffix")
	}
	if err := fresh.SetStates([]int{999}); err == nil {
		t.Fatal("out-of-range state accepted")
	}
}

func TestCursorZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts unreliable under the race detector")
	}
	f := protocolFA(t)
	cur := f.Sim().NewCursor()
	ev := event.MustParse("use(X)")
	open := event.MustParse("X = open()")
	cur.Step(open)
	allocs := testing.AllocsPerRun(500, func() {
		if !cur.Step(ev) {
			t.Fatal("frontier died")
		}
	})
	if allocs != 0 {
		t.Fatalf("Step allocates %v per call, want 0", allocs)
	}
}

// protocolFA builds the open/use*/close protocol used across cursor tests.
func protocolFA(t *testing.T) *FA {
	t.Helper()
	b := NewBuilder("proto")
	s := b.States(3)
	b.Start(s[0])
	b.Accept(s[2])
	b.EdgeStr(s[0], "X = open()", s[1])
	b.EdgeStr(s[1], "use(X)", s[1])
	b.EdgeStr(s[1], "close(X)", s[2])
	return b.MustBuild()
}
