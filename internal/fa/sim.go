package fa

import (
	"repro/internal/bitset"
	"repro/internal/trace"
)

// The public simulation methods are thin wrappers over the automaton's
// compiled plan (see Sim): the plan is built once per FA and cached, so
// per-call users and plan-sharing worker pools run the same code path.
// The original per-call loops survive below as legacy* — the reference
// implementations that the differential tests and benchmarks pin the
// compiled simulator against.

// Accepts reports whether some run of the automaton accepts the trace.
func (f *FA) Accepts(t trace.Trace) bool {
	return f.Sim().Accepts(t)
}

// RejectsAt returns the index of the first event at which every run of the
// automaton is dead (no matching transition from any reachable state), or
// len(t.Events) if the trace runs to completion but ends in no accepting
// state, or -1 if the trace is accepted. Verifiers use this to report where
// a violation manifests.
func (f *FA) RejectsAt(t trace.Trace) int {
	return f.Sim().RejectsAt(t)
}

// Executed returns the set of transition indices that lie on at least one
// accepting run of the automaton on the trace — the relation R of Section
// 3.2: (o, a) ∈ R iff transition a can be executed while accepting o.
//
// If the trace is not accepted, the returned set is empty and ok is false.
//
// The computation is the standard forward/backward product: F[i] is the set
// of states reachable from a start state by consuming t[0:i], B[i] the set of
// states from which t[i:] can reach acceptance; transition (p --e--> q) is
// executed iff for some i with label match at t[i], p ∈ F[i] and q ∈ B[i+1].
func (f *FA) Executed(t trace.Trace) (executed *bitset.Set, ok bool) {
	return f.Sim().Executed(t)
}

// AcceptsAll reports whether every trace in the slice is accepted.
func (f *FA) AcceptsAll(traces []trace.Trace) bool {
	s := f.Sim()
	for _, t := range traces {
		if !s.Accepts(t) {
			return false
		}
	}
	return true
}

// legacyAccepts is the original per-call simulation loop: a fresh frontier
// bitset per event and a string render + compare per (state, event) pair.
func (f *FA) legacyAccepts(t trace.Trace) bool {
	cur := f.start.Clone()
	for _, e := range t.Events {
		next := bitset.New(f.numStates)
		cur.Range(func(s int) bool {
			for _, ti := range f.matching(State(s), e) {
				next.Add(int(f.trans[ti].To))
			}
			return true
		})
		cur = next
		if cur.Empty() {
			return false
		}
	}
	return cur.Intersects(f.accept)
}

// legacyRejectsAt is the original RejectsAt loop (see legacyAccepts).
func (f *FA) legacyRejectsAt(t trace.Trace) int {
	cur := f.start.Clone()
	for i, e := range t.Events {
		next := bitset.New(f.numStates)
		cur.Range(func(s int) bool {
			for _, ti := range f.matching(State(s), e) {
				next.Add(int(f.trans[ti].To))
			}
			return true
		})
		if next.Empty() {
			return i
		}
		cur = next
	}
	if cur.Intersects(f.accept) {
		return -1
	}
	return len(t.Events)
}

// legacyExecuted is the original forward/backward product (see Executed for
// the algorithm), allocating per-position bitsets and comparing labels by
// rendered string.
func (f *FA) legacyExecuted(t trace.Trace) (executed *bitset.Set, ok bool) {
	n := len(t.Events)
	fwd := make([]*bitset.Set, n+1)
	fwd[0] = f.start.Clone()
	for i, e := range t.Events {
		next := bitset.New(f.numStates)
		fwd[i].Range(func(s int) bool {
			for _, ti := range f.matching(State(s), e) {
				next.Add(int(f.trans[ti].To))
			}
			return true
		})
		fwd[i+1] = next
	}
	executed = bitset.New(len(f.trans))
	if !fwd[n].Intersects(f.accept) {
		return executed, false
	}
	bwd := make([]*bitset.Set, n+1)
	bwd[n] = bitset.Intersect(fwd[n], f.accept)
	for i := n - 1; i >= 0; i-- {
		e := t.Events[i]
		prev := bitset.New(f.numStates)
		key := e.String()
		// A state p belongs in bwd[i] if it has a matching transition into
		// bwd[i+1]; we scan transitions entering states of bwd[i+1].
		bwd[i+1].Range(func(q int) bool {
			for _, ti := range f.byTo[q] {
				tr := f.trans[ti]
				if IsWildcard(tr.Label) || tr.Label.String() == key {
					prev.Add(int(tr.From))
				}
			}
			return true
		})
		prev.IntersectWith(fwd[i])
		bwd[i] = prev
	}
	for i, e := range t.Events {
		key := e.String()
		fwd[i].Range(func(p int) bool {
			for _, ti := range f.byFrom[p] {
				tr := f.trans[ti]
				if (IsWildcard(tr.Label) || tr.Label.String() == key) && bwd[i+1].Has(int(tr.To)) {
					executed.Add(ti)
				}
			}
			return true
		})
	}
	return executed, true
}

// AcceptingRun returns one accepting sequence of transition indices for the
// trace, or nil if the trace is rejected. Used by summaries that want to
// show a witness path.
func (f *FA) AcceptingRun(t trace.Trace) []int {
	n := len(t.Events)
	fwd := make([]*bitset.Set, n+1)
	fwd[0] = f.start.Clone()
	for i, e := range t.Events {
		next := bitset.New(f.numStates)
		fwd[i].Range(func(s int) bool {
			for _, ti := range f.matching(State(s), e) {
				next.Add(int(f.trans[ti].To))
			}
			return true
		})
		fwd[i+1] = next
	}
	final := bitset.Intersect(fwd[n], f.accept)
	if final.Empty() {
		return nil
	}
	// Walk backwards choosing any predecessor.
	run := make([]int, n)
	target := State(final.Min())
	for i := n - 1; i >= 0; i-- {
		key := t.Events[i].String()
		found := false
		for _, ti := range f.byTo[target] {
			tr := f.trans[ti]
			if (IsWildcard(tr.Label) || tr.Label.String() == key) && fwd[i].Has(int(tr.From)) {
				run[i] = ti
				target = tr.From
				found = true
				break
			}
		}
		if !found {
			// Unreachable given final was derived from fwd, but keep the
			// invariant explicit.
			return nil
		}
	}
	return run
}
