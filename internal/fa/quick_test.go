package fa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// testing/quick drivers over random automata and traces: quick supplies
// seeds, the helpers derive structures deterministically from them.

func faFromSeed(seed int64) *FA {
	return randomFA(rand.New(rand.NewSource(seed)))
}

func traceFromSeed(seed int64, maxLen int) trace.Trace {
	return randomTrace(rand.New(rand.NewSource(seed)), maxLen)
}

func TestQuickDeterminizeSound(t *testing.T) {
	err := quick.Check(func(faSeed, trSeed int64) bool {
		f := faFromSeed(faSeed)
		d, err := f.Determinize()
		if err != nil {
			return false
		}
		tc := traceFromSeed(trSeed, 6)
		return d.Accepts(tc) == f.Accepts(tc)
	}, &quick.Config{MaxCount: 250})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickExecutedSubsetOfTransitions(t *testing.T) {
	// Executed sets are always subsets of the transition index range and
	// empty exactly when the trace is rejected.
	err := quick.Check(func(faSeed, trSeed int64) bool {
		f := faFromSeed(faSeed)
		tc := traceFromSeed(trSeed, 6)
		ex, ok := f.Executed(tc)
		if ok != f.Accepts(tc) {
			return false
		}
		if !ok {
			return ex.Empty()
		}
		max := -1
		ex.Range(func(i int) bool {
			if i > max {
				max = i
			}
			return true
		})
		if max >= f.NumTransitions() {
			return false
		}
		// Accepted nonempty traces execute at least one transition.
		return tc.Len() == 0 || !ex.Empty()
	}, &quick.Config{MaxCount: 250})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionIntersectDuality(t *testing.T) {
	err := quick.Check(func(aSeed, bSeed, trSeed int64) bool {
		a, b := faFromSeed(aSeed), faFromSeed(bSeed)
		tc := traceFromSeed(trSeed, 5)
		u := Union(a, b).Accepts(tc)
		i := Intersect(a, b).Accepts(tc)
		aa, ab := a.Accepts(tc), b.Accepts(tc)
		return u == (aa || ab) && i == (aa && ab)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickTrimPreservesAcceptance(t *testing.T) {
	err := quick.Check(func(faSeed, trSeed int64) bool {
		f := faFromSeed(faSeed)
		tc := traceFromSeed(trSeed, 6)
		return f.Trim().Accepts(tc) == f.Accepts(tc)
	}, &quick.Config{MaxCount: 250})
	if err != nil {
		t.Fatal(err)
	}
}
