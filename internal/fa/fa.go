// Package fa implements finite automata over program-event alphabets.
//
// Temporal specifications in this repository are finite automata (FAs) whose
// transitions are labeled by symbolic events (internal/event). The package
// supports nondeterministic automata with multiple start states, simulation
// of traces, computation of the set of transitions a trace executes on its
// accepting runs (the context relation R of Section 3.2 of the paper),
// determinization, minimization, boolean combinations, language equivalence,
// bounded language enumeration, the Focus templates of Section 4.1, and DOT
// and text serialization.
//
// A transition labeled with the reserved wildcard event (see Wildcard)
// matches any event; wildcards appear in the name-projection Focus template.
// Subset-construction-based operations require wildcards to be expanded over
// a concrete alphabet first (ExpandWildcards).
package fa

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/event"
)

// State identifies a state of an automaton; states are dense indices
// 0..NumStates-1.
type State int

// WildcardOp is the reserved operation name of the wildcard label.
const WildcardOp = "*"

// Wildcard returns the label that matches any event.
func Wildcard() event.Event { return event.Event{Op: WildcardOp} }

// IsWildcard reports whether the label matches any event.
func IsWildcard(e event.Event) bool { return e.Op == WildcardOp }

// Transition is a labeled edge. Transitions are identified by their dense
// index in the automaton (the attribute set of concept analysis).
type Transition struct {
	From  State
	To    State
	Label event.Event
}

// String renders the transition as "s0 --X = fopen()--> s1".
func (t Transition) String() string {
	return fmt.Sprintf("s%d --%s--> s%d", int(t.From), t.Label, int(t.To))
}

// FA is an immutable nondeterministic finite automaton. Construct one with a
// Builder; all exported operations return fresh automata.
type FA struct {
	name      string
	numStates int
	start     *bitset.Set
	accept    *bitset.Set
	trans     []Transition

	labels   []event.Event  // interned labels, indexed by label id
	labelIdx map[string]int // label string -> label id
	labelOf  []int          // transition index -> label id

	// byFrom[s] lists transition indices leaving state s.
	byFrom [][]int
	// byTo[s] lists transition indices entering state s.
	byTo [][]int
	// hasWildcard caches whether any transition is a wildcard.
	hasWildcard bool

	// simc lazily holds the compiled simulation plan (see Sim). It is a
	// pointer so shallow copies (WithName) share one plan per automaton.
	simc *simCache
}

// Builder accumulates states and transitions for an FA.
type Builder struct {
	name      string
	numStates int
	start     []State
	accept    []State
	trans     []Transition
	seen      map[string]bool // dedup of (from,to,label)
}

// NewBuilder returns an empty builder. The name is used in renderings only.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, seen: map[string]bool{}}
}

// State allocates and returns a fresh state.
func (b *Builder) State() State {
	s := State(b.numStates)
	b.numStates++
	return s
}

// States allocates n fresh states.
func (b *Builder) States(n int) []State {
	out := make([]State, n)
	for i := range out {
		out[i] = b.State()
	}
	return out
}

// Start marks states as start states.
func (b *Builder) Start(states ...State) { b.start = append(b.start, states...) }

// Accept marks states as accepting.
func (b *Builder) Accept(states ...State) { b.accept = append(b.accept, states...) }

// Edge adds a transition from -> to labeled by the event. Duplicate edges
// (same endpoints and label) are ignored so builders can be driven from
// multisets of traces.
func (b *Builder) Edge(from State, label event.Event, to State) {
	key := fmt.Sprintf("%d\x00%s\x00%d", from, label, to)
	if b.seen[key] {
		return
	}
	b.seen[key] = true
	b.trans = append(b.trans, Transition{From: from, To: to, Label: label})
}

// EdgeStr is Edge with the label given in event syntax; it panics on a
// malformed label and is intended for literals.
func (b *Builder) EdgeStr(from State, label string, to State) {
	b.Edge(from, event.MustParse(label), to)
}

// WildcardEdge adds a transition matching any event.
func (b *Builder) WildcardEdge(from, to State) { b.Edge(from, Wildcard(), to) }

// Build validates and freezes the automaton.
func (b *Builder) Build() (*FA, error) {
	f := &FA{
		name:      b.name,
		numStates: b.numStates,
		start:     bitset.New(b.numStates),
		accept:    bitset.New(b.numStates),
		trans:     append([]Transition(nil), b.trans...),
		labelIdx:  map[string]int{},
		simc:      &simCache{},
	}
	check := func(s State, what string) error {
		if int(s) < 0 || int(s) >= b.numStates {
			return fmt.Errorf("fa %q: %s state s%d out of range [0,%d)", b.name, what, int(s), b.numStates)
		}
		return nil
	}
	for _, s := range b.start {
		if err := check(s, "start"); err != nil {
			return nil, err
		}
		f.start.Add(int(s))
	}
	for _, s := range b.accept {
		if err := check(s, "accept"); err != nil {
			return nil, err
		}
		f.accept.Add(int(s))
	}
	if f.start.Empty() && b.numStates > 0 {
		return nil, fmt.Errorf("fa %q: no start state", b.name)
	}
	f.byFrom = make([][]int, b.numStates)
	f.byTo = make([][]int, b.numStates)
	f.labelOf = make([]int, len(f.trans))
	for i, t := range f.trans {
		if err := check(t.From, "transition source"); err != nil {
			return nil, err
		}
		if err := check(t.To, "transition target"); err != nil {
			return nil, err
		}
		key := t.Label.String()
		id, ok := f.labelIdx[key]
		if !ok {
			id = len(f.labels)
			f.labelIdx[key] = id
			f.labels = append(f.labels, t.Label)
		}
		f.labelOf[i] = id
		f.byFrom[t.From] = append(f.byFrom[t.From], i)
		f.byTo[t.To] = append(f.byTo[t.To], i)
		if IsWildcard(t.Label) {
			f.hasWildcard = true
		}
	}
	return f, nil
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *FA {
	f, err := b.Build()
	if err != nil {
		panic(err)
	}
	return f
}

// Name returns the automaton's display name.
func (f *FA) Name() string { return f.name }

// WithName returns a shallow copy with a different display name.
func (f *FA) WithName(name string) *FA {
	g := *f
	g.name = name
	return &g
}

// NumStates returns the number of states.
func (f *FA) NumStates() int { return f.numStates }

// NumTransitions returns the number of transitions.
func (f *FA) NumTransitions() int { return len(f.trans) }

// Transitions returns the transitions; the slice is shared and must not be
// mutated. Transition i is attribute i in concept analysis.
func (f *FA) Transitions() []Transition { return f.trans }

// Transition returns the i'th transition.
func (f *FA) Transition(i int) Transition { return f.trans[i] }

// StartStates returns the start states in increasing order.
func (f *FA) StartStates() []State { return toStates(f.start) }

// AcceptStates returns the accepting states in increasing order.
func (f *FA) AcceptStates() []State { return toStates(f.accept) }

// IsStart reports whether s is a start state.
func (f *FA) IsStart(s State) bool { return f.start.Has(int(s)) }

// IsAccept reports whether s is accepting.
func (f *FA) IsAccept(s State) bool { return f.accept.Has(int(s)) }

// HasWildcard reports whether any transition is labeled by the wildcard.
func (f *FA) HasWildcard() bool { return f.hasWildcard }

// Alphabet returns the distinct non-wildcard labels, sorted by rendering.
func (f *FA) Alphabet() []event.Event {
	out := make([]event.Event, 0, len(f.labels))
	for _, l := range f.labels {
		if !IsWildcard(l) {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// IsDeterministic reports whether the automaton has at most one start state
// and no state with two transitions matching the same event (wildcards
// overlap everything, so any wildcard alongside another edge from the same
// state makes the automaton nondeterministic).
func (f *FA) IsDeterministic() bool {
	if f.start.Len() > 1 {
		return false
	}
	for s := 0; s < f.numStates; s++ {
		seen := map[int]bool{}
		wild := false
		for _, ti := range f.byFrom[s] {
			id := f.labelOf[ti]
			if IsWildcard(f.trans[ti].Label) {
				if wild || len(seen) > 0 {
					return false
				}
				wild = true
				continue
			}
			if wild || seen[id] {
				return false
			}
			seen[id] = true
		}
	}
	return true
}

// outgoing returns the transition indices leaving s whose label matches e.
func (f *FA) matching(s State, e event.Event) []int {
	var out []int
	key := e.String()
	for _, ti := range f.byFrom[s] {
		t := f.trans[ti]
		if IsWildcard(t.Label) || t.Label.String() == key {
			out = append(out, ti)
		}
	}
	return out
}

func toStates(s *bitset.Set) []State {
	elems := s.Elems()
	out := make([]State, len(elems))
	for i, e := range elems {
		out[i] = State(e)
	}
	return out
}

// String renders the automaton as a compact listing.
func (f *FA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fa %q: %d states, %d transitions\n", f.name, f.numStates, len(f.trans))
	fmt.Fprintf(&b, "  start: %s  accept: %s\n", statesString(f.StartStates()), statesString(f.AcceptStates()))
	for i, t := range f.trans {
		fmt.Fprintf(&b, "  [%d] %s\n", i, t)
	}
	return b.String()
}

func statesString(ss []State) string {
	parts := make([]string, len(ss))
	for i, s := range ss {
		parts[i] = fmt.Sprintf("s%d", int(s))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
