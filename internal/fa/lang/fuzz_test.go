package lang_test

import (
	"testing"

	"repro/internal/event"
	"repro/internal/fa"
	"repro/internal/fa/lang"
	"repro/internal/trace"
)

// decodeFA mirrors the FuzzSimDifferential encoding in internal/fa: byte 0
// picks the state count, byte 1 the accepting state, and each further byte
// is an edge — from the high nibble, to the low nibble, label cycling
// through the alphabet with every fourth edge a wildcard.
func decodeFA(faBytes []byte) *fa.FA {
	alpha := []event.Event{
		event.MustParse("a()"),
		event.MustParse("b()"),
		event.MustParse("X = c(Y)"),
	}
	b := fa.NewBuilder("fuzz")
	n := 1
	if len(faBytes) > 0 {
		n = 1 + int(faBytes[0]%6)
	}
	states := b.States(n)
	b.Start(states[0])
	if len(faBytes) > 1 {
		b.Accept(states[int(faBytes[1])%n])
	} else {
		b.Accept(states[n-1])
	}
	var edgeBytes []byte
	if len(faBytes) > 2 {
		edgeBytes = faBytes[2:]
	}
	for i, x := range edgeBytes {
		from := states[int(x>>4)%n]
		to := states[int(x&0xf)%n]
		switch i % 4 {
		case 3:
			b.WildcardEdge(from, to)
		default:
			b.Edge(from, alpha[i%4], to)
		}
	}
	return b.MustBuild()
}

// shortTraces enumerates every trace over the automaton's own alphabet up
// to length 3 — the bounded oracle both fuzz targets compare against.
func shortTraces(f *fa.FA) []trace.Trace {
	return allTraces(f.Alphabet(), 3)
}

// FuzzDeterminize checks the subset construction against the compiled NFA
// simulator: the determinized automaton must be deterministic and agree
// with fa.Sim on every short trace over the automaton's alphabet.
func FuzzDeterminize(f *testing.F) {
	f.Add([]byte{3, 1, 0x01, 0x12, 0x21, 0x0a})
	f.Add([]byte{2, 0, 0x00, 0x01})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, faBytes []byte) {
		if len(faBytes) > 64 {
			return
		}
		nfa := decodeFA(faBytes)
		det, err := lang.Determinize(nfa)
		if err != nil {
			t.Fatalf("Determinize: %v", err)
		}
		if !det.IsDeterministic() {
			t.Fatalf("Determinize output is nondeterministic:\n%s", det)
		}
		for _, tr := range shortTraces(nfa) {
			if got, want := det.Accepts(tr), nfa.Accepts(tr); got != want {
				t.Fatalf("determinized disagrees on %q: got %v, Sim says %v on\n%s",
					tr.Key(), got, want, nfa)
			}
		}
	})
}

// FuzzComplementInclusion checks complementation against the NFA
// simulator on short traces, and the inclusion engine's reflexivity:
// Includes(A, A) holds for every automaton, and any witness from
// Includes(A, B) must separate the operands.
func FuzzComplementInclusion(f *testing.F) {
	f.Add([]byte{3, 1, 0x01, 0x12}, []byte{2, 0, 0x00})
	f.Add([]byte{}, []byte{4, 2, 0x13, 0x31, 0x22})
	f.Fuzz(func(t *testing.T, aBytes, bBytes []byte) {
		if len(aBytes) > 64 || len(bBytes) > 64 {
			return
		}
		a := decodeFA(aBytes)
		b := decodeFA(bBytes)
		d, err := lang.Compile(a, a.Alphabet())
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		comp := d.Complement()
		for _, tr := range shortTraces(a) {
			if comp.Accepts(tr) == a.Accepts(tr) {
				t.Fatalf("complement agrees with original on %q:\n%s", tr.Key(), a)
			}
		}
		if inc, w, err := lang.Includes(a, a); err != nil || !inc {
			t.Fatalf("Includes(A, A) = %v, %q, %v", inc, w.Key(), err)
		}
		inc, w, err := lang.Includes(a, b)
		if err != nil {
			t.Fatalf("Includes: %v", err)
		}
		if !inc && (!a.Accepts(w) || b.Accepts(w)) {
			t.Fatalf("witness %q does not separate (a: %v, b: %v)",
				w.Key(), a.Accepts(w), b.Accepts(w))
		}
	})
}
