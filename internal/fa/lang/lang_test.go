package lang_test

import (
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/fa"
	"repro/internal/fa/lang"
	"repro/internal/trace"
)

var testAlpha = []event.Event{
	event.MustParse("a()"),
	event.MustParse("b()"),
	event.MustParse("X = c(Y)"),
}

// randomNFA builds a small random automaton over testAlpha, optionally
// with wildcard edges, mirroring the fuzz decoding in internal/fa.
func randomNFA(rng *rand.Rand, wildcards bool) *fa.FA {
	b := fa.NewBuilder("rand")
	n := 1 + rng.Intn(4)
	states := b.States(n)
	b.Start(states[rng.Intn(n)])
	for s := 0; s < n; s++ {
		if rng.Intn(3) == 0 {
			b.Accept(states[s])
		}
	}
	edges := rng.Intn(8)
	for i := 0; i < edges; i++ {
		from := states[rng.Intn(n)]
		to := states[rng.Intn(n)]
		if wildcards && rng.Intn(6) == 0 {
			b.WildcardEdge(from, to)
		} else {
			b.Edge(from, testAlpha[rng.Intn(len(testAlpha))], to)
		}
	}
	if rng.Intn(4) == 0 {
		b.Accept(states[rng.Intn(n)])
	}
	return b.MustBuild()
}

// allTraces enumerates every trace over the alphabet up to maxLen — the
// brute-force bounded oracle the semantic operations are pinned against.
func allTraces(alpha []event.Event, maxLen int) []trace.Trace {
	out := []trace.Trace{trace.New("t")}
	level := [][]event.Event{nil}
	for l := 0; l < maxLen; l++ {
		var next [][]event.Event
		for _, prefix := range level {
			for _, e := range alpha {
				evs := append(append([]event.Event(nil), prefix...), e)
				next = append(next, evs)
				out = append(out, trace.New("t", evs...))
			}
		}
		level = next
	}
	return out
}

func TestCompileMatchesSim(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	oracle := allTraces(testAlpha, 4)
	for iter := 0; iter < 200; iter++ {
		f := randomNFA(rng, true)
		d, err := lang.Compile(f, f.Alphabet())
		if err != nil {
			t.Fatalf("iter %d: Compile: %v", iter, err)
		}
		for _, tr := range oracle {
			if !inAlphabet(tr, f.Alphabet()) {
				continue
			}
			if got, want := d.Accepts(tr), f.Accepts(tr); got != want {
				t.Fatalf("iter %d: DFA.Accepts(%q) = %v, Sim says %v on\n%s",
					iter, tr.Key(), got, want, f)
			}
		}
	}
}

func inAlphabet(tr trace.Trace, alpha []event.Event) bool {
	in := map[string]bool{}
	for _, e := range alpha {
		in[e.String()] = true
	}
	for _, e := range tr.Events {
		if !in[e.String()] {
			return false
		}
	}
	return true
}

func TestComplementFlipsMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	oracle := allTraces(testAlpha, 4)
	for iter := 0; iter < 100; iter++ {
		f := randomNFA(rng, false)
		d, err := lang.Compile(f, testAlpha)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		comp := d.Complement()
		for _, tr := range oracle {
			if comp.Accepts(tr) == d.Accepts(tr) {
				t.Fatalf("iter %d: complement agrees with original on %q", iter, tr.Key())
			}
		}
	}
}

func TestProductIntersects(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	oracle := allTraces(testAlpha, 4)
	for iter := 0; iter < 100; iter++ {
		f := randomNFA(rng, false)
		g := randomNFA(rng, false)
		df, err := lang.Compile(f, testAlpha)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		dg, err := lang.Compile(g, testAlpha)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		prod, err := lang.Product(df, dg, func(a, b bool) bool { return a && b })
		if err != nil {
			t.Fatalf("Product: %v", err)
		}
		for _, tr := range oracle {
			want := df.Accepts(tr) && dg.Accepts(tr)
			if got := prod.Accepts(tr); got != want {
				t.Fatalf("iter %d: product(%q) = %v, want %v", iter, tr.Key(), got, want)
			}
		}
	}
}

func TestWitnessIsShortestAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 200; iter++ {
		f := randomNFA(rng, false)
		d, err := lang.Compile(f, testAlpha)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		w, ok := d.Witness()
		enum := f.Enumerate(8, 1)
		if !ok {
			if len(enum) > 0 {
				t.Fatalf("iter %d: Witness says empty, Enumerate found %q on\n%s",
					iter, enum[0].Key(), f)
			}
			continue
		}
		if !f.Accepts(w) {
			t.Fatalf("iter %d: witness %q rejected by the automaton", iter, w.Key())
		}
		if len(enum) == 0 {
			// Shortest accepted word longer than the enumeration bound —
			// only possible when the witness itself is longer too.
			if w.Len() <= 8 {
				t.Fatalf("iter %d: Enumerate(8) found nothing but witness %q is short", iter, w.Key())
			}
			continue
		}
		if w.Len() != enum[0].Len() {
			t.Fatalf("iter %d: witness %q has length %d, shortest accepted is %q",
				iter, w.Key(), w.Len(), enum[0].Key())
		}
	}
}

func TestIncludesSelfAndOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 150; iter++ {
		a := randomNFA(rng, iter%2 == 0)
		b := randomNFA(rng, iter%3 == 0)
		if inc, w, err := lang.Includes(a, a); err != nil || !inc || w.Len() != 0 {
			t.Fatalf("iter %d: Includes(a, a) = %v, %q, %v", iter, inc, w.Key(), err)
		}
		inc, w, err := lang.Includes(a, b)
		if err != nil {
			t.Fatalf("iter %d: Includes: %v", iter, err)
		}
		if inc {
			// Bounded oracle: every short accepted trace of a must be
			// accepted by b.
			for _, tr := range a.Enumerate(6, 100) {
				if !b.Accepts(tr) {
					t.Fatalf("iter %d: Includes says ⊆ but %q separates\n%s\n%s",
						iter, tr.Key(), a, b)
				}
			}
			continue
		}
		if !a.Accepts(w) || b.Accepts(w) {
			t.Fatalf("iter %d: witness %q not separating (a: %v, b: %v)",
				iter, w.Key(), a.Accepts(w), b.Accepts(w))
		}
		// Shortest: no bounded-enumerated separating trace may be shorter.
		if w.Len() > 0 {
			for _, tr := range a.Enumerate(w.Len()-1, 200) {
				if tr.Len() < w.Len() && !b.Accepts(tr) {
					t.Fatalf("iter %d: witness %q not shortest, %q is shorter",
						iter, w.Key(), tr.Key())
				}
			}
		}
	}
}

func TestEquivalentMatchesOpsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 150; iter++ {
		a := randomNFA(rng, false)
		b := randomNFA(rng, false)
		want, err := fa.Equivalent(a, b)
		if err != nil {
			t.Fatalf("fa.Equivalent: %v", err)
		}
		got, w, err := lang.Equivalent(a, b)
		if err != nil {
			t.Fatalf("lang.Equivalent: %v", err)
		}
		if got != want {
			t.Fatalf("iter %d: lang.Equivalent = %v, fa.Equivalent = %v on\n%s\n%s",
				iter, got, want, a, b)
		}
		if !got && a.Accepts(w) == b.Accepts(w) {
			t.Fatalf("iter %d: witness %q does not separate", iter, w.Key())
		}
	}
}

func TestEquivalentSeesWildcardOnlyDifference(t *testing.T) {
	b1 := fa.NewBuilder("anything")
	s1 := b1.State()
	b1.Start(s1)
	b1.Accept(s1)
	b1.WildcardEdge(s1, s1)
	anything := b1.MustBuild()

	b2 := fa.NewBuilder("only-a")
	s2 := b2.State()
	b2.Start(s2)
	b2.Accept(s2)
	b2.Edge(s2, event.MustParse("a()"), s2)
	onlyA := b2.MustBuild()

	eq, w, err := lang.Equivalent(anything, onlyA)
	if err != nil {
		t.Fatalf("Equivalent: %v", err)
	}
	if eq {
		t.Fatalf("wildcard loop reported equivalent to a()-loop")
	}
	if !anything.Accepts(w) || onlyA.Accepts(w) {
		t.Fatalf("witness %q does not separate the wildcard difference", w.Key())
	}
	if got := w.Key(); got != "other()" {
		t.Fatalf("expected the fresh other() symbol as witness, got %q", got)
	}
}

func TestDeterminizeDeterministicAndEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 150; iter++ {
		f := randomNFA(rng, false)
		det, err := lang.Determinize(f)
		if err != nil {
			t.Fatalf("Determinize: %v", err)
		}
		if !det.IsDeterministic() {
			t.Fatalf("iter %d: Determinize output is nondeterministic:\n%s", iter, det)
		}
		eq, w, err := lang.Equivalent(f, det)
		if err != nil {
			t.Fatalf("Equivalent: %v", err)
		}
		if !eq {
			t.Fatalf("iter %d: determinized language differs, witness %q", iter, w.Key())
		}
	}
}

func TestMinimizeMatchesMooreMinimize(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 150; iter++ {
		f := randomNFA(rng, false)
		min, err := lang.Minimize(f)
		if err != nil {
			t.Fatalf("lang.Minimize: %v", err)
		}
		moore, err := f.Minimize()
		if err != nil {
			t.Fatalf("fa.Minimize: %v", err)
		}
		if min.NumStates() != moore.NumStates() {
			t.Fatalf("iter %d: Hopcroft gives %d states, Moore gives %d on\n%s",
				iter, min.NumStates(), moore.NumStates(), f)
		}
		if !min.IsDeterministic() {
			t.Fatalf("iter %d: minimized automaton is nondeterministic", iter)
		}
		eq, w, err := lang.Equivalent(f, min)
		if err != nil {
			t.Fatalf("Equivalent: %v", err)
		}
		if !eq {
			t.Fatalf("iter %d: minimized language differs, witness %q", iter, w.Key())
		}
	}
}

func TestEquivalentStatesFindsMergeablePair(t *testing.T) {
	b := fa.NewBuilder("dup")
	s := b.States(4)
	b.Start(s[0])
	b.Accept(s[3])
	b.Edge(s[0], event.MustParse("a()"), s[1])
	b.Edge(s[0], event.MustParse("b()"), s[2])
	b.Edge(s[1], event.MustParse("X = c(Y)"), s[3])
	b.Edge(s[2], event.MustParse("X = c(Y)"), s[3])
	f := b.MustBuild()

	groups, err := lang.EquivalentStates(f)
	if err != nil {
		t.Fatalf("EquivalentStates: %v", err)
	}
	if len(groups) != 1 || len(groups[0]) != 2 || groups[0][0] != 1 || groups[0][1] != 2 {
		t.Fatalf("expected one mergeable group [1 2], got %v", groups)
	}

	// The minimal automaton must not report anything.
	min, err := lang.Minimize(f)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	groups, err = lang.EquivalentStates(min)
	if err != nil {
		t.Fatalf("EquivalentStates(min): %v", err)
	}
	if len(groups) != 0 {
		t.Fatalf("minimal automaton reports mergeable states: %v", groups)
	}
}

func TestEquivalentStatesRejectsNondeterministic(t *testing.T) {
	b := fa.NewBuilder("nd")
	s := b.States(2)
	b.Start(s[0])
	b.Accept(s[1])
	b.Edge(s[0], event.MustParse("a()"), s[0])
	b.Edge(s[0], event.MustParse("a()"), s[1])
	if _, err := lang.EquivalentStates(b.MustBuild()); err == nil {
		t.Fatal("expected an error for a nondeterministic automaton")
	}
}

func TestCompileRejectsNarrowAlphabet(t *testing.T) {
	b := fa.NewBuilder("wide")
	s := b.States(2)
	b.Start(s[0])
	b.Accept(s[1])
	b.Edge(s[0], event.MustParse("a()"), s[1])
	b.Edge(s[0], event.MustParse("b()"), s[1])
	f := b.MustBuild()
	if _, err := lang.Compile(f, []event.Event{event.MustParse("a()")}); err == nil {
		t.Fatal("expected an error for an alphabet that misses a label")
	}
	if _, err := lang.Compile(f, []event.Event{fa.Wildcard()}); err == nil {
		t.Fatal("expected an error for a wildcard in the alphabet")
	}
}
