// Package lang is the semantic analysis engine over specification
// automata: determinization by subset construction, completion,
// complement, synchronized product, emptiness with shortest-witness
// extraction, language inclusion and equivalence with concrete
// counterexample traces, and Hopcroft minimization.
//
// It complements internal/fa's builder-level operations (fa/ops.go): those
// stay on the *fa.FA representation the derivation pipeline uses, while
// this package compiles an automaton once into a dense complete DFA —
// contiguous symbol ids, flat delta rows — where product walks, emptiness
// BFS, and partition refinement touch plain int32 tables. All semantics
// are relative to an explicit analysis alphabet; wildcard transitions
// expand over it during compilation, and Alphabet adds a fresh "other"
// symbol when wildcards are present so behaviour outside both concrete
// alphabets stays observable.
//
// Every counterexample this package reports is re-executed through the
// compiled fa.Sim plans before it escapes: Includes and Equivalent return
// an error rather than an unverified witness.
package lang

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/event"
	"repro/internal/fa"
	"repro/internal/trace"
)

// DFA is a complete deterministic automaton over a dense alphabet: every
// state has exactly one successor per symbol (Delta[s][c]), and every
// event outside the alphabet is rejected.
type DFA struct {
	// Alphabet is the dense symbol order: sorted by Event.String, no
	// duplicates, no wildcards.
	Alphabet []event.Event
	// Start is the initial state.
	Start int
	// Accept marks the accepting states.
	Accept []bool
	// Delta[s][c] is the successor of state s on Alphabet[c].
	Delta [][]int32

	symIdx map[string]int
}

// NumStates returns the state count.
func (d *DFA) NumStates() int { return len(d.Accept) }

// Compile determinizes and completes f over the given analysis alphabet
// by subset construction: the empty subset is the rejecting sink, so the
// result is total by construction. Wildcard transitions match every
// alphabet symbol (the fa.ExpandWildcards semantics). The alphabet must
// cover every concrete label of f; compiling against a narrower alphabet
// would silently drop transitions, so it is an error instead.
func Compile(f *fa.FA, alphabet []event.Event) (*DFA, error) {
	alpha, idx, err := normalizeAlphabet(alphabet)
	if err != nil {
		return nil, fmt.Errorf("lang: compile %q: %w", f.Name(), err)
	}
	for _, e := range f.Alphabet() {
		if _, ok := idx[e.String()]; !ok {
			return nil, fmt.Errorf("lang: compile %q: alphabet does not cover label %s", f.Name(), e)
		}
	}
	n := f.NumStates()
	k := len(alpha)

	// Per NFA state: successors grouped by symbol, wildcard successors.
	bySym := make([][][]int32, n)
	wild := make([][]int32, n)
	for s := range bySym {
		bySym[s] = make([][]int32, k)
	}
	for _, t := range f.Transitions() {
		if fa.IsWildcard(t.Label) {
			wild[t.From] = append(wild[t.From], int32(t.To))
			continue
		}
		c := idx[t.Label.String()]
		bySym[t.From][c] = append(bySym[t.From][c], int32(t.To))
	}
	acc := bitset.New(n)
	for _, s := range f.AcceptStates() {
		acc.Add(int(s))
	}

	d := &DFA{Alphabet: alpha, symIdx: idx}
	seen := map[string]int{}
	var sets []*bitset.Set
	mk := func(set *bitset.Set) int {
		key := set.Key()
		if id, ok := seen[key]; ok {
			return id
		}
		id := len(sets)
		seen[key] = id
		sets = append(sets, set)
		d.Accept = append(d.Accept, set.Intersects(acc))
		d.Delta = append(d.Delta, make([]int32, k))
		return id
	}
	start := bitset.New(n)
	for _, s := range f.StartStates() {
		start.Add(int(s))
	}
	d.Start = mk(start)
	for head := 0; head < len(sets); head++ {
		cur := sets[head]
		for c := 0; c < k; c++ {
			next := bitset.New(n)
			cur.Range(func(s int) bool {
				for _, to := range bySym[s][c] {
					next.Add(int(to))
				}
				for _, to := range wild[s] {
					next.Add(int(to))
				}
				return true
			})
			d.Delta[head][c] = int32(mk(next))
		}
	}
	return d, nil
}

// normalizeAlphabet sorts and dedupes the events and rejects wildcards.
func normalizeAlphabet(alphabet []event.Event) ([]event.Event, map[string]int, error) {
	byKey := map[string]event.Event{}
	for _, e := range alphabet {
		if fa.IsWildcard(e) {
			return nil, nil, errors.New("alphabet must not contain the wildcard")
		}
		byKey[e.String()] = e
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	alpha := make([]event.Event, len(keys))
	idx := make(map[string]int, len(keys))
	for i, k := range keys {
		alpha[i] = byKey[k]
		idx[k] = i
	}
	return alpha, idx, nil
}

// Accepts reports membership of the trace in the DFA's language. Events
// outside the analysis alphabet are rejected outright.
func (d *DFA) Accepts(t trace.Trace) bool {
	s := d.Start
	for _, e := range t.Events {
		c, ok := d.symIdx[e.String()]
		if !ok {
			return false
		}
		s = int(d.Delta[s][c])
	}
	return d.Accept[s]
}

// Complement flips the accepting set; over a complete DFA that is exact
// language complement relative to the analysis alphabet. The delta table
// is shared with the receiver.
func (d *DFA) Complement() *DFA {
	acc := make([]bool, len(d.Accept))
	for i, a := range d.Accept {
		acc[i] = !a
	}
	return &DFA{Alphabet: d.Alphabet, Start: d.Start, Accept: acc, Delta: d.Delta, symIdx: d.symIdx}
}

// Product builds the synchronized product of two complete DFAs over the
// same alphabet, restricted to reachable pairs; accept combines the
// operands' accepting flags (conjunction gives intersection, x && !y
// gives the inclusion-counterexample language, and so on).
func Product(a, b *DFA, accept func(aAcc, bAcc bool) bool) (*DFA, error) {
	if len(a.Alphabet) != len(b.Alphabet) {
		return nil, errors.New("lang: product requires identical alphabets")
	}
	for i := range a.Alphabet {
		if a.Alphabet[i].String() != b.Alphabet[i].String() {
			return nil, errors.New("lang: product requires identical alphabets")
		}
	}
	k := len(a.Alphabet)
	type pair struct{ x, y int32 }
	id := map[pair]int{}
	var pairs []pair
	d := &DFA{Alphabet: a.Alphabet, symIdx: a.symIdx}
	mk := func(p pair) int {
		if i, ok := id[p]; ok {
			return i
		}
		i := len(pairs)
		id[p] = i
		pairs = append(pairs, p)
		d.Accept = append(d.Accept, accept(a.Accept[p.x], b.Accept[p.y]))
		d.Delta = append(d.Delta, make([]int32, k))
		return i
	}
	d.Start = mk(pair{int32(a.Start), int32(b.Start)})
	for head := 0; head < len(pairs); head++ {
		p := pairs[head]
		for c := 0; c < k; c++ {
			d.Delta[head][c] = int32(mk(pair{a.Delta[p.x][c], b.Delta[p.y][c]}))
		}
	}
	return d, nil
}

// Witness returns the shortest trace the automaton accepts, or ok=false
// when the language is empty. BFS expands symbols in alphabet order, so
// ties between equal-length words break toward the lexicographically
// least one and the result is deterministic.
func (d *DFA) Witness() (trace.Trace, bool) {
	n := len(d.Accept)
	if n == 0 {
		return trace.Trace{}, false
	}
	prev := make([]int32, n)
	psym := make([]int32, n)
	seen := make([]bool, n)
	for i := range prev {
		prev[i] = -1
	}
	seen[d.Start] = true
	if d.Accept[d.Start] {
		return trace.New("witness"), true
	}
	queue := []int32{int32(d.Start)}
	goal := int32(-1)
	for len(queue) > 0 && goal < 0 {
		s := queue[0]
		queue = queue[1:]
		for c, to := range d.Delta[s] {
			if seen[to] {
				continue
			}
			seen[to] = true
			prev[to] = s
			psym[to] = int32(c)
			if d.Accept[to] {
				goal = to
				break
			}
			queue = append(queue, to)
		}
	}
	if goal < 0 {
		return trace.Trace{}, false
	}
	var rev []event.Event
	for s := goal; prev[s] >= 0; s = prev[s] {
		rev = append(rev, d.Alphabet[psym[s]])
	}
	evs := make([]event.Event, len(rev))
	for i := range rev {
		evs[i] = rev[len(rev)-1-i]
	}
	return trace.New("witness", evs...), true
}

// FA converts the complete DFA back to an fa.FA, sink included; Trim the
// result to drop states off every accepting path.
func (d *DFA) FA(name string) *fa.FA {
	b := fa.NewBuilder(name)
	ss := b.States(len(d.Accept))
	b.Start(ss[d.Start])
	for i, a := range d.Accept {
		if a {
			b.Accept(ss[i])
		}
	}
	for s, row := range d.Delta {
		for c, to := range row {
			b.Edge(ss[s], d.Alphabet[c], ss[int(to)])
		}
	}
	return b.MustBuild()
}

// Determinize returns a trimmed deterministic automaton recognizing f's
// language over f's own alphabet (wildcards expand over that alphabet, as
// with fa.ExpandWildcards).
func Determinize(f *fa.FA) (*fa.FA, error) {
	d, err := Compile(f, f.Alphabet())
	if err != nil {
		return nil, err
	}
	return d.FA(f.Name()).Trim(), nil
}

// Alphabet returns the joint analysis alphabet for f and g: the union of
// their concrete labels, extended — when either automaton has wildcard
// transitions — with one fresh "other" symbol standing in for every event
// outside the union. That keeps wildcard-only differences observable
// (a wildcard automaton accepts the fresh symbol, a concrete one rejects
// it) while witnesses remain executable traces.
func Alphabet(f, g *fa.FA) []event.Event {
	byKey := map[string]event.Event{}
	add := func(a *fa.FA) {
		for _, e := range a.Alphabet() {
			byKey[e.String()] = e
		}
	}
	add(f)
	add(g)
	if f.HasWildcard() || g.HasWildcard() {
		name := "other"
		for i := 2; ; i++ {
			if _, taken := byKey[name+"()"]; !taken {
				break
			}
			name = fmt.Sprintf("other%d", i)
		}
		other := event.Call(name)
		byKey[other.String()] = other
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]event.Event, len(keys))
	for i, k := range keys {
		out[i] = byKey[k]
	}
	return out
}

// Includes reports whether L(a) ⊆ L(b) over the joint analysis alphabet.
// When inclusion fails, the returned witness is a shortest concrete trace
// accepted by a and rejected by b — extracted from the emptiness BFS over
// the a ∩ ¬b product and re-executed through both automata's compiled
// fa.Sim plans before it is returned; a witness that fails re-execution
// is an internal error, never a reported result.
func Includes(a, b *fa.FA) (bool, trace.Trace, error) {
	alpha := Alphabet(a, b)
	da, err := Compile(a, alpha)
	if err != nil {
		return false, trace.Trace{}, err
	}
	db, err := Compile(b, alpha)
	if err != nil {
		return false, trace.Trace{}, err
	}
	diff, err := Product(da, db.Complement(), func(x, y bool) bool { return x && y })
	if err != nil {
		return false, trace.Trace{}, err
	}
	w, ok := diff.Witness()
	if !ok {
		return true, trace.Trace{}, nil
	}
	if !a.Accepts(w) || b.Accepts(w) {
		return false, trace.Trace{}, fmt.Errorf(
			"lang: witness %q failed re-execution: accepted by %q: %v, by %q: %v",
			w.Key(), a.Name(), a.Accepts(w), b.Name(), b.Accepts(w))
	}
	return false, w, nil
}

// Equivalent reports whether a and b recognize the same language over the
// joint analysis alphabet. When they differ, the witness is a shortest
// separating trace (verified by re-execution); test which side accepts it
// with fa.Accepts.
func Equivalent(a, b *fa.FA) (bool, trace.Trace, error) {
	inc, w, err := Includes(a, b)
	if err != nil || !inc {
		return inc, w, err
	}
	inc, w, err = Includes(b, a)
	if err != nil || !inc {
		return inc, w, err
	}
	return true, trace.Trace{}, nil
}

// Reachable marks the states reachable from a start state.
func Reachable(f *fa.FA) []bool {
	seen := make([]bool, f.NumStates())
	var queue []int
	for _, s := range f.StartStates() {
		if !seen[int(s)] {
			seen[int(s)] = true
			queue = append(queue, int(s))
		}
	}
	fwd := make([][]int, f.NumStates())
	for _, t := range f.Transitions() {
		fwd[int(t.From)] = append(fwd[int(t.From)], int(t.To))
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, n := range fwd[s] {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	return seen
}

// Coreachable marks the states from which some accepting state is
// reachable.
func Coreachable(f *fa.FA) []bool {
	seen := make([]bool, f.NumStates())
	var queue []int
	for _, s := range f.AcceptStates() {
		if !seen[int(s)] {
			seen[int(s)] = true
			queue = append(queue, int(s))
		}
	}
	rev := make([][]int, f.NumStates())
	for _, t := range f.Transitions() {
		rev[int(t.To)] = append(rev[int(t.To)], int(t.From))
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, n := range rev[s] {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	return seen
}
