package lang

import (
	"fmt"
	"sort"

	"repro/internal/fa"
)

// partition runs Hopcroft's partition refinement over the complete DFA
// and returns one block id per state such that two states share a block
// iff they accept the same residual language. Blocks are renumbered in
// order of their smallest state, so the result is deterministic.
func (d *DFA) partition() []int {
	n := len(d.Accept)
	if n == 0 {
		return nil
	}
	k := len(d.Alphabet)

	// CSR inverse delta per symbol: predecessors of each state.
	inv := make([][]int32, k)
	invOff := make([][]int32, k)
	for c := 0; c < k; c++ {
		cnt := make([]int32, n+1)
		for s := 0; s < n; s++ {
			cnt[d.Delta[s][c]+1]++
		}
		for i := 1; i <= n; i++ {
			cnt[i] += cnt[i-1]
		}
		fill := append([]int32(nil), cnt...)
		list := make([]int32, n)
		for s := 0; s < n; s++ {
			to := d.Delta[s][c]
			list[fill[to]] = int32(s)
			fill[to]++
		}
		inv[c] = list
		invOff[c] = cnt
	}

	// Refinable partition: states grouped contiguously in elems, with
	// loc/blk back-pointers and [first, past) block boundaries.
	elems := make([]int32, 0, n)
	loc := make([]int32, n)
	blk := make([]int32, n)
	var first, past []int32
	newBlock := func(states []int32) int32 {
		id := int32(len(first))
		first = append(first, int32(len(elems)))
		for _, s := range states {
			loc[s] = int32(len(elems))
			blk[s] = id
			elems = append(elems, s)
		}
		past = append(past, int32(len(elems)))
		return id
	}
	var accepting, rejecting []int32
	for s := 0; s < n; s++ {
		if d.Accept[s] {
			accepting = append(accepting, int32(s))
		} else {
			rejecting = append(rejecting, int32(s))
		}
	}
	if len(accepting) > 0 {
		newBlock(accepting)
	}
	if len(rejecting) > 0 {
		newBlock(rejecting)
	}

	type splitter struct{ block, sym int32 }
	var work []splitter
	inWork := make([][]bool, len(first))
	for b := range inWork {
		inWork[b] = make([]bool, k)
	}
	// Seed with the smaller initial block (either works when one is all
	// of Q; Hopcroft's saving is picking the smaller when there are two).
	seed := int32(0)
	if len(first) == 2 && len(rejecting) < len(accepting) {
		seed = 1
	}
	for c := 0; c < k; c++ {
		inWork[seed][c] = true
		work = append(work, splitter{seed, int32(c)})
	}

	mark := make([]int32, len(first))
	var touched []int32
	var aSnap []int32
	for len(work) > 0 {
		sp := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[sp.block][sp.sym] = false

		// Snapshot the splitter block's members: splitting below may
		// rearrange it while we're iterating.
		aSnap = append(aSnap[:0], elems[first[sp.block]:past[sp.block]]...)
		touched = touched[:0]
		for _, q := range aSnap {
			lo, hi := invOff[sp.sym][q], invOff[sp.sym][q+1]
			for _, p := range inv[sp.sym][lo:hi] {
				b := blk[p]
				if mark[b] == 0 {
					touched = append(touched, b)
				}
				// Swap p into the marked prefix of its block. A complete
				// DFA gives each p one successor per symbol, so p is
				// visited at most once per splitter.
				i := loc[p]
				j := first[b] + mark[b]
				other := elems[j]
				elems[i], elems[j] = other, p
				loc[p], loc[other] = j, i
				mark[b]++
			}
		}
		for _, b := range touched {
			m := mark[b]
			mark[b] = 0
			size := past[b] - first[b]
			if m == size {
				continue
			}
			// The marked prefix becomes a new block.
			nb := int32(len(first))
			first = append(first, first[b])
			past = append(past, first[b]+m)
			first[b] += m
			for i := first[nb]; i < past[nb]; i++ {
				blk[elems[i]] = nb
			}
			mark = append(mark, 0)
			inWork = append(inWork, make([]bool, k))
			for c := int32(0); c < int32(k); c++ {
				if inWork[b][c] {
					inWork[nb][c] = true
					work = append(work, splitter{nb, c})
					continue
				}
				target := nb
				if m > size-m {
					target = b
				}
				inWork[target][c] = true
				work = append(work, splitter{target, c})
			}
		}
	}

	// Renumber blocks by smallest member for a canonical result.
	renum := make([]int, len(first))
	for i := range renum {
		renum[i] = -1
	}
	out := make([]int, n)
	next := 0
	for s := 0; s < n; s++ {
		b := blk[s]
		if renum[b] < 0 {
			renum[b] = next
			next++
		}
		out[s] = renum[b]
	}
	return out
}

// Minimize returns the minimal trimmed deterministic automaton for f's
// language over f's own alphabet: subset-construction compile, Hopcroft
// partition refinement, quotient, trim. Wildcards expand over the
// alphabet during compilation, as with Determinize.
func Minimize(f *fa.FA) (*fa.FA, error) {
	d, err := Compile(f, f.Alphabet())
	if err != nil {
		return nil, err
	}
	blk := d.partition()
	nb := 0
	for _, b := range blk {
		if b+1 > nb {
			nb = b + 1
		}
	}
	rep := make([]int, nb)
	for i := range rep {
		rep[i] = -1
	}
	for s, b := range blk {
		if rep[b] < 0 {
			rep[b] = s
		}
	}
	b := fa.NewBuilder(f.Name())
	ss := b.States(nb)
	b.Start(ss[blk[d.Start]])
	for bi, r := range rep {
		if d.Accept[r] {
			b.Accept(ss[bi])
		}
		for c, to := range d.Delta[r] {
			b.Edge(ss[bi], d.Alphabet[c], ss[blk[to]])
		}
	}
	return b.MustBuild().Trim(), nil
}

// EquivalentStates groups the useful states (reachable and on some
// accepting path) of a deterministic automaton by residual language:
// every returned group has at least two states that could be merged
// without changing the language. Groups and their members come out in
// ascending state order. Nondeterministic automata are rejected — merging
// suggestions over subsets would not name the author's states.
func EquivalentStates(f *fa.FA) ([][]int, error) {
	if !f.IsDeterministic() {
		return nil, fmt.Errorf("lang: EquivalentStates requires a deterministic automaton, %q is not", f.Name())
	}
	alpha, idx, err := normalizeAlphabet(f.Alphabet())
	if err != nil {
		return nil, err
	}
	n := f.NumStates()
	k := len(alpha)
	// States 0..n-1 plus an explicit sink at n make the delta total.
	d := &DFA{Alphabet: alpha, symIdx: idx}
	d.Accept = make([]bool, n+1)
	d.Delta = make([][]int32, n+1)
	for s := 0; s <= n; s++ {
		row := make([]int32, k)
		for c := range row {
			row[c] = int32(n)
		}
		d.Delta[s] = row
	}
	for _, t := range f.Transitions() {
		if fa.IsWildcard(t.Label) {
			for c := 0; c < k; c++ {
				d.Delta[t.From][c] = int32(t.To)
			}
			continue
		}
		d.Delta[t.From][idx[t.Label.String()]] = int32(t.To)
	}
	for _, s := range f.AcceptStates() {
		d.Accept[int(s)] = true
	}
	starts := f.StartStates()
	d.Start = n // no start state: everything is residual-equal to the sink
	if len(starts) == 1 {
		d.Start = int(starts[0])
	}
	blk := d.partition()

	reach := Reachable(f)
	coreach := Coreachable(f)
	groups := map[int][]int{}
	for s := 0; s < n; s++ {
		if reach[s] && coreach[s] {
			groups[blk[s]] = append(groups[blk[s]], s)
		}
	}
	var out [][]int
	for _, g := range groups {
		if len(g) > 1 {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out, nil
}
