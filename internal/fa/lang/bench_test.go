package lang_test

import (
	"testing"

	"repro/internal/fa"
	"repro/internal/fa/lang"
	"repro/internal/specs"
)

// x11FA is the union of every corpus specification — the X11-scale
// automaton the speclint bench lane measures (dozens of states, ~70
// labels). bigFA unions the program models too (good and bad scenarios),
// roughly doubling the state count.
func x11FA(b *testing.B) *fa.FA {
	all := specs.All()
	out := all[0].FA
	for _, sp := range all[1:] {
		out = fa.Union(out, sp.FA)
	}
	return out
}

func bigFA(b *testing.B) *fa.FA {
	all := specs.All()
	out := all[0].FA
	for _, sp := range all {
		prog, err := specs.ProgramFA(sp.Name, sp.Model)
		if err != nil {
			b.Fatal(err)
		}
		out = fa.Union(out, prog)
	}
	return out
}

func BenchmarkLangDeterminize(b *testing.B) {
	for _, tc := range []struct {
		name string
		f    *fa.FA
	}{{"x11", x11FA(b)}, {"big", bigFA(b)}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lang.Compile(tc.f, tc.f.Alphabet()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLangMinimize(b *testing.B) {
	for _, tc := range []struct {
		name string
		f    *fa.FA
	}{{"x11", x11FA(b)}, {"big", bigFA(b)}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lang.Minimize(tc.f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLangInclusion measures the witness-producing inclusion check —
// the speclint v2 hot path — between a seeded buggy spec and its
// reference (x11) and between the big program-model union and the spec
// union (big; inclusion fails, so a witness is extracted every time).
func BenchmarkLangInclusion(b *testing.B) {
	sp := specs.All()[0]
	x11, big := x11FA(b), bigFA(b)
	b.Run("x11", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inc, _, err := lang.Includes(sp.Buggy, sp.FA)
			if err != nil {
				b.Fatal(err)
			}
			if inc {
				b.Fatalf("buggy %s unexpectedly included in the reference", sp.Name)
			}
		}
	})
	b.Run("big", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := lang.Includes(big, x11); err != nil {
				b.Fatal(err)
			}
		}
	})
}
