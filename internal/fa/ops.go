package fa

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/event"
)

// Trim returns an automaton restricted to useful states: reachable from a
// start state and able to reach an accepting state. The trimmed automaton
// recognizes the same language with (possibly) fewer states and transitions.
func (f *FA) Trim() *FA {
	reach := bitset.New(f.numStates)
	var stack []int
	f.start.Range(func(s int) bool {
		reach.Add(s)
		stack = append(stack, s)
		return true
	})
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ti := range f.byFrom[s] {
			to := int(f.trans[ti].To)
			if !reach.Has(to) {
				reach.Add(to)
				stack = append(stack, to)
			}
		}
	}
	live := bitset.New(f.numStates)
	f.accept.Range(func(s int) bool {
		live.Add(s)
		stack = append(stack, s)
		return true
	})
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ti := range f.byTo[s] {
			from := int(f.trans[ti].From)
			if !live.Has(from) {
				live.Add(from)
				stack = append(stack, from)
			}
		}
	}
	useful := bitset.Intersect(reach, live)
	remap := make(map[State]State)
	b := NewBuilder(f.name)
	useful.Range(func(s int) bool {
		remap[State(s)] = b.State()
		return true
	})
	useful.Range(func(s int) bool {
		if f.start.Has(s) {
			b.Start(remap[State(s)])
		}
		if f.accept.Has(s) {
			b.Accept(remap[State(s)])
		}
		return true
	})
	for _, t := range f.trans {
		if useful.Has(int(t.From)) && useful.Has(int(t.To)) {
			b.Edge(remap[t.From], t.Label, remap[t.To])
		}
	}
	if len(remap) == 0 {
		// Empty language: one non-accepting start state.
		s := b.State()
		b.Start(s)
	}
	return b.MustBuild()
}

// ExpandWildcards replaces each wildcard transition with explicit transitions
// for every label in the alphabet. The result matches the original on traces
// drawn from the alphabet; traces with out-of-alphabet events that the
// original accepted via wildcards are no longer accepted.
func (f *FA) ExpandWildcards(alphabet []event.Event) *FA {
	if !f.hasWildcard {
		return f
	}
	b := NewBuilder(f.name)
	b.States(f.numStates)
	for _, s := range f.StartStates() {
		b.Start(s)
	}
	for _, s := range f.AcceptStates() {
		b.Accept(s)
	}
	for _, t := range f.trans {
		if IsWildcard(t.Label) {
			for _, e := range alphabet {
				b.Edge(t.From, e, t.To)
			}
		} else {
			b.Edge(t.From, t.Label, t.To)
		}
	}
	return b.MustBuild()
}

// Determinize returns a deterministic automaton recognizing the same
// language, built by subset construction and trimmed. It returns an error if
// the automaton contains wildcard transitions (expand them first).
func (f *FA) Determinize() (*FA, error) {
	if f.hasWildcard {
		return nil, fmt.Errorf("fa %q: cannot determinize with wildcard transitions; call ExpandWildcards first", f.name)
	}
	type subset struct {
		key   string
		set   *bitset.Set
		state State
	}
	b := NewBuilder(f.name)
	seen := map[string]*subset{}
	var queue []*subset

	mk := func(set *bitset.Set) *subset {
		key := set.Key()
		if s, ok := seen[key]; ok {
			return s
		}
		s := &subset{key: key, set: set, state: b.State()}
		seen[key] = s
		queue = append(queue, s)
		if set.Intersects(f.accept) {
			b.Accept(s.state)
		}
		return s
	}
	start := mk(f.start.Clone())
	b.Start(start.state)

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Group outgoing transitions of the subset by label.
		byLabel := map[int]*bitset.Set{}
		cur.set.Range(func(s int) bool {
			for _, ti := range f.byFrom[s] {
				id := f.labelOf[ti]
				tgt := byLabel[id]
				if tgt == nil {
					tgt = bitset.New(f.numStates)
					byLabel[id] = tgt
				}
				tgt.Add(int(f.trans[ti].To))
			}
			return true
		})
		// Deterministic iteration order for reproducible state numbering.
		ids := make([]int, 0, len(byLabel))
		for id := range byLabel {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			return f.labels[ids[i]].String() < f.labels[ids[j]].String()
		})
		for _, id := range ids {
			next := mk(byLabel[id])
			b.Edge(cur.state, f.labels[id], next.state)
		}
	}
	return b.MustBuild().Trim(), nil
}

// Complete returns a deterministic automaton with a transition for every
// (state, label) pair over the given alphabet, adding a rejecting sink when
// needed. The input must be deterministic and wildcard-free.
func (f *FA) Complete(alphabet []event.Event) (*FA, error) {
	if f.hasWildcard {
		return nil, fmt.Errorf("fa %q: cannot complete with wildcards", f.name)
	}
	if !f.IsDeterministic() {
		return nil, fmt.Errorf("fa %q: Complete requires a deterministic automaton", f.name)
	}
	b := NewBuilder(f.name)
	b.States(f.numStates)
	for _, s := range f.StartStates() {
		b.Start(s)
	}
	for _, s := range f.AcceptStates() {
		b.Accept(s)
	}
	sink := State(-1)
	getSink := func() State {
		if sink < 0 {
			sink = b.State()
		}
		return sink
	}
	has := make([]map[string]bool, f.numStates)
	for s := 0; s < f.numStates; s++ {
		has[s] = map[string]bool{}
		for _, ti := range f.byFrom[s] {
			has[s][f.trans[ti].Label.String()] = true
		}
	}
	for _, t := range f.trans {
		b.Edge(t.From, t.Label, t.To)
	}
	for s := 0; s < f.numStates; s++ {
		for _, e := range alphabet {
			if !has[s][e.String()] {
				b.Edge(State(s), e, getSink())
			}
		}
	}
	if sink >= 0 {
		for _, e := range alphabet {
			b.Edge(sink, e, sink)
		}
	}
	if f.numStates == 0 {
		s := b.State()
		b.Start(s)
		for _, e := range alphabet {
			b.Edge(s, e, s)
		}
	}
	return b.MustBuild(), nil
}

// Minimize returns the minimal deterministic automaton for the language,
// using determinization followed by Moore partition refinement and trimming.
func (f *FA) Minimize() (*FA, error) {
	dfa, err := f.Determinize()
	if err != nil {
		return nil, err
	}
	alphabet := dfa.Alphabet()
	comp, err := dfa.Complete(alphabet)
	if err != nil {
		return nil, err
	}
	n := comp.numStates
	if n == 0 {
		return comp, nil
	}
	// delta[s][labelID] = successor
	labelIDs := map[string]int{}
	for i, e := range alphabet {
		labelIDs[e.String()] = i
	}
	delta := make([][]int, n)
	for s := range delta {
		delta[s] = make([]int, len(alphabet))
		for i := range delta[s] {
			delta[s][i] = -1
		}
	}
	for _, t := range comp.trans {
		delta[t.From][labelIDs[t.Label.String()]] = int(t.To)
	}
	// Moore refinement: iterate signatures until the partition stabilizes.
	part := make([]int, n)
	for s := 0; s < n; s++ {
		if comp.accept.Has(s) {
			part[s] = 1
		}
	}
	numBlocks := 2
	for {
		sig := make([]string, n)
		for s := 0; s < n; s++ {
			var sb strings.Builder
			fmt.Fprintf(&sb, "%d", part[s])
			for _, to := range delta[s] {
				fmt.Fprintf(&sb, ",%d", part[to])
			}
			sig[s] = sb.String()
		}
		blockOf := map[string]int{}
		next := make([]int, n)
		for s := 0; s < n; s++ {
			id, ok := blockOf[sig[s]]
			if !ok {
				id = len(blockOf)
				blockOf[sig[s]] = id
			}
			next[s] = id
		}
		if len(blockOf) == numBlocks {
			part = next
			break
		}
		numBlocks = len(blockOf)
		part = next
	}
	b := NewBuilder(f.name)
	b.States(numBlocks)
	startBlock := part[int(comp.StartStates()[0])]
	b.Start(State(startBlock))
	acceptSeen := map[int]bool{}
	comp.accept.Range(func(s int) bool {
		if !acceptSeen[part[s]] {
			acceptSeen[part[s]] = true
			b.Accept(State(part[s]))
		}
		return true
	})
	for s := 0; s < n; s++ {
		for li, to := range delta[s] {
			b.Edge(State(part[s]), alphabet[li], State(part[to]))
		}
	}
	return b.MustBuild().Trim(), nil
}

// Union returns an automaton accepting L(f) ∪ L(g).
func Union(f, g *FA) *FA {
	b := NewBuilder(f.name + "|" + g.name)
	fs := b.States(f.numStates)
	gs := b.States(g.numStates)
	for _, s := range f.StartStates() {
		b.Start(fs[int(s)])
	}
	for _, s := range g.StartStates() {
		b.Start(gs[int(s)])
	}
	for _, s := range f.AcceptStates() {
		b.Accept(fs[int(s)])
	}
	for _, s := range g.AcceptStates() {
		b.Accept(gs[int(s)])
	}
	for _, t := range f.trans {
		b.Edge(fs[int(t.From)], t.Label, fs[int(t.To)])
	}
	for _, t := range g.trans {
		b.Edge(gs[int(t.From)], t.Label, gs[int(t.To)])
	}
	if f.numStates+g.numStates == 0 {
		b.Start(b.State())
	}
	return b.MustBuild()
}

// Intersect returns a trimmed product automaton accepting L(f) ∩ L(g).
// Wildcard transitions in either operand match any label of the other.
func Intersect(f, g *FA) *FA {
	type pair struct{ a, b int }
	b := NewBuilder(f.name + "&" + g.name)
	states := map[pair]State{}
	var queue []pair
	get := func(p pair) State {
		if s, ok := states[p]; ok {
			return s
		}
		s := b.State()
		states[p] = s
		queue = append(queue, p)
		if f.accept.Has(p.a) && g.accept.Has(p.b) {
			b.Accept(s)
		}
		return s
	}
	f.start.Range(func(sa int) bool {
		g.start.Range(func(sb int) bool {
			b.Start(get(pair{sa, sb}))
			return true
		})
		return true
	})
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		from := states[p]
		for _, ti := range f.byFrom[p.a] {
			ta := f.trans[ti]
			for _, tj := range g.byFrom[p.b] {
				tb := g.trans[tj]
				var label event.Event
				switch {
				case IsWildcard(ta.Label) && IsWildcard(tb.Label):
					label = Wildcard()
				case IsWildcard(ta.Label):
					label = tb.Label
				case IsWildcard(tb.Label):
					label = ta.Label
				case ta.Label.String() == tb.Label.String():
					label = ta.Label
				default:
					continue
				}
				b.Edge(from, label, get(pair{int(ta.To), int(tb.To)}))
			}
		}
	}
	if len(states) == 0 {
		b.Start(b.State())
	}
	return b.MustBuild().Trim()
}

// Complement returns a deterministic automaton accepting exactly the traces
// over the alphabet that f rejects.
func (f *FA) Complement(alphabet []event.Event) (*FA, error) {
	dfa, err := f.Determinize()
	if err != nil {
		return nil, err
	}
	comp, err := dfa.Complete(alphabet)
	if err != nil {
		return nil, err
	}
	b := NewBuilder("!" + f.name)
	b.States(comp.numStates)
	for _, s := range comp.StartStates() {
		b.Start(s)
	}
	for s := 0; s < comp.numStates; s++ {
		if !comp.accept.Has(s) {
			b.Accept(State(s))
		}
	}
	for _, t := range comp.trans {
		b.Edge(t.From, t.Label, t.To)
	}
	return b.MustBuild(), nil
}

// Equivalent reports whether f and g recognize the same language, by
// comparing canonical forms of their minimal complete DFAs over the union of
// their alphabets.
func Equivalent(f, g *FA) (bool, error) {
	alpha := unionAlphabet(f, g)
	cf, err := canonical(f, alpha)
	if err != nil {
		return false, err
	}
	cg, err := canonical(g, alpha)
	if err != nil {
		return false, err
	}
	return cf == cg, nil
}

func unionAlphabet(f, g *FA) []event.Event {
	seen := map[string]event.Event{}
	for _, e := range f.Alphabet() {
		seen[e.String()] = e
	}
	for _, e := range g.Alphabet() {
		seen[e.String()] = e
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]event.Event, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}

// canonical renders the minimal complete DFA of f over alphabet as a string
// unique up to language equality: BFS numbering from the start state with
// labels visited in sorted order yields an isomorphism-invariant form.
func canonical(f *FA, alphabet []event.Event) (string, error) {
	min, err := f.Minimize()
	if err != nil {
		return "", err
	}
	comp, err := min.Complete(alphabet)
	if err != nil {
		return "", err
	}
	succ := make([]map[string]int, comp.numStates)
	for i := range succ {
		succ[i] = map[string]int{}
	}
	for _, t := range comp.trans {
		succ[t.From][t.Label.String()] = int(t.To)
	}
	order := make([]int, 0, comp.numStates)
	number := make(map[int]int)
	starts := comp.StartStates()
	if len(starts) == 0 {
		return "empty", nil
	}
	queue := []int{int(starts[0])}
	number[int(starts[0])] = 0
	order = append(order, int(starts[0]))
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, e := range alphabet {
			to := succ[s][e.String()]
			if _, ok := number[to]; !ok {
				number[to] = len(order)
				order = append(order, to)
				queue = append(queue, to)
			}
		}
	}
	var b strings.Builder
	for _, s := range order {
		if comp.accept.Has(s) {
			b.WriteString("A")
		} else {
			b.WriteString(".")
		}
		for _, e := range alphabet {
			fmt.Fprintf(&b, " %d", number[succ[s][e.String()]])
		}
		b.WriteString(";")
	}
	return b.String(), nil
}
