package fa

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TestExecutedObsZeroAllocOverhead guards the nil-receiver fast path on
// the fa.Executed hot path: the instrumentation hooks must add zero
// allocations when obs is disabled. Executed itself allocates (bitsets,
// frontier slices), so the guard compares its disabled-obs allocation
// count against the enabled-obs count — the difference is exactly what
// the hooks cost, and both the disabled and enabled obs paths are
// designed to be allocation-free.
func TestExecutedObsZeroAllocOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool caching; alloc counts unreliable")
	}
	b := NewBuilder("proto")
	s := b.States(3)
	b.Start(s[0])
	b.Accept(s[2])
	b.EdgeStr(s[0], "X = open()", s[1])
	b.EdgeStr(s[1], "use(X)", s[1])
	b.EdgeStr(s[1], "close(X)", s[2])
	f := b.MustBuild()
	tr := trace.ParseEvents("t", "X = open()", "use(X)", "use(X)", "close(X)")

	obs.Disable()
	disabled := testing.AllocsPerRun(200, func() {
		if _, ok := f.Executed(tr); !ok {
			t.Fatal("trace unexpectedly rejected")
		}
	})

	m := obs.Enable()
	defer obs.Disable()
	// Warm the instruments so the measurement excludes one-time map inserts.
	m.Histogram("fa.executed")
	m.Counter("fa.executed.rejected")
	enabled := testing.AllocsPerRun(200, func() {
		if _, ok := f.Executed(tr); !ok {
			t.Fatal("trace unexpectedly rejected")
		}
	})

	if enabled != disabled {
		t.Errorf("obs hooks change fa.Executed allocations: disabled=%.1f enabled=%.1f", disabled, enabled)
	}
}
