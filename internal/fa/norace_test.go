//go:build !race

package fa

const raceEnabled = false
