package fa

import (
	"fmt"
	"strings"

	"repro/internal/event"
)

// This file implements a small regular-expression compiler over event
// alphabets, used to author specifications and Focus templates the way the
// paper writes them, e.g. the seed-order template
//
//	(event0 | event1 | ... | eventN)* ; seed ; (event0 | ... | eventN)*
//
// Grammar (whitespace-insensitive except inside event literals):
//
//	expr    = term { "|" term }
//	term    = factor { [";"] factor }        concatenation, ";" optional
//	factor  = atom [ "*" | "+" | "?" ]
//	atom    = "(" expr ")" | "." | eventLit
//	eventLit = an event in event.Parse syntax, e.g. "X = fopen()" or "fclose(X)"
//
// "." is the wildcard, matching any single event. Compilation is Thompson's
// construction with ε-transitions eliminated on the fly; the result is an
// NFA that Determinize/Minimize can process further (after ExpandWildcards
// if "." was used).

// Compile parses the pattern and returns an automaton for its language.
func Compile(name, pattern string) (*FA, error) {
	p := &rxParser{input: pattern}
	ast, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("fa: compile %q: %v", pattern, err)
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("fa: compile %q: trailing input at offset %d", pattern, p.pos)
	}
	return buildRx(name, ast)
}

// MustCompile is Compile that panics on error, for static patterns.
func MustCompile(name, pattern string) *FA {
	f, err := Compile(name, pattern)
	if err != nil {
		panic(err)
	}
	return f
}

// --- AST -------------------------------------------------------------------

type rxNode interface{ rx() }

type rxEvent struct{ e event.Event }
type rxWild struct{}
type rxSeq struct{ parts []rxNode }
type rxAlt struct{ parts []rxNode }
type rxStar struct{ sub rxNode }
type rxPlus struct{ sub rxNode }
type rxOpt struct{ sub rxNode }

func (rxEvent) rx() {}
func (rxWild) rx()  {}
func (rxSeq) rx()   {}
func (rxAlt) rx()   {}
func (rxStar) rx()  {}
func (rxPlus) rx()  {}
func (rxOpt) rx()   {}

// --- Parser ------------------------------------------------------------------

type rxParser struct {
	input string
	pos   int
}

func (p *rxParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' || p.input[p.pos] == '\n') {
		p.pos++
	}
}

func (p *rxParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

func (p *rxParser) parseExpr() (rxNode, error) {
	first, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	parts := []rxNode{first}
	for p.peek() == '|' {
		p.pos++
		next, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return first, nil
	}
	return rxAlt{parts: parts}, nil
}

func (p *rxParser) parseTerm() (rxNode, error) {
	var parts []rxNode
	for {
		c := p.peek()
		if c == ';' {
			p.pos++
			continue
		}
		if c == 0 || c == '|' || c == ')' {
			break
		}
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		parts = append(parts, f)
	}
	switch len(parts) {
	case 0:
		return rxSeq{}, nil // ε
	case 1:
		return parts[0], nil
	default:
		return rxSeq{parts: parts}, nil
	}
}

func (p *rxParser) parseFactor() (rxNode, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	switch p.peek() {
	case '*':
		p.pos++
		return rxStar{sub: atom}, nil
	case '+':
		p.pos++
		return rxPlus{sub: atom}, nil
	case '?':
		p.pos++
		return rxOpt{sub: atom}, nil
	}
	return atom, nil
}

func (p *rxParser) parseAtom() (rxNode, error) {
	switch p.peek() {
	case 0:
		return nil, fmt.Errorf("unexpected end of pattern")
	case '(':
		p.pos++
		sub, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing ) at offset %d", p.pos)
		}
		p.pos++
		return sub, nil
	case '.':
		p.pos++
		return rxWild{}, nil
	}
	return p.parseEventLit()
}

// parseEventLit scans an event literal up to and including its closing
// parenthesis: an identifier (possibly "name ="-prefixed) followed by a
// parenthesized argument list.
func (p *rxParser) parseEventLit() (rxNode, error) {
	p.skipSpace()
	start := p.pos
	open := strings.IndexByte(p.input[p.pos:], '(')
	if open < 0 {
		return nil, fmt.Errorf("event literal without argument list at offset %d", start)
	}
	close := strings.IndexByte(p.input[p.pos+open:], ')')
	if close < 0 {
		return nil, fmt.Errorf("unterminated event literal at offset %d", start)
	}
	end := p.pos + open + close + 1
	lit := p.input[start:end]
	e, err := event.Parse(lit)
	if err != nil {
		return nil, err
	}
	p.pos = end
	return rxEvent{e: e}, nil
}

// --- Thompson construction ---------------------------------------------------

// epsNFA is the intermediate automaton with ε-transitions: Thompson's
// construction builds one fragment per AST node, and ε-elimination turns
// the result into the package's ε-free FA representation.
type epsNFA struct {
	numStates int
	eps       map[int][]int
	edges     []epsEdge
}

type epsEdge struct {
	from, to int
	label    event.Event
	wild     bool
}

func (n *epsNFA) state() int {
	s := n.numStates
	n.numStates++
	return s
}

func (n *epsNFA) addEps(from, to int) { n.eps[from] = append(n.eps[from], to) }

// frag is a Thompson fragment with one entry and one exit state.
type frag struct{ in, out int }

func buildRx(name string, ast rxNode) (*FA, error) {
	n := &epsNFA{eps: map[int][]int{}}
	f := n.thompson(ast)

	// ε-closures by DFS from each state.
	closure := make([][]int, n.numStates)
	for s := 0; s < n.numStates; s++ {
		seen := map[int]bool{s: true}
		stack := []int{s}
		var cl []int
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cl = append(cl, cur)
			for _, t := range n.eps[cur] {
				if !seen[t] {
					seen[t] = true
					stack = append(stack, t)
				}
			}
		}
		closure[s] = cl
	}

	// ε-elimination: state s gains every labeled edge leaving its closure,
	// and accepts if its closure contains the fragment's exit.
	b := NewBuilder(name)
	states := b.States(n.numStates)
	b.Start(states[f.in])
	outBy := make(map[int][]epsEdge)
	for _, e := range n.edges {
		outBy[e.from] = append(outBy[e.from], e)
	}
	for s := 0; s < n.numStates; s++ {
		accept := false
		for _, t := range closure[s] {
			if t == f.out {
				accept = true
			}
			for _, e := range outBy[t] {
				if e.wild {
					b.WildcardEdge(states[s], states[e.to])
				} else {
					b.Edge(states[s], e.label, states[e.to])
				}
			}
		}
		if accept {
			b.Accept(states[s])
		}
	}
	fa, err := b.Build()
	if err != nil {
		return nil, err
	}
	return fa.Trim(), nil
}

// thompson builds the classic two-endpoint fragment for a node.
func (n *epsNFA) thompson(node rxNode) frag {
	switch node := node.(type) {
	case rxEvent:
		in, out := n.state(), n.state()
		n.edges = append(n.edges, epsEdge{from: in, to: out, label: node.e})
		return frag{in, out}
	case rxWild:
		in, out := n.state(), n.state()
		n.edges = append(n.edges, epsEdge{from: in, to: out, wild: true})
		return frag{in, out}
	case rxSeq:
		if len(node.parts) == 0 {
			s := n.state()
			return frag{s, s}
		}
		cur := n.thompson(node.parts[0])
		for _, part := range node.parts[1:] {
			next := n.thompson(part)
			n.addEps(cur.out, next.in)
			cur = frag{cur.in, next.out}
		}
		return cur
	case rxAlt:
		in, out := n.state(), n.state()
		for _, part := range node.parts {
			sub := n.thompson(part)
			n.addEps(in, sub.in)
			n.addEps(sub.out, out)
		}
		return frag{in, out}
	case rxStar:
		in, out := n.state(), n.state()
		sub := n.thompson(node.sub)
		n.addEps(in, sub.in)
		n.addEps(in, out)
		n.addEps(sub.out, sub.in)
		n.addEps(sub.out, out)
		return frag{in, out}
	case rxPlus:
		return n.thompson(rxSeq{parts: []rxNode{node.sub, rxStar{sub: node.sub}}})
	case rxOpt:
		in, out := n.state(), n.state()
		sub := n.thompson(node.sub)
		n.addEps(in, sub.in)
		n.addEps(in, out)
		n.addEps(sub.out, out)
		return frag{in, out}
	}
	panic("fa: unknown regex node")
}
