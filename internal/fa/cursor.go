package fa

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/event"
)

// Cursor is a persistent-frontier stepping handle over a compiled plan:
// where Sim.Accepts consumes a whole trace per call, a Cursor holds the
// reachable-state frontier between calls, so an online checker can feed
// events one at a time as they arrive on a stream. Memory is bounded by
// the automaton (two frontier bitsets and an event-rendering buffer) and
// independent of how many events have been consumed; steady-state Step
// calls allocate nothing.
//
// A Cursor is owned by one caller at a time — it is deliberately not
// goroutine-safe (each stream owns its cursor); the underlying Sim stays
// shared and immutable.
type Cursor struct {
	sim *Sim
	cur *bitset.Set // current frontier
	nxt *bitset.Set // scratch successor frontier
	buf []byte      // event rendering buffer for symbol lookup
}

// NewCursor returns a cursor positioned at the automaton's start states.
func (s *Sim) NewCursor() *Cursor {
	c := &Cursor{
		sim: s,
		cur: bitset.New(s.numStates),
		nxt: bitset.New(s.numStates),
	}
	c.cur.CopyFrom(s.start)
	return c
}

// Reset returns the cursor to the start states, as if no event had been
// consumed.
func (c *Cursor) Reset() { c.cur.CopyFrom(c.sim.start) }

// Step consumes one event, advancing the frontier, and reports whether
// any run survives. Once the frontier is empty every later Step also
// returns false; callers detecting a violation Reset to resume checking.
func (c *Cursor) Step(e event.Event) bool {
	c.buf = e.AppendString(c.buf[:0])
	id, ok := c.sim.interner.LookupKey(c.buf)
	if !ok {
		id = -1 // out-of-alphabet events match only wildcard rows
	}
	c.sim.stepInto(c.nxt, c.cur, int32(id))
	c.cur, c.nxt = c.nxt, c.cur
	return !c.cur.Empty()
}

// Alive reports whether at least one run of the automaton survives.
func (c *Cursor) Alive() bool { return !c.cur.Empty() }

// Accepting reports whether some surviving run is in an accepting state —
// i.e. whether the events consumed so far form a word of the language.
func (c *Cursor) Accepting() bool { return c.cur.Intersects(c.sim.accept) }

// States appends the frontier's state IDs to dst in ascending order and
// returns the extended slice; persistence uses it to externalize the
// cursor without exposing the bitset.
func (c *Cursor) States(dst []int) []int {
	c.cur.Range(func(s int) bool {
		dst = append(dst, s)
		return true
	})
	return dst
}

// SetStates replaces the frontier with exactly the given states; the
// inverse of States for restoring a persisted cursor. A state outside the
// automaton leaves the cursor unchanged and returns an error.
func (c *Cursor) SetStates(states []int) error {
	for _, s := range states {
		if s < 0 || s >= c.sim.numStates {
			return fmt.Errorf("fa: cursor state %d out of range [0,%d)", s, c.sim.numStates)
		}
	}
	c.cur.Clear()
	for _, s := range states {
		c.cur.Add(s)
	}
	return nil
}

// Sim returns the compiled plan the cursor steps over.
func (c *Cursor) Sim() *Sim { return c.sim }
