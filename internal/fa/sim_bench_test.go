package fa

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/trace"
)

// benchFA builds a deterministic X11-scale automaton: ~28 states, a
// 25-symbol alphabet, and ~120 transitions including a few wildcard edges,
// roughly the shape of the paper's largest mined specifications.
func benchFA() *FA {
	rng := rand.New(rand.NewSource(2003))
	const numStates, numSyms, numEdges = 28, 25, 120
	alpha := make([]event.Event, numSyms)
	for i := range alpha {
		alpha[i] = event.MustParse(fmt.Sprintf("op%d(X)", i))
	}
	b := NewBuilder("bench-x11")
	states := b.States(numStates)
	b.Start(states[0])
	// A spine guarantees long accepted traces exist.
	for i := 0; i+1 < numStates; i++ {
		b.Edge(states[i], alpha[i%numSyms], states[i+1])
	}
	b.Accept(states[numStates-1])
	b.Accept(states[numStates/2])
	for i := numStates - 1; i < numEdges; i++ {
		from := states[rng.Intn(numStates)]
		to := states[rng.Intn(numStates)]
		if i%17 == 0 {
			b.WildcardEdge(from, to)
		} else {
			b.Edge(from, alpha[rng.Intn(numSyms)], to)
		}
	}
	return b.MustBuild()
}

// benchTraces samples accepted traces from the automaton's language (mixed
// with a few rejected mutants) so Executed exercises the full
// forward/backward pass most of the time.
func benchTraces(f *FA, n int) []trace.Trace {
	rng := rand.New(rand.NewSource(7))
	out := make([]trace.Trace, 0, n)
	for len(out) < n {
		t, ok := f.Sample(rng, 40)
		if !ok || len(t.Events) == 0 {
			continue
		}
		if len(out)%8 == 7 {
			// Mutate one event to an out-of-language symbol.
			t.Events = append([]event.Event(nil), t.Events...)
			t.Events[rng.Intn(len(t.Events))] = event.MustParse("bogus()")
		}
		out = append(out, t)
	}
	return out
}

// BenchmarkExecuted compares the legacy per-call simulation loop with the
// compiled plan, and with the memoized shared path on a repeating trace
// mix. This is the acceptance benchmark for the compiled simulator: the
// Compiled variant must be >=3x faster and >=10x lighter in allocations
// than Legacy.
func BenchmarkExecuted(b *testing.B) {
	f := benchFA()
	traces := benchTraces(f, 32)
	b.Run("Legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.legacyExecuted(traces[i%len(traces)])
		}
	})
	b.Run("Compiled", func(b *testing.B) {
		sim := f.Sim()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.Executed(traces[i%len(traces)])
		}
	})
	b.Run("Memoized", func(b *testing.B) {
		sim := f.Sim()
		sim.ExecutedShared(traces[0]) // prime
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.ExecutedShared(traces[i%len(traces)])
		}
	})
}

// BenchmarkAccepts compares the legacy acceptance loop with the compiled
// rolling-frontier simulation.
func BenchmarkAccepts(b *testing.B) {
	f := benchFA()
	traces := benchTraces(f, 32)
	b.Run("Legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.legacyAccepts(traces[i%len(traces)])
		}
	})
	b.Run("Compiled", func(b *testing.B) {
		sim := f.Sim()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.Accepts(traces[i%len(traces)])
		}
	})
}

// BenchmarkExecutedAll measures the batch entry point on a multiset with
// heavy class duplication (the TraceContext workload shape: many traces,
// few classes).
func BenchmarkExecutedAll(b *testing.B) {
	f := benchFA()
	classes := benchTraces(f, 16)
	traces := make([]trace.Trace, 128)
	for i := range traces {
		traces[i] = classes[i%len(classes)]
	}
	b.Run("Legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, t := range traces {
				f.legacyExecuted(t)
			}
		}
	})
	b.Run("Batch", func(b *testing.B) {
		sim := f.Sim()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.ExecutedAll(traces)
		}
	})
}
