package fa

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/trace"
)

// buggyStdio builds the specification of Figure 1: fclose may close a file
// pointer regardless of whether fopen or popen produced it.
func buggyStdio() *FA {
	b := NewBuilder("stdio-buggy")
	s := b.States(3)
	b.Start(s[0])
	b.Accept(s[2])
	b.EdgeStr(s[0], "X = fopen()", s[1])
	b.EdgeStr(s[0], "X = popen()", s[1])
	b.EdgeStr(s[1], "fread(X)", s[1])
	b.EdgeStr(s[1], "fwrite(X)", s[1])
	b.EdgeStr(s[1], "fclose(X)", s[2])
	return b.MustBuild()
}

// fixedStdio builds the corrected specification of Figure 6.
func fixedStdio() *FA {
	b := NewBuilder("stdio-fixed")
	s := b.States(4)
	b.Start(s[0])
	b.Accept(s[3])
	b.EdgeStr(s[0], "X = fopen()", s[1])
	b.EdgeStr(s[1], "fread(X)", s[1])
	b.EdgeStr(s[1], "fwrite(X)", s[1])
	b.EdgeStr(s[1], "fclose(X)", s[3])
	b.EdgeStr(s[0], "X = popen()", s[2])
	b.EdgeStr(s[2], "fread(X)", s[2])
	b.EdgeStr(s[2], "fwrite(X)", s[2])
	b.EdgeStr(s[2], "pclose(X)", s[3])
	return b.MustBuild()
}

func tr(events ...string) trace.Trace { return trace.ParseEvents("", events...) }

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder("bad")
	s := b.State()
	b.Start(s)
	b.Edge(s, event.MustParse("f()"), State(7))
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted out-of-range transition target")
	}
	b2 := NewBuilder("nostart")
	b2.State()
	if _, err := b2.Build(); err == nil {
		t.Fatal("Build accepted automaton without start state")
	}
}

func TestDuplicateEdgesDeduped(t *testing.T) {
	b := NewBuilder("dup")
	s := b.States(2)
	b.Start(s[0])
	b.Accept(s[1])
	b.EdgeStr(s[0], "f()", s[1])
	b.EdgeStr(s[0], "f()", s[1])
	f := b.MustBuild()
	if f.NumTransitions() != 1 {
		t.Fatalf("NumTransitions = %d, want 1", f.NumTransitions())
	}
}

func TestAccepts(t *testing.T) {
	f := buggyStdio()
	cases := []struct {
		t    trace.Trace
		want bool
	}{
		{tr("X = fopen()", "fclose(X)"), true},
		{tr("X = popen()", "fclose(X)"), true}, // the bug: accepted
		{tr("X = fopen()", "fread(X)", "fwrite(X)", "fclose(X)"), true},
		{tr("X = fopen()"), false},              // no close
		{tr("X = popen()", "pclose(X)"), false}, // pclose not in language
		{tr("fclose(X)"), false},                // close before open
		{tr(), false},                           // empty not accepted
	}
	for _, c := range cases {
		if got := f.Accepts(c.t); got != c.want {
			t.Errorf("Accepts(%q) = %v, want %v", c.t.Key(), got, c.want)
		}
	}
}

func TestRejectsAt(t *testing.T) {
	f := buggyStdio()
	if got := f.RejectsAt(tr("X = fopen()", "fclose(X)")); got != -1 {
		t.Errorf("RejectsAt accepted trace = %d, want -1", got)
	}
	if got := f.RejectsAt(tr("X = popen()", "pclose(X)")); got != 1 {
		t.Errorf("RejectsAt(pclose) = %d, want 1", got)
	}
	if got := f.RejectsAt(tr("X = fopen()", "fread(X)")); got != 2 {
		t.Errorf("RejectsAt(no close) = %d, want 2 (end of trace)", got)
	}
}

func TestExecuted(t *testing.T) {
	f := buggyStdio()
	// X = fopen(); fclose(X) executes exactly transitions 0 (fopen) and 4 (fclose).
	ex, ok := f.Executed(tr("X = fopen()", "fclose(X)"))
	if !ok {
		t.Fatal("Executed reported rejection for accepted trace")
	}
	if got := ex.String(); got != "{0, 4}" {
		t.Errorf("Executed = %s, want {0, 4}", got)
	}
	// Rejected trace: empty set, ok=false.
	ex, ok = f.Executed(tr("X = fopen()"))
	if ok || !ex.Empty() {
		t.Errorf("Executed on rejected trace = %s, ok=%v", ex, ok)
	}
	// fread and fwrite loops appear when used.
	ex, ok = f.Executed(tr("X = popen()", "fwrite(X)", "fread(X)", "fclose(X)"))
	if !ok || ex.String() != "{1, 2, 3, 4}" {
		t.Errorf("Executed = %s ok=%v, want {1, 2, 3, 4}", ex, ok)
	}
}

func TestExecutedAmbiguous(t *testing.T) {
	// Two accepting runs through different transitions: both are executed.
	b := NewBuilder("amb")
	s := b.States(4)
	b.Start(s[0])
	b.Accept(s[3])
	b.EdgeStr(s[0], "a()", s[1])
	b.EdgeStr(s[0], "a()", s[2])
	b.EdgeStr(s[1], "b()", s[3])
	b.EdgeStr(s[2], "b()", s[3])
	f := b.MustBuild()
	ex, ok := f.Executed(tr("a()", "b()"))
	if !ok || ex.Len() != 4 {
		t.Errorf("Executed = %s, want all 4 transitions", ex)
	}
}

func TestExecutedExcludesDeadBranches(t *testing.T) {
	// A transition reachable on a prefix but not on any accepting run must
	// not be reported.
	b := NewBuilder("dead")
	s := b.States(4)
	b.Start(s[0])
	b.Accept(s[2])
	b.EdgeStr(s[0], "a()", s[1])
	b.EdgeStr(s[1], "b()", s[2])
	b.EdgeStr(s[0], "a()", s[3]) // dead end: s3 has no b() edge
	f := b.MustBuild()
	ex, ok := f.Executed(tr("a()", "b()"))
	if !ok || ex.String() != "{0, 1}" {
		t.Errorf("Executed = %s, want {0, 1}", ex)
	}
}

func TestAcceptingRun(t *testing.T) {
	f := buggyStdio()
	run := f.AcceptingRun(tr("X = fopen()", "fread(X)", "fclose(X)"))
	if len(run) != 3 {
		t.Fatalf("run length = %d", len(run))
	}
	// The run must be a connected path from a start to an accept state with
	// matching labels.
	want := []string{"X = fopen()", "fread(X)", "fclose(X)"}
	prev := State(-1)
	for i, ti := range run {
		tran := f.Transition(ti)
		if tran.Label.String() != want[i] {
			t.Errorf("run[%d] label = %s, want %s", i, tran.Label, want[i])
		}
		if i == 0 {
			if !f.IsStart(tran.From) {
				t.Error("run does not begin at a start state")
			}
		} else if tran.From != prev {
			t.Error("run is not connected")
		}
		prev = tran.To
	}
	if !f.IsAccept(prev) {
		t.Error("run does not end at an accepting state")
	}
	if f.AcceptingRun(tr("X = fopen()")) != nil {
		t.Error("AcceptingRun returned a run for a rejected trace")
	}
}

func TestIsDeterministic(t *testing.T) {
	if !buggyStdio().IsDeterministic() {
		t.Error("buggyStdio should be deterministic")
	}
	b := NewBuilder("nd")
	s := b.States(3)
	b.Start(s[0])
	b.Accept(s[2])
	b.EdgeStr(s[0], "a()", s[1])
	b.EdgeStr(s[0], "a()", s[2])
	if b.MustBuild().IsDeterministic() {
		t.Error("duplicate-label automaton reported deterministic")
	}
	b2 := NewBuilder("wild")
	w := b2.States(2)
	b2.Start(w[0])
	b2.Accept(w[1])
	b2.EdgeStr(w[0], "a()", w[1])
	b2.WildcardEdge(w[0], w[0])
	if b2.MustBuild().IsDeterministic() {
		t.Error("wildcard alongside explicit edge reported deterministic")
	}
}

func TestDeterminizePreservesLanguage(t *testing.T) {
	b := NewBuilder("nd")
	s := b.States(4)
	b.Start(s[0])
	b.Accept(s[3])
	b.EdgeStr(s[0], "a()", s[1])
	b.EdgeStr(s[0], "a()", s[2])
	b.EdgeStr(s[1], "b()", s[3])
	b.EdgeStr(s[2], "c()", s[3])
	f := b.MustBuild()
	d, err := f.Determinize()
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsDeterministic() {
		t.Fatal("Determinize returned nondeterministic automaton")
	}
	for _, c := range []struct {
		t    trace.Trace
		want bool
	}{
		{tr("a()", "b()"), true},
		{tr("a()", "c()"), true},
		{tr("a()"), false},
		{tr("b()"), false},
	} {
		if got := d.Accepts(c.t); got != c.want {
			t.Errorf("determinized Accepts(%q) = %v, want %v", c.t.Key(), got, c.want)
		}
	}
}

func TestMinimize(t *testing.T) {
	// Two redundant paths collapse: language (a b | a b) over a chain pair.
	b := NewBuilder("redundant")
	s := b.States(5)
	b.Start(s[0])
	b.Accept(s[3], s[4])
	b.EdgeStr(s[0], "a()", s[1])
	b.EdgeStr(s[0], "a()", s[2])
	b.EdgeStr(s[1], "b()", s[3])
	b.EdgeStr(s[2], "b()", s[4])
	f := b.MustBuild()
	m, err := f.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 3 {
		t.Errorf("minimal states = %d, want 3", m.NumStates())
	}
	eq, err := Equivalent(f, m)
	if err != nil || !eq {
		t.Errorf("Equivalent(f, minimize(f)) = %v, %v", eq, err)
	}
}

func TestEquivalent(t *testing.T) {
	buggy, fixed := buggyStdio(), fixedStdio()
	eq, err := Equivalent(buggy, fixed)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("buggy and fixed stdio specs reported equivalent")
	}
	eq, err = Equivalent(fixed, fixed)
	if err != nil || !eq {
		t.Errorf("self-equivalence failed: %v, %v", eq, err)
	}
}

func TestComplement(t *testing.T) {
	f := buggyStdio()
	alpha := f.Alphabet()
	comp, err := f.Complement(alpha)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []trace.Trace{
		tr("X = fopen()", "fclose(X)"),
		tr("X = fopen()"),
		tr("fclose(X)"),
		tr(),
	} {
		if f.Accepts(c) == comp.Accepts(c) {
			t.Errorf("complement agrees with original on %q", c.Key())
		}
	}
}

func TestIntersect(t *testing.T) {
	f := buggyStdio()
	fixed := fixedStdio()
	both := Intersect(f, fixed)
	// fopen;fclose is in both; popen;fclose only in buggy; popen;pclose only
	// in fixed.
	if !both.Accepts(tr("X = fopen()", "fclose(X)")) {
		t.Error("intersection rejects common trace")
	}
	if both.Accepts(tr("X = popen()", "fclose(X)")) {
		t.Error("intersection accepts buggy-only trace")
	}
	if both.Accepts(tr("X = popen()", "pclose(X)")) {
		t.Error("intersection accepts fixed-only trace")
	}
}

func TestUnion(t *testing.T) {
	f := buggyStdio()
	fixed := fixedStdio()
	u := Union(f, fixed)
	for _, c := range []trace.Trace{
		tr("X = fopen()", "fclose(X)"),
		tr("X = popen()", "fclose(X)"),
		tr("X = popen()", "pclose(X)"),
	} {
		if !u.Accepts(c) {
			t.Errorf("union rejects %q", c.Key())
		}
	}
	if u.Accepts(tr("X = fopen()")) {
		t.Error("union accepts trace in neither language")
	}
}

func TestTrim(t *testing.T) {
	b := NewBuilder("junk")
	s := b.States(5)
	b.Start(s[0])
	b.Accept(s[2])
	b.EdgeStr(s[0], "a()", s[1])
	b.EdgeStr(s[1], "b()", s[2])
	b.EdgeStr(s[0], "a()", s[3]) // dead
	b.EdgeStr(s[4], "z()", s[2]) // unreachable
	f := b.MustBuild()
	trimmed := f.Trim()
	if trimmed.NumStates() != 3 || trimmed.NumTransitions() != 2 {
		t.Errorf("Trim: %d states %d transitions, want 3/2", trimmed.NumStates(), trimmed.NumTransitions())
	}
	eq, err := Equivalent(f, trimmed)
	if err != nil || !eq {
		t.Errorf("Trim changed language: %v %v", eq, err)
	}
}

func TestUnorderedTemplate(t *testing.T) {
	alpha := []event.Event{event.MustParse("a()"), event.MustParse("b()")}
	u := Unordered(alpha)
	if !u.Accepts(tr()) || !u.Accepts(tr("b()", "a()", "a()")) {
		t.Error("unordered template rejects traces over its alphabet")
	}
	if u.Accepts(tr("c()")) {
		t.Error("unordered template accepts out-of-alphabet trace")
	}
	ex, ok := u.Executed(tr("b()", "b()"))
	if !ok || ex.Len() != 1 {
		t.Errorf("unordered Executed = %s", ex)
	}
}

func TestNameProjectionTemplate(t *testing.T) {
	alpha := []event.Event{
		event.MustParse("X = fopen()"),
		event.MustParse("fclose(X)"),
		event.MustParse("Y = popen()"),
	}
	p := NameProjection(alpha, "X")
	full := tr("X = fopen()", "Y = popen()", "fclose(X)")
	ex, ok := p.Executed(full)
	if !ok {
		t.Fatal("projection rejected trace")
	}
	// The X events execute their own loops; popen matches only the wildcard.
	var labels []string
	ex.Range(func(i int) bool {
		labels = append(labels, p.Transition(i).Label.String())
		return true
	})
	joined := strings.Join(labels, "|")
	if !strings.Contains(joined, "X = fopen()") || !strings.Contains(joined, "fclose(X)") || !strings.Contains(joined, WildcardOp) {
		t.Errorf("projection executed = %v", labels)
	}
	for _, l := range labels {
		if strings.Contains(l, "popen") {
			t.Errorf("popen label executed explicitly in projection: %v", labels)
		}
	}
}

func TestSeedOrderTemplate(t *testing.T) {
	alpha := []event.Event{event.MustParse("a()"), event.MustParse("b()"), event.MustParse("s()")}
	f := SeedOrder(alpha, event.MustParse("s()"))
	if f.Accepts(tr("a()", "b()")) {
		t.Error("seed-order accepts trace without seed")
	}
	if !f.Accepts(tr("a()", "s()", "b()")) || !f.Accepts(tr("s()")) {
		t.Error("seed-order rejects valid trace")
	}
	// a-before-seed and a-after-seed execute different transitions.
	exBefore, _ := f.Executed(tr("a()", "s()"))
	exAfter, _ := f.Executed(tr("s()", "a()"))
	if exBefore.Equal(exAfter) {
		t.Error("seed-order does not distinguish before/after")
	}
}

func TestEnumerate(t *testing.T) {
	f := fixedStdio()
	traces := f.Enumerate(4, 50)
	if len(traces) == 0 {
		t.Fatal("Enumerate returned nothing")
	}
	for _, tc := range traces {
		if !f.Accepts(tc) {
			t.Errorf("enumerated trace rejected: %q", tc.Key())
		}
		if tc.Len() > 4 {
			t.Errorf("enumerated trace too long: %q", tc.Key())
		}
	}
	// Shortest-first: the first results are length-2.
	if traces[0].Len() != 2 {
		t.Errorf("first enumerated length = %d", traces[0].Len())
	}
	// Limit respected.
	if got := f.Enumerate(6, 3); len(got) != 3 {
		t.Errorf("limit ignored: %d", len(got))
	}
}

func TestSample(t *testing.T) {
	f := fixedStdio()
	rng := rand.New(rand.NewSource(1))
	found := 0
	for i := 0; i < 100; i++ {
		s, ok := f.Sample(rng, 8)
		if !ok {
			continue
		}
		found++
		if !f.Accepts(s) {
			t.Fatalf("sampled trace rejected: %q", s.Key())
		}
	}
	if found == 0 {
		t.Fatal("Sample never produced an accepted trace")
	}
}

func TestExpandWildcards(t *testing.T) {
	alpha := []event.Event{event.MustParse("a()"), event.MustParse("b()")}
	p := NameProjection(alpha, "Z") // all alphabet events lack Z: wildcard only
	exp := p.ExpandWildcards(alpha)
	if exp.HasWildcard() {
		t.Fatal("ExpandWildcards left a wildcard")
	}
	if !exp.Accepts(tr("a()", "b()")) {
		t.Error("expanded automaton rejects in-alphabet trace")
	}
	if exp.Accepts(tr("c()")) {
		t.Error("expanded automaton accepts out-of-alphabet trace")
	}
	if _, err := p.Determinize(); err == nil {
		t.Error("Determinize accepted wildcard automaton")
	}
}

func TestDotOutput(t *testing.T) {
	dot := buggyStdio().Dot()
	for _, want := range []string{"digraph", "doublecircle", "X = fopen()", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q", want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	s := buggyStdio().String()
	if !strings.Contains(s, "3 states") || !strings.Contains(s, "fclose(X)") {
		t.Errorf("String = %q", s)
	}
}

func TestIORoundTrip(t *testing.T) {
	f := fixedStdio()
	var buf strings.Builder
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	g, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("Read: %v\ninput:\n%s", err, buf.String())
	}
	if g.Name() != f.Name() || g.NumStates() != f.NumStates() || g.NumTransitions() != f.NumTransitions() {
		t.Fatalf("round trip changed shape: %s vs %s", g, f)
	}
	eq, err := Equivalent(f, g)
	if err != nil || !eq {
		t.Errorf("round trip changed language: %v %v", eq, err)
	}
}

func TestIOErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"fa x\nstates 2\nstart 0\naccept 1\nedge 0 1 f()\n", // missing end
		"states 2\n",                     // outside record
		"fa x\nstates 2\nstart 5\nend\n", // bad start (caught by Build)
		"fa x\nstates 2\nstart 0\nedge 0 9 f()\nend\n",
		"fa x\nstates 2\nstart 0\nedge 0 1 ???\nend\n",
		"fa x\nbogus\nend\n",
	} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", in)
		}
	}
}
