package repl

import (
	"strings"
	"testing"
)

// TestRunSurvivesLongLine pins the scanio dogfood fix in Run: before the
// REPL shared the scanio scanner policy it used a default bufio.Scanner,
// whose 64 KiB token cap made Scan fail on a long pasted line and
// silently ended the loop — commands after the long line never ran.
func TestRunSurvivesLongLine(t *testing.T) {
	long := strings.Repeat("x", 128*1024)
	out, _ := run(t, newSession(t), long, "help", "quit")
	if !strings.Contains(out, "commands:") {
		t.Fatalf("help after a 128 KiB line never ran; the scanner gave up:\n%.200s", out)
	}
}
