package repl

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cable"
	"repro/internal/fa"
	"repro/internal/trace"
)

func newSession(t *testing.T) *cable.Session {
	t.Helper()
	set := trace.NewSet(
		trace.ParseEvents("v0", "X = popen()", "pclose(X)"),
		trace.ParseEvents("v1", "X = popen()", "fread(X)", "pclose(X)"),
		trace.ParseEvents("v2", "X = popen()", "fread(X)"),
		trace.ParseEvents("v3", "X = fopen()", "fread(X)"),
	)
	s, err := cable.NewSession(set, fa.FromTraces(set.Alphabet()))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// run feeds a script to a fresh REPL and returns the output.
func run(t *testing.T, s *cable.Session, script ...string) (string, *REPL) {
	t.Helper()
	var out bytes.Buffer
	r := New(s, &out)
	r.Run(strings.NewReader(strings.Join(script, "\n")))
	return out.String(), r
}

func TestBannerAndHelp(t *testing.T) {
	out, _ := run(t, newSession(t), "help", "quit")
	for _, want := range []string{"4 trace classes", "commands:", "focus <c>"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLsInfoTransTraces(t *testing.T) {
	out, _ := run(t, newSession(t),
		"ls",
		"info 0",
		"trans 0",
		"traces 0",
	)
	for _, want := range []string{"Unlabeled(green)", "concept c0", "similarity"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelAndDone(t *testing.T) {
	s := newSession(t)
	top := s.Lattice().Top()
	out, _ := run(t, s,
		"label "+itoa(top)+" good all",
		"done",
	)
	if !strings.Contains(out, "labeled 4 trace class(es) \"good\"") {
		t.Errorf("labeling output wrong:\n%s", out)
	}
	if !strings.Contains(out, "done: true") {
		t.Errorf("done output wrong:\n%s", out)
	}
	if !s.Done() {
		t.Error("session not actually labeled")
	}
}

func TestLabelSelectors(t *testing.T) {
	s := newSession(t)
	top := s.Lattice().Top()
	run(t, s,
		"label "+itoa(top)+" good all",
		"label "+itoa(top)+" bad with good", // flip all
	)
	for i := 0; i < s.NumTraces(); i++ {
		if must(s.LabelOf(i)) != cable.Bad {
			t.Fatalf("trace %d label = %q", i, must(s.LabelOf(i)))
		}
	}
}

func TestShowFACommand(t *testing.T) {
	s := newSession(t)
	top := s.Lattice().Top()
	out, _ := run(t, s, "fa "+itoa(top))
	if !strings.Contains(out, "states") || !strings.Contains(out, "popen") {
		t.Errorf("fa output wrong:\n%s", out)
	}
}

func TestGoodCommand(t *testing.T) {
	s := newSession(t)
	top := s.Lattice().Top()
	out, _ := run(t, s,
		"label "+itoa(top)+" good all",
		"good good",
	)
	if !strings.Contains(out, "trace v0") || !strings.Contains(out, "end") {
		t.Errorf("good output not a trace file:\n%s", out)
	}
}

func TestFocusAndEndfocus(t *testing.T) {
	s := newSession(t)
	top := s.Lattice().Top()
	var out bytes.Buffer
	r := New(s, &out)
	if !r.Exec("focus " + itoa(top) + " unordered") {
		t.Fatal("focus quit")
	}
	if r.Depth() != 2 {
		t.Fatalf("depth = %d after focus", r.Depth())
	}
	sub := r.Session()
	r.Exec("label " + itoa(sub.Lattice().Top()) + " good all")
	r.Exec("endfocus")
	if r.Depth() != 1 {
		t.Fatalf("depth = %d after endfocus", r.Depth())
	}
	if !s.Done() {
		t.Error("labels not merged back")
	}
	if !strings.Contains(out.String(), "merged 4 label(s) back") {
		t.Errorf("merge output wrong:\n%s", out.String())
	}
}

func TestFocusTemplates(t *testing.T) {
	s := newSession(t)
	top := s.Lattice().Top()
	for _, cmdline := range []string{
		"focus " + itoa(top) + " project X",
		"focus " + itoa(top) + " seed pclose(X)",
	} {
		var out bytes.Buffer
		r := New(s, &out)
		r.Exec(cmdline)
		if strings.Contains(cmdline, "seed") {
			// Seed-order requires the seed to occur: traces without pclose
			// are rejected by the template, so the focus errors cleanly.
			if !strings.Contains(out.String(), "focused") && !strings.Contains(out.String(), "error") {
				t.Errorf("%s: no result:\n%s", cmdline, out.String())
			}
			continue
		}
		if r.Depth() != 2 {
			t.Errorf("%s: depth = %d\n%s", cmdline, r.Depth(), out.String())
		}
	}
}

func TestEndfocusAtRoot(t *testing.T) {
	out, _ := run(t, newSession(t), "endfocus")
	if !strings.Contains(out, "not in a focused session") {
		t.Errorf("output:\n%s", out)
	}
}

func TestSaveAndLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "labels.tsv")
	s := newSession(t)
	top := s.Lattice().Top()
	run(t, s,
		"label "+itoa(top)+" good all",
		"save "+path,
	)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "good\tX = popen(); pclose(X)") {
		t.Errorf("saved file:\n%s", data)
	}

	fresh := newSession(t)
	out, _ := run(t, fresh, "load "+path, "done")
	if !strings.Contains(out, "applied 4 label(s)") || !fresh.Done() {
		t.Errorf("load failed:\n%s", out)
	}
}

func TestApplyLabelsPartialAndErrors(t *testing.T) {
	s := newSession(t)
	n, err := ApplyLabels(s, strings.NewReader(
		"# comment\n\nbad\tX = popen(); fread(X)\nbad\tno such trace\n"))
	if err != nil || n != 1 {
		t.Fatalf("ApplyLabels = %d, %v", n, err)
	}
	if _, err := ApplyLabels(s, strings.NewReader("malformed line\n")); err == nil {
		t.Error("malformed labels file accepted")
	}
}

func TestDotCommand(t *testing.T) {
	s := newSession(t)
	var dot bytes.Buffer
	var out bytes.Buffer
	r := New(s, &out)
	r.CreateFile = func(string) (io.WriteCloser, error) { return nopCloser{&dot}, nil }
	r.Exec("dot lattice.dot")
	if !strings.Contains(dot.String(), "digraph") {
		t.Errorf("dot output:\n%s", dot.String())
	}
}

func TestBadCommands(t *testing.T) {
	out, _ := run(t, newSession(t),
		"frobnicate",
		"info 999",
		"info",
		"label 0",
		"focus 0 bogus",
		"good",
	)
	for _, want := range []string{"unknown command", "no concept", "usage:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func itoa(n int) string { return strconv.Itoa(n) }

func TestSuggestAndAutoFocus(t *testing.T) {
	// Order-sensitive traces sharing event supports: suggest recommends a
	// seed template, and "focus <c> auto" uses it directly.
	set := trace.NewSet(
		trace.ParseEvents("g1", "X = XCreateGC()", "XSetFont(X)", "XDrawString(X)", "XFreeGC(X)"),
		trace.ParseEvents("b1", "X = XCreateGC()", "XDrawString(X)", "XSetFont(X)", "XFreeGC(X)"),
	)
	s, err := cable.NewSession(set, fa.FromTraces(set.Alphabet()))
	if err != nil {
		t.Fatal(err)
	}
	s.LabelTrace(0, cable.Good)
	s.LabelTrace(1, cable.Bad)
	top := s.Lattice().Top()
	var out bytes.Buffer
	r := New(s, &out)
	r.Exec("suggest " + itoa(top))
	if !strings.Contains(out.String(), "suggested template: seed") {
		t.Errorf("suggest output:\n%s", out.String())
	}
	r.Exec("focus " + itoa(top) + " auto")
	if r.Depth() != 2 {
		t.Fatalf("auto focus did not enter a sub-session:\n%s", out.String())
	}
	// Unlabeled mixed concept: suggest reports the error.
	out.Reset()
	fresh := New(newSession(t), &out)
	fresh.Exec("suggest 0")
	if !strings.Contains(out.String(), "error") {
		t.Errorf("suggest on unmixed concept:\n%s", out.String())
	}
}

func TestTreeCommand(t *testing.T) {
	out, _ := run(t, newSession(t), "tree")
	if !strings.Contains(out, "└─") || !strings.Contains(out, "Unlabeled(green)") {
		t.Errorf("tree output:\n%s", out)
	}
}

func TestWorkspaceCommand(t *testing.T) {
	s := newSession(t)
	s.LabelTrace(0, cable.Good)
	var ws bytes.Buffer
	var out bytes.Buffer
	r := New(s, &out)
	r.CreateFile = func(string) (io.WriteCloser, error) { return nopCloser{&ws}, nil }
	r.Exec("workspace session.cws")
	if !strings.Contains(out.String(), "workspace written") {
		t.Fatalf("output:\n%s", out.String())
	}
	if !strings.Contains(ws.String(), "cable-workspace v1") ||
		!strings.Contains(ws.String(), "=== labels ===") {
		t.Errorf("workspace content:\n%s", ws.String())
	}
	out.Reset()
	r.Exec("workspace")
	if !strings.Contains(out.String(), "usage") {
		t.Error("missing usage for bare workspace command")
	}
}

// must unwraps a (value, error) pair, panicking on error; these tests only
// use IDs the checked accessors accept.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
