// Package repl implements the interactive command loop of the Cable tool
// (cmd/cable): concept listing, summaries, labeling, Focus sub-sessions,
// label persistence, and DOT export. It is factored out of the command so
// the full interface is unit-testable against scripted input.
package repl

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cable"
	"repro/internal/event"
	"repro/internal/fa"
	"repro/internal/obs"
	"repro/internal/scanio"
	"repro/internal/trace"
	"repro/internal/workspace"
)

// REPL drives one root session and a stack of Focus sub-sessions.
type REPL struct {
	stack []frame
	out   io.Writer
	// CreateFile is used by the dot command; tests may replace it.
	CreateFile func(name string) (io.WriteCloser, error)
}

type frame struct {
	session *cable.Session
	focus   *cable.Focus
}

// New returns a REPL over the session, writing to out.
func New(root *cable.Session, out io.Writer) *REPL {
	return &REPL{
		stack: []frame{{session: root}},
		out:   out,
		CreateFile: func(name string) (io.WriteCloser, error) {
			return os.Create(name)
		},
	}
}

// Session returns the currently active (possibly focused) session.
func (r *REPL) Session() *cable.Session { return r.stack[len(r.stack)-1].session }

// Depth returns the focus depth (1 = root).
func (r *REPL) Depth() int { return len(r.stack) }

// Run reads commands from in until EOF or quit, printing the prompt and
// a banner first.
func (r *REPL) Run(in io.Reader) {
	root := r.stack[0].session
	fmt.Fprintf(r.out, "%d trace classes, %d concepts; type \"help\"\n", root.NumTraces(), root.Lattice().Len())
	sc := scanio.NewScanner(in)
	for r.prompt(); sc.Scan(); r.prompt() {
		if !r.Exec(sc.Text()) {
			return
		}
	}
}

func (r *REPL) prompt() {
	fmt.Fprintf(r.out, "%scable> ", strings.Repeat("focus:", r.Depth()-1))
}

// Exec executes one command line; it returns false when the user quits.
func (r *REPL) Exec(line string) bool {
	obs.Count("cable.repl.commands", 1)
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return true
	}
	s := r.Session()
	switch fields[0] {
	case "help":
		fmt.Fprint(r.out, helpText)
	case "ls":
		r.list(s)
	case "tree":
		fmt.Fprint(r.out, s.Lattice().Tree(func(id int) string {
			c := s.Lattice().Concept(id)
			state, _ := s.ConceptState(id)
			return fmt.Sprintf("%s, %d class(es), similarity %d",
				state, c.Extent.Len(), c.Intent.Len())
		}))
	case "info":
		r.withConcept(s, fields, func(id int) {
			desc, err := s.DescribeConcept(id)
			if err != nil {
				fmt.Fprintln(r.out, "error:", err)
				return
			}
			fmt.Fprint(r.out, desc)
		})
	case "fa":
		r.withConcept(s, fields, func(id int) {
			sum, err := s.ShowFA(id, parseSelector(fields[2:]))
			if err != nil {
				fmt.Fprintln(r.out, "error:", err)
				return
			}
			fmt.Fprint(r.out, sum.String())
		})
	case "trans":
		r.withConcept(s, fields, func(id int) {
			shared, err := s.ShowTransitions(id, parseSelector(fields[2:]))
			if err != nil {
				fmt.Fprintln(r.out, "error:", err)
				return
			}
			for _, t := range shared {
				fmt.Fprintf(r.out, "  %s\n", t)
			}
		})
	case "traces":
		r.withConcept(s, fields, func(id int) {
			sel, err := s.Select(id, parseSelector(fields[2:]))
			if err != nil {
				fmt.Fprintln(r.out, "error:", err)
				return
			}
			labels, reps := s.Labels(), s.Representatives()
			for _, o := range sel {
				count, _ := s.Multiplicity(o)
				fmt.Fprintf(r.out, "  [%s] x%d %s\n", labelName(labels[o]), count, reps[o].Key())
			}
		})
	case "label":
		if len(fields) < 3 {
			fmt.Fprintln(r.out, "usage: label <c> <name> [sel]")
			return true
		}
		r.withConcept(s, fields, func(id int) {
			n, err := s.LabelTraces(id, parseSelector(fields[3:]), cable.Label(fields[2]))
			if err != nil {
				fmt.Fprintln(r.out, "error:", err)
				return
			}
			fmt.Fprintf(r.out, "labeled %d trace class(es) %q\n", n, fields[2])
		})
	case "focus":
		if len(fields) < 3 {
			fmt.Fprintln(r.out, "usage: focus <c> auto | unordered | project <name> | seed <event>")
			return true
		}
		r.withConcept(s, fields, func(id int) { r.focus(s, id, fields[2:]) })
	case "suggest":
		r.withConcept(s, fields, func(id int) {
			sug, err := s.SuggestFocus(id)
			if err != nil {
				fmt.Fprintln(r.out, "error:", err)
				return
			}
			fmt.Fprintf(r.out, "suggested template: %s (focus %d %s)\n", sug.Template, id, sug.Template)
		})
	case "endfocus":
		if r.Depth() == 1 {
			fmt.Fprintln(r.out, "not in a focused session")
			return true
		}
		top := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		merged, err := top.focus.End()
		if err != nil {
			fmt.Fprintln(r.out, "error:", err)
			return true
		}
		fmt.Fprintf(r.out, "merged %d label(s) back\n", merged)
	case "good":
		if len(fields) != 2 {
			fmt.Fprintln(r.out, "usage: good <label>")
			return true
		}
		if err := trace.Write(r.out, s.TracesWith(cable.Label(fields[1]))); err != nil {
			fmt.Fprintln(r.out, "error:", err)
		}
	case "save":
		if len(fields) != 2 {
			fmt.Fprintln(r.out, "usage: save <file>")
			return true
		}
		r.save(s, fields[1])
	case "workspace":
		if len(fields) != 2 {
			fmt.Fprintln(r.out, "usage: workspace <file>")
			return true
		}
		w, err := r.CreateFile(fields[1])
		if err != nil {
			fmt.Fprintln(r.out, "error:", err)
			return true
		}
		err = workspace.Save(w, s)
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(r.out, "error:", err)
			return true
		}
		fmt.Fprintf(r.out, "workspace written to %s\n", fields[1])
	case "load":
		if len(fields) != 2 {
			fmt.Fprintln(r.out, "usage: load <file>")
			return true
		}
		r.load(s, fields[1])
	case "dot":
		if len(fields) != 2 {
			fmt.Fprintln(r.out, "usage: dot <file>")
			return true
		}
		w, err := r.CreateFile(fields[1])
		if err != nil {
			fmt.Fprintln(r.out, "error:", err)
			return true
		}
		err = s.Lattice().WriteDot(w, "cable")
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(r.out, "error:", err)
		}
	case "done":
		unlabeled := 0
		for _, l := range s.Labels() {
			if l == cable.Unlabeled {
				unlabeled++
			}
		}
		fmt.Fprintf(r.out, "done: %v (%d of %d classes unlabeled; labels in use: %v)\n",
			s.Done(), unlabeled, s.NumTraces(), s.UsedLabels())
	case "quit", "exit":
		return false
	default:
		fmt.Fprintf(r.out, "unknown command %q; type \"help\"\n", fields[0])
	}
	return true
}

func (r *REPL) list(s *cable.Session) {
	for _, id := range s.Lattice().TopDownOrder() {
		c := s.Lattice().Concept(id)
		state, _ := s.ConceptState(id)
		fmt.Fprintf(r.out, "  c%-3d %-22s %3d class(es), similarity %d\n",
			id, state, c.Extent.Len(), c.Intent.Len())
	}
}

func (r *REPL) focus(s *cable.Session, id int, words []string) {
	ref, err := focusFA(s, id, words)
	if err != nil {
		fmt.Fprintln(r.out, "error:", err)
		return
	}
	fc, err := s.Focus(id, cable.SelectAll(), ref)
	if err != nil {
		fmt.Fprintln(r.out, "error:", err)
		return
	}
	r.stack = append(r.stack, frame{session: fc.Session(), focus: fc})
	fmt.Fprintf(r.out, "focused: %d classes, %d concepts\n", fc.Session().NumTraces(), fc.Session().Lattice().Len())
}

// save writes the current labeling as "<label>\t<trace key>" lines.
func (r *REPL) save(s *cable.Session, path string) {
	w, err := r.CreateFile(path)
	if err != nil {
		fmt.Fprintln(r.out, "error:", err)
		return
	}
	var lines []string
	for i, l := range s.Labels() {
		if l != cable.Unlabeled {
			lines = append(lines, fmt.Sprintf("%s\t%s", l, s.Representatives()[i].Key()))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
	if err := w.Close(); err != nil {
		fmt.Fprintln(r.out, "error:", err)
		return
	}
	fmt.Fprintf(r.out, "saved %d label(s) to %s\n", len(lines), path)
}

// load applies a saved labeling to matching trace classes.
func (r *REPL) load(s *cable.Session, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(r.out, "error:", err)
		return
	}
	applied, err := ApplyLabels(s, strings.NewReader(string(data)))
	if err != nil {
		fmt.Fprintln(r.out, "error:", err)
		return
	}
	fmt.Fprintf(r.out, "applied %d label(s) from %s\n", applied, path)
}

// ApplyLabels reads "<label>\t<trace key>" lines and labels the matching
// trace classes of the session, returning how many applied. It delegates
// to cable.ApplyLabels and exists for backward compatibility of the REPL
// API.
func ApplyLabels(s *cable.Session, in io.Reader) (int, error) {
	return cable.ApplyLabels(s, in)
}

func (r *REPL) withConcept(s *cable.Session, fields []string, f func(id int)) {
	if len(fields) < 2 {
		fmt.Fprintln(r.out, "usage:", fields[0], "<concept>")
		return
	}
	id, err := strconv.Atoi(strings.TrimPrefix(fields[1], "c"))
	if err != nil || id < 0 || id >= s.Lattice().Len() {
		fmt.Fprintf(r.out, "no concept %q (0..%d)\n", fields[1], s.Lattice().Len()-1)
		return
	}
	f(id)
}

// parseSelector parses the trailing selector words: "all", "unlabeled", or
// "with <label>"; default is all.
func parseSelector(words []string) cable.Selector {
	if len(words) == 0 {
		return cable.SelectAll()
	}
	switch words[0] {
	case "unlabeled":
		return cable.SelectUnlabeled()
	case "with":
		if len(words) > 1 {
			return cable.SelectLabel(cable.Label(words[1]))
		}
	}
	return cable.SelectAll()
}

// focusFA builds the Focus template requested on the command line
// (Section 4.1's unordered, name-projection, and seed-order templates).
func focusFA(s *cable.Session, id int, words []string) (*fa.FA, error) {
	traces, err := s.ShowTraces(id, cable.SelectAll())
	if err != nil {
		return nil, err
	}
	alphabet := trace.NewSet(traces...).Alphabet()
	switch words[0] {
	case "auto":
		sug, err := s.SuggestFocus(id)
		if err != nil {
			return nil, err
		}
		return sug.Ref, nil
	case "unordered":
		return fa.Unordered(alphabet), nil
	case "project":
		if len(words) < 2 {
			return nil, fmt.Errorf("usage: focus <c> project <name>")
		}
		return fa.NameProjection(alphabet, words[1]), nil
	case "seed":
		if len(words) < 2 {
			return nil, fmt.Errorf("usage: focus <c> seed <event>")
		}
		seed, err := event.Parse(strings.Join(words[1:], " "))
		if err != nil {
			return nil, err
		}
		return fa.SeedOrder(alphabet, seed), nil
	}
	return nil, fmt.Errorf("unknown focus template %q", words[0])
}

func labelName(l cable.Label) string {
	if l == cable.Unlabeled {
		return "-"
	}
	return string(l)
}

const helpText = `commands:
  ls | tree | info <c> | fa <c> [sel] | trans <c> [sel] | traces <c> [sel]
  label <c> <name> [sel]
  focus <c> auto | unordered | project <name> | seed <event>
  suggest <c> | endfocus | good <label> | save/load <file> | workspace <file> | dot <file>
  done | quit
sel: all | unlabeled | with <label>
`
