// Package rank orders violation reports so that likely-real, severe bugs
// surface first. The paper's related-work section positions ranking (as in
// Xgcc and PREfix) as complementary to concept-analysis clustering:
// "ranking tells the user what reports to inspect first, while clustering
// helps the user avoid inspecting redundant reports." This package supplies
// the ranking half.
//
// Reports are scored by statistical surprise under a stochastic FA learned
// from the full scenario multiset: a violating trace whose behaviour is
// rare in the corpus is more likely a real (and interesting) bug than one
// matching a common pattern, which more often indicates a specification
// gap. Frequency and trace length break ties deterministically.
package rank

import (
	"math"
	"sort"

	"repro/internal/learn"
	"repro/internal/trace"
	"repro/internal/verify"
)

// Report is one ranked violation class.
type Report struct {
	// Trace is the class representative.
	Trace trace.Trace
	// Count is how many identical violations were reported.
	Count int
	// At is the event index where the violation manifests.
	At int
	// Surprise is the per-event negative log2-likelihood of the trace
	// under the corpus model; +Inf when the trace falls outside the model.
	Surprise float64
}

// Ranker scores violations against a corpus of scenario traces.
type Ranker struct {
	model *learn.Result
}

// New learns the corpus model used for scoring. The corpus should be the
// full scenario multiset (violating and conforming alike), so common
// behaviour is cheap and rare behaviour expensive.
func New(corpus *trace.Set) (*Ranker, error) {
	var all []trace.Trace
	for _, c := range corpus.Classes() {
		for j := 0; j < c.Count; j++ {
			all = append(all, c.Rep)
		}
	}
	model, err := learn.DefaultLearner.Learn("rank-model", all)
	if err != nil {
		return nil, err
	}
	return &Ranker{model: model}, nil
}

// Rank groups the violations into classes and orders them most-suspicious
// first: descending surprise, then ascending frequency (rarer first), then
// shorter traces, then lexicographic key for determinism.
func (r *Ranker) Rank(violations []verify.Violation) []Report {
	byKey := map[string]*Report{}
	var order []string
	for _, v := range violations {
		key := v.Trace.Key()
		rep, ok := byKey[key]
		if !ok {
			surprise, okp := r.model.SurprisePerEvent(v.Trace)
			if !okp {
				surprise = math.Inf(1)
			}
			rep = &Report{Trace: v.Trace, At: v.At, Surprise: surprise}
			byKey[key] = rep
			order = append(order, key)
		}
		rep.Count++
	}
	out := make([]Report, 0, len(order))
	for _, key := range order {
		out = append(out, *byKey[key])
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Surprise != b.Surprise:
			// Handle +Inf consistently: more surprising first.
			return a.Surprise > b.Surprise
		case a.Count != b.Count:
			return a.Count < b.Count
		case a.Trace.Len() != b.Trace.Len():
			return a.Trace.Len() < b.Trace.Len()
		default:
			return a.Trace.Key() < b.Trace.Key()
		}
	})
	return out
}
