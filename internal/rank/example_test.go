package rank_test

import (
	"fmt"

	"repro/internal/rank"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/verify"
)

// Example ranks the violations of the buggy Figure 1 specification: the
// rare genuine leak outranks the common popen/pclose pairs that merely
// expose a specification gap.
func Example() {
	corpus := &trace.Set{}
	for i := 0; i < 20; i++ {
		corpus.Add(trace.ParseEvents("", "X = popen()", "pclose(X)"))
	}
	corpus.Add(trace.ParseEvents("", "X = fopen()", "fread(X)")) // rare leak

	ranker, err := rank.New(corpus)
	if err != nil {
		panic(err)
	}
	_, violations := verify.CheckSet(specs.FigureOneFA(), corpus)
	for i, rep := range ranker.Rank(violations) {
		fmt.Printf("#%d x%d %s\n", i+1, rep.Count, rep.Trace.Key())
	}
	// Output:
	// #1 x1 X = fopen(); fread(X)
	// #2 x20 X = popen(); pclose(X)
}
