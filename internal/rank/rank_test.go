package rank

import (
	"math"
	"testing"

	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/verify"
	"repro/internal/xtrace"
)

func TestRankSurprisingFirst(t *testing.T) {
	// Corpus: many popen/pclose pairs (a spec gap, common), one leak
	// (a real bug, rare). Against the Figure 1 spec, both violate; the
	// rare leak must rank above the common pair.
	corpus := &trace.Set{}
	for i := 0; i < 30; i++ {
		corpus.Add(trace.ParseEvents("", "X = popen()", "pclose(X)"))
		corpus.Add(trace.ParseEvents("", "X = fopen()", "fclose(X)"))
	}
	corpus.Add(trace.ParseEvents("", "X = fopen()", "fread(X)")) // rare leak

	r, err := New(corpus)
	if err != nil {
		t.Fatal(err)
	}
	_, violations := verify.CheckSet(specs.FigureOneFA(), corpus)
	reports := r.Rank(violations)
	if len(reports) != 2 {
		t.Fatalf("%d report classes, want 2", len(reports))
	}
	if reports[0].Trace.Key() != "X = fopen(); fread(X)" {
		t.Errorf("top report = %q, want the rare leak", reports[0].Trace.Key())
	}
	if reports[0].Surprise <= reports[1].Surprise {
		t.Errorf("surprise ordering wrong: %v vs %v", reports[0].Surprise, reports[1].Surprise)
	}
	if reports[1].Count != 30 {
		t.Errorf("common violation count = %d", reports[1].Count)
	}
}

func TestRankOutOfModelIsMostSurprising(t *testing.T) {
	corpus := trace.NewSet(
		trace.ParseEvents("", "a()", "b()"),
		trace.ParseEvents("", "a()", "b()"),
	)
	r, err := New(corpus)
	if err != nil {
		t.Fatal(err)
	}
	// A violation whose trace never occurred in the corpus model.
	alien := verify.Violation{Trace: trace.ParseEvents("", "z()"), At: 0}
	inModel := verify.Violation{Trace: trace.ParseEvents("", "a()", "b()"), At: 2}
	reports := r.Rank([]verify.Violation{inModel, alien})
	if reports[0].Trace.Key() != "z()" || !math.IsInf(reports[0].Surprise, 1) {
		t.Errorf("alien trace not first: %+v", reports)
	}
}

func TestRankDeterministicTieBreaks(t *testing.T) {
	corpus := trace.NewSet(
		trace.ParseEvents("", "a()"),
		trace.ParseEvents("", "b()"),
	)
	r, err := New(corpus)
	if err != nil {
		t.Fatal(err)
	}
	vs := []verify.Violation{
		{Trace: trace.ParseEvents("", "b()")},
		{Trace: trace.ParseEvents("", "a()")},
	}
	r1 := r.Rank(vs)
	r2 := r.Rank([]verify.Violation{vs[1], vs[0]})
	if r1[0].Trace.Key() != r2[0].Trace.Key() {
		t.Error("ranking depends on input order")
	}
}

func TestRankOnWorkload(t *testing.T) {
	// On a realistic workload, the top-ranked violations of the buggy spec
	// skew toward genuine errors (ground-truth bad traces), since correct-
	// but-rejected popen traces are common in the corpus.
	stdio := specs.Stdio()
	gen := xtrace.Generator{Model: stdio.Model, Seed: 11}
	corpus, truth := gen.ScenarioSet(300)
	r, err := New(corpus)
	if err != nil {
		t.Fatal(err)
	}
	_, violations := verify.CheckSet(specs.FigureOneFA(), corpus)
	reports := r.Rank(violations)
	if len(reports) < 4 {
		t.Fatalf("only %d report classes", len(reports))
	}
	// Count ground-truth bugs in the top half vs bottom half.
	half := len(reports) / 2
	topBad, botBad := 0, 0
	for i, rep := range reports {
		if !truth[rep.Trace.Key()] {
			if i < half {
				topBad++
			} else {
				botBad++
			}
		}
	}
	if topBad < botBad {
		t.Errorf("ranking buried the real bugs: top %d vs bottom %d", topBad, botBad)
	}
}
