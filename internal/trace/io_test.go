package trace

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/scanio"
)

// eventLineOfLength builds a parseable event line (indentation included)
// of exactly n bytes: "  vvv...v = op()".
func eventLineOfLength(n int) string {
	const overhead = len("  ") + len(" = op()")
	return "  " + strings.Repeat("v", n-overhead) + " = op()"
}

func TestReadMaxLengthEventLine(t *testing.T) {
	// The longest line bufio.Scanner can return under a max token size of
	// MaxLineBytes is MaxLineBytes-1 bytes; that line must parse.
	line := eventLineOfLength(scanio.MaxLineBytes - 1)
	input := "trace a\n" + line + "\nend\n"
	set, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatalf("Read at limit: %v", err)
	}
	if set.Total() != 1 || len(set.Class(0).Rep.Events) != 1 {
		t.Fatalf("unexpected shape: %d traces", set.Total())
	}
	// And it must survive the round trip (Write re-adds the indentation).
	var buf bytes.Buffer
	if err := Write(&buf, set); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatalf("reparse at limit: %v", err)
	}
}

func TestReadOverlongLineError(t *testing.T) {
	line := eventLineOfLength(scanio.MaxLineBytes)
	input := "trace a\n" + line + "\nend\n"
	_, err := Read(strings.NewReader(input))
	if err == nil {
		t.Fatal("Read accepted a line over the scanner limit")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("err = %v, want wrapped bufio.ErrTooLong", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "trace: line 2:") {
		t.Errorf("error lacks file position: %q", msg)
	}
	if !strings.Contains(msg, "4194304-byte limit") {
		t.Errorf("error does not spell out the limit: %q", msg)
	}
}
