package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/scanio"
)

// The text format for trace files:
//
//	# comment lines and blank lines are ignored
//	trace <id>
//	  <event>
//	  ...
//	end
//
// Event lines use the syntax of event.Parse. IDs may not contain whitespace;
// "trace" with no ID assigns an empty ID.

// Write serializes the traces of a set (one record per trace, duplicates
// included) to w.
func Write(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	for _, c := range s.Classes() {
		for j := 0; j < c.Count; j++ {
			t := c.Rep
			t.ID = c.IDs[j]
			if err := WriteTrace(bw, t); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteTrace serializes a single trace record.
func WriteTrace(w io.Writer, t Trace) error {
	if strings.ContainsAny(t.ID, " \t\n") {
		return fmt.Errorf("trace: ID %q contains whitespace", t.ID)
	}
	if _, err := fmt.Fprintf(w, "trace %s\n", t.ID); err != nil {
		return err
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintf(w, "  %s\n", e); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "end")
	return err
}

// Read parses a trace file into a Set.
func Read(r io.Reader) (*Set, error) {
	sp := obs.StartSpan("trace.read")
	defer sp.End()
	s := &Set{}
	sc := scanio.NewScanner(r)
	var (
		cur    *Trace
		lineno int
		events int64
	)
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case line == "trace" || strings.HasPrefix(line, "trace "):
			if cur != nil {
				return nil, scanio.LineError("trace", lineno, fmt.Errorf("nested trace record"))
			}
			fields := strings.Fields(line)
			if len(fields) > 2 {
				return nil, scanio.LineError("trace", lineno, fmt.Errorf("trace ID must be a single word"))
			}
			id := ""
			if len(fields) == 2 {
				id = fields[1]
			}
			cur = &Trace{ID: id}
		case line == "end":
			if cur == nil {
				return nil, scanio.LineError("trace", lineno, fmt.Errorf("end outside trace record"))
			}
			s.Add(*cur)
			cur = nil
		default:
			if cur == nil {
				return nil, scanio.LineError("trace", lineno, fmt.Errorf("event outside trace record"))
			}
			e, err := event.Parse(line)
			if err != nil {
				return nil, scanio.LineError("trace", lineno, err)
			}
			cur.Events = append(cur.Events, e)
			events++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, scanio.LineError("trace", lineno+1, err)
	}
	if cur != nil {
		return nil, fmt.Errorf("trace: unterminated trace record %q", cur.ID) //cablevet:ignore errwrapline whole-input error, no line to blame
	}
	obs.Count("trace.read.lines", int64(lineno))
	obs.Count("trace.read.traces", int64(s.Total()))
	obs.Count("trace.read.events", events)
	return s, nil
}
