package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

func tr(id string, events ...string) Trace { return ParseEvents(id, events...) }

func TestKeyAndEqual(t *testing.T) {
	a := tr("a", "X = fopen()", "fclose(X)")
	b := tr("b", "X = fopen()", "fclose(X)")
	c := tr("c", "X = fopen()")
	if a.Key() != "X = fopen(); fclose(X)" {
		t.Errorf("Key = %q", a.Key())
	}
	if !a.Equal(b) {
		t.Error("identical sequences with different IDs must be Equal")
	}
	if a.Equal(c) || c.Equal(a) {
		t.Error("different sequences compare Equal")
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestNamesOpsMentions(t *testing.T) {
	a := tr("a", "X = fopen()", "Y = dup(X)", "fclose(Y)")
	if got := strings.Join(a.Names(), ","); got != "X,Y" {
		t.Errorf("Names = %q", got)
	}
	if got := strings.Join(a.Ops(), ","); got != "fopen,dup,fclose" {
		t.Errorf("Ops = %q", got)
	}
	if !a.Mentions("X") || a.Mentions("Z") {
		t.Error("Mentions wrong")
	}
}

func TestRenameAndProject(t *testing.T) {
	a := tr("a", "X = fopen()", "Y = popen()", "fread(X)", "pclose(Y)")
	r := a.Rename(map[string]string{"X": "F"})
	if r.Key() != "F = fopen(); Y = popen(); fread(F); pclose(Y)" {
		t.Errorf("Rename = %q", r.Key())
	}
	p := a.Project("Y")
	if p.Key() != "Y = popen(); pclose(Y)" {
		t.Errorf("Project = %q", p.Key())
	}
	if empty := a.Project("Q"); empty.Len() != 0 {
		t.Errorf("Project absent name = %q", empty.Key())
	}
}

func TestSetDedup(t *testing.T) {
	s := NewSet(
		tr("t1", "X = fopen()", "fclose(X)"),
		tr("t2", "X = popen()", "pclose(X)"),
		tr("t3", "X = fopen()", "fclose(X)"),
	)
	if s.Total() != 3 || s.NumClasses() != 2 {
		t.Fatalf("Total=%d NumClasses=%d", s.Total(), s.NumClasses())
	}
	c := s.Class(0)
	if c.Count != 2 || c.Rep.ID != "t1" || strings.Join(c.IDs, ",") != "t1,t3" {
		t.Errorf("class 0 = %+v", c)
	}
	reps := s.Representatives()
	if len(reps) != 2 || reps[1].ID != "t2" {
		t.Errorf("Representatives = %v", reps)
	}
	if got := s.ClassOf(tr("zzz", "X = popen()", "pclose(X)")); got != 1 {
		t.Errorf("ClassOf = %d", got)
	}
	if got := s.ClassOf(tr("zzz", "nope()")); got != -1 {
		t.Errorf("ClassOf missing = %d", got)
	}
}

func TestSetAddAll(t *testing.T) {
	a := NewSet(tr("t1", "f()"), tr("t2", "f()"))
	b := NewSet(tr("t3", "g()"))
	b.AddAll(a)
	if b.Total() != 3 || b.NumClasses() != 2 {
		t.Fatalf("Total=%d NumClasses=%d", b.Total(), b.NumClasses())
	}
	if got := strings.Join(b.Class(1).IDs, ","); got != "t1,t2" {
		t.Errorf("merged IDs = %q", got)
	}
}

func TestAlphabet(t *testing.T) {
	s := NewSet(
		tr("t1", "X = fopen()", "fclose(X)"),
		tr("t2", "X = fopen()", "fread(X)", "fclose(X)"),
	)
	var got []string
	for _, e := range s.Alphabet() {
		got = append(got, e.String())
	}
	want := "X = fopen(); fclose(X); fread(X)"
	if strings.Join(got, "; ") != want {
		t.Errorf("Alphabet = %q, want %q", strings.Join(got, "; "), want)
	}
}

func TestEmptySetQueries(t *testing.T) {
	var s Set
	if s.Total() != 0 || s.NumClasses() != 0 || s.ClassOf(tr("x", "f()")) != -1 {
		t.Error("zero Set misbehaves")
	}
	if len(s.Alphabet()) != 0 || len(s.Representatives()) != 0 {
		t.Error("zero Set produces phantom contents")
	}
}

func TestWriteRead(t *testing.T) {
	s := NewSet(
		tr("t1", "X = fopen()", "fclose(X)"),
		tr("t2", "X = popen()", "pclose(X)"),
		tr("t3", "X = fopen()", "fclose(X)"),
		tr("", "XFlush()"),
	)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() != 4 || got.NumClasses() != 3 {
		t.Fatalf("round trip Total=%d NumClasses=%d", got.Total(), got.NumClasses())
	}
	for i := range s.Classes() {
		if s.Class(i).Rep.Key() != got.Class(i).Rep.Key() {
			t.Errorf("class %d changed: %q -> %q", i, s.Class(i).Rep.Key(), got.Class(i).Rep.Key())
		}
		if strings.Join(s.Class(i).IDs, ",") != strings.Join(got.Class(i).IDs, ",") {
			t.Errorf("class %d IDs changed", i)
		}
	}
}

func TestReadComments(t *testing.T) {
	in := "# header\n\ntrace a\n  # not a comment inside? actually is skipped\n  f()\nend\n"
	s, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Total() != 1 || s.Class(0).Rep.Len() != 1 {
		t.Fatalf("got %d traces, rep %q", s.Total(), s.Class(0).Rep.Key())
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{
		"f()\n",                      // event outside record
		"trace a\ntrace b\nend\n",    // nested
		"end\n",                      // stray end
		"trace a\n  bogus line\nend", // bad event
		"trace a\n  f()\n",           // unterminated
	} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", in)
		}
	}
}

func TestWriteTraceBadID(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, Trace{ID: "has space"}); err == nil {
		t.Fatal("WriteTrace accepted whitespace ID")
	}
}

// Property: Write then Read preserves classes, counts, and keys.
func TestQuickRoundTrip(t *testing.T) {
	ops := []string{"fopen", "fclose", "fread", "fwrite", "popen", "pclose"}
	err := quick.Check(func(spec [][]uint8) bool {
		s := &Set{}
		for i, evIdxs := range spec {
			if i >= 10 {
				break
			}
			var evs []event.Event
			for j, k := range evIdxs {
				if j >= 6 {
					break
				}
				op := ops[int(k)%len(ops)]
				if op == "fopen" || op == "popen" {
					evs = append(evs, event.Bind("X", op))
				} else {
					evs = append(evs, event.Call(op, "X"))
				}
			}
			s.Add(Trace{ID: "", Events: evs})
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Total() != s.Total() || got.NumClasses() != s.NumClasses() {
			return false
		}
		for i := range s.Classes() {
			if s.Class(i).Rep.Key() != got.Class(i).Rep.Key() || s.Class(i).Count != got.Class(i).Count {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}
