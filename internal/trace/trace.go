// Package trace represents program execution traces and collections of them.
//
// A Trace is a finite sequence of symbolic events (see internal/event): the
// scenario traces that the Strauss miner extracts, and the violation traces a
// verifier reports, are both Traces. A Set is an insertion-ordered multiset
// of traces that additionally maintains the partition into classes of
// identical traces — the unit of work for the paper's Baseline labeling
// method and the representatives from which concept lattices are built
// (Section 5.2 builds the lattice "from representatives for classes of
// identical scenarios, rather than from all of the scenarios").
package trace

import (
	"repro/internal/event"
)

// Trace is a finite sequence of events with an optional provenance ID.
// Equality and dedup ignore the ID: two traces are identical iff their event
// sequences are identical.
type Trace struct {
	// ID records where the trace came from, e.g. "xclock:run2:#17".
	ID string
	// Events is the event sequence.
	Events []event.Event
}

// New builds a trace from events.
func New(id string, events ...event.Event) Trace {
	return Trace{ID: id, Events: events}
}

// ParseEvents builds a trace by parsing each event string; it panics on a
// malformed event and is intended for literals in tests and examples.
func ParseEvents(id string, events ...string) Trace {
	tr := Trace{ID: id, Events: make([]event.Event, len(events))}
	for i, s := range events {
		tr.Events[i] = event.MustParse(s)
	}
	return tr
}

// Len returns the number of events.
func (t Trace) Len() int { return len(t.Events) }

// Key returns the canonical string identifying the event sequence; traces
// are identical iff their keys are equal.
func (t Trace) Key() string {
	return string(t.AppendKey(nil))
}

// AppendKey appends the bytes of t.Key() to dst and returns the extended
// slice. Identical traces append equal bytes. Hot paths that dedup or
// memoize per identical-event class (e.g. fa.Sim) reuse one buffer across
// calls and look classes up with string(buf), which the compiler optimizes
// to an allocation-free map access.
func (t Trace) AppendKey(dst []byte) []byte {
	for i, e := range t.Events {
		if i > 0 {
			dst = append(dst, "; "...)
		}
		dst = e.AppendString(dst)
	}
	return dst
}

// String renders the trace as its key (IDs are provenance, not content).
func (t Trace) String() string { return t.Key() }

// Equal reports whether two traces have identical event sequences.
func (t Trace) Equal(u Trace) bool {
	if len(t.Events) != len(u.Events) {
		return false
	}
	for i := range t.Events {
		if !t.Events[i].Equal(u.Events[i]) {
			return false
		}
	}
	return true
}

// Mentions reports whether any event in the trace mentions the variable name.
func (t Trace) Mentions(name string) bool {
	for _, e := range t.Events {
		if e.Mentions(name) {
			return true
		}
	}
	return false
}

// Names returns the sorted distinct variable names mentioned by the trace.
func (t Trace) Names() []string {
	set := map[string]bool{}
	for _, e := range t.Events {
		for _, n := range e.Names() {
			set[n] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

// Ops returns the operation name of each event, in order.
func (t Trace) Ops() []string {
	out := make([]string, len(t.Events))
	for i, e := range t.Events {
		out[i] = e.Op
	}
	return out
}

// Rename returns a copy of the trace with every event renamed through subst.
func (t Trace) Rename(subst map[string]string) Trace {
	out := Trace{ID: t.ID, Events: make([]event.Event, len(t.Events))}
	for i, e := range t.Events {
		out.Events[i] = e.Rename(subst)
	}
	return out
}

// Project returns the subtrace of events mentioning the given name. Events
// not mentioning it are dropped. This is the trace-side counterpart of the
// name-projection Focus template (Section 4.1).
func (t Trace) Project(name string) Trace {
	out := Trace{ID: t.ID}
	for _, e := range t.Events {
		if e.Mentions(name) {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Class is a group of identical traces within a Set.
type Class struct {
	// Rep is the first trace inserted with this event sequence.
	Rep Trace
	// Count is the number of traces in the class (including Rep).
	Count int
	// IDs lists the provenance IDs of all members, in insertion order.
	IDs []string
}

// Set is an insertion-ordered multiset of traces with identical-trace
// classes. The zero value is an empty set ready to use.
type Set struct {
	classes []Class
	index   map[string]int // trace key -> index into classes
	total   int
}

// NewSet builds a set from the given traces.
func NewSet(traces ...Trace) *Set {
	s := &Set{}
	for _, t := range traces {
		s.Add(t)
	}
	return s
}

// Add inserts a trace. It returns the index of the trace's class and whether
// the class is new.
func (s *Set) Add(t Trace) (class int, isNew bool) {
	if s.index == nil {
		s.index = map[string]int{}
	}
	key := t.Key()
	s.total++
	if i, ok := s.index[key]; ok {
		s.classes[i].Count++
		s.classes[i].IDs = append(s.classes[i].IDs, t.ID)
		return i, false
	}
	i := len(s.classes)
	s.index[key] = i
	s.classes = append(s.classes, Class{Rep: t, Count: 1, IDs: []string{t.ID}})
	return i, true
}

// AddAll inserts every trace of another set, with multiplicities.
func (s *Set) AddAll(other *Set) {
	for _, c := range other.classes {
		for j := 0; j < c.Count; j++ {
			t := c.Rep
			t.ID = c.IDs[j]
			s.Add(t)
		}
	}
}

// Total returns the number of traces including duplicates.
func (s *Set) Total() int { return s.total }

// NumClasses returns the number of classes of identical traces.
func (s *Set) NumClasses() int { return len(s.classes) }

// Classes returns the identical-trace classes in insertion order. The
// returned slice is shared; callers must not mutate it.
func (s *Set) Classes() []Class { return s.classes }

// Class returns the i'th class.
func (s *Set) Class(i int) Class { return s.classes[i] }

// Representatives returns one trace per class, in insertion order. This is
// the object set from which the paper builds concept lattices.
func (s *Set) Representatives() []Trace {
	out := make([]Trace, len(s.classes))
	for i, c := range s.classes {
		out[i] = c.Rep
	}
	return out
}

// ClassOf returns the class index of a trace identical to t, or -1.
func (s *Set) ClassOf(t Trace) int {
	return s.ClassOfKey(t.Key())
}

// ClassOfKey returns the class index of the trace with the given canonical
// key (see Trace.Key), or -1. Callers that persist class identity — e.g. a
// write-ahead log of labeling actions — store keys and resolve them here on
// replay, which stays correct even if class indices shift between runs.
func (s *Set) ClassOfKey(key string) int {
	if s.index == nil {
		return -1
	}
	if i, ok := s.index[key]; ok {
		return i
	}
	return -1
}

// Alphabet returns the sorted distinct event strings occurring in the set.
func (s *Set) Alphabet() []event.Event {
	seen := map[string]event.Event{}
	for _, c := range s.classes {
		for _, e := range c.Rep.Events {
			seen[e.String()] = e
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := make([]event.Event, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}
