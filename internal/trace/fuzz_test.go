package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that the trace-file reader never panics and that
// anything it accepts survives a write/read round trip.
func FuzzRead(f *testing.F) {
	for _, seed := range []string{
		"trace a\n  f()\nend\n",
		"trace\nend\n",
		"# comment\n\ntrace x\n  X = fopen()\n  fclose(X)\nend\n",
		"trace a\ntrace b\nend\n",
		"end\n",
		"garbage\n",
		"trace a\n  not an event\nend\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		set, err := Read(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, set); err != nil {
			// IDs with whitespace cannot be produced by Read (IDs are
			// single fields), so Write must succeed.
			t.Fatalf("Write of parsed set failed: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip does not reparse: %v", err)
		}
		if again.Total() != set.Total() || again.NumClasses() != set.NumClasses() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				set.Total(), set.NumClasses(), again.Total(), again.NumClasses())
		}
	})
}
