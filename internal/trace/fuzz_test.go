package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzTraceRoundTrip checks the Write → Read identity in depth: any set
// Read accepts must serialize and reparse to identical classes — same
// order, same IDs, same keys, same counts — not merely the same shape.
// Seeds cover empty-ID records, comment/blank interleaving, and long
// event lines (the unified scanner limit itself is exercised by
// TestReadMaxLengthEventLine; a multi-megabyte line is too large for a
// fuzz corpus entry).
func FuzzTraceRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"trace\nend\n",                    // empty-ID record
		"trace\nend\ntrace\n  f()\nend\n", // two records, both empty IDs
		"# header\n\ntrace a\n# mid\n  f()\n\nend\n# trailer\n", // comments/blanks interleaved
		"trace a\n  X = fopen()\n  fclose(X)\nend\n\n# c\n\ntrace a\n  X = fopen()\n  fclose(X)\nend\n",
		"trace " + strings.Repeat("i", 512) + "\n  " + strings.Repeat("v", 1024) + " = op()\nend\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		set, err := Read(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, set); err != nil {
			t.Fatalf("Write of parsed set failed: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip does not reparse: %v", err)
		}
		if again.Total() != set.Total() || again.NumClasses() != set.NumClasses() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				set.Total(), set.NumClasses(), again.Total(), again.NumClasses())
		}
		for i := 0; i < set.NumClasses(); i++ {
			a, b := set.Class(i), again.Class(i)
			if a.Rep.Key() != b.Rep.Key() {
				t.Fatalf("class %d key changed: %q -> %q", i, a.Rep.Key(), b.Rep.Key())
			}
			if a.Count != b.Count {
				t.Fatalf("class %d count changed: %d -> %d", i, a.Count, b.Count)
			}
			if strings.Join(a.IDs, "\x00") != strings.Join(b.IDs, "\x00") {
				t.Fatalf("class %d IDs changed: %q -> %q", i, a.IDs, b.IDs)
			}
		}
	})
}

// FuzzRead checks that the trace-file reader never panics and that
// anything it accepts survives a write/read round trip.
func FuzzRead(f *testing.F) {
	for _, seed := range []string{
		"trace a\n  f()\nend\n",
		"trace\nend\n",
		"# comment\n\ntrace x\n  X = fopen()\n  fclose(X)\nend\n",
		"trace a\ntrace b\nend\n",
		"end\n",
		"garbage\n",
		"trace a\n  not an event\nend\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		set, err := Read(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, set); err != nil {
			// IDs with whitespace cannot be produced by Read (IDs are
			// single fields), so Write must succeed.
			t.Fatalf("Write of parsed set failed: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip does not reparse: %v", err)
		}
		if again.Total() != set.Total() || again.NumClasses() != set.NumClasses() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				set.Total(), set.NumClasses(), again.Total(), again.NumClasses())
		}
	})
}
