package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
}

// goList runs `go list -deps -export -json` in dir over the patterns and
// decodes the JSON stream.
func goList(dir string, patterns []string) ([]listEntry, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportImporter resolves import paths to compiler export data files.
// importMap translates source import paths to canonical package paths
// (the vet.cfg ImportMap); it may be nil.
func exportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// newInfo allocates a types.Info with every map analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// checkPackage parses files and type-checks them as one package.
func checkPackage(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: path,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// LoadPackages loads, parses, and type-checks the packages matching the
// patterns (relative to dir, "" meaning the current directory), using
// `go list -deps -export` so every import — standard library or module —
// resolves through compiler export data. Standard-library packages and
// pure dependencies are used for their export data only; the returned
// slice holds just the pattern-matched packages, sorted by import path.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listEntry
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports, nil)
	var pkgs []*Package
	for _, e := range targets {
		if e.Incomplete || len(e.GoFiles) == 0 {
			continue
		}
		filenames := make([]string, len(e.GoFiles))
		for i, g := range e.GoFiles {
			filenames[i] = filepath.Join(e.Dir, g)
		}
		pkg, err := checkPackage(fset, e.ImportPath, filenames, imp)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %v", e.ImportPath, err)
		}
		pkg.Dir = e.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads the single package rooted at dir — typically an
// analysistest golden package under testdata, which `go list` patterns
// skip. The directory's files are parsed directly; their imports are
// resolved by listing the imported paths (with -deps -export) from
// moduleDir, so golden packages may import real repository packages and
// the standard library alike.
func LoadDir(dir, moduleDir string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	if len(matches) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, name := range matches {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err == nil && path != "unsafe" {
				importSet[path] = true
			}
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		patterns := make([]string, 0, len(importSet))
		for p := range importSet {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		entries, err := goList(moduleDir, patterns)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.Export != "" {
				exports[e.ImportPath] = e.Export
			}
		}
	}
	imp := exportImporter(fset, exports, nil)
	info := newInfo()
	conf := types.Config{Importer: imp}
	path := filepath.Base(dir)
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %v", dir, err)
	}
	return &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
