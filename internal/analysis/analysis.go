// Package analysis is a self-contained static-analysis framework in the
// shape of golang.org/x/tools/go/analysis, reimplemented over the
// standard library's go/ast and go/types because this repository carries
// no module dependencies. It hosts the project-specific invariant
// checkers of cmd/cablevet: an Analyzer inspects one type-checked
// package (a Pass) and reports Diagnostics.
//
// Three drivers share the framework:
//
//   - cmd/cablevet run standalone on package patterns (LoadPackages),
//   - cmd/cablevet invoked by `go vet -vettool=` (RunUnitchecker, which
//     speaks the vet.cfg protocol), and
//   - the analysistest golden-file runner used by the analyzer tests.
//
// Diagnostics can be suppressed at the source line with a comment of the
// form
//
//	//cablevet:ignore <analyzer> [reason]
//
// placed on the flagged line or the line above it. The analyzer name
// "all" suppresses every checker. Suppressions are applied centrally by
// RunPackage, so every driver honors them identically.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run inspects the Pass and reports
// findings through pass.Report; the error return is for operational
// failures (a checker that cannot run), not for findings.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, suppression
	// comments, and test golden files. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description shown by `cablevet -help`.
	Doc string
	// Run performs the analysis.
	Run func(*Pass) error
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding. The driver attaches the analyzer
	// name and applies suppression comments.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the static type of e, or nil when untyped.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, consulting both
// uses and definitions.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver
}

// Position resolves a diagnostic's position against a file set.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// ignoreDirective is the comment prefix of a suppression.
const ignoreDirective = "//cablevet:ignore"

// suppressions maps "file:line" to the set of analyzer names ignored at
// that line.
type suppressions map[string]map[string]bool

// collectSuppressions scans the package's comments for ignore
// directives. A directive suppresses its own line and the next line, so
// it works both trailing a statement and on its own line above one.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	add := func(file string, line int, name string) {
		key := fmt.Sprintf("%s:%d", file, line)
		if sup[key] == nil {
			sup[key] = map[string]bool{}
		}
		sup[key][name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignoreDirective)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				add(pos.Filename, pos.Line, fields[0])
				add(pos.Filename, pos.Line+1, fields[0])
			}
		}
	}
	return sup
}

// suppressed reports whether a diagnostic of the named analyzer at pos
// is covered by an ignore directive.
func (s suppressions) suppressed(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	p := fset.Position(pos)
	names := s[fmt.Sprintf("%s:%d", p.Filename, p.Line)]
	return names != nil && (names[analyzer] || names["all"])
}

// RunPackage runs every analyzer over one loaded package and returns the
// surviving (non-suppressed) diagnostics sorted by position. Analyzer
// errors are returned joined after all analyzers have run.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	var errs []string
	for _, a := range analyzers {
		a := a
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d Diagnostic) {
				d.Analyzer = a.Name
				if sup.suppressed(pkg.Fset, d.Pos, a.Name) {
					return
				}
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", a.Name, err))
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	if len(errs) > 0 {
		return diags, fmt.Errorf("analysis: %s", strings.Join(errs, "; "))
	}
	return diags, nil
}
