package analyzers_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/analyzers"
)

func TestObsSpanGolden(t *testing.T) {
	analysistest.Run(t, "testdata/obsspan", analyzers.ObsSpan)
}

func TestPoolEscapeGolden(t *testing.T) {
	analysistest.Run(t, "testdata/poolescape", analyzers.PoolEscape)
}

func TestCtxPropagateGolden(t *testing.T) {
	analysistest.Run(t, "testdata/ctxpropagate", analyzers.CtxPropagate)
}

func TestErrWrapLineGolden(t *testing.T) {
	analysistest.Run(t, "testdata/errwrapline", analyzers.ErrWrapLine)
}

func TestLockHeldGolden(t *testing.T) {
	analysistest.Run(t, "testdata/lockheld", analyzers.LockHeld)
}

func TestPoolArenaGolden(t *testing.T) {
	analysistest.Run(t, "testdata/poolarena", analyzers.PoolArena)
}

func TestErrEnvelopeGolden(t *testing.T) {
	analysistest.Run(t, "testdata/errenvelope", analyzers.ErrEnvelope)
}

func TestAllIsStable(t *testing.T) {
	want := []string{"obsspan", "poolescape", "ctxpropagate", "errwrapline", "lockheld", "poolarena", "errenvelope"}
	all := analyzers.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s is missing Doc or Run", a.Name)
		}
		if got, ok := analyzers.ByName(a.Name); !ok || got != a {
			t.Errorf("ByName(%s) did not round-trip", a.Name)
		}
	}
	if _, ok := analyzers.ByName("nosuch"); ok {
		t.Error("ByName(nosuch) unexpectedly succeeded")
	}
	_ = analysis.Diagnostic{}
}
