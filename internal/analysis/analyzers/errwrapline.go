package analyzers

import (
	"go/ast"

	"repro/internal/analysis"
)

// ErrWrapLine enforces the shared scanner policy (internal/scanio).
// Two rules:
//
//  1. Readers construct scanners with scanio.NewScanner, never
//     bufio.NewScanner directly — the shared constructor carries the
//     4 MiB line cap and keeps failure behaviour uniform across the
//     trace, FA, and concept readers.
//  2. Inside a function that uses a scanio scanner, errors returned to
//     the caller are wrapped with scanio.LineError so "which line broke"
//     survives to the user. A bare fmt.Errorf in a return loses the
//     line number and breaks errors.Is chains that expect LineError.
//
// The scanio package itself is exempt from rule 1: it is the one place
// allowed to touch bufio.
var ErrWrapLine = &analysis.Analyzer{
	Name: "errwrapline",
	Doc: "check that line-oriented readers use scanio.NewScanner and wrap " +
		"returned errors in scanio.LineError",
	Run: runErrWrapLine,
}

func runErrWrapLine(pass *analysis.Pass) error {
	for _, fb := range functionBodies(pass) {
		checkScannerUse(pass, fb)
	}
	return nil
}

// callKeyIs reports whether e is a call to the function named by key
// ("pkgpath.Name" form).
func callKeyIs(pass *analysis.Pass, e ast.Expr, key string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return funcKey(calleeFunc(pass, call)) == key
}

func checkScannerUse(pass *analysis.Pass, fb funcBody) {
	usesScanio := false
	walkShallow(fb.body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if callKeyIs(pass, e, "bufio.NewScanner") && pass.Pkg.Path() != scanioPkgPath {
			pass.Reportf(e.Pos(), "use scanio.NewScanner instead of bufio.NewScanner (shared line cap and error policy)")
			return false
		}
		if callKeyIs(pass, e, scanioPkgPath+".NewScanner") {
			usesScanio = true
			return false
		}
		return true
	})
	if !usesScanio {
		return
	}
	// Rule 2: in this reader, a return whose result is a direct
	// fmt.Errorf(...) call bypasses LineError. fmt.Errorf nested inside
	// scanio.LineError(...) is fine — it is LineError's cause argument,
	// not the returned error.
	walkShallow(fb.body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if callKeyIs(pass, res, "fmt.Errorf") {
				pass.Reportf(res.Pos(), "reader error is not wrapped in scanio.LineError")
			}
		}
		return true
	})
}
