package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// LockHeld guards the HTTP server's concurrency design (internal/server):
// the per-session mutex serializes commands on one session, so holding it
// across a blocking operation — building a lattice, writing the HTTP
// response, sleeping — stalls every queued request for that session and,
// under the store's read lock, can back up unrelated sessions too. The
// analyzer knows two ways a region can be locked: an explicit
// mu.Lock()/Unlock() window, and the body of a function literal passed to
// withSession, which the server runs entirely under the session entry's
// mutex.
var LockHeld = &analysis.Analyzer{
	Name: "lockheld",
	Doc: "check that the per-session mutex is not held across blocking " +
		"calls (lattice builds, HTTP writes, sleeps)",
	Run: runLockHeld,
}

// blockingCalls maps funcKey forms to a short reason used in the
// diagnostic. The set is the repository's own long-running operations
// plus the usual stdlib suspects.
var blockingCalls = map[string]string{
	"repro/internal/cable.NewSession":           "builds the initial lattice",
	"repro/internal/cable.Session.Focus":        "rebuilds the lattice",
	"repro/internal/cable.Session.Suggest":      "scans the lattice",
	"repro/internal/concept.Build":              "builds a lattice",
	"repro/internal/concept.BuildCtx":           "builds a lattice",
	"repro/internal/concept.BuildFromTraces":    "builds a lattice",
	"repro/internal/concept.BuildFromTracesCtx": "builds a lattice",
	"repro/internal/concept.TraceContext":       "simulates every trace",
	"repro/internal/concept.TraceContextCtx":    "simulates every trace",
	"repro/internal/obs.Metrics.WriteText":      "renders a full metrics snapshot",
	"time.Sleep":                                "sleeps",
	"net/http.Client.Do":                        "performs network I/O",
	"net/http.Get":                              "performs network I/O",
	"net/http.Post":                             "performs network I/O",
	"net/http.ResponseController.Flush":         "performs network I/O",
}

func runLockHeld(pass *analysis.Pass) error {
	// Function literals passed to withSession run with the session lock
	// held from their first statement; collect them so the body walk can
	// start in the locked state.
	lockedLits := map[*ast.FuncLit]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if name != "withSession" && name != "withEntry" {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					lockedLits[lit] = true
				}
			}
			return true
		})
	}
	for _, fb := range functionBodies(pass) {
		locked := false
		if lit, ok := fb.node.(*ast.FuncLit); ok && lockedLits[lit] {
			locked = true
		}
		w := &lockWalker{pass: pass}
		w.walk(fb.body.List, locked)
	}
	return nil
}

// calleeName is the syntactic callee name (withSession in both
// s.withSession(...) and withSession(...) forms).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// lockWalker tracks the locked state lexically through one body. Branch
// bodies inherit the state at entry; an Unlock inside one arm does not
// clear the state for code after the branch.
type lockWalker struct {
	pass *analysis.Pass
}

func (w *lockWalker) walk(stmts []ast.Stmt, locked bool) bool {
	for _, s := range stmts {
		locked = w.walkStmt(s, locked)
	}
	return locked
}

func (w *lockWalker) walkStmt(s ast.Stmt, locked bool) bool {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			switch mutexOp(w.pass, call) {
			case "Lock", "RLock":
				return true
			case "Unlock", "RUnlock":
				return false
			}
		}
		w.checkExpr(st.X, locked)
		return locked
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to the end of the
		// function — state stays locked, which is the point.
		if op := mutexOp(w.pass, st.Call); op == "Unlock" || op == "RUnlock" {
			return locked
		}
		return locked
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			w.checkExpr(rhs, locked)
		}
		return locked
	case *ast.ReturnStmt:
		for _, res := range st.Results {
			w.checkExpr(res, locked)
		}
		return locked
	case *ast.GoStmt:
		return locked // the goroutine runs outside this lock region
	case *ast.BlockStmt:
		return w.walk(st.List, locked)
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, locked)
	case *ast.IfStmt:
		if st.Init != nil {
			locked = w.walkStmt(st.Init, locked)
		}
		w.checkExpr(st.Cond, locked)
		w.walk(st.Body.List, locked)
		if st.Else != nil {
			w.walkStmt(st.Else, locked)
		}
		return locked
	case *ast.ForStmt:
		w.walk(st.Body.List, locked)
		return locked
	case *ast.RangeStmt:
		w.checkExpr(st.X, locked)
		w.walk(st.Body.List, locked)
		return locked
	case *ast.SwitchStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				w.walk(cl.Body, locked)
			}
		}
		return locked
	case *ast.TypeSwitchStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				w.walk(cl.Body, locked)
			}
		}
		return locked
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				w.walk(cl.Body, locked)
			}
		}
		return locked
	}
	return locked
}

// mutexOp classifies a call as a sync.Mutex/RWMutex Lock-family
// operation and returns the method name, or "".
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return ""
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	pkg, name := namedType(sig.Recv().Type())
	if pkg == "sync" && (name == "Mutex" || name == "RWMutex") {
		return fn.Name()
	}
	return ""
}

// checkExpr reports blocking calls in an expression evaluated while the
// lock is held. Function literals are skipped: they run when called, not
// where they are written.
func (w *lockWalker) checkExpr(e ast.Expr, locked bool) {
	if !locked || e == nil {
		return
	}
	walkShallow(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if why, name, ok := w.blocking(call); ok {
			w.pass.Reportf(call.Pos(), "blocking call %s while the session lock is held (%s)", name, why)
		}
		return true
	})
}

// blocking classifies a call: a known long-running function, or any call
// handed the http.ResponseWriter (response writes block on the client).
func (w *lockWalker) blocking(call *ast.CallExpr) (why, name string, ok bool) {
	fn := calleeFunc(w.pass, call)
	key := funcKey(fn)
	if why, ok := blockingCalls[key]; ok {
		return why, displayName(key), true
	}
	for _, arg := range call.Args {
		pkg, tname := namedType(w.pass.TypeOf(arg))
		if pkg == "net/http" && tname == "ResponseWriter" {
			n := calleeName(call)
			if n == "" {
				n = "call"
			}
			return "writes the HTTP response", n, true
		}
	}
	return "", "", false
}

// displayName shortens a funcKey to pkg.Func / pkg.Type.Method form.
func displayName(key string) string {
	i := strings.LastIndex(key, "/")
	if i < 0 {
		return key
	}
	return key[i+1:]
}
