package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// PoolEscape enforces the sync.Pool scratch discipline of the compiled
// FA simulator (internal/fa): a value taken from a pool — directly via
// pool.Get() or through a get() accessor on a struct that owns a pool —
// is function-local. It must not be returned, stored outside the
// function's locals, captured by a goroutine, or used after it has been
// handed back with Put. Violations corrupt concurrent simulations in
// ways -race only catches when two goroutines collide in the same run.
var PoolEscape = &analysis.Analyzer{
	Name: "poolescape",
	Doc: "check that sync.Pool scratch values do not escape the function " +
		"or get used after Put",
	Run: runPoolEscape,
}

func runPoolEscape(pass *analysis.Pass) error {
	for _, fb := range functionBodies(pass) {
		checkPoolInBody(pass, fb)
	}
	return nil
}

// isPoolGet reports whether call is (*sync.Pool).Get, possibly under a
// type assertion, or a get()/Get() accessor method on a struct type that
// has a sync.Pool field.
func isPoolGet(pass *analysis.Pass, e ast.Expr) bool {
	if ta, ok := ast.Unparen(e).(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	recvPkg, recvName := namedType(sig.Recv().Type())
	if fn.Name() == "Get" && recvPkg == "sync" && recvName == "Pool" {
		return true
	}
	if fn.Name() != "get" && fn.Name() != "Get" {
		return false
	}
	return structHasPoolField(sig.Recv().Type())
}

// isPoolPut mirrors isPoolGet for the hand-back call; arg must be the
// tracked object for the use-after-put rule to engage.
func isPoolPut(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || (fn.Name() != "put" && fn.Name() != "Put") {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	recvPkg, recvName := namedType(sig.Recv().Type())
	poolish := (recvPkg == "sync" && recvName == "Pool") || structHasPoolField(sig.Recv().Type())
	if !poolish {
		return false
	}
	for _, arg := range call.Args {
		if identObj(pass, arg) == obj {
			return true
		}
	}
	return false
}

// structHasPoolField reports whether t (deref'd) is a struct with a
// sync.Pool field — the pattern of fa.Sim's scratch pool.
func structHasPoolField(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		pkg, name := namedType(st.Field(i).Type())
		if pkg == "sync" && name == "Pool" {
			return true
		}
	}
	return false
}

func checkPoolInBody(pass *analysis.Pass, fb funcBody) {
	// Pass 1: find pooled variables. `x := pool.Get().(*T)` and direct
	// aliases `y := x` both join the tracked set. A bare
	// `return pool.Get().(*T)` accessor is exempt: it is the hand-off
	// that defines an accessor, and its callers are tracked instead.
	pooled := map[types.Object]bool{}
	walkShallow(fb.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.ObjectOf(id)
			if obj == nil {
				continue
			}
			if isPoolGet(pass, rhs) {
				pooled[obj] = true
			} else if src := identObj(pass, rhs); src != nil && pooled[src] {
				pooled[obj] = true
			}
		}
		return true
	})
	if len(pooled) == 0 {
		return
	}
	for obj := range pooled {
		w := &poolWalker{pass: pass, obj: obj}
		w.walk(fb.body.List, false)
	}
}

// poolWalker checks one pooled variable through a statement sequence.
// put state is sequential within a block; branch bodies inherit the
// state at entry and their effects are discarded afterwards (a Put in
// one arm of an if does not poison the other).
type poolWalker struct {
	pass *analysis.Pass
	obj  types.Object
}

func (w *poolWalker) name() string { return w.obj.Name() }

func (w *poolWalker) walk(stmts []ast.Stmt, put bool) bool {
	for _, s := range stmts {
		put = w.walkStmt(s, put)
	}
	return put
}

func (w *poolWalker) walkStmt(s ast.Stmt, put bool) bool {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && isPoolPut(w.pass, call, w.obj) {
			return true
		}
	case *ast.DeferStmt:
		// defer s.put(sc) is the canonical hand-back: uses in the rest
		// of the function body are fine, so no state change.
		if isPoolPut(w.pass, st.Call, w.obj) {
			return put
		}
		if w.mentions(st.Call) && put {
			w.reportUseAfterPut(st.Pos())
		}
		return put
	case *ast.ReturnStmt:
		for _, res := range st.Results {
			if w.aliases(res) {
				w.pass.Reportf(st.Pos(), "pooled scratch %s escapes via return", w.name())
			} else {
				w.checkUse(res, put)
			}
		}
		return put
	case *ast.AssignStmt:
		if put {
			// Re-acquiring from the pool resets the tracked variable;
			// any other mention after Put is a use-after-put.
			if len(st.Rhs) == 1 && isPoolGet(w.pass, st.Rhs[0]) &&
				len(st.Lhs) == 1 && identObj(w.pass, st.Lhs[0]) == w.obj {
				return false
			}
			w.checkUse(st, put)
			return put
		}
		w.checkAssign(st)
	case *ast.GoStmt:
		if w.mentions(st.Call) {
			w.pass.Reportf(st.Pos(), "pooled scratch %s is captured by a goroutine", w.name())
		}
		return put
	case *ast.BlockStmt:
		return w.walk(st.List, put)
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, put)
	case *ast.IfStmt:
		if st.Init != nil {
			put = w.walkStmt(st.Init, put)
		}
		w.checkUse(st.Cond, put)
		w.walk(st.Body.List, put)
		if st.Else != nil {
			w.walkStmt(st.Else, put)
		}
		return put
	case *ast.ForStmt:
		w.walk(st.Body.List, put)
		return put
	case *ast.RangeStmt:
		w.checkUse(st.X, put)
		w.walk(st.Body.List, put)
		return put
	case *ast.SwitchStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				w.walk(cl.Body, put)
			}
		}
		return put
	case *ast.TypeSwitchStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				w.walk(cl.Body, put)
			}
		}
		return put
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				w.walk(cl.Body, put)
			}
		}
		return put
	}
	w.checkUse(s, put)
	return put
}

// checkUse flags any reference to the pooled value after Put.
func (w *poolWalker) checkUse(n ast.Node, put bool) {
	if put && n != nil && w.mentions(n) {
		w.reportUseAfterPut(n.Pos())
	}
}

func (w *poolWalker) reportUseAfterPut(pos token.Pos) {
	w.pass.Reportf(pos, "pooled scratch %s is used after Put", w.name())
}

// checkAssign flags stores of the pooled value into anything that is not
// a function-local variable or a field of the scratch itself.
func (w *poolWalker) checkAssign(as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || !w.mentions(rhs) {
			continue
		}
		lhs := as.Lhs[i]
		if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			continue // plain local (or blank) variable: alias tracking covers it
		}
		if root := rootIdent(lhs); root != nil && w.pass.TypesInfo.Uses[root] == w.obj {
			continue // sc.field = ... mutates the scratch itself
		}
		w.pass.Reportf(as.Pos(), "pooled scratch %s is stored outside the function's locals", w.name())
	}
}

func (w *poolWalker) mentions(n ast.Node) bool {
	return mentionsObj(w.pass, n, w.obj)
}

// aliases reports whether e's value can alias the pooled scratch: the
// variable itself, or a projection rooted at it whose type still refers
// to pooled memory (pointer, slice, map, ...). Value copies like
// int(sc.buf[0]) do not alias and may be returned freely.
func (w *poolWalker) aliases(e ast.Expr) bool {
	if identObj(w.pass, e) == w.obj {
		return true
	}
	root := rootIdent(e)
	if root == nil || w.pass.TypesInfo.Uses[root] != w.obj {
		return false
	}
	t := w.pass.TypeOf(e)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}
