package analyzers

import (
	"go/ast"
	"go/constant"

	"repro/internal/analysis"
)

// apiv1PkgPath is the wire-format package whose Error type is the one
// sanctioned failure envelope.
const apiv1PkgPath = "repro/internal/server/apiv1"

// ErrEnvelope enforces the uniform error envelope on HTTP failure paths
// (internal/server): every non-2xx response body is exactly one
// apiv1.Error, written through the server's writeError/classify pipeline.
// Two rules:
//
//  1. net/http.Error is never called — it writes text/plain, bypassing
//     the envelope (and the Content-Type header clients switch on).
//  2. writeJSON with a constant status ≥ 400 must send an apiv1.Error
//     payload, not an ad-hoc map or struct: a hand-rolled
//     {"error": ...} body silently forks the v1 contract the goldens
//     under apiv1/testdata pin.
//
// Error-status writeJSON calls with a non-constant status are not
// flagged — those are the writeError helper itself, where classify
// already guarantees the envelope.
var ErrEnvelope = &analysis.Analyzer{
	Name: "errenvelope",
	Doc: "check that HTTP error responses go through the apiv1.Error envelope, " +
		"not http.Error or ad-hoc writeJSON payloads",
	Run: runErrEnvelope,
}

func runErrEnvelope(pass *analysis.Pass) error {
	for _, fb := range functionBodies(pass) {
		walkShallow(fb.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkErrEnvelopeCall(pass, call)
			return true
		})
	}
	return nil
}

func checkErrEnvelopeCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	switch funcKey(fn) {
	case "net/http.Error":
		pass.Reportf(call.Pos(), "http.Error bypasses the apiv1.Error envelope; classify the error and use writeJSON with an envelope payload")
	}
	// The writeJSON convention is matched by name: the helper is
	// package-private and re-declared per server package, so a path match
	// would miss test doubles.
	if fn == nil || fn.Name() != "writeJSON" || len(call.Args) < 3 {
		return
	}
	status, ok := constantInt(pass, call.Args[1])
	if !ok || status < 400 {
		return
	}
	payload := call.Args[2]
	if pkg, name := namedType(pass.TypeOf(payload)); pkg == apiv1PkgPath && name == "Error" {
		return
	}
	pass.Reportf(payload.Pos(), "error response (status %d) does not use the apiv1.Error envelope", status)
}

// constantInt evaluates e as a compile-time integer constant.
func constantInt(pass *analysis.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
