// Package analyzers holds the cablevet invariant suite: seven
// project-specific checkers that enforce conventions no compiler pass
// verifies — span hygiene (obsspan), sync.Pool scratch discipline
// (poolescape), context plumbing (ctxpropagate), scanner error wrapping
// (errwrapline), blocking calls under the per-session lock (lockheld),
// arena ownership for lattice bitsets (poolarena), and the uniform HTTP
// error envelope (errenvelope). See DESIGN.md's "Static analysis"
// section for the catalogue and the suppression syntax.
package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/analysis"
)

// All returns the full cablevet analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{ObsSpan, PoolEscape, CtxPropagate, ErrWrapLine, LockHeld, PoolArena, ErrEnvelope}
}

// ByName resolves one analyzer, for the -run flag of cmd/cablevet.
func ByName(name string) (*analysis.Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// obsPkgPath is the observability package every span rule keys on.
const obsPkgPath = "repro/internal/obs"

// scanioPkgPath is the shared scanner-policy package.
const scanioPkgPath = "repro/internal/scanio"

// funcBody pairs a function-like node with its body. Analyzers walk
// bodies without descending into nested function literals, so each
// literal is analyzed exactly once, in its own scope.
type funcBody struct {
	node ast.Node // *ast.FuncDecl or *ast.FuncLit
	body *ast.BlockStmt
	decl *ast.FuncDecl // nil for literals
}

// functionBodies collects every function and function literal body in
// the pass's files.
func functionBodies(pass *analysis.Pass) []funcBody {
	var out []funcBody
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					out = append(out, funcBody{node: fn, body: fn.Body, decl: fn})
				}
			case *ast.FuncLit:
				out = append(out, funcBody{node: fn, body: fn.Body})
			}
			return true
		})
	}
	return out
}

// walkShallow visits the statement/expression tree under n without
// entering nested function literals.
func walkShallow(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}

// namedType unwraps pointers and reports the named type's package path
// and name, or ("", "") for unnamed types.
func namedType(t types.Type) (pkgPath, name string) {
	if t == nil {
		return "", ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// calleeFunc resolves a call's static callee, or nil for indirect calls
// and builtins.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// funcKey renders a callee as "pkgpath.Name" or "pkgpath.Recv.Name" for
// methods, the form the blocking-call table uses.
func funcKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig != nil && sig.Recv() != nil {
		if _, recvName := namedType(sig.Recv().Type()); recvName != "" {
			return pkg + "." + recvName + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

// identObj resolves an identifier to its object (uses before defs).
func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// mentionsObj reports whether the expression tree references obj.
// Subtrees that copy their operand — string(...) conversions and the
// len/cap builtins — are skipped: a copy cannot retain pooled memory.
func mentionsObj(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				switch fun.Name {
				case "string", "len", "cap":
					if pass.TypesInfo.Uses[fun] == nil || pass.TypesInfo.Uses[fun].Pkg() == nil {
						return false // conversion or builtin: operand is copied/measured
					}
				}
			default:
				_ = fun
			}
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// rootIdent returns the leftmost identifier of a selector/index chain
// (sc in sc.fwd[i]), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// stringLit returns the value of a string literal expression, or "".
func stringLit(e ast.Expr) string {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok {
		return ""
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return ""
	}
	return s
}
