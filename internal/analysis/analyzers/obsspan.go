package analyzers

import (
	"fmt"
	"go/ast"

	"repro/internal/analysis"
)

// ObsSpan enforces the repository's span convention (internal/obs): a
// started span must be ended on every return path. The reliable idiom is
//
//	sp := obs.StartSpan("phase")
//	defer sp.End()
//
// but an explicit sp.End() before each return (the memoization fast-path
// style of fa.ExecutedShared) also satisfies the checker. A span that is
// started and never ended silently loses its phase from every metrics
// snapshot — exactly the kind of drift no test notices.
var ObsSpan = &analysis.Analyzer{
	Name: "obsspan",
	Doc: "check that every started obs span is ended on all return paths " +
		"(defer sp.End(), or sp.End() before each return)",
	Run: runObsSpan,
}

func runObsSpan(pass *analysis.Pass) error {
	for _, fb := range functionBodies(pass) {
		checkSpansInBody(pass, fb)
	}
	return nil
}

// isSpanValued reports whether e's static type is obs.Span.
func isSpanValued(pass *analysis.Pass, e ast.Expr) bool {
	pkg, name := namedType(pass.TypeOf(e))
	return pkg == obsPkgPath && name == "Span"
}

func checkSpansInBody(pass *analysis.Pass, fb funcBody) {
	// Collect span-start assignments: a single-value assignment whose
	// RHS call yields an obs.Span.
	type start struct {
		assign *ast.AssignStmt
		ident  *ast.Ident
		label  string // span name literal when available, else var name
	}
	var starts []start
	walkShallow(fb.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isSpanValued(pass, call) || len(as.Lhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		label := id.Name
		if len(call.Args) > 0 {
			if lit := stringLit(call.Args[0]); lit != "" {
				label = fmt.Sprintf("%q", lit)
			}
		}
		starts = append(starts, start{assign: as, ident: id, label: label})
		return true
	})
	for _, st := range starts {
		obj := pass.ObjectOf(st.ident)
		if obj == nil {
			continue
		}
		c := &spanWalker{pass: pass, obj: obj, label: st.label, start: st.assign}
		// A span with no End reference at all gets one report at the
		// start; otherwise each offending return path is reported.
		if !c.hasEndReference(fb.body) {
			pass.Reportf(st.assign.Pos(), "obs span %s is started but never ended", st.label)
			continue
		}
		started, ended := c.walk(fb.body.List, false, false)
		// Fall-off-the-end path: only functions without results can
		// reach the closing brace implicitly, and only a span still
		// open in the top-level flow (not one scoped to a loop body,
		// which starts and ends per iteration) is left dangling there.
		if started && !ended && !c.deferred && !functionHasResults(fb) && !endsInTerminator(fb.body) {
			pass.Reportf(st.assign.Pos(), "obs span %s is not ended before the function falls off its end", c.label)
		}
	}
}

func functionHasResults(fb funcBody) bool {
	var ft *ast.FuncType
	switch n := fb.node.(type) {
	case *ast.FuncDecl:
		ft = n.Type
	case *ast.FuncLit:
		ft = n.Type
	}
	return ft != nil && ft.Results != nil && len(ft.Results.List) > 0
}

func endsInTerminator(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		return last.Cond == nil // for {} never falls through
	}
	return false
}

// spanWalker tracks one span variable through a function body. The
// analysis is a conservative lexical walk: branch bodies are analyzed
// with the state at branch entry, and the state after a branch is the
// state before it (an End inside one arm of an if does not count as
// ending the span for code after the if — spans in this codebase end
// unconditionally, so the approximation never fires on correct code).
type spanWalker struct {
	pass     *analysis.Pass
	obj      any
	label    string
	start    ast.Stmt
	deferred bool
}

// isEndCall reports whether n is sp.End(...) for the tracked span.
func (c *spanWalker) isEndCall(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && c.pass.TypesInfo.Uses[id] == c.obj
}

func (c *spanWalker) hasEndReference(body *ast.BlockStmt) bool {
	found := false
	walkShallow(body, func(n ast.Node) bool {
		if c.isEndCall(n) {
			found = true
		}
		return !found
	})
	return found
}

// walk processes a statement sequence; started/ended are the state at
// entry, the returns are the state at the sequence's fall-through end.
func (c *spanWalker) walk(stmts []ast.Stmt, started, ended bool) (bool, bool) {
	for _, s := range stmts {
		started, ended = c.walkStmt(s, started, ended)
	}
	return started, ended
}

func (c *spanWalker) walkStmt(s ast.Stmt, started, ended bool) (bool, bool) {
	if s == c.start {
		return true, false
	}
	switch st := s.(type) {
	case *ast.DeferStmt:
		if started && c.isEndCall(st.Call) {
			c.deferred = true
		}
	case *ast.ExprStmt:
		if started && c.isEndCall(st.X) {
			return started, true
		}
	case *ast.ReturnStmt:
		if started && !ended && !c.deferred {
			c.pass.Reportf(st.Pos(), "obs span %s is not ended on this return path", c.label)
		}
	case *ast.BlockStmt:
		return c.walk(st.List, started, ended)
	case *ast.LabeledStmt:
		return c.walkStmt(st.Stmt, started, ended)
	case *ast.IfStmt:
		if st.Init != nil {
			started, ended = c.walkStmt(st.Init, started, ended)
		}
		c.walk(st.Body.List, started, ended)
		if st.Else != nil {
			c.walkStmt(st.Else, started, ended)
		}
	case *ast.ForStmt:
		c.walk(st.Body.List, started, ended)
	case *ast.RangeStmt:
		c.walk(st.Body.List, started, ended)
	case *ast.SwitchStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walk(cl.Body, started, ended)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walk(cl.Body, started, ended)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				c.walk(cl.Body, started, ended)
			}
		}
	}
	return started, ended
}
