package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// CtxPropagate enforces the repository's cancellation contract
// (DESIGN.md): an exported function whose name ends in Ctx promises that
// long loops observe ctx — either by checking ctx.Done()/ctx.Err() or by
// handing ctx to a callee that does. A loop with no ctx reference at all
// cannot be cancelled, which turns the Ctx suffix into a lie on large
// inputs. The companion rule keeps the non-Ctx convenience wrappers
// honest: F must delegate to FCtx with context.Background() or
// context.TODO(), never with a context it invented some other way.
var CtxPropagate = &analysis.Analyzer{
	Name: "ctxpropagate",
	Doc: "check that exported *Ctx functions consult ctx in their loops and " +
		"that non-Ctx wrappers delegate with context.Background()",
	Run: runCtxPropagate,
}

func runCtxPropagate(pass *analysis.Pass) error {
	for _, fb := range functionBodies(pass) {
		if fb.decl == nil || !fb.decl.Name.IsExported() {
			continue
		}
		name := fb.decl.Name.Name
		if strings.HasSuffix(name, "Ctx") {
			checkCtxLoops(pass, fb)
		} else {
			checkCtxWrapper(pass, fb, name)
		}
	}
	return nil
}

// ctxParam finds the function's context.Context parameter object.
func ctxParam(pass *analysis.Pass, decl *ast.FuncDecl) (types.Object, string) {
	for _, field := range decl.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if pkg, name := namedType(t); pkg != "context" || name != "Context" {
			continue
		}
		for _, id := range field.Names {
			if id.Name == "_" {
				continue
			}
			if obj := pass.ObjectOf(id); obj != nil {
				return obj, id.Name
			}
		}
	}
	return nil, ""
}

// checkCtxLoops reports outermost loops that never reference ctx. A
// reference anywhere inside the loop counts — a Done() select, an
// Err() check, or passing ctx to a callee (including through a closure,
// which is how forEachPar distributes cancellation to workers).
func checkCtxLoops(pass *analysis.Pass, fb funcBody) {
	obj, name := ctxParam(pass, fb.decl)
	if obj == nil {
		return
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		if !referencesCtx(pass, body, obj) {
			pass.Reportf(n.Pos(), "loop in %s does not consult %s (no Done/Err check and no call receiving it)",
				fb.decl.Name.Name, name)
		}
		return false // inner loops are covered by the outer report
	}
	ast.Inspect(fb.body, visit)
}

// referencesCtx reports whether the subtree mentions the ctx object.
// Unlike mentionsObj it descends into function literals: a worker
// closure that captures ctx is exactly how parallel loops propagate
// cancellation.
func referencesCtx(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// checkCtxWrapper flags an exported F that calls FCtx with a context
// other than context.Background() or context.TODO(). Wrappers exist so
// call sites without a context stay terse; smuggling a real context
// through one hides the cancellation path from readers and from this
// analyzer.
func checkCtxWrapper(pass *analysis.Pass, fb funcBody, name string) {
	want := name + "Ctx"
	walkShallow(fb.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Name() != want || len(call.Args) == 0 {
			return true
		}
		if !isBackgroundCtx(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "wrapper %s must pass context.Background() or context.TODO() to %s",
				name, want)
		}
		return true
	})
}

// isBackgroundCtx matches context.Background() / context.TODO() calls,
// and ignores arguments that are not contexts at all (FCtx may take the
// context in a later position only in foreign code; ours always leads
// with it).
func isBackgroundCtx(pass *analysis.Pass, arg ast.Expr) bool {
	if pkg, tname := namedType(pass.TypeOf(arg)); pkg != "context" || tname != "Context" {
		return true
	}
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	return fn.Name() == "Background" || fn.Name() == "TODO"
}
