// Golden package for the ctxpropagate analyzer: exported *Ctx functions
// must consult ctx in their loops, and non-Ctx wrappers must delegate
// with context.Background() or context.TODO().
package ctxpropagate

import "context"

// ProcessCtx promises cancellation but its loop never looks at ctx.
func ProcessCtx(ctx context.Context, items []int) int {
	total := 0
	for _, it := range items { // want `loop in ProcessCtx does not consult ctx`
		total += it
	}
	return total
}

// SumCtx checks Done on a stride — the canonical pattern.
func SumCtx(ctx context.Context, items []int) int {
	total := 0
	for i, it := range items {
		if i%1024 == 0 {
			select {
			case <-ctx.Done():
				return total
			default:
			}
		}
		total += it
	}
	return total
}

// DelegateCtx hands ctx to a worker closure; cancellation propagates
// through the callee, so the loop is fine.
func DelegateCtx(ctx context.Context, items []int, run func(context.Context, int)) {
	for _, it := range items {
		run(ctx, it)
	}
}

// ErrCheckCtx consults ctx.Err directly.
func ErrCheckCtx(ctx context.Context, items []int) error {
	for range items {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Sum is the convenience wrapper done right.
func Sum(items []int) int {
	return SumCtx(context.Background(), items)
}

// Total smuggles a caller-supplied context through the non-Ctx name.
func Total(parent context.Context, items []int) int {
	return TotalCtx(parent, items) // want `wrapper Total must pass context.Background\(\) or context.TODO\(\) to TotalCtx`
}

// TotalCtx delegates; no loops of its own.
func TotalCtx(ctx context.Context, items []int) int {
	return SumCtx(ctx, items)
}

// unexportedCtx is private API: the contract applies to exports only.
func unexportedCtx(ctx context.Context, items []int) int {
	n := 0
	for _, it := range items {
		n += it
	}
	return n
}

// TinyCtx documents a deliberately unchecked loop.
func TinyCtx(ctx context.Context, xs [4]int) int {
	n := 0
	for _, x := range xs { //cablevet:ignore ctxpropagate fixed-size loop, never long enough to matter
		n += x
	}
	return n
}
