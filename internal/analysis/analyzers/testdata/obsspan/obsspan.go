// Golden package for the obsspan analyzer. Each flagged line carries a
// `// want` expectation; clean idioms and suppressed lines must produce
// no diagnostics.
package obsspan

import "repro/internal/obs"

// neverEnded starts a span and forgets it entirely.
func neverEnded() {
	sp := obs.StartSpan("build") // want `obs span "build" is started but never ended`
	_ = sp
}

// earlyReturn ends the span on the happy path only.
func earlyReturn(fail bool) error {
	sp := obs.StartSpan("scan")
	if fail {
		return nil // want `obs span "scan" is not ended on this return path`
	}
	sp.End()
	return nil
}

// deferredEnd is the canonical idiom: one defer covers every path.
func deferredEnd(fail bool) error {
	sp := obs.StartSpan("ok")
	defer sp.End()
	if fail {
		return nil
	}
	return nil
}

// explicitPerReturn is the memoization fast-path style: an End before
// each return also satisfies the checker.
func explicitPerReturn(hit bool) int {
	sp := obs.StartSpan("lookup")
	if hit {
		sp.End()
		return 1
	}
	sp.End()
	return 0
}

// fallsOff ends the span in only one arm and then falls off the end of
// a void function.
func fallsOff(work bool) {
	sp := obs.StartSpan("fall") // want `obs span "fall" is not ended before the function falls off its end`
	if work {
		sp.End()
	}
}

// methodSpan exercises the Metrics.StartSpan form and span variables
// named something other than sp.
func methodSpan(m *obs.Metrics) {
	span := m.StartSpan("phase") // want `obs span "phase" is started but never ended`
	_ = span
}

// insideLiteral checks that function literals are analyzed in their own
// scope: the literal leaks its span even though the enclosing function
// is clean.
func insideLiteral() func() {
	outer := obs.StartSpan("outer")
	defer outer.End()
	return func() {
		inner := obs.StartSpan("inner") // want `obs span "inner" is started but never ended`
		_ = inner
	}
}

// loopScoped starts and ends a span per iteration; nothing dangles at
// the function's end even though the function has no results.
func loopScoped(n int) {
	for i := 0; i < n; i++ {
		sp := obs.StartSpan("iter")
		sp.End()
	}
}

// suppressed documents an intentional exception.
func suppressed() {
	sp := obs.StartSpan("handoff") //cablevet:ignore obsspan span is ended by the caller
	_ = sp
}
