// Golden package for the lockheld analyzer: the per-session mutex must
// not be held across blocking calls.
package lockheld

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/concept"
	"repro/internal/fa"
	"repro/internal/trace"
)

type entry struct {
	mu    sync.Mutex
	state int
}

func writeJSON(w http.ResponseWriter, code int, v any) {}

func withSession(r *http.Request, fn func(e *entry) error) error {
	e := &entry{}
	e.mu.Lock()
	defer e.mu.Unlock()
	return fn(e)
}

// explicitWindow blocks inside a Lock/Unlock window but not after it.
func explicitWindow(e *entry) {
	e.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking call time.Sleep while the session lock is held`
	e.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// deferredUnlock holds the lock to the end of the function.
func deferredUnlock(e *entry, w http.ResponseWriter) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.state++
	writeJSON(w, http.StatusOK, e.state) // want `blocking call writeJSON while the session lock is held`
}

// handler runs its whole callback under the session lock, the
// withSession convention.
func handler(w http.ResponseWriter, r *http.Request) {
	withSession(r, func(e *entry) error {
		writeJSON(w, http.StatusOK, e.state) // want `blocking call writeJSON while the session lock is held`
		return nil
	})
}

// latticeUnderLock rebuilds a lattice while serialized.
func latticeUnderLock(e *entry, traces []trace.Trace, ref *fa.FA) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, err := concept.BuildFromTraces(traces, ref) // want `blocking call concept.BuildFromTraces while the session lock is held`
	return err
}

// unlockedIsFine computes the slow thing first, then takes the lock.
func unlockedIsFine(e *entry, traces []trace.Trace, ref *fa.FA) error {
	lat, err := concept.BuildFromTraces(traces, ref)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.state = lat.Len()
	return nil
}

// goroutineEscapesLock: work handed to a goroutine runs outside this
// lock region (it must synchronize on its own).
func goroutineEscapesLock(e *entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	go time.Sleep(time.Millisecond)
}

// suppressed documents an intentional build under the lock.
func suppressed(e *entry, traces []trace.Trace, ref *fa.FA) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, err := concept.BuildFromTraces(traces, ref) //cablevet:ignore lockheld rebuild must be serialized with the session
	return err
}
