// Golden package for the poolescape analyzer: sync.Pool scratch values
// must stay function-local and must not be touched after Put.
package poolescape

import "sync"

type scratch struct {
	buf []byte
}

// simLike mirrors fa.Sim: a struct owning a pool, with get/put
// accessors.
type simLike struct {
	pool sync.Pool
	sink *scratch
}

// get is the accessor pattern: a bare hand-off return is exempt, its
// callers are tracked instead.
func (s *simLike) get() *scratch {
	return s.pool.Get().(*scratch)
}

func (s *simLike) put(sc *scratch) {
	s.pool.Put(sc)
}

// clean is the canonical use: acquire, defer the hand-back, work.
func (s *simLike) clean() int {
	sc := s.get()
	defer s.put(sc)
	sc.buf = append(sc.buf[:0], 1)
	return int(sc.buf[0])
}

// escapes returns the scratch to the caller.
func (s *simLike) escapes() *scratch {
	sc := s.get()
	return sc // want `pooled scratch sc escapes via return`
}

// stored parks the scratch in a field that outlives the call.
func (s *simLike) stored() {
	sc := s.get()
	s.sink = sc // want `pooled scratch sc is stored outside the function's locals`
	s.put(sc)
}

// leaked hands the scratch to a goroutine that may outlive the Put.
func (s *simLike) leaked() {
	sc := s.get()
	go func() { // want `pooled scratch sc is captured by a goroutine`
		sc.buf = nil
	}()
	s.put(sc)
}

// useAfterPut touches the scratch after handing it back.
func (s *simLike) useAfterPut() {
	sc := s.get()
	s.put(sc)
	sc.buf = nil // want `pooled scratch sc is used after Put`
}

// aliased tracks direct aliases of the scratch.
func (s *simLike) aliased() *scratch {
	sc := s.get()
	alias := sc
	return alias // want `pooled scratch alias escapes via return`
}

// directPool exercises the raw sync.Pool.Get form.
var rawPool sync.Pool

func directPool() *scratch {
	sc := rawPool.Get().(*scratch)
	return sc // want `pooled scratch sc escapes via return`
}

// reacquired resets tracking when the variable is refilled from the
// pool after a Put.
func (s *simLike) reacquired() {
	sc := s.get()
	s.put(sc)
	sc = s.get()
	sc.buf = nil
	s.put(sc)
}

// suppressed documents an intentional escape (e.g. an owner transfer).
func (s *simLike) suppressed() *scratch {
	sc := s.get()
	return sc //cablevet:ignore poolescape ownership transfers to the caller
}
