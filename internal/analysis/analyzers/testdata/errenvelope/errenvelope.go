// Golden package for the errenvelope analyzer: HTTP failure paths use
// the apiv1.Error envelope, never http.Error or ad-hoc JSON payloads.
package errenvelope

import (
	"encoding/json"
	"net/http"

	"repro/internal/server/apiv1"
)

// writeJSON mirrors the server helper the analyzer matches by name.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// plainTextError bypasses the envelope entirely.
func plainTextError(w http.ResponseWriter) {
	http.Error(w, "no such session", http.StatusNotFound) // want `http.Error bypasses the apiv1.Error envelope`
}

// adHocMap forks the wire contract with a hand-rolled error body.
func adHocMap(w http.ResponseWriter) {
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad fa"}) // want `error response \(status 400\) does not use the apiv1.Error envelope`
}

// adHocStruct is just as wrong with a literal status and a named type.
type oops struct {
	Oops string `json:"oops"`
}

func adHocStruct(w http.ResponseWriter) {
	writeJSON(w, 500, oops{Oops: "boom"}) // want `error response \(status 500\) does not use the apiv1.Error envelope`
}

// envelope is the sanctioned failure shape.
func envelope(w http.ResponseWriter) {
	writeJSON(w, http.StatusBadRequest, apiv1.Error{Code: "bad_request", Message: "bad fa"})
}

// success payloads are not error responses, whatever their shape.
func success(w http.ResponseWriter, v any) {
	writeJSON(w, http.StatusOK, v)
}

// dynamicStatus is the writeError helper pattern: the status comes from
// classify, and the payload is already an envelope by construction.
func dynamicStatus(w http.ResponseWriter, status int, v any) {
	writeJSON(w, status, v)
}

// suppressed keeps a deliberate plain-text response (health probe for a
// load balancer that chokes on JSON bodies).
func suppressed(w http.ResponseWriter) {
	http.Error(w, "unhealthy", http.StatusServiceUnavailable) //cablevet:ignore errenvelope plain-text health probe
}
