// Golden package for the errwrapline analyzer: line-oriented readers go
// through scanio.NewScanner and wrap returned errors in
// scanio.LineError.
package errwrapline

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/scanio"
)

// rawScanner bypasses the shared line-cap policy.
func rawScanner(r io.Reader) []string {
	sc := bufio.NewScanner(r) // want `use scanio.NewScanner instead of bufio.NewScanner`
	var out []string
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	return out
}

// bareErrorf loses the line number on the parse-error path.
func bareErrorf(r io.Reader) error {
	sc := scanio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			return fmt.Errorf("blank line not allowed") // want `reader error is not wrapped in scanio.LineError`
		}
	}
	return scanio.LineError("golden", line, sc.Err())
}

// wrapped is the idiom: fmt.Errorf is fine as LineError's cause.
func wrapped(r io.Reader) error {
	sc := scanio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			return scanio.LineError("golden", line, fmt.Errorf("blank line not allowed"))
		}
	}
	return scanio.LineError("golden", line, sc.Err())
}

// nonReader uses fmt.Errorf freely — without a scanner in the function,
// the wrap rule does not apply.
func nonReader(n int) error {
	if n < 0 {
		return fmt.Errorf("negative: %d", n)
	}
	return nil
}

// suppressed keeps a deliberate bufio use (e.g. word-level splitting).
func suppressed(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r) //cablevet:ignore errwrapline word scanner, not line-oriented
	sc.Split(bufio.ScanWords)
	return sc
}
