// Golden package for the poolarena analyzer: bitsets carved from a
// bitset.Arena must stay within the build that allocated the arena.
package poolarena

import (
	"repro/internal/bitset"
)

// leaked pins a whole arena slab for the process lifetime.
var leaked *bitset.Set

type lattice struct {
	arena   *bitset.Arena
	extents []*bitset.Set
}

// buildOK allocates from its own arena and stores the results — and the
// arena — in the structure that owns both. Nothing escapes.
func buildOK(n int) *lattice {
	a := bitset.NewArena()
	l := &lattice{arena: a}
	for i := 0; i < n; i++ {
		s := a.Set(64, 64)
		s.Add(i)
		l.extents = append(l.extents, s)
	}
	return l
}

// helperOK takes the arena as a parameter: the builder-helper convention.
// Returning an arena-backed set hands it back to the arena's owner.
func helperOK(a *bitset.Arena, src *bitset.Set) *bitset.Set {
	out := a.Clone(src)
	out.Add(1)
	return out
}

// valueCopiesOK returns plain values derived from an arena set; copies do
// not alias arena memory.
func valueCopiesOK(a *bitset.Arena) int {
	s := a.Set(128, 128)
	s.Add(7)
	return s.Len()
}

// incrementalOK is the incremental-maintenance shape: a later mutation
// carves new sets — and regrows existing ones via EnsureBits — from the
// arena the structure already owns, so the new allocations share the
// owner's lifetime. Nothing escapes.
func (l *lattice) incrementalOK(numObj int) {
	for _, s := range l.extents {
		l.arena.EnsureBits(s, numObj)
	}
	fresh := l.arena.Set(numObj, numObj)
	fresh.Add(numObj - 1)
	l.extents = append(l.extents, fresh)
}

// returnEscape returns an arena-backed set from a function whose caller
// never sees the arena.
func returnEscape() *bitset.Set {
	a := bitset.NewArena()
	s := a.Set(64, 64)
	return s // want `arena-backed s escapes via return from a function without an arena parameter`
}

// aliasEscape launders the set through an alias before returning it.
func aliasEscape() *bitset.Set {
	a := bitset.NewArena()
	s := a.Set(64, 64)
	alias := s
	return alias // want `arena-backed alias escapes via return from a function without an arena parameter`
}

// sparseEscape leaks an arena-carved int32 slice the same way.
func sparseEscape() []int32 {
	a := bitset.NewArena()
	elems := a.Int32s(8)
	return elems // want `arena-backed elems escapes via return from a function without an arena parameter`
}

// globalEscape pins the arena in a package-level variable.
func globalEscape() {
	a := bitset.NewArena()
	s := a.Set(64, 64)
	leaked = s // want `arena-backed s is stored in package-level leaked`
}

// goroutineEscape hands an arena set to a goroutine; arena allocation and
// the sets it produces are single-goroutine state during a build.
func goroutineEscape(done chan<- int) {
	a := bitset.NewArena()
	s := a.Set(64, 64)
	go func() { // want `arena-backed s is captured by a goroutine`
		done <- s.Len()
	}()
}

// methodEscape hands out arena memory from the owning structure to
// arbitrary callers.
func (l *lattice) methodEscape(src *bitset.Set) *bitset.Set {
	c := l.arena.Clone(src)
	return c // want `arena-backed c escapes via return from a function without an arena parameter`
}

// suppressedEscape documents an intentional hand-off.
func suppressedEscape() *bitset.Set {
	a := bitset.NewArena()
	s := a.Set(64, 64)
	//cablevet:ignore poolarena ownership transferred with the arena by contract
	return s
}
