package analyzers

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// bitsetPkgPath is the bitset package whose Arena allocator the poolarena
// rule keys on.
const bitsetPkgPath = "repro/internal/bitset"

// PoolArena enforces the arena ownership rule of the lattice builder
// (internal/concept): a bitset carved from a bitset.Arena — via
// arena.Set, arena.Clone, or arena.Int32s — belongs to the build that
// allocated the arena and pins the arena's slabs for as long as it lives.
// Such a value must not be captured by a goroutine (arenas are
// single-goroutine allocators), stored in a package-level variable (which
// would pin the slabs for the process lifetime), or returned from a
// function that does not itself take an *bitset.Arena parameter or
// receiver. Functions that do take an arena are builder helpers: their
// caller owns the arena, so handing arena-backed sets back to it is the
// convention (tauUpToArena, and the build loop itself, work this way).
var PoolArena = &analysis.Analyzer{
	Name: "poolarena",
	Doc: "check that arena-backed bitsets do not escape the build that " +
		"allocated their arena",
	Run: runPoolArena,
}

func runPoolArena(pass *analysis.Pass) error {
	for _, fb := range functionBodies(pass) {
		checkArenaInBody(pass, fb)
	}
	return nil
}

// isArenaAlloc reports whether e is a method call on *bitset.Arena — the
// allocation sites whose results are arena-backed.
func isArenaAlloc(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	pkg, name := namedType(sig.Recv().Type())
	return pkg == bitsetPkgPath && name == "Arena"
}

// takesArena reports whether the function declares a *bitset.Arena
// parameter or receiver — the builder-helper convention under which
// returning arena-backed values is the caller's business.
func takesArena(pass *analysis.Pass, fb funcBody) bool {
	var fields []*ast.Field
	if fb.decl != nil {
		if fb.decl.Recv != nil {
			fields = append(fields, fb.decl.Recv.List...)
		}
		if fb.decl.Type.Params != nil {
			fields = append(fields, fb.decl.Type.Params.List...)
		}
	} else if lit, ok := fb.node.(*ast.FuncLit); ok && lit.Type.Params != nil {
		fields = append(fields, lit.Type.Params.List...)
	}
	for _, f := range fields {
		if pkg, name := namedType(pass.TypeOf(f.Type)); pkg == bitsetPkgPath && name == "Arena" {
			return true
		}
	}
	return false
}

func checkArenaInBody(pass *analysis.Pass, fb funcBody) {
	// Pass 1: find arena-backed variables. `x := arena.Set(...)` and direct
	// aliases `y := x` both join the tracked set.
	tracked := map[types.Object]bool{}
	walkShallow(fb.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.ObjectOf(id)
			if obj == nil {
				continue
			}
			if isArenaAlloc(pass, rhs) {
				tracked[obj] = true
			} else if src := identObj(pass, rhs); src != nil && tracked[src] {
				tracked[obj] = true
			}
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}
	exempt := takesArena(pass, fb)
	walkShallow(fb.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			for obj := range tracked {
				if mentionsObj(pass, st.Call, obj) {
					pass.Reportf(st.Pos(), "arena-backed %s is captured by a goroutine", obj.Name())
				}
			}
		case *ast.ReturnStmt:
			if exempt {
				return true
			}
			for _, res := range st.Results {
				for obj := range tracked {
					if aliasesArena(pass, res, obj) {
						pass.Reportf(st.Pos(), "arena-backed %s escapes via return from a function without an arena parameter", obj.Name())
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) {
					break
				}
				for obj := range tracked {
					if !mentionsObj(pass, rhs, obj) {
						continue
					}
					root := rootIdent(st.Lhs[i])
					if root == nil {
						continue
					}
					lobj := pass.TypesInfo.Uses[root]
					if lobj == nil {
						lobj = pass.TypesInfo.Defs[root]
					}
					if lobj != nil && pass.Pkg != nil && lobj.Parent() == pass.Pkg.Scope() {
						pass.Reportf(st.Pos(), "arena-backed %s is stored in package-level %s", obj.Name(), lobj.Name())
					}
				}
			}
		}
		return true
	})
}

// aliasesArena reports whether e's value can alias the arena-backed
// variable: the variable itself, or a projection rooted at it whose type
// still refers to arena memory. Value copies (s.Len(), s.Has(i)) do not
// alias and may be returned freely.
func aliasesArena(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	if identObj(pass, e) == obj {
		return true
	}
	root := rootIdent(e)
	if root == nil || pass.TypesInfo.Uses[root] != obj {
		return false
	}
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}
