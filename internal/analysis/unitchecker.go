package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the `go vet -vettool=` side of the framework: the
// go command hands the tool a JSON configuration file (conventionally
// vet.cfg) describing one package — its files, its import map, and the
// export-data file of every dependency — and expects diagnostics on
// stderr plus a facts file written to VetxOutput. The protocol is the
// same one x/tools' unitchecker speaks; reimplementing it here keeps the
// repository dependency-free while letting `go vet -vettool=cablevet`
// drive the whole build graph with caching.

// vetConfig mirrors the JSON the go command writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// HandleVetFlags processes the go command's tool handshake flags. It
// returns true (after printing) when the process should exit: `-V=full`
// prints the tool's version fingerprint, `-flags` the (empty) JSON flag
// catalogue the go command uses to validate pass-through flags.
func HandleVetFlags(args []string) (handled bool) {
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			name := filepath.Base(os.Args[0])
			fmt.Printf("%s version devel buildID=%s\n", name, selfHash())
			return true
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return true
		}
	}
	return false
}

// selfHash fingerprints the executable so the go command's vet cache is
// keyed by tool build.
func selfHash() string {
	f, err := os.Open(os.Args[0])
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%02x", h.Sum(nil))
}

// IsVetConfig reports whether arg names a vet protocol config file.
func IsVetConfig(arg string) bool { return strings.HasSuffix(arg, ".cfg") }

// RunUnitchecker analyzes the single package described by the config
// file and returns its diagnostics. The (empty) facts file is written to
// VetxOutput before returning, as the go command requires it to exist
// even for packages with findings.
func RunUnitchecker(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, nil, fmt.Errorf("analysis: parsing %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil, nil
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := checkPackage(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("analysis: %s: %v", cfg.ImportPath, err)
	}
	pkg.Dir = cfg.Dir
	diags, err := RunPackage(pkg, analyzers)
	return diags, fset, err
}
