// Package analysistest runs an analyzer over a golden package and checks
// its diagnostics against `// want` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A golden package is a directory of Go files (conventionally under the
// analyzer's testdata directory, so the go tool never builds it) whose
// flagged lines carry expectations:
//
//	sp := obs.StartSpan("x") // want `span "x" is started but never ended`
//
// Each want comment holds one or more backquoted or double-quoted
// regular expressions; every expectation must be matched by a diagnostic
// on its line, and every diagnostic must be matched by an expectation.
// Suppressed-negative cases are plain lines carrying a
// //cablevet:ignore directive and no want comment: the framework drops
// the diagnostic before matching, so an unexpected report fails the
// test.
//
// Golden packages import real repository packages — the runner resolves
// imports through `go list -export` from the module root — so analyzers
// are exercised against the production types they match in CI.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one want regexp at a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRe captures each backquoted or quoted pattern in a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// moduleRoot locates the enclosing module so golden-package imports
// resolve against the repository, wherever the test binary runs.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatalf("analysistest requires running inside the module")
	}
	return filepath.Dir(gomod)
}

// Run loads the golden package at dir (relative to the caller's
// directory), applies the analyzer, and reports any mismatch between
// diagnostics and want comments as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, moduleRoot(t))
	if err != nil {
		t.Fatalf("loading golden package %s: %v", dir, err)
	}
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	expects := collectWants(t, pkg.Fset, pkg.Files)

	for _, d := range diags {
		pos := d.Position(pkg.Fset)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}
}

// claim marks the first unmatched expectation covering (file, line, msg).
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if e.matched || e.file != file || e.line != line {
			continue
		}
		if e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every `// want` comment in the package.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[len("want "):], -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return out
}

// Fprint is a debugging helper: it renders diagnostics one per line as
// "file:line: analyzer: message". Tests use it in failure output.
func Fprint(fset *token.FileSet, diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		p := d.Position(fset)
		fmt.Fprintf(&b, "%s:%d: %s: %s\n", p.Filename, p.Line, d.Analyzer, d.Message)
	}
	return b.String()
}
