package speclint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fa"
	"repro/internal/specs"
	"repro/internal/trace"
)

func loadFA(t *testing.T, name string) *fa.FA {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := fa.Read(f)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return m
}

func renderAll(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}

func expect(t *testing.T, got []Finding, want []string) {
	t.Helper()
	rendered := renderAll(got)
	if len(rendered) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(rendered), len(want), strings.Join(rendered, "\n"))
	}
	for i := range want {
		if rendered[i] != want[i] {
			t.Errorf("finding %d:\n got %q\nwant %q", i, rendered[i], want[i])
		}
	}
}

// Each seeded-defect golden spec triggers exactly its rule, with the
// exact diagnostic text a user sees from `cable lint`.
func TestSeededDefects(t *testing.T) {
	t.Run("unreachable", func(t *testing.T) {
		expect(t, Lint(loadFA(t, "unreachable.fa")), []string{
			"unreachable: unreachable-state: state s3 is unreachable from the start states",
		})
	})
	t.Run("dead", func(t *testing.T) {
		expect(t, Lint(loadFA(t, "dead.fa")), []string{
			"dead: dead-transition: transition s0 --g()--> s2 is never on an accepting path",
		})
	})
	t.Run("ambiguous", func(t *testing.T) {
		expect(t, Lint(loadFA(t, "ambiguous.fa")), []string{
			"ambiguous: ambiguity: state s0 is nondeterministic on f(): 2 transitions match",
		})
	})
	t.Run("wildcard-overlap", func(t *testing.T) {
		expect(t, Lint(loadFA(t, "wildcard-overlap.fa")), []string{
			"wildcard-overlap: ambiguity: state s0 is nondeterministic on f(): 2 transitions match",
		})
	})
	t.Run("vacuous", func(t *testing.T) {
		expect(t, Lint(loadFA(t, "vacuous.fa")), []string{
			"vacuous: vacuous-acceptance: spec accepts every trace over its alphabet",
		})
	})
	t.Run("mismatch", func(t *testing.T) {
		traces := []trace.Trace{
			trace.ParseEvents("t0", "f()", "h()"),
			trace.ParseEvents("t1", "f()"),
		}
		expect(t, LintWithTraces(loadFA(t, "mismatch.fa"), traces), []string{
			"mismatch: alphabet-mismatch: event h() appears in the traces but no spec transition matches it",
			"mismatch: alphabet-mismatch: event g() labels a spec transition but occurs in no trace",
		})
	})
}

// A wildcard spec matches every event, so the traces→spec direction is
// suppressed; the spec→traces direction still fires.
func TestMismatchWildcardSuppression(t *testing.T) {
	b := fa.NewBuilder("wild")
	s := b.States(2)
	b.Start(s[0])
	b.Accept(s[1])
	b.EdgeStr(s[0], "f()", s[1])
	b.WildcardEdge(s[1], s[1])
	got := LintWithTraces(b.MustBuild(), []trace.Trace{trace.ParseEvents("t0", "g()")})
	expect(t, got, []string{
		"wild: alphabet-mismatch: event f() labels a spec transition but occurs in no trace",
	})
}

func TestDoubleWildcardAmbiguity(t *testing.T) {
	b := fa.NewBuilder("ww")
	s := b.States(2)
	b.Start(s[0])
	b.Accept(s[1])
	b.WildcardEdge(s[0], s[0])
	b.WildcardEdge(s[0], s[1])
	expect(t, Lint(b.MustBuild()), []string{
		"ww: ambiguity: state s0 is nondeterministic on *(): 2 transitions match",
	})
}

// The shipped paper corpus must lint clean: the derivation pipeline
// (union of good templates, determinize, minimize, trim) guarantees no
// structural defect, and this test keeps it that way.
func TestShippedSpecsClean(t *testing.T) {
	all := append(specs.All(), specs.Stdio())
	for _, sp := range all {
		if got := Lint(sp.FA); len(got) != 0 {
			t.Errorf("%s: %d findings on a shipped spec:\n%s",
				sp.Name, len(got), strings.Join(renderAll(got), "\n"))
		}
	}
}

// Figure 1's buggy spec is wrong about the protocol but structurally
// sound — speclint flags malformed automata, not semantic bugs.
func TestFigureOneStructurallyClean(t *testing.T) {
	if got := Lint(specs.FigureOneFA()); len(got) != 0 {
		t.Errorf("figure-1 spec: unexpected findings:\n%s", strings.Join(renderAll(got), "\n"))
	}
}

func TestRulesStable(t *testing.T) {
	want := []string{
		RuleUnreachableState, RuleDeadTransition, RuleAmbiguity,
		RuleVacuous, RuleAlphabetMismatch,
		RuleRedundantTransition, RuleMergeableStates,
		RuleLanguageDiff, RuleSubsumedSpec, RuleDuplicateSpec,
	}
	got := Rules()
	if len(got) != len(want) {
		t.Fatalf("Rules() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Rules()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
