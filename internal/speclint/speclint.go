// Package speclint statically analyzes specification automata for the
// structural defects that make concept-analysis debugging sessions
// misleading before a single trace is clustered: states the FA can never
// enter, transitions that lie on no accepting path (their attribute
// column in the trace context is constantly empty), nondeterministic
// ambiguity (one event, several successor states, so "executed
// transitions" stops being well defined for the paper's Section 3.2
// context), vacuous acceptance (the spec accepts every trace over its
// alphabet and can therefore never flag a violation), and — when a trace
// corpus is supplied — alphabet mismatch in both directions between the
// spec and the traces it is meant to classify.
//
// speclint is the specification-level counterpart of cmd/cablevet: vet
// checks the Go code of this repo, speclint checks the FA artifacts the
// repo consumes. Both run in `make ci`.
package speclint

import (
	"fmt"
	"sort"

	"repro/internal/fa"
	"repro/internal/trace"
)

// Rule names, used in Finding.Rule and in diagnostics filtering.
const (
	RuleUnreachableState = "unreachable-state"
	RuleDeadTransition   = "dead-transition"
	RuleAmbiguity        = "ambiguity"
	RuleVacuous          = "vacuous-acceptance"
	RuleAlphabetMismatch = "alphabet-mismatch"
)

// Rules lists every rule name in report order.
func Rules() []string {
	return []string{
		RuleUnreachableState,
		RuleDeadTransition,
		RuleAmbiguity,
		RuleVacuous,
		RuleAlphabetMismatch,
	}
}

// Finding is one diagnostic about a specification automaton.
type Finding struct {
	Spec    string `json:"spec"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the finding as "spec: rule: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Spec, f.Rule, f.Message)
}

// Lint runs the structural rules — everything that needs only the
// automaton itself. Findings come out in rule order (Rules), sub-ordered
// by state and transition index, so reports are deterministic.
func Lint(f *fa.FA) []Finding {
	var out []Finding
	reach := reachable(f)
	coreach := coreachable(f)

	for s := 0; s < f.NumStates(); s++ {
		if !reach[s] {
			out = append(out, Finding{
				Spec: f.Name(), Rule: RuleUnreachableState,
				Message: fmt.Sprintf("state s%d is unreachable from the start states", s),
			})
		}
	}

	// A transition out of an unreachable state is implied by the
	// unreachable-state finding; only transitions the automaton can
	// actually take but that never lead to acceptance are reported.
	for _, t := range f.Transitions() {
		if reach[int(t.From)] && !coreach[int(t.To)] {
			out = append(out, Finding{
				Spec: f.Name(), Rule: RuleDeadTransition,
				Message: fmt.Sprintf("transition %s is never on an accepting path", t),
			})
		}
	}

	out = append(out, ambiguity(f)...)

	if vacuous(f) {
		out = append(out, Finding{
			Spec: f.Name(), Rule: RuleVacuous,
			Message: "spec accepts every trace over its alphabet",
		})
	}
	return out
}

// LintWithTraces runs Lint plus the alphabet-mismatch rule against a
// trace corpus: events the traces use but no spec transition can match
// (the spec silently rejects every such trace), and events the spec
// spells out but no trace ever performs (dead vocabulary, often a typo
// in the spec).
func LintWithTraces(f *fa.FA, traces []trace.Trace) []Finding {
	out := Lint(f)

	inTraces := map[string]bool{}
	for _, t := range traces {
		for _, e := range t.Events {
			inTraces[e.String()] = true
		}
	}
	inSpec := map[string]bool{}
	var specEvents []string
	for _, e := range f.Alphabet() {
		s := e.String()
		inSpec[s] = true
		specEvents = append(specEvents, s)
	}

	// Traces → spec: pointless unless the spec is wildcard-free — a
	// wildcard transition matches every event.
	if !f.HasWildcard() {
		var missing []string
		for e := range inTraces {
			if !inSpec[e] {
				missing = append(missing, e)
			}
		}
		sort.Strings(missing)
		for _, e := range missing {
			out = append(out, Finding{
				Spec: f.Name(), Rule: RuleAlphabetMismatch,
				Message: fmt.Sprintf("event %s appears in the traces but no spec transition matches it", e),
			})
		}
	}

	// Spec → traces.
	for _, e := range specEvents {
		if !inTraces[e] {
			out = append(out, Finding{
				Spec: f.Name(), Rule: RuleAlphabetMismatch,
				Message: fmt.Sprintf("event %s labels a spec transition but occurs in no trace", e),
			})
		}
	}
	return out
}

// reachable marks states reachable from a start state.
func reachable(f *fa.FA) []bool {
	seen := make([]bool, f.NumStates())
	var queue []int
	for _, s := range f.StartStates() {
		if !seen[int(s)] {
			seen[int(s)] = true
			queue = append(queue, int(s))
		}
	}
	fwd := make([][]int, f.NumStates())
	for _, t := range f.Transitions() {
		fwd[int(t.From)] = append(fwd[int(t.From)], int(t.To))
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, n := range fwd[s] {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	return seen
}

// coreachable marks states from which some accepting state is reachable.
func coreachable(f *fa.FA) []bool {
	seen := make([]bool, f.NumStates())
	var queue []int
	for _, s := range f.AcceptStates() {
		if !seen[int(s)] {
			seen[int(s)] = true
			queue = append(queue, int(s))
		}
	}
	rev := make([][]int, f.NumStates())
	for _, t := range f.Transitions() {
		rev[int(t.To)] = append(rev[int(t.To)], int(t.From))
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, n := range rev[s] {
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	return seen
}

// ambiguity reports, per state and label, how many transitions match one
// event: two same-label edges, or a wildcard edge overlapping anything
// (including a second wildcard). Matching mirrors fa.FA.matching.
func ambiguity(f *fa.FA) []Finding {
	var out []Finding
	byFrom := make([][]fa.Transition, f.NumStates())
	for _, t := range f.Transitions() {
		byFrom[int(t.From)] = append(byFrom[int(t.From)], t)
	}
	for s := 0; s < f.NumStates(); s++ {
		wild := 0
		counts := map[string]int{}
		var order []string
		for _, t := range byFrom[s] {
			if fa.IsWildcard(t.Label) {
				wild++
				continue
			}
			key := t.Label.String()
			if counts[key] == 0 {
				order = append(order, key)
			}
			counts[key]++
		}
		sort.Strings(order)
		for _, key := range order {
			if n := counts[key] + wild; n > 1 {
				out = append(out, Finding{
					Spec: f.Name(), Rule: RuleAmbiguity,
					Message: fmt.Sprintf("state s%d is nondeterministic on %s: %d transitions match", s, key, n),
				})
			}
		}
		if wild > 1 {
			out = append(out, Finding{
				Spec: f.Name(), Rule: RuleAmbiguity,
				Message: fmt.Sprintf("state s%d is nondeterministic on %s: %d transitions match", s, fa.Wildcard(), wild),
			})
		}
	}
	return out
}

// vacuous reports whether the automaton accepts every trace over its own
// alphabet: expand wildcards, determinize, complete, and check that no
// reachable state rejects. An automaton the pipeline cannot normalize is
// never reported vacuous.
func vacuous(f *fa.FA) bool {
	alphabet := f.Alphabet()
	det, err := f.ExpandWildcards(alphabet).Determinize()
	if err != nil {
		return false
	}
	complete, err := det.Complete(alphabet)
	if err != nil {
		return false
	}
	reach := reachable(complete)
	for s := 0; s < complete.NumStates(); s++ {
		if reach[s] && !complete.IsAccept(fa.State(s)) {
			return false
		}
	}
	return true
}
