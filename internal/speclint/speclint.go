// Package speclint statically analyzes specification automata for the
// structural defects that make concept-analysis debugging sessions
// misleading before a single trace is clustered: states the FA can never
// enter, transitions that lie on no accepting path (their attribute
// column in the trace context is constantly empty), nondeterministic
// ambiguity (one event, several successor states, so "executed
// transitions" stops being well defined for the paper's Section 3.2
// context), vacuous acceptance (the spec accepts every trace over its
// alphabet and can therefore never flag a violation), and — when a trace
// corpus is supplied — alphabet mismatch in both directions between the
// spec and the traces it is meant to classify.
//
// speclint is the specification-level counterpart of cmd/cablevet: vet
// checks the Go code of this repo, speclint checks the FA artifacts the
// repo consumes. Both run in `make ci`.
package speclint

import (
	"fmt"
	"sort"

	"repro/internal/fa"
	"repro/internal/fa/lang"
	"repro/internal/trace"
)

// Rule names, used in Finding.Rule and in diagnostics filtering. The
// first five are the structural v1 rules; the rest are the semantic v2
// rules built on internal/fa/lang.
const (
	RuleUnreachableState    = "unreachable-state"
	RuleDeadTransition      = "dead-transition"
	RuleAmbiguity           = "ambiguity"
	RuleVacuous             = "vacuous-acceptance"
	RuleAlphabetMismatch    = "alphabet-mismatch"
	RuleRedundantTransition = "redundant-transition"
	RuleMergeableStates     = "mergeable-states"
	RuleLanguageDiff        = "language-diff"
	RuleSubsumedSpec        = "subsumed-spec"
	RuleDuplicateSpec       = "duplicate-spec"
)

// Rules lists every rule name in report order.
func Rules() []string {
	return []string{
		RuleUnreachableState,
		RuleDeadTransition,
		RuleAmbiguity,
		RuleVacuous,
		RuleAlphabetMismatch,
		RuleRedundantTransition,
		RuleMergeableStates,
		RuleLanguageDiff,
		RuleSubsumedSpec,
		RuleDuplicateSpec,
	}
}

// Finding is one diagnostic about a specification automaton.
type Finding struct {
	Spec    string `json:"spec"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	// Witness, when set, is the trace key of a concrete counterexample
	// backing the finding — e.g. a trace the spec accepts but its
	// reference rejects. Witness traces are re-executed through fa.Sim
	// before they are reported (internal/fa/lang enforces this).
	Witness string `json:"witness,omitempty"`
}

// String renders the finding as "spec: rule: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Spec, f.Rule, f.Message)
}

// Lint runs the structural rules — everything that needs only the
// automaton itself. Findings come out in rule order (Rules), sub-ordered
// by state and transition index, so reports are deterministic.
func Lint(f *fa.FA) []Finding {
	var out []Finding
	reach := lang.Reachable(f)
	coreach := lang.Coreachable(f)

	for s := 0; s < f.NumStates(); s++ {
		if !reach[s] {
			out = append(out, Finding{
				Spec: f.Name(), Rule: RuleUnreachableState,
				Message: fmt.Sprintf("state s%d is unreachable from the start states", s),
			})
		}
	}

	// A transition out of an unreachable state is implied by the
	// unreachable-state finding; only transitions the automaton can
	// actually take but that never lead to acceptance are reported.
	for _, t := range f.Transitions() {
		if reach[int(t.From)] && !coreach[int(t.To)] {
			out = append(out, Finding{
				Spec: f.Name(), Rule: RuleDeadTransition,
				Message: fmt.Sprintf("transition %s is never on an accepting path", t),
			})
		}
	}

	out = append(out, ambiguity(f)...)

	if vacuous(f) {
		out = append(out, Finding{
			Spec: f.Name(), Rule: RuleVacuous,
			Message: "spec accepts every trace over its alphabet",
		})
	}
	return out
}

// LintWithTraces runs Lint plus the alphabet-mismatch rule against a
// trace corpus: events the traces use but no spec transition can match
// (the spec silently rejects every such trace), and events the spec
// spells out but no trace ever performs (dead vocabulary, often a typo
// in the spec).
func LintWithTraces(f *fa.FA, traces []trace.Trace) []Finding {
	return append(Lint(f), AlphabetFindings(f, traces)...)
}

// AlphabetFindings runs just the alphabet-mismatch rule, so callers that
// already ran the automaton-only rules (LintAll) can add the corpus
// checks without duplicating findings.
func AlphabetFindings(f *fa.FA, traces []trace.Trace) []Finding {
	var out []Finding
	inTraces := map[string]bool{}
	for _, t := range traces {
		for _, e := range t.Events {
			inTraces[e.String()] = true
		}
	}
	inSpec := map[string]bool{}
	var specEvents []string
	for _, e := range f.Alphabet() {
		s := e.String()
		inSpec[s] = true
		specEvents = append(specEvents, s)
	}

	// Traces → spec: pointless unless the spec is wildcard-free — a
	// wildcard transition matches every event.
	if !f.HasWildcard() {
		var missing []string
		for e := range inTraces {
			if !inSpec[e] {
				missing = append(missing, e)
			}
		}
		sort.Strings(missing)
		for _, e := range missing {
			out = append(out, Finding{
				Spec: f.Name(), Rule: RuleAlphabetMismatch,
				Message: fmt.Sprintf("event %s appears in the traces but no spec transition matches it", e),
			})
		}
	}

	// Spec → traces.
	for _, e := range specEvents {
		if !inTraces[e] {
			out = append(out, Finding{
				Spec: f.Name(), Rule: RuleAlphabetMismatch,
				Message: fmt.Sprintf("event %s labels a spec transition but occurs in no trace", e),
			})
		}
	}
	return out
}

// ambiguity reports, per state and label, how many transitions match one
// event: two same-label edges, or a wildcard edge overlapping anything
// (including a second wildcard). Matching mirrors fa.FA.matching.
func ambiguity(f *fa.FA) []Finding {
	var out []Finding
	byFrom := make([][]fa.Transition, f.NumStates())
	for _, t := range f.Transitions() {
		byFrom[int(t.From)] = append(byFrom[int(t.From)], t)
	}
	for s := 0; s < f.NumStates(); s++ {
		wild := 0
		counts := map[string]int{}
		var order []string
		for _, t := range byFrom[s] {
			if fa.IsWildcard(t.Label) {
				wild++
				continue
			}
			key := t.Label.String()
			if counts[key] == 0 {
				order = append(order, key)
			}
			counts[key]++
		}
		sort.Strings(order)
		for _, key := range order {
			if n := counts[key] + wild; n > 1 {
				out = append(out, Finding{
					Spec: f.Name(), Rule: RuleAmbiguity,
					Message: fmt.Sprintf("state s%d is nondeterministic on %s: %d transitions match", s, key, n),
				})
			}
		}
		if wild > 1 {
			out = append(out, Finding{
				Spec: f.Name(), Rule: RuleAmbiguity,
				Message: fmt.Sprintf("state s%d is nondeterministic on %s: %d transitions match", s, fa.Wildcard(), wild),
			})
		}
	}
	return out
}

// vacuous reports whether the automaton accepts every trace over its own
// alphabet: compile to a complete DFA (wildcards expand over the
// alphabet) and ask whether the complement's language is empty. An
// automaton the engine cannot compile is never reported vacuous.
func vacuous(f *fa.FA) bool {
	d, err := lang.Compile(f, f.Alphabet())
	if err != nil {
		return false
	}
	_, rejectsSomething := d.Complement().Witness()
	return !rejectsSomething
}
