package speclint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fa"
	"repro/internal/fa/lang"
	"repro/internal/specs"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// Two parallel paths accepting the same word: every edge of the diamond
// can individually be removed without changing the language (the other
// path still accepts f g), and the fork is also nondeterministic, so the
// structural rule fires alongside the semantic one.
func TestRedundantTransition(t *testing.T) {
	b := fa.NewBuilder("redundant")
	s := b.States(4)
	b.Start(s[0])
	b.Accept(s[3])
	b.EdgeStr(s[0], "f()", s[1])
	b.EdgeStr(s[0], "f()", s[2])
	b.EdgeStr(s[1], "g()", s[3])
	b.EdgeStr(s[2], "g()", s[3])
	expect(t, LintAll(b.MustBuild()), []string{
		"redundant: ambiguity: state s0 is nondeterministic on f(): 2 transitions match",
		"redundant: redundant-transition: transition s0 --f()--> s1 is redundant: removing it leaves the language unchanged",
		"redundant: redundant-transition: transition s0 --f()--> s2 is redundant: removing it leaves the language unchanged",
		"redundant: redundant-transition: transition s1 --g()--> s3 is redundant: removing it leaves the language unchanged",
		"redundant: redundant-transition: transition s2 --g()--> s3 is redundant: removing it leaves the language unchanged",
	})
}

// The deterministic twin of the same automaton has no redundancy but two
// states with identical residual languages.
func TestMergeableStates(t *testing.T) {
	b := fa.NewBuilder("dup")
	s := b.States(4)
	b.Start(s[0])
	b.Accept(s[3])
	b.EdgeStr(s[0], "f()", s[1])
	b.EdgeStr(s[0], "g()", s[2])
	b.EdgeStr(s[1], "h()", s[3])
	b.EdgeStr(s[2], "h()", s[3])
	expect(t, LintAll(b.MustBuild()), []string{
		"dup: mergeable-states: states s1 and s2 accept the same residual language and can be merged",
	})
}

// Diff on the Section 2 automata: Figure 1's buggy stdio spec both
// accepts behaviours the correct one rejects (fclose on a pipe) and
// rejects behaviours the correct one accepts (pclose on a pipe), so both
// directions fire with concrete witnesses.
func TestDiffFigureOne(t *testing.T) {
	correct := specs.Stdio().FA
	buggy := specs.FigureOneFA()
	findings, err := Diff(buggy, correct)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if len(findings) != 2 {
		t.Fatalf("expected 2 findings, got:\n%s", strings.Join(renderAll(findings), "\n"))
	}
	for _, f := range findings {
		if f.Rule != RuleLanguageDiff {
			t.Errorf("rule = %q, want %q", f.Rule, RuleLanguageDiff)
		}
		if f.Witness == "" {
			t.Errorf("finding %q carries no witness", f.Message)
		}
	}
	if !strings.Contains(findings[0].Message, "rejects") || !strings.Contains(findings[1].Message, "accepts") {
		t.Errorf("unexpected directions:\n%s", strings.Join(renderAll(findings), "\n"))
	}
}

func TestCorpusDuplicateAndSubsumption(t *testing.T) {
	mk := func(name string, words ...[]string) *fa.FA {
		b := fa.NewBuilder(name)
		for _, word := range words {
			cur := b.State()
			b.Start(cur)
			for _, sym := range word {
				next := b.State()
				b.EdgeStr(cur, sym, next)
				cur = next
			}
			b.Accept(cur)
		}
		return b.MustBuild()
	}
	small := mk("small", []string{"f()", "g()"})
	large := mk("large", []string{"f()", "g()"}, []string{"f()", "h()"})
	copySmall := mk("copy", []string{"f()", "g()"})
	unrelated := mk("unrelated", []string{"x()"})

	findings, err := Corpus([]*fa.FA{small, large, copySmall, unrelated})
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	got := renderAll(findings)
	want := []string{
		`small: subsumed-spec: spec's language is strictly contained in "large"`,
		`small: duplicate-spec: spec recognizes the same language as "copy"`,
		`copy: subsumed-spec: spec's language is strictly contained in "large"`,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d:\n got %q\nwant %q", i, got[i], want[i])
		}
	}
	for _, f := range findings {
		if f.Rule == RuleSubsumedSpec && f.Witness != "f(); h()" {
			t.Errorf("subsumption witness = %q, want %q", f.Witness, "f(); h()")
		}
	}
}

// The shipped corpus must stay clean under the semantic rules too: the
// derivation pipeline emits minimal DFAs (no redundancy, no mergeable
// states), and no real protocol spec duplicates or subsumes another.
func TestShippedCorpusSemanticClean(t *testing.T) {
	all := append(specs.All(), specs.Stdio())
	var fas []*fa.FA
	for _, sp := range all {
		if got := LintAll(sp.FA); len(got) != 0 {
			t.Errorf("%s: semantic findings on a shipped spec:\n%s",
				sp.Name, strings.Join(renderAll(got), "\n"))
		}
		fas = append(fas, sp.FA)
	}
	findings, err := Corpus(fas)
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("cross-spec findings on the shipped corpus:\n%s",
			strings.Join(renderAll(findings), "\n"))
	}
}

// TestCorpusWitnessGolden is the evaluation the tentpole promises: every
// seeded buggy spec must yield a concrete separating witness against its
// known-correct FA, and the exact witness set is pinned in a golden file
// (make speclint-corpus). Regenerate with -update after an intentional
// corpus change.
func TestCorpusWitnessGolden(t *testing.T) {
	all := append(specs.All(), specs.Stdio())
	var sb strings.Builder
	for _, sp := range all {
		if sp.Buggy == nil {
			t.Fatalf("%s: no seeded buggy FA", sp.Name)
		}
		// The seeding guarantees L(correct) ⊆ L(buggy), strictly.
		if inc, _, err := lang.Includes(sp.FA, sp.Buggy); err != nil || !inc {
			t.Fatalf("%s: correct language not contained in buggy (inc=%v, err=%v)", sp.Name, inc, err)
		}
		findings, err := Diff(sp.Buggy, sp.FA)
		if err != nil {
			t.Fatalf("%s: Diff: %v", sp.Name, err)
		}
		if len(findings) == 0 {
			t.Fatalf("%s: differ produced no witness against the correct FA", sp.Name)
		}
		for _, f := range findings {
			if f.Witness == "" {
				t.Fatalf("%s: finding without witness: %s", sp.Name, f)
			}
			fmt.Fprintf(&sb, "%s\n  witness: %s\n", f, f.Witness)
		}
	}
	goldenPath := filepath.Join("testdata", "corpus_witnesses.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != string(want) {
		t.Errorf("witness set drifted from %s (run with -update if intentional):\n--- got ---\n%s--- want ---\n%s",
			goldenPath, sb.String(), want)
	}
}
