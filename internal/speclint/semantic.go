package speclint

import (
	"fmt"
	"strings"

	"repro/internal/fa"
	"repro/internal/fa/lang"
)

// LintAll runs every automaton-only rule: the structural v1 set (Lint)
// followed by the semantic v2 set (Semantic). Reference diffing and
// cross-spec checks need more inputs and live in Diff and Corpus.
func LintAll(f *fa.FA) []Finding {
	return append(Lint(f), Semantic(f)...)
}

// Semantic runs the single-spec semantic rules on internal/fa/lang:
// per-transition redundancy (removing the transition leaves the language
// unchanged) and state-merge suggestions (distinct states with the same
// residual language). Findings come out in rule order, sub-ordered by
// transition and state index.
func Semantic(f *fa.FA) []Finding {
	var out []Finding
	reach := lang.Reachable(f)
	coreach := lang.Coreachable(f)

	// Redundancy: only transitions the automaton can take on an accepting
	// path are candidates — dead transitions are trivially removable and
	// already carry a dead-transition finding.
	for i, t := range f.Transitions() {
		if !reach[int(t.From)] || !coreach[int(t.To)] {
			continue
		}
		eq, _, err := lang.Equivalent(f, withoutTransition(f, i))
		if err == nil && eq {
			out = append(out, Finding{
				Spec: f.Name(), Rule: RuleRedundantTransition,
				Message: fmt.Sprintf("transition %s is redundant: removing it leaves the language unchanged", t),
			})
		}
	}

	// Merge suggestions only make sense when states are the author's own
	// (deterministic automata); EquivalentStates rejects the rest.
	if groups, err := lang.EquivalentStates(f); err == nil {
		for _, g := range groups {
			out = append(out, Finding{
				Spec: f.Name(), Rule: RuleMergeableStates,
				Message: fmt.Sprintf("states %s accept the same residual language and can be merged", stateList(g)),
			})
		}
	}
	return out
}

// withoutTransition rebuilds f minus transition index i, preserving state
// numbering.
func withoutTransition(f *fa.FA, i int) *fa.FA {
	b := fa.NewBuilder(f.Name())
	b.States(f.NumStates())
	for _, s := range f.StartStates() {
		b.Start(s)
	}
	for _, s := range f.AcceptStates() {
		b.Accept(s)
	}
	for j, t := range f.Transitions() {
		if j != i {
			b.Edge(t.From, t.Label, t.To)
		}
	}
	return b.MustBuild()
}

func stateList(states []int) string {
	parts := make([]string, len(states))
	for i, s := range states {
		parts[i] = fmt.Sprintf("s%d", s)
	}
	if len(parts) == 2 {
		return parts[0] + " and " + parts[1]
	}
	return strings.Join(parts[:len(parts)-1], ", ") + " and " + parts[len(parts)-1]
}

// Diff compares a spec against a reference automaton by language and
// reports one finding per direction of disagreement, each carrying a
// shortest concrete witness trace: one the spec accepts but the reference
// rejects (the spec is too permissive) and one the reference accepts but
// the spec rejects (too strict). Witnesses are re-executed through both
// automata's compiled fa.Sim plans before being reported; a verification
// failure surfaces as an error, never as a finding.
func Diff(spec, ref *fa.FA) ([]Finding, error) {
	var out []Finding
	inc, w, err := lang.Includes(spec, ref)
	if err != nil {
		return nil, err
	}
	if !inc {
		out = append(out, Finding{
			Spec: spec.Name(), Rule: RuleLanguageDiff,
			Message: fmt.Sprintf("spec accepts a trace the reference %q rejects", ref.Name()),
			Witness: w.Key(),
		})
	}
	inc, w, err = lang.Includes(ref, spec)
	if err != nil {
		return nil, err
	}
	if !inc {
		out = append(out, Finding{
			Spec: spec.Name(), Rule: RuleLanguageDiff,
			Message: fmt.Sprintf("spec rejects a trace the reference %q accepts", ref.Name()),
			Witness: w.Key(),
		})
	}
	return out, nil
}

// Corpus cross-checks a set of specifications pairwise: two specs with
// the same language are duplicates, and a spec whose language is strictly
// contained in another's is subsumed (the witness shows a behaviour only
// the larger one accepts). Pairs with disjoint alphabets are skipped —
// between unrelated protocols neither relation means anything.
func Corpus(fas []*fa.FA) ([]Finding, error) {
	var out []Finding
	for i := 0; i < len(fas); i++ {
		for j := i + 1; j < len(fas); j++ {
			a, b := fas[i], fas[j]
			if !alphabetsIntersect(a, b) {
				continue
			}
			ab, wAB, err := lang.Includes(a, b)
			if err != nil {
				return nil, err
			}
			ba, wBA, err := lang.Includes(b, a)
			if err != nil {
				return nil, err
			}
			switch {
			case ab && ba:
				out = append(out, Finding{
					Spec: a.Name(), Rule: RuleDuplicateSpec,
					Message: fmt.Sprintf("spec recognizes the same language as %q", b.Name()),
				})
			case ab:
				// The witness must lie in L(b) \ L(a): the failed reverse
				// inclusion delivered exactly that trace.
				out = append(out, Finding{
					Spec: a.Name(), Rule: RuleSubsumedSpec,
					Message: fmt.Sprintf("spec's language is strictly contained in %q", b.Name()),
					Witness: wBA.Key(),
				})
			case ba:
				out = append(out, Finding{
					Spec: b.Name(), Rule: RuleSubsumedSpec,
					Message: fmt.Sprintf("spec's language is strictly contained in %q", a.Name()),
					Witness: wAB.Key(),
				})
			}
		}
	}
	return out, nil
}

func alphabetsIntersect(a, b *fa.FA) bool {
	in := map[string]bool{}
	for _, e := range a.Alphabet() {
		in[e.String()] = true
	}
	for _, e := range b.Alphabet() {
		if in[e.String()] {
			return true
		}
	}
	return false
}
