package prog

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/mine"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/verify"
)

const leakySrc = `
prog leaky {
  // may forget to close
  X := fopen();
  loop { fread(X); }
  choice { fclose(X); } or { skip; }
}
`

func TestParseAndPrint(t *testing.T) {
	p, err := Parse(leakySrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "leaky" || len(p.Body) != 3 {
		t.Fatalf("parsed %q with %d stmts", p.Name, len(p.Body))
	}
	// Printing re-parses to the same structure.
	again, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, p.String())
	}
	if again.String() != p.String() {
		t.Errorf("print/parse not stable:\n%s\nvs\n%s", p.String(), again.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"prog {",
		"prog p { x := ; }",
		"prog p { f() }",          // missing ;
		"prog p { choice { } }",   // no or
		"prog p { loop { f(); }",  // unterminated
		"prog p { f(a b); }",      // missing comma
		"prog p { @; }",           // bad char
		"prog p { skip; } extra",  // trailing
		"prog p { x := f(); } {}", // trailing block
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestCompileLanguage(t *testing.T) {
	p := MustParse(leakySrc)
	f, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		t    trace.Trace
		want bool
	}{
		{trace.ParseEvents("", "X = fopen()", "fclose(X)"), true},
		{trace.ParseEvents("", "X = fopen()", "fread(X)", "fread(X)", "fclose(X)"), true},
		{trace.ParseEvents("", "X = fopen()"), true}, // leak path (skip branch)
		{trace.ParseEvents("", "X = fopen()", "fclose(X)", "fclose(X)"), false},
		{trace.ParseEvents("", "fclose(X)"), false},
	} {
		if got := f.Accepts(c.t); got != c.want {
			t.Errorf("Accepts(%q) = %v, want %v", c.t.Key(), got, c.want)
		}
	}
}

func TestCompileChoiceOpt(t *testing.T) {
	p := MustParse(`prog c { choice { a(); } or { b(); } or { skip; } opt { z(); } }`)
	f, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"a()", "b()", "", "a(); z()", "z()"} {
		var evs []string
		if key != "" {
			evs = strings.Split(key, "; ")
		}
		if !f.Accepts(trace.ParseEvents("", evs...)) {
			t.Errorf("rejects %q", key)
		}
	}
	if f.Accepts(trace.ParseEvents("", "a()", "b()")) {
		t.Error("accepts both choice branches")
	}
}

func TestExecuteProducesCompiledBehaviour(t *testing.T) {
	// Every executed run's per-object projection is accepted by the
	// compiled automaton (single-object program: rename to match).
	p := MustParse(leakySrc)
	f, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	fe := mine.FrontEnd{Seeds: []string{"fopen"}, FollowDerived: true}
	for i := 0; i < 50; i++ {
		events, _ := p.Execute(rng, 1, ExecOptions{})
		scenarios := fe.Extract(mine.Run{ID: "r", Events: events})
		if len(scenarios) != 1 {
			t.Fatalf("run %d: %d scenarios", i, len(scenarios))
		}
		if !f.Accepts(scenarios[0]) {
			t.Fatalf("run %d: compiled FA rejects executed behaviour %q", i, scenarios[0].Key())
		}
	}
}

func TestExecuteLoopBound(t *testing.T) {
	p := MustParse(`prog spin { loop { tick(); } }`)
	rng := rand.New(rand.NewSource(1))
	events, _ := p.Execute(rng, 1, ExecOptions{LoopContinue: 0.999999, MaxSteps: 50})
	if len(events) > 50 {
		t.Fatalf("MaxSteps not enforced: %d events", len(events))
	}
}

func TestRunsDistinctObjects(t *testing.T) {
	p := MustParse(leakySrc)
	runs := p.Runs(rand.New(rand.NewSource(2)), 10, ExecOptions{})
	seen := map[int]bool{}
	for _, r := range runs {
		for _, e := range r.Events {
			if e.Def != 0 {
				if seen[int(e.Def)] {
					t.Fatalf("object %d reused across runs", int(e.Def))
				}
				seen[int(e.Def)] = true
			}
		}
	}
}

func TestStaticCheckOfProgram(t *testing.T) {
	// End to end: compile the leaky program and statically verify it
	// against the correct stdio specification — the leak is reported.
	p := MustParse(leakySrc)
	program, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	spec := specs.Stdio().FA
	ok, err := verify.Conforms(program, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("leaky program reported conforming")
	}
	violations, err := verify.Static(program, spec, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	foundLeak := false
	for _, v := range violations {
		if v.Trace.Key() == "X = fopen()" {
			foundLeak = true
		}
	}
	if !foundLeak {
		t.Errorf("leak not among violations: %v", violations)
	}

	// The repaired program conforms.
	fixed := MustParse(`
prog fixed {
  X := fopen();
  loop { fread(X); }
  fclose(X);
}`)
	fixedFA, err := fixed.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ok, err = verify.Conforms(fixedFA, spec)
	if err != nil || !ok {
		t.Errorf("fixed program conforms = %v, %v", ok, err)
	}
}

func TestMineFromProgramRuns(t *testing.T) {
	// Dynamic pipeline: execute the program, mine a spec, confirm the
	// mined spec accepts both the close and leak behaviours (the bug the
	// debugging method then removes).
	p := MustParse(leakySrc)
	runs := p.Runs(rand.New(rand.NewSource(7)), 60, ExecOptions{})
	miner := mine.Miner{FrontEnd: mine.FrontEnd{Seeds: []string{"fopen"}, FollowDerived: true}}
	mined, scenarios, err := miner.Mine("leaky-mined", runs)
	if err != nil {
		t.Fatal(err)
	}
	if scenarios.Total() != 60 {
		t.Fatalf("scenarios = %d", scenarios.Total())
	}
	if !mined.Accepts(trace.ParseEvents("", "X = fopen()", "fclose(X)")) {
		t.Error("mined spec rejects the close path")
	}
	if !mined.Accepts(trace.ParseEvents("", "X = fopen()")) {
		t.Error("mined spec rejects the leak path (should have been trained on it)")
	}
}

func TestVarsAndProject(t *testing.T) {
	p := MustParse(`
prog two {
  X := fopen();
  Y := popen();
  copy(X, Y);
  loop { fread(X); }
  fclose(X);
  choice { pclose(Y); } or { skip; }
}`)
	vars := p.Vars()
	if len(vars) != 2 || vars[0] != "X" || vars[1] != "Y" {
		t.Fatalf("Vars = %v", vars)
	}
	// X's projection keeps fopen/copy/fread/fclose; Y renames to "_" in
	// shared calls.
	px := p.Project("X")
	fx, err := px.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !fx.Accepts(trace.ParseEvents("", "X = fopen()", "copy(X, _)", "fread(X)", "fclose(X)")) {
		t.Errorf("X projection wrong:\n%s", px)
	}
	if fx.Accepts(trace.ParseEvents("", "X = fopen()")) {
		t.Error("X projection lost mandatory close")
	}
	// Y's projection: the skip branch makes pclose optional.
	py := p.Project("Y")
	fy, err := py.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !fy.Accepts(trace.ParseEvents("", "X = popen()", "copy(_, X)", "pclose(X)")) {
		t.Errorf("Y projection wrong:\n%s", py)
	}
	if !fy.Accepts(trace.ParseEvents("", "X = popen()", "copy(_, X)")) {
		t.Error("Y projection lost the skip branch")
	}
}

func TestProjectionMatchesFrontEnd(t *testing.T) {
	// The static projection and the dynamic front end agree: every
	// scenario the front end extracts from an execution is accepted by the
	// corresponding projection's automaton.
	p := MustParse(leakySrc)
	proj, err := p.Project("X").Compile()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	fe := mine.FrontEnd{Seeds: []string{"fopen"}, FollowDerived: true}
	for i := 0; i < 40; i++ {
		events, _ := p.Execute(rng, 1, ExecOptions{})
		for _, sc := range fe.Extract(mine.Run{ID: "r", Events: events}) {
			if !proj.Accepts(sc) {
				t.Fatalf("projection rejects dynamic scenario %q", sc.Key())
			}
		}
	}
}
