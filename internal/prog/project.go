package prog

import (
	"sort"
)

// Specifications are per-object ("For all calls X = fopen() ..."), but a
// compiled program automaton describes whole-program behaviour with every
// object's events interleaved. Project slices the program to one
// variable's protocol — the static analogue of the Strauss front end's
// scenario extraction — so each object's behaviour can be checked against
// the specification separately.

// Vars returns the variables assigned anywhere in the program, sorted.
// Each variable is assumed to be assigned once (one object per variable);
// programs meeting that discipline project faithfully.
func (p *Program) Vars() []string {
	seen := map[string]bool{}
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case Call:
				if s.Def != "" {
					seen[s.Def] = true
				}
			case Loop:
				walk(s.Body)
			case Opt:
				walk(s.Body)
			case Choice:
				for _, alt := range s.Alts {
					walk(alt)
				}
			}
		}
	}
	walk(p.Body)
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Project returns the program restricted to the calls mentioning the
// variable, with that variable renamed to the specification's canonical
// "X" and any other variables in kept calls renamed to "_". Control
// structure is preserved so the projection's language is exactly the
// variable's possible event sequences.
func (p *Program) Project(v string) *Program {
	return &Program{
		Name: p.Name + ":" + v,
		Body: projectStmts(p.Body, v),
	}
}

func projectStmts(stmts []Stmt, v string) []Stmt {
	var out []Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case Call:
			if !mentions(s, v) {
				continue
			}
			c := Call{Op: s.Op, Def: renameVar(s.Def, v)}
			for _, u := range s.Uses {
				c.Uses = append(c.Uses, renameVar(u, v))
			}
			out = append(out, c)
		case Skip:
		case Loop:
			if body := projectStmts(s.Body, v); len(body) > 0 {
				out = append(out, Loop{Body: body})
			}
		case Opt:
			if body := projectStmts(s.Body, v); len(body) > 0 {
				out = append(out, Opt{Body: body})
			}
		case Choice:
			var alts [][]Stmt
			nonEmpty := false
			for _, alt := range s.Alts {
				pa := projectStmts(alt, v)
				if len(pa) > 0 {
					nonEmpty = true
				}
				alts = append(alts, pa)
			}
			if nonEmpty {
				out = append(out, Choice{Alts: alts})
			}
		}
	}
	return out
}

func mentions(c Call, v string) bool {
	if c.Def == v {
		return true
	}
	for _, u := range c.Uses {
		if u == v {
			return true
		}
	}
	return false
}

func renameVar(name, v string) string {
	switch name {
	case "":
		return ""
	case v:
		return "X"
	default:
		return "_"
	}
}
