package prog

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a program in the package syntax. Comments run from "//" to
// end of line.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("prog: trailing input at %s", p.peek())
	}
	return prog, nil
}

// MustParse is Parse that panics on error, for program literals.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// --- Lexer -------------------------------------------------------------------

type token struct {
	kind string // "ident", "(", ")", "{", "}", ";", ",", ":="
	text string
	line int
}

func (t token) String() string {
	if t.kind == "ident" {
		return fmt.Sprintf("%q (line %d)", t.text, t.line)
	}
	return fmt.Sprintf("%q (line %d)", t.kind, t.line)
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == ':' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, token{kind: ":=", line: line})
			i += 2
		case strings.ContainsRune("(){};,", rune(c)):
			toks = append(toks, token{kind: string(c), line: line})
			i++
		case isIdentRune(rune(c)):
			j := i
			for j < len(src) && isIdentRune(rune(src[j])) {
				j++
			}
			toks = append(toks, token{kind: "ident", text: src[i:j], line: line})
			i = j
		default:
			return nil, fmt.Errorf("prog: line %d: unexpected character %q", line, c)
		}
	}
	return toks, nil
}

func isIdentRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// --- Parser ------------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{kind: "eof", line: -1}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(kind string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("prog: expected %q, found %s", kind, t)
	}
	return t, nil
}

func (p *parser) expectKeyword(word string) error {
	t := p.next()
	if t.kind != "ident" || t.text != word {
		return fmt.Errorf("prog: expected %q, found %s", word, t)
	}
	return nil
}

func (p *parser) program() (*Program, error) {
	if err := p.expectKeyword("prog"); err != nil {
		return nil, err
	}
	name, err := p.expect("ident")
	if err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &Program{Name: name.text, Body: body}, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.peek().kind != "}" {
		if p.eof() {
			return nil, fmt.Errorf("prog: unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // consume }
	return stmts, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	if t.kind != "ident" {
		return nil, fmt.Errorf("prog: expected statement, found %s", t)
	}
	switch t.text {
	case "skip":
		p.next()
		_, err := p.expect(";")
		return Skip{}, err
	case "loop":
		p.next()
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return Loop{Body: body}, nil
	case "opt":
		p.next()
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return Opt{Body: body}, nil
	case "choice":
		p.next()
		var alts [][]Stmt
		first, err := p.block()
		if err != nil {
			return nil, err
		}
		alts = append(alts, first)
		for p.peek().kind == "ident" && p.peek().text == "or" {
			p.next()
			alt, err := p.block()
			if err != nil {
				return nil, err
			}
			alts = append(alts, alt)
		}
		if len(alts) < 2 {
			return nil, fmt.Errorf("prog: choice needs at least one \"or\" alternative (line %d)", t.line)
		}
		return Choice{Alts: alts}, nil
	}
	return p.call()
}

// call parses "x := op(a, b);" or "op(a);".
func (p *parser) call() (Stmt, error) {
	first, err := p.expect("ident")
	if err != nil {
		return nil, err
	}
	c := Call{Op: first.text}
	if p.peek().kind == ":=" {
		p.next()
		op, err := p.expect("ident")
		if err != nil {
			return nil, err
		}
		c.Def = first.text
		c.Op = op.text
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	for p.peek().kind != ")" {
		arg, err := p.expect("ident")
		if err != nil {
			return nil, err
		}
		c.Uses = append(c.Uses, arg.text)
		if p.peek().kind == "," {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return c, nil
}
