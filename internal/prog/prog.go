// Package prog models the programs that verification tools analyze: a
// small imperative language over event-producing calls, with
// nondeterministic branching and looping standing in for data-dependent
// control flow.
//
// The paper's verifier "analyzes the program and reports violation
// traces"; its miner consumes "data collected during a few runs of one or
// more programs". This package supplies both inputs from one artifact:
//
//   - Compile flattens a program's control-flow graph into an event
//     automaton (every path's event sequence is a word), which
//     verify.Static checks against a specification exhaustively; and
//   - Execute walks the program concretely, resolving nondeterminism at
//     random, allocating fresh object identities for each assignment, and
//     producing the whole-program runs the Strauss front end slices into
//     scenario traces.
//
// Programs are written in a small text syntax:
//
//	prog leaky {
//	  x := fopen();
//	  loop { fread(x); }
//	  choice { fclose(x); } or { skip; }
//	}
//
// Statements: calls ("x := op(a, b);" or "op(a);"), "skip;", "loop { ... }"
// (zero or more iterations), "opt { ... }" (zero or one), and
// "choice { ... } or { ... }" (one branch, two or more alternatives).
package prog

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/event"
	"repro/internal/fa"
	"repro/internal/mine"
)

// Stmt is a program statement.
type Stmt interface{ stmt() }

// Call invokes an operation, optionally binding its result to a variable.
type Call struct {
	// Def is the variable assigned, or "" for a bare call.
	Def string
	// Op is the operation name.
	Op string
	// Uses are the argument variables.
	Uses []string
}

// Skip does nothing.
type Skip struct{}

// Loop executes its body zero or more times.
type Loop struct{ Body []Stmt }

// Opt executes its body zero or one time.
type Opt struct{ Body []Stmt }

// Choice executes exactly one alternative.
type Choice struct{ Alts [][]Stmt }

func (Call) stmt()   {}
func (Skip) stmt()   {}
func (Loop) stmt()   {}
func (Opt) stmt()    {}
func (Choice) stmt() {}

// Program is a named statement sequence.
type Program struct {
	Name string
	Body []Stmt
}

// event renders the call as the symbolic event it emits.
func (c Call) event() event.Event {
	return event.Event{Op: c.Op, Def: c.Def, Uses: append([]string(nil), c.Uses...)}
}

// Compile flattens the program into an automaton whose language is the set
// of event sequences of terminating executions. Construction goes through
// an ε-NFA (branch/loop wiring) followed by ε-elimination.
func (p *Program) Compile() (*fa.FA, error) {
	n := &enfa{eps: map[int][]int{}}
	start := n.state()
	end := n.wire(p.Body, start)
	return n.freeze(p.Name, start, end)
}

// enfa is the intermediate ε-NFA.
type enfa struct {
	numStates int
	eps       map[int][]int
	edges     []enfaEdge
}

type enfaEdge struct {
	from, to int
	label    event.Event
}

func (n *enfa) state() int {
	s := n.numStates
	n.numStates++
	return s
}

func (n *enfa) addEps(a, b int) { n.eps[a] = append(n.eps[a], b) }

// wire threads the statements from state `from`, returning the exit state.
func (n *enfa) wire(stmts []Stmt, from int) int {
	cur := from
	for _, s := range stmts {
		switch s := s.(type) {
		case Call:
			next := n.state()
			n.edges = append(n.edges, enfaEdge{from: cur, to: next, label: s.event()})
			cur = next
		case Skip:
		case Loop:
			head := n.state()
			n.addEps(cur, head)
			tail := n.wire(s.Body, head)
			n.addEps(tail, head)
			exit := n.state()
			n.addEps(head, exit)
			cur = exit
		case Opt:
			exit := n.state()
			tail := n.wire(s.Body, cur)
			n.addEps(tail, exit)
			n.addEps(cur, exit)
			cur = exit
		case Choice:
			exit := n.state()
			for _, alt := range s.Alts {
				tail := n.wire(alt, cur)
				n.addEps(tail, exit)
			}
			cur = exit
		default:
			panic(fmt.Sprintf("prog: unknown statement %T", s))
		}
	}
	return cur
}

// freeze eliminates ε-transitions and builds the immutable automaton.
func (n *enfa) freeze(name string, start, end int) (*fa.FA, error) {
	closure := make([][]int, n.numStates)
	for s := 0; s < n.numStates; s++ {
		seen := map[int]bool{s: true}
		stack := []int{s}
		var cl []int
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cl = append(cl, cur)
			for _, t := range n.eps[cur] {
				if !seen[t] {
					seen[t] = true
					stack = append(stack, t)
				}
			}
		}
		closure[s] = cl
	}
	outBy := map[int][]enfaEdge{}
	for _, e := range n.edges {
		outBy[e.from] = append(outBy[e.from], e)
	}
	b := fa.NewBuilder(name)
	states := b.States(n.numStates)
	b.Start(states[start])
	for s := 0; s < n.numStates; s++ {
		for _, t := range closure[s] {
			if t == end {
				b.Accept(states[s])
			}
			for _, e := range outBy[t] {
				b.Edge(states[s], e.label, states[e.to])
			}
		}
	}
	built, err := b.Build()
	if err != nil {
		return nil, err
	}
	return built.Trim(), nil
}

// ExecOptions bound random execution.
type ExecOptions struct {
	// LoopContinue is the probability of taking another loop iteration
	// (default 0.5); it also drives opt bodies (taken with the same
	// probability).
	LoopContinue float64
	// MaxSteps caps emitted events per run as a runaway guard (default
	// 10000).
	MaxSteps int
}

func (o ExecOptions) normalized() ExecOptions {
	if o.LoopContinue <= 0 || o.LoopContinue >= 1 {
		o.LoopContinue = 0.5
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 10000
	}
	return o
}

// Execute runs the program once, resolving nondeterminism with rng and
// allocating object identities starting at base. It returns the concrete
// events and the next unused identity.
func (p *Program) Execute(rng *rand.Rand, base event.ObjID, opts ExecOptions) ([]event.Concrete, event.ObjID) {
	opts = opts.normalized()
	vars := map[string]event.ObjID{}
	next := base
	var out []event.Concrete
	var run func(stmts []Stmt) bool
	run = func(stmts []Stmt) bool {
		for _, s := range stmts {
			if len(out) >= opts.MaxSteps {
				return false
			}
			switch s := s.(type) {
			case Call:
				c := event.Concrete{Op: s.Op}
				for _, u := range s.Uses {
					c.Uses = append(c.Uses, vars[u]) // unknown vars read as 0
				}
				if s.Def != "" {
					c.Def = next
					vars[s.Def] = next
					next++
				}
				out = append(out, c)
			case Skip:
			case Loop:
				for rng.Float64() < opts.LoopContinue {
					if !run(s.Body) {
						return false
					}
				}
			case Opt:
				if rng.Float64() < opts.LoopContinue {
					if !run(s.Body) {
						return false
					}
				}
			case Choice:
				if !run(s.Alts[rng.Intn(len(s.Alts))]) {
					return false
				}
			}
		}
		return true
	}
	run(p.Body)
	return out, next
}

// Runs executes the program n times into miner-ready runs with disjoint
// object identities.
func (p *Program) Runs(rng *rand.Rand, n int, opts ExecOptions) []mine.Run {
	out := make([]mine.Run, 0, n)
	next := event.ObjID(1)
	for i := 0; i < n; i++ {
		var events []event.Concrete
		events, next = p.Execute(rng, next, opts)
		out = append(out, mine.Run{ID: fmt.Sprintf("%s:run%d", p.Name, i), Events: events})
	}
	return out
}

// String renders the program in its source syntax.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prog %s {\n", p.Name)
	writeStmts(&b, p.Body, "  ")
	b.WriteString("}\n")
	return b.String()
}

func writeStmts(b *strings.Builder, stmts []Stmt, indent string) {
	for _, s := range stmts {
		switch s := s.(type) {
		case Call:
			b.WriteString(indent)
			if s.Def != "" {
				fmt.Fprintf(b, "%s := ", s.Def)
			}
			fmt.Fprintf(b, "%s(%s);\n", s.Op, strings.Join(s.Uses, ", "))
		case Skip:
			b.WriteString(indent + "skip;\n")
		case Loop:
			b.WriteString(indent + "loop {\n")
			writeStmts(b, s.Body, indent+"  ")
			b.WriteString(indent + "}\n")
		case Opt:
			b.WriteString(indent + "opt {\n")
			writeStmts(b, s.Body, indent+"  ")
			b.WriteString(indent + "}\n")
		case Choice:
			for i, alt := range s.Alts {
				if i == 0 {
					b.WriteString(indent + "choice {\n")
				} else {
					b.WriteString(indent + "} or {\n")
				}
				writeStmts(b, alt, indent+"  ")
			}
			b.WriteString(indent + "}\n")
		}
	}
}
