package prog_test

import (
	"fmt"
	"math/rand"

	"repro/internal/prog"
	"repro/internal/specs"
	"repro/internal/verify"
)

// Example parses a leaky program, checks it statically against the correct
// stdio specification, and shows the shortest counterexample.
func Example() {
	p, err := prog.Parse(`
prog leaky {
  X := fopen();
  loop { fread(X); }
  choice { fclose(X); } or { skip; }
}`)
	if err != nil {
		panic(err)
	}
	model, err := p.Project("X").Compile()
	if err != nil {
		panic(err)
	}
	spec := specs.Stdio().FA
	ok, err := verify.Conforms(model, spec)
	if err != nil {
		panic(err)
	}
	fmt.Println("conforms:", ok)
	violations, err := verify.Static(model, spec, 4, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("shortest counterexample:", violations[0].Trace.Key())

	// The same program also produces concrete runs for the miner.
	events, _ := p.Execute(rand.New(rand.NewSource(1)), 1, prog.ExecOptions{})
	fmt.Println("an execution has", len(events) > 0, "events")
	// Output:
	// conforms: false
	// shortest counterexample: X = fopen()
	// an execution has true events
}
