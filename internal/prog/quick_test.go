package prog

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mine"
)

// randomProgram generates a structurally random single-variable program:
// an open call, random body over use ops, and a close in some branch.
func randomProgram(rng *rand.Rand) *Program {
	ops := []string{"use", "read", "write"}
	var gen func(depth int) []Stmt
	gen = func(depth int) []Stmt {
		n := 1 + rng.Intn(3)
		var out []Stmt
		for i := 0; i < n; i++ {
			switch k := rng.Intn(6); {
			case k == 0 && depth < 3:
				out = append(out, Loop{Body: gen(depth + 1)})
			case k == 1 && depth < 3:
				out = append(out, Opt{Body: gen(depth + 1)})
			case k == 2 && depth < 3:
				out = append(out, Choice{Alts: [][]Stmt{gen(depth + 1), gen(depth + 1)}})
			case k == 3:
				out = append(out, Skip{})
			default:
				out = append(out, Call{Op: ops[rng.Intn(len(ops))], Uses: []string{"V"}})
			}
		}
		return out
	}
	body := []Stmt{Call{Def: "V", Op: "open"}}
	body = append(body, gen(0)...)
	body = append(body, Opt{Body: []Stmt{Call{Op: "close", Uses: []string{"V"}}}})
	return &Program{Name: "rand", Body: body}
}

// Property: print/parse round-trips random programs.
func TestQuickPrintParse(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		p := randomProgram(rand.New(rand.NewSource(seed)))
		again, err := Parse(p.String())
		if err != nil {
			return false
		}
		return again.String() == p.String()
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: every concrete execution's per-object scenario is accepted by
// the compiled projection — the static and dynamic views of a program
// agree.
func TestQuickExecuteWithinCompiledLanguage(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		proj, err := p.Project("V").Compile()
		if err != nil {
			return false
		}
		fe := mine.FrontEnd{Seeds: []string{"open"}, FollowDerived: true}
		for i := 0; i < 5; i++ {
			events, _ := p.Execute(rng, 1, ExecOptions{})
			for _, sc := range fe.Extract(mine.Run{ID: "r", Events: events}) {
				if !proj.Accepts(sc) {
					fmt.Printf("program:\n%s\nscenario: %s\n", p, sc.Key())
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 80})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: compiled behaviours of bounded length are executable — for
// every enumerated word there exists some random execution realizing it
// is hard to check directly, so check the weaker containment both ways on
// the projection for leak-free programs: the compiled language's bounded
// enumeration is nonempty whenever execution produces events.
func TestQuickCompiledLanguageNonEmpty(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		f, err := p.Compile()
		if err != nil {
			return false
		}
		events, _ := p.Execute(rng, 1, ExecOptions{})
		words := f.Enumerate(40, 10)
		return len(events) == 0 || len(words) > 0
	}, &quick.Config{MaxCount: 80})
	if err != nil {
		t.Fatal(err)
	}
}
