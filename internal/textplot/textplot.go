// Package textplot renders small scatter/line plots as text, used by
// cmd/paper to visualize the scaling analyses (lattice growth, Cable
// advantage) directly in the terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted dataset.
type Series struct {
	// Name appears in the legend; its first rune is the plot marker.
	Name string
	// X and Y are the points (equal length).
	X, Y []float64
}

// Plot renders the series on a width×height character grid with simple
// linear axes and a legend. Points that collide keep the earlier series'
// marker. An empty or degenerate input produces a note instead of a grid.
func Plot(width, height int, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			points++
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if points == 0 {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for _, s := range series {
		marker := '*'
		for _, r := range s.Name {
			marker = r
			break
		}
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := height - 1 - int(math.Round((s.Y[i]-minY)/(maxY-minY)*float64(height-1)))
			if grid[row][col] == ' ' {
				grid[row][col] = marker
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10.3g ┌%s\n", maxY, "")
	for r, row := range grid {
		label := "          "
		if r == height-1 {
			label = fmt.Sprintf("%-10.3g", minY)
		}
		fmt.Fprintf(&b, "%s │%s\n", label, strings.TrimRight(string(row), " "))
	}
	fmt.Fprintf(&b, "%10s └%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(&b, "%10s  %-.3g%s%.3g\n", "", minX,
		strings.Repeat(" ", maxInt(1, width-len(fmt.Sprintf("%.3g", minX))-len(fmt.Sprintf("%.3g", maxX)))), maxX)
	for _, s := range series {
		marker := "*"
		for _, r := range s.Name {
			marker = string(r)
			break
		}
		fmt.Fprintf(&b, "%10s  %s = %s\n", "", marker, s.Name)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
