package textplot

import (
	"strings"
	"testing"
)

func TestPlotBasics(t *testing.T) {
	out := Plot(40, 8, Series{
		Name: "concepts",
		X:    []float64{3, 6, 12, 20},
		Y:    []float64{4, 8, 19, 31},
	})
	if !strings.Contains(out, "c") { // marker
		t.Errorf("no markers:\n%s", out)
	}
	if !strings.Contains(out, "c = concepts") {
		t.Errorf("no legend:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 8 {
		t.Errorf("plot too short (%d lines):\n%s", len(lines), out)
	}
}

func TestPlotTwoSeries(t *testing.T) {
	out := Plot(30, 6,
		Series{Name: "expert", X: []float64{1, 2, 3}, Y: []float64{5, 5, 6}},
		Series{Name: "baseline", X: []float64{1, 2, 3}, Y: []float64{10, 20, 30}},
	)
	if !strings.Contains(out, "e = expert") || !strings.Contains(out, "b = baseline") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "e") || !strings.Contains(out, "b") {
		t.Errorf("markers missing:\n%s", out)
	}
}

func TestPlotDegenerate(t *testing.T) {
	if out := Plot(30, 6); !strings.Contains(out, "no data") {
		t.Errorf("empty plot: %q", out)
	}
	// Single point and constant series must not divide by zero.
	out := Plot(30, 6, Series{Name: "one", X: []float64{5}, Y: []float64{7}})
	if !strings.Contains(out, "o") {
		t.Errorf("single point:\n%s", out)
	}
	out = Plot(30, 6, Series{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{4, 4, 4}})
	if !strings.Contains(out, "f") {
		t.Errorf("flat series:\n%s", out)
	}
}

func TestPlotClampsTinyDimensions(t *testing.T) {
	out := Plot(1, 1, Series{Name: "x", X: []float64{0, 1}, Y: []float64{0, 1}})
	if len(out) == 0 {
		t.Fatal("empty output")
	}
}

func TestPlotMarkersStayInGrid(t *testing.T) {
	// Extreme values at the corners must not panic or land outside.
	out := Plot(20, 5, Series{
		Name: "z",
		X:    []float64{-1e9, 0, 1e9},
		Y:    []float64{-1e9, 0, 1e9},
	})
	if !strings.Contains(out, "z") {
		t.Errorf("markers lost:\n%s", out)
	}
}
