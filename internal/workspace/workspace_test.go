package workspace

import (
	"strings"
	"testing"

	"repro/internal/cable"
	"repro/internal/fa"
	"repro/internal/trace"
)

func session(t *testing.T) *cable.Session {
	t.Helper()
	set := trace.NewSet(
		trace.ParseEvents("v0", "X = popen()", "pclose(X)"),
		trace.ParseEvents("v1", "X = popen()", "fread(X)", "pclose(X)"),
		trace.ParseEvents("v2", "X = fopen()", "fread(X)"),
		trace.ParseEvents("v3", "X = popen()", "pclose(X)"), // duplicate of v0
	)
	s, err := cable.NewSession(set, fa.FromTraces(set.Alphabet()))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := session(t)
	s.LabelTrace(0, cable.Good)
	s.LabelTrace(2, cable.Bad)

	var buf strings.Builder
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("Load: %v\n%s", err, buf.String())
	}
	if got.NumTraces() != s.NumTraces() {
		t.Fatalf("classes %d -> %d", s.NumTraces(), got.NumTraces())
	}
	for i := 0; i < s.NumTraces(); i++ {
		if must(got.Trace(i)).Key() != must(s.Trace(i)).Key() {
			t.Errorf("trace %d changed", i)
		}
		if must(got.LabelOf(i)) != must(s.LabelOf(i)) {
			t.Errorf("label %d: %q -> %q", i, must(s.LabelOf(i)), must(got.LabelOf(i)))
		}
		if must(got.Multiplicity(i)) != must(s.Multiplicity(i)) {
			t.Errorf("multiplicity %d changed", i)
		}
	}
	// The lattice is rebuilt identically (same reference FA).
	if got.Lattice().Len() != s.Lattice().Len() {
		t.Errorf("lattice size %d -> %d", s.Lattice().Len(), got.Lattice().Len())
	}
	// Resume labeling where we left off.
	got.LabelTraces(got.Lattice().Top(), cable.SelectUnlabeled(), cable.Good)
	if !got.Done() {
		t.Error("resumed session cannot finish labeling")
	}
}

func TestRoundTripUnlabeled(t *testing.T) {
	s := session(t)
	var buf strings.Builder
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Done() {
		t.Error("fresh session loaded as done")
	}
}

func TestLoadErrors(t *testing.T) {
	for name, in := range map[string]string{
		"empty":        "",
		"bad header":   "nope\n",
		"no sections":  "cable-workspace v1\n",
		"stray text":   "cable-workspace v1\njunk\n=== fa ===\n",
		"bad fa":       "cable-workspace v1\n=== fa ===\nbroken\n=== traces ===\n=== labels ===\n=== end ===\n",
		"bad traces":   "cable-workspace v1\n=== fa ===\nfa x\nstates 1\nstart 0\naccept 0\nend\n=== traces ===\nbroken\n=== labels ===\n=== end ===\n",
		"bad labels":   "cable-workspace v1\n=== fa ===\nfa x\nstates 1\nstart 0\naccept 0\nend\n=== traces ===\ntrace a\nend\n=== labels ===\nmalformed\n=== end ===\n",
		"missing some": "cable-workspace v1\n=== fa ===\nfa x\nstates 1\nstart 0\naccept 0\nend\n=== end ===\n",
	} {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Load succeeded, want error", name)
		}
	}
}

func TestLoadRejectsTracesOutsideRef(t *testing.T) {
	// A workspace whose FA does not accept its traces cannot build a
	// session; Load must surface the error.
	in := "cable-workspace v1\n" +
		"=== fa ===\nfa tiny\nstates 1\nstart 0\naccept 0\nedge 0 0 a()\nend\n" +
		"=== traces ===\ntrace t\n  z()\nend\n" +
		"=== labels ===\n" +
		"=== end ===\n"
	if _, err := Load(strings.NewReader(in)); err == nil {
		t.Error("Load accepted workspace with unrecognized traces")
	}
}

// must unwraps a (value, error) pair, panicking on error; these tests only
// use IDs the checked accessors accept.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}
