// Package workspace persists entire Cable debugging sessions — the trace
// multiset, the reference FA, and the labels assigned so far — in a single
// file, so a long labeling effort (the paper's larger specifications need
// hundreds of decisions without Cable and dozens with it) can be saved and
// resumed across tool invocations.
//
// The format is line-oriented and composes the existing trace, FA, and
// label serializations under section headers:
//
//	cable-workspace v1
//	=== fa ===
//	<internal/fa text format>
//	=== traces ===
//	<internal/trace text format>
//	=== labels ===
//	<label>\t<trace key> lines
//	=== end ===
//
// Neither the FA nor the trace format produces lines beginning with "===",
// so the section markers cannot collide with content.
package workspace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cable"
	"repro/internal/fa"
	"repro/internal/scanio"
	"repro/internal/trace"
)

const (
	header        = "cable-workspace v1"
	sectionFA     = "=== fa ==="
	sectionTraces = "=== traces ==="
	sectionLabels = "=== labels ==="
	sectionEnd    = "=== end ==="
)

// Save writes the session to w.
func Save(w io.Writer, s *cable.Session) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, header)
	fmt.Fprintln(bw, sectionFA)
	if err := fa.Write(bw, s.Ref()); err != nil {
		return err
	}
	fmt.Fprintln(bw, sectionTraces)
	if err := trace.Write(bw, s.Set()); err != nil {
		return err
	}
	fmt.Fprintln(bw, sectionLabels)
	var lines []string
	for i, l := range s.Labels() {
		if l != cable.Unlabeled {
			lines = append(lines, fmt.Sprintf("%s\t%s", l, s.Representatives()[i].Key()))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(bw, l)
	}
	fmt.Fprintln(bw, sectionEnd)
	return bw.Flush()
}

// Load reads a workspace and reconstructs the session, lattice included.
func Load(r io.Reader) (*cable.Session, error) {
	sc := scanio.NewScanner(r)
	lineno := 0
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != header {
		if err := sc.Err(); err != nil {
			return nil, scanio.LineError("workspace", 1, err)
		}
		return nil, scanio.LineError("workspace", 1, fmt.Errorf("missing %q header", header))
	}
	lineno++
	sections := map[string]*strings.Builder{}
	var cur *strings.Builder
	for sc.Scan() {
		lineno++
		line := sc.Text()
		switch strings.TrimSpace(line) {
		case sectionFA, sectionTraces, sectionLabels:
			cur = &strings.Builder{}
			sections[strings.TrimSpace(line)] = cur
		case sectionEnd:
			cur = nil
		default:
			if cur == nil {
				if strings.TrimSpace(line) == "" {
					continue
				}
				return nil, scanio.LineError("workspace", lineno, fmt.Errorf("content outside any section: %q", line))
			}
			cur.WriteString(line)
			cur.WriteByte('\n')
		}
	}
	if err := sc.Err(); err != nil {
		return nil, scanio.LineError("workspace", lineno+1, err)
	}
	for _, name := range []string{sectionFA, sectionTraces, sectionLabels} {
		if sections[name] == nil {
			return nil, fmt.Errorf("workspace: missing section %q", name) //cablevet:ignore errwrapline whole-input error, no line to blame
		}
	}
	ref, err := fa.Read(strings.NewReader(sections[sectionFA].String()))
	if err != nil {
		return nil, fmt.Errorf("workspace: fa section: %w", err) //cablevet:ignore errwrapline wraps the sub-reader LineError
	}
	set, err := trace.Read(strings.NewReader(sections[sectionTraces].String()))
	if err != nil {
		return nil, fmt.Errorf("workspace: traces section: %w", err) //cablevet:ignore errwrapline wraps the sub-reader LineError
	}
	session, err := cable.NewSession(set, ref)
	if err != nil {
		return nil, fmt.Errorf("workspace: %w", err) //cablevet:ignore errwrapline not a parse error
	}
	if _, err := cable.ApplyLabels(session, strings.NewReader(sections[sectionLabels].String())); err != nil {
		return nil, fmt.Errorf("workspace: labels section: %w", err) //cablevet:ignore errwrapline wraps the sub-reader LineError
	}
	return session, nil
}
