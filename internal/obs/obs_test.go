package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	m := New()
	m.Counter("c").Add(3)
	m.Counter("c").Inc()
	if got := m.Counter("c").Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	m.Gauge("g").Set(7)
	m.Gauge("g").Add(-2)
	if got := m.Gauge("g").Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	h := m.Histogram("h")
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}
	st := m.Snapshot().Hists["h"]
	if st.Count != 4 || st.Sum != 106 || st.Min != 1 || st.Max != 100 {
		t.Errorf("hist stat = %+v", st)
	}
	if st.Mean() != 26 {
		t.Errorf("mean = %d, want 26", st.Mean())
	}
	if st.P50 < 2 || st.P50 > 3 {
		t.Errorf("p50 = %d, want within [2, 3]", st.P50)
	}
	if st.P99 != 100 {
		t.Errorf("p99 = %d, want clamped to max 100", st.P99)
	}
}

func TestSameNameSameInstrument(t *testing.T) {
	m := New()
	if m.Counter("x") != m.Counter("x") {
		t.Error("same counter name resolved to distinct instruments")
	}
	if m.Histogram("x") != m.Histogram("x") {
		t.Error("same histogram name resolved to distinct instruments")
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	m := New()
	sp := m.StartSpan("phase")
	time.Sleep(time.Millisecond)
	sp.End()
	st := m.Snapshot().Hists["phase"]
	if st.Count != 1 {
		t.Fatalf("span count = %d, want 1", st.Count)
	}
	if !st.Duration {
		t.Error("span histogram not marked as duration")
	}
	if st.Sum < int64(time.Millisecond) {
		t.Errorf("span recorded %v, want >= 1ms", time.Duration(st.Sum))
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var m *Metrics
	m.Counter("c").Add(1)
	m.Gauge("g").Set(1)
	m.Histogram("h").Observe(1)
	m.StartSpan("s").End()
	if got := m.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if !m.Snapshot().Empty() {
		t.Error("nil registry snapshot not empty")
	}
	if !strings.HasPrefix(m.String(), "# obs snapshot") {
		t.Errorf("nil registry text = %q", m.String())
	}
}

func TestEnableDisableDefault(t *testing.T) {
	defer Disable()
	Disable()
	if Default() != nil {
		t.Fatal("Default() != nil after Disable")
	}
	m := Enable()
	if Default() != m {
		t.Fatal("Default() is not the enabled registry")
	}
	Count("c", 2)
	SetGauge("g", 9)
	Observe("h", 5)
	StartSpan("s").End()
	snap := m.Snapshot()
	if snap.Counters["c"] != 2 || snap.Gauges["g"] != 9 {
		t.Errorf("package-level helpers did not hit the default registry: %+v", snap)
	}
	if snap.Hists["h"].Count != 1 || snap.Hists["s"].Count != 1 {
		t.Errorf("histogram helpers did not record: %+v", snap.Hists)
	}
	Disable()
	Count("c", 100) // must be a silent no-op
	if m.Counter("c").Value() != 2 {
		t.Error("Count after Disable mutated the old registry")
	}
}

// TestDisabledPathZeroAlloc is the benchmark guard the tentpole requires:
// with no registry installed, the full instrument sequence a hot-path
// function performs (span start/end, counter add, histogram observe) must
// not allocate at all.
func TestDisabledPathZeroAlloc(t *testing.T) {
	Disable()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan("fa.executed")
		Count("fa.executed.rejected", 1)
		Observe("lattice.concepts", 42)
		SetGauge("exp.parmap.workers", 4)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled obs path allocates %.1f objects per op, want 0", allocs)
	}
}

func TestConcurrentUseIsSafe(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Counter("c").Inc()
				m.Histogram("h").Observe(int64(i%7 + 1))
				sp := m.StartSpan("s")
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	snap := m.Snapshot()
	if snap.Counters["c"] != 4000 {
		t.Errorf("concurrent counter = %d, want 4000", snap.Counters["c"])
	}
	if snap.Hists["h"].Count != 4000 {
		t.Errorf("concurrent hist count = %d, want 4000", snap.Hists["h"].Count)
	}
}

func TestWriteTextFormat(t *testing.T) {
	m := New()
	m.Counter("b.count").Add(2)
	m.Counter("a.count").Add(1)
	m.Gauge("g").Set(-3)
	m.StartSpan("phase").End()
	m.Histogram("vals").Observe(10)
	text := m.String()
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if !strings.HasPrefix(lines[0], "# obs snapshot: 2 counters, 1 gauges, 2 histograms") {
		t.Errorf("header = %q", lines[0])
	}
	// Counters sorted by name.
	if !strings.HasPrefix(lines[1], "counter a.count") || !strings.HasPrefix(lines[2], "counter b.count") {
		t.Errorf("counter lines unsorted:\n%s", text)
	}
	if !strings.Contains(text, "gauge   g") {
		t.Errorf("missing gauge line:\n%s", text)
	}
	if !strings.Contains(text, "span    phase") {
		t.Errorf("span histogram not rendered as span:\n%s", text)
	}
	if !strings.Contains(text, "hist    vals") {
		t.Errorf("value histogram not rendered as hist:\n%s", text)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := newHistogram(false)
	h.Observe(0)
	h.Observe(-5)
	st := h.stat()
	if st.Min != -5 || st.Max != 0 {
		t.Errorf("min/max = %d/%d", st.Min, st.Max)
	}
	if st.P50 > 0 {
		t.Errorf("p50 of non-positive samples = %d, want <= 0", st.P50)
	}
	big := newHistogram(false)
	big.Observe(math.MaxInt64)
	if got := big.stat().P99; got != math.MaxInt64 {
		t.Errorf("p99 of MaxInt64 sample = %d", got)
	}
}

// BenchmarkDisabledOverhead measures the no-op fast path: this is what
// every instrumented hot-path call pays when -metrics is off.
func BenchmarkDisabledOverhead(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan("fa.executed")
		Count("fa.executed.calls", 1)
		sp.End()
	}
}

// BenchmarkEnabledSpan measures the enabled path (lookup + two clock
// reads + histogram update) for comparison.
func BenchmarkEnabledSpan(b *testing.B) {
	Enable()
	defer Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := StartSpan("fa.executed")
		sp.End()
	}
}
