// Package obs is the repository's observability layer: a registry of
// named counters, gauges, and histograms, plus phase-scoped Span timers,
// all stdlib-only and safe for concurrent use.
//
// The layer is built around one rule: when observability is disabled it
// must cost nothing on the hot path. A nil *Metrics is a fully valid
// no-op registry — every method on it, and on every instrument it hands
// out, returns immediately — and the disabled path performs zero heap
// allocations (guarded by TestDisabledPathZeroAlloc and
// BenchmarkDisabledOverhead). Instrumented code therefore reads
//
//	sp := obs.StartSpan("lattice.build")
//	defer sp.End()
//
// unconditionally; whether anything is recorded depends only on whether a
// registry is installed via Enable (typically by a CLI's -metrics flag).
//
// Span names follow a "<layer>.<phase>" convention (trace.read,
// fa.compile, fa.accepts, fa.rejectsat, fa.executed, fa.executedall,
// concept.context, lattice.build, lattice.link_covers,
// cable.session, exp.prepare, exp.parmap) so a snapshot reads as a
// phase-attributed profile of the Cable pipeline; see DESIGN.md's
// Observability section.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a registry of named instruments. The same name always
// resolves to the same instrument; distinct kinds (counter vs histogram)
// live in distinct namespaces. A nil *Metrics is the no-op registry.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry, independent of the process default.
func New() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// active is the process-default registry; nil means disabled.
var active atomic.Pointer[Metrics]

// Enable installs a fresh registry as the process default and returns it.
func Enable() *Metrics {
	m := New()
	active.Store(m)
	return m
}

// Disable removes the process-default registry; Default returns nil until
// the next Enable.
func Disable() { active.Store(nil) }

// Default returns the process-default registry, or nil when observability
// is disabled. The nil result is directly usable as a no-op registry.
func Default() *Metrics { return active.Load() }

// Counter is a monotonically increasing count. A nil *Counter is a no-op.
type Counter struct{ v atomic.Int64 }

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins instantaneous measurement. A nil *Gauge is a
// no-op.
type Gauge struct {
	set atomic.Bool
	v   atomic.Int64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.set.Store(true)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
	g.set.Store(true)
}

// Value returns the gauge's current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates int64 samples: exact count/sum/min/max plus
// power-of-two buckets for approximate quantiles. Duration histograms
// (fed by Spans) carry a nanosecond unit so snapshots print them as
// durations. A nil *Histogram is a no-op.
type Histogram struct {
	duration bool // samples are nanoseconds
	count    atomic.Int64
	sum      atomic.Int64
	min      atomic.Int64
	max      atomic.Int64
	// buckets[i] counts samples v with bits.Len64(v) == i (v <= 0 in
	// bucket 0), i.e. bucket i spans [2^(i-1), 2^i).
	buckets [65]atomic.Int64
}

func newHistogram(duration bool) *Histogram {
	h := &Histogram{duration: duration}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Span is an in-flight phase timer. The zero Span (from a nil registry)
// is a no-op; End on it does nothing. Spans are values — starting and
// ending one never allocates.
type Span struct {
	h     *Histogram
	start time.Time
}

// End stops the span and records its elapsed time.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(int64(time.Since(s.start)))
	}
}

// Counter returns the named counter, creating it on first use. On a nil
// registry it returns a nil (no-op) counter.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[name]; c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. On a nil
// registry it returns a nil (no-op) gauge.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	g := m.gauges[name]
	m.mu.RUnlock()
	if g != nil {
		return g
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g = m.gauges[name]; g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named value histogram, creating it on first use.
// On a nil registry it returns a nil (no-op) histogram.
func (m *Metrics) Histogram(name string) *Histogram { return m.histogram(name, false) }

func (m *Metrics) histogram(name string, duration bool) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	h := m.hists[name]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h = m.hists[name]; h == nil {
		h = newHistogram(duration)
		m.hists[name] = h
	}
	return h
}

// StartSpan starts a phase timer whose elapsed time lands in the named
// duration histogram when End is called. On a nil registry it returns the
// zero (no-op) Span without reading the clock.
func (m *Metrics) StartSpan(name string) Span {
	if m == nil {
		return Span{}
	}
	return Span{h: m.histogram(name, true), start: time.Now()}
}

// Package-level conveniences against the process-default registry. All of
// them are allocation-free no-ops while observability is disabled.

// StartSpan starts a phase timer on the default registry.
func StartSpan(name string) Span { return Default().StartSpan(name) }

// Count adds n to the named counter on the default registry.
func Count(name string, n int64) { Default().Counter(name).Add(n) }

// SetGauge sets the named gauge on the default registry.
func SetGauge(name string, v int64) { Default().Gauge(name).Set(v) }

// Observe records a sample in the named histogram on the default registry.
func Observe(name string, v int64) { Default().Histogram(name).Observe(v) }

// HistStat is one histogram's summary in a Snapshot. Quantiles are
// approximate (power-of-two bucket upper bounds, clamped to the exact
// max); Count/Sum/Min/Max are exact.
type HistStat struct {
	Duration             bool
	Count, Sum, Min, Max int64
	P50, P90, P99        int64
}

// Mean returns the arithmetic mean sample, or 0 for an empty histogram.
func (h HistStat) Mean() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]HistStat
}

// Empty reports whether the snapshot holds no instruments at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Hists) == 0
}

// Snapshot copies the registry's current state. A nil registry yields the
// empty snapshot.
func (m *Metrics) Snapshot() Snapshot {
	out := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistStat{},
	}
	if m == nil {
		return out
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for name, c := range m.counters {
		out.Counters[name] = c.Value()
	}
	for name, g := range m.gauges {
		out.Gauges[name] = g.Value()
	}
	for name, h := range m.hists {
		out.Hists[name] = h.stat()
	}
	return out
}

func (h *Histogram) stat() HistStat {
	st := HistStat{
		Duration: h.duration,
		Count:    h.count.Load(),
		Sum:      h.sum.Load(),
	}
	if st.Count == 0 {
		return st
	}
	st.Min = h.min.Load()
	st.Max = h.max.Load()
	st.P50 = h.quantile(0.50, st.Count, st.Max)
	st.P90 = h.quantile(0.90, st.Count, st.Max)
	st.P99 = h.quantile(0.99, st.Count, st.Max)
	return st
}

// quantile approximates the q-quantile as the upper bound of the first
// bucket whose cumulative count reaches q·total, clamped to the exact max.
func (h *Histogram) quantile(q float64, total, max int64) int64 {
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			var upper int64
			if i == 0 {
				upper = 0
			} else if i >= 63 {
				upper = math.MaxInt64
			} else {
				upper = int64(1)<<uint(i) - 1
			}
			if upper > max {
				upper = max
			}
			return upper
		}
	}
	return max
}

// WriteText renders a sorted, line-oriented snapshot:
//
//	# obs snapshot: <counts>
//	counter <name> <value>
//	gauge   <name> <value>
//	span    <name> count=… sum=… min=… mean=… p50~… p90~… max=…
//	hist    <name> count=… sum=… min=… mean=… p50~… p90~… max=…
//
// "span" lines are duration histograms (values printed as durations);
// "hist" lines are plain value histograms. A nil registry writes only the
// header line.
func (m *Metrics) WriteText(w io.Writer) error {
	snap := m.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "# obs snapshot: %d counters, %d gauges, %d histograms\n",
		len(snap.Counters), len(snap.Gauges), len(snap.Hists))
	for _, name := range sortedKeys(snap.Counters) {
		fmt.Fprintf(&b, "counter %-36s %d\n", name, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		fmt.Fprintf(&b, "gauge   %-36s %d\n", name, snap.Gauges[name])
	}
	for _, name := range sortedKeys(snap.Hists) {
		st := snap.Hists[name]
		kind := "hist   "
		if st.Duration {
			kind = "span   "
		}
		if st.Count == 0 {
			fmt.Fprintf(&b, "%s %-36s count=0\n", kind, name)
			continue
		}
		fmt.Fprintf(&b, "%s %-36s count=%d sum=%s min=%s mean=%s p50~%s p90~%s max=%s\n",
			kind, name, st.Count,
			fmtVal(st.Sum, st.Duration), fmtVal(st.Min, st.Duration),
			fmtVal(st.Mean(), st.Duration), fmtVal(st.P50, st.Duration),
			fmtVal(st.P90, st.Duration), fmtVal(st.Max, st.Duration))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the snapshot text (for logs and tests).
func (m *Metrics) String() string {
	var b strings.Builder
	m.WriteText(&b)
	return b.String()
}

func fmtVal(v int64, duration bool) string {
	if duration {
		d := time.Duration(v)
		switch {
		case d >= time.Second:
			d = d.Round(time.Millisecond)
		case d >= time.Millisecond:
			d = d.Round(time.Microsecond)
		}
		return d.String()
	}
	return fmt.Sprintf("%d", v)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
