package obs

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// CLIConfig describes the observability switches the cmd/ mains share:
// -metrics (enable the registry, dump a text snapshot on exit),
// -cpuprofile, and -memprofile.
type CLIConfig struct {
	// Metrics enables the process-default registry and dumps a text
	// snapshot to MetricsOut when the returned stop function runs.
	Metrics bool
	// MetricsOut receives the snapshot; nil means os.Stderr, keeping
	// stdout clean for the tool's own output.
	MetricsOut io.Writer
	// CPUProfile, when non-empty, is the file to write a pprof CPU
	// profile to.
	CPUProfile string
	// MemProfile, when non-empty, is the file to write a pprof heap
	// profile to (captured at stop, after a GC).
	MemProfile string
}

// SetupCLI wires the shared observability flags and returns a stop
// function that must run before the process exits: it stops the CPU
// profile, writes the heap profile, dumps the metrics snapshot, and
// disables the registry. stop is idempotent, so it is safe to both defer
// it and call it explicitly before an os.Exit path.
func SetupCLI(cfg CLIConfig) (stop func(), err error) {
	out := cfg.MetricsOut
	if out == nil {
		out = os.Stderr
	}
	var m *Metrics
	if cfg.Metrics {
		m = Enable()
	}
	var cpuFile *os.File
	if cfg.CPUProfile != "" {
		cpuFile, err = os.Create(cfg.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "obs: cpuprofile:", err)
			}
		}
		if cfg.MemProfile != "" {
			f, err := os.Create(cfg.MemProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "obs: memprofile:", err)
			} else {
				runtime.GC() // materialize up-to-date heap statistics
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "obs: memprofile:", err)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "obs: memprofile:", err)
				}
			}
		}
		if m != nil {
			if err := m.WriteText(out); err != nil {
				fmt.Fprintln(os.Stderr, "obs: snapshot:", err)
			}
			Disable()
		}
	}, nil
}
