package learn_test

import (
	"fmt"

	"repro/internal/learn"
	"repro/internal/trace"
)

// Example learns a specification FA from scenario traces with the
// sk-strings method and shows that merging generalizes repetition.
func Example() {
	traces := []trace.Trace{
		trace.ParseEvents("", "X = fopen()", "fclose(X)"),
		trace.ParseEvents("", "X = fopen()", "fread(X)", "fclose(X)"),
		trace.ParseEvents("", "X = fopen()", "fread(X)", "fread(X)", "fclose(X)"),
	}
	res := learn.DefaultLearner.MustLearn("stdio", traces)

	unseen := trace.ParseEvents("", "X = fopen()", "fread(X)", "fread(X)", "fread(X)", "fclose(X)")
	fmt.Println("generalizes unseen repetition:", res.FA.Accepts(unseen))

	// The stochastic reading scores traces by training frequency.
	p, _ := res.Probability(traces[0])
	fmt.Println("P(open;close) > 0:", p > 0)

	// Coring drops rare transitions — the old, blunt error-removal knob.
	cored := learn.Core(res, 2)
	fmt.Println("cored keeps the common path:",
		cored.Accepts(trace.ParseEvents("", "X = fopen()", "fread(X)", "fclose(X)")))
	// Output:
	// generalizes unseen repetition: true
	// P(open;close) > 0: true
	// cored keeps the common path: true
}

// ExampleKTails contrasts the frequency-blind k-tails learner.
func ExampleKTails() {
	traces := []trace.Trace{
		trace.ParseEvents("", "a()", "z()"),
		trace.ParseEvents("", "a()", "a()", "z()"),
		trace.ParseEvents("", "a()", "a()", "a()", "z()"),
	}
	res := learn.KTails{K: 1}.MustLearn("loop", traces)
	long := trace.ParseEvents("", "a()", "a()", "a()", "a()", "a()", "z()")
	fmt.Println("k-tails folds the loop:", res.FA.Accepts(long))
	// Output:
	// k-tails folds the loop: true
}
