package learn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func tracesFromSeed(seed int64) []trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	ops := []string{"a()", "b()", "c()", "d()"}
	n := 1 + rng.Intn(12)
	out := make([]trace.Trace, 0, n)
	for i := 0; i < n; i++ {
		var evs []string
		for j := 0; j < rng.Intn(6); j++ {
			evs = append(evs, ops[rng.Intn(len(ops))])
		}
		out = append(out, tr(evs...))
	}
	return out
}

// Property: every learner accepts its training set and outputs a
// deterministic automaton — for sk-strings (AND and OR), k-tails, and the
// raw PTA.
func TestQuickLearnersAcceptTraining(t *testing.T) {
	learners := map[string]func([]trace.Trace) (*Result, error){
		"sk-AND": func(ts []trace.Trace) (*Result, error) {
			return Learner{K: 2, S: 0.5, Agreement: And}.Learn("x", ts)
		},
		"sk-OR": func(ts []trace.Trace) (*Result, error) {
			return Learner{K: 2, S: 0.5, Agreement: Or}.Learn("x", ts)
		},
		"ktails": func(ts []trace.Trace) (*Result, error) {
			return KTails{K: 2}.Learn("x", ts)
		},
		"pta": func(ts []trace.Trace) (*Result, error) {
			return PTA("x", ts)
		},
	}
	for name, learn := range learners {
		err := quick.Check(func(seed int64) bool {
			traces := tracesFromSeed(seed)
			res, err := learn(traces)
			if err != nil {
				return false
			}
			if !res.FA.IsDeterministic() {
				return false
			}
			for _, tc := range traces {
				if !res.FA.Accepts(tc) {
					return false
				}
			}
			return true
		}, &quick.Config{MaxCount: 80})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// Property: the stochastic reading assigns every training trace positive
// probability, and probability never exceeds 1.
func TestQuickProbabilityBounds(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		traces := tracesFromSeed(seed)
		res, err := DefaultLearner.Learn("x", traces)
		if err != nil {
			return false
		}
		for _, tc := range traces {
			p, ok := res.Probability(tc)
			if !ok || p <= 0 || p > 1+1e-12 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 80})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: coring never grows the language, and threshold 0/1 keeps every
// training trace.
func TestQuickCoringMonotone(t *testing.T) {
	err := quick.Check(func(seed int64, threshold uint8) bool {
		traces := tracesFromSeed(seed)
		res, err := PTA("x", traces)
		if err != nil {
			return false
		}
		cored := Core(res, int(threshold%5))
		for _, tc := range cored.Enumerate(6, 100) {
			if !res.FA.Accepts(tc) {
				return false // coring invented behaviour
			}
		}
		keepAll := Core(res, 1)
		for _, tc := range traces {
			if !keepAll.Accepts(tc) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}
