package learn

import (
	"repro/internal/fa"
	"repro/internal/trace"
)

// MustLearn is Learn that panics on error; learner errors can only arise
// from internal invariant violations, so examples and summaries use this
// form.
func (l Learner) MustLearn(name string, traces []trace.Trace) *Result {
	r, err := l.Learn(name, traces)
	if err != nil {
		panic(err)
	}
	return r
}

// Core drops every transition whose training frequency is below minCount
// and trims the result. This is "coring", the naive mechanism for removing
// errors from mined specifications that the paper's earlier work used and
// that concept-analysis debugging replaces: erroneous traces are assumed to
// be rare, so rarely-exercised transitions are assumed to be errors. The
// paper notes its flaw — "some buggy traces occurred so frequently that
// suppressing them would also suppress valid traces" — which the XtFree-style
// workloads in internal/xtrace reproduce.
func Core(r *Result, minCount int) *fa.FA {
	f := r.FA
	b := fa.NewBuilder(f.Name() + "-cored")
	b.States(f.NumStates())
	for _, s := range f.StartStates() {
		b.Start(s)
	}
	for _, s := range f.AcceptStates() {
		b.Accept(s)
	}
	for i, t := range f.Transitions() {
		if r.TransCount[i] >= minCount {
			b.Edge(t.From, t.Label, t.To)
		}
	}
	return b.MustBuild().Trim()
}

// PTA returns the prefix-tree acceptor of the traces as an automaton with
// frequencies, without any merging: the maximally specific FA that accepts
// exactly the training multiset's underlying set. Summaries use it when the
// user asks for an exact view, and tests use it as the no-generalization
// baseline.
func PTA(name string, traces []trace.Trace) (*Result, error) {
	return buildPTA(traces).freeze(name)
}
