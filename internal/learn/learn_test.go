package learn

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func tr(events ...string) trace.Trace { return trace.ParseEvents("", events...) }

// figure8 returns the good scenario traces of Figure 8: fopen/fclose and
// popen/pclose protocols with varying numbers of reads and writes.
func figure8() []trace.Trace {
	return []trace.Trace{
		tr("X = fopen()", "fclose(X)"),
		tr("X = fopen()", "fread(X)", "fclose(X)"),
		tr("X = fopen()", "fread(X)", "fread(X)", "fclose(X)"),
		tr("X = fopen()", "fwrite(X)", "fclose(X)"),
		tr("X = fopen()", "fread(X)", "fwrite(X)", "fclose(X)"),
		tr("X = popen()", "pclose(X)"),
		tr("X = popen()", "fread(X)", "pclose(X)"),
		tr("X = popen()", "fwrite(X)", "fread(X)", "pclose(X)"),
		tr("X = popen()", "fwrite(X)", "pclose(X)"),
	}
}

func TestPTAExactness(t *testing.T) {
	traces := figure8()
	res, err := PTA("pta", traces)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range traces {
		if !res.FA.Accepts(tc) {
			t.Errorf("PTA rejects training trace %q", tc.Key())
		}
	}
	// PTA must not accept an unseen combination.
	if res.FA.Accepts(tr("X = popen()", "fclose(X)")) {
		t.Error("PTA accepts unseen trace")
	}
	if res.FA.Accepts(tr("X = fopen()")) {
		t.Error("PTA accepts unseen prefix")
	}
	if !res.FA.IsDeterministic() {
		t.Error("PTA not deterministic")
	}
}

func TestPTACounts(t *testing.T) {
	traces := []trace.Trace{
		tr("a()", "b()"),
		tr("a()", "b()"),
		tr("a()", "c()"),
	}
	res, err := PTA("counts", traces)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]int{}
	for i, tran := range res.FA.Transitions() {
		byLabel[tran.Label.String()] = res.TransCount[i]
	}
	if byLabel["a()"] != 3 || byLabel["b()"] != 2 || byLabel["c()"] != 1 {
		t.Errorf("counts = %v", byLabel)
	}
	total := 0
	for _, n := range res.AcceptCount {
		total += n
	}
	if total != 3 {
		t.Errorf("accept counts sum = %d", total)
	}
}

func TestLearnAcceptsTrainingSet(t *testing.T) {
	for _, cfg := range []Learner{
		DefaultLearner,
		{K: 1, S: 0.9, Agreement: And},
		{K: 3, S: 0.3, Agreement: Or},
	} {
		res, err := cfg.Learn("spec", figure8())
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range figure8() {
			if !res.FA.Accepts(tc) {
				t.Errorf("cfg %+v: learned FA rejects training trace %q", cfg, tc.Key())
			}
		}
	}
}

func TestLearnGeneralizes(t *testing.T) {
	// Merging loops the repeated reads: an unseen number of freads should be
	// accepted by the learned FA but not by the PTA.
	traces := []trace.Trace{
		tr("X = fopen()", "fclose(X)"),
		tr("X = fopen()", "fread(X)", "fclose(X)"),
		tr("X = fopen()", "fread(X)", "fread(X)", "fclose(X)"),
		tr("X = fopen()", "fread(X)", "fread(X)", "fread(X)", "fclose(X)"),
	}
	res := DefaultLearner.MustLearn("gen", traces)
	unseen := tr("X = fopen()", "fread(X)", "fread(X)", "fread(X)", "fread(X)", "fread(X)", "fclose(X)")
	if !res.FA.Accepts(unseen) {
		t.Error("learned FA failed to generalize repeated reads")
	}
	pta, _ := PTA("pta", traces)
	if pta.FA.Accepts(unseen) {
		t.Error("PTA unexpectedly accepts unseen trace")
	}
	if res.FA.NumStates() >= pta.FA.NumStates() {
		t.Errorf("learner did not shrink the PTA: %d vs %d states", res.FA.NumStates(), pta.FA.NumStates())
	}
}

func TestLearnEmptyAndSingleton(t *testing.T) {
	res, err := DefaultLearner.Learn("empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FA.Accepts(tr()) || res.FA.Accepts(tr("a()")) {
		t.Error("FA learned from nothing accepts something")
	}
	res, err = DefaultLearner.Learn("one", []trace.Trace{tr("a()", "b()")})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FA.Accepts(tr("a()", "b()")) {
		t.Error("singleton training trace rejected")
	}
}

func TestLearnEmptyTrace(t *testing.T) {
	res := DefaultLearner.MustLearn("eps", []trace.Trace{tr(), tr("a()")})
	if !res.FA.Accepts(tr()) || !res.FA.Accepts(tr("a()")) {
		t.Error("empty trace not accepted after learning")
	}
}

func TestMaxMerges(t *testing.T) {
	traces := figure8()
	unlimited := DefaultLearner.MustLearn("u", traces)
	capped := Learner{K: 2, S: 0.5, Agreement: And, MaxMerges: 1}.MustLearn("c", traces)
	if capped.FA.NumStates() < unlimited.FA.NumStates() {
		t.Errorf("capped learner merged more than unlimited: %d < %d",
			capped.FA.NumStates(), unlimited.FA.NumStates())
	}
}

func TestOrMergesAtLeastAsMuchAsAnd(t *testing.T) {
	traces := figure8()
	and := Learner{K: 2, S: 0.5, Agreement: And}.MustLearn("and", traces)
	or := Learner{K: 2, S: 0.5, Agreement: Or}.MustLearn("or", traces)
	if or.FA.NumStates() > and.FA.NumStates() {
		t.Errorf("OR (%d states) merged less than AND (%d states)",
			or.FA.NumStates(), and.FA.NumStates())
	}
}

func TestCore(t *testing.T) {
	// 10 good traces and 1 rare erroneous one: coring at threshold 2 removes
	// the error path.
	var traces []trace.Trace
	for i := 0; i < 10; i++ {
		traces = append(traces, tr("X = fopen()", "fclose(X)"))
	}
	traces = append(traces, tr("X = popen()", "fclose(X)"))
	res, err := PTA("cored", traces)
	if err != nil {
		t.Fatal(err)
	}
	cored := Core(res, 2)
	if !cored.Accepts(tr("X = fopen()", "fclose(X)")) {
		t.Error("coring removed the frequent good path")
	}
	if cored.Accepts(tr("X = popen()", "fclose(X)")) {
		t.Error("coring kept the rare erroneous path")
	}
}

func TestCoreFailsOnFrequentErrors(t *testing.T) {
	// The documented flaw: when errors are frequent, coring cannot separate
	// them from good behaviour at any threshold that keeps the good paths.
	var traces []trace.Trace
	for i := 0; i < 10; i++ {
		traces = append(traces, tr("X = fopen()", "fclose(X)"))
		traces = append(traces, tr("X = popen()", "fclose(X)")) // frequent bug
	}
	res, err := PTA("freq", traces)
	if err != nil {
		t.Fatal(err)
	}
	cored := Core(res, 5)
	if !cored.Accepts(tr("X = popen()", "fclose(X)")) {
		t.Error("expected frequent erroneous trace to survive coring")
	}
}

func TestLearnedFADeterministic(t *testing.T) {
	// Folding must leave the automaton deterministic.
	rng := rand.New(rand.NewSource(3))
	ops := []string{"a()", "b()", "c()"}
	for iter := 0; iter < 50; iter++ {
		var traces []trace.Trace
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			var evs []string
			ln := rng.Intn(6)
			for j := 0; j < ln; j++ {
				evs = append(evs, ops[rng.Intn(len(ops))])
			}
			traces = append(traces, tr(evs...))
		}
		res := DefaultLearner.MustLearn("rnd", traces)
		if !res.FA.IsDeterministic() {
			t.Fatalf("iter %d: learned FA nondeterministic:\n%s", iter, res.FA)
		}
		for _, tc := range traces {
			if !res.FA.Accepts(tc) {
				t.Fatalf("iter %d: training trace %q rejected", iter, tc.Key())
			}
		}
	}
}

func TestLearnedLanguageContainsPTA(t *testing.T) {
	// Generalization only: L(PTA) ⊆ L(learned).
	traces := figure8()
	res := DefaultLearner.MustLearn("gen", traces)
	ptaRes, _ := PTA("pta", traces)
	for _, tc := range ptaRes.FA.Enumerate(6, 200) {
		if !res.FA.Accepts(tc) {
			t.Errorf("learned FA rejects PTA sentence %q", tc.Key())
		}
	}
}
