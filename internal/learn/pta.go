// Package learn implements the stochastic finite-automaton learner that
// Strauss's back end and Cable's "Show FA" summary use: Raman and Patrick's
// sk-strings method, plus the "coring" postprocessing step (dropping
// low-frequency transitions) that the paper cites as the naive
// error-removal mechanism of the earlier specification-mining work.
//
// The learner builds a frequency-annotated prefix-tree acceptor (PTA) from a
// multiset of traces and then greedily merges states whose most probable
// k-strings agree, folding any nondeterminism the merge introduces by
// recursively merging target states. Merging only ever grows the language,
// so the learned automaton accepts every training trace.
package learn

import (
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/fa"
	"repro/internal/trace"
)

// pta is a mutable automaton under state merging. States are identified by
// dense indices into nodes; union-find tracks merged classes. Edges carry
// traversal counts, and each state counts the traces that end there.
type pta struct {
	uf    []int
	nodes []*mnode
}

type mnode struct {
	// out maps a label rendering to the outgoing edge for that label. After
	// folding, each class has at most one edge per label.
	out map[string]*medge
	// end counts traces ending at this state.
	end int
	// through counts traces passing through or ending at this state.
	through int
}

type medge struct {
	label event.Event
	to    int
	count int
}

// buildPTA constructs the prefix-tree acceptor of the traces with
// multiplicities.
func buildPTA(traces []trace.Trace) *pta {
	p := &pta{}
	root := p.newNode()
	for _, t := range traces {
		cur := root
		p.nodes[cur].through++
		for _, e := range t.Events {
			key := e.String()
			edge, ok := p.nodes[cur].out[key]
			if !ok {
				next := p.newNode()
				edge = &medge{label: e, to: next}
				p.nodes[cur].out[key] = edge
			}
			edge.count++
			cur = edge.to
			p.nodes[cur].through++
		}
		p.nodes[cur].end++
	}
	return p
}

func (p *pta) newNode() int {
	id := len(p.nodes)
	p.nodes = append(p.nodes, &mnode{out: map[string]*medge{}})
	p.uf = append(p.uf, id)
	return id
}

func (p *pta) find(x int) int {
	for p.uf[x] != x {
		p.uf[x] = p.uf[p.uf[x]]
		x = p.uf[x]
	}
	return x
}

// merge unions the classes of a and b and folds determinism: edges with the
// same label out of the merged class have their targets merged recursively.
func (p *pta) merge(a, b int) {
	a, b = p.find(a), p.find(b)
	if a == b {
		return
	}
	// Keep the smaller index as representative for determinism.
	if b < a {
		a, b = b, a
	}
	p.uf[b] = a
	na, nb := p.nodes[a], p.nodes[b]
	na.end += nb.end
	na.through += nb.through
	for key, eb := range nb.out {
		if ea, ok := na.out[key]; ok {
			ea.count += eb.count
			p.merge(ea.to, eb.to)
			// Re-resolve a: the recursive merge may have merged a itself
			// into an earlier class.
			a = p.find(a)
			na = p.nodes[a]
		} else {
			na.out[key] = eb
		}
	}
	nb.out = nil
}

// states returns the live class representatives in BFS order from the root
// class, following edges with labels in sorted order.
func (p *pta) states() []int {
	root := p.find(0)
	seen := map[int]bool{root: true}
	order := []int{root}
	for i := 0; i < len(order); i++ {
		s := order[i]
		for _, key := range sortedKeys(p.nodes[s].out) {
			to := p.find(p.nodes[s].out[key].to)
			if !seen[to] {
				seen[to] = true
				order = append(order, to)
			}
		}
	}
	return order
}

func sortedKeys(m map[string]*medge) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// outTotal returns the total outgoing weight of a class: edge counts plus
// the end count (ending is one of the "next moves" of the stochastic
// automaton).
func (p *pta) outTotal(s int) int {
	n := p.nodes[s]
	total := n.end
	for _, e := range n.out {
		total += e.count
	}
	return total
}

// Result is a learned automaton together with the transition and acceptance
// frequencies observed in training, used by coring and by summaries.
type Result struct {
	// FA is the learned automaton.
	FA *fa.FA
	// TransCount[i] is the number of training events that traversed
	// FA.Transition(i).
	TransCount []int
	// AcceptCount[s] is the number of training traces ending at state s.
	AcceptCount map[fa.State]int
}

// freeze converts the merged PTA into an immutable automaton with counts.
func (p *pta) freeze(name string) (*Result, error) {
	order := p.states()
	number := map[int]fa.State{}
	b := fa.NewBuilder(name)
	for _, s := range order {
		number[s] = b.State()
	}
	res := &Result{AcceptCount: map[fa.State]int{}}
	b.Start(number[p.find(0)])
	for _, s := range order {
		if p.nodes[s].end > 0 {
			b.Accept(number[s])
			res.AcceptCount[number[s]] = p.nodes[s].end
		}
	}
	for _, s := range order {
		n := p.nodes[s]
		for _, key := range sortedKeys(n.out) {
			e := n.out[key]
			b.Edge(number[s], e.label, number[p.find(e.to)])
			res.TransCount = append(res.TransCount, e.count)
		}
	}
	f, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("learn: %v", err)
	}
	res.FA = f
	if len(res.TransCount) != f.NumTransitions() {
		// Duplicate edges cannot arise: after folding, each class has at
		// most one edge per label, and classes are distinct states.
		return nil, fmt.Errorf("learn: internal error: %d counts for %d transitions",
			len(res.TransCount), f.NumTransitions())
	}
	return res, nil
}
