package learn

import (
	"math"

	"repro/internal/fa"
	"repro/internal/trace"
)

// This file gives learned automata their stochastic reading: the sk-strings
// method treats an FA as a probabilistic model in which each state's next
// move (an outgoing transition or stopping) is drawn in proportion to its
// training frequency. The probability of a trace is the product of its
// move probabilities; internal/rank uses it to order violation reports by
// surprise.

// Probability returns the probability of the trace under the stochastic
// reading of the learned automaton, and ok=false if the trace leaves the
// automaton (probability zero). The learned FA is deterministic, so the
// trace has at most one run.
func (r *Result) Probability(t trace.Trace) (float64, bool) {
	starts := r.FA.StartStates()
	if len(starts) != 1 {
		return 0, false
	}
	// Index transitions by (state, label).
	next := r.transIndex()
	p := 1.0
	cur := starts[0]
	for _, e := range t.Events {
		ti, ok := next[stateLabel{cur, e.String()}]
		if !ok {
			return 0, false
		}
		total := r.outWeight(cur)
		if total == 0 {
			return 0, false
		}
		p *= float64(r.TransCount[ti]) / float64(total)
		cur = r.FA.Transition(ti).To
	}
	end := r.AcceptCount[cur]
	if end == 0 {
		return 0, false
	}
	total := r.outWeight(cur)
	if total == 0 {
		return 0, false
	}
	return p * float64(end) / float64(total), true
}

// SurprisePerEvent returns the per-event negative log2-likelihood of the
// trace — a length-normalized anomaly score. Traces outside the model get
// ok=false; callers typically treat those as maximally surprising.
func (r *Result) SurprisePerEvent(t trace.Trace) (float64, bool) {
	p, ok := r.Probability(t)
	if !ok || p <= 0 {
		return math.Inf(1), false
	}
	n := float64(t.Len() + 1) // +1 for the stopping decision
	return -math.Log2(p) / n, true
}

type stateLabel struct {
	state fa.State
	label string
}

func (r *Result) transIndex() map[stateLabel]int {
	idx := make(map[stateLabel]int, r.FA.NumTransitions())
	for i, tr := range r.FA.Transitions() {
		idx[stateLabel{tr.From, tr.Label.String()}] = i
	}
	return idx
}

// outWeight is the total outgoing weight of a state: transition counts
// plus the stop count.
func (r *Result) outWeight(s fa.State) int {
	total := r.AcceptCount[s]
	for i, tr := range r.FA.Transitions() {
		if tr.From == s {
			total += r.TransCount[i]
		}
	}
	return total
}
