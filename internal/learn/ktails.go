package learn

import (
	"sort"
	"strings"

	"repro/internal/trace"
)

// KTails implements the classic Biermann–Feldman k-tails learner as an
// alternative to sk-strings for Step 1a of the debugging method ("by
// varying parameters of the FA-learning algorithm, the author can choose
// to use a large FA that makes very fine distinctions among traces or a
// smaller FA that makes coarser distinctions"). Two PTA states are merged
// iff their k-tails — the exact sets of suffixes of length ≤ k that lead
// to acceptance — are equal. Unlike sk-strings, the criterion ignores
// frequencies, so k-tails is the better reference when the workload's
// sampling proportions are unreliable; k controls the coarseness.
type KTails struct {
	// K is the tail depth; larger K merges less. K ≤ 0 defaults to 2.
	K int
}

// Learn builds the PTA and merges k-tail-equivalent states until fixpoint.
func (l KTails) Learn(name string, traces []trace.Trace) (*Result, error) {
	k := l.K
	if k <= 0 {
		k = 2
	}
	p := buildPTA(traces)
	for {
		merged := false
		// Group current states by their k-tail signature and merge each
		// group; recompute until no group has two members (signatures
		// change as merges fold the automaton).
		states := p.states()
		groups := map[string][]int{}
		for _, s := range states {
			sig := p.ktailSignature(s, k)
			groups[sig] = append(groups[sig], s)
		}
		keys := make([]string, 0, len(groups))
		for key := range groups {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			group := groups[key]
			if len(group) < 2 {
				continue
			}
			base := p.find(group[0])
			for _, other := range group[1:] {
				if p.find(other) != base {
					p.merge(base, other)
					base = p.find(base)
					merged = true
				}
			}
		}
		if !merged {
			break
		}
	}
	return p.freeze(name)
}

// MustLearn is Learn that panics on error.
func (l KTails) MustLearn(name string, traces []trace.Trace) *Result {
	r, err := l.Learn(name, traces)
	if err != nil {
		panic(err)
	}
	return r
}

// ktailSignature renders the set of accepting suffixes of length ≤ k from
// state s, canonically ordered. The end marker distinguishes "can stop
// here" from "has continuations".
func (p *pta) ktailSignature(s int, k int) string {
	var tails []string
	var walk func(state int, depth int, prefix string)
	walk = func(state int, depth int, prefix string) {
		state = p.find(state)
		n := p.nodes[state]
		if n.end > 0 {
			tails = append(tails, prefix+endMark)
		}
		if depth == k {
			return
		}
		for _, key := range sortedKeys(n.out) {
			walk(n.out[key].to, depth+1, prefix+key+"\x00")
		}
	}
	walk(s, 0, "")
	sort.Strings(tails)
	return strings.Join(tails, "\x01")
}
