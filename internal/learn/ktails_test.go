package learn

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func TestKTailsAcceptsTrainingSet(t *testing.T) {
	for _, k := range []int{0, 1, 2, 3} {
		res, err := KTails{K: k}.Learn("kt", figure8())
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range figure8() {
			if !res.FA.Accepts(tc) {
				t.Errorf("k=%d: rejects training trace %q", k, tc.Key())
			}
		}
		if !res.FA.IsDeterministic() {
			t.Errorf("k=%d: nondeterministic result", k)
		}
	}
}

func TestKTailsGeneralizesLoops(t *testing.T) {
	traces := []trace.Trace{
		tr("a()", "z()"),
		tr("a()", "a()", "z()"),
		tr("a()", "a()", "a()", "z()"),
		tr("a()", "a()", "a()", "a()", "z()"),
	}
	res := KTails{K: 1}.MustLearn("loop", traces)
	if !res.FA.Accepts(tr("a()", "a()", "a()", "a()", "a()", "a()", "z()")) {
		t.Error("k-tails failed to fold the loop")
	}
}

func TestKTailsCoarsensWithSmallerK(t *testing.T) {
	// Larger k distinguishes more futures, so the automaton cannot shrink
	// when k grows.
	traces := figure8()
	prev := -1
	for _, k := range []int{1, 2, 3, 4} {
		res := KTails{K: k}.MustLearn("kt", traces)
		if prev >= 0 && res.FA.NumStates() < prev {
			t.Errorf("k=%d gave fewer states (%d) than k-1 (%d)", k, res.FA.NumStates(), prev)
		}
		prev = res.FA.NumStates()
	}
}

func TestKTailsExactEquivalenceMergesIdenticalFutures(t *testing.T) {
	// Two branches with identical futures merge even when frequencies
	// differ wildly — the frequency-blindness that distinguishes k-tails
	// from sk-strings.
	var traces []trace.Trace
	for i := 0; i < 50; i++ {
		traces = append(traces, tr("a()", "x()", "end()"))
	}
	traces = append(traces, tr("b()", "x()", "end()")) // rare branch
	res := KTails{K: 3}.MustLearn("merge", traces)
	// The states after a() and after b() have identical 3-tails
	// (x;end$), so they merge: the automaton has one shared suffix path.
	// Count states: start, merged mid, after-x, accept = 4.
	if res.FA.NumStates() != 4 {
		t.Errorf("states = %d, want 4 (shared suffix)", res.FA.NumStates())
	}
}

func TestKTailsDeterministicOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ops := []string{"a()", "b()", "c()"}
	for iter := 0; iter < 30; iter++ {
		var traces []trace.Trace
		for i := 0; i < 1+rng.Intn(10); i++ {
			var evs []string
			for j := 0; j < rng.Intn(5); j++ {
				evs = append(evs, ops[rng.Intn(len(ops))])
			}
			traces = append(traces, tr(evs...))
		}
		a := KTails{K: 2}.MustLearn("x", traces)
		b := KTails{K: 2}.MustLearn("x", traces)
		if a.FA.String() != b.FA.String() {
			t.Fatalf("iter %d: nondeterministic learner output", iter)
		}
		for _, tc := range traces {
			if !a.FA.Accepts(tc) {
				t.Fatalf("iter %d: training trace rejected", iter)
			}
		}
	}
}
