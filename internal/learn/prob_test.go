package learn

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func TestProbabilityPTA(t *testing.T) {
	// 3 traces: a;b (x2) and a;c (x1). Under the PTA: P(a;b) = 2/3,
	// P(a;c) = 1/3.
	traces := []trace.Trace{
		tr("a()", "b()"),
		tr("a()", "b()"),
		tr("a()", "c()"),
	}
	res, err := PTA("p", traces)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := res.Probability(tr("a()", "b()"))
	if !ok || math.Abs(p-2.0/3.0) > 1e-12 {
		t.Errorf("P(a;b) = %v, %v; want 2/3", p, ok)
	}
	p, ok = res.Probability(tr("a()", "c()"))
	if !ok || math.Abs(p-1.0/3.0) > 1e-12 {
		t.Errorf("P(a;c) = %v, %v; want 1/3", p, ok)
	}
	if _, ok := res.Probability(tr("a()")); ok {
		t.Error("prefix has nonzero stop probability in PTA without endings there")
	}
	if _, ok := res.Probability(tr("z()")); ok {
		t.Error("out-of-model trace has probability")
	}
}

func TestProbabilitiesSumOverTrainingSupport(t *testing.T) {
	// Summing P over the distinct training traces of a PTA gives exactly 1
	// (the stochastic automaton's mass is concentrated on the multiset).
	traces := []trace.Trace{
		tr("a()"),
		tr("a()", "b()"),
		tr("a()", "b()"),
		tr("c()"),
	}
	res, err := PTA("sum", traces)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]trace.Trace{}
	for _, tc := range traces {
		distinct[tc.Key()] = tc
	}
	sum := 0.0
	for _, tc := range distinct {
		p, ok := res.Probability(tc)
		if !ok {
			t.Fatalf("training trace %q outside model", tc.Key())
		}
		sum += p
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Errorf("training support mass = %v, want 1", sum)
	}
}

func TestProbabilityAfterMerging(t *testing.T) {
	// Merged automata still assign every training trace positive mass.
	traces := figure8()
	res := DefaultLearner.MustLearn("m", traces)
	for _, tc := range traces {
		p, ok := res.Probability(tc)
		if !ok || p <= 0 || p > 1 {
			t.Errorf("P(%q) = %v, %v", tc.Key(), p, ok)
		}
	}
}

func TestSurprisePerEvent(t *testing.T) {
	traces := []trace.Trace{
		tr("a()", "b()"), tr("a()", "b()"), tr("a()", "b()"),
		tr("a()", "c()"),
	}
	res, err := PTA("s", traces)
	if err != nil {
		t.Fatal(err)
	}
	common, ok1 := res.SurprisePerEvent(tr("a()", "b()"))
	rare, ok2 := res.SurprisePerEvent(tr("a()", "c()"))
	if !ok1 || !ok2 {
		t.Fatal("training traces outside model")
	}
	if rare <= common {
		t.Errorf("rare trace surprise %v not above common %v", rare, common)
	}
	if s, ok := res.SurprisePerEvent(tr("z()")); ok || !math.IsInf(s, 1) {
		t.Errorf("out-of-model surprise = %v, %v", s, ok)
	}
}
