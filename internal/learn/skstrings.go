package learn

import (
	"sort"

	"repro/internal/trace"
)

// Agreement selects how two states' top k-string sets must relate for the
// states to be merged (the AND/OR variants of Raman and Patrick).
type Agreement int

const (
	// And merges two states only if each state's top s-fraction of
	// k-strings is a subset of the other state's k-strings.
	And Agreement = iota
	// Or merges two states if either state's top k-strings are a subset of
	// the other's k-strings.
	Or
)

// Learner configures the sk-strings method. The zero value is not useful;
// start from DefaultLearner.
type Learner struct {
	// K is the maximum k-string length considered when comparing states.
	K int
	// S is the fraction of probability mass (0 < S ≤ 1) that a state's
	// "top" k-strings must cover.
	S float64
	// Agreement is the merge criterion.
	Agreement Agreement
	// MaxMerges caps the number of merges (0 = unlimited); raising K and S
	// lowers merging, giving a larger FA that makes finer distinctions
	// among traces — the knob Section 2.1 describes for varying the
	// reference FA.
	MaxMerges int
}

// DefaultLearner is the configuration used by Strauss and Cable summaries:
// 2-strings covering half the probability mass, AND agreement.
var DefaultLearner = Learner{K: 2, S: 0.5, Agreement: And}

// endMark terminates k-strings of traces that end before k events; it
// cannot collide with an event rendering because event operations cannot be
// empty.
const endMark = "$"

// kstring is a bounded-length suffix string with its probability.
type kstring struct {
	key  string
	prob float64
}

// Learn builds the prefix-tree acceptor of the traces and merges states per
// the sk-strings criterion, returning the learned automaton with
// frequencies. An empty trace set yields a single-state automaton accepting
// nothing.
func (l Learner) Learn(name string, traces []trace.Trace) (*Result, error) {
	if l.K <= 0 {
		l.K = DefaultLearner.K
	}
	if l.S <= 0 || l.S > 1 {
		l.S = DefaultLearner.S
	}
	p := buildPTA(traces)
	merges := 0
	for {
		a, b := l.findMergeable(p)
		if a < 0 {
			break
		}
		p.merge(a, b)
		merges++
		if l.MaxMerges > 0 && merges >= l.MaxMerges {
			break
		}
	}
	return p.freeze(name)
}

// findMergeable scans state pairs in BFS order and returns the first pair
// satisfying the agreement criterion, or (-1, -1).
func (l Learner) findMergeable(p *pta) (int, int) {
	order := p.states()
	strs := make(map[int][]kstring, len(order))
	for _, s := range order {
		strs[s] = p.kstrings(s, l.K)
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if l.agree(strs[order[i]], strs[order[j]]) {
				return order[i], order[j]
			}
		}
	}
	return -1, -1
}

// kstrings enumerates the strings of length ≤ k leaving state s with their
// probabilities, sorted by probability descending (ties by key for
// determinism). Strings of length < k end with the end marker; strings cut
// off at length k do not.
func (p *pta) kstrings(s int, k int) []kstring {
	var out []kstring
	var walk func(state int, depth int, prefix string, prob float64)
	walk = func(state int, depth int, prefix string, prob float64) {
		state = p.find(state)
		total := p.outTotal(state)
		if total == 0 {
			// Dead state with no endings: contributes nothing.
			return
		}
		n := p.nodes[state]
		if n.end > 0 {
			out = append(out, kstring{key: prefix + endMark, prob: prob * float64(n.end) / float64(total)})
		}
		if depth == k {
			if len(n.out) > 0 {
				// Remaining mass for strings truncated at depth k.
				edgeMass := float64(total-n.end) / float64(total)
				if prefix != "" {
					out = append(out, kstring{key: prefix, prob: prob * edgeMass})
				}
			}
			return
		}
		for _, key := range sortedKeys(n.out) {
			e := n.out[key]
			walk(e.to, depth+1, prefix+key+"\x00", prob*float64(e.count)/float64(total))
		}
	}
	walk(s, 0, "", 1)
	// Aggregate duplicates (merging can create repeated keys via different
	// paths of equal rendering — not possible in a deterministic automaton,
	// but keep the invariant robust).
	agg := map[string]float64{}
	for _, ks := range out {
		agg[ks.key] += ks.prob
	}
	res := make([]kstring, 0, len(agg))
	for key, prob := range agg {
		res = append(res, kstring{key: key, prob: prob})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].prob != res[j].prob {
			return res[i].prob > res[j].prob
		}
		return res[i].key < res[j].key
	})
	return res
}

// top returns the prefix of strs covering at least fraction s of the
// probability mass.
func top(strs []kstring, s float64) []kstring {
	var mass, limit float64
	for _, ks := range strs {
		limit += ks.prob
	}
	limit *= s
	for i, ks := range strs {
		mass += ks.prob
		if mass >= limit-1e-12 {
			return strs[:i+1]
		}
	}
	return strs
}

// agree applies the agreement criterion to two states' k-string
// distributions.
func (l Learner) agree(a, b []kstring) bool {
	if len(a) == 0 || len(b) == 0 {
		// A state with no k-strings (dead) agrees with nothing; merging it
		// anywhere would be unconstrained generalization.
		return false
	}
	inB := keySet(b)
	inA := keySet(a)
	aTop := top(a, l.S)
	bTop := top(b, l.S)
	aInB := covered(aTop, inB)
	bInA := covered(bTop, inA)
	if l.Agreement == Or {
		return aInB || bInA
	}
	return aInB && bInA
}

func keySet(strs []kstring) map[string]bool {
	m := make(map[string]bool, len(strs))
	for _, ks := range strs {
		m[ks.key] = true
	}
	return m
}

func covered(topStrs []kstring, in map[string]bool) bool {
	for _, ks := range topStrs {
		if !in[ks.key] {
			return false
		}
	}
	return true
}
