package exp

import (
	"fmt"
	"strings"

	"repro/internal/cable"
	"repro/internal/concept"
	"repro/internal/fa"
	"repro/internal/learn"
	"repro/internal/specs"
	"repro/internal/strategy"
	"repro/internal/wellformed"
	"repro/internal/xtrace"
)

// RefRow reports one reference-FA choice in the Step 1a ablation: Section
// 2.1 notes that "by varying parameters of the FA-learning algorithm, the
// author can choose to use a large FA that makes very fine distinctions
// among traces or a smaller FA that makes coarser distinctions". Coarser
// references give smaller lattices but risk mixing differently-labeled
// traces (well-formedness fails); finer ones always separate but approach
// Baseline cost.
type RefRow struct {
	Reference  string
	FAStates   int
	FATrans    int
	Concepts   int
	WellFormed bool
	// Expert and TopDown costs; -1 when the lattice is not well-formed
	// (no strategy can finish).
	Expert  int
	TopDown int
}

// ReferenceAblation measures lattice size and labeling cost for each
// reference choice on one specification's workload: the unordered
// template, the mined (sk-strings) FA, a finer sk-strings configuration,
// k-tails, and the PTA.
func ReferenceAblation(specName string, cfg Config) ([]RefRow, error) {
	spec, ok := specs.ByName(specName)
	if !ok {
		return nil, fmt.Errorf("exp: unknown spec %q", specName)
	}
	gen := xtrace.Generator{Model: spec.Model, Seed: cfg.Seed}
	set, truthByKey := gen.ScenarioSet(cfg.scale(spec.Name))
	var truth []cable.Label
	for _, c := range set.Classes() {
		truth = append(truth, truthLabel(truthByKey[c.Rep.Key()]))
	}
	all := allTraces(set)

	type cand struct {
		name  string
		build func() (*fa.FA, error)
	}
	candidates := []cand{
		{"unordered", func() (*fa.FA, error) { return fa.Unordered(set.Alphabet()), nil }},
		{"mined(sk)", func() (*fa.FA, error) {
			r, err := learn.DefaultLearner.Learn("mined", all)
			if err != nil {
				return nil, err
			}
			return r.FA, nil
		}},
		{"finer(sk)", func() (*fa.FA, error) {
			r, err := learn.Learner{K: 3, S: 0.95, Agreement: learn.And}.Learn("finer", all)
			if err != nil {
				return nil, err
			}
			return r.FA, nil
		}},
		{"ktails", func() (*fa.FA, error) {
			r, err := learn.KTails{K: 2}.Learn("ktails", all)
			if err != nil {
				return nil, err
			}
			return r.FA, nil
		}},
		{"pta", func() (*fa.FA, error) {
			r, err := learn.PTA("pta", all)
			if err != nil {
				return nil, err
			}
			return r.FA, nil
		}},
	}

	var rows []RefRow
	for _, c := range candidates {
		ref, err := c.build()
		if err != nil {
			return nil, err
		}
		lattice, err := concept.BuildFromTracesCtx(cfg.ctx(), set.Representatives(), ref, cfg.Workers)
		if err != nil {
			return nil, err
		}
		row := RefRow{
			Reference: c.name,
			FAStates:  ref.NumStates(),
			FATrans:   ref.NumTransitions(),
			Concepts:  lattice.Len(),
			Expert:    -1,
			TopDown:   -1,
		}
		if ok, _ := wellformed.Check(lattice, truth); ok {
			row.WellFormed = true
			if cost, ok := strategy.Expert(lattice, truth); ok {
				row.Expert = cost.Total()
			}
			if cost, ok := strategy.TopDown(lattice, truth); ok {
				row.TopDown = cost.Total()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatRefAblation renders the ablation table.
func FormatRefAblation(specName string, rows []RefRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reference-FA ablation (%s): coarse vs fine similarity (Section 2.1)\n", specName)
	fmt.Fprintf(&b, "%-11s %8s %7s %9s %11s %7s %8s\n",
		"reference", "states", "trans", "concepts", "well-formed", "expert", "topdown")
	for _, r := range rows {
		ex, td := "—", "—"
		if r.Expert >= 0 {
			ex = fmt.Sprintf("%d", r.Expert)
		}
		if r.TopDown >= 0 {
			td = fmt.Sprintf("%d", r.TopDown)
		}
		fmt.Fprintf(&b, "%-11s %8d %7d %9d %11v %7s %8s\n",
			r.Reference, r.FAStates, r.FATrans, r.Concepts, r.WellFormed, ex, td)
	}
	return b.String()
}

// truthLabel converts ground truth to a label.
func truthLabel(good bool) cable.Label {
	if good {
		return cable.Good
	}
	return cable.Bad
}
