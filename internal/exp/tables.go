package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/specs"
)

// Table1Row is one line of Table 1: the debugged specifications.
type Table1Row struct {
	Name        string
	States      int
	Transitions int
	Description string
}

// Table1 lists the seventeen debugged specifications with the sizes of
// their (correct) automata.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, s := range specs.All() {
		rows = append(rows, Table1Row{
			Name:        s.Name,
			States:      s.FA.NumStates(),
			Transitions: s.FA.NumTransitions(),
			Description: s.Description,
		})
	}
	return rows
}

// FormatTable1 renders Table 1 as aligned text.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: the debugged specifications\n")
	fmt.Fprintf(&b, "%-14s %7s %11s  %s\n", "spec", "states", "transitions", "description")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %7d %11d  %s\n", r.Name, r.States, r.Transitions, r.Description)
	}
	return b.String()
}

// Table2Row is one line of Table 2: the cost of concept analysis.
type Table2Row struct {
	Name      string
	Scenarios int           // scenario traces extracted (with duplicates)
	Unique    int           // classes of identical traces (lattice objects)
	Attrs     int           // reference-FA transitions (attributes)
	RefKind   RefKind       // which reference FA the experiment settled on
	Concepts  int           // lattice size
	BuildTime time.Duration // best-of-three lattice construction time
}

// Table2 prepares every specification and measures lattice construction.
// Specs are prepared on a worker pool (cfg.Workers) with rows gathered in
// corpus order.
func Table2(cfg Config) ([]Table2Row, error) {
	all := specs.All()
	return parMap(cfg.ctx(), len(all), cfg.Workers, func(i int) (Table2Row, error) {
		e, err := Prepare(all[i], cfg)
		if err != nil {
			return Table2Row{}, err
		}
		return Table2Row{
			Name:      all[i].Name,
			Scenarios: e.Set.Total(),
			Unique:    e.Set.NumClasses(),
			Attrs:     e.Ref.NumTransitions(),
			RefKind:   e.RefKind,
			Concepts:  e.Lattice.Len(),
			BuildTime: e.BuildTime,
		}, nil
	})
}

// FormatTable2 renders Table 2 as aligned text.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: cost of concept analysis\n")
	fmt.Fprintf(&b, "%-14s %9s %7s %6s %6s %9s %12s\n",
		"spec", "scenarios", "unique", "attrs", "ref", "concepts", "build time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9d %7d %6d %6s %9d %12s\n",
			r.Name, r.Scenarios, r.Unique, r.Attrs, r.RefKind, r.Concepts, r.BuildTime.Round(time.Microsecond))
	}
	return b.String()
}

// Table3Row is one line of Table 3: the cost of labeling by each method.
type Table3Row struct {
	Name string
	Strategies
}

// Table3 prepares every specification and measures every labeling method.
// Specs run on a worker pool (cfg.Workers) with rows gathered in corpus
// order.
func Table3(cfg Config) ([]Table3Row, error) {
	all := specs.All()
	return parMap(cfg.ctx(), len(all), cfg.Workers, func(i int) (Table3Row, error) {
		e, err := Prepare(all[i], cfg)
		if err != nil {
			return Table3Row{}, err
		}
		st, err := e.RunStrategies(cfg)
		if err != nil {
			return Table3Row{}, err
		}
		return Table3Row{Name: all[i].Name, Strategies: st}, nil
	})
}

// FormatTable3 renders Table 3 as aligned text; unmeasurable Optimal
// entries print as "—" like the paper's four largest specifications.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: cost of labeling (total Cable operations)\n")
	fmt.Fprintf(&b, "%-14s %7s %9s %8s %9s %8s %8s\n",
		"spec", "expert", "baseline", "topdown", "bottomup", "random", "optimal")
	for _, r := range rows {
		opt := "—"
		if r.Optimal >= 0 {
			opt = fmt.Sprintf("%d", r.Optimal)
		}
		fmt.Fprintf(&b, "%-14s %7d %9d %8d %9d %8.1f %8s\n",
			r.Name, r.Expert, r.Baseline, r.TopDown, r.BottomUp, r.RandomMean, opt)
	}
	return b.String()
}

// Headline computes the summary claims the paper states in its abstract and
// Section 5.3, from a Table 3 result set.
type HeadlineStats struct {
	// AggregateRatio is total Expert decisions over total Baseline
	// decisions across all specs; the paper's abstract reports "on
	// average, less than one third as many user decisions".
	AggregateRatio float64
	// ExpertToBaselineRatio is the unweighted mean of per-spec
	// Expert/Baseline ratios (dominated by the small specs, where Cable
	// has little advantage — Section 5.3's observation).
	ExpertToBaselineRatio float64
	// BestCase is the spec with the largest absolute saving, with its
	// Expert and Baseline costs (the paper's "28 decisions vs 224").
	BestCase         string
	BestCaseExpert   int
	BestCaseBaseline int
	// SpecsWhereTopDownBeatsBaseline counts rows with TopDown < Baseline.
	SpecsWhereTopDownBeatsBaseline int
	// SpecsWhereExpertBeatsBaseline counts rows with Expert < Baseline.
	SpecsWhereExpertBeatsBaseline int
}

// ComputeHeadline derives the headline statistics from Table 3 rows.
func ComputeHeadline(rows []Table3Row) HeadlineStats {
	var h HeadlineStats
	sum := 0.0
	totalExpert, totalBaseline := 0, 0
	bestSaving := -1
	for _, r := range rows {
		sum += float64(r.Expert) / float64(r.Baseline)
		totalExpert += r.Expert
		totalBaseline += r.Baseline
		if saving := r.Baseline - r.Expert; saving > bestSaving {
			bestSaving = saving
			h.BestCase = r.Name
			h.BestCaseExpert = r.Expert
			h.BestCaseBaseline = r.Baseline
		}
		if r.TopDown < r.Baseline {
			h.SpecsWhereTopDownBeatsBaseline++
		}
		if r.Expert < r.Baseline {
			h.SpecsWhereExpertBeatsBaseline++
		}
	}
	h.ExpertToBaselineRatio = sum / float64(len(rows))
	h.AggregateRatio = float64(totalExpert) / float64(totalBaseline)
	return h
}

// FormatHeadline renders the headline summary.
func FormatHeadline(h HeadlineStats, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Headline: aggregate Expert/Baseline decisions = %.2f (paper: < 1/3)\n", h.AggregateRatio)
	fmt.Fprintf(&b, "Per-spec mean ratio = %.2f (small specs dominate; Cable has little advantage below ~10 unique traces)\n",
		h.ExpertToBaselineRatio)
	fmt.Fprintf(&b, "Best case: %s, %d decisions with Cable vs %d without (paper: 28 vs 224)\n",
		h.BestCase, h.BestCaseExpert, h.BestCaseBaseline)
	fmt.Fprintf(&b, "Expert beats Baseline on %d/%d specs; Top-down on %d/%d\n",
		h.SpecsWhereExpertBeatsBaseline, n, h.SpecsWhereTopDownBeatsBaseline, n)
	return b.String()
}
