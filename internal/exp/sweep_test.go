package exp

import (
	"strings"
	"testing"
)

func TestLatticeGrowth(t *testing.T) {
	pts, err := LatticeGrowth(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 17 {
		t.Fatalf("%d points", len(pts))
	}
	slope, _, r := LinearFit(pts)
	// The paper's observation: roughly linear in transitions. A strong
	// positive correlation with a moderate slope is the reproducible shape.
	if r < 0.6 {
		t.Errorf("correlation r = %.3f; expected roughly linear growth", r)
	}
	if slope <= 0 || slope > 5 {
		t.Errorf("slope = %.2f; concepts should grow gently with attributes", slope)
	}
	// Crucially NOT exponential in objects: XtFree has ~20x the objects of
	// the small specs but a lattice in the same few-dozen range.
	var xtFree, small GrowthPoint
	for _, p := range pts {
		if p.Spec == "XtFree" {
			xtFree = p
		}
		if p.Spec == "PrsTransTbl" {
			small = p
		}
	}
	if xtFree.Concepts > 40*small.Concepts {
		t.Errorf("XtFree lattice (%d) blows up relative to objects", xtFree.Concepts)
	}
	out := FormatGrowth(pts)
	if !strings.Contains(out, "least-squares fit") {
		t.Error("FormatGrowth missing fit line")
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if s, i, r := LinearFit(nil); s != 0 || i != 0 || r != 0 {
		t.Error("empty fit nonzero")
	}
	same := []GrowthPoint{{Attrs: 3, Concepts: 4}, {Attrs: 3, Concepts: 6}}
	if s, _, _ := LinearFit(same); s != 0 {
		t.Error("vertical data gave a slope")
	}
}

func TestAdvantageSweep(t *testing.T) {
	cfg := quickCfg()
	pts, err := AdvantageSweep("XtFree", cfg, []int{50, 200, 800})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// Section 5.3's claim: the advantage increases with the number of
	// different scenario traces — the Expert/Baseline ratio must shrink
	// from the smallest to the largest workload.
	first := float64(pts[0].Expert) / float64(pts[0].Baseline)
	last := float64(pts[len(pts)-1].Expert) / float64(pts[len(pts)-1].Baseline)
	if last >= first {
		t.Errorf("advantage did not grow: ratio %.2f -> %.2f", first, last)
	}
	for _, p := range pts {
		if p.Baseline != 2*p.Unique {
			t.Errorf("Baseline %d != 2×unique %d", p.Baseline, p.Unique)
		}
		if p.Expert > p.Baseline+2 {
			t.Errorf("Expert %d much worse than Baseline %d", p.Expert, p.Baseline)
		}
	}
	if _, err := AdvantageSweep("NoSuchSpec", cfg, []int{10}); err == nil {
		t.Error("unknown spec accepted")
	}
	out := FormatSweep("XtFree", pts)
	if !strings.Contains(out, "expert/baseline") {
		t.Error("FormatSweep missing header")
	}
}
