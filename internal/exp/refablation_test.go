package exp

import (
	"strings"
	"testing"
)

func TestReferenceAblation(t *testing.T) {
	cfg := quickCfg()
	rows, err := ReferenceAblation("XtFree", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]RefRow{}
	for _, r := range rows {
		byName[r.Reference] = r
	}
	// The unordered reference is too coarse for XtFree: double frees share
	// their event support with good traces, so the lattice mixes labels.
	if byName["unordered"].WellFormed {
		t.Error("unordered reference unexpectedly well-formed on XtFree")
	}
	// The mined FA is well-formed and cheaper than the PTA (the paper's
	// granularity trade-off: coarser FA, smaller lattice, fewer decisions).
	mined, pta := byName["mined(sk)"], byName["pta"]
	if !mined.WellFormed || !pta.WellFormed {
		t.Fatalf("mined/pta well-formedness: %v/%v", mined.WellFormed, pta.WellFormed)
	}
	if mined.Expert >= pta.Expert {
		t.Errorf("mined expert cost %d not below PTA %d", mined.Expert, pta.Expert)
	}
	if mined.Concepts >= pta.Concepts {
		t.Errorf("mined lattice %d not smaller than PTA %d", mined.Concepts, pta.Concepts)
	}
	out := FormatRefAblation("XtFree", rows)
	if !strings.Contains(out, "well-formed") || !strings.Contains(out, "—") {
		t.Errorf("format:\n%s", out)
	}
	if _, err := ReferenceAblation("NoSuchSpec", cfg); err == nil {
		t.Error("unknown spec accepted")
	}
}
