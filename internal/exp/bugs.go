package exp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/specs"
	"repro/internal/verify"
	"repro/internal/xtrace"
)

// BugRow is one specification's bug census: how many erroneous traces of
// each kind the debugged specification flags in the workload.
type BugRow struct {
	Spec  string
	Leaks int
	Races int
	Perf  int
	Other int
}

// Total returns the row's bug count.
func (r BugRow) Total() int { return r.Leaks + r.Races + r.Perf + r.Other }

// BugCensus runs each debugged (correct) specification over its workload
// and counts the violations by kind — the reproduction of the paper's
// claim that "the debugged specifications found a total of 199 bugs,
// including resource leaks, potential races, and performance bugs". Every
// violation must correspond to a generated erroneous scenario and every
// erroneous scenario must be flagged (the FA-classifies-workload
// invariant), so the census equals the workload's injected bug census;
// the check is re-verified here rather than assumed.
func BugCensus(cfg Config) ([]BugRow, error) {
	var rows []BugRow
	for _, s := range specs.All() {
		gen := xtrace.Generator{Model: s.Model, Seed: cfg.Seed}
		set, truth := gen.ScenarioSet(cfg.scale(s.Name))
		// Classify each trace occurrence by its generating scenario kind.
		kindOf := scenarioKinds(s.Model)
		row := BugRow{Spec: s.Name}
		_, violations := verify.CheckSet(s.FA, set)
		for _, v := range violations {
			if truth[v.Trace.Key()] {
				return nil, fmt.Errorf("exp: %s flags good trace %q", s.Name, v.Trace.Key())
			}
			switch kindOf[v.Trace.Key()] {
			case xtrace.Leak:
				row.Leaks++
			case xtrace.Race:
				row.Races++
			case xtrace.Perf:
				row.Perf++
			default:
				row.Other++
			}
		}
		// Completeness: every erroneous trace occurrence is flagged.
		bad := 0
		for _, c := range set.Classes() {
			if !truth[c.Rep.Key()] {
				bad += c.Count
			}
		}
		if bad != row.Total() {
			return nil, fmt.Errorf("exp: %s flagged %d of %d erroneous traces", s.Name, row.Total(), bad)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// scenarioKinds maps every bounded expansion of a model's bad templates to
// its bug kind. Expansions beyond the enumeration bound fall back to
// Misuse ("other"), which only affects templates with very wide repetition
// ranges.
func scenarioKinds(m xtrace.Model) map[string]xtrace.BugKind {
	out := map[string]xtrace.BugKind{}
	for _, sc := range m.Scenarios {
		if sc.Good {
			continue
		}
		for _, key := range xtrace.Expansions(sc, 4096) {
			out[key] = sc.Kind
		}
	}
	return out
}

// FormatBugs renders the census.
func FormatBugs(rows []BugRow) string {
	var b strings.Builder
	b.WriteString("Bug census: violations of the debugged specifications, by kind\n")
	fmt.Fprintf(&b, "%-14s %6s %6s %6s %6s %6s\n", "spec", "leaks", "races", "perf", "other", "total")
	var tot BugRow
	sorted := append([]BugRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Total() > sorted[j].Total() })
	for _, r := range sorted {
		fmt.Fprintf(&b, "%-14s %6d %6d %6d %6d %6d\n", r.Spec, r.Leaks, r.Races, r.Perf, r.Other, r.Total())
		tot.Leaks += r.Leaks
		tot.Races += r.Races
		tot.Perf += r.Perf
		tot.Other += r.Other
	}
	fmt.Fprintf(&b, "%-14s %6d %6d %6d %6d %6d  (paper: 199 bugs in total)\n",
		"TOTAL", tot.Leaks, tot.Races, tot.Perf, tot.Other, tot.Total())
	return b.String()
}
