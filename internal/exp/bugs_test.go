package exp

import (
	"strings"
	"testing"
)

func TestBugCensus(t *testing.T) {
	rows, err := BugCensus(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 17 {
		t.Fatalf("%d rows", len(rows))
	}
	var total BugRow
	byName := map[string]BugRow{}
	for _, r := range rows {
		byName[r.Spec] = r
		total.Leaks += r.Leaks
		total.Races += r.Races
		total.Perf += r.Perf
		total.Other += r.Other
	}
	// The paper's bug taxonomy must all be represented: resource leaks,
	// potential races, and performance bugs (plus other misuses).
	if total.Leaks == 0 || total.Races == 0 || total.Perf == 0 || total.Other == 0 {
		t.Errorf("census missing a bug kind: %+v", total)
	}
	// Kind assignments land where the corpus puts them.
	if byName["XInternAtom"].Perf == 0 || byName["XInternAtom"].Leaks != 0 {
		t.Errorf("XInternAtom census = %+v, want perf-only", byName["XInternAtom"])
	}
	if byName["RmvTimeOut"].Races == 0 {
		t.Errorf("RmvTimeOut census = %+v, want races", byName["RmvTimeOut"])
	}
	if byName["XtFree"].Leaks == 0 || byName["XtFree"].Other == 0 {
		t.Errorf("XtFree census = %+v, want leaks and double frees", byName["XtFree"])
	}
	// Every spec flags at least one bug (the workloads all inject errors).
	for _, r := range rows {
		if r.Total() == 0 {
			t.Errorf("%s found no bugs", r.Spec)
		}
	}
	out := FormatBugs(rows)
	if !strings.Contains(out, "TOTAL") || !strings.Contains(out, "199 bugs") {
		t.Errorf("FormatBugs:\n%s", out)
	}
}
