package exp

import (
	"strings"
	"testing"

	"repro/internal/specs"
)

func TestEndToEndStdioAndCorpusSamples(t *testing.T) {
	cfg := quickCfg()
	// A cross-section of the corpus: small, race-flavored, and the giant.
	for _, name := range []string{"XGetSelOwner", "RmvTimeOut", "XFreeGC", "XtFree"} {
		spec, _ := specs.ByName(name)
		row, err := EndToEnd(spec, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The mined spec must exhibit the debugging problem.
		if row.MinedAcceptsBad == 0 {
			t.Errorf("%s: mined spec accepts no bad scenario; nothing to debug", name)
		}
		// Debugging eliminates every injected bug.
		if row.BadRejected < 1.0 {
			t.Errorf("%s: relearned spec still accepts %.0f%% of bad classes",
				name, 100*(1-row.BadRejected))
		}
		// And keeps every good training behaviour.
		if row.TrainGoodAccepted < 1.0 {
			t.Errorf("%s: relearned spec rejects %.0f%% of good classes",
				name, 100*(1-row.TrainGoodAccepted))
		}
	}
}

func TestEndToEndFormat(t *testing.T) {
	cfg := quickCfg()
	spec, _ := specs.ByName("PrsTransTbl")
	row, err := EndToEnd(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatE2E([]E2ERow{row})
	for _, want := range []string{"PrsTransTbl", "badRej", "trainGood"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatE2E missing %q:\n%s", want, out)
		}
	}
}
