package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parMap evaluates f(0..n-1) on up to `workers` goroutines (0 means
// GOMAXPROCS) and returns the results in input order. If any f fails, the
// error for the lowest index is returned — the same error a serial loop
// would surface — so parallel sweeps are observably identical to serial
// ones. With workers == 1 the loop runs inline and stops at the first
// error.
func parMap[T any](n, workers int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r, err := f(i)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	errs := make([]error, n)
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				out[i], errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
