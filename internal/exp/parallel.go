package exp

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// parMap evaluates f(0..n-1) on up to `workers` goroutines (0 means
// GOMAXPROCS) and returns the results in input order. If any f fails, the
// error for the lowest index is returned — the same error a serial loop
// would surface — so parallel sweeps are observably identical to serial
// ones. With workers == 1 the loop runs inline and stops at the first
// error. Cancelling ctx stops the pool between work items: no new index is
// claimed once ctx is done, and ctx.Err() is returned (taking precedence
// over any work error at a higher index).
//
// After a worker records an error, the pool drains: no new index is
// claimed. In-flight calls still finish, and because the atomic counter
// hands out indices in increasing order, every index below the failing one
// has already been claimed by the time the stop flag is raised — the
// lowest-index error is therefore always among the recorded ones even
// though most of the remaining work is skipped.
func parMap[T any](ctx context.Context, n, workers int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	sp := obs.StartSpan("exp.parmap")
	defer sp.End()
	m := obs.Default()
	start := time.Now()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				if m != nil {
					m.Counter("exp.parmap.cancelled").Inc()
				}
				return nil, err
			}
			r, err := f(i)
			if err != nil {
				if m != nil {
					m.Counter("exp.parmap.items").Add(int64(i + 1))
					m.Gauge("exp.parmap.first_error_index").Set(int64(i))
					m.Counter("exp.parmap.errors").Inc()
				}
				return nil, err
			}
			out[i] = r
		}
		if m != nil {
			m.Counter("exp.parmap.items").Add(int64(n))
			if secs := time.Since(start).Seconds(); secs > 0 {
				m.Gauge("exp.parmap.items_per_sec").Set(int64(float64(n) / secs))
			}
		}
		return out, nil
	}
	errs := make([]error, n)
	var next int64 = -1
	var stop atomic.Bool
	busy := make([]time.Duration, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				select {
				case <-ctx.Done():
					stop.Store(true)
					return
				default:
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if m != nil {
					t0 := time.Now()
					out[i], errs[i] = f(i)
					busy[w] += time.Since(t0)
				} else {
					out[i], errs[i] = f(i)
				}
				if errs[i] != nil {
					stop.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m != nil {
		elapsed := time.Since(start)
		claimed := atomic.LoadInt64(&next) + 1
		if claimed > int64(n) {
			claimed = int64(n)
		}
		m.Counter("exp.parmap.items").Add(claimed)
		if secs := elapsed.Seconds(); secs > 0 {
			m.Gauge("exp.parmap.items_per_sec").Set(int64(float64(claimed) / secs))
		}
		if elapsed > 0 {
			util := m.Histogram("exp.parmap.worker_util_pct")
			for _, b := range busy {
				util.Observe(int64(100 * b / elapsed))
			}
		}
	}
	if err := ctx.Err(); err != nil {
		if m != nil {
			m.Counter("exp.parmap.cancelled").Inc()
		}
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			if m != nil {
				m.Gauge("exp.parmap.first_error_index").Set(int64(i))
				m.Counter("exp.parmap.errors").Inc()
			}
			return nil, err
		}
	}
	return out, nil
}
