package exp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/specs"
	"repro/internal/strategy"
)

// GrowthPoint is one (attributes, concepts) observation for the lattice-
// growth analysis.
type GrowthPoint struct {
	Spec     string
	Attrs    int
	Objects  int
	Concepts int
}

// LatticeGrowth collects, for every specification, the reference-FA
// transition count and resulting lattice size — the data behind Section
// 5.2's observation that "the size of the lattices generated for our
// specifications varied roughly linearly with the number of FA
// transitions" despite the exponential worst case.
func LatticeGrowth(cfg Config) ([]GrowthPoint, error) {
	all := specs.All()
	return parMap(cfg.ctx(), len(all), cfg.Workers, func(i int) (GrowthPoint, error) {
		e, err := Prepare(all[i], cfg)
		if err != nil {
			return GrowthPoint{}, err
		}
		return GrowthPoint{
			Spec:     all[i].Name,
			Attrs:    e.Ref.NumTransitions(),
			Objects:  e.Set.NumClasses(),
			Concepts: e.Lattice.Len(),
		}, nil
	})
}

// LinearFit returns the least-squares slope, intercept, and correlation
// coefficient r of concepts against attributes.
func LinearFit(pts []GrowthPoint) (slope, intercept, r float64) {
	n := float64(len(pts))
	if n == 0 {
		return 0, 0, 0
	}
	var sx, sy, sxx, syy, sxy float64
	for _, p := range pts {
		x, y := float64(p.Attrs), float64(p.Concepts)
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	rden := math.Sqrt((n*sxx - sx*sx) * (n*syy - sy*sy))
	if rden != 0 {
		r = (n*sxy - sx*sy) / rden
	}
	return slope, intercept, r
}

// FormatGrowth renders the growth series with its linear fit.
func FormatGrowth(pts []GrowthPoint) string {
	var b strings.Builder
	b.WriteString("Lattice growth: concepts vs reference-FA transitions (Section 5.2)\n")
	fmt.Fprintf(&b, "%-14s %6s %8s %9s\n", "spec", "attrs", "objects", "concepts")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-14s %6d %8d %9d\n", p.Spec, p.Attrs, p.Objects, p.Concepts)
	}
	slope, intercept, r := LinearFit(pts)
	fmt.Fprintf(&b, "least-squares fit: concepts ≈ %.2f·attrs %+.2f (r = %.3f; paper: \"roughly linear\")\n",
		slope, intercept, r)
	return b.String()
}

// ScalePoint is one workload size in the advantage-scaling sweep.
type ScalePoint struct {
	Scenarios int
	Unique    int
	Baseline  int
	Expert    int
	TopDown   int
}

// AdvantageSweep grows one specification's workload and measures how
// Cable's advantage over Baseline scales — Section 5.3's "the advantage of
// using Cable increases as the number of different scenario traces
// increases".
func AdvantageSweep(specName string, cfg Config, sizes []int) ([]ScalePoint, error) {
	spec, ok := specs.ByName(specName)
	if !ok {
		return nil, fmt.Errorf("exp: unknown spec %q", specName)
	}
	return parMap(cfg.ctx(), len(sizes), cfg.Workers, func(i int) (ScalePoint, error) {
		c := cfg
		size := sizes[i]
		c.Scale = func(string) int { return size }
		e, err := Prepare(spec, c)
		if err != nil {
			return ScalePoint{}, err
		}
		expert, ok := strategy.Expert(e.Lattice, e.Truth)
		if !ok {
			return ScalePoint{}, fmt.Errorf("exp: Expert failed at size %d", size)
		}
		td, ok := strategy.TopDown(e.Lattice, e.Truth)
		if !ok {
			return ScalePoint{}, fmt.Errorf("exp: TopDown failed at size %d", size)
		}
		return ScalePoint{
			Scenarios: e.Set.Total(),
			Unique:    e.Set.NumClasses(),
			Baseline:  strategy.Baseline(e.Lattice).Total(),
			Expert:    expert.Total(),
			TopDown:   td.Total(),
		}, nil
	})
}

// FormatSweep renders the advantage sweep.
func FormatSweep(specName string, pts []ScalePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cable advantage vs workload size (%s)\n", specName)
	fmt.Fprintf(&b, "%9s %7s %9s %7s %8s %14s\n", "scenarios", "unique", "baseline", "expert", "topdown", "expert/baseline")
	for _, p := range pts {
		fmt.Fprintf(&b, "%9d %7d %9d %7d %8d %14.2f\n",
			p.Scenarios, p.Unique, p.Baseline, p.Expert, p.TopDown,
			float64(p.Expert)/float64(p.Baseline))
	}
	return b.String()
}
