package exp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cable"
	"repro/internal/concept"
	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/wellformed"
	"repro/internal/xtrace"
)

// Figures regenerates the paper's figures as text (with DOT embedded where
// the original is a graph). Keys are "1".."10" and "wf" (the Section 4.3
// non-well-formed example).
func Figures(cfg Config) (map[string]string, error) {
	out := map[string]string{}

	stdio := specs.Stdio()
	buggy := specs.FigureOneFA()
	gen := xtrace.Generator{Model: stdio.Model, Seed: cfg.Seed}
	scenarios, truth := gen.ScenarioSet(120)

	// Figure 1: the incorrect temporal specification.
	out["1"] = "Figure 1: an incorrect temporal specification\n" +
		"For all calls X = fopen() or X = popen():\n\n" + buggy.String() + "\n" + buggy.Dot()

	// Figure 2: example violation traces.
	session, violations, err := core.DebugViolations(buggy, scenarios)
	if err != nil {
		return nil, err
	}
	if session == nil {
		return nil, fmt.Errorf("exp: stdio workload produced no violations")
	}
	var fig2 strings.Builder
	fig2.WriteString("Figure 2: example violation traces (one per class)\n")
	seen := map[string]bool{}
	for _, v := range violations {
		if seen[v.Trace.Key()] {
			continue
		}
		seen[v.Trace.Key()] = true
		fmt.Fprintf(&fig2, "  %s\n", v)
	}
	out["2"] = fig2.String()

	// Figure 3: a reference FA that recognizes the violation traces.
	out["3"] = "Figure 3: reference FA recognizing the violation traces\n" +
		session.Ref().String() + session.Ref().Dot()

	// Figure 4: a smaller unordered FA inducing a coarser lattice.
	alphabet := session.Ref().Alphabet()
	unordered := fa.Unordered(alphabet)
	out["4"] = "Figure 4: unordered reference FA (coarser distinctions)\n" +
		unordered.String() + unordered.Dot()

	// Figure 5: part of the induced concept lattice.
	out["5"] = "Figure 5: concept lattice of the violation traces\n" +
		session.Lattice().String() + "\n" + session.Lattice().Dot("figure5")

	// Figure 6: the fixed specification.
	for i, t := range session.Representatives() {
		label := cable.Bad
		if truth[t.Key()] {
			label = cable.Good
		}
		if err := session.LabelTrace(i, label); err != nil {
			return nil, err
		}
	}
	fixed, err := core.FixSpec(buggy, session)
	if err != nil {
		return nil, err
	}
	out["6"] = "Figure 6: the fixed specification\n" + fixed.String() + fixed.Dot()

	// Figure 7: the architecture of the Strauss miner.
	out["7"] = figure7

	// Figure 8: good scenario traces for mining.
	var fig8 strings.Builder
	fig8.WriteString("Figure 8: good scenario traces\n")
	var goodKeys []string
	for _, c := range scenarios.Classes() {
		if truth[c.Rep.Key()] {
			goodKeys = append(goodKeys, c.Rep.Key())
		}
	}
	sort.Strings(goodKeys)
	for i, k := range goodKeys {
		if i >= 10 {
			fmt.Fprintf(&fig8, "  ... (%d more)\n", len(goodKeys)-i)
			break
		}
		fmt.Fprintf(&fig8, "  %s\n", k)
	}
	out["8"] = fig8.String()

	// Figures 9 and 10: the animals context and its concept lattice.
	animals := AnimalsContext()
	out["9"] = "Figure 9: the animals context\n" + animals.String()
	out["10"] = "Figure 10: the animals concept lattice\n" + concept.Build(animals).Dot("figure10")

	// Section 4.3: the non-well-formed foo lattice.
	out["wf"] = wfFigure()
	return out, nil
}

// AnimalsContext builds the introductory FCA example of Figure 9 (after
// Michael Siff's thesis): animals as objects, adjectives as attributes.
func AnimalsContext() *concept.Context {
	objs := []string{"cat", "dog", "gibbon", "dolphin", "frog"}
	attrs := []string{"fourlegged", "haircovered", "intelligent", "marine", "thumbed"}
	c := concept.NewContext(objs, attrs)
	rel := [][2]int{
		{0, 0}, {0, 1},
		{1, 0}, {1, 1}, {1, 2},
		{2, 1}, {2, 2}, {2, 4},
		{3, 2}, {3, 3},
		{4, 0}, {4, 3},
	}
	for _, p := range rel {
		c.Relate(p[0], p[1])
	}
	return c
}

const figure7 = `Figure 7: the architecture of the Strauss specification miner

  program runs          +-----------+   scenario    +----------+
  (execution traces) -> | front end | -> traces  -> | back end | -> spec FA
                        +-----------+               +----------+
                        seeds + object flow         sk-strings learner
                        (internal/mine.FrontEnd)    (+ optional coring)
                                                    (internal/mine.BackEnd)

  Debugging (this paper): scenario traces + mined FA -> concept lattice
  (internal/concept) -> Cable labeling session (internal/cable) -> rerun
  back end on traces labeled good.
`

// wfFigure demonstrates the Section 4.3 counterexample end to end.
func wfFigure() string {
	b := fa.NewBuilder("foo")
	s := b.State()
	b.Start(s)
	b.Accept(s)
	b.EdgeStr(s, "foo()", s)
	ref := b.MustBuild()
	traces := []trace.Trace{
		trace.ParseEvents("even2", "foo()", "foo()"),
		trace.ParseEvents("odd1", "foo()"),
		trace.ParseEvents("even4", "foo()", "foo()", "foo()", "foo()"),
	}
	l, err := concept.BuildFromTraces(traces, ref)
	if err != nil {
		return "error: " + err.Error()
	}
	labels := []cable.Label{cable.Good, cable.Bad, cable.Good}
	ok, bad := wellformed.Check(l, labels)
	var out strings.Builder
	out.WriteString("Section 4.3: a lattice that is not well-formed\n")
	out.WriteString("Specification: one accepting state, one foo() self-loop (accepts foo*)\n")
	out.WriteString("Desired labeling: even foo-counts good, odd bad\n")
	fmt.Fprintf(&out, "well-formed: %v; offending concepts: %v\n", ok, bad)
	out.WriteString(l.String())
	out.WriteString("Every trace executes the same single transition, so all traces share\n")
	out.WriteString("one concept and no sequence of Label-traces commands can separate them.\n")
	return out.String()
}
