package exp

import (
	"fmt"
	"strings"

	"repro/internal/cable"
	"repro/internal/core"
	"repro/internal/fa"
	"repro/internal/mine"
	"repro/internal/specs"
	"repro/internal/xtrace"
)

// E2ERow reports one specification's full Section 2.2 round trip: generate
// erroneous program runs, mine a (buggy) specification, debug the scenario
// traces through a Cable session labeled by ground truth, rerun the back
// end on the good traces, and compare the result with the known-correct
// specification.
type E2ERow struct {
	Spec            string
	Scenarios       int
	UniqueScenarios int
	// MinedAcceptsBad counts erroneous scenario classes the freshly mined
	// spec accepts (the debugging problem; > 0 for every corpus spec).
	MinedAcceptsBad int
	// TrainGoodAccepted is the fraction of good scenario classes the
	// relearned spec accepts (1.0 expected: the learner accepts its
	// training set).
	TrainGoodAccepted float64
	// GoodAgreement is the fraction of a bounded sample of the correct
	// specification's language that the relearned spec accepts. Values
	// below 1 measure how far the hand-derived correct FA generalizes
	// beyond anything a data-driven learner could recover (order-free
	// loops, unbounded repetition) — not a debugging failure.
	GoodAgreement float64
	// BadRejected is the fraction of erroneous scenario classes the
	// relearned spec rejects (1.0 = every injected bug eliminated).
	BadRejected float64
	// Equivalent reports exact language equality with the correct FA.
	Equivalent bool
}

// EndToEnd runs the round trip for one specification.
func EndToEnd(spec specs.Spec, cfg Config) (E2ERow, error) {
	row := E2ERow{Spec: spec.Name}
	gen := xtrace.Generator{Model: spec.Model, Seed: cfg.Seed}
	runs, truth := gen.Runs(cfg.scale(spec.Name)/2, 2)
	miner := mine.Miner{FrontEnd: mine.FrontEnd{
		Seeds:         spec.Model.SeedOps(),
		FollowDerived: true,
	}}
	mined, scenarios, err := miner.Mine(spec.Name+"-mined", runs)
	if err != nil {
		return row, err
	}
	row.Scenarios = scenarios.Total()
	row.UniqueScenarios = scenarios.NumClasses()

	session, err := core.DebugMined(mined, scenarios)
	if err != nil {
		return row, err
	}
	minedSim := mined.Sim()
	badClasses := 0
	for i, t := range session.Representatives() {
		key := t.Key()
		good, known := truth[key]
		if !known {
			return row, fmt.Errorf("exp: %s: extracted scenario %q missing from ground truth", spec.Name, key)
		}
		label := cable.Bad
		if good {
			label = cable.Good
		}
		if err := session.LabelTrace(i, label); err != nil {
			return row, err
		}
		if !good {
			badClasses++
			if minedSim.Accepts(t) {
				row.MinedAcceptsBad++
			}
		}
	}
	relearned, err := core.RelearnGood(session, miner)
	if err != nil {
		return row, err
	}

	// Training-set fidelity: every good class accepted. The relearned FA is
	// replayed over three trace sweeps below; compile its plan once.
	relearnedSim := relearned.Sim()
	goodClasses, goodAccepted := 0, 0
	labels := session.Labels()
	for i, t := range session.Representatives() {
		if labels[i] == cable.Good {
			goodClasses++
			if relearnedSim.Accepts(t) {
				goodAccepted++
			}
		}
	}
	if goodClasses > 0 {
		row.TrainGoodAccepted = float64(goodAccepted) / float64(goodClasses)
	}

	// Language agreement with the correct specification.
	sample := spec.FA.Enumerate(10, 300)
	accepted := 0
	for _, t := range sample {
		if relearnedSim.Accepts(t) {
			accepted++
		}
	}
	if len(sample) > 0 {
		row.GoodAgreement = float64(accepted) / float64(len(sample))
	}
	rejected := 0
	for i, t := range session.Representatives() {
		if labels[i] == cable.Bad && !relearnedSim.Accepts(t) {
			rejected++
		}
	}
	if badClasses > 0 {
		row.BadRejected = float64(rejected) / float64(badClasses)
	} else {
		row.BadRejected = 1
	}
	row.Equivalent, err = fa.Equivalent(relearned, spec.FA)
	if err != nil {
		return row, err
	}
	return row, nil
}

// EndToEndAll runs the round trip for the whole corpus.
func EndToEndAll(cfg Config) ([]E2ERow, error) {
	var rows []E2ERow
	for _, s := range specs.All() {
		row, err := EndToEnd(s, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatE2E renders the round-trip table.
func FormatE2E(rows []E2ERow) string {
	var b strings.Builder
	b.WriteString("End-to-end: mine -> debug -> relearn vs the correct specification\n")
	fmt.Fprintf(&b, "%-14s %9s %7s %9s %10s %10s %9s %10s\n",
		"spec", "scenarios", "unique", "minedBad", "trainGood", "goodAgree", "badRej", "equivalent")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9d %7d %9d %9.0f%% %9.0f%% %8.0f%% %10v\n",
			r.Spec, r.Scenarios, r.UniqueScenarios, r.MinedAcceptsBad,
			100*r.TrainGoodAccepted, 100*r.GoodAgreement, 100*r.BadRejected, r.Equivalent)
	}
	return b.String()
}
