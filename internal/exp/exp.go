// Package exp is the evaluation harness: it prepares per-specification
// experiments (workload → scenarios → reference FA → concept lattice →
// ground-truth labeling) and regenerates every table and figure of the
// paper's evaluation (Section 5). cmd/paper is its command-line driver, and
// the repository's benchmarks wrap its stages.
package exp

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro/internal/cable"
	"repro/internal/concept"
	"repro/internal/fa"
	"repro/internal/learn"
	"repro/internal/obs"
	"repro/internal/specs"
	"repro/internal/strategy"
	"repro/internal/trace"
	"repro/internal/wellformed"
	"repro/internal/xtrace"
)

// Config controls experiment scale and determinism.
type Config struct {
	// Context, when non-nil, cancels in-flight sweeps early: the parallel
	// drivers check it between work items and return its error. Nil means
	// context.Background().
	Context context.Context
	// Seed drives workload generation; rows are deterministic per seed.
	Seed int64
	// RandomTrials is the number of Random-strategy trials to average (the
	// paper uses 1024).
	RandomTrials int
	// OptimalBudget bounds the Optimal-strategy search (0 = default). The
	// paper could not measure Optimal for its four largest specifications;
	// the budget reproduces that failure mode honestly.
	OptimalBudget int
	// Scale overrides the number of scenario draws per specification; nil
	// uses DefaultScale.
	Scale func(specName string) int
	// Workers bounds the per-spec parallelism of the sweep drivers (Table2,
	// Table3, LatticeGrowth, AdvantageSweep) and flows into each lattice
	// build, whose Godin insertion scan and cover linking are themselves
	// worker-parallel (and byte-deterministic for every setting): 0 uses
	// GOMAXPROCS, 1 forces serial paths. Results are gathered in input
	// order, so the tables are identical for every setting.
	Workers int
}

// DefaultConfig mirrors the paper's parameters.
func DefaultConfig() Config {
	return Config{Seed: 20030407, RandomTrials: 1024}
}

// DefaultScale sizes each specification's workload so that the
// unique-scenario counts span the paper's range: a handful for the small
// specifications up to low hundreds for XtFree.
func DefaultScale(specName string) int {
	switch specName {
	case "XtFree":
		return 900
	case "RegionsBig":
		return 300
	case "XFreeGC", "XPutImage", "XSetFont", "RegionsAlloc":
		return 160
	case "XGetSelOwner", "PrsTransTbl", "RmvTimeOut":
		return 40
	default:
		return 90
	}
}

// ctx returns the sweep context, defaulting to context.Background().
func (c Config) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

func (c Config) scale(name string) int {
	if c.Scale != nil {
		return c.Scale(name)
	}
	return DefaultScale(name)
}

// RefKind records which reference FA a specification's experiment ended up
// using (Step 1a of the method).
type RefKind string

const (
	// RefMined: the sk-strings FA mined from the scenarios themselves, the
	// default of Section 2.2.
	RefMined RefKind = "mined"
	// RefFiner: a less-merged learner, chosen because the mined FA's
	// lattice was not well-formed for the ground truth — the "choose a
	// different FA" escape hatch of Sections 2.2 and 4.3.
	RefFiner RefKind = "finer"
	// RefPTA: the prefix-tree acceptor; maximally fine, always well-formed
	// (each trace class has a distinct transition set).
	RefPTA RefKind = "pta"
)

// Experiment is one prepared specification experiment.
type Experiment struct {
	Spec      specs.Spec
	Set       *trace.Set
	Truth     []cable.Label // ground-truth label per trace class
	Ref       *fa.FA
	RefKind   RefKind
	Lattice   *concept.Lattice
	BuildTime time.Duration // lattice construction time (best of three)
}

// Prepare generates the workload, selects a reference FA whose lattice is
// well-formed for the ground truth (mined → finer → PTA), and builds the
// lattice.
func Prepare(spec specs.Spec, cfg Config) (*Experiment, error) {
	sp := obs.StartSpan("exp.prepare")
	defer sp.End()
	gen := xtrace.Generator{Model: spec.Model, Seed: cfg.Seed}
	set, truthByKey := gen.ScenarioSet(cfg.scale(spec.Name))
	// Round-trip the generated workload through the trace text format so
	// every experiment exercises the production parse path (trace.Write →
	// trace.Read). Serialization emits classes in order with their IDs and
	// Read re-adds them in the same order, so class numbering, keys, and
	// counts — and therefore every downstream table — are unchanged.
	var buf bytes.Buffer
	if err := trace.Write(&buf, set); err != nil {
		return nil, fmt.Errorf("exp: %s: serialize workload: %w", spec.Name, err)
	}
	reread, err := trace.Read(&buf)
	if err != nil {
		return nil, fmt.Errorf("exp: %s: reparse workload: %w", spec.Name, err)
	}
	set = reread
	truth := make([]cable.Label, set.NumClasses())
	for i, c := range set.Classes() {
		if truthByKey[c.Rep.Key()] {
			truth[i] = cable.Good
		} else {
			truth[i] = cable.Bad
		}
	}
	all := allTraces(set)
	candidates := []struct {
		kind  RefKind
		build func() (*learn.Result, error)
	}{
		{RefMined, func() (*learn.Result, error) { return learn.DefaultLearner.Learn(spec.Name+"-mined", all) }},
		{RefFiner, func() (*learn.Result, error) {
			return learn.Learner{K: 3, S: 0.95, Agreement: learn.And}.Learn(spec.Name+"-finer", all)
		}},
		{RefPTA, func() (*learn.Result, error) { return learn.PTA(spec.Name+"-pta", all) }},
	}
	var (
		chosen     *fa.FA
		chosenKind RefKind
		lattice    *concept.Lattice
	)
	for _, cand := range candidates {
		res, err := cand.build()
		if err != nil {
			return nil, err
		}
		l, err := concept.BuildFromTracesCtx(cfg.ctx(), set.Representatives(), res.FA, cfg.Workers)
		if err != nil {
			return nil, err
		}
		if ok, _ := wellformed.Check(l, truth); ok {
			chosen, chosenKind, lattice = res.FA, cand.kind, l
			break
		}
	}
	if chosen == nil {
		return nil, fmt.Errorf("exp: %s: no candidate reference FA yields a well-formed lattice", spec.Name)
	}
	// Time the construction the way the paper does: best of three runs,
	// excluding trace parsing and output.
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := concept.BuildFromTracesCtx(cfg.ctx(), set.Representatives(), chosen, cfg.Workers); err != nil {
			return nil, err
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return &Experiment{
		Spec:      spec,
		Set:       set,
		Truth:     truth,
		Ref:       chosen,
		RefKind:   chosenKind,
		Lattice:   lattice,
		BuildTime: best,
	}, nil
}

func allTraces(set *trace.Set) []trace.Trace {
	var all []trace.Trace
	for _, c := range set.Classes() {
		for j := 0; j < c.Count; j++ {
			t := c.Rep
			t.ID = c.IDs[j]
			all = append(all, t)
		}
	}
	return all
}

// Strategies holds a specification's Table 3 row measurements. Costs are
// total operations; -1 marks "could not be measured" (Optimal over budget),
// rendered as "—".
type Strategies struct {
	Expert     int
	Baseline   int
	TopDown    int
	BottomUp   int
	RandomMean float64
	Optimal    int
}

// RunStrategies measures every labeling method on the experiment.
func (e *Experiment) RunStrategies(cfg Config) (Strategies, error) {
	var out Strategies
	exCost, ok := strategy.Expert(e.Lattice, e.Truth)
	if !ok {
		return out, fmt.Errorf("exp: %s: Expert failed on well-formed lattice", e.Spec.Name)
	}
	out.Expert = exCost.Total()
	out.Baseline = strategy.Baseline(e.Lattice).Total()
	tdCost, ok := strategy.TopDown(e.Lattice, e.Truth)
	if !ok {
		return out, fmt.Errorf("exp: %s: TopDown failed", e.Spec.Name)
	}
	out.TopDown = tdCost.Total()
	buCost, ok := strategy.BottomUp(e.Lattice, e.Truth)
	if !ok {
		return out, fmt.Errorf("exp: %s: BottomUp failed", e.Spec.Name)
	}
	out.BottomUp = buCost.Total()
	trials := cfg.RandomTrials
	if trials <= 0 {
		trials = 1024
	}
	mean, ok := strategy.RandomMean(e.Lattice, e.Truth, cfg.Seed, trials)
	if !ok {
		return out, fmt.Errorf("exp: %s: Random failed", e.Spec.Name)
	}
	out.RandomMean = mean
	if optCost, ok := strategy.Optimal(e.Lattice, e.Truth, cfg.OptimalBudget); ok {
		out.Optimal = optCost.Total()
	} else {
		out.Optimal = -1
	}
	return out, nil
}
