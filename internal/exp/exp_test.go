package exp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/specs"
)

// quickCfg keeps test runtime low; determinism comes from the fixed seed.
func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.RandomTrials = 16
	return cfg
}

func TestPrepareAllSpecs(t *testing.T) {
	cfg := quickCfg()
	for _, s := range specs.All() {
		e, err := Prepare(s, cfg)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if e.Lattice.Len() == 0 || e.Set.NumClasses() == 0 {
			t.Errorf("%s: empty experiment", s.Name)
		}
		if len(e.Truth) != e.Set.NumClasses() {
			t.Errorf("%s: truth labels mismatch", s.Name)
		}
		// The reference FA must accept every scenario class.
		for _, c := range e.Set.Classes() {
			if !e.Ref.Accepts(c.Rep) {
				t.Errorf("%s: reference rejects %q", s.Name, c.Rep.Key())
			}
		}
		if e.BuildTime <= 0 {
			t.Errorf("%s: no build time measured", s.Name)
		}
		// The paper's affordability claim: lattice construction never took
		// longer than ~22 seconds; ours must stay far under that.
		if e.BuildTime > 22*time.Second {
			t.Errorf("%s: lattice construction took %v", s.Name, e.BuildTime)
		}
	}
}

func TestPrepareDeterministic(t *testing.T) {
	spec, _ := specs.ByName("XFreeGC")
	cfg := quickCfg()
	a, err := Prepare(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Prepare(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Set.NumClasses() != b.Set.NumClasses() || a.Lattice.Len() != b.Lattice.Len() || a.RefKind != b.RefKind {
		t.Error("Prepare not deterministic for fixed seed")
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 17 {
		t.Fatalf("Table 1 has %d rows", len(rows))
	}
	text := FormatTable1(rows)
	for _, want := range []string{"XtFree", "RegionsBig", "states", "transitions"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	for _, r := range rows {
		if r.States < 2 || r.Transitions < 1 {
			t.Errorf("%s: implausible FA size %d/%d", r.Name, r.States, r.Transitions)
		}
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 17 {
		t.Fatalf("Table 2 has %d rows", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Unique > r.Scenarios || r.Unique == 0 || r.Concepts == 0 {
			t.Errorf("%v implausible", r)
		}
	}
	// Workload-scale contrast: XtFree dominates the small specs.
	if byName["XtFree"].Unique <= byName["XGetSelOwner"].Unique {
		t.Error("XtFree not the larger workload")
	}
	text := FormatTable2(rows)
	if !strings.Contains(text, "build time") || !strings.Contains(text, "XtFree") {
		t.Errorf("Table 2 formatting:\n%s", text)
	}
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	cfg := quickCfg()
	rows, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 17 {
		t.Fatalf("Table 3 has %d rows", len(rows))
	}
	for _, r := range rows {
		// Optimal (when measured) lower-bounds everything.
		if r.Optimal >= 0 {
			for what, v := range map[string]int{"expert": r.Expert, "topdown": r.TopDown, "bottomup": r.BottomUp} {
				if v < r.Optimal {
					t.Errorf("%s: %s %d beats optimal %d", r.Name, what, v, r.Optimal)
				}
			}
			if r.RandomMean < float64(r.Optimal) {
				t.Errorf("%s: random mean %.1f beats optimal %d", r.Name, r.RandomMean, r.Optimal)
			}
		}
		// Expert never does much worse than Baseline (paper's observation);
		// allow a small slack for the verification op.
		if r.Expert > r.Baseline+2 {
			t.Errorf("%s: expert %d much worse than baseline %d", r.Name, r.Expert, r.Baseline)
		}
	}
	h := ComputeHeadline(rows)
	// The abstract's claim: less than one third as many decisions on
	// average (aggregate across the corpus).
	if h.AggregateRatio >= 0.45 {
		t.Errorf("aggregate Expert/Baseline ratio %.2f far above paper's <1/3", h.AggregateRatio)
	}
	// The best case must show a dramatic saving on the largest spec.
	if h.BestCase != "XtFree" {
		t.Errorf("best case = %s, expected XtFree", h.BestCase)
	}
	if h.BestCaseExpert*4 > h.BestCaseBaseline {
		t.Errorf("best case saving too small: %d vs %d", h.BestCaseExpert, h.BestCaseBaseline)
	}
	text := FormatTable3(rows) + FormatHeadline(h, len(rows))
	for _, want := range []string{"expert", "baseline", "optimal", "Best case"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 3 formatting missing %q", want)
		}
	}
}

func TestFigures(t *testing.T) {
	figs, err := Figures(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "wf"} {
		if figs[key] == "" {
			t.Errorf("figure %q missing", key)
		}
	}
	if !strings.Contains(figs["1"], "fclose(X)") {
		t.Error("figure 1 lacks the buggy fclose transition")
	}
	if !strings.Contains(figs["2"], "violation") && !strings.Contains(figs["2"], "violates") {
		t.Errorf("figure 2 lacks violations:\n%s", figs["2"])
	}
	if !strings.Contains(figs["6"], "pclose(X)") {
		t.Error("figure 6 (fixed spec) lacks pclose")
	}
	if !strings.Contains(figs["7"], "front end") {
		t.Error("figure 7 lacks architecture")
	}
	if !strings.Contains(figs["9"], "gibbon") || !strings.Contains(figs["10"], "digraph") {
		t.Error("animal figures wrong")
	}
	if !strings.Contains(figs["wf"], "well-formed: false") {
		t.Errorf("wf figure does not demonstrate non-well-formedness:\n%s", figs["wf"])
	}
}
