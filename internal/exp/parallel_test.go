package exp

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// smallCfg keeps the determinism comparison fast: tiny workloads, few
// Random trials, and a small Optimal budget — the point is identical
// output, not paper-scale numbers.
func smallCfg(workers int) Config {
	cfg := DefaultConfig()
	cfg.RandomTrials = 8
	cfg.OptimalBudget = 2000
	cfg.Workers = workers
	cfg.Scale = func(string) int { return 30 }
	return cfg
}

// TestParallelSweepsDeterministic asserts that the worker-pool sweeps
// produce byte-identical tables to a forced-serial run. Table 2's BuildTime
// column is wall-clock and is zeroed before comparing; every other field
// must match exactly.
func TestParallelSweepsDeterministic(t *testing.T) {
	serial, parallel := smallCfg(1), smallCfg(4)

	s2, err := Table2(serial)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Table2(parallel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s2 {
		s2[i].BuildTime = time.Duration(0)
		p2[i].BuildTime = time.Duration(0)
	}
	if got, want := FormatTable2(p2), FormatTable2(s2); got != want {
		t.Errorf("Table2 differs between parallel and serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}

	s3, err := Table3(serial)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := Table3(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FormatTable3(p3), FormatTable3(s3); got != want {
		t.Errorf("Table3 differs between parallel and serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}

	sg, err := LatticeGrowth(serial)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := LatticeGrowth(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FormatGrowth(pg), FormatGrowth(sg); got != want {
		t.Errorf("LatticeGrowth differs between parallel and serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}

	sizes := []int{20, 40, 80}
	ss, err := AdvantageSweep("XFreeGC", serial, sizes)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := AdvantageSweep("XFreeGC", parallel, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FormatSweep("XFreeGC", ps), FormatSweep("XFreeGC", ss); got != want {
		t.Errorf("AdvantageSweep differs between parallel and serial:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}
}

func TestParMapErrorIsFirstIndex(t *testing.T) {
	// Whatever the scheduling, the reported error must be the lowest-index
	// failure, matching a serial loop.
	for _, workers := range []int{1, 3, 8} {
		_, err := parMap(context.Background(), 10, workers, func(i int) (int, error) {
			if i >= 4 {
				return 0, errAt(i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail at 4" {
			t.Errorf("workers=%d: err = %v, want \"fail at 4\"", workers, err)
		}
	}
	out, err := parMap(context.Background(), 5, 2, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

type errAt int

func (e errAt) Error() string { return fmt.Sprintf("fail at %d", int(e)) }

func TestParMapStopsAfterError(t *testing.T) {
	// Once a worker records a failure the pool must drain instead of
	// computing every remaining index: with f(0) failing immediately and
	// every other call taking ~100µs, only the handful of indices claimed
	// before the stop flag rises may run.
	const n = 1000
	var calls atomic.Int64
	_, err := parMap(context.Background(), n, 4, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, errAt(0)
		}
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if err == nil || err.Error() != "fail at 0" {
		t.Fatalf("err = %v, want \"fail at 0\"", err)
	}
	if got := calls.Load(); got >= n/2 {
		t.Errorf("f called %d times after early error, want far fewer than %d", got, n/2)
	}
}

func TestParMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	_, err := parMap(ctx, 1000, 4, func(i int) (int, error) {
		if started.Add(1) == 4 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Errorf("cancellation did not stop the pool: %d items ran", n)
	}

	// A pre-cancelled context stops a serial map before any work.
	ran := false
	_, err = parMap(ctx, 5, 1, func(i int) (int, error) { ran = true; return i, nil })
	if err != context.Canceled || ran {
		t.Errorf("serial pre-cancelled: err=%v ran=%v", err, ran)
	}
}
