package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 || s.Has(0) || s.Has(100) {
		t.Fatalf("zero value not an empty set: %v", &s)
	}
	s.Add(130)
	if !s.Has(130) || s.Len() != 1 {
		t.Fatalf("add to zero value failed: %v", &s)
	}
}

func TestAddRemoveHas(t *testing.T) {
	s := New(10)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		s.Add(i)
		if !s.Has(i) {
			t.Errorf("Has(%d) = false after Add", i)
		}
	}
	if got := s.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Error("Has(64) after Remove")
	}
	s.Remove(64) // idempotent
	s.Remove(99999)
	if got := s.Len(); got != 7 {
		t.Fatalf("Len = %d, want 7", got)
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	New(0).Add(-1)
}

func TestNegativeQueries(t *testing.T) {
	s := FromSlice([]int{1, 2})
	if s.Has(-5) {
		t.Error("Has(-5) = true")
	}
	s.Remove(-5) // must not panic
	if s.Len() != 2 {
		t.Error("Remove(-5) changed set")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice([]int{1, 3, 5, 200})
	b := FromSlice([]int{3, 4, 200, 300})

	if got := Union(a, b).Elems(); !equalInts(got, []int{1, 3, 4, 5, 200, 300}) {
		t.Errorf("Union = %v", got)
	}
	if got := Intersect(a, b).Elems(); !equalInts(got, []int{3, 200}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := Difference(a, b).Elems(); !equalInts(got, []int{1, 5}) {
		t.Errorf("Difference = %v", got)
	}
	// Originals untouched.
	if !equalInts(a.Elems(), []int{1, 3, 5, 200}) || !equalInts(b.Elems(), []int{3, 4, 200, 300}) {
		t.Error("binary ops mutated operands")
	}
}

func TestSubsetAndEqual(t *testing.T) {
	a := FromSlice([]int{1, 2})
	b := FromSlice([]int{1, 2, 300})
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("SubsetOf wrong")
	}
	if !a.ProperSubsetOf(b) || a.ProperSubsetOf(a) {
		t.Error("ProperSubsetOf wrong")
	}
	// Equal must ignore trailing zero words.
	c := New(1024)
	c.Add(1)
	c.Add(2)
	if !a.Equal(c) || !c.Equal(a) {
		t.Error("Equal sensitive to capacity")
	}
	if !a.SubsetOf(c) || !c.SubsetOf(a) {
		t.Error("SubsetOf sensitive to capacity")
	}
	if a.Key() != c.Key() {
		t.Error("Key sensitive to capacity")
	}
}

func TestIntersects(t *testing.T) {
	a := FromSlice([]int{1, 100})
	b := FromSlice([]int{100})
	c := FromSlice([]int{2, 3})
	if !a.Intersects(b) || a.Intersects(c) || c.Intersects(&Set{}) {
		t.Error("Intersects wrong")
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := FromSlice([]int{2, 4, 6, 8})
	var seen []int
	s.Range(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if !equalInts(seen, []int{2, 4}) {
		t.Errorf("Range early stop saw %v", seen)
	}
}

func TestMin(t *testing.T) {
	if (&Set{}).Min() != -1 {
		t.Error("Min of empty != -1")
	}
	if got := FromSlice([]int{500, 70, 9}).Min(); got != 9 {
		t.Errorf("Min = %d, want 9", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]int{1, 2})
	b := a.Clone()
	b.Add(3)
	if a.Has(3) {
		t.Error("Clone shares storage")
	}
}

func TestClear(t *testing.T) {
	a := FromSlice([]int{1, 2, 500})
	a.Clear()
	if !a.Empty() {
		t.Error("Clear left elements")
	}
}

func TestString(t *testing.T) {
	if got := FromSlice([]int{5, 1}).String(); got != "{1, 5}" {
		t.Errorf("String = %q", got)
	}
	if got := (&Set{}).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// Property: algebra laws hold for random sets.
func TestQuickAlgebraLaws(t *testing.T) {
	gen := func(r *rand.Rand) *Set {
		s := &Set{}
		n := r.Intn(40)
		for i := 0; i < n; i++ {
			s.Add(r.Intn(300))
		}
		return s
	}
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(seedA, seedB, seedC int64) bool {
		a := gen(rand.New(rand.NewSource(seedA)))
		b := gen(rand.New(rand.NewSource(seedB)))
		c := gen(rand.New(rand.NewSource(seedC)))
		// Commutativity and associativity.
		if !Union(a, b).Equal(Union(b, a)) {
			return false
		}
		if !Intersect(a, b).Equal(Intersect(b, a)) {
			return false
		}
		if !Union(Union(a, b), c).Equal(Union(a, Union(b, c))) {
			return false
		}
		// Distributivity: a ∩ (b ∪ c) = (a∩b) ∪ (a∩c).
		if !Intersect(a, Union(b, c)).Equal(Union(Intersect(a, b), Intersect(a, c))) {
			return false
		}
		// De Morgan via difference: a \ (b ∪ c) = (a\b) ∩ (a\c).
		if !Difference(a, Union(b, c)).Equal(Intersect(Difference(a, b), Difference(a, c))) {
			return false
		}
		// Subset facts.
		if !Intersect(a, b).SubsetOf(a) || !a.SubsetOf(Union(a, b)) {
			return false
		}
		// Key equality iff Equal.
		if (a.Key() == b.Key()) != a.Equal(b) {
			return false
		}
		// Len inclusion–exclusion.
		if Union(a, b).Len()+Intersect(a, b).Len() != a.Len()+b.Len() {
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// Property: Elems round-trips through FromSlice.
func TestQuickElemsRoundTrip(t *testing.T) {
	err := quick.Check(func(raw []uint16) bool {
		elems := make([]int, len(raw))
		for i, v := range raw {
			elems[i] = int(v % 2048)
		}
		s := FromSlice(elems)
		got := s.Elems()
		want := dedupSorted(elems)
		return equalInts(got, want)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func dedupSorted(xs []int) []int {
	c := append([]int(nil), xs...)
	sort.Ints(c)
	out := c[:0]
	for i, v := range c {
		if i == 0 || v != c[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
