package bitset

import (
	"math/rand"
	"testing"
)

func TestIntersectEqualsInto(t *testing.T) {
	a := FromSlice([]int{1, 3, 130})
	b := FromSlice([]int{1, 3, 64, 130, 200})
	dst := &Set{}
	if !IntersectEqualsInto(dst, a, b) {
		t.Fatalf("IntersectEqualsInto(%v ⊆ %v) = false", a, b)
	}
	if !dst.Equal(a) {
		t.Fatalf("dst = %v, want %v", dst, a)
	}
	// Not a subset: element 5 of a is missing from b.
	a.Add(5)
	if IntersectEqualsInto(dst, a, b) {
		t.Fatalf("IntersectEqualsInto(%v ⊆ %v) = true", a, b)
	}
	if !dst.Equal(Intersect(a, b)) {
		t.Fatalf("dst = %v, want %v", dst, Intersect(a, b))
	}
	// a wider than b, extra words all zero vs holding elements.
	wide := FromSlice([]int{2})
	wide.Add(500)
	wide.Remove(500) // trailing zero words
	if !IntersectEqualsInto(dst, wide, FromSlice([]int{2, 9})) {
		t.Fatalf("trailing zero words should not break subset verdict")
	}
	wide.Add(500)
	if IntersectEqualsInto(dst, wide, FromSlice([]int{2, 9})) {
		t.Fatalf("element in a beyond b's words must refute subset")
	}
}

func TestQuickIntersectEqualsIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dst := &Set{}
	for i := 0; i < 500; i++ {
		a, b := randomSet(rng, 300), randomSet(rng, 300)
		got := IntersectEqualsInto(dst, a, b)
		if want := a.SubsetOf(b); got != want {
			t.Fatalf("subset verdict: got %v want %v (a=%v b=%v)", got, want, a, b)
		}
		if want := Intersect(a, b); !dst.Equal(want) {
			t.Fatalf("intersection: got %v want %v", dst, want)
		}
	}
}

func TestHashStructural(t *testing.T) {
	a := FromSlice([]int{1, 70, 200})
	b := &Set{}
	b.Add(900)
	b.Remove(900) // trailing zero words
	b.Add(200)
	b.Add(1)
	b.Add(70)
	if a.Hash() != b.Hash() {
		t.Fatalf("equal sets hash differently: %x vs %x", a.Hash(), b.Hash())
	}
	if (&Set{}).Hash() != New(1000).Hash() {
		t.Fatalf("empty sets hash differently")
	}
	rng := rand.New(rand.NewSource(11))
	collisions := 0
	seen := map[uint64]*Set{}
	for i := 0; i < 2000; i++ {
		s := randomSet(rng, 256)
		if prev, ok := seen[s.Hash()]; ok && !prev.Equal(s) {
			collisions++
		}
		seen[s.Hash()] = s
	}
	if collisions > 2 {
		t.Fatalf("%d hash collisions across 2000 random sets", collisions)
	}
}

// TestHashWordMatchesHash pins the contract the concept package's one-word
// index probes rely on: HashWord(w) equals Set.Hash() for any set whose
// content fits one word, including w == 0 (the empty set).
func TestHashWordMatchesHash(t *testing.T) {
	if HashWord(0) != (&Set{}).Hash() {
		t.Fatalf("HashWord(0) = %x, empty Hash = %x", HashWord(0), (&Set{}).Hash())
	}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 2000; i++ {
		s := randomSet(rng, 64)
		var w uint64
		if ws := s.Words(); len(ws) > 0 {
			w = ws[0]
		}
		if HashWord(w) != s.Hash() {
			t.Fatalf("HashWord(%#x) = %x, Hash = %x", w, HashWord(w), s.Hash())
		}
	}
}

func TestLenCache(t *testing.T) {
	s := FromSlice([]int{0, 63, 64, 200})
	if s.Len() != 4 || s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	s.Add(5)
	if s.Len() != 5 {
		t.Fatalf("Len after Add = %d, want 5", s.Len())
	}
	s.Remove(63)
	if s.Len() != 4 {
		t.Fatalf("Len after Remove = %d, want 4", s.Len())
	}
	s.IntersectWith(FromSlice([]int{0, 5}))
	if s.Len() != 2 {
		t.Fatalf("Len after IntersectWith = %d, want 2", s.Len())
	}
	s.UnionWith(FromSlice([]int{100}))
	if s.Len() != 3 {
		t.Fatalf("Len after UnionWith = %d, want 3", s.Len())
	}
	s.DifferenceWith(FromSlice([]int{0}))
	if s.Len() != 2 {
		t.Fatalf("Len after DifferenceWith = %d, want 2", s.Len())
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatalf("Len after Clear = %d, want 0", s.Len())
	}
	if Full(129).Len() != 129 {
		t.Fatalf("Full(129).Len = %d", Full(129).Len())
	}
	c := FromSlice([]int{9, 90}).Clone()
	if c.Len() != 2 {
		t.Fatalf("Clone Len = %d, want 2", c.Len())
	}
	sc := (&Set{}).CopyFrom(c)
	if sc.Len() != 2 {
		t.Fatalf("CopyFrom Len = %d, want 2", sc.Len())
	}
	dst := &Set{}
	IntersectInto(dst, c, FromSlice([]int{9}))
	if dst.Len() != 1 {
		t.Fatalf("IntersectInto Len = %d, want 1", dst.Len())
	}
}

func TestEnsureReuseZeroesStaleWords(t *testing.T) {
	// Truncate a set via IntersectInto (shrinks len, keeps cap holding old
	// data), then grow it again with Add: the exposed words must read zero.
	s := FromSlice([]int{200})
	IntersectInto(s, s, FromSlice([]int{1})) // s now empty, cap still covers word 3
	s.Add(300)
	if got := s.Elems(); len(got) != 1 || got[0] != 300 {
		t.Fatalf("stale words leaked through regrowth: %v", s)
	}
}

func TestAppendElems32(t *testing.T) {
	s := FromSlice([]int{0, 63, 64, 129, 500})
	got := s.AppendElems32(nil)
	want := []int32{0, 63, 64, 129, 500}
	if len(got) != len(want) {
		t.Fatalf("AppendElems32 = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendElems32 = %v, want %v", got, want)
		}
	}
}

func TestSparseSubsetOf(t *testing.T) {
	t1 := FromSlice([]int{1, 3, 64, 500})
	if !SparseSubsetOf([]int32{1, 500}, t1) {
		t.Fatalf("SparseSubsetOf({1,500}, %v) = false", t1)
	}
	if SparseSubsetOf([]int32{1, 2}, t1) {
		t.Fatalf("SparseSubsetOf({1,2}, %v) = true", t1)
	}
	if SparseSubsetOf([]int32{1000}, t1) {
		t.Fatalf("element beyond t's words must refute subset")
	}
	if !SparseSubsetOf(nil, &Set{}) {
		t.Fatalf("empty sparse set is a subset of anything")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		a, b := randomSet(rng, 400), randomSet(rng, 400)
		if got, want := SparseSubsetOf(a.AppendElems32(nil), b), a.SubsetOf(b); got != want {
			t.Fatalf("SparseSubsetOf disagrees with SubsetOf: got %v want %v", got, want)
		}
	}
}

func TestArena(t *testing.T) {
	a := NewArena()
	// Sets from the same slab must be independent.
	x := a.Set(64, 256)
	y := a.Set(64, 256)
	x.Add(3)
	y.Add(7)
	if x.Has(7) || y.Has(3) {
		t.Fatalf("arena sets alias: x=%v y=%v", x, y)
	}
	// Growth within reserved capacity stays correct.
	x.Add(255)
	if !x.Has(3) || !x.Has(255) || x.Len() != 2 {
		t.Fatalf("arena set after in-cap growth: %v", x)
	}
	if y.Has(255) {
		t.Fatalf("x's growth scribbled on y: %v", y)
	}
	// Growth beyond reserved capacity must not corrupt later slab sets.
	z := a.Set(64, 64)
	z.Add(1000)
	w := a.Set(64, 64)
	w.Add(2)
	if !z.Has(1000) || z.Has(2) || !w.Has(2) {
		t.Fatalf("out-of-cap growth corrupted slab: z=%v w=%v", z, w)
	}
	// Clone preserves contents and Len cache.
	src := FromSlice([]int{5, 77})
	src.Len()
	c := a.Clone(src)
	if !c.Equal(src) || c.Len() != 2 {
		t.Fatalf("arena clone = %v, want %v", c, src)
	}
	// Many allocations spanning multiple slabs stay disjoint.
	sets := make([]*Set, 3000)
	for i := range sets {
		sets[i] = a.Set(128, 128)
		sets[i].Add(i % 128)
	}
	for i, s := range sets {
		if s.Len() != 1 || !s.Has(i%128) {
			t.Fatalf("slab set %d corrupted: %v", i, s)
		}
	}
	// Int32s slices are disjoint and append-safe.
	p := a.Int32s(4)
	q := a.Int32s(4)
	p = append(p, 1, 2, 3, 4)
	q = append(q, 9)
	if p[0] != 1 || q[0] != 9 || len(p) != 4 {
		t.Fatalf("arena int32 slices alias: p=%v q=%v", p, q)
	}
	p = append(p, 5) // beyond cap: must reallocate, not scribble on q
	if q[0] != 9 {
		t.Fatalf("append past cap corrupted neighbour: q=%v", q)
	}
}

func BenchmarkBitsetIntersectEqualsInto(b *testing.B) {
	x, y := benchSets(1 << 12)
	dst := &Set{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectEqualsInto(dst, x, y)
	}
}

func BenchmarkBitsetHash(b *testing.B) {
	x, _ := benchSets(1 << 12)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= x.Hash()
	}
	_ = sink
}

func BenchmarkBitsetLenCached(b *testing.B) {
	x, _ := benchSets(1 << 12)
	x.Len()
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += x.Len()
	}
	_ = sink
}

func BenchmarkArenaSet(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewArena()
		for j := 0; j < 1000; j++ {
			a.Set(512, 512).Add(j % 512)
		}
	}
}
