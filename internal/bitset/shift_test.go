package bitset

import (
	"math/rand"
	"reflect"
	"testing"
)

// removeShiftNaive is the per-element oracle for RemoveShift: drop i,
// renumber everything above it down by one.
func removeShiftNaive(s *Set, i int) *Set {
	out := &Set{}
	s.Range(func(e int) bool {
		switch {
		case e < i:
			out.Add(e)
		case e > i:
			out.Add(e - 1)
		}
		return true
	})
	return out
}

func TestRemoveShift(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(200)
		s := &Set{}
		for e := 0; e < n; e++ {
			if rng.Intn(3) != 0 {
				s.Add(e)
			}
		}
		i := rng.Intn(n)
		want := removeShiftNaive(s, i)
		s.RemoveShift(i)
		if !s.Equal(want) {
			t.Fatalf("RemoveShift(%d) = %v, want %v", i, s, want)
		}
	}
	// Word-boundary edges: bits 0, 63, 64, 127 of a two-word set.
	for _, i := range []int{0, 63, 64, 127} {
		s := Full(128)
		s.RemoveShift(i)
		if got := s.Len(); got != 127 {
			t.Fatalf("RemoveShift(%d) on Full(128): len %d, want 127", i, got)
		}
	}
	// Out of range and negative are no-ops.
	s := FromSlice([]int{1, 2})
	s.RemoveShift(-1)
	s.RemoveShift(500)
	if !s.Equal(FromSlice([]int{1, 2})) {
		t.Fatalf("out-of-range RemoveShift mutated the set: %v", s)
	}
}

func TestWordsLoadWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 100; round++ {
		s := &Set{}
		for e := 0; e < 300; e++ {
			if rng.Intn(4) == 0 {
				s.Add(e)
			}
		}
		ws := s.Words()
		if len(ws) > 0 && ws[len(ws)-1] == 0 {
			t.Fatal("Words returned an untrimmed slice")
		}
		got := &Set{}
		got.LoadWords(ws)
		if !got.Equal(s) {
			t.Fatalf("LoadWords(Words(s)) != s: %v vs %v", got, s)
		}
		// Loading into a wider dirty set must zero the tail.
		wide := Full(1024)
		wide.LoadWords(ws)
		if !wide.Equal(s) {
			t.Fatalf("LoadWords into dirty wide set: %v vs %v", wide, s)
		}
	}
	empty := &Set{}
	if ws := empty.Words(); len(ws) != 0 {
		t.Fatalf("empty set Words: %v", ws)
	}
}

func TestArenaEnsureBits(t *testing.T) {
	a := NewArena()
	// In-place growth within the carve's capacity.
	s := a.Set(10, 200)
	s.Add(5)
	a.EnsureBits(s, 100)
	if !s.Has(5) || s.Has(64) || s.Len() != 1 {
		t.Fatalf("in-place EnsureBits corrupted the set: %v", s)
	}
	s.Add(99)
	if !reflect.DeepEqual(s.Elems(), []int{5, 99}) {
		t.Fatalf("post-grow Add: %v", s.Elems())
	}
	// Growth past the carve reallocates within the arena and preserves
	// contents.
	big := a.Set(64, 64)
	big.Add(3)
	big.Add(63)
	a.EnsureBits(big, 10_000)
	if !reflect.DeepEqual(big.Elems(), []int{3, 63}) {
		t.Fatalf("reallocating EnsureBits lost elements: %v", big.Elems())
	}
	big.Add(9_999)
	if big.Len() != 3 {
		t.Fatalf("post-realloc Add: %v", big.Elems())
	}
	// Exposed words must come back zeroed even after FillFull dirtied the
	// carve's full capacity.
	d := a.Set(128, 256)
	d.FillFull(256) // dirties all four words
	d.FillFull(10)  // shrink back: words 1..3 now stale within cap
	a.EnsureBits(d, 256)
	if d.Len() != 10 {
		t.Fatalf("EnsureBits exposed stale words: %v", d.Elems())
	}
}
