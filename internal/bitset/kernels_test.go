package bitset

import (
	"math/rand"
	"testing"
)

func TestFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200} {
		s := Full(n)
		if s.Len() != n {
			t.Errorf("Full(%d).Len() = %d", n, s.Len())
		}
		if n > 0 && (!s.Has(0) || !s.Has(n-1) || s.Has(n)) {
			t.Errorf("Full(%d) has wrong membership at the edges", n)
		}
		// Must agree with the Add-loop construction it replaces.
		ref := New(n)
		for i := 0; i < n; i++ {
			ref.Add(i)
		}
		if !s.Equal(ref) {
			t.Errorf("Full(%d) != Add loop", n)
		}
	}
	if Full(-3).Len() != 0 {
		t.Error("Full of negative n not empty")
	}
}

func TestFillFull(t *testing.T) {
	s := FromSlice([]int{5, 200})
	for _, n := range []int{70, 3, 0, 129} {
		s.FillFull(n)
		if !s.Equal(Full(n)) {
			t.Errorf("FillFull(%d) != Full(%d): %s", n, n, s)
		}
	}
}

func TestIntersectInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		a, b := randomSet(rng, 300), randomSet(rng, 300)
		dst := randomSet(rng, 300) // dirty scratch must not leak through
		got := IntersectInto(dst, a, b)
		if got != dst {
			t.Fatal("IntersectInto did not return dst")
		}
		if want := Intersect(a, b); !got.Equal(want) {
			t.Fatalf("IntersectInto = %s, want %s", got, want)
		}
		// Aliasing: dst == a.
		aa := a.Clone()
		if !IntersectInto(aa, aa, b).Equal(Intersect(a, b)) {
			t.Fatal("IntersectInto aliased with a is wrong")
		}
	}
}

func TestAppendKey(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 200; iter++ {
		s := randomSet(rng, 300)
		if string(s.AppendKey(nil)) != s.Key() {
			t.Fatalf("AppendKey != Key for %s", s)
		}
		// Appends after existing content, preserving it.
		buf := s.AppendKey([]byte("prefix"))
		if string(buf[:6]) != "prefix" || string(buf[6:]) != s.Key() {
			t.Fatalf("AppendKey clobbered the prefix")
		}
		// Trailing zero words never change the key.
		padded := s.Clone()
		padded.Add(1000)
		padded.Remove(1000)
		if padded.Key() != s.Key() {
			t.Fatalf("key not canonical under trailing zero words")
		}
	}
}

func randomSet(rng *rand.Rand, max int) *Set {
	s := &Set{}
	for n := rng.Intn(40); n > 0; n-- {
		s.Add(rng.Intn(max))
	}
	return s
}

// --- kernel benchmarks ---------------------------------------------------

func benchSets(n int) (*Set, *Set) {
	rng := rand.New(rand.NewSource(1))
	a, b := New(n), New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) != 0 {
			a.Add(i)
		}
		if rng.Intn(3) != 0 {
			b.Add(i)
		}
	}
	return a, b
}

func BenchmarkBitsetFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Full(512).Len() != 512 {
			b.Fatal("wrong")
		}
	}
}

func BenchmarkBitsetFullAddLoop(b *testing.B) {
	// The construction Full replaces.
	for i := 0; i < b.N; i++ {
		s := New(512)
		for j := 0; j < 512; j++ {
			s.Add(j)
		}
	}
}

func BenchmarkBitsetIntersect(b *testing.B) {
	x, y := benchSets(512)
	for i := 0; i < b.N; i++ {
		Intersect(x, y)
	}
}

func BenchmarkBitsetIntersectInto(b *testing.B) {
	x, y := benchSets(512)
	dst := &Set{}
	for i := 0; i < b.N; i++ {
		IntersectInto(dst, x, y)
	}
}

func BenchmarkBitsetKey(b *testing.B) {
	x, _ := benchSets(512)
	for i := 0; i < b.N; i++ {
		if len(x.Key()) == 0 {
			b.Fatal("empty key")
		}
	}
}

func BenchmarkBitsetAppendKey(b *testing.B) {
	x, _ := benchSets(512)
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = x.AppendKey(buf[:0])
		if len(buf) == 0 {
			b.Fatal("empty key")
		}
	}
}
