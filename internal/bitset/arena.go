package bitset

// Arena is a slab allocator for batch-building many sets with O(1)
// allocations. A lattice build creates tens of thousands of small intent
// and extent bitsets whose lifetimes all end together (when the lattice is
// dropped); backing them with per-set make calls costs one heap object —
// and eventually one free — per set. An Arena instead carves word storage,
// Set headers, and sparse element lists out of geometrically grown slabs,
// so the garbage collector sees a handful of large objects.
//
// Ownership: everything an Arena hands out is referenced by the arena's
// slabs, so arena-backed sets keep the whole slab alive and must not
// outlive the structure the arena was created for (the cablevet poolarena
// check enforces this for lattice builds). Arenas are not safe for
// concurrent allocation; allocate from one goroutine, share the resulting
// read-only sets freely.
type Arena struct {
	words []uint64 // current word slab; len is the high-water mark
	sets  []Set    // current Set-header slab
	ints  []int32  // current sparse-element slab
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

const (
	arenaMinWords = 1 << 12 // first word slab: 32 KiB
	arenaMaxWords = 1 << 20 // slab growth cap: 8 MiB per slab
	arenaSetChunk = 256     // Set headers per header slab
)

// allocWords returns a zeroed n-word slice carved from the slab. The result
// is capacity-clamped so append on one set can never scribble over its slab
// neighbour: growing past n reallocates onto the heap instead.
func (a *Arena) allocWords(n int) []uint64 {
	if n == 0 {
		return nil
	}
	if len(a.words)+n > cap(a.words) {
		size := 2 * cap(a.words)
		if size < arenaMinWords {
			size = arenaMinWords
		}
		if size > arenaMaxWords {
			size = arenaMaxWords
		}
		if size < n {
			size = n
		}
		// The old slab stays alive through the sets already carved from it.
		a.words = make([]uint64, 0, size)
	}
	w := a.words[len(a.words) : len(a.words)+n : len(a.words)+n]
	a.words = a.words[:len(a.words)+n]
	return w
}

// Set returns a fresh empty set whose words live in the arena. lenBits is
// the initial universe size covered by zeroed words; capBits reserves
// capacity so the set can grow to that universe (via Add/ensure) without
// leaving the arena. capBits is clamped up to lenBits.
func (a *Arena) Set(lenBits, capBits int) *Set {
	if capBits < lenBits {
		capBits = lenBits
	}
	nw := (lenBits + wordBits - 1) / wordBits
	cw := (capBits + wordBits - 1) / wordBits
	s := a.header()
	if cw > 0 {
		s.words = a.allocWords(cw)[:nw]
	}
	return s
}

// Clone returns an arena-backed copy of src. The copy's capacity equals
// src's length; callers that will grow the clone should copy into an
// a.Set(..., capBits) instead.
func (a *Arena) Clone(src *Set) *Set {
	s := a.header()
	if len(src.words) > 0 {
		s.words = a.allocWords(len(src.words))
		copy(s.words, src.words)
	}
	s.pop = src.pop
	return s
}

// EnsureBits grows s so its words cover the universe [0, capBits) without
// leaving the arena. Growth extends in place when the set's carve has
// capacity (zeroing the exposed words, which may hold stale data from an
// earlier truncation); otherwise it carves a fresh region and copies — the
// old words stay pinned in their slab, the accepted cost of incremental
// updates on arena-backed lattices.
func (a *Arena) EnsureBits(s *Set, capBits int) {
	cw := (capBits + wordBits - 1) / wordBits
	if cw <= len(s.words) {
		return
	}
	if cw <= cap(s.words) {
		n := len(s.words)
		s.words = s.words[:cw]
		for i := n; i < cw; i++ {
			s.words[i] = 0
		}
		return
	}
	grown := a.allocWords(cw)
	copy(grown, s.words)
	s.words = grown
}

// header carves one Set header out of the header slab.
func (a *Arena) header() *Set {
	if len(a.sets) == cap(a.sets) {
		a.sets = make([]Set, 0, arenaSetChunk)
	}
	a.sets = a.sets[:len(a.sets)+1]
	return &a.sets[len(a.sets)-1]
}

// Int32s returns a zero-length int32 slice with capacity n carved from the
// arena, for sparse element lists that live exactly as long as their sets.
func (a *Arena) Int32s(n int) []int32 {
	if n == 0 {
		return nil
	}
	if len(a.ints)+n > cap(a.ints) {
		size := 2 * cap(a.ints)
		if size < arenaMinWords {
			size = arenaMinWords
		}
		if size < n {
			size = n
		}
		a.ints = make([]int32, 0, size)
	}
	out := a.ints[len(a.ints) : len(a.ints) : len(a.ints)+n]
	a.ints = a.ints[:len(a.ints)+n]
	return out
}
