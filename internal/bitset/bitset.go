// Package bitset provides dense, growable bit vectors.
//
// Bitsets are the workhorse representation throughout this repository:
// concept extents and intents (internal/concept), subset-construction state
// sets (internal/fa), and labeled-trace sets in strategy search
// (internal/strategy) are all bitsets. The implementation is a plain slice
// of 64-bit words; the zero value is an empty set ready to use.
//
// Hot-path kernels follow two rules: they are word-parallel (never
// per-element loops) and they bail out as early as the answer is known —
// SubsetOf, Equal, and Intersects return on the first mismatching word.
// Len caches its popcount so repeated size queries on immutable sets (the
// shape concept lattices produce) cost one atomic load; every mutator
// invalidates the cache. For batch construction, Arena (arena.go) carves
// many sets out of shared slabs so building a lattice performs O(1)
// allocations instead of one per set.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
	"sync/atomic"
)

const wordBits = 64

// Set is a set of non-negative integers backed by a []uint64.
// The zero value is an empty set.
type Set struct {
	words []uint64
	// pop caches Len()+1; 0 means unknown. Len loads and stores it
	// atomically so concurrent readers of an immutable set are safe;
	// mutators reset it with a plain store (mutation concurrent with any
	// reader is already a race on words).
	pop int32
}

// New returns an empty set with capacity preallocated for elements in
// [0, n). The capacity hint only avoids reallocation; sets grow on demand.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice returns a set containing exactly the given elements.
func FromSlice(elems []int) *Set {
	s := &Set{}
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Full returns the set {0, 1, ..., n-1}. It fills whole words at a time,
// replacing the O(n) Add loop callers previously used to build universe
// sets.
func Full(n int) *Set {
	if n <= 0 {
		return &Set{}
	}
	words := make([]uint64, (n+wordBits-1)/wordBits)
	for i := range words {
		words[i] = ^uint64(0)
	}
	if r := n % wordBits; r != 0 {
		words[len(words)-1] = (1 << uint(r)) - 1
	}
	return &Set{words: words, pop: int32(n) + 1}
}

// FillFull makes s equal to {0, ..., n-1}, reusing s's storage when it is
// large enough. It returns s.
func (s *Set) FillFull(n int) *Set {
	if n <= 0 {
		s.words = s.words[:0]
		s.pop = 1
		return s
	}
	nw := (n + wordBits - 1) / wordBits
	if cap(s.words) < nw {
		s.words = make([]uint64, nw)
	} else {
		s.words = s.words[:nw]
	}
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if r := n % wordBits; r != 0 {
		s.words[nw-1] = (1 << uint(r)) - 1
	}
	s.pop = int32(n) + 1
	return s
}

// IntersectInto sets dst = a ∩ b, reusing dst's storage, and returns dst.
// dst may alias a or b. It is the allocation-free form of Intersect for hot
// loops that recompute intersections into a scratch set.
func IntersectInto(dst, a, b *Set) *Set {
	n := len(a.words)
	if len(b.words) < n {
		n = len(b.words)
	}
	if cap(dst.words) < n {
		dst.words = make([]uint64, n)
	} else {
		dst.words = dst.words[:n]
	}
	for i := 0; i < n; i++ {
		dst.words[i] = a.words[i] & b.words[i]
	}
	dst.pop = 0
	return dst
}

// IntersectEqualsInto sets dst = a ∩ b, reusing dst's storage, and reports
// whether the intersection equals a — that is, whether a ⊆ b. It fuses the
// SubsetOf + IntersectInto double pass the lattice builder's inner loop
// used to make: one word-parallel sweep produces both the intersection and
// the subset verdict. dst must not alias a or b.
func IntersectEqualsInto(dst, a, b *Set) bool {
	n := len(a.words)
	if len(b.words) < n {
		n = len(b.words)
	}
	if cap(dst.words) < n {
		dst.words = make([]uint64, n)
	} else {
		dst.words = dst.words[:n]
	}
	var diff uint64
	for i := 0; i < n; i++ {
		w := a.words[i] & b.words[i]
		diff |= w ^ a.words[i]
		dst.words[i] = w
	}
	for _, w := range a.words[n:] {
		diff |= w
	}
	dst.pop = 0
	return diff == 0
}

// CopyFrom makes s an exact copy of t, reusing s's storage when it is large
// enough, and returns s. It is the allocation-free form of Clone for hot
// loops that reset a scratch set to a known frontier.
func (s *Set) CopyFrom(t *Set) *Set {
	if cap(s.words) < len(t.words) {
		s.words = make([]uint64, len(t.words))
	} else {
		s.words = s.words[:len(t.words)]
	}
	copy(s.words, t.words)
	s.pop = atomic.LoadInt32(&t.pop)
	return s
}

// ensure grows s.words to cover the given word index. Growth first extends
// in place when capacity allows (zeroing the exposed words, which may hold
// stale data from an earlier truncation), then reallocates geometrically so
// a set grown one word at a time costs O(log n) allocations, not O(n).
func (s *Set) ensure(word int) {
	if word < len(s.words) {
		return
	}
	if word < cap(s.words) {
		n := len(s.words)
		s.words = s.words[:word+1]
		for i := n; i <= word; i++ {
			s.words[i] = 0
		}
		return
	}
	newCap := 2 * cap(s.words)
	if newCap < word+1 {
		newCap = word + 1
	}
	grown := make([]uint64, word+1, newCap)
	copy(grown, s.words)
	s.words = grown
}

// Add inserts i into the set. Negative i panics.
func (s *Set) Add(i int) {
	if i < 0 {
		panic("bitset: negative element " + strconv.Itoa(i))
	}
	w := i / wordBits
	s.ensure(w)
	s.words[w] |= 1 << uint(i%wordBits)
	s.pop = 0
}

// Remove deletes i from the set; removing an absent element is a no-op.
func (s *Set) Remove(i int) {
	if i < 0 {
		return
	}
	w := i / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(i%wordBits)
		s.pop = 0
	}
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(i%wordBits)) != 0
}

// Len returns the number of elements in the set. The popcount is cached:
// the first call on a set that has not been mutated since stores the
// count, and later calls return it with one atomic load. Concurrent Len
// calls on a shared immutable set are safe.
func (s *Set) Len() int {
	if p := atomic.LoadInt32(&s.pop); p != 0 {
		return int(p) - 1
	}
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	atomic.StoreInt32(&s.pop, int32(n)+1)
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	c.pop = atomic.LoadInt32(&s.pop)
	return c
}

// Clear removes all elements, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.pop = 1
}

// trim drops trailing zero words so that structurally equal sets compare
// equal regardless of construction history.
func (s *Set) trim() {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	s.words = s.words[:n]
}

// UnionWith adds every element of t to s.
func (s *Set) UnionWith(t *Set) {
	s.ensure(len(t.words) - 1)
	for i, w := range t.words {
		s.words[i] |= w
	}
	s.pop = 0
}

// IntersectWith removes from s every element not in t.
func (s *Set) IntersectWith(t *Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
	s.pop = 0
}

// DifferenceWith removes every element of t from s.
func (s *Set) DifferenceWith(t *Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &^= t.words[i]
		}
	}
	s.pop = 0
}

// Union returns a new set holding s ∪ t.
func Union(s, t *Set) *Set {
	u := s.Clone()
	u.UnionWith(t)
	return u
}

// Intersect returns a new set holding s ∩ t.
func Intersect(s, t *Set) *Set {
	u := s.Clone()
	u.IntersectWith(t)
	return u
}

// Difference returns a new set holding s \ t.
func Difference(s, t *Set) *Set {
	u := s.Clone()
	u.DifferenceWith(t)
	return u
}

// Equal reports whether s and t contain the same elements. It returns on
// the first mismatching word.
func (s *Set) Equal(t *Set) bool {
	long, short := s.words, t.words
	if len(long) < len(short) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in t. It returns on the
// first word holding an element of s missing from t.
func (s *Set) SubsetOf(t *Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊂ t strictly.
func (s *Set) ProperSubsetOf(t *Set) bool {
	return s.SubsetOf(t) && !s.Equal(t)
}

// Intersects reports whether s and t share at least one element.
func (s *Set) Intersects(t *Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Elems returns the elements in increasing order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Len())
	s.Range(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// AppendElems32 appends the set's elements, in increasing order, to dst as
// int32 values and returns the extended slice. It is the sparse projection
// used for the long tail of small sets over wide universes: iterating a
// handful of elements beats sweeping hundreds of mostly-zero words.
func (s *Set) AppendElems32(dst []int32) []int32 {
	for wi, w := range s.words {
		base := int32(wi * wordBits)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// SparseSubsetOf reports whether every element of the sparse set elems
// (int32 elements, any order, no negatives) is in t. For a set of k
// elements over a universe of w words this costs O(k) instead of the O(w)
// of the dense SubsetOf — the win that motivates keeping sparse projections
// of small extents during cover linking.
func SparseSubsetOf(elems []int32, t *Set) bool {
	for _, e := range elems {
		w := int(e) / wordBits
		if w >= len(t.words) || t.words[w]&(1<<uint(int(e)%wordBits)) == 0 {
			return false
		}
	}
	return true
}

// Words returns the set's backing words with trailing zero words trimmed.
// The slice aliases the set's storage and must be treated as read-only; it
// is the raw view snapshot codecs serialize. Structurally equal sets return
// equal word slices.
func (s *Set) Words() []uint64 {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	return s.words[:n]
}

// LoadWords replaces s's contents with the given raw words (element i*64+b
// present iff bit b of ws[i] is set), reusing s's storage when it is large
// enough and zeroing any tail beyond len(ws). It is the inverse of Words
// for snapshot readers that decode into preallocated (often arena-backed)
// sets.
func (s *Set) LoadWords(ws []uint64) {
	s.ensure(len(ws) - 1)
	copy(s.words, ws)
	for i := len(ws); i < len(s.words); i++ {
		s.words[i] = 0
	}
	s.pop = 0
}

// RemoveShift deletes i and renumbers every element greater than i down by
// one, so the set over universe {0..n-1} becomes the corresponding set over
// {0..n-2}. It is the extent/column update for removing one object from a
// formal context. Negative or out-of-range i is a no-op.
func (s *Set) RemoveShift(i int) {
	if i < 0 {
		return
	}
	w := i / wordBits
	if w >= len(s.words) {
		return
	}
	keep := uint64(1)<<uint(i%wordBits) - 1
	cur := s.words[w]
	s.words[w] = (cur & keep) | ((cur >> 1) &^ keep)
	for k := w + 1; k < len(s.words); k++ {
		s.words[k-1] |= s.words[k] << (wordBits - 1)
		s.words[k] >>= 1
	}
	s.pop = 0
}

// Range calls f on each element in increasing order; if f returns false the
// iteration stops early.
func (s *Set) Range(f func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Key returns a string usable as a map key identifying the set's contents.
// Structurally equal sets produce equal keys.
func (s *Set) Key() string {
	return string(s.AppendKey(nil))
}

// AppendKey appends the bytes of s.Key() to dst and returns the extended
// slice. Structurally equal sets append equal bytes. Callers that look sets
// up in maps can reuse one buffer across calls and convert with
// string(buf), which the compiler optimizes to an allocation-free lookup.
func (s *Set) AppendKey(dst []byte) []byte {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	for _, w := range s.words[:n] {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// Hash returns a structural 64-bit hash of the set: equal sets hash
// equally regardless of trailing zero words or construction history. It is
// the word-level replacement for hashing AppendKey bytes — hot paths hash
// the words directly and skip materializing key bytes entirely.
func (s *Set) Hash() uint64 {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	h := uint64(14695981039346656037) // FNV-1a over words
	for _, w := range s.words[:n] {
		h ^= w
		h *= 1099511628211
	}
	// Final avalanche so power-of-two table masks see the high entropy.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// HashWord returns Hash() of the set whose only word is w — the empty set
// when w is 0. It is the scalar fast path for universes of at most 64
// elements (concept intents over specs with ≤64 transitions): callers that
// intersect one-word sets in registers can probe hash tables without
// materializing a Set at all. Pinned equal to Hash by TestHashWordMatchesHash.
func HashWord(w uint64) uint64 {
	h := uint64(14695981039346656037) // FNV-1a over the single word
	if w != 0 {
		h ^= w
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.Range(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(i))
		return true
	})
	b.WriteByte('}')
	return b.String()
}
