package specs

import "repro/internal/xtrace"

// All returns the seventeen X11/Xt specifications of Table 1, in the order
// the evaluation tables list them (roughly by workload size).
func All() []Spec {
	return []Spec{
		xGetSelOwner(),
		prsTransTbl(),
		rmvTimeOut(),
		quarks(),
		xSetSelOwner(),
		xtOwnSel(),
		xInternAtom(),
		prsAccelTbl(),
		xOpenDisplay(),
		xCreatePixmap(),
		xtAddInput(),
		regionsAlloc(),
		xFreeGC(),
		xPutImage(),
		xSetFont(),
		regionsBig(),
		xtFree(),
	}
}

// ByName returns the named spec from All() or Stdio().
func ByName(name string) (Spec, bool) {
	if name == "Stdio" {
		return Stdio(), true
	}
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

func xGetSelOwner() Spec {
	return mustSpec("XGetSelOwner",
		"The owner window returned by XGetSelectionOwner must be checked against None before it is used.",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "ok", Good: true, Weight: 9, Events: []xtrace.Event{
					xtrace.Ev("X = XGetSelectionOwner()"),
					xtrace.Ev("CheckNone(X)"),
					xtrace.Rep("UseOwner(X)", 0, 2),
				}},
				{Name: "unchecked-use", Good: false, Kind: xtrace.Misuse, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = XGetSelectionOwner()"),
					xtrace.Rep("UseOwner(X)", 1, 2),
				}},
			},
			Noise: []string{"XFlush()"},
		})
}

func prsTransTbl() Spec {
	return mustSpec("PrsTransTbl",
		"A table parsed by XtParseTranslationTable must be installed with XtAugmentTranslations or XtOverrideTranslations.",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "augment", Good: true, Weight: 6, Events: []xtrace.Event{
					xtrace.Ev("X = XtParseTranslationTable()"),
					xtrace.Ev("XtAugmentTranslations(X)"),
				}},
				{Name: "override", Good: true, Weight: 4, Events: []xtrace.Event{
					xtrace.Ev("X = XtParseTranslationTable()"),
					xtrace.Ev("XtOverrideTranslations(X)"),
				}},
				{Name: "leak", Good: false, Kind: xtrace.Leak, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = XtParseTranslationTable()"),
				}},
			},
		})
}

func rmvTimeOut() Spec {
	return mustSpec("RmvTimeOut",
		"A timeout registered with XtAppAddTimeOut must not be removed after its callback has fired (potential race).",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "fires", Good: true, Weight: 6, Events: []xtrace.Event{
					xtrace.Ev("X = XtAppAddTimeOut()"),
					xtrace.Ev("TimeOutFires(X)"),
				}},
				{Name: "removed", Good: true, Weight: 3, Events: []xtrace.Event{
					xtrace.Ev("X = XtAppAddTimeOut()"),
					xtrace.Ev("XtRemoveTimeOut(X)"),
				}},
				{Name: "remove-after-fire", Good: false, Kind: xtrace.Race, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = XtAppAddTimeOut()"),
					xtrace.Ev("TimeOutFires(X)"),
					xtrace.Ev("XtRemoveTimeOut(X)"),
				}},
			},
		})
}

func quarks() Spec {
	return mustSpec("Quarks",
		"A quark obtained with XrmStringToQuark should be used; computing quarks that are never consulted wastes server round trips.",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "ok", Good: true, Weight: 8, Events: []xtrace.Event{
					xtrace.Ev("X = XrmStringToQuark()"),
					xtrace.Rep("UseQuark(X)", 1, 4),
				}},
				{Name: "unused", Good: false, Kind: xtrace.Perf, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = XrmStringToQuark()"),
					xtrace.Ev("DiscardQuark(X)"),
				}},
			},
		})
}

func xSetSelOwner() Spec {
	return mustSpec("XSetSelOwner",
		"After XSetSelectionOwner, ownership must be verified with a get; assuming success races against other clients.",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "verified", Good: true, Weight: 7, Events: []xtrace.Event{
					xtrace.Ev("X = XSetSelectionOwner()"),
					xtrace.Ev("VerifyOwner(X)"),
					xtrace.Rep("SendSelection(X)", 0, 3),
				}},
				{Name: "unverified", Good: false, Kind: xtrace.Race, Weight: 2, Events: []xtrace.Event{
					xtrace.Ev("X = XSetSelectionOwner()"),
					xtrace.Rep("SendSelection(X)", 1, 3),
				}},
			},
		})
}

func xtOwnSel() Spec {
	return mustSpec("XtOwnSel",
		"A selection owned with XtOwnSelection must eventually be disowned with XtDisownSelection, and not after it was lost.",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "ok", Good: true, Weight: 7, Events: []xtrace.Event{
					xtrace.Ev("X = XtOwnSelection()"),
					xtrace.Rep("ConvertSelection(X)", 0, 3),
					xtrace.Ev("XtDisownSelection(X)"),
				}},
				{Name: "leak", Good: false, Kind: xtrace.Leak, Weight: 2, Events: []xtrace.Event{
					xtrace.Ev("X = XtOwnSelection()"),
					xtrace.Rep("ConvertSelection(X)", 0, 2),
				}},
				{Name: "disown-after-lose", Good: false, Kind: xtrace.Race, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = XtOwnSelection()"),
					xtrace.Ev("LoseSelection(X)"),
					xtrace.Ev("XtDisownSelection(X)"),
				}},
			},
		})
}

func xInternAtom() Spec {
	return mustSpec("XInternAtom",
		"Atoms should be interned once and cached; re-interning the same name repeats a synchronous server round trip (performance bug).",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "cached", Good: true, Weight: 7, Events: []xtrace.Event{
					xtrace.Ev("X = XInternAtom()"),
					xtrace.Rep("UseAtom(X)", 1, 5),
				}},
				{Name: "re-intern", Good: false, Kind: xtrace.Perf, Weight: 2, Events: []xtrace.Event{
					xtrace.Ev("X = XInternAtom()"),
					xtrace.Rep("ReInternAtom(X)", 1, 3),
					xtrace.Rep("UseAtom(X)", 1, 2),
				}},
			},
			Noise: []string{"XFlush()"},
		})
}

func prsAccelTbl() Spec {
	return mustSpec("PrsAccelTbl",
		"An accelerator table parsed by XtParseAcceleratorTable must be installed with XtInstallAccelerators or XtInstallAllAccelerators.",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "install", Good: true, Weight: 6, Events: []xtrace.Event{
					xtrace.Ev("X = XtParseAcceleratorTable()"),
					xtrace.Rep("XtInstallAccelerators(X)", 1, 2),
				}},
				{Name: "install-all", Good: true, Weight: 2, Events: []xtrace.Event{
					xtrace.Ev("X = XtParseAcceleratorTable()"),
					xtrace.Ev("XtInstallAllAccelerators(X)"),
				}},
				{Name: "leak", Good: false, Kind: xtrace.Leak, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = XtParseAcceleratorTable()"),
				}},
			},
		})
}

func xOpenDisplay() Spec {
	return mustSpec("XOpenDisplay",
		"A display connection opened with XOpenDisplay must be closed with XCloseDisplay.",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "ok", Good: true, Weight: 8, Events: []xtrace.Event{
					xtrace.Ev("X = XOpenDisplay()"),
					xtrace.Rep("XSync(X)", 0, 3),
					xtrace.Ev("XCloseDisplay(X)"),
				}},
				{Name: "leak", Good: false, Kind: xtrace.Leak, Weight: 2, Events: []xtrace.Event{
					xtrace.Ev("X = XOpenDisplay()"),
					xtrace.Rep("XSync(X)", 1, 2),
				}},
			},
			Noise: []string{"XFlush()"},
		})
}

func xCreatePixmap() Spec {
	return mustSpec("XCreatePixmap",
		"A pixmap created with XCreatePixmap must be freed with XFreePixmap, and not used afterwards.",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "ok", Good: true, Weight: 8, Events: []xtrace.Event{
					xtrace.Ev("X = XCreatePixmap()"),
					xtrace.Rep("XCopyArea(X)", 0, 4),
					xtrace.Ev("XFreePixmap(X)"),
				}},
				{Name: "leak", Good: false, Kind: xtrace.Leak, Weight: 2, Events: []xtrace.Event{
					xtrace.Ev("X = XCreatePixmap()"),
					xtrace.Rep("XCopyArea(X)", 1, 3),
				}},
				{Name: "copy-after-free", Good: false, Kind: xtrace.Misuse, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = XCreatePixmap()"),
					xtrace.Ev("XFreePixmap(X)"),
					xtrace.Ev("XCopyArea(X)"),
				}},
			},
		})
}

func xtAddInput() Spec {
	return mustSpec("XtAddInput",
		"An input source registered with XtAppAddInput must be unregistered with XtRemoveInput.",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "ok", Good: true, Weight: 8, Events: []xtrace.Event{
					xtrace.Ev("X = XtAppAddInput()"),
					xtrace.Rep("InputCallback(X)", 0, 5),
					xtrace.Ev("XtRemoveInput(X)"),
				}},
				{Name: "leak", Good: false, Kind: xtrace.Leak, Weight: 2, Events: []xtrace.Event{
					xtrace.Ev("X = XtAppAddInput()"),
					xtrace.Rep("InputCallback(X)", 1, 4),
				}},
			},
		})
}

func regionsAlloc() Spec {
	return mustSpec("RegionsAlloc",
		"A region created with XCreateRegion must be destroyed with XDestroyRegion, and not used afterwards.",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "ok", Good: true, Weight: 8, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateRegion()"),
					xtrace.Rep("XUnionRectWithRegion(X)", 0, 3),
					xtrace.Rep("XClipBox(X)", 0, 1),
					xtrace.Ev("XDestroyRegion(X)"),
				}},
				{Name: "leak", Good: false, Kind: xtrace.Leak, Weight: 2, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateRegion()"),
					xtrace.Rep("XUnionRectWithRegion(X)", 1, 3),
				}},
				{Name: "use-after-destroy", Good: false, Kind: xtrace.Misuse, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateRegion()"),
					xtrace.Ev("XDestroyRegion(X)"),
					xtrace.Ev("XClipBox(X)"),
				}},
			},
		})
}

func xFreeGC() Spec {
	return mustSpec("XFreeGC",
		"A graphics context created with XCreateGC must be freed exactly once with XFreeGC.",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "ok", Good: true, Weight: 8, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateGC()"),
					xtrace.Rep("XChangeGC(X)", 0, 2),
					xtrace.Rep("XDrawLine(X)", 0, 3),
					xtrace.Ev("XFreeGC(X)"),
				}},
				{Name: "leak", Good: false, Kind: xtrace.Leak, Weight: 2, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateGC()"),
					xtrace.Rep("XDrawLine(X)", 1, 3),
				}},
				{Name: "double-free", Good: false, Kind: xtrace.Misuse, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateGC()"),
					xtrace.Ev("XFreeGC(X)"),
					xtrace.Ev("XFreeGC(X)"),
				}},
			},
		})
}

func xPutImage() Spec {
	return mustSpec("XPutImage",
		"An image created with XCreateImage must be destroyed with XDestroyImage; XPutImage must not follow the destroy.",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "ok", Good: true, Weight: 8, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateImage()"),
					xtrace.Rep("XPutImage(X)", 1, 6),
					xtrace.Ev("XDestroyImage(X)"),
				}},
				{Name: "leak", Good: false, Kind: xtrace.Leak, Weight: 2, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateImage()"),
					xtrace.Rep("XPutImage(X)", 1, 4),
				}},
				{Name: "put-after-destroy", Good: false, Kind: xtrace.Misuse, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateImage()"),
					xtrace.Ev("XPutImage(X)"),
					xtrace.Ev("XDestroyImage(X)"),
					xtrace.Ev("XPutImage(X)"),
				}},
			},
		})
}

func xSetFont() Spec {
	return mustSpec("XSetFont",
		"A font must be installed in a graphics context with XSetFont before text is drawn with it.",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "text", Good: true, Weight: 6, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateGC()"),
					xtrace.Ev("XSetFont(X)"),
					xtrace.Rep("XDrawString(X)", 1, 4),
					xtrace.Ev("XFreeGC(X)"),
				}},
				{Name: "graphics-only", Good: true, Weight: 3, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateGC()"),
					xtrace.Rep("XDrawLine(X)", 1, 3),
					xtrace.Ev("XFreeGC(X)"),
				}},
				{Name: "no-font", Good: false, Kind: xtrace.Misuse, Weight: 2, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateGC()"),
					xtrace.Rep("XDrawString(X)", 1, 3),
					xtrace.Ev("XFreeGC(X)"),
				}},
				{Name: "font-after-draw", Good: false, Kind: xtrace.Misuse, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateGC()"),
					xtrace.Rep("XDrawString(X)", 1, 2),
					xtrace.Ev("XSetFont(X)"),
					xtrace.Ev("XFreeGC(X)"),
				}},
			},
		})
}

func regionsBig() Spec {
	return mustSpec("RegionsBig",
		"Region arithmetic over derived regions: both the source region and regions copied from it must be destroyed, each exactly once.",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "pair", Good: true, Weight: 6, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateRegion()"),
					xtrace.Ev("Y = XCopyRegion(X)"),
					xtrace.Rep("XUnionRegion(X, Y)", 0, 2),
					xtrace.Rep("XIntersectRegion(X, Y)", 0, 2),
					xtrace.Ev("XDestroyRegion(Y)"),
					xtrace.Ev("XDestroyRegion(X)"),
				}},
				{Name: "single", Good: true, Weight: 3, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateRegion()"),
					xtrace.Rep("XOffsetRegion(X)", 0, 3),
					xtrace.Ev("XDestroyRegion(X)"),
				}},
				{Name: "double-destroy", Good: false, Kind: xtrace.Misuse, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateRegion()"),
					xtrace.Ev("Y = XCopyRegion(X)"),
					xtrace.Rep("XUnionRegion(X, Y)", 0, 1),
					xtrace.Ev("XDestroyRegion(Y)"),
					xtrace.Ev("XDestroyRegion(Y)"),
					xtrace.Ev("XDestroyRegion(X)"),
				}},
				{Name: "leak-copy", Good: false, Kind: xtrace.Leak, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateRegion()"),
					xtrace.Ev("Y = XCopyRegion(X)"),
					xtrace.Rep("XUnionRegion(X, Y)", 0, 2),
					xtrace.Ev("XDestroyRegion(X)"),
				}},
				{Name: "leak-both", Good: false, Kind: xtrace.Leak, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = XCreateRegion()"),
					xtrace.Ev("Y = XCopyRegion(X)"),
					xtrace.Rep("XIntersectRegion(X, Y)", 0, 1),
				}},
			},
		})
}

func xtFree() Spec {
	return mustSpec("XtFree",
		"Storage allocated with XtMalloc or XtCalloc must be freed exactly once with XtFree.",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "malloc", Good: true, Weight: 10, Events: []xtrace.Event{
					xtrace.Ev("X = XtMalloc()"),
					xtrace.Rep("XtRealloc(X)", 0, 4),
					xtrace.Rep("MemWrite(X)", 0, 4),
					xtrace.Rep("MemRead(X)", 0, 3),
					xtrace.Ev("XtFree(X)"),
				}},
				{Name: "calloc", Good: true, Weight: 3, Events: []xtrace.Event{
					xtrace.Ev("X = XtCalloc()"),
					xtrace.Rep("MemWrite(X)", 0, 3),
					xtrace.Ev("XtFree(X)"),
				}},
				// The frequent-error case that defeats coring: leaks are
				// common in the training runs.
				{Name: "leak", Good: false, Kind: xtrace.Leak, Weight: 4, Events: []xtrace.Event{
					xtrace.Ev("X = XtMalloc()"),
					xtrace.Rep("MemWrite(X)", 0, 3),
					xtrace.Rep("MemRead(X)", 0, 2),
				}},
				{Name: "double-free", Good: false, Kind: xtrace.Misuse, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = XtMalloc()"),
					xtrace.Rep("MemWrite(X)", 0, 1),
					xtrace.Ev("XtFree(X)"),
					xtrace.Ev("XtFree(X)"),
				}},
			},
			Noise: []string{"XtAppPending()"},
		})
}
