package specs

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/xtrace"
)

func TestCorpusShape(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("corpus has %d specs, want 17 (Table 1)", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if s.Name == "" || s.Description == "" {
			t.Errorf("spec %q lacks name or description", s.Name)
		}
		if seen[s.Name] {
			t.Errorf("duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
		if s.FA == nil || s.FA.NumStates() == 0 {
			t.Errorf("spec %q has no FA", s.Name)
		}
		if err := s.Model.Validate(); err != nil {
			t.Errorf("spec %q: %v", s.Name, err)
		}
	}
	// The fourteen specs the paper names must all be present.
	for _, name := range []string{
		"XGetSelOwner", "XSetSelOwner", "XtOwnSel", "PrsTransTbl", "RmvTimeOut",
		"Quarks", "XInternAtom", "PrsAccelTbl", "RegionsAlloc", "XFreeGC",
		"XPutImage", "XSetFont", "XtFree", "RegionsBig",
	} {
		if !seen[name] {
			t.Errorf("paper-named spec %q missing", name)
		}
	}
}

func TestByName(t *testing.T) {
	if s, ok := ByName("XtFree"); !ok || s.Name != "XtFree" {
		t.Error("ByName(XtFree) failed")
	}
	if s, ok := ByName("Stdio"); !ok || s.Name != "Stdio" {
		t.Error("ByName(Stdio) failed")
	}
	if _, ok := ByName("NoSuchSpec"); ok {
		t.Error("ByName accepted unknown name")
	}
}

// TestFAClassifiesWorkload is the central soundness check of the corpus:
// every good scenario the model generates is accepted by the derived
// specification FA, and every bad one is rejected.
func TestFAClassifiesWorkload(t *testing.T) {
	corpus := append(All(), Stdio())
	for _, spec := range corpus {
		gen := xtrace.Generator{Model: spec.Model, Seed: 1234}
		set, labels := gen.ScenarioSet(400)
		for _, c := range set.Classes() {
			good := labels[c.Rep.Key()]
			if got := spec.FA.Accepts(c.Rep); got != good {
				t.Errorf("%s: FA.Accepts(%q) = %v, ground truth good=%v",
					spec.Name, c.Rep.Key(), got, good)
			}
		}
	}
}

func TestFAAcceptsLoopGeneralization(t *testing.T) {
	// The derived FA turns bounded repetition into loops: more repeats than
	// the template maximum are still accepted.
	spec, _ := ByName("XtFree")
	long := trace.ParseEvents("",
		"X = XtMalloc()",
		"XtRealloc(X)", "XtRealloc(X)", "XtRealloc(X)", "XtRealloc(X)",
		"XtRealloc(X)", "XtRealloc(X)", "XtRealloc(X)", // 7 > max 4
		"XtFree(X)")
	if !spec.FA.Accepts(long) {
		t.Error("derived FA rejects over-max repetition")
	}
}

func TestFigureOneFAIsBuggy(t *testing.T) {
	buggy := FigureOneFA()
	// The bug: a pipe closed with fclose is accepted.
	if !buggy.Accepts(trace.ParseEvents("", "X = popen()", "fclose(X)")) {
		t.Error("Figure 1 FA does not exhibit its bug")
	}
	// The correct Stdio FA rejects it and accepts the pclose form.
	correct := Stdio().FA
	if correct.Accepts(trace.ParseEvents("", "X = popen()", "fclose(X)")) {
		t.Error("correct stdio FA accepts the buggy close")
	}
	if !correct.Accepts(trace.ParseEvents("", "X = popen()", "pclose(X)")) {
		t.Error("correct stdio FA rejects pclose")
	}
	if buggy.Accepts(trace.ParseEvents("", "X = popen()", "pclose(X)")) {
		t.Error("Figure 1 FA accepts pclose (it should not; that is the violation)")
	}
}

func TestDeriveFADeterministic(t *testing.T) {
	for _, spec := range append(All(), Stdio()) {
		if !spec.FA.IsDeterministic() {
			t.Errorf("%s: derived FA not deterministic", spec.Name)
		}
	}
}

func TestWorkloadScale(t *testing.T) {
	// The corpus must span the evaluation's range: small specs with a
	// handful of unique scenarios and large ones (XtFree) with on the order
	// of a hundred, so Table 3's contrast is reproducible.
	counts := map[string]int{}
	for _, spec := range All() {
		gen := xtrace.Generator{Model: spec.Model, Seed: 99}
		set, _ := gen.ScenarioSet(600)
		counts[spec.Name] = set.NumClasses()
	}
	if counts["XGetSelOwner"] > 10 {
		t.Errorf("XGetSelOwner has %d classes; expected a small spec", counts["XGetSelOwner"])
	}
	if counts["XtFree"] < 60 {
		t.Errorf("XtFree has only %d classes; expected the largest workload", counts["XtFree"])
	}
	if counts["XtFree"] <= counts["XGetSelOwner"]*4 {
		t.Errorf("workload scale contrast too small: XtFree=%d XGetSelOwner=%d",
			counts["XtFree"], counts["XGetSelOwner"])
	}
}

func TestSeedOps(t *testing.T) {
	spec, _ := ByName("XtFree")
	seeds := spec.Model.SeedOps()
	want := map[string]bool{"XtMalloc": true, "XtCalloc": true}
	if len(seeds) != 2 || !want[seeds[0]] || !want[seeds[1]] {
		t.Errorf("SeedOps = %v", seeds)
	}
}
