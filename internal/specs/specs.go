// Package specs defines the specification corpus of the evaluation: the
// seventeen debugged Strauss specifications of Table 1 — X11/Xt protocols
// for selections, translation and accelerator tables, timeouts, quarks,
// atoms, regions, graphics contexts, images, fonts, pixmaps, input sources,
// displays, and Xt heap storage — plus the stdio fopen/popen example that
// Section 2 works through.
//
// Each Spec couples
//
//   - the correct (debugged) specification FA, derived mechanically from
//     the good usage templates (Table 1 reports its size), and
//   - a workload model (internal/xtrace) with the correct usage patterns
//     and the error modes the paper reports: resource leaks, mismatched or
//     doubled releases, use-after-free, and the races and performance bugs
//     among the 199 bugs the debugged specifications found.
//
// The paper names fourteen of the seventeen specifications in its
// discussion (XGetSelOwner, XSetSelOwner, XtOwnSel, PrsTransTbl,
// RmvTimeOut, Quarks, XInternAtom, PrsAccelTbl, RegionsAlloc, XFreeGC,
// XPutImage, XSetFont, XtFree, RegionsBig); the remaining three here
// (XOpenDisplay, XCreatePixmap, XtAddInput) are reconstructed in the same
// style, as DESIGN.md records.
package specs

import (
	"fmt"

	"repro/internal/fa"
	"repro/internal/fa/lang"
	"repro/internal/xtrace"
)

// Spec is one entry of the corpus.
type Spec struct {
	// Name is the short name used throughout the evaluation tables.
	Name string
	// Description is the English translation of the specification, in the
	// style of Table 1.
	Description string
	// Model is the workload model generating correct and erroneous
	// scenarios for this protocol.
	Model xtrace.Model
	// FA is the correct (debugged) specification automaton.
	FA *fa.FA
	// Buggy is the seeded buggy variant of FA: the same good templates
	// plus one of the model's error modes, so its language strictly
	// contains the correct one and the speclint differ always has a
	// concrete separating witness to extract. It plays the role of the
	// pre-debugging specification the paper starts each session from.
	Buggy *fa.FA
}

// DeriveFA builds the correct specification FA from the model's good
// templates: each template contributes a chain whose bounded repetitions
// become self-loops (accepting any count at least the minimum), and the
// union is determinized and minimized. The result accepts every good
// expansion and, for every corpus model, none of the bad ones — tests
// enforce both.
func DeriveFA(name string, m xtrace.Model) (*fa.FA, error) {
	return deriveFA(name, m, func(sc xtrace.Scenario) bool { return sc.Good })
}

// ProgramFA builds a model of a program's possible per-object behaviour:
// the union of every scenario template, good and bad. Checking this
// automaton against a specification with verify.Static plays the role of
// the paper's static verification tool — the program "appears to" execute
// every behaviour of the model, and the violation traces are the
// behaviours the specification rejects.
func ProgramFA(name string, m xtrace.Model) (*fa.FA, error) {
	return deriveFA(name+"-program", m, func(xtrace.Scenario) bool { return true })
}

func deriveFA(name string, m xtrace.Model, include func(xtrace.Scenario) bool) (*fa.FA, error) {
	b := fa.NewBuilder(name)
	for _, sc := range m.Scenarios {
		if !include(sc) {
			continue
		}
		cur := b.State()
		b.Start(cur)
		for _, ev := range sc.Events {
			for i := 0; i < ev.Min; i++ {
				next := b.State()
				b.EdgeStr(cur, ev.Sym, next)
				cur = next
			}
			if ev.Max > ev.Min {
				b.EdgeStr(cur, ev.Sym, cur)
			}
		}
		b.Accept(cur)
	}
	nfa, err := b.Build()
	if err != nil {
		return nil, err
	}
	min, err := nfa.Minimize()
	if err != nil {
		return nil, err
	}
	return min.WithName(name), nil
}

// BuggyFA derives the seeded buggy specification: the good templates plus
// the first error-mode scenario whose behaviours the correct FA rejects.
// The result's language strictly contains the correct one — lang.Includes
// verifies the strictness, so a separating witness is guaranteed to
// exist.
func BuggyFA(name string, m xtrace.Model) (*fa.FA, error) {
	correct, err := DeriveFA(name, m)
	if err != nil {
		return nil, err
	}
	for _, sc := range m.Scenarios {
		if sc.Good {
			continue
		}
		bad := sc.Name
		buggy, err := deriveFA(name+"-buggy", m, func(s xtrace.Scenario) bool {
			return s.Good || s.Name == bad
		})
		if err != nil {
			return nil, err
		}
		inc, _, err := lang.Includes(buggy, correct)
		if err != nil {
			return nil, err
		}
		if !inc {
			return buggy, nil
		}
	}
	return nil, fmt.Errorf("specs: %s: no error-mode scenario escapes the correct language", name)
}

// mustSpec validates the model and derives the FA, panicking on authoring
// mistakes; the corpus is static data, so failures are programmer errors.
func mustSpec(name, description string, m xtrace.Model) Spec {
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("specs: %s: %v", name, err))
	}
	f, err := DeriveFA(name, m)
	if err != nil {
		panic(fmt.Sprintf("specs: %s: %v", name, err))
	}
	buggy, err := BuggyFA(name, m)
	if err != nil {
		panic(err.Error())
	}
	return Spec{Name: name, Description: description, Model: m, FA: f, Buggy: buggy}
}

// Stdio returns the Section 2 example: the stdio file-pointer protocol
// whose buggy form (Figure 1) lets fclose close pipes.
func Stdio() Spec {
	return mustSpec("Stdio",
		"A file pointer returned by fopen must be closed with fclose; a pipe returned by popen must be closed with pclose.",
		xtrace.Model{
			Scenarios: []xtrace.Scenario{
				{Name: "file", Good: true, Weight: 8, Events: []xtrace.Event{
					xtrace.Ev("X = fopen()"),
					xtrace.Rep("fread(X)", 0, 2),
					xtrace.Rep("fwrite(X)", 0, 2),
					xtrace.Ev("fclose(X)"),
				}},
				{Name: "pipe", Good: true, Weight: 6, Events: []xtrace.Event{
					xtrace.Ev("X = popen()"),
					xtrace.Rep("fread(X)", 0, 2),
					xtrace.Rep("fwrite(X)", 0, 1),
					xtrace.Ev("pclose(X)"),
				}},
				{Name: "pipe-fclose", Good: false, Kind: xtrace.Misuse, Weight: 2, Events: []xtrace.Event{
					xtrace.Ev("X = popen()"),
					xtrace.Rep("fread(X)", 0, 1),
					xtrace.Ev("fclose(X)"),
				}},
				{Name: "file-leak", Good: false, Kind: xtrace.Leak, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = fopen()"),
					xtrace.Rep("fread(X)", 1, 2),
				}},
				{Name: "file-pclose", Good: false, Kind: xtrace.Misuse, Weight: 1, Events: []xtrace.Event{
					xtrace.Ev("X = fopen()"),
					xtrace.Ev("pclose(X)"),
				}},
			},
			Noise: []string{"puts()", "printf()"},
		})
}

// FigureOneFA returns the buggy specification of Figure 1: fclose is
// allowed to close any file pointer, whether fopen or popen produced it.
func FigureOneFA() *fa.FA {
	b := fa.NewBuilder("stdio-figure1")
	s := b.States(3)
	b.Start(s[0])
	b.Accept(s[2])
	b.EdgeStr(s[0], "X = fopen()", s[1])
	b.EdgeStr(s[0], "X = popen()", s[1])
	b.EdgeStr(s[1], "fread(X)", s[1])
	b.EdgeStr(s[1], "fwrite(X)", s[1])
	b.EdgeStr(s[1], "fclose(X)", s[2])
	return b.MustBuild()
}
