package concept

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/fa"
	"repro/internal/trace"
	"repro/internal/xtrace"
)

// bigCorpusModel is a file-handle protocol with repetition bounds wide
// enough that the sampled workload spans well over 10⁴ distinct trace
// classes — the production corpus size the paper's 90 full X11 traces
// imply, two orders of magnitude past the Table 2 fixtures.
func bigCorpusModel() xtrace.Model {
	return xtrace.Model{
		Scenarios: []xtrace.Scenario{
			{Name: "ok", Good: true, Weight: 4, Events: []xtrace.Event{
				xtrace.Ev("open(X)"),
				xtrace.Rep("cfg(X)", 0, 4),
				xtrace.Rep("read(X)", 0, 39),
				xtrace.Rep("write(X)", 0, 39),
				xtrace.Ev("close(X)"),
			}},
			{Name: "leak", Good: false, Kind: xtrace.Leak, Weight: 2, Events: []xtrace.Event{
				xtrace.Ev("open(X)"),
				xtrace.Rep("read(X)", 0, 39),
				xtrace.Rep("write(X)", 0, 39),
			}},
			{Name: "seek-scan", Good: true, Weight: 2, Events: []xtrace.Event{
				xtrace.Ev("open(X)"),
				xtrace.Rep("seek(X)", 1, 30),
				xtrace.Rep("read(X)", 0, 29),
				xtrace.Opt("flush(X)"),
				xtrace.Ev("close(X)"),
				xtrace.Ev("free(X)"),
			}},
			{Name: "double-free", Good: false, Kind: xtrace.Misuse, Weight: 1, Events: []xtrace.Event{
				xtrace.Ev("open(X)"),
				xtrace.Rep("read(X)", 0, 19),
				xtrace.Ev("close(X)"),
				xtrace.Ev("free(X)"),
				xtrace.Rep("free(X)", 1, 2),
			}},
		},
	}
}

// bigCorpusRef hand-builds the reference FA for the protocol: it accepts
// every trace the model can emit (including the buggy scenarios — the
// paper's reference FA "recognizes (at least)" the traces being debugged)
// while giving each protocol stage its own state, so executed-transition
// rows vary by stage and not just by operation.
func bigCorpusRef() *fa.FA {
	b := fa.NewBuilder("bigcorpus-ref")
	start, active, closed, freed := b.State(), b.State(), b.State(), b.State()
	b.Start(start)
	b.EdgeStr(start, "open(X)", active)
	for _, op := range []string{"cfg(X)", "read(X)", "write(X)", "seek(X)", "flush(X)"} {
		b.EdgeStr(active, op, active)
	}
	b.EdgeStr(active, "close(X)", closed)
	b.EdgeStr(closed, "free(X)", freed)
	b.EdgeStr(freed, "free(X)", freed)
	b.Accept(active, closed, freed)
	return b.MustBuild()
}

// bigCorpusClasses samples the model until the class multiset is in hand;
// n is the sample count, not the class count.
func bigCorpusClasses(n int) *trace.Set {
	gen := xtrace.Generator{Model: bigCorpusModel(), Seed: 20030609}
	set, _ := gen.ScenarioSet(n)
	return set
}

// The full-size corpus context is built once and shared by the benchmarks
// below; at 60k samples it covers >10⁴ distinct classes.
var (
	bigOnce sync.Once
	bigFC   *Context
	bigErr  error
)

func bigCorpusContext() (*Context, error) {
	bigOnce.Do(func() {
		set := bigCorpusClasses(60000)
		bigFC, bigErr = TraceContext(set.Representatives(), bigCorpusRef())
	})
	return bigFC, bigErr
}

// TestBigCorpusScale pins the corpus generator to the scale the benchmark
// claims: at least 10⁴ distinct trace classes, all accepted by the
// reference FA. Skipped under -short (corpus generation takes seconds).
func TestBigCorpusScale(t *testing.T) {
	if testing.Short() {
		t.Skip("big corpus generation under -short")
	}
	if err := bigCorpusModel().Validate(); err != nil {
		t.Fatal(err)
	}
	fc, err := bigCorpusContext()
	if err != nil {
		t.Fatal(err)
	}
	if fc.NumObjects() < 10000 {
		t.Fatalf("big corpus has %d trace classes, want ≥ 10000", fc.NumObjects())
	}
}

// TestBigCorpusParallelDeterministic builds the lattice of a mid-size
// slice of the corpus (real sparse-path territory: thousands of objects,
// hundreds of extent words) serially and with a worker pool and requires
// identical results. The independent O(n²·|O|) AllPairs oracle runs only
// without -short.
func TestBigCorpusParallelDeterministic(t *testing.T) {
	set := bigCorpusClasses(4000)
	fc, err := TraceContext(set.Representatives(), bigCorpusRef())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := BuildCtx(context.Background(), fc, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildCtx(context.Background(), fc, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if par.Len() != serial.Len() {
		t.Fatalf("parallel build: %d concepts, serial %d", par.Len(), serial.Len())
	}
	if !reflect.DeepEqual(par.parents, serial.parents) || !reflect.DeepEqual(par.children, serial.children) {
		t.Fatalf("parallel covers differ from serial")
	}
	if par.top != serial.top || par.bottom != serial.bottom {
		t.Fatalf("parallel top/bottom differ from serial")
	}
	if testing.Short() {
		t.Skip("AllPairs oracle at big-corpus scale under -short")
	}
	parents, children := linkCoversAllPairs(serial)
	for i := range parents {
		insertionSortInts(parents[i])
		insertionSortInts(children[i])
	}
	for id := range serial.concepts {
		if !equalInts(serial.Parents(id), parents[id]) || !equalInts(serial.Children(id), children[id]) {
			t.Fatalf("covers of %d disagree with the all-pairs oracle", id)
		}
	}
}

// BenchmarkLatticeBig measures the build hot path at production corpus
// scale: >10⁴ trace-class objects, wide extents, heavy row duplication.
// Setup (trace generation, FA simulation) happens once outside the timer.
func BenchmarkLatticeBig(b *testing.B) {
	fc, err := bigCorpusContext()
	if err != nil {
		b.Fatal(err)
	}
	if fc.NumObjects() < 10000 {
		b.Fatalf("big corpus has %d trace classes, want ≥ 10000", fc.NumObjects())
	}
	b.Run("Build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if Build(fc).Len() == 0 {
				b.Fatal("empty lattice")
			}
		}
	})
	l := Build(fc)
	b.Run("LinkCovers", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := l.linkCovers(context.Background(), 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Find", func(b *testing.B) {
		b.ReportAllocs()
		rng := rand.New(rand.NewSource(7))
		x := l.Concept(rng.Intn(l.Len())).Extent
		for i := 0; i < b.N; i++ {
			l.Find(x)
		}
	})
}
