package concept

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/bitset"
	"repro/internal/fa"
	"repro/internal/obs"
	"repro/internal/trace"
)

// This file implements incremental lattice maintenance: adding or removing
// one object of a live lattice without rebuilding it, with results pinned
// byte-identical to a full BuildCtx rebuild over the updated context.
//
// Adding is the easy direction, and it is the one the paper's own choice of
// Godin et al.'s Algorithm 1 buys us: BuildCtx inserts objects one at a
// time, so adding object n to a lattice over objects 0..n-1 replays exactly
// the loop iteration the full rebuild would run next — the concept set,
// concept IDs, and extents come out identical by construction. Only the
// cover edges need repair, and the affected region is provably small: when
// the new row spawns no new concepts the Hasse diagram is unchanged, and
// when it does, parent lists change only for the new concepts and for old
// concepts lying strictly below one of them (a broken or inserted cover
// edge at c requires a new concept strictly above c).
//
// Removal is not order-stable in general — deleting an early object can
// flip the discovery order of later concepts and hence their IDs — so only
// the duplicate-row case (the common one at trace scale, where many trace
// classes share an executed-transition set) is updated in place; all other
// removals fall back to an in-place replay of the build over the spliced
// context, which is trivially byte-identical.
//
// Incremental mutation is not safe concurrently with queries; callers
// (cable sessions, the server) serialize access per lattice.

// AddTraceCtx appends one trace as a new object of a lattice built over a
// trace context (BuildFromTraces): the trace is simulated against the
// reference FA and its executed-transition row extends the context and the
// lattice in place. The reference FA must be the one the context was built
// from (same transition set), and it must accept the trace.
func (l *Lattice) AddTraceCtx(cc context.Context, t trace.Trace, ref *fa.FA) error {
	if ref.NumTransitions() != l.ctx.NumAttributes() {
		return fmt.Errorf("concept: reference FA %q has %d transitions, lattice context has %d attributes",
			ref.Name(), ref.NumTransitions(), l.ctx.NumAttributes())
	}
	executed, ok := ref.Executed(t)
	if !ok {
		name := t.ID
		if name == "" {
			name = fmt.Sprintf("t%d", l.ctx.NumObjects())
		}
		return fmt.Errorf("concept: reference FA %q rejects trace %q (%s)", ref.Name(), name, t.Key())
	}
	name := t.ID
	if name == "" {
		name = fmt.Sprintf("t%d", l.ctx.NumObjects())
	}
	return l.AddObjectCtx(cc, name, executed)
}

// RemoveTraceCtx removes the trace-class object with the given index,
// renumbering later objects down by one. It is RemoveObjectCtx under the
// trace-corpus vocabulary.
func (l *Lattice) RemoveTraceCtx(cc context.Context, o int) error {
	return l.RemoveObjectCtx(cc, o)
}

// AddObjectCtx appends one object with the given attribute row, updating
// the context, the concept set, the cover edges, and the query tables in
// place. The result is byte-identical to a full rebuild over the extended
// context. One add is atomic: cancellation is honored before any mutation,
// never in the middle of one.
func (l *Lattice) AddObjectCtx(cc context.Context, name string, row *bitset.Set) error {
	if err := cc.Err(); err != nil {
		return err
	}
	if len(l.concepts) == 0 {
		return fmt.Errorf("concept: cannot add to an empty (unbuilt) lattice")
	}
	numAttr := l.ctx.NumAttributes()
	bad := -1
	row.Range(func(a int) bool {
		if a >= numAttr {
			bad = a
			return false
		}
		return true
	})
	if bad >= 0 {
		return fmt.Errorf("concept: attribute %d out of range (%d attributes)", bad, numAttr)
	}
	sp := obs.StartSpan("lattice.incr.add")
	defer sp.End()
	if l.arena == nil {
		// Naive-built lattices have no arena; chain one on for growth.
		l.arena = bitset.NewArena()
	}
	l.repsEnsure()

	o := l.ctx.NumObjects()
	l.ctx.addObject(name, row)
	row = l.ctx.Attributes(o) // the context's own copy

	// Godin step: replay exactly the loop iteration BuildCtx would run for
	// object o — the pruned scan by default, the legacy full scan when the
	// lattice is pinned to it. Either way the new object joins reps iff its
	// row is novel, and it must be there before cover repair: candidate
	// generation is complete only over all distinct rows.
	firstNew := len(l.concepts)
	//cablevet:ignore ctxpropagate one add is atomic: cc was checked before mutation began, and aborting mid-insertion would tear the lattice
	if l.legacyGodin {
		scratch := &bitset.Set{}
		l.godinLegacy(o, row, scratch)
		key := string(row.AppendKey(nil))
		if _, dup := l.repRows[key]; !dup {
			l.repRows[key] = &rowCache{}
			l.reps = append(l.reps, int32(o))
		}
	} else {
		l.invEnsure()
		g := l.godin
		if g == nil {
			workers := l.workers
			if workers <= 0 {
				workers = runtime.GOMAXPROCS(0)
			}
			g = &godinScratch{workers: workers}
			l.godin = g
		}
		g.godinWordsEnsure(l)
		l.godinInsert(o, row, g)
	}

	l.repairCoversAfterAdd(firstNew)
	l.rescanTopBottom()
	l.updateTablesAfterAdd(o)
	obs.Count("lattice.incr.adds", 1)
	return nil
}

// updateTablesAfterAdd extends the query tables for one appended object.
// The ObjectConcept entries of earlier objects are stable under an add —
// concept IDs never change, intents are immutable, and old rows are
// untouched, so each σ({o'}) resolves to the same concept — which reduces
// the table work from numObj index lookups to one. AttributeConcept depends
// on the (changed) object columns and is recomputed; attribute universes
// are small.
func (l *Lattice) updateTablesAfterAdd(o int) {
	if len(l.objConcept) != o || len(l.attrConcept) != l.ctx.NumAttributes() {
		// A lattice whose tables were never built (or are from a foreign
		// constructor) gets the full pass.
		l.buildTables()
		return
	}
	sp := obs.StartSpan("lattice.tables")
	defer sp.End()
	id := l.idx.lookup(l.concepts, l.ctx.Attributes(o))
	if id < 0 {
		panic("concept: object row is not a closed intent")
	}
	l.objConcept = append(l.objConcept, id)
	scratch := &bitset.Set{}
	for a := range l.attrConcept {
		l.ctx.SigmaInto(scratch, l.ctx.Objects(a))
		id := l.idx.lookup(l.concepts, scratch)
		if id < 0 {
			panic("concept: attribute closure is not a closed intent")
		}
		l.attrConcept[a] = id
	}
}

// repairCoversAfterAdd fixes the Hasse diagram after the Godin step
// appended concepts firstNew.. (if any). When no concepts were born the
// diagram is unchanged: extent inclusion among old concepts is preserved by
// the add (if intent(d) ⊆ intent(c) and c gains o then intent(d) ⊆ row, so
// d gains o too), and a changed cover at c would require a concept strictly
// between c and an old neighbour — a new concept. By the same argument,
// when concepts were born, parent lists change only for the new concepts
// and for old concepts strictly below one of them; everything else keeps
// its list, and children lists are patched from the per-concept diffs.
func (l *Lattice) repairCoversAfterAdd(firstNew int) {
	n := len(l.concepts)
	if n == firstNew {
		return
	}
	// Extend the edge tables; new concepts' children fill in from diffs.
	for ci := firstNew; ci < n; ci++ {
		l.parents = append(l.parents, nil)
		l.children = append(l.children, []int{})
	}
	// Affected set: new concepts plus old concepts strictly below one.
	// c < n in the lattice order iff intent(n) ⊂ intent(c); intents are
	// unique per concept and new intents are novel, so SubsetOf is strict.
	affected := make([]bool, firstNew)
	recompute := make([]int, 0, n-firstNew)
	for ci := firstNew; ci < n; ci++ {
		nc := l.concepts[ci]
		for cj := 0; cj < firstNew; cj++ {
			if !affected[cj] && nc.Intent.SubsetOf(l.concepts[cj].Intent) {
				affected[cj] = true
			}
		}
		recompute = append(recompute, ci)
	}
	for cj := range affected {
		if affected[cj] {
			recompute = append(recompute, cj)
		}
	}
	seen := make([]int32, n)
	scratch := &bitset.Set{}
	var gen int32
	for _, ci := range recompute {
		gen++
		np := l.coverParents(ci, scratch, seen, gen)
		old := l.parents[ci] // nil for new concepts
		l.parents[ci] = np
		// Patch children from the sorted old/new diff.
		i, j := 0, 0
		for i < len(old) || j < len(np) {
			switch {
			case j >= len(np) || (i < len(old) && old[i] < np[j]):
				l.children[old[i]] = removeSortedInt(l.children[old[i]], ci)
				i++
			case i >= len(old) || np[j] < old[i]:
				l.children[np[j]] = insertSortedInt(l.children[np[j]], ci)
				j++
			default:
				i++
				j++
			}
		}
	}
}

// coverParents recomputes the upper covers of concept ci from scratch,
// mirroring linkCovers' per-concept scan exactly: candidates are the
// closures σ(extent ∪ {o}) over one representative o per distinct row,
// deduplicated, ordered by (extent size, ID), and filtered so a candidate
// survives iff no earlier-accepted cover sits inside it — which leaves
// precisely the minimal candidates, independent of collection order. The
// returned list is re-sorted ascending by ID, matching the rebuild's merge.
func (l *Lattice) coverParents(ci int, scratch *bitset.Set, seen []int32, gen int32) []int {
	c := l.concepts[ci]
	if c.Extent.Len() == l.ctx.NumObjects() {
		return []int{} // the top concept has no parents
	}
	var cand []int32
	for _, rep := range l.reps {
		ro := int(rep)
		if c.Extent.Has(ro) {
			continue
		}
		bitset.IntersectInto(scratch, c.Intent, l.ctx.Attributes(ro))
		id := l.idx.lookup(l.concepts, scratch)
		if id < 0 {
			panic("concept: closure missing from intent index")
		}
		if seen[id] != gen {
			seen[id] = gen
			cand = append(cand, int32(id))
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		a, b := cand[i], cand[j]
		sa, sb := l.concepts[a].Extent.Len(), l.concepts[b].Extent.Len()
		if sa != sb {
			return sa < sb
		}
		return a < b
	})
	acc := cand[:0]
	for _, cj := range cand {
		ce := l.concepts[cj].Extent
		dominated := false
		for _, k := range acc {
			if l.concepts[k].Extent.SubsetOf(ce) {
				dominated = true
				break
			}
		}
		if !dominated {
			acc = append(acc, cj)
		}
	}
	out := make([]int, len(acc))
	for i, cj := range acc {
		out[i] = int(cj)
	}
	insertionSortInts(out)
	return out
}

// rescanTopBottom recomputes top and bottom the way linkCovers does:
// first-win argmax/argmin over extent sizes in ID order.
func (l *Lattice) rescanTopBottom() {
	l.top, l.bottom = 0, 0
	if len(l.concepts) == 0 {
		return
	}
	topSize, botSize := l.concepts[0].Extent.Len(), l.concepts[0].Extent.Len()
	for i, c := range l.concepts {
		sz := c.Extent.Len()
		if sz > topSize {
			l.top, topSize = i, sz
		}
		if sz < botSize {
			l.bottom, botSize = i, sz
		}
	}
}

// RemoveObjectCtx deletes object o from the context and the lattice,
// renumbering later objects down by one. When o duplicates an earlier
// object's row the lattice is updated in place — no concept was born at o,
// so extents just shift and the diagram is untouched; otherwise the build
// is replayed over the spliced context (removal is not order-stable in
// general) and the result adopted under the same Lattice pointer. Either
// way the outcome is byte-identical to a full rebuild. On error (including
// cancellation mid-replay) the lattice is unchanged.
func (l *Lattice) RemoveObjectCtx(cc context.Context, o int) error {
	if err := cc.Err(); err != nil {
		return err
	}
	if o < 0 || o >= l.ctx.NumObjects() {
		return fmt.Errorf("concept: object %d out of range (%d objects)", o, l.ctx.NumObjects())
	}
	sp := obs.StartSpan("lattice.incr.remove")
	defer sp.End()
	l.repsEnsure()
	if !l.isRep(o) {
		// Duplicate-row fast path: an earlier object o' < o has the same
		// row, so no concept was discovered at o (the concept set before o
		// was already closed under intersection with this row) and the
		// replayed build visits the same intents in the same order. Extents
		// lose o and renumber; the cover edges, IDs, and top/bottom are
		// unchanged.
		l.ctx.removeObject(o)
		//cablevet:ignore ctxpropagate one remove is atomic: cc was checked before mutation began, and aborting mid-loop would tear the lattice
		for _, c := range l.concepts {
			c.Extent.RemoveShift(o)
		}
		//cablevet:ignore ctxpropagate same atomic-remove argument as the extent loop above
		for i, r := range l.reps {
			if int(r) > o {
				l.reps[i] = r - 1
			}
		}
		l.rescanTopBottom()
		l.buildTables()
		obs.Count("lattice.incr.removes", 1)
		return nil
	}
	// General path: replay the build over a spliced copy of the context and
	// adopt the result in place, so callers holding the *Lattice see the
	// update. The copy keeps the lattice intact if the replay is cancelled.
	nctx := l.ctx.clone()
	nctx.removeObject(o)
	opts := []BuildOption{WithWorkers(l.workers)}
	if l.legacyGodin {
		opts = append(opts, withLegacyGodin())
	}
	nl, err := BuildCtx(cc, nctx, opts...)
	if err != nil {
		return err
	}
	l.adopt(nl)
	obs.Count("lattice.incr.removes", 1)
	return nil
}

// adopt replaces l's entire state with nl's, keeping l's pointer identity.
func (l *Lattice) adopt(nl *Lattice) {
	l.ctx = nl.ctx
	l.concepts = nl.concepts
	l.parents = nl.parents
	l.children = nl.children
	l.top = nl.top
	l.bottom = nl.bottom
	l.idx = nl.idx
	l.objConcept = nl.objConcept
	l.attrConcept = nl.attrConcept
	l.arena = nl.arena
	l.workers = nl.workers
	l.reps, l.repRows = nl.reps, nl.repRows
	l.inv = nl.inv
	l.hdr = nl.hdr
	l.godin = nil // intent-word cache indexes the old concept set
	l.legacyGodin = nl.legacyGodin
}

// repsEnsure lazily builds the row-representative tables (one object per
// distinct context row, first-occurrence order). Replay caches start empty
// (upTo 0): the first repeat of each row folds the existing concepts in.
func (l *Lattice) repsEnsure() {
	if l.repRows != nil {
		return
	}
	numObj := l.ctx.NumObjects()
	l.reps = make([]int32, 0, numObj)
	l.repRows = make(map[string]*rowCache, numObj)
	var keyBuf []byte
	for o := 0; o < numObj; o++ {
		keyBuf = l.ctx.Attributes(o).AppendKey(keyBuf[:0])
		if _, dup := l.repRows[string(keyBuf)]; dup {
			continue
		}
		l.repRows[string(keyBuf)] = &rowCache{}
		l.reps = append(l.reps, int32(o))
	}
}

// isRep reports whether o is the first occurrence of its row. reps is
// ascending, so this is a binary search.
func (l *Lattice) isRep(o int) bool {
	i := sort.Search(len(l.reps), func(i int) bool { return int(l.reps[i]) >= o })
	return i < len(l.reps) && int(l.reps[i]) == o
}

// insertSortedInt inserts x into ascending xs, keeping it sorted. xs slices
// may alias a shared slab with exact capacity, so growth reallocates before
// shifting.
func insertSortedInt(xs []int, x int) []int {
	i := sort.SearchInts(xs, x)
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = x
	return xs
}

// removeSortedInt deletes x from ascending xs in place; absent x is a
// programming error upstream and panics.
func removeSortedInt(xs []int, x int) []int {
	i := sort.SearchInts(xs, x)
	if i >= len(xs) || xs[i] != x {
		panic("concept: cover edge to remove is missing")
	}
	copy(xs[i:], xs[i+1:])
	return xs[:len(xs)-1]
}
