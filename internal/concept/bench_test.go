package concept

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bitset"
	"repro/internal/event"
	"repro/internal/fa"
	"repro/internal/trace"
)

// benchContext builds a deterministic random context big enough that the
// asymptotic differences show: ~120 objects × 40 attributes, sparse rows.
func benchContext() *Context {
	rng := rand.New(rand.NewSource(99))
	objs := make([]string, 120)
	for i := range objs {
		objs[i] = "o"
	}
	attrs := make([]string, 40)
	for i := range attrs {
		attrs[i] = "a"
	}
	c := NewContext(objs, attrs)
	for o := 0; o < len(objs); o++ {
		for a := 0; a < len(attrs); a++ {
			if rng.Intn(4) == 0 {
				c.Relate(o, a)
			}
		}
	}
	return c
}

// benchRefAndTraces builds a mid-size reference automaton and a trace
// multiset sampled from its language with heavy class duplication — the
// shape TraceContext sees in a Cable session (many traces, few classes).
func benchRefAndTraces() (*fa.FA, []trace.Trace) {
	rng := rand.New(rand.NewSource(2003))
	const numStates, numSyms, numEdges = 20, 15, 70
	alpha := make([]event.Event, numSyms)
	for i := range alpha {
		alpha[i] = event.MustParse(fmt.Sprintf("op%d(X)", i))
	}
	bld := fa.NewBuilder("bench-ref")
	states := bld.States(numStates)
	bld.Start(states[0])
	for i := 0; i+1 < numStates; i++ {
		bld.Edge(states[i], alpha[i%numSyms], states[i+1])
	}
	bld.Accept(states[numStates-1])
	bld.Accept(states[numStates/2])
	for i := numStates - 1; i < numEdges; i++ {
		bld.Edge(states[rng.Intn(numStates)], alpha[rng.Intn(numSyms)], states[rng.Intn(numStates)])
	}
	ref := bld.MustBuild()
	classes := make([]trace.Trace, 0, 20)
	for len(classes) < 20 {
		if t, ok := ref.Sample(rng, 25); ok && len(t.Events) > 0 {
			classes = append(classes, t)
		}
	}
	traces := make([]trace.Trace, 100)
	for i := range traces {
		traces[i] = classes[i%len(classes)]
	}
	return ref, traces
}

// BenchmarkTraceContext measures Step 1's context construction end to end:
// dedup into classes, compiled simulation per class, shared executed rows.
func BenchmarkTraceContext(b *testing.B) {
	ref, traces := benchRefAndTraces()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TraceContext(traces, ref); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	c := benchContext()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Build(c).Len() == 0 {
			b.Fatal("empty lattice")
		}
	}
}

// BenchmarkLinkCovers isolates Hasse-diagram linking: the lattice is built
// once, then relinked. Fast is the size-bucketed, index-pruned production
// path; AllPairs is the all-pairs-plus-dominated-check loop it replaced.
func BenchmarkLinkCovers(b *testing.B) {
	l := Build(benchContext())
	b.Run("Fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.linkCovers(context.Background(), 1)
		}
	})
	b.Run("AllPairs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			linkCoversAllPairs(l)
		}
	})
}

// linkCoversAllPairs is the pre-optimization cover computation, kept in the
// benchmark suite as the comparison baseline.
func linkCoversAllPairs(l *Lattice) ([][]int, [][]int) {
	n := len(l.concepts)
	parents := make([][]int, n)
	children := make([][]int, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sizes := make([]int, n)
	for i, c := range l.concepts {
		sizes[i] = c.Extent.Len()
	}
	sort.Slice(order, func(i, j int) bool {
		if sizes[order[i]] != sizes[order[j]] {
			return sizes[order[i]] < sizes[order[j]]
		}
		return order[i] < order[j]
	})
	for idx, ci := range order {
		ext := l.concepts[ci].Extent
		var covers []int
		for _, cj := range order[idx+1:] {
			sup := l.concepts[cj].Extent
			if sizes[cj] == sizes[ci] || !ext.SubsetOf(sup) {
				continue
			}
			dominated := false
			for _, k := range covers {
				if l.concepts[k].Extent.SubsetOf(sup) {
					dominated = true
					break
				}
			}
			if !dominated {
				covers = append(covers, cj)
			}
		}
		for _, cj := range covers {
			parents[ci] = append(parents[ci], cj)
			children[cj] = append(children[cj], ci)
		}
	}
	return parents, children
}

// TestLinkCoversMatchesAllPairs pins the optimized linker to the original
// all-pairs implementation on random contexts.
func TestLinkCoversMatchesAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 60; iter++ {
		l := Build(randomContext(rng, 12, 9))
		parents, children := linkCoversAllPairs(l)
		for i := range parents {
			sort.Ints(parents[i])
			sort.Ints(children[i])
		}
		for id := range l.concepts {
			if !equalInts(l.Parents(id), parents[id]) {
				t.Fatalf("iter %d: parents of %d: fast %v, all-pairs %v", iter, id, l.Parents(id), parents[id])
			}
			if !equalInts(l.Children(id), children[id]) {
				t.Fatalf("iter %d: children of %d: fast %v, all-pairs %v", iter, id, l.Children(id), children[id])
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// byIntentScan is the pre-optimization linear-scan lookup, the baseline for
// the query benchmarks.
func (l *Lattice) byIntentScan(intent *bitset.Set) int {
	for _, c := range l.concepts {
		if c.Intent.Equal(intent) {
			return c.ID
		}
	}
	panic("concept: intent not in lattice (not closed?)")
}

// BenchmarkLatticeQueries measures the byIntent-backed query family, both
// through the hash index (production) and the linear scan it replaced.
func BenchmarkLatticeQueries(b *testing.B) {
	l := Build(benchContext())
	n := l.Len()
	b.Run("MeetJoin/Indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a, c := i%n, (i*7+3)%n
			l.Meet(a, c)
			l.Join(a, c)
		}
	})
	b.Run("MeetJoin/Scan", func(b *testing.B) {
		b.ReportAllocs()
		ctx := l.Context()
		for i := 0; i < b.N; i++ {
			a, c := i%n, (i*7+3)%n
			ext := bitset.Intersect(l.Concept(a).Extent, l.Concept(c).Extent)
			l.byIntentScan(ctx.Sigma(ext))
			intent := bitset.Intersect(l.Concept(a).Intent, l.Concept(c).Intent)
			l.byIntentScan(ctx.Sigma(ctx.Tau(intent)))
		}
	})
	b.Run("ObjectConcept/Indexed", func(b *testing.B) {
		b.ReportAllocs()
		numObj := l.Context().NumObjects()
		for i := 0; i < b.N; i++ {
			l.ObjectConcept(i % numObj)
		}
	})
	b.Run("ObjectConcept/Scan", func(b *testing.B) {
		b.ReportAllocs()
		ctx := l.Context()
		numObj := ctx.NumObjects()
		for i := 0; i < b.N; i++ {
			o := i % numObj
			l.byIntentScan(ctx.Sigma(bitset.FromSlice([]int{o})))
		}
	})
	b.Run("AttributeConcept/Indexed", func(b *testing.B) {
		b.ReportAllocs()
		numAttr := l.Context().NumAttributes()
		for i := 0; i < b.N; i++ {
			l.AttributeConcept(i % numAttr)
		}
	})
	b.Run("Find/Indexed", func(b *testing.B) {
		b.ReportAllocs()
		numObj := l.Context().NumObjects()
		x := bitset.FromSlice([]int{0, numObj / 2, numObj - 1})
		for i := 0; i < b.N; i++ {
			l.Find(x)
		}
	})
}
