package concept

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bitset"
)

// animals builds the context of Figure 9 (after Siff's thesis): animals as
// objects, descriptive adjectives as attributes.
func animals() *Context {
	objs := []string{"cat", "dog", "gibbon", "dolphin", "frog"}
	attrs := []string{"fourlegged", "haircovered", "intelligent", "marine", "thumbed"}
	c := NewContext(objs, attrs)
	rel := map[string][]string{
		"cat":     {"fourlegged", "haircovered"},
		"dog":     {"fourlegged", "haircovered", "intelligent"},
		"gibbon":  {"haircovered", "intelligent", "thumbed"},
		"dolphin": {"marine", "intelligent"},
		"frog":    {"fourlegged", "marine"},
	}
	idxO := map[string]int{}
	for i, o := range objs {
		idxO[o] = i
	}
	idxA := map[string]int{}
	for i, a := range attrs {
		idxA[a] = i
	}
	for o, as := range rel {
		for _, a := range as {
			c.Relate(idxO[o], idxA[a])
		}
	}
	return c
}

func TestContextBasics(t *testing.T) {
	c := animals()
	if c.NumObjects() != 5 || c.NumAttributes() != 5 {
		t.Fatalf("context shape %dx%d", c.NumObjects(), c.NumAttributes())
	}
	if !c.Has(0, 0) || c.Has(0, 3) {
		t.Error("Has wrong")
	}
	if c.ObjectName(2) != "gibbon" || c.AttributeName(4) != "thumbed" {
		t.Error("names wrong")
	}
}

func TestRelateOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Relate out of range did not panic")
		}
	}()
	animals().Relate(99, 0)
}

func TestSigmaTau(t *testing.T) {
	c := animals()
	// σ({cat, dog}) = {fourlegged, haircovered}.
	x := bitset.FromSlice([]int{0, 1})
	if got := c.Sigma(x).String(); got != "{0, 1}" {
		t.Errorf("Sigma = %s", got)
	}
	// τ({intelligent}) = {dog, gibbon, dolphin}.
	y := bitset.FromSlice([]int{2})
	if got := c.Tau(y).String(); got != "{1, 2, 3}" {
		t.Errorf("Tau = %s", got)
	}
	// σ(∅) = all attributes; τ(∅) = all objects.
	if c.Sigma(&bitset.Set{}).Len() != 5 || c.Tau(&bitset.Set{}).Len() != 5 {
		t.Error("empty-set conventions wrong")
	}
	// Similarity: |σ({cat, dog})| = 2 ≥ |σ({cat, dog, gibbon})| = 1.
	if c.Similarity(x) != 2 {
		t.Errorf("Similarity = %d", c.Similarity(x))
	}
}

func TestLatticeAnimals(t *testing.T) {
	c := animals()
	l := Build(c)
	// Every node must be a formal concept.
	for _, cc := range l.Concepts() {
		if !c.IsConcept(cc.Extent, cc.Intent) {
			t.Errorf("c%d (%s, %s) is not a concept", cc.ID, cc.Extent, cc.Intent)
		}
	}
	// Top extent is all objects; bottom intent is all attributes.
	if l.Concept(l.Top()).Extent.Len() != 5 {
		t.Errorf("top extent = %s", l.Concept(l.Top()).Extent)
	}
	if l.Concept(l.Bottom()).Intent.Len() != 5 {
		t.Errorf("bottom intent = %s", l.Concept(l.Bottom()).Intent)
	}
	// No duplicate intents.
	seen := map[string]bool{}
	for _, cc := range l.Concepts() {
		k := cc.Intent.Key()
		if seen[k] {
			t.Errorf("duplicate intent %s", cc.Intent)
		}
		seen[k] = true
	}
	// The concept for {haircovered, intelligent} has extent {dog, gibbon}.
	id, ok := l.Find(bitset.FromSlice([]int{1, 2}))
	if !ok {
		t.Fatal("Find not ok on own lattice")
	}
	got := l.Concept(id)
	if got.Extent.String() != "{1, 2}" || got.Intent.String() != "{1, 2}" {
		t.Errorf("Find({dog,gibbon}) = (%s, %s)", got.Extent, got.Intent)
	}
}

func TestLatticeOrderAndCovers(t *testing.T) {
	l := Build(animals())
	for _, c := range l.Concepts() {
		for _, p := range l.Parents(c.ID) {
			if !l.Leq(c.ID, p) {
				t.Errorf("child c%d not ≤ parent c%d", c.ID, p)
			}
			if l.Concept(p).Extent.Len() <= c.Extent.Len() {
				t.Errorf("parent extent not larger for c%d -> c%d", c.ID, p)
			}
			// Cover: no concept strictly between.
			for _, mid := range l.Concepts() {
				if mid.ID == c.ID || mid.ID == p {
					continue
				}
				if c.Extent.ProperSubsetOf(mid.Extent) && mid.Extent.ProperSubsetOf(l.Concept(p).Extent) {
					t.Errorf("c%d between c%d and its cover c%d", mid.ID, c.ID, p)
				}
			}
		}
		// children/parents are mirror images.
		for _, ch := range l.Children(c.ID) {
			found := false
			for _, p := range l.Parents(ch) {
				if p == c.ID {
					found = true
				}
			}
			if !found {
				t.Errorf("children/parents asymmetry at c%d/c%d", c.ID, ch)
			}
		}
	}
}

func TestSimilarityMonotone(t *testing.T) {
	// Key property from Section 3.1: X0 ⊆ X1 implies sim(X0) ≥ sim(X1).
	c := animals()
	l := Build(c)
	for _, a := range l.Concepts() {
		for _, b := range l.Concepts() {
			if a.Extent.SubsetOf(b.Extent) {
				if c.Similarity(a.Extent) < c.Similarity(b.Extent) {
					t.Errorf("similarity not antitone: c%d ⊆ c%d", a.ID, b.ID)
				}
				// Superset lattice on attributes: intent(b) ⊆ intent(a).
				if !b.Intent.SubsetOf(a.Intent) {
					t.Errorf("intents not reversed for c%d ⊆ c%d", a.ID, b.ID)
				}
			}
		}
	}
}

func TestFindForeignInputsNoPanic(t *testing.T) {
	l := Build(animals())
	// Object bits beyond the context's object range: a set from a bigger,
	// foreign context. Must report ok=false, not panic.
	foreign := bitset.FromSlice([]int{0, l.Context().NumObjects() + 5})
	if id, ok := l.Find(foreign); ok {
		t.Errorf("Find(foreign set) = %d, ok=true; want ok=false", id)
	}
	// A lattice whose index no longer matches its context: simulate by
	// building from a sub-context and asking about a row the index lacks.
	small := NewContext([]string{"o0", "o1"}, []string{"a0", "a1"})
	small.Relate(0, 0)
	stale := Build(small)
	small.Relate(1, 1) // mutate the context after the build: stale index
	if id, ok := stale.Find(bitset.FromSlice([]int{1})); ok {
		if stale.Concept(id) == nil {
			t.Error("stale Find returned ok with nil concept")
		}
	} // ok=false is the expected outcome; ok=true is fine only if still closed
}

func TestMeetJoinBadIDs(t *testing.T) {
	l := Build(animals())
	for _, pair := range [][2]int{{-1, 0}, {0, -1}, {l.Len(), 0}, {0, l.Len() + 7}} {
		if id, ok := l.Meet(pair[0], pair[1]); ok {
			t.Errorf("Meet(%d,%d) = %d, ok=true; want ok=false", pair[0], pair[1], id)
		}
		if id, ok := l.Join(pair[0], pair[1]); ok {
			t.Errorf("Join(%d,%d) = %d, ok=true; want ok=false", pair[0], pair[1], id)
		}
	}
}

func TestMeetJoin(t *testing.T) {
	l := Build(animals())
	for _, a := range l.Concepts() {
		for _, b := range l.Concepts() {
			m, mok := l.Meet(a.ID, b.ID)
			j, jok := l.Join(a.ID, b.ID)
			if !mok || !jok {
				t.Fatalf("Meet/Join(c%d,c%d) not ok on valid IDs", a.ID, b.ID)
			}
			if !l.Leq(m, a.ID) || !l.Leq(m, b.ID) {
				t.Fatalf("meet c%d of c%d,c%d not a lower bound", m, a.ID, b.ID)
			}
			if !l.Leq(a.ID, j) || !l.Leq(b.ID, j) {
				t.Fatalf("join c%d of c%d,c%d not an upper bound", j, a.ID, b.ID)
			}
			// Greatest/least: every other bound is below/above.
			for _, x := range l.Concepts() {
				if l.Leq(x.ID, a.ID) && l.Leq(x.ID, b.ID) && !l.Leq(x.ID, m) {
					t.Fatalf("meet not greatest: c%d", x.ID)
				}
				if l.Leq(a.ID, x.ID) && l.Leq(b.ID, x.ID) && !l.Leq(j, x.ID) {
					t.Fatalf("join not least: c%d", x.ID)
				}
			}
		}
	}
}

func TestAttributeObjectConcepts(t *testing.T) {
	c := animals()
	l := Build(c)
	for a := 0; a < c.NumAttributes(); a++ {
		id := l.AttributeConcept(a)
		if !l.Concept(id).Intent.Has(a) {
			t.Errorf("attribute concept of %d lacks the attribute", a)
		}
		// Maximality: no parent's intent contains a.
		for _, p := range l.Parents(id) {
			if l.Concept(p).Intent.Has(a) {
				t.Errorf("attribute %d not at maximal concept", a)
			}
		}
	}
	for o := 0; o < c.NumObjects(); o++ {
		id := l.ObjectConcept(o)
		if !l.Concept(id).Extent.Has(o) {
			t.Errorf("object concept of %d lacks the object", o)
		}
		for _, ch := range l.Children(id) {
			if l.Concept(ch).Extent.Has(o) {
				t.Errorf("object %d not at minimal concept", o)
			}
		}
	}
}

func TestTopDownOrder(t *testing.T) {
	l := Build(animals())
	order := l.TopDownOrder()
	if len(order) != l.Len() {
		t.Fatalf("TopDownOrder covers %d of %d", len(order), l.Len())
	}
	if order[0] != l.Top() {
		t.Error("TopDownOrder does not start at top")
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, c := range l.Concepts() {
		for _, p := range l.Parents(c.ID) {
			if pos[p] > pos[c.ID] {
				t.Errorf("parent c%d visited after child c%d", p, c.ID)
			}
		}
	}
}

func TestNaiveMatchesIncremental(t *testing.T) {
	a := Build(animals())
	b := BuildNaive(animals())
	if !Equal(a, b) {
		t.Fatalf("builders disagree:\nincremental:\n%s\nnaive:\n%s", a, b)
	}
}

func TestEmptyAndDegenerateContexts(t *testing.T) {
	// No objects: single concept, top == bottom.
	l := Build(NewContext(nil, []string{"a", "b"}))
	if l.Len() != 1 || l.Top() != l.Bottom() {
		t.Errorf("empty-object lattice: %d concepts", l.Len())
	}
	// No attributes: single concept holding all objects.
	c := NewContext([]string{"x", "y"}, nil)
	l = Build(c)
	if l.Len() != 1 || l.Concept(l.Top()).Extent.Len() != 2 {
		t.Errorf("empty-attribute lattice wrong: %s", l)
	}
	// Identical rows collapse.
	c = NewContext([]string{"x", "y"}, []string{"a"})
	c.Relate(0, 0)
	c.Relate(1, 0)
	l = Build(c)
	// Concepts: ({x,y},{a}) and bottom ({x,y},{a})? σ({x,y})={a} so the
	// full-extent concept has intent {a}; bottom intent {a} too — they are
	// the same concept. Expect exactly 1.
	if l.Len() != 1 {
		t.Errorf("identical rows: %d concepts, want 1", l.Len())
	}
	if !Equal(Build(c), BuildNaive(c)) {
		t.Error("builders disagree on degenerate context")
	}
}

func TestContextString(t *testing.T) {
	s := animals().String()
	if !strings.Contains(s, "gibbon") || !strings.Contains(s, "x") {
		t.Errorf("context table = %q", s)
	}
}

func TestLatticeDot(t *testing.T) {
	dot := Build(animals()).Dot("animals")
	for _, want := range []string{"digraph", "thumbed", "gibbon", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot missing %q", want)
		}
	}
}

func TestTree(t *testing.T) {
	l := Build(animals())
	out := l.Tree(nil)
	// Every concept appears exactly once expanded (as "cN: "), and the
	// root is the top concept.
	for _, c := range l.Concepts() {
		marker := fmt.Sprintf("c%d: ", c.ID)
		if n := strings.Count(out, marker); n != 1 {
			t.Errorf("concept %d expanded %d times:\n%s", c.ID, n, out)
		}
	}
	if !strings.HasPrefix(out, fmt.Sprintf("c%d: ", l.Top())) {
		t.Errorf("tree does not start at top:\n%s", out)
	}
	// DAG back-references appear for multi-parent concepts.
	if !strings.Contains(out, "↟") {
		t.Errorf("expected back-references in a non-tree lattice:\n%s", out)
	}
	// Custom labels are used.
	custom := l.Tree(func(id int) string { return "XLABELX" })
	if !strings.Contains(custom, "XLABELX") {
		t.Error("custom label ignored")
	}
}
