package concept

import (
	"fmt"
	"strings"
)

// Tree renders the lattice's Hasse diagram as an indented text tree rooted
// at the top concept — the terminal stand-in for the Dotty canvas the
// original Cable drew on. The lattice is a DAG, so a concept reachable
// through several parents is expanded under its first parent and shown as
// a back-reference ("↟ c7") elsewhere. label supplies the per-concept
// annotation (the Cable REPL shows labeling states and sizes).
func (l *Lattice) Tree(label func(id int) string) string {
	if label == nil {
		label = func(id int) string {
			c := l.Concept(id)
			return fmt.Sprintf("%d object(s), %d attribute(s)", c.Extent.Len(), c.Intent.Len())
		}
	}
	var b strings.Builder
	expanded := make([]bool, l.Len())
	var walk func(id int, prefix string, childPrefix string)
	walk = func(id int, prefix, childPrefix string) {
		if expanded[id] {
			fmt.Fprintf(&b, "%s↟ c%d\n", prefix, id)
			return
		}
		expanded[id] = true
		fmt.Fprintf(&b, "%sc%d: %s\n", prefix, id, label(id))
		children := l.Children(id)
		for i, ch := range children {
			connector, nextPrefix := "├─ ", "│  "
			if i == len(children)-1 {
				connector, nextPrefix = "└─ ", "   "
			}
			walk(ch, childPrefix+connector, childPrefix+nextPrefix)
		}
	}
	walk(l.Top(), "", "")
	return b.String()
}
