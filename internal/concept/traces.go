package concept

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/fa"
	"repro/internal/obs"
	"repro/internal/trace"
)

// TraceContext builds the formal context of Section 3.2 from a set of traces
// and a reference FA: objects are the traces, attributes are the FA's
// transitions, and (o, a) ∈ R iff transition a lies on some accepting run of
// the FA on o.
//
// Every trace must be accepted by the reference FA — the paper requires a
// reference FA that "recognizes (at least)" the traces being clustered. A
// rejected trace yields an error naming it, so callers can pick a coarser
// reference FA (fa.FromTraces always works).
//
// The per-trace accepting-run simulations are independent, so they fan out
// over a GOMAXPROCS-bounded worker pool; the relation is then assembled in
// input order, making the result identical to a serial run.
func TraceContext(traces []trace.Trace, ref *fa.FA) (*Context, error) {
	sp := obs.StartSpan("concept.context")
	defer sp.End()
	obs.Count("concept.context.traces", int64(len(traces)))
	objNames := make([]string, len(traces))
	for i, t := range traces {
		name := t.ID
		if name == "" {
			name = fmt.Sprintf("t%d", i)
		}
		objNames[i] = name
	}
	attrNames := make([]string, ref.NumTransitions())
	for i, tr := range ref.Transitions() {
		attrNames[i] = tr.String()
	}
	ctx := NewContext(objNames, attrNames)
	executed := make([]*bitset.Set, len(traces))
	rejected := make([]bool, len(traces))
	forEach(len(traces), func(o int) {
		ex, ok := ref.Executed(traces[o])
		executed[o], rejected[o] = ex, !ok
	})
	for o := range traces {
		if rejected[o] {
			return nil, fmt.Errorf("concept: reference FA %q rejects trace %q (%s)", ref.Name(), objNames[o], traces[o].Key())
		}
		executed[o].Range(func(a int) bool {
			ctx.Relate(o, a)
			return true
		})
	}
	return ctx, nil
}

// forEach runs f(i) for i in [0, n), fanning out over up to GOMAXPROCS
// workers. For n ≤ 1 or a single-processor limit it runs inline.
func forEach(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// BuildFromTraces is the one-call form of Step 1 of the paper's method:
// compute the context of traces × executed transitions and construct its
// concept lattice.
func BuildFromTraces(traces []trace.Trace, ref *fa.FA) (*Lattice, error) {
	ctx, err := TraceContext(traces, ref)
	if err != nil {
		return nil, err
	}
	return Build(ctx), nil
}
