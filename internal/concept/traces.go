package concept

import (
	"context"
	"fmt"

	"repro/internal/fa"
	"repro/internal/obs"
	"repro/internal/trace"
)

// TraceContext builds the formal context of Section 3.2 from a set of traces
// and a reference FA: objects are the traces, attributes are the FA's
// transitions, and (o, a) ∈ R iff transition a lies on some accepting run of
// the FA on o. It is TraceContextCtx without cancellation or a worker bound.
func TraceContext(traces []trace.Trace, ref *fa.FA) (*Context, error) {
	return TraceContextCtx(context.Background(), traces, ref, 0)
}

// TraceContextCtx is TraceContext with cancellation and an explicit worker
// bound (0 means GOMAXPROCS).
//
// Every trace must be accepted by the reference FA — the paper requires a
// reference FA that "recognizes (at least)" the traces being clustered. A
// rejected trace yields an error naming it, so callers can pick a coarser
// reference FA (fa.FromTraces always works).
//
// The reference FA is compiled once (fa.Sim) and the batch simulation
// dedups to one representative per identical-event trace class before
// fanning out over a bounded worker pool: duplicate traces share the class
// representative's executed-transition set, so the relation — assembled in
// input order and therefore identical to a serial per-trace run — costs one
// simulation per class, not per trace. Cancellation is checked between
// classes: once ctx is done no new simulation starts and ctx.Err() is
// returned.
func TraceContextCtx(ctx context.Context, traces []trace.Trace, ref *fa.FA, workers int) (*Context, error) {
	sp := obs.StartSpan("concept.context")
	defer sp.End()
	obs.Count("concept.context.traces", int64(len(traces)))
	// Strided cancellation checks keep the naming and relation loops
	// responsive on very large inputs without paying a select per item.
	done := ctx.Done()
	cancelled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	objNames := make([]string, len(traces))
	for i, t := range traces {
		if i&1023 == 0 && cancelled() {
			return nil, ctx.Err()
		}
		name := t.ID
		if name == "" {
			name = fmt.Sprintf("t%d", i)
		}
		objNames[i] = name
	}
	attrNames := make([]string, ref.NumTransitions())
	for i, tr := range ref.Transitions() {
		if i&1023 == 0 && cancelled() {
			return nil, ctx.Err()
		}
		attrNames[i] = tr.String()
	}
	fc := NewContext(objNames, attrNames)
	executed, accepted, err := ref.Sim().ExecutedAllCtx(ctx, traces, workers)
	if err != nil {
		return nil, err
	}
	for o := range traces {
		if o&1023 == 0 && cancelled() {
			return nil, ctx.Err()
		}
		if !accepted[o] {
			return nil, fmt.Errorf("concept: reference FA %q rejects trace %q (%s)", ref.Name(), objNames[o], traces[o].Key())
		}
		executed[o].Range(func(a int) bool {
			fc.Relate(o, a)
			return true
		})
	}
	return fc, nil
}

// BuildFromTraces is the one-call form of Step 1 of the paper's method:
// compute the context of traces × executed transitions and construct its
// concept lattice.
func BuildFromTraces(traces []trace.Trace, ref *fa.FA) (*Lattice, error) {
	return BuildFromTracesCtx(context.Background(), traces, ref, 0)
}

// BuildFromTracesCtx is BuildFromTraces with cancellation and a worker
// bound, for callers serving remote requests: a done ctx aborts both the
// context computation and the lattice construction between work items.
func BuildFromTracesCtx(ctx context.Context, traces []trace.Trace, ref *fa.FA, workers int) (*Lattice, error) {
	fc, err := TraceContextCtx(ctx, traces, ref, workers)
	if err != nil {
		return nil, err
	}
	return BuildCtx(ctx, fc, WithWorkers(workers))
}
