package concept

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/fa"
	"repro/internal/obs"
	"repro/internal/trace"
)

// TraceContext builds the formal context of Section 3.2 from a set of traces
// and a reference FA: objects are the traces, attributes are the FA's
// transitions, and (o, a) ∈ R iff transition a lies on some accepting run of
// the FA on o. It is TraceContextCtx without cancellation or a worker bound.
func TraceContext(traces []trace.Trace, ref *fa.FA) (*Context, error) {
	return TraceContextCtx(context.Background(), traces, ref, 0)
}

// TraceContextCtx is TraceContext with cancellation and an explicit worker
// bound (0 means GOMAXPROCS).
//
// Every trace must be accepted by the reference FA — the paper requires a
// reference FA that "recognizes (at least)" the traces being clustered. A
// rejected trace yields an error naming it, so callers can pick a coarser
// reference FA (fa.FromTraces always works).
//
// The per-trace accepting-run simulations are independent, so they fan out
// over a bounded worker pool; the relation is then assembled in input
// order, making the result identical to a serial run. Cancellation is
// checked between traces: once ctx is done no new simulation starts and
// ctx.Err() is returned.
func TraceContextCtx(ctx context.Context, traces []trace.Trace, ref *fa.FA, workers int) (*Context, error) {
	sp := obs.StartSpan("concept.context")
	defer sp.End()
	obs.Count("concept.context.traces", int64(len(traces)))
	objNames := make([]string, len(traces))
	for i, t := range traces {
		name := t.ID
		if name == "" {
			name = fmt.Sprintf("t%d", i)
		}
		objNames[i] = name
	}
	attrNames := make([]string, ref.NumTransitions())
	for i, tr := range ref.Transitions() {
		attrNames[i] = tr.String()
	}
	fc := NewContext(objNames, attrNames)
	executed := make([]*bitset.Set, len(traces))
	rejected := make([]bool, len(traces))
	if err := forEach(ctx, len(traces), workers, func(o int) {
		ex, ok := ref.Executed(traces[o])
		executed[o], rejected[o] = ex, !ok
	}); err != nil {
		return nil, err
	}
	for o := range traces {
		if rejected[o] {
			return nil, fmt.Errorf("concept: reference FA %q rejects trace %q (%s)", ref.Name(), objNames[o], traces[o].Key())
		}
		executed[o].Range(func(a int) bool {
			fc.Relate(o, a)
			return true
		})
	}
	return fc, nil
}

// forEach runs f(i) for i in [0, n), fanning out over up to `workers`
// goroutines (0 means GOMAXPROCS). For n ≤ 1 or a single-worker limit it
// runs inline. Cancellation is checked before each item; once ctx is done
// no new item is claimed and ctx.Err() is returned (in-flight items still
// finish, so f never runs concurrently with the caller's error handling).
func forEach(ctx context.Context, n, workers int, f func(i int)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			f(i)
		}
		return nil
	}
	var next int64 = -1
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					cancelled.Store(true)
					return
				default:
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// BuildFromTraces is the one-call form of Step 1 of the paper's method:
// compute the context of traces × executed transitions and construct its
// concept lattice.
func BuildFromTraces(traces []trace.Trace, ref *fa.FA) (*Lattice, error) {
	return BuildFromTracesCtx(context.Background(), traces, ref, 0)
}

// BuildFromTracesCtx is BuildFromTraces with cancellation and a worker
// bound, for callers serving remote requests: a done ctx aborts both the
// context computation and the lattice construction between work items.
func BuildFromTracesCtx(ctx context.Context, traces []trace.Trace, ref *fa.FA, workers int) (*Lattice, error) {
	fc, err := TraceContextCtx(ctx, traces, ref, workers)
	if err != nil {
		return nil, err
	}
	return BuildCtx(ctx, fc)
}
