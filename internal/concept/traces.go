package concept

import (
	"fmt"

	"repro/internal/fa"
	"repro/internal/trace"
)

// TraceContext builds the formal context of Section 3.2 from a set of traces
// and a reference FA: objects are the traces, attributes are the FA's
// transitions, and (o, a) ∈ R iff transition a lies on some accepting run of
// the FA on o.
//
// Every trace must be accepted by the reference FA — the paper requires a
// reference FA that "recognizes (at least)" the traces being clustered. A
// rejected trace yields an error naming it, so callers can pick a coarser
// reference FA (fa.FromTraces always works).
func TraceContext(traces []trace.Trace, ref *fa.FA) (*Context, error) {
	objNames := make([]string, len(traces))
	for i, t := range traces {
		name := t.ID
		if name == "" {
			name = fmt.Sprintf("t%d", i)
		}
		objNames[i] = name
	}
	attrNames := make([]string, ref.NumTransitions())
	for i, tr := range ref.Transitions() {
		attrNames[i] = tr.String()
	}
	ctx := NewContext(objNames, attrNames)
	for o, t := range traces {
		executed, ok := ref.Executed(t)
		if !ok {
			return nil, fmt.Errorf("concept: reference FA %q rejects trace %q (%s)", ref.Name(), objNames[o], t.Key())
		}
		executed.Range(func(a int) bool {
			ctx.Relate(o, a)
			return true
		})
	}
	return ctx, nil
}

// BuildFromTraces is the one-call form of Step 1 of the paper's method:
// compute the context of traces × executed transitions and construct its
// concept lattice.
func BuildFromTraces(traces []trace.Trace, ref *fa.FA) (*Lattice, error) {
	ctx, err := TraceContext(traces, ref)
	if err != nil {
		return nil, err
	}
	return Build(ctx), nil
}
