package concept

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bitset"
	"repro/internal/fa"
	"repro/internal/trace"
)

func randomContext(rng *rand.Rand, maxObjs, maxAttrs int) *Context {
	no := 1 + rng.Intn(maxObjs)
	na := 1 + rng.Intn(maxAttrs)
	objs := make([]string, no)
	for i := range objs {
		objs[i] = fmt.Sprintf("o%d", i)
	}
	attrs := make([]string, na)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%d", i)
	}
	c := NewContext(objs, attrs)
	for o := 0; o < no; o++ {
		for a := 0; a < na; a++ {
			if rng.Intn(3) == 0 {
				c.Relate(o, a)
			}
		}
	}
	return c
}

func TestPropBuildersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 200; iter++ {
		c := randomContext(rng, 10, 8)
		opt, naive := Build(c), BuildNaive(c)
		if !Equal(opt, naive) {
			t.Fatalf("iter %d: builders disagree on\n%s\nincremental:\n%s\nnaive:\n%s",
				iter, c, opt, naive)
		}
		// Equal covers concepts and cover edges up to renumbering; check
		// top and bottom by their defining sets too.
		if !opt.Concept(opt.Top()).Extent.Equal(naive.Concept(naive.Top()).Extent) {
			t.Fatalf("iter %d: top extents disagree", iter)
		}
		if !opt.Concept(opt.Bottom()).Intent.Equal(naive.Concept(naive.Bottom()).Intent) {
			t.Fatalf("iter %d: bottom intents disagree", iter)
		}
		checkLatticeInvariants(t, opt)
		checkLatticeInvariants(t, naive)
	}
}

// checkLatticeInvariants is the complete-lattice sanity sweep that used to
// run (as a panic guard) inside linkCovers; it now lives in tests only.
func checkLatticeInvariants(t *testing.T, l *Lattice) {
	t.Helper()
	for _, c := range l.Concepts() {
		// Every concept's own intent must resolve through the index — the
		// closed-intent invariant that Find/Meet/Join rely on. Production
		// code reports a miss via ok=false; here a miss is a hard failure.
		if id, ok := l.byIntent(c.Intent); !ok || id != c.ID {
			t.Fatalf("concept %d: intent not in index (not closed?)", c.ID)
		}
		if len(l.Parents(c.ID)) == 0 && c.ID != l.Top() {
			t.Fatalf("concept %d has no parents but is not the top", c.ID)
		}
		if len(l.Children(c.ID)) == 0 && c.ID != l.Bottom() {
			t.Fatalf("concept %d has no children but is not the bottom", c.ID)
		}
		for _, p := range l.Parents(c.ID) {
			if !c.Extent.ProperSubsetOf(l.Concept(p).Extent) {
				t.Fatalf("parent %d of %d does not strictly contain it", p, c.ID)
			}
			// Cover minimality: nothing strictly between.
			for _, mid := range l.Concepts() {
				if mid.ID != c.ID && mid.ID != p &&
					c.Extent.ProperSubsetOf(mid.Extent) &&
					mid.Extent.ProperSubsetOf(l.Concept(p).Extent) {
					t.Fatalf("concept %d lies between %d and its cover %d", mid.ID, c.ID, p)
				}
			}
		}
	}
}

// TestPropIndexedQueriesMatchScan pits the hash-index-backed queries
// against brute-force linear scans over all concepts.
func TestPropIndexedQueriesMatchScan(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 100; iter++ {
		c := randomContext(rng, 10, 8)
		l := Build(c)
		// byIntent (via Find): scan for the concept with intent σ(X).
		for trial := 0; trial < 5; trial++ {
			x := bitset.New(c.NumObjects())
			for o := 0; o < c.NumObjects(); o++ {
				if rng.Intn(2) == 0 {
					x.Add(o)
				}
			}
			intent := c.Sigma(x)
			want := -1
			for _, cc := range l.Concepts() {
				if cc.Intent.Equal(intent) {
					want = cc.ID
					break
				}
			}
			got, ok := l.Find(x)
			if !ok {
				t.Fatalf("iter %d: Find(%s) not ok on its own lattice", iter, x)
			}
			if got != want {
				t.Fatalf("iter %d: Find(%s) = %d, scan = %d", iter, x, got, want)
			}
		}
		// ObjectConcept: minimal concept whose extent contains o.
		for o := 0; o < c.NumObjects(); o++ {
			got := l.ObjectConcept(o)
			for _, cc := range l.Concepts() {
				if cc.Extent.Has(o) && cc.Extent.ProperSubsetOf(l.Concept(got).Extent) {
					t.Fatalf("iter %d: ObjectConcept(%d) = %d is not minimal (%d smaller)", iter, o, got, cc.ID)
				}
			}
			if !l.Concept(got).Extent.Has(o) {
				t.Fatalf("iter %d: ObjectConcept(%d) lacks the object", iter, o)
			}
		}
		// AttributeConcept: maximal concept whose intent contains a.
		for a := 0; a < c.NumAttributes(); a++ {
			got := l.AttributeConcept(a)
			for _, cc := range l.Concepts() {
				if cc.Intent.Has(a) && l.Concept(got).Extent.ProperSubsetOf(cc.Extent) {
					t.Fatalf("iter %d: AttributeConcept(%d) = %d is not maximal (%d larger)", iter, a, got, cc.ID)
				}
			}
			if !l.Concept(got).Intent.Has(a) {
				t.Fatalf("iter %d: AttributeConcept(%d) lacks the attribute", iter, a)
			}
		}
		// Meet/Join: scan for the greatest lower / least upper bound.
		for trial := 0; trial < 10; trial++ {
			a, b := rng.Intn(l.Len()), rng.Intn(l.Len())
			m, mok := l.Meet(a, b)
			j, jok := l.Join(a, b)
			if !mok || !jok {
				t.Fatalf("iter %d: Meet/Join(%d,%d) not ok on valid IDs", iter, a, b)
			}
			for _, x := range l.Concepts() {
				if l.Leq(x.ID, a) && l.Leq(x.ID, b) && !l.Leq(x.ID, m) {
					t.Fatalf("iter %d: Meet(%d,%d)=%d not greatest", iter, a, b, m)
				}
				if l.Leq(a, x.ID) && l.Leq(b, x.ID) && !l.Leq(j, x.ID) {
					t.Fatalf("iter %d: Join(%d,%d)=%d not least", iter, a, b, j)
				}
			}
			if !l.Leq(m, a) || !l.Leq(m, b) || !l.Leq(a, j) || !l.Leq(b, j) {
				t.Fatalf("iter %d: Meet/Join not bounds", iter)
			}
		}
	}
}

func TestPropConceptsAreFixpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 100; iter++ {
		c := randomContext(rng, 12, 8)
		l := Build(c)
		for _, cc := range l.Concepts() {
			if !c.Sigma(cc.Extent).Equal(cc.Intent) {
				t.Fatalf("iter %d: σ(extent) != intent for c%d", iter, cc.ID)
			}
			if !c.Tau(cc.Intent).Equal(cc.Extent) {
				t.Fatalf("iter %d: τ(intent) != extent for c%d", iter, cc.ID)
			}
		}
	}
}

func TestPropGaloisConnection(t *testing.T) {
	// σ and τ form a Galois connection: X ⊆ τ(Y) iff Y ⊆ σ(X); also the
	// closure facts X ⊆ τ(σ(X)) and σ = σ∘τ∘σ.
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 200; iter++ {
		c := randomContext(rng, 10, 8)
		x := bitset.New(c.NumObjects())
		for o := 0; o < c.NumObjects(); o++ {
			if rng.Intn(2) == 0 {
				x.Add(o)
			}
		}
		y := bitset.New(c.NumAttributes())
		for a := 0; a < c.NumAttributes(); a++ {
			if rng.Intn(2) == 0 {
				y.Add(a)
			}
		}
		if x.SubsetOf(c.Tau(y)) != y.SubsetOf(c.Sigma(x)) {
			t.Fatalf("iter %d: Galois connection violated", iter)
		}
		if !x.SubsetOf(c.Tau(c.Sigma(x))) {
			t.Fatalf("iter %d: X ⊄ τσ(X)", iter)
		}
		if !c.Sigma(c.Tau(c.Sigma(x))).Equal(c.Sigma(x)) {
			t.Fatalf("iter %d: στσ != σ", iter)
		}
	}
}

func TestPropEveryClosureIsAConcept(t *testing.T) {
	// For every subset X of objects, (τσ(X), σ(X)) must appear in the
	// lattice. Checked exhaustively for small contexts.
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 50; iter++ {
		c := randomContext(rng, 6, 6)
		l := Build(c)
		byIntent := map[string]*Concept{}
		for _, cc := range l.Concepts() {
			byIntent[cc.Intent.Key()] = cc
		}
		n := c.NumObjects()
		for mask := 0; mask < 1<<uint(n); mask++ {
			x := bitset.New(n)
			for o := 0; o < n; o++ {
				if mask&(1<<uint(o)) != 0 {
					x.Add(o)
				}
			}
			intent := c.Sigma(x)
			cc, ok := byIntent[intent.Key()]
			if !ok {
				t.Fatalf("iter %d: closure of %s missing from lattice", iter, x)
			}
			if !cc.Extent.Equal(c.Tau(intent)) {
				t.Fatalf("iter %d: wrong extent for closure of %s", iter, x)
			}
		}
	}
}

func TestPropLatticeSizeBound(t *testing.T) {
	// |lattice| ≤ 2^min(|O|, |A|), and ≤ 2^k·|O|+1-ish where k bounds row
	// size; we check the hard bound.
	rng := rand.New(rand.NewSource(37))
	for iter := 0; iter < 60; iter++ {
		c := randomContext(rng, 8, 8)
		l := Build(c)
		m := c.NumObjects()
		if c.NumAttributes() < m {
			m = c.NumAttributes()
		}
		if l.Len() > 1<<uint(m)+1 {
			t.Fatalf("iter %d: lattice size %d exceeds bound", iter, l.Len())
		}
	}
}

func TestTraceContext(t *testing.T) {
	// The Section 2 stdio violations against the Figure 3-style reference:
	// cluster by executed transitions.
	b := fa.NewBuilder("ref")
	s := b.States(1)
	b.Start(s[0])
	b.Accept(s[0])
	b.EdgeStr(s[0], "X = fopen()", s[0])
	b.EdgeStr(s[0], "X = popen()", s[0])
	b.EdgeStr(s[0], "pclose(X)", s[0])
	b.EdgeStr(s[0], "fread(X)", s[0])
	ref := b.MustBuild()

	traces := []trace.Trace{
		trace.ParseEvents("v1", "X = popen()", "pclose(X)"),
		trace.ParseEvents("v2", "X = popen()", "fread(X)"),
		trace.ParseEvents("v3", "X = fopen()"),
	}
	ctx, err := TraceContext(traces, ref)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.NumObjects() != 3 || ctx.NumAttributes() != 4 {
		t.Fatalf("context shape %dx%d", ctx.NumObjects(), ctx.NumAttributes())
	}
	// v1 executes popen (attr 1) and pclose (attr 2).
	if !ctx.Has(0, 1) || !ctx.Has(0, 2) || ctx.Has(0, 0) || ctx.Has(0, 3) {
		t.Errorf("v1 row wrong: %s", ctx.Attributes(0))
	}
	l, err := BuildFromTraces(traces, ref)
	if err != nil {
		t.Fatal(err)
	}
	// The two popen traces share a concept whose intent includes the popen
	// transition.
	id, ok := l.Find(bitset.FromSlice([]int{0, 1}))
	if !ok {
		t.Fatal("Find not ok on freshly built lattice")
	}
	if !l.Concept(id).Intent.Has(1) {
		t.Errorf("popen concept intent = %s", l.Concept(id).Intent)
	}
	if l.Concept(id).Extent.Has(2) {
		t.Errorf("fopen trace in popen concept")
	}
}

func TestTraceContextRejectsUnrecognized(t *testing.T) {
	b := fa.NewBuilder("tiny")
	s := b.States(1)
	b.Start(s[0])
	b.Accept(s[0])
	b.EdgeStr(s[0], "a()", s[0])
	ref := b.MustBuild()
	_, err := TraceContext([]trace.Trace{trace.ParseEvents("bad", "zzz()")}, ref)
	if err == nil {
		t.Fatal("TraceContext accepted unrecognized trace")
	}
}

func TestTraceContextParallelDeterministic(t *testing.T) {
	// The per-trace FA simulations fan out over workers; the assembled
	// context (and thus the lattice) must be identical to a serial run.
	b := fa.NewBuilder("ref")
	s := b.States(1)
	b.Start(s[0])
	b.Accept(s[0])
	for _, ev := range []string{"X = fopen()", "X = popen()", "fread(X)", "fwrite(X)", "fclose(X)", "pclose(X)"} {
		b.EdgeStr(s[0], ev, s[0])
	}
	ref := b.MustBuild()
	rng := rand.New(rand.NewSource(53))
	ops := []string{"X = fopen()", "X = popen()", "fread(X)", "fwrite(X)", "fclose(X)", "pclose(X)"}
	var traces []trace.Trace
	for i := 0; i < 40; i++ {
		var evs []string
		for n := 1 + rng.Intn(6); n > 0; n-- {
			evs = append(evs, ops[rng.Intn(len(ops))])
		}
		traces = append(traces, trace.ParseEvents(fmt.Sprintf("t%d", i), evs...))
	}
	prev := runtime.GOMAXPROCS(1)
	serial, errS := BuildFromTraces(traces, ref)
	runtime.GOMAXPROCS(4)
	parallel, errP := BuildFromTraces(traces, ref)
	runtime.GOMAXPROCS(prev)
	if errS != nil || errP != nil {
		t.Fatal(errS, errP)
	}
	if !Equal(serial, parallel) {
		t.Fatal("parallel TraceContext produced a different lattice than serial")
	}
	if serial.Top() != parallel.Top() || serial.Bottom() != parallel.Bottom() {
		t.Fatal("parallel TraceContext renumbered top/bottom")
	}
}

func TestTraceContextNamesDefault(t *testing.T) {
	ref := fa.Unordered(nil)
	ctx, err := TraceContext([]trace.Trace{{}}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.ObjectName(0) != "t0" {
		t.Errorf("default object name = %q", ctx.ObjectName(0))
	}
}
