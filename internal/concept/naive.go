package concept

import (
	"repro/internal/bitset"
)

// BuildNaive constructs the concept lattice by closure enumeration: the set
// of intents is the closure of {all attributes} under intersection with
// object rows, and each extent is recovered as τ(intent). It is an
// independent implementation used as an oracle in property tests and as the
// baseline in the lattice-construction ablation bench; Build is the
// incremental construction used everywhere else.
func BuildNaive(ctx *Context) *Lattice {
	l := &Lattice{ctx: ctx}
	allAttrs := bitset.Full(ctx.NumAttributes())
	intents := map[string]*bitset.Set{allAttrs.Key(): allAttrs}
	worklist := []*bitset.Set{allAttrs}
	for len(worklist) > 0 {
		y := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		for o := 0; o < ctx.NumObjects(); o++ {
			inter := bitset.Intersect(y, ctx.Attributes(o))
			key := inter.Key()
			if _, ok := intents[key]; !ok {
				intents[key] = inter
				worklist = append(worklist, inter)
			}
		}
	}
	// Deterministic concept order: by intent size descending, then key.
	keys := make([]string, 0, len(intents))
	for k := range intents {
		keys = append(keys, k)
	}
	sortKeysBySize(keys, intents)
	for _, k := range keys {
		intent := intents[k]
		c := &Concept{ID: len(l.concepts), Extent: ctx.Tau(intent), Intent: intent}
		l.concepts = append(l.concepts, c)
	}
	l.finalize()
	return l
}

func sortKeysBySize(keys []string, intents map[string]*bitset.Set) {
	less := func(a, b string) bool {
		la, lb := intents[a].Len(), intents[b].Len()
		if la != lb {
			return la > lb
		}
		return a < b
	}
	// Insertion sort: key counts are small relative to the work of building
	// the lattice, and this avoids importing sort for a closure over maps.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && less(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

// Equal reports whether two lattices over the same context have the same
// concepts (extent/intent pairs) and the same cover relation, regardless of
// concept numbering.
func Equal(a, b *Lattice) bool {
	if a.Len() != b.Len() {
		return false
	}
	// Map concepts by intent key.
	bByIntent := map[string]*Concept{}
	for _, c := range b.concepts {
		bByIntent[c.Intent.Key()] = c
	}
	for _, ca := range a.concepts {
		cb, ok := bByIntent[ca.Intent.Key()]
		if !ok || !ca.Extent.Equal(cb.Extent) {
			return false
		}
		// Compare parent sets by intent keys.
		pa := map[string]bool{}
		for _, p := range a.parents[ca.ID] {
			pa[a.concepts[p].Intent.Key()] = true
		}
		if len(pa) != len(b.parents[cb.ID]) {
			return false
		}
		for _, p := range b.parents[cb.ID] {
			if !pa[b.concepts[p].Intent.Key()] {
				return false
			}
		}
	}
	return true
}
