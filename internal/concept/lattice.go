package concept

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/obs"
)

// Concept is a node of the concept lattice: a maximal rectangle (X, Y) of
// the context with X = τ(Y) and Y = σ(X).
type Concept struct {
	// ID is the concept's index within its lattice.
	ID int
	// Extent is the object set X.
	Extent *bitset.Set
	// Intent is the attribute set Y.
	Intent *bitset.Set
}

// Lattice is the complete lattice of all concepts of a context, with cover
// (Hasse-diagram) edges. Concept 0 is not necessarily the top; use Top and
// Bottom.
type Lattice struct {
	ctx      *Context
	concepts []*Concept
	parents  [][]int // cover edges upward (larger extents)
	children [][]int // cover edges downward (smaller extents)
	top      int
	bottom   int

	// idx maps intents to concept IDs by hashing bitset words directly; it
	// backs byIntent so Meet, Join, and Find are hash lookups instead of
	// linear scans, with no key-byte materialization.
	idx intentIndex
	// objConcept[o] is γo (ObjectConcept), attrConcept[a] is μa
	// (AttributeConcept), both precomputed once per lattice.
	objConcept  []int
	attrConcept []int

	// arena backs the extent/intent bitsets of a Build-constructed lattice.
	// The reference pins the slabs for the lattice's lifetime; arena-backed
	// sets must not outlive the lattice (see bitset.Arena and the cablevet
	// poolarena check).
	arena *bitset.Arena

	// workers is the worker bound the lattice was built with; incremental
	// removals that fall back to an in-place replay rebuild reuse it.
	workers int

	// reps holds one representative object per distinct context row in
	// first-occurrence order (the dedup both linkCovers and the pruned Godin
	// step rely on), and repRows maps each distinct row key to its replay
	// cache. Maintained incrementally by pruned builds, built lazily by
	// repsEnsure otherwise; repRows == nil means not built.
	reps    []int32
	repRows map[string]*rowCache

	// inv is the per-attribute inverted concept index the pruned Godin scan
	// intersects against; nil until a pruned build or invEnsure creates it.
	inv *invIndex
	// hdr is the current concept-header slab chunk (see newConcept).
	hdr []Concept
	// godin caches the insertion scratch across incremental adds.
	godin *godinScratch
	// legacyGodin pins this lattice to the unpruned full-scan insertion
	// step, for differential tests and the unpruned benchmark baseline; it
	// is inherited by incremental maintenance and replay rebuilds.
	legacyGodin bool
}

// newConcept appends a concept with the next ID, indexing its intent in idx
// and (when maintained) the inverted attribute index. Headers come from
// chunked slabs: one allocation per 256 concepts, not per concept.
func (l *Lattice) newConcept(extent, intent *bitset.Set) *Concept {
	if len(l.hdr) == cap(l.hdr) {
		l.hdr = make([]Concept, 0, 256)
	}
	l.hdr = l.hdr[:len(l.hdr)+1]
	c := &l.hdr[len(l.hdr)-1]
	*c = Concept{ID: len(l.concepts), Extent: extent, Intent: intent}
	l.concepts = append(l.concepts, c)
	l.idx.insert(l.concepts, c.ID)
	if l.inv != nil {
		l.inv.register(c)
	}
	return c
}

// BuildOption configures a lattice build.
type BuildOption func(*buildConfig)

type buildConfig struct {
	workers     int
	legacyGodin bool
}

// WithWorkers bounds the worker pool the build's parallel phases (the Godin
// insertion scan and cover linking) may use. 0 — and omitting the option —
// means GOMAXPROCS; 1 forces the serial paths.
func WithWorkers(n int) BuildOption {
	return func(c *buildConfig) { c.workers = n }
}

// withLegacyGodin forces the unpruned full-scan Godin step. Unexported: it
// exists for the pruned-vs-legacy differential tests and the unpruned
// benchmark baseline, not for callers.
func withLegacyGodin() BuildOption {
	return func(c *buildConfig) { c.legacyGodin = true }
}

func applyOptions(opts []BuildOption) buildConfig {
	var cfg buildConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// Build constructs the concept lattice of a context by incremental object
// insertion in the style of Godin et al.'s Algorithm 1: objects are added
// one at a time; each existing concept whose intent survives intersection
// with the new object's row is modified in place, and each novel
// intersection spawns a new concept. Cover edges are computed in a final
// pass. It is BuildCtx without cancellation.
func Build(ctx *Context) *Lattice {
	l, err := BuildCtx(context.Background(), ctx)
	if err != nil {
		// Background is never done, so BuildCtx cannot fail.
		panic("concept: Build: " + err.Error())
	}
	return l
}

// BuildCtx is Build with cancellation for callers serving remote requests:
// the done state of cc is checked between object insertions and between
// strides of the cover-linking scan, so a cancelled build of a large
// lattice returns cc.Err() promptly instead of running to completion.
//
// All extent and intent storage is carved from one per-build arena, so a
// build performs O(1) heap allocations for set storage regardless of
// concept count; the arena is owned by (and dies with) the returned
// Lattice.
func BuildCtx(cc context.Context, ctx *Context, opts ...BuildOption) (*Lattice, error) {
	cfg := applyOptions(opts)
	sp := obs.StartSpan("lattice.build")
	defer sp.End()
	arena := bitset.NewArena()
	l := &Lattice{ctx: ctx, arena: arena, workers: cfg.workers, legacyGodin: cfg.legacyGodin}
	numObj, numAttr := ctx.NumObjects(), ctx.NumAttributes()
	l.idx.initFor(256)
	if !cfg.legacyGodin {
		l.inv = newInvIndex(numAttr)
	}

	// Seed with the bottom concept: intent = all attributes, extent = the
	// objects (none yet) having all of them. Keeping the bottom in the
	// lattice makes the concept set closed under intersection of intents.
	// Extents get capacity for the full object universe so in-place Add
	// never leaves the arena.
	l.newConcept(arena.Set(numObj, numObj), arena.Set(numAttr, numAttr).FillFull(numAttr))

	done := cc.Done()
	if cfg.legacyGodin {
		// The scratch intersection lives on the heap (IntersectEqualsInto's
		// dst must not alias its operands) and is only materialized into the
		// arena when it is a novel intent.
		scratch := &bitset.Set{}
		for o := 0; o < numObj; o++ {
			select {
			case <-done:
				return nil, cc.Err()
			default:
			}
			l.godinLegacy(o, ctx.Attributes(o), scratch)
		}
	} else {
		workers := cfg.workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		g := &godinScratch{workers: workers, poolWanted: workers > 1}
		defer g.closePool()
		l.repRows = make(map[string]*rowCache, numObj)
		l.reps = make([]int32, 0, numObj)
		g.godinWordsEnsure(l)
		for o := 0; o < numObj; o++ {
			select {
			case <-done:
				return nil, cc.Err()
			default:
			}
			l.godinInsert(o, ctx.Attributes(o), g)
		}
	}
	if err := l.finalizeCtx(cc, cfg.workers); err != nil {
		return nil, err
	}
	obs.Observe("lattice.concepts", int64(len(l.concepts)))
	return l, nil
}

// finalize computes the Hasse diagram and the query tables serially; used
// by builders (BuildNaive) that populate l.concepts directly.
func (l *Lattice) finalize() {
	if err := l.finalizeCtx(context.Background(), 1); err != nil {
		panic("concept: finalize: " + err.Error())
	}
}

// finalizeCtx is finalize with cancellation and a worker bound for the
// cover-linking scan. The intent index is built here if the constructing
// algorithm did not maintain one incrementally.
func (l *Lattice) finalizeCtx(cc context.Context, workers int) error {
	if l.idx.n == 0 && len(l.concepts) > 0 {
		l.idx.initFor(len(l.concepts))
		for _, c := range l.concepts {
			l.idx.insert(l.concepts, c.ID)
		}
	}
	if err := l.linkCovers(cc, workers); err != nil {
		return err
	}
	l.buildTables()
	return nil
}

// buildTables precomputes the ObjectConcept and AttributeConcept lookup
// tables. γo has intent σ({o}) = row(o); μa has intent σ(τ({a})). Both are
// closed intents, so the index resolves them directly.
func (l *Lattice) buildTables() {
	sp := obs.StartSpan("lattice.tables")
	defer sp.End()
	scratch := &bitset.Set{}
	l.objConcept = make([]int, l.ctx.NumObjects())
	for o := range l.objConcept {
		id := l.idx.lookup(l.concepts, l.ctx.Attributes(o))
		if id < 0 {
			panic("concept: object row is not a closed intent")
		}
		l.objConcept[o] = id
	}
	l.attrConcept = make([]int, l.ctx.NumAttributes())
	for a := range l.attrConcept {
		l.ctx.SigmaInto(scratch, l.ctx.Objects(a))
		id := l.idx.lookup(l.concepts, scratch)
		if id < 0 {
			panic("concept: attribute closure is not a closed intent")
		}
		l.attrConcept[a] = id
	}
}

// tauUpToArena computes τ(y) restricted to objects 0..limit inclusive, into
// an arena-backed set with capacity for the full object universe (so the
// Godin loop can later Add objects in place).
func tauUpToArena(a *bitset.Arena, ctx *Context, y *bitset.Set, limit int) *bitset.Set {
	out := a.Set(0, ctx.NumObjects())
	out.FillFull(limit + 1)
	y.Range(func(attr int) bool {
		out.IntersectWith(ctx.Objects(attr))
		return true
	})
	return out
}

// Cutoffs for the sparse extent projection linkCovers keeps for the long
// tail of small concepts over wide object universes: only contexts whose
// extents span at least sparseMinWords words build projections, and only
// extents with at most sparseMaxElems elements get one. Both were chosen on
// BenchmarkLatticeBig (dense subset tests win below ~512 objects; above,
// iterating ≤48 elements beats sweeping 100+ words). Package variables so
// property tests can force the sparse path on small contexts.
var (
	sparseMinWords = 8
	sparseMaxElems = 48
)

// linkChunk is the stride of the parallel cover-linking scan: workers claim
// chunks of this many concepts from an atomic counter, and cancellation is
// checked between chunks.
const linkChunk = 64

// linkCovers computes the Hasse diagram: c is a child of d iff
// extent(c) ⊂ extent(d) with no concept strictly between.
//
// For each concept c = (X, Y) the upper covers are found through the intent
// index rather than by scanning all concepts: for every object o ∉ X the
// closure σ(X ∪ {o}) = Y ∩ row(o) is a closed intent, so the concept
// immediately above c that absorbs o is a single hash lookup. Every concept
// strictly above c is ≥ one of these candidates, so the upper covers are
// exactly the candidates that are minimal by extent inclusion — determined
// by testing candidates one extent-size layer at a time against the covers
// already accepted from smaller layers. Worst case O(n·|O|) lookups plus a
// few subset tests among candidates, versus the all-pairs-plus-dominated
// scan (cubic in concept count) this replaces.
//
// Three refinements over the direct form: (1) only one representative per
// distinct context row is scanned — duplicate rows yield identical closures
// and identical extent membership, so at trace-corpus scale (many traces,
// few distinct transition sets) the scan shrinks by orders of magnitude;
// (2) accepted covers with small extents over wide universes are tested via
// sparse element lists instead of dense word sweeps; (3) concepts are
// partitioned across a worker pool — per-concept work touches only
// read-only shared state, so workers claim chunks from an atomic counter
// and write disjoint out-slots, making the result bit-identical to the
// serial scan for any worker count.
func (l *Lattice) linkCovers(cc context.Context, workers int) error {
	sp := obs.StartSpan("lattice.link_covers")
	defer sp.End()
	n := len(l.concepts)
	l.parents = make([][]int, n)
	l.children = make([][]int, n)
	if n == 0 {
		l.top, l.bottom = 0, 0
		return nil
	}
	sizes := make([]int32, n)
	l.top, l.bottom = 0, 0
	for i, c := range l.concepts {
		sizes[i] = int32(c.Extent.Len())
		if sizes[i] > sizes[l.top] {
			l.top = i
		}
		if sizes[i] < sizes[l.bottom] {
			l.bottom = i
		}
	}
	numObj := l.ctx.NumObjects()

	// One representative object per distinct context row — the same dedup
	// the pruned Godin step maintains, so builds that already paid for it
	// reuse it here.
	l.repsEnsure()
	reps := l.reps

	// attrReps[a] is the set of rep POSITIONS (indices into reps) whose row
	// contains attribute a. The union over a concept's intent is exactly the
	// reps whose closure against that intent is non-empty: reps outside the
	// union close to ∅, and since a rep inside the extent always carries the
	// whole intent, every outside rep is automatically outside the extent
	// too. They all name one candidate — the ∅-intent concept — which must
	// exist whenever any of them does (intersections of closed intents are
	// closed), so the per-rep scan collapses to the in-mask reps plus at
	// most one appended candidate.
	attrReps := make([]bitset.Set, l.ctx.NumAttributes())
	for k, rep := range reps {
		l.ctx.Attributes(int(rep)).Range(func(a int) bool {
			attrReps[a].Add(k)
			return true
		})
	}
	emptyID := l.idx.lookup(l.concepts, &bitset.Set{})

	// On one-word attribute universes (≤64 attributes — every shipped
	// corpus) intents and rows fit in registers: the closure is one AND and
	// known intents are probed through a flat word table, skipping the
	// Set-walking Equal in the index probe.
	var intentWord []uint64
	var repWord []uint64
	if l.ctx.NumAttributes() <= wordBitsPerSet {
		intentWord = make([]uint64, n)
		for i, c := range l.concepts {
			intentWord[i] = word0(c.Intent)
		}
		repWord = make([]uint64, len(reps))
		for k, rep := range reps {
			repWord[k] = word0(l.ctx.Attributes(int(rep)))
		}
	}

	// Sparse projections of small extents, carved from one slab.
	var sparse [][]int32
	if wordsFor(numObj) >= sparseMinWords {
		sparse = make([][]int32, n)
		total := 0
		for i := range sizes {
			if int(sizes[i]) <= sparseMaxElems {
				total += int(sizes[i])
			}
		}
		slab := make([]int32, 0, total)
		for i, c := range l.concepts {
			if int(sizes[i]) <= sparseMaxElems {
				start := len(slab)
				slab = c.Extent.AppendElems32(slab)
				sparse[i] = slab[start:len(slab):len(slab)]
			}
		}
	}

	less := func(a, b int32) bool {
		if sizes[a] != sizes[b] {
			return sizes[a] < sizes[b]
		}
		return a < b
	}
	cmp32 := func(a, b int32) int {
		if sizes[a] != sizes[b] {
			return int(sizes[a] - sizes[b])
		}
		return int(a - b)
	}

	// out[ci] receives ci's covers; each worker writes only the slots of
	// chunks it claimed, so the slice needs no synchronization beyond the
	// pool's WaitGroup.
	out := make([][]int32, n)
	type lcWorker struct {
		scratch bitset.Set
		mask    bitset.Set // union of attrReps rows over the concept's intent
		seen    []int32    // seen[id] == gen marks id as a candidate of the current concept
		gen     int32
		cand    []int32
		block   []int32 // cover output; out slices point into retired blocks
		layers  int64
		cands   int64
		busy    time.Duration
	}
	newWorker := func() *lcWorker {
		return &lcWorker{
			seen:  make([]int32, n),
			cand:  make([]int32, 0, len(reps)),
			block: make([]int32, 0, 4096),
		}
	}
	process := func(w *lcWorker, ci int) {
		if int(sizes[ci]) == numObj {
			return // the top concept has no parents
		}
		c := l.concepts[ci]
		w.gen++
		if w.gen == 0 { // stamp wrapped: reset and restart generations
			for i := range w.seen {
				w.seen[i] = 0
			}
			w.gen = 1
		}
		// Collect the deduplicated candidate set {concept(Y ∩ row(o))},
		// visiting only reps sharing ≥1 attribute with the intent; the reps
		// outside the mask collapse into the single ∅-intent candidate.
		w.mask.Clear()
		c.Intent.Range(func(a int) bool {
			w.mask.UnionWith(&attrReps[a])
			return true
		})
		cand := w.cand[:0]
		if intentWord != nil {
			yw := intentWord[ci]
			w.mask.Range(func(k int) bool {
				if c.Extent.Has(int(reps[k])) {
					return true
				}
				id := l.idx.lookupWord(intentWord, yw&repWord[k])
				if id < 0 {
					panic("concept: closure missing from intent index")
				}
				if w.seen[id] != w.gen {
					w.seen[id] = w.gen
					cand = append(cand, int32(id))
				}
				return true
			})
		} else {
			w.mask.Range(func(k int) bool {
				o := int(reps[k])
				if c.Extent.Has(o) {
					return true
				}
				bitset.IntersectInto(&w.scratch, c.Intent, l.ctx.Attributes(o))
				id := l.idx.lookup(l.concepts, &w.scratch)
				if id < 0 {
					panic("concept: closure missing from intent index")
				}
				if w.seen[id] != w.gen {
					w.seen[id] = w.gen
					cand = append(cand, int32(id))
				}
				return true
			})
		}
		if w.mask.Len() < len(reps) {
			// Some rep is disjoint from the intent, so ∅ is a closed intent
			// and its concept is a candidate (in-mask reps never produce it:
			// their closures contain a shared attribute).
			if emptyID < 0 {
				panic("concept: closure missing from intent index")
			}
			cand = append(cand, int32(emptyID))
		}
		// Size-layer order: ascending extent size, ties by ID for
		// determinism (the total order also erases any candidate-order
		// difference versus the unpruned per-rep scan). Insertion sort for
		// the short lists that dominate; slices.SortFunc above the cutoff.
		if len(cand) <= insertionSortCutoff {
			for i := 1; i < len(cand); i++ {
				for j := i; j > 0 && less(cand[j], cand[j-1]); j-- {
					cand[j], cand[j-1] = cand[j-1], cand[j]
				}
			}
		} else {
			slices.SortFunc(cand, cmp32)
		}
		w.cand = cand
		w.cands += int64(len(cand))
		if len(cand) > 0 {
			w.layers++
			for i := 1; i < len(cand); i++ {
				if sizes[cand[i]] != sizes[cand[i-1]] {
					w.layers++
				}
			}
		}
		// A candidate is a cover iff no cover accepted from an earlier
		// (smaller) layer sits inside it.
		if cap(w.block)-len(w.block) < 256 {
			w.block = make([]int32, 0, 4096) // retired blocks stay referenced by out
		}
		start := len(w.block)
		for _, cj := range cand {
			ce := l.concepts[cj].Extent
			dominated := false
			for _, k := range w.block[start:] {
				if sparse != nil && sparse[k] != nil {
					if bitset.SparseSubsetOf(sparse[k], ce) {
						dominated = true
						break
					}
				} else if l.concepts[k].Extent.SubsetOf(ce) {
					dominated = true
					break
				}
			}
			if !dominated {
				w.block = append(w.block, cj)
			}
		}
		out[ci] = w.block[start:len(w.block):len(w.block)]
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	done := cc.Done()
	cancelled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	var totalLayers, totalCands int64
	if workers <= 1 || n < 2*linkChunk {
		w := newWorker()
		for ci := 0; ci < n; ci++ {
			if ci%linkChunk == 0 && cancelled() {
				return cc.Err()
			}
			process(w, ci)
		}
		totalLayers, totalCands = w.layers, w.cands
		obs.SetGauge("lattice.linkcovers.workers", 1)
	} else {
		numChunks := (n + linkChunk - 1) / linkChunk
		if workers > numChunks {
			workers = numChunks
		}
		ws := make([]*lcWorker, workers)
		var next atomic.Int64
		next.Store(-1)
		start := time.Now()
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				w := newWorker()
				ws[wi] = w
				for !cancelled() {
					chunk := int(next.Add(1))
					if chunk >= numChunks {
						return
					}
					hi := (chunk + 1) * linkChunk
					if hi > n {
						hi = n
					}
					t0 := time.Now()
					for ci := chunk * linkChunk; ci < hi; ci++ {
						process(w, ci)
					}
					w.busy += time.Since(t0)
				}
			}(wi)
		}
		wg.Wait()
		if cancelled() {
			return cc.Err()
		}
		elapsed := time.Since(start)
		for _, w := range ws {
			totalLayers += w.layers
			totalCands += w.cands
		}
		obs.SetGauge("lattice.linkcovers.workers", int64(workers))
		if m := obs.Default(); m != nil && elapsed > 0 {
			util := m.Histogram("lattice.linkcovers.worker_util_pct")
			for _, w := range ws {
				util.Observe(int64(100 * w.busy / elapsed))
			}
		}
	}
	obs.Count("lattice.linkcovers.layers", totalLayers)
	obs.Count("lattice.linkcovers.candidates", totalCands)

	// Deterministic merge: per-concept covers re-sorted ascending by ID into
	// one parent slab; children recovered by a counting pass, filled in
	// ascending ci order so each list comes out sorted.
	totalEdges := 0
	for _, cs := range out {
		totalEdges += len(cs)
	}
	parentSlab := make([]int, totalEdges)
	pos := 0
	for ci, cs := range out {
		p := parentSlab[pos : pos : pos+len(cs)]
		for _, cj := range cs {
			p = append(p, int(cj))
		}
		insertionSortInts(p)
		l.parents[ci] = p
		pos += len(cs)
	}
	childCount := make([]int, n)
	for _, cs := range out {
		for _, cj := range cs {
			childCount[cj]++
		}
	}
	childSlab := make([]int, totalEdges)
	pos = 0
	for i, cnt := range childCount {
		l.children[i] = childSlab[pos : pos : pos+cnt]
		pos += cnt
	}
	for ci := 0; ci < n; ci++ {
		for _, p := range l.parents[ci] {
			l.children[p] = append(l.children[p], ci)
		}
	}
	return nil
}

func wordsFor(n int) int { return (n + 63) / 64 }

// insertionSortCutoff is the length above which candidate and cover-list
// sorts switch from insertion sort (branch-cheap on the short lists that
// dominate) to the stdlib sort (O(n log n) on the large layers where the
// quadratic scan used to show up in profiles).
const insertionSortCutoff = 32

func insertionSortInts(xs []int) {
	if len(xs) > insertionSortCutoff {
		slices.Sort(xs)
		return
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Context returns the context the lattice was built from.
func (l *Lattice) Context() *Context { return l.ctx }

// Len returns the number of concepts.
func (l *Lattice) Len() int { return len(l.concepts) }

// Concept returns the concept with the given ID.
func (l *Lattice) Concept(id int) *Concept { return l.concepts[id] }

// Concepts returns all concepts; the slice is shared and must not be
// mutated.
func (l *Lattice) Concepts() []*Concept { return l.concepts }

// Top returns the ID of the top concept (extent = all objects).
func (l *Lattice) Top() int { return l.top }

// Bottom returns the ID of the bottom concept (intent = all attributes).
func (l *Lattice) Bottom() int { return l.bottom }

// Valid reports whether id names a concept of this lattice. Callers
// handling untrusted IDs (e.g. a network service) check Valid before using
// the positional accessors.
func (l *Lattice) Valid(id int) bool { return l.validID(id) }

// Parents returns the IDs of the concepts covering id (immediately above),
// or nil when id is out of range.
func (l *Lattice) Parents(id int) []int {
	if !l.validID(id) {
		return nil
	}
	return l.parents[id]
}

// Children returns the IDs of the concepts covered by id (immediately
// below), or nil when id is out of range. These are the "concepts
// immediately below this concept" a Cable user descends into.
func (l *Lattice) Children(id int) []int {
	if !l.validID(id) {
		return nil
	}
	return l.children[id]
}

// Leq reports whether concept a ≤ concept b in the lattice order
// (extent(a) ⊆ extent(b)).
func (l *Lattice) Leq(a, b int) bool {
	return l.concepts[a].Extent.SubsetOf(l.concepts[b].Extent)
}

// Meet returns the ID of the greatest lower bound of a and b: the concept
// with extent closure of extent(a) ∩ extent(b). ok is false when either ID
// is out of range or the lattice's index no longer matches its context (a
// stale lattice); the result is only meaningful when ok is true.
func (l *Lattice) Meet(a, b int) (id int, ok bool) {
	if !l.validID(a) || !l.validID(b) {
		return 0, false
	}
	ext := bitset.Intersect(l.concepts[a].Extent, l.concepts[b].Extent)
	intent := l.ctx.Sigma(ext)
	return l.byIntent(intent)
}

// Join returns the ID of the least upper bound of a and b, with the same
// ok semantics as Meet.
func (l *Lattice) Join(a, b int) (id int, ok bool) {
	if !l.validID(a) || !l.validID(b) {
		return 0, false
	}
	intent := bitset.Intersect(l.concepts[a].Intent, l.concepts[b].Intent)
	return l.byIntent(l.ctx.Sigma(l.ctx.Tau(intent)))
}

// validID reports whether id names a concept of this lattice.
func (l *Lattice) validID(id int) bool { return id >= 0 && id < len(l.concepts) }

// byIntent finds the concept with exactly this intent. For a closed intent
// of this lattice's context the lookup always succeeds; ok is false when
// the intent is not closed here — the symptom of an object set from a
// foreign context or of a lattice that no longer matches its context.
func (l *Lattice) byIntent(intent *bitset.Set) (id int, ok bool) {
	id = l.idx.lookup(l.concepts, intent)
	if id < 0 {
		return 0, false
	}
	return id, true
}

// findScratch pools the σ(X) scratch sets Find uses, making lookups
// allocation-free under concurrent query load (the lattice server hits
// Find from many request goroutines).
var findScratch = sync.Pool{New: func() any { return new(bitset.Set) }}

// Find returns the most specific concept whose extent contains all the
// given objects: the concept (τ(σ(X)), σ(X)). ok is false — instead of the
// panic earlier versions raised — when the object set references objects
// outside the context or the closure is missing from a stale index.
func (l *Lattice) Find(objects *bitset.Set) (id int, ok bool) {
	// Reject foreign object sets up front: Sigma indexes context rows by
	// object, so an out-of-range bit would panic inside it.
	numObj := l.ctx.NumObjects()
	inRange := true
	objects.Range(func(o int) bool {
		if o >= numObj {
			inRange = false
			return false
		}
		return true
	})
	if !inRange {
		return 0, false
	}
	sc := findScratch.Get().(*bitset.Set)
	id, ok = l.byIntent(l.ctx.SigmaInto(sc, objects))
	findScratch.Put(sc)
	return id, ok
}

// AttributeConcept returns the ID of the maximal concept whose intent
// contains attribute a (μa): the concept (τ({a}), σ(τ({a}))). Reduced
// labeling shows each attribute at this concept only. The table is
// precomputed once per lattice.
func (l *Lattice) AttributeConcept(a int) int { return l.attrConcept[a] }

// ObjectConcept returns the ID of the minimal concept whose extent contains
// object o (γo). Reduced labeling shows each object at this concept only.
// The table is precomputed once per lattice.
func (l *Lattice) ObjectConcept(o int) int { return l.objConcept[o] }

// TopDownOrder returns concept IDs in breadth-first order from the top —
// the traversal order of the Top-down strategy.
func (l *Lattice) TopDownOrder() []int {
	seen := make([]bool, len(l.concepts))
	order := make([]int, 0, len(l.concepts))
	queue := []int{l.top}
	seen[l.top] = true
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, ch := range l.children[id] {
			if !seen[ch] {
				seen[ch] = true
				queue = append(queue, ch)
			}
		}
	}
	return order
}

// String renders every concept with reduced labels.
func (l *Lattice) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lattice: %d concepts (top=%d, bottom=%d)\n", len(l.concepts), l.top, l.bottom)
	for _, c := range l.concepts {
		fmt.Fprintf(&b, "  c%d: extent=%s intent=%s parents=%v\n",
			c.ID, l.names(c.Extent, l.ctx.objNames), l.names(c.Intent, l.ctx.attrNames), l.parents[c.ID])
	}
	return b.String()
}

func (l *Lattice) names(s *bitset.Set, names []string) string {
	parts := []string{}
	s.Range(func(i int) bool {
		parts = append(parts, names[i])
		return true
	})
	return "{" + strings.Join(parts, ", ") + "}"
}
