package concept

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
)

// Concept is a node of the concept lattice: a maximal rectangle (X, Y) of
// the context with X = τ(Y) and Y = σ(X).
type Concept struct {
	// ID is the concept's index within its lattice.
	ID int
	// Extent is the object set X.
	Extent *bitset.Set
	// Intent is the attribute set Y.
	Intent *bitset.Set
}

// Lattice is the complete lattice of all concepts of a context, with cover
// (Hasse-diagram) edges. Concept 0 is not necessarily the top; use Top and
// Bottom.
type Lattice struct {
	ctx      *Context
	concepts []*Concept
	parents  [][]int // cover edges upward (larger extents)
	children [][]int // cover edges downward (smaller extents)
	top      int
	bottom   int
}

// Build constructs the concept lattice of a context by incremental object
// insertion in the style of Godin et al.'s Algorithm 1: objects are added
// one at a time; each existing concept whose intent survives intersection
// with the new object's row is modified in place, and each novel
// intersection spawns a new concept. Cover edges are computed in a final
// pass.
func Build(ctx *Context) *Lattice {
	l := &Lattice{ctx: ctx}
	intents := map[string]*Concept{}

	addConcept := func(extent, intent *bitset.Set) *Concept {
		c := &Concept{ID: len(l.concepts), Extent: extent, Intent: intent}
		l.concepts = append(l.concepts, c)
		intents[intent.Key()] = c
		return c
	}

	// Seed with the bottom concept: intent = all attributes, extent = the
	// objects (none yet) having all of them. Keeping the bottom in the
	// lattice makes the concept set closed under intersection of intents.
	allAttrs := bitset.New(ctx.NumAttributes())
	for a := 0; a < ctx.NumAttributes(); a++ {
		allAttrs.Add(a)
	}
	addConcept(bitset.New(ctx.NumObjects()), allAttrs)

	for o := 0; o < ctx.NumObjects(); o++ {
		row := ctx.Attributes(o)
		snapshot := l.concepts // new concepts are appended; iterate old only
		created := map[string]bool{}
		n := len(snapshot)
		for i := 0; i < n; i++ {
			c := snapshot[i]
			if c.Intent.SubsetOf(row) {
				// Modified concept: the new object joins its extent.
				c.Extent.Add(o)
				continue
			}
			inter := bitset.Intersect(c.Intent, row)
			key := inter.Key()
			if _, exists := intents[key]; exists || created[key] {
				continue
			}
			created[key] = true
			// The extent of the new concept is τ(inter) over the objects
			// seen so far, which includes o because inter ⊆ row.
			extent := tauUpTo(ctx, inter, o)
			addConcept(extent, inter)
		}
	}
	l.linkCovers()
	return l
}

// tauUpTo computes τ(y) restricted to objects 0..limit inclusive.
func tauUpTo(ctx *Context, y *bitset.Set, limit int) *bitset.Set {
	out := bitset.New(ctx.NumObjects())
	for o := 0; o <= limit; o++ {
		out.Add(o)
	}
	y.Range(func(a int) bool {
		out.IntersectWith(ctx.Objects(a))
		return true
	})
	return out
}

// linkCovers computes the Hasse diagram: c is a child of d iff
// extent(c) ⊂ extent(d) with no concept strictly between.
func (l *Lattice) linkCovers() {
	n := len(l.concepts)
	l.parents = make([][]int, n)
	l.children = make([][]int, n)
	// Order concepts by extent size ascending; ties broken by ID for
	// determinism.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sizes := make([]int, n)
	for i, c := range l.concepts {
		sizes[i] = c.Extent.Len()
	}
	sort.Slice(order, func(i, j int) bool {
		if sizes[order[i]] != sizes[order[j]] {
			return sizes[order[i]] < sizes[order[j]]
		}
		return order[i] < order[j]
	})
	for idx, ci := range order {
		ext := l.concepts[ci].Extent
		// Candidates: concepts later in the order with strictly larger
		// extents that contain ext. A candidate is a cover if no chosen
		// cover's extent is contained in it.
		var covers []int
		for _, cj := range order[idx+1:] {
			sup := l.concepts[cj].Extent
			if sizes[cj] == sizes[ci] || !ext.SubsetOf(sup) {
				continue
			}
			dominated := false
			for _, k := range covers {
				if l.concepts[k].Extent.SubsetOf(sup) {
					dominated = true
					break
				}
			}
			if !dominated {
				covers = append(covers, cj)
			}
		}
		for _, cj := range covers {
			l.parents[ci] = append(l.parents[ci], cj)
			l.children[cj] = append(l.children[cj], ci)
		}
	}
	// Identify top (maximal extent) and bottom (minimal extent). Both are
	// unique in a complete lattice.
	l.top, l.bottom = order[n-1], order[0]
	for _, c := range l.concepts {
		if len(l.parents[c.ID]) == 0 && c.ID != l.top {
			// Cannot happen in a complete lattice; guard for debugging.
			panic("concept: multiple maximal concepts")
		}
	}
	for i := range l.parents {
		sort.Ints(l.parents[i])
		sort.Ints(l.children[i])
	}
}

// Context returns the context the lattice was built from.
func (l *Lattice) Context() *Context { return l.ctx }

// Len returns the number of concepts.
func (l *Lattice) Len() int { return len(l.concepts) }

// Concept returns the concept with the given ID.
func (l *Lattice) Concept(id int) *Concept { return l.concepts[id] }

// Concepts returns all concepts; the slice is shared and must not be
// mutated.
func (l *Lattice) Concepts() []*Concept { return l.concepts }

// Top returns the ID of the top concept (extent = all objects).
func (l *Lattice) Top() int { return l.top }

// Bottom returns the ID of the bottom concept (intent = all attributes).
func (l *Lattice) Bottom() int { return l.bottom }

// Parents returns the IDs of the concepts covering id (immediately above).
func (l *Lattice) Parents(id int) []int { return l.parents[id] }

// Children returns the IDs of the concepts covered by id (immediately
// below). These are the "concepts immediately below this concept" a Cable
// user descends into.
func (l *Lattice) Children(id int) []int { return l.children[id] }

// Leq reports whether concept a ≤ concept b in the lattice order
// (extent(a) ⊆ extent(b)).
func (l *Lattice) Leq(a, b int) bool {
	return l.concepts[a].Extent.SubsetOf(l.concepts[b].Extent)
}

// Meet returns the ID of the greatest lower bound of a and b: the concept
// with extent closure of extent(a) ∩ extent(b).
func (l *Lattice) Meet(a, b int) int {
	ext := bitset.Intersect(l.concepts[a].Extent, l.concepts[b].Extent)
	intent := l.ctx.Sigma(ext)
	return l.byIntent(intent)
}

// Join returns the ID of the least upper bound of a and b.
func (l *Lattice) Join(a, b int) int {
	intent := bitset.Intersect(l.concepts[a].Intent, l.concepts[b].Intent)
	return l.byIntent(l.ctx.Sigma(l.ctx.Tau(intent)))
}

// byIntent finds the concept with exactly this intent; the intent must be
// closed (σ(τ(intent)) == intent).
func (l *Lattice) byIntent(intent *bitset.Set) int {
	for _, c := range l.concepts {
		if c.Intent.Equal(intent) {
			return c.ID
		}
	}
	panic("concept: intent not in lattice (not closed?)")
}

// Find returns the most specific concept whose extent contains all the
// given objects: the concept (τ(σ(X)), σ(X)).
func (l *Lattice) Find(objects *bitset.Set) int {
	return l.byIntent(l.ctx.Sigma(objects))
}

// AttributeConcept returns the ID of the maximal concept whose intent
// contains attribute a (μa): the concept (τ({a}), σ(τ({a}))). Reduced
// labeling shows each attribute at this concept only.
func (l *Lattice) AttributeConcept(a int) int {
	y := bitset.FromSlice([]int{a})
	ext := l.ctx.Tau(y)
	return l.byIntent(l.ctx.Sigma(ext))
}

// ObjectConcept returns the ID of the minimal concept whose extent contains
// object o (γo). Reduced labeling shows each object at this concept only.
func (l *Lattice) ObjectConcept(o int) int {
	x := bitset.FromSlice([]int{o})
	return l.byIntent(l.ctx.Sigma(x))
}

// TopDownOrder returns concept IDs in breadth-first order from the top —
// the traversal order of the Top-down strategy.
func (l *Lattice) TopDownOrder() []int {
	seen := make([]bool, len(l.concepts))
	order := make([]int, 0, len(l.concepts))
	queue := []int{l.top}
	seen[l.top] = true
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, ch := range l.children[id] {
			if !seen[ch] {
				seen[ch] = true
				queue = append(queue, ch)
			}
		}
	}
	return order
}

// String renders every concept with reduced labels.
func (l *Lattice) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lattice: %d concepts (top=%d, bottom=%d)\n", len(l.concepts), l.top, l.bottom)
	for _, c := range l.concepts {
		fmt.Fprintf(&b, "  c%d: extent=%s intent=%s parents=%v\n",
			c.ID, l.names(c.Extent, l.ctx.objNames), l.names(c.Intent, l.ctx.attrNames), l.parents[c.ID])
	}
	return b.String()
}

func (l *Lattice) names(s *bitset.Set, names []string) string {
	parts := []string{}
	s.Range(func(i int) bool {
		parts = append(parts, names[i])
		return true
	})
	return "{" + strings.Join(parts, ", ") + "}"
}
