package concept

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/obs"
)

// Concept is a node of the concept lattice: a maximal rectangle (X, Y) of
// the context with X = τ(Y) and Y = σ(X).
type Concept struct {
	// ID is the concept's index within its lattice.
	ID int
	// Extent is the object set X.
	Extent *bitset.Set
	// Intent is the attribute set Y.
	Intent *bitset.Set
}

// Lattice is the complete lattice of all concepts of a context, with cover
// (Hasse-diagram) edges. Concept 0 is not necessarily the top; use Top and
// Bottom.
type Lattice struct {
	ctx      *Context
	concepts []*Concept
	parents  [][]int // cover edges upward (larger extents)
	children [][]int // cover edges downward (smaller extents)
	top      int
	bottom   int

	// index maps an intent's Key() to its concept ID; it backs byIntent so
	// Meet, Join, and Find are hash lookups instead of linear scans.
	index map[string]int
	// objConcept[o] is γo (ObjectConcept), attrConcept[a] is μa
	// (AttributeConcept), both precomputed once per lattice.
	objConcept  []int
	attrConcept []int
}

// Build constructs the concept lattice of a context by incremental object
// insertion in the style of Godin et al.'s Algorithm 1: objects are added
// one at a time; each existing concept whose intent survives intersection
// with the new object's row is modified in place, and each novel
// intersection spawns a new concept. Cover edges are computed in a final
// pass. It is BuildCtx without cancellation.
func Build(ctx *Context) *Lattice {
	l, err := BuildCtx(context.Background(), ctx)
	if err != nil {
		// Background is never done, so BuildCtx cannot fail.
		panic("concept: Build: " + err.Error())
	}
	return l
}

// BuildCtx is Build with cancellation for callers serving remote requests:
// the done state of cc is checked between object insertions and between
// per-concept cover computations, so a cancelled build of a large lattice
// returns cc.Err() promptly instead of running to completion.
func BuildCtx(cc context.Context, ctx *Context) (*Lattice, error) {
	sp := obs.StartSpan("lattice.build")
	defer sp.End()
	l := &Lattice{ctx: ctx, index: map[string]int{}}

	addConcept := func(extent, intent *bitset.Set) *Concept {
		c := &Concept{ID: len(l.concepts), Extent: extent, Intent: intent}
		l.concepts = append(l.concepts, c)
		l.index[intent.Key()] = c.ID
		return c
	}

	// Seed with the bottom concept: intent = all attributes, extent = the
	// objects (none yet) having all of them. Keeping the bottom in the
	// lattice makes the concept set closed under intersection of intents.
	addConcept(bitset.New(ctx.NumObjects()), bitset.Full(ctx.NumAttributes()))

	// Scratch buffers reused across the hot inner loop: the intersection is
	// only materialized (cloned) when it is a novel intent.
	scratch := &bitset.Set{}
	var keyBuf []byte
	done := cc.Done()
	for o := 0; o < ctx.NumObjects(); o++ {
		select {
		case <-done:
			return nil, cc.Err()
		default:
		}
		row := ctx.Attributes(o)
		snapshot := l.concepts // new concepts are appended; iterate old only
		n := len(snapshot)
		for i := 0; i < n; i++ {
			c := snapshot[i]
			if c.Intent.SubsetOf(row) {
				// Modified concept: the new object joins its extent.
				c.Extent.Add(o)
				continue
			}
			bitset.IntersectInto(scratch, c.Intent, row)
			keyBuf = scratch.AppendKey(keyBuf[:0])
			if _, exists := l.index[string(keyBuf)]; exists {
				continue
			}
			// The extent of the new concept is τ(inter) over the objects
			// seen so far, which includes o because inter ⊆ row.
			inter := scratch.Clone()
			extent := tauUpTo(ctx, inter, o)
			addConcept(extent, inter)
		}
	}
	if err := l.finalizeCtx(cc); err != nil {
		return nil, err
	}
	obs.Observe("lattice.concepts", int64(len(l.concepts)))
	return l, nil
}

// finalize computes the Hasse diagram and the query tables; the intent
// index must already be populated.
func (l *Lattice) finalize() {
	if err := l.finalizeCtx(context.Background()); err != nil {
		panic("concept: finalize: " + err.Error())
	}
}

// finalizeCtx is finalize with cancellation checked between per-concept
// cover computations.
func (l *Lattice) finalizeCtx(cc context.Context) error {
	if l.index == nil {
		l.index = make(map[string]int, len(l.concepts))
		for _, c := range l.concepts {
			l.index[c.Intent.Key()] = c.ID
		}
	}
	if err := l.linkCovers(cc); err != nil {
		return err
	}
	l.buildTables()
	return nil
}

// buildTables precomputes the ObjectConcept and AttributeConcept lookup
// tables. γo has intent σ({o}) = row(o); μa has intent σ(τ({a})). Both are
// closed intents, so the index resolves them directly.
func (l *Lattice) buildTables() {
	sp := obs.StartSpan("lattice.tables")
	defer sp.End()
	var keyBuf []byte
	scratch := &bitset.Set{}
	l.objConcept = make([]int, l.ctx.NumObjects())
	for o := range l.objConcept {
		keyBuf = l.ctx.Attributes(o).AppendKey(keyBuf[:0])
		id, ok := l.index[string(keyBuf)]
		if !ok {
			panic("concept: object row is not a closed intent")
		}
		l.objConcept[o] = id
	}
	l.attrConcept = make([]int, l.ctx.NumAttributes())
	for a := range l.attrConcept {
		l.ctx.SigmaInto(scratch, l.ctx.Objects(a))
		keyBuf = scratch.AppendKey(keyBuf[:0])
		id, ok := l.index[string(keyBuf)]
		if !ok {
			panic("concept: attribute closure is not a closed intent")
		}
		l.attrConcept[a] = id
	}
}

// tauUpTo computes τ(y) restricted to objects 0..limit inclusive.
func tauUpTo(ctx *Context, y *bitset.Set, limit int) *bitset.Set {
	out := bitset.Full(limit + 1)
	y.Range(func(a int) bool {
		out.IntersectWith(ctx.Objects(a))
		return true
	})
	return out
}

// linkCovers computes the Hasse diagram: c is a child of d iff
// extent(c) ⊂ extent(d) with no concept strictly between.
//
// For each concept c = (X, Y) the upper covers are found through the intent
// index rather than by scanning all concepts: for every object o ∉ X the
// closure σ(X ∪ {o}) = Y ∩ row(o) is a closed intent, so the concept
// immediately above c that absorbs o is a single hash lookup. Every concept
// strictly above c is ≥ one of these candidates, so the upper covers are
// exactly the candidates that are minimal by extent inclusion — determined
// by testing candidates one extent-size layer at a time against the covers
// already accepted from smaller layers. Worst case O(n·|O|) lookups plus a
// few subset tests among candidates, versus the all-pairs-plus-dominated
// scan (cubic in concept count) this replaces.
func (l *Lattice) linkCovers(cc context.Context) error {
	sp := obs.StartSpan("lattice.link_covers")
	defer sp.End()
	n := len(l.concepts)
	l.parents = make([][]int, n)
	l.children = make([][]int, n)
	if n == 0 {
		l.top, l.bottom = 0, 0
		return nil
	}
	sizes := make([]int, n)
	l.top, l.bottom = 0, 0
	for i, c := range l.concepts {
		sizes[i] = c.Extent.Len()
		if sizes[i] > sizes[l.top] {
			l.top = i
		}
		if sizes[i] < sizes[l.bottom] {
			l.bottom = i
		}
	}
	numObj := l.ctx.NumObjects()
	scratch := &bitset.Set{}
	var keyBuf []byte
	var cand []int
	seen := make([]int, n) // seen[id] == ci+1 marks id as a candidate of ci
	done := cc.Done()
	for ci := 0; ci < n; ci++ {
		select {
		case <-done:
			return cc.Err()
		default:
		}
		c := l.concepts[ci]
		if sizes[ci] == numObj {
			continue // the top concept has no parents
		}
		// Collect the deduplicated candidate set {concept(Y ∩ row(o))}.
		cand = cand[:0]
		for o := 0; o < numObj; o++ {
			if c.Extent.Has(o) {
				continue
			}
			bitset.IntersectInto(scratch, c.Intent, l.ctx.Attributes(o))
			keyBuf = scratch.AppendKey(keyBuf[:0])
			id, ok := l.index[string(keyBuf)]
			if !ok {
				panic("concept: closure missing from intent index")
			}
			if seen[id] != ci+1 {
				seen[id] = ci + 1
				cand = append(cand, id)
			}
		}
		// Size-layer order: ascending extent size, ties by ID for
		// determinism. A candidate is a cover iff no cover accepted from an
		// earlier (smaller) layer sits inside it.
		sort.Slice(cand, func(i, j int) bool {
			if sizes[cand[i]] != sizes[cand[j]] {
				return sizes[cand[i]] < sizes[cand[j]]
			}
			return cand[i] < cand[j]
		})
		covers := l.parents[ci][:0]
		for _, cj := range cand {
			dominated := false
			for _, k := range covers {
				if l.concepts[k].Extent.SubsetOf(l.concepts[cj].Extent) {
					dominated = true
					break
				}
			}
			if !dominated {
				covers = append(covers, cj)
			}
		}
		l.parents[ci] = covers
	}
	for ci := 0; ci < n; ci++ {
		sort.Ints(l.parents[ci])
		for _, p := range l.parents[ci] {
			l.children[p] = append(l.children[p], ci)
		}
	}
	for i := range l.children {
		sort.Ints(l.children[i])
	}
	return nil
}

// Context returns the context the lattice was built from.
func (l *Lattice) Context() *Context { return l.ctx }

// Len returns the number of concepts.
func (l *Lattice) Len() int { return len(l.concepts) }

// Concept returns the concept with the given ID.
func (l *Lattice) Concept(id int) *Concept { return l.concepts[id] }

// Concepts returns all concepts; the slice is shared and must not be
// mutated.
func (l *Lattice) Concepts() []*Concept { return l.concepts }

// Top returns the ID of the top concept (extent = all objects).
func (l *Lattice) Top() int { return l.top }

// Bottom returns the ID of the bottom concept (intent = all attributes).
func (l *Lattice) Bottom() int { return l.bottom }

// Valid reports whether id names a concept of this lattice. Callers
// handling untrusted IDs (e.g. a network service) check Valid before using
// the positional accessors.
func (l *Lattice) Valid(id int) bool { return l.validID(id) }

// Parents returns the IDs of the concepts covering id (immediately above),
// or nil when id is out of range.
func (l *Lattice) Parents(id int) []int {
	if !l.validID(id) {
		return nil
	}
	return l.parents[id]
}

// Children returns the IDs of the concepts covered by id (immediately
// below), or nil when id is out of range. These are the "concepts
// immediately below this concept" a Cable user descends into.
func (l *Lattice) Children(id int) []int {
	if !l.validID(id) {
		return nil
	}
	return l.children[id]
}

// Leq reports whether concept a ≤ concept b in the lattice order
// (extent(a) ⊆ extent(b)).
func (l *Lattice) Leq(a, b int) bool {
	return l.concepts[a].Extent.SubsetOf(l.concepts[b].Extent)
}

// Meet returns the ID of the greatest lower bound of a and b: the concept
// with extent closure of extent(a) ∩ extent(b). ok is false when either ID
// is out of range or the lattice's index no longer matches its context (a
// stale lattice); the result is only meaningful when ok is true.
func (l *Lattice) Meet(a, b int) (id int, ok bool) {
	if !l.validID(a) || !l.validID(b) {
		return 0, false
	}
	ext := bitset.Intersect(l.concepts[a].Extent, l.concepts[b].Extent)
	intent := l.ctx.Sigma(ext)
	return l.byIntent(intent)
}

// Join returns the ID of the least upper bound of a and b, with the same
// ok semantics as Meet.
func (l *Lattice) Join(a, b int) (id int, ok bool) {
	if !l.validID(a) || !l.validID(b) {
		return 0, false
	}
	intent := bitset.Intersect(l.concepts[a].Intent, l.concepts[b].Intent)
	return l.byIntent(l.ctx.Sigma(l.ctx.Tau(intent)))
}

// validID reports whether id names a concept of this lattice.
func (l *Lattice) validID(id int) bool { return id >= 0 && id < len(l.concepts) }

// byIntent finds the concept with exactly this intent. For a closed intent
// of this lattice's context the lookup always succeeds; ok is false when
// the intent is not closed here — the symptom of an object set from a
// foreign context or of a lattice that no longer matches its context.
func (l *Lattice) byIntent(intent *bitset.Set) (id int, ok bool) {
	id, ok = l.index[intent.Key()]
	return id, ok
}

// Find returns the most specific concept whose extent contains all the
// given objects: the concept (τ(σ(X)), σ(X)). ok is false — instead of the
// panic earlier versions raised — when the object set references objects
// outside the context or the closure is missing from a stale index.
func (l *Lattice) Find(objects *bitset.Set) (id int, ok bool) {
	// Reject foreign object sets up front: Sigma indexes context rows by
	// object, so an out-of-range bit would panic inside it.
	numObj := l.ctx.NumObjects()
	inRange := true
	objects.Range(func(o int) bool {
		if o >= numObj {
			inRange = false
			return false
		}
		return true
	})
	if !inRange {
		return 0, false
	}
	return l.byIntent(l.ctx.Sigma(objects))
}

// AttributeConcept returns the ID of the maximal concept whose intent
// contains attribute a (μa): the concept (τ({a}), σ(τ({a}))). Reduced
// labeling shows each attribute at this concept only. The table is
// precomputed once per lattice.
func (l *Lattice) AttributeConcept(a int) int { return l.attrConcept[a] }

// ObjectConcept returns the ID of the minimal concept whose extent contains
// object o (γo). Reduced labeling shows each object at this concept only.
// The table is precomputed once per lattice.
func (l *Lattice) ObjectConcept(o int) int { return l.objConcept[o] }

// TopDownOrder returns concept IDs in breadth-first order from the top —
// the traversal order of the Top-down strategy.
func (l *Lattice) TopDownOrder() []int {
	seen := make([]bool, len(l.concepts))
	order := make([]int, 0, len(l.concepts))
	queue := []int{l.top}
	seen[l.top] = true
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, ch := range l.children[id] {
			if !seen[ch] {
				seen[ch] = true
				queue = append(queue, ch)
			}
		}
	}
	return order
}

// String renders every concept with reduced labels.
func (l *Lattice) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lattice: %d concepts (top=%d, bottom=%d)\n", len(l.concepts), l.top, l.bottom)
	for _, c := range l.concepts {
		fmt.Fprintf(&b, "  c%d: extent=%s intent=%s parents=%v\n",
			c.ID, l.names(c.Extent, l.ctx.objNames), l.names(c.Intent, l.ctx.attrNames), l.parents[c.ID])
	}
	return b.String()
}

func (l *Lattice) names(s *bitset.Set, names []string) string {
	parts := []string{}
	s.Range(func(i int) bool {
		parts = append(parts, names[i])
		return true
	})
	return "{" + strings.Join(parts, ", ") + "}"
}
