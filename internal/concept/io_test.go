package concept

import (
	"math/rand"
	"strings"
	"testing"
)

func TestContextRoundTrip(t *testing.T) {
	c := animals()
	var buf strings.Builder
	if err := WriteContext(&buf, c, "animals"); err != nil {
		t.Fatal(err)
	}
	got, name, err := ReadContext(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadContext: %v\ninput:\n%s", err, buf.String())
	}
	if name != "animals" {
		t.Errorf("name = %q", name)
	}
	assertSameContext(t, c, got)
}

func TestReadContextWithoutName(t *testing.T) {
	in := "B\n2\n2\n\nobj1\nobj2\nattr1\nattr2\nX.\n.X\n"
	c, name, err := ReadContext(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if name != "" || c.NumObjects() != 2 || !c.Has(0, 0) || c.Has(0, 1) || !c.Has(1, 1) {
		t.Errorf("parsed wrong: name=%q\n%s", name, c)
	}
}

func TestReadContextWithoutBlankLine(t *testing.T) {
	in := "B\nmyctx\n1\n1\no\na\nX\n"
	c, name, err := ReadContext(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if name != "myctx" || !c.Has(0, 0) {
		t.Error("parse without blank separator failed")
	}
}

func TestReadContextLowercaseX(t *testing.T) {
	in := "B\n1\n1\no\na\nx\n"
	c, _, err := ReadContext(strings.NewReader(in))
	if err != nil || !c.Has(0, 0) {
		t.Errorf("lowercase x: %v", err)
	}
}

func TestReadContextErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"NotB\n1\n1\no\na\nX\n",
		"B\nname\nxx\n1\no\na\nX\n", // bad counts
		"B\n1\n1\no\na\n",           // missing row
		"B\n1\n2\no\na\nb\nX\n",     // short row
		"B\n1\n1\no\na\n?\n",        // bad cell
		"B\n-1\n1\n",                // negative
	} {
		if _, _, err := ReadContext(strings.NewReader(in)); err == nil {
			t.Errorf("ReadContext(%q) succeeded, want error", in)
		}
	}
}

func TestWriteContextBadNames(t *testing.T) {
	c := NewContext([]string{"has\nnewline"}, []string{"a"})
	var buf strings.Builder
	if err := WriteContext(&buf, c, "x"); err == nil {
		t.Error("newline object name accepted")
	}
}

func TestPropContextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 80; iter++ {
		c := randomContext(rng, 10, 10)
		var buf strings.Builder
		if err := WriteContext(&buf, c, "rand"); err != nil {
			t.Fatal(err)
		}
		got, _, err := ReadContext(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		assertSameContext(t, c, got)
		// The lattice of the round-tripped context matches too.
		if !Equal(Build(c), Build(got)) {
			t.Fatalf("iter %d: lattice changed across round trip", iter)
		}
	}
}

func assertSameContext(t *testing.T, want, got *Context) {
	t.Helper()
	if got.NumObjects() != want.NumObjects() || got.NumAttributes() != want.NumAttributes() {
		t.Fatalf("shape changed: %dx%d -> %dx%d",
			want.NumObjects(), want.NumAttributes(), got.NumObjects(), got.NumAttributes())
	}
	for o := 0; o < want.NumObjects(); o++ {
		if got.ObjectName(o) != want.ObjectName(o) {
			t.Errorf("object %d name %q -> %q", o, want.ObjectName(o), got.ObjectName(o))
		}
		for a := 0; a < want.NumAttributes(); a++ {
			if got.Has(o, a) != want.Has(o, a) {
				t.Errorf("cell (%d,%d) changed", o, a)
			}
		}
	}
	for a := 0; a < want.NumAttributes(); a++ {
		if got.AttributeName(a) != want.AttributeName(a) {
			t.Errorf("attribute %d name changed", a)
		}
	}
}
