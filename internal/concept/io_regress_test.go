package concept

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/fa"
	"repro/internal/trace"
)

// TestReadContextErrorsCarryLineNumbers pins the errwrapline dogfood fix:
// Burmeister parse failures name a 1-based line via scanio.LineError and
// wrap the cause so errors.Unwrap reaches it.
func TestReadContextErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"missing header", "not-burmeister\n", "concept: line 1: not a Burmeister context"},
		{"bad object count", "B\nnamed\nmany\n2\n", "bad object count"},
		{"bad cell", "B\nnamed\n1\n1\n\no\na\n?\n", "bad cell"},
		{"truncated", "B\nnamed\n", "truncated context"},
		// Fuzz-found: a declared object count near MaxInt64 overflowed
		// the needed-lines sum and panicked in make instead of erroring.
		{"huge counts", "B\n7000000000000000000\n00\n", "only 0 lines remain"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadContext(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("ReadContext accepted malformed input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "concept: line ") {
				t.Fatalf("error %q does not name a line", err)
			}
			if errors.Unwrap(err) == nil {
				t.Fatalf("error %q is not wrapped (errors.Unwrap == nil)", err)
			}
		})
	}
}

// TestTraceContextCtxCancelled pins the ctxpropagate dogfood fix: a
// pre-cancelled context aborts TraceContextCtx (and hence
// BuildFromTracesCtx) before any simulation work, returning ctx.Err().
func TestTraceContextCtxCancelled(t *testing.T) {
	set := trace.NewSet(
		trace.ParseEvents("v0", "X = open()", "close(X)"),
		trace.ParseEvents("v1", "X = open()", "read(X)", "close(X)"),
	)
	ref := fa.FromTraces(set.Alphabet())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TraceContextCtx(ctx, set.Representatives(), ref, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("TraceContextCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := BuildFromTracesCtx(ctx, set.Representatives(), ref, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildFromTracesCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
}
