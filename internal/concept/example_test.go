package concept_test

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/concept"
	"repro/internal/fa"
	"repro/internal/trace"
)

// Example builds a small context by hand and derives concepts from it.
func Example() {
	ctx := concept.NewContext(
		[]string{"cat", "dog", "dolphin"},
		[]string{"fourlegged", "haircovered", "marine"},
	)
	ctx.Relate(0, 0) // cat: fourlegged
	ctx.Relate(0, 1) // cat: haircovered
	ctx.Relate(1, 0) // dog: fourlegged
	ctx.Relate(1, 1) // dog: haircovered
	ctx.Relate(2, 2) // dolphin: marine

	// σ({cat, dog}) is the set of attributes they share.
	shared := ctx.Sigma(bitset.FromSlice([]int{0, 1}))
	fmt.Println("similarity of {cat, dog}:", shared.Len())

	lattice := concept.Build(ctx)
	fmt.Println("concepts:", lattice.Len())
	top := lattice.Concept(lattice.Top())
	fmt.Println("top extent size:", top.Extent.Len())
	// Output:
	// similarity of {cat, dog}: 2
	// concepts: 4
	// top extent size: 3
}

// ExampleBuildFromTraces clusters traces by the FA transitions they
// execute — the construction of Section 3.2.
func ExampleBuildFromTraces() {
	traces := []trace.Trace{
		trace.ParseEvents("v1", "X = popen()", "pclose(X)"),
		trace.ParseEvents("v2", "X = popen()", "fread(X)", "pclose(X)"),
		trace.ParseEvents("v3", "X = fopen()"),
	}
	ref := fa.FromTraces(trace.NewSet(traces...).Alphabet())
	lattice, err := concept.BuildFromTraces(traces, ref)
	if err != nil {
		panic(err)
	}
	// v1 and v2 share the popen and pclose transitions, so some concept
	// holds exactly those two traces.
	id, _ := lattice.Find(bitset.FromSlice([]int{0, 1}))
	fmt.Println("popen concept extent:", lattice.Concept(id).Extent)
	// Output:
	// popen concept extent: {0, 1}
}
