package concept

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

// These properties drive the FCA core through testing/quick: each check
// receives random seeds/shapes from quick's generator and derives a random
// context from them.

func contextFromSeed(seed int64, objs, attrs uint8) *Context {
	rng := rand.New(rand.NewSource(seed))
	no := 1 + int(objs%8)
	na := 1 + int(attrs%8)
	names := func(prefix string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = prefix + string(rune('0'+i))
		}
		return out
	}
	c := NewContext(names("o", no), names("a", na))
	for o := 0; o < no; o++ {
		for a := 0; a < na; a++ {
			if rng.Intn(3) == 0 {
				c.Relate(o, a)
			}
		}
	}
	return c
}

func TestQuickBuildersAgree(t *testing.T) {
	err := quick.Check(func(seed int64, objs, attrs uint8) bool {
		c := contextFromSeed(seed, objs, attrs)
		return Equal(Build(c), BuildNaive(c))
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickConceptsAreMaximalRectangles(t *testing.T) {
	err := quick.Check(func(seed int64, objs, attrs uint8) bool {
		c := contextFromSeed(seed, objs, attrs)
		l := Build(c)
		for _, cc := range l.Concepts() {
			if !c.IsConcept(cc.Extent, cc.Intent) {
				return false
			}
			// Maximality: no object outside the extent has every intent
			// attribute, and dually for attributes.
			violated := false
			for o := 0; o < c.NumObjects(); o++ {
				if !cc.Extent.Has(o) && cc.Intent.SubsetOf(c.Attributes(o)) {
					violated = true
				}
			}
			for a := 0; a < c.NumAttributes(); a++ {
				if !cc.Intent.Has(a) && cc.Extent.SubsetOf(c.Objects(a)) {
					violated = true
				}
			}
			if violated {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 120})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickLatticeAbsorption(t *testing.T) {
	// Lattice absorption laws: meet(a, join(a,b)) == a and
	// join(a, meet(a,b)) == a.
	err := quick.Check(func(seed int64, objs, attrs uint8, ai, bi uint8) bool {
		c := contextFromSeed(seed, objs, attrs)
		l := Build(c)
		a := int(ai) % l.Len()
		b := int(bi) % l.Len()
		j, ok := l.Join(a, b)
		if !ok {
			return false
		}
		if m, ok := l.Meet(a, j); !ok || m != a {
			return false
		}
		m, ok := l.Meet(a, b)
		if !ok {
			return false
		}
		j2, ok := l.Join(a, m)
		return ok && j2 == a
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickSimilarityAntitone(t *testing.T) {
	// Adding objects to a set can only lower similarity.
	err := quick.Check(func(seed int64, objs, attrs uint8, members []uint8, extra uint8) bool {
		c := contextFromSeed(seed, objs, attrs)
		x := bitset.New(c.NumObjects())
		for _, m := range members {
			x.Add(int(m) % c.NumObjects())
		}
		before := c.Similarity(x)
		x.Add(int(extra) % c.NumObjects())
		return c.Similarity(x) <= before
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
