package concept

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot emits the lattice Hasse diagram in Graphviz DOT format with
// reduced labeling, the conventional rendering of concept lattices (and of
// Figures 5 and 10): each attribute appears only at its maximal concept and
// each object only at its minimal concept, so the full extent of a concept
// is the union of the object labels at or below it, and the full intent the
// union of attribute labels at or above it.
func (l *Lattice) WriteDot(w io.Writer, name string) error {
	attrAt := make(map[int][]string)
	for a := 0; a < l.ctx.NumAttributes(); a++ {
		id := l.AttributeConcept(a)
		attrAt[id] = append(attrAt[id], l.ctx.AttributeName(a))
	}
	objAt := make(map[int][]string)
	for o := 0; o < l.ctx.NumObjects(); o++ {
		id := l.ObjectConcept(o)
		objAt[id] = append(objAt[id], l.ctx.ObjectName(o))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=BT;\n")
	b.WriteString("  node [shape=record, fontsize=10];\n")
	for _, c := range l.concepts {
		attrs := strings.Join(attrAt[c.ID], `\n`)
		objs := strings.Join(objAt[c.ID], `\n`)
		label := fmt.Sprintf("{c%d|%s|%s}", c.ID, escapeDot(attrs), escapeDot(objs))
		fmt.Fprintf(&b, "  c%d [label=\"%s\"];\n", c.ID, label)
	}
	for id, ps := range l.parents {
		for _, p := range ps {
			fmt.Fprintf(&b, "  c%d -> c%d;\n", id, p)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Dot returns the DOT rendering as a string.
func (l *Lattice) Dot(name string) string {
	var b strings.Builder
	_ = l.WriteDot(&b, name) // strings.Builder writes cannot fail
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "{", `\{`)
	s = strings.ReplaceAll(s, "}", `\}`)
	s = strings.ReplaceAll(s, "<", `\<`)
	s = strings.ReplaceAll(s, ">", `\>`)
	s = strings.ReplaceAll(s, "|", `\|`)
	return s
}
