package concept

import (
	"repro/internal/bitset"
)

// intentIndex maps closed intents to concept IDs. It replaces the
// map[string]int over Set.Key() bytes the builder used before: lookups hash
// the intent's words directly (bitset.Hash), so the hot paths — the Godin
// inner loop and every linkCovers closure probe — materialize no key bytes
// at all. The table is open-addressing with linear probing over a
// power-of-two slot array; slots hold id+1 with 0 meaning empty, and
// collisions fall back to a word-level Equal against the stored concept's
// intent.
//
// Writes (insert, grow) must come from one goroutine; once the builder is
// done the table is read-only and lookup is safe to call concurrently,
// which is what lets the layer-parallel linkCovers workers share it.
type intentIndex struct {
	ids  []int32 // concept ID + 1; 0 = empty slot
	mask uint64
	n    int
}

// initFor sizes the table for about hint entries.
func (ix *intentIndex) initFor(hint int) {
	size := 16
	for size*3 < hint*4 { // target load factor 0.75
		size *= 2
	}
	ix.ids = make([]int32, size)
	ix.mask = uint64(size - 1)
	ix.n = 0
}

// lookup returns the ID of the concept whose intent equals s, or -1.
func (ix *intentIndex) lookup(concepts []*Concept, s *bitset.Set) int {
	if len(ix.ids) == 0 {
		return -1
	}
	i := s.Hash() & ix.mask
	for {
		slot := ix.ids[i]
		if slot == 0 {
			return -1
		}
		if id := int(slot - 1); concepts[id].Intent.Equal(s) {
			return id
		}
		i = (i + 1) & ix.mask
	}
}

// lookupWord is lookup specialized for one-word attribute universes: w is
// the single backing word of the probe intent (0 = the empty intent) and
// intentWords the flat per-concept table of intent words. bitset.HashWord
// matches Set.Hash for one-word content (pinned by TestHashWordMatchesHash),
// so the probe sequence is identical to lookup's while the collision
// comparison is one word compare instead of a Set walk.
func (ix *intentIndex) lookupWord(intentWords []uint64, w uint64) int {
	if len(ix.ids) == 0 {
		return -1
	}
	i := bitset.HashWord(w) & ix.mask
	for {
		slot := ix.ids[i]
		if slot == 0 {
			return -1
		}
		if id := int(slot - 1); intentWords[id] == w {
			return id
		}
		i = (i + 1) & ix.mask
	}
}

// insert records concepts[id] under its intent's hash. The intent must not
// already be present.
func (ix *intentIndex) insert(concepts []*Concept, id int) {
	if len(ix.ids) == 0 {
		ix.initFor(16)
	}
	if (ix.n+1)*4 > len(ix.ids)*3 {
		ix.grow(concepts)
	}
	ix.place(concepts[id].Intent.Hash(), int32(id+1))
	ix.n++
}

func (ix *intentIndex) place(h uint64, slot int32) {
	i := h & ix.mask
	for ix.ids[i] != 0 {
		i = (i + 1) & ix.mask
	}
	ix.ids[i] = slot
}

// clone returns an independent copy of the index (same hashes, same slots).
func (ix *intentIndex) clone() intentIndex {
	return intentIndex{ids: append([]int32(nil), ix.ids...), mask: ix.mask, n: ix.n}
}

// grow doubles the slot array and rehashes from the concepts' intents.
func (ix *intentIndex) grow(concepts []*Concept) {
	old := ix.ids
	ix.ids = make([]int32, 2*len(old))
	ix.mask = uint64(len(ix.ids) - 1)
	for _, slot := range old {
		if slot != 0 {
			ix.place(concepts[slot-1].Intent.Hash(), slot)
		}
	}
}
