package concept

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitset"
	"repro/internal/trace"
	"repro/internal/xtrace"
)

// requireByteIdentical asserts that every table of got matches want
// exactly — concept IDs, extents, intents, cover edges (including the
// nil/empty distinction DeepEqual sees), top/bottom, and the query tables.
// This is the "differentially pinned against full rebuild" contract of the
// incremental maintenance paths.
func requireByteIdentical(t *testing.T, got, want *Lattice, msg string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d concepts, rebuild has %d", msg, got.Len(), want.Len())
	}
	for i := range want.concepts {
		g, w := got.concepts[i], want.concepts[i]
		if g.ID != w.ID || !g.Extent.Equal(w.Extent) || !g.Intent.Equal(w.Intent) {
			t.Fatalf("%s: concept %d differs from rebuild\n got: extent=%s intent=%s\nwant: extent=%s intent=%s",
				msg, i, g.Extent, g.Intent, w.Extent, w.Intent)
		}
	}
	if !reflect.DeepEqual(got.parents, want.parents) {
		t.Fatalf("%s: parents differ from rebuild\n got: %v\nwant: %v", msg, got.parents, want.parents)
	}
	if !reflect.DeepEqual(got.children, want.children) {
		t.Fatalf("%s: children differ from rebuild\n got: %v\nwant: %v", msg, got.children, want.children)
	}
	if got.top != want.top || got.bottom != want.bottom {
		t.Fatalf("%s: top/bottom %d/%d, rebuild %d/%d", msg, got.top, got.bottom, want.top, want.bottom)
	}
	if !reflect.DeepEqual(got.objConcept, want.objConcept) {
		t.Fatalf("%s: objConcept differs from rebuild", msg)
	}
	if !reflect.DeepEqual(got.attrConcept, want.attrConcept) {
		t.Fatalf("%s: attrConcept differs from rebuild", msg)
	}
}

// TestIncrementalMatchesRebuildSmall drives dense random add/remove
// sequences on small random contexts, pinning the lattice against a full
// rebuild after every single operation. Small universes hit every path
// hard: duplicate rows, novel rows, new top concepts, removals of both
// representative and duplicate objects, and shrinking to zero objects.
func TestIncrementalMatchesRebuildSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for iter := 0; iter < 120; iter++ {
		c := randomContext(rng, 8, 6)
		l := Build(c)
		for step := 0; step < 12; step++ {
			var msg string
			if rng.Intn(2) == 0 || l.Context().NumObjects() == 0 {
				na := l.Context().NumAttributes()
				row := bitset.New(na)
				if n := l.Context().NumObjects(); n > 0 && rng.Intn(3) == 0 {
					row = l.Context().Attributes(rng.Intn(n)).Clone()
				} else {
					for a := 0; a < na; a++ {
						if rng.Intn(3) == 0 {
							row.Add(a)
						}
					}
				}
				msg = fmt.Sprintf("iter %d step %d: add %s", iter, step, row)
				if err := l.AddObjectCtx(context.Background(), fmt.Sprintf("x%d.%d", iter, step), row); err != nil {
					t.Fatal(err)
				}
			} else {
				o := rng.Intn(l.Context().NumObjects())
				msg = fmt.Sprintf("iter %d step %d: remove %d", iter, step, o)
				if err := l.RemoveObjectCtx(context.Background(), o); err != nil {
					t.Fatal(err)
				}
			}
			rebuilt, err := BuildCtx(context.Background(), l.Context().clone(), WithWorkers(1))
			if err != nil {
				t.Fatal(err)
			}
			requireByteIdentical(t, l, rebuilt, msg)
			checkLatticeInvariants(t, l)
		}
	}
}

// TestIncrementalMatchesRebuild is the production-scale pin: random
// add/remove sequences on the >10⁴-class xtrace corpus, compared table by
// table against a full rebuild after every operation, for both a serial
// and a parallel build configuration.
func TestIncrementalMatchesRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("big corpus incremental pin under -short")
	}
	ref := bigCorpusRef()
	fc, err := bigCorpusContext()
	if err != nil {
		t.Fatal(err)
	}
	corpus := bigCorpusClasses(60000).Representatives()
	gen := xtrace.Generator{Model: bigCorpusModel(), Seed: 777}
	freshSet, _ := gen.ScenarioSet(300)
	fresh := freshSet.Representatives()
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			l, err := BuildCtx(context.Background(), fc.clone(), WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(1000 + workers)))
			pin := func(msg string) {
				t.Helper()
				rebuilt, err := BuildCtx(context.Background(), l.Context().clone(), WithWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				requireByteIdentical(t, l, rebuilt, msg)
			}
			// Three adds: fresh classes from a different generator seed.
			for i := 0; i < 3; i++ {
				tr := fresh[rng.Intn(len(fresh))]
				if err := l.AddTraceCtx(context.Background(), tr, ref); err != nil {
					t.Fatal(err)
				}
				pin(fmt.Sprintf("add fresh class %q", tr.ID))
			}
			// A guaranteed duplicate-row add: re-adding an existing
			// representative must spawn no concepts, and removing it again
			// must take the in-place fast path.
			dup := corpus[rng.Intn(len(corpus))]
			if err := l.AddTraceCtx(context.Background(), dup, ref); err != nil {
				t.Fatal(err)
			}
			pin("add duplicate-row class")
			dupIdx := l.Context().NumObjects() - 1
			l.repsEnsure()
			if l.isRep(dupIdx) {
				t.Fatalf("duplicate-row object %d became a row representative", dupIdx)
			}
			if err := l.RemoveTraceCtx(context.Background(), dupIdx); err != nil {
				t.Fatal(err)
			}
			pin("remove duplicate-row class (fast path)")
			// A representative removal: forces the replay path.
			l.repsEnsure()
			repIdx := int(l.reps[rng.Intn(len(l.reps))])
			if err := l.RemoveTraceCtx(context.Background(), repIdx); err != nil {
				t.Fatal(err)
			}
			pin(fmt.Sprintf("remove representative %d (replay path)", repIdx))
			// And one random removal.
			o := rng.Intn(l.Context().NumObjects())
			if err := l.RemoveTraceCtx(context.Background(), o); err != nil {
				t.Fatal(err)
			}
			pin(fmt.Sprintf("remove random object %d", o))
		})
	}
}

// TestCloneIndependent pins the copy-on-write contract: mutating a clone
// must leave the original lattice (and its context) untouched, and the
// clone must stay byte-identical to a rebuild.
func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for iter := 0; iter < 40; iter++ {
		c := randomContext(rng, 8, 6)
		orig := Build(c)
		before, err := BuildCtx(context.Background(), orig.Context().clone(), WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		cl := orig.Clone()
		requireByteIdentical(t, cl, orig, "clone differs from original")
		row := bitset.New(orig.Context().NumAttributes())
		for a := 0; a < orig.Context().NumAttributes(); a++ {
			if rng.Intn(2) == 0 {
				row.Add(a)
			}
		}
		if err := cl.AddObjectCtx(context.Background(), "cloned-add", row); err != nil {
			t.Fatal(err)
		}
		if cl.Context().NumObjects() != orig.Context().NumObjects()+1 {
			t.Fatal("clone add did not extend the clone's context")
		}
		// The original must still match its own pre-clone rebuild.
		requireByteIdentical(t, orig, before, "original mutated through clone")
		rebuilt, err := BuildCtx(context.Background(), cl.Context().clone(), WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		requireByteIdentical(t, cl, rebuilt, "mutated clone")
	}
}

// benchFreshTraces samples trace classes disjoint from the shared big
// corpus (different generator seed) for the incremental-add benchmarks.
func benchFreshTraces(b *testing.B) []trace.Trace {
	b.Helper()
	gen := xtrace.Generator{Model: bigCorpusModel(), Seed: 424242}
	freshSet, _ := gen.ScenarioSet(2000)
	return freshSet.Representatives()
}

// BenchmarkIncremental measures the incremental lanes against the full
// rebuild they replace at production corpus scale. AddTrace/Pruned is the
// streaming-ingestion hot path (the production pruned Godin step);
// AddTrace/Unpruned keeps the legacy full-scan insertion as the baseline
// the pruning speedup is read against; AddRemoveTrace restores the corpus
// every iteration (the remove is the duplicate-row fast path by
// construction); Rebuild is the baseline the ≥10× acceptance ratio is read
// against.
func BenchmarkIncremental(b *testing.B) {
	fc, err := bigCorpusContext()
	if err != nil {
		b.Fatal(err)
	}
	ref := bigCorpusRef()
	corpus := bigCorpusClasses(60000).Representatives()
	fresh := benchFreshTraces(b)
	build := func(b *testing.B, opts ...BuildOption) *Lattice {
		l, err := BuildCtx(context.Background(), fc.clone(), append([]BuildOption{WithWorkers(1)}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		return l
	}
	addLane := func(opts ...BuildOption) func(*testing.B) {
		return func(b *testing.B) {
			l := build(b, opts...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Reset the lattice (untimed) every 256 adds: without this,
				// large b.N measures adds against an ever-growing corpus
				// instead of the marginal add at baseline size.
				if i > 0 && i%256 == 0 {
					b.StopTimer()
					l = build(b, opts...)
					b.StartTimer()
				}
				tr := fresh[i%len(fresh)]
				tr.ID = fmt.Sprintf("bench-add-%d", i)
				if err := l.AddTraceCtx(context.Background(), tr, ref); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("AddTrace/Pruned", addLane())
	b.Run("AddTrace/Unpruned", addLane(withLegacyGodin()))
	b.Run("AddRemoveTrace", func(b *testing.B) {
		l := build(b)
		base := l.Context().NumObjects()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := corpus[i%len(corpus)]
			tr.ID = fmt.Sprintf("bench-cycle-%d", i)
			if err := l.AddTraceCtx(context.Background(), tr, ref); err != nil {
				b.Fatal(err)
			}
			if err := l.RemoveTraceCtx(context.Background(), base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l, err := BuildCtx(context.Background(), fc, WithWorkers(1))
			if err != nil {
				b.Fatal(err)
			}
			if l.Len() == 0 {
				b.Fatal("empty lattice")
			}
		}
	})
}
