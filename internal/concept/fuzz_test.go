package concept

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzConceptIO mirrors trace.FuzzTraceRoundTrip for the Burmeister
// context format: anything ReadContext accepts must write and reparse to
// the same context — dimensions, names, and the full relation — and the
// serialization must be a fixpoint. Seeds cover the optional name line,
// the optional blank separator, lower-case cells, and empty dimensions.
func FuzzConceptIO(f *testing.F) {
	for _, seed := range []string{
		"B\nnamed\n2\n2\n\no1\no2\na1\na2\nX.\n.X\n",
		"B\n1\n1\no\na\nX\n",            // no name line, no blank separator
		"B\nk\n2\n1\no1\no2\na\nx\n.\n", // lower-case cell
		"B\nempty\n0\n0\n\n",
		"B\nwide\n1\n3\no\np\nq\nr\nX.X\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, name, err := ReadContext(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteContext(&buf, c, name); err != nil {
			// Names with embedded newlines cannot come out of ReadContext
			// (it is line-oriented), so Write must succeed.
			t.Fatalf("WriteContext of parsed context failed: %v", err)
		}
		first := buf.String()
		again, name2, err := ReadContext(strings.NewReader(first))
		if err != nil {
			t.Fatalf("round trip does not reparse: %v\n%s", err, first)
		}
		if name2 != name && !(name == "" && strings.TrimSpace(name2) == "") {
			t.Fatalf("name changed: %q -> %q", name, name2)
		}
		if again.NumObjects() != c.NumObjects() || again.NumAttributes() != c.NumAttributes() {
			t.Fatalf("round trip changed dimensions: %dx%d -> %dx%d",
				c.NumObjects(), c.NumAttributes(), again.NumObjects(), again.NumAttributes())
		}
		for o := 0; o < c.NumObjects(); o++ {
			for a := 0; a < c.NumAttributes(); a++ {
				if c.Has(o, a) != again.Has(o, a) {
					t.Fatalf("relation changed at (%d,%d)", o, a)
				}
			}
		}
		var buf2 bytes.Buffer
		if err := WriteContext(&buf2, again, name2); err != nil {
			t.Fatalf("WriteContext of reparsed context failed: %v", err)
		}
		if buf2.String() != first {
			t.Fatalf("serialization is not a fixpoint:\n%s\nvs\n%s", first, buf2.String())
		}
	})
}
