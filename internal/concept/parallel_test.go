package concept

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// denseRandomContext builds a context dense enough to yield well over
// 2*linkChunk concepts, so worker counts > 1 actually enter the parallel
// pool instead of the small-lattice serial path.
func denseRandomContext(rng *rand.Rand, objs, attrs int) *Context {
	names := func(prefix string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = prefix
		}
		return out
	}
	c := NewContext(names("o", objs), names("a", attrs))
	for o := 0; o < objs; o++ {
		for a := 0; a < attrs; a++ {
			if rng.Intn(3) == 0 {
				c.Relate(o, a)
			}
		}
	}
	return c
}

// TestPropParallelLinkCoversDeterministic pins the layer-parallel cover
// scan to the serial one: for any worker count the resulting lattice —
// concept order, parents, children, top, bottom, query tables — must be
// identical, including on the sparse-projection domination path (forced
// here by shrinking the cutoffs, since the test contexts are far below the
// production sparseMinWords threshold). Run under -race this also checks
// the pool's only shared writes (disjoint out slots) are clean.
func TestPropParallelLinkCoversDeterministic(t *testing.T) {
	defer func(mw, me int) { sparseMinWords, sparseMaxElems = mw, me }(sparseMinWords, sparseMaxElems)
	sparseMinWords, sparseMaxElems = 1, 6

	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 8; iter++ {
		c := denseRandomContext(rng, 40+rng.Intn(20), 14)
		serial, err := BuildCtx(context.Background(), c, WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		if serial.Len() < 2*linkChunk {
			t.Fatalf("iter %d: fixture too small to exercise the pool (%d concepts)", iter, serial.Len())
		}
		for _, workers := range []int{2, 8} {
			par, err := BuildCtx(context.Background(), c, WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			if par.Len() != serial.Len() {
				t.Fatalf("iter %d workers=%d: %d concepts vs %d serial", iter, workers, par.Len(), serial.Len())
			}
			for id, sc := range serial.concepts {
				pc := par.concepts[id]
				if !sc.Extent.Equal(pc.Extent) || !sc.Intent.Equal(pc.Intent) {
					t.Fatalf("iter %d workers=%d: concept %d differs", iter, workers, id)
				}
			}
			if !reflect.DeepEqual(par.parents, serial.parents) {
				t.Fatalf("iter %d workers=%d: parents differ", iter, workers)
			}
			if !reflect.DeepEqual(par.children, serial.children) {
				t.Fatalf("iter %d workers=%d: children differ", iter, workers)
			}
			if par.top != serial.top || par.bottom != serial.bottom {
				t.Fatalf("iter %d workers=%d: top/bottom %d/%d vs %d/%d",
					iter, workers, par.top, par.bottom, serial.top, serial.bottom)
			}
			if !reflect.DeepEqual(par.objConcept, serial.objConcept) ||
				!reflect.DeepEqual(par.attrConcept, serial.attrConcept) {
				t.Fatalf("iter %d workers=%d: query tables differ", iter, workers)
			}
		}
	}
}

// TestParallelLinkCoversMatchesOracle cross-checks the parallel scan (with
// sparse projections forced on) against the independent all-pairs oracle,
// not just against the serial twin.
func TestParallelLinkCoversMatchesOracle(t *testing.T) {
	defer func(mw, me int) { sparseMinWords, sparseMaxElems = mw, me }(sparseMinWords, sparseMaxElems)
	sparseMinWords, sparseMaxElems = 1, 4

	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 5; iter++ {
		c := denseRandomContext(rng, 45, 13)
		l, err := BuildCtx(context.Background(), c, WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		parents, children := linkCoversAllPairs(l)
		for i := range parents {
			insertionSortInts(parents[i])
			insertionSortInts(children[i])
		}
		for id := range l.concepts {
			if !equalInts(l.Parents(id), parents[id]) {
				t.Fatalf("iter %d: parents of %d: parallel %v, all-pairs %v", iter, id, l.Parents(id), parents[id])
			}
			if !equalInts(l.Children(id), children[id]) {
				t.Fatalf("iter %d: children of %d: parallel %v, all-pairs %v", iter, id, l.Children(id), children[id])
			}
		}
	}
}

// TestBuildCancelledDuringLinkCovers exercises the pool's cancellation
// path: a context cancelled before the build reaches cover linking must
// surface ctx.Err() from both the serial and the parallel scan.
func TestBuildCancelledDuringLinkCovers(t *testing.T) {
	c := denseRandomContext(rand.New(rand.NewSource(5)), 40, 12)
	l := Build(c)
	cc, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if err := l.linkCovers(cc, workers); err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	// Relink uncancelled so the lattice is left consistent.
	if err := l.linkCovers(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	checkLatticeInvariants(t, l)
}
