package concept

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// TestSnapshotRoundTrip pins the restore contract: a lattice read back
// from its snapshot is byte-identical (all tables) to the original, and
// the restored lattice supports incremental maintenance just like a
// freshly built one.
func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for iter := 0; iter < 60; iter++ {
		c := randomContext(rng, 10, 8)
		l := Build(c)
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, l); err != nil {
			t.Fatal(err)
		}
		restored, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		requireByteIdentical(t, restored, l, fmt.Sprintf("iter %d: restored snapshot", iter))
		for o := 0; o < restored.Context().NumObjects(); o++ {
			if restored.Context().ObjectName(o) != l.Context().ObjectName(o) {
				t.Fatalf("iter %d: object name %d changed", iter, o)
			}
		}
		// A restored lattice must accept incremental updates.
		row := bitset.New(restored.Context().NumAttributes())
		for a := 0; a < restored.Context().NumAttributes(); a++ {
			if rng.Intn(2) == 0 {
				row.Add(a)
			}
		}
		if err := restored.AddObjectCtx(context.Background(), "post-restore", row); err != nil {
			t.Fatal(err)
		}
		rebuilt, err := BuildCtx(context.Background(), restored.Context().clone(), WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		requireByteIdentical(t, restored, rebuilt, fmt.Sprintf("iter %d: add after restore", iter))
	}
}

// TestSnapshotRejectsCorruption flips every byte of a valid snapshot and
// requires that no corruption is silently accepted as the original
// lattice: each flip must either fail to parse (the common case — the CRC
// trailer catches anything structural validation misses) or, where the
// mutation lands in a name length/content byte that still hashes... it
// cannot: the CRC covers every payload byte, so only trailer flips parse,
// and those fail the stored-vs-computed comparison. In short: every single
// flip must return an error.
func TestSnapshotRejectsCorruption(t *testing.T) {
	c := randomContext(rand.New(rand.NewSource(5)), 6, 5)
	l := Build(c)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, l); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0x41
		if _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil {
			t.Fatalf("byte flip at offset %d accepted", i)
		}
	}
	// Truncations must error too, never hang or panic.
	for _, cut := range []int{0, 1, 4, 5, len(orig) / 2, len(orig) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(orig[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

// FuzzSnapshotRoundTrip feeds arbitrary bytes to ReadSnapshot — which must
// never panic and never allocate unboundedly — and requires that anything
// it does accept re-serializes as a fixpoint: write(read(b)) parses again
// and writes identical bytes.
func FuzzSnapshotRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(89))
	for i := 0; i < 5; i++ {
		l := Build(randomContext(rng, 6, 5))
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, l); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(snapshotMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := WriteSnapshot(&first, l); err != nil {
			t.Fatalf("re-serializing an accepted snapshot failed: %v", err)
		}
		again, err := ReadSnapshot(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("round trip does not reparse: %v", err)
		}
		var second bytes.Buffer
		if err := WriteSnapshot(&second, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("snapshot serialization is not a fixpoint")
		}
	})
}
